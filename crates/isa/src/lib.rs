//! Abstract micro-op ISA for the BioPerf load-characterization study.
//!
//! The IISWC 2006 paper instruments Alpha binaries with ATOM and reasons
//! about the resulting dynamic instruction stream: which instructions are
//! loads, which static loads dominate, how load values flow into
//! conditional branches, and how the L1 hit latency interacts with branch
//! resolution. This crate defines the vocabulary for that reasoning,
//! decoupled from any concrete hardware ISA:
//!
//! * [`OpKind`] / [`OpClass`] — instruction classes (the paper's Figure 1
//!   categories plus the latency classes the timing model needs),
//! * [`VReg`] — SSA-style virtual registers carrying dataflow,
//! * [`StaticId`] / [`StaticInst`] / [`SrcLoc`] — static-instruction
//!   identity with source mapping (the paper's Table 5 maps hot loads back
//!   to file/line/function),
//! * [`MicroOp`] — one dynamic instruction event,
//! * [`Program`] — the static-instruction table built up while tracing.
//!
//! # Example
//!
//! ```
//! use bioperf_isa::{MicroOp, OpKind, Program, SrcLoc, VReg};
//!
//! let mut program = Program::new();
//! let sid = program.intern(OpKind::IntLoad, SrcLoc::new("viterbi.rs", 42, 1, "viterbi"));
//! let op = MicroOp::load(sid, OpKind::IntLoad, VReg(0), 0x1000, None);
//! assert!(op.kind.is_load());
//! assert_eq!(program.get(sid).loc.line, 42);
//! ```

pub mod op;
pub mod program;
pub mod source;

pub use op::{DepKind, MicroOp, OpClass, OpKind, VReg, MAX_SRCS};
pub use program::{Program, StaticId, StaticInst};
pub use source::SrcLoc;
