//! Source locations for static instructions.
//!
//! The paper's Table 5 profile maps each hot load back to the C source
//! (`fast_algorithms.c:132`, function `P7Viterbi`). Our instrumented
//! kernels do the same: every traced operation carries the Rust source
//! location of the statement that emitted it.

use std::fmt;

/// A source-code location identifying where a static instruction lives.
///
/// Two instructions at the same `(file, line, column)` are the same static
/// instruction; the tracing layer uses this to intern [`StaticId`]s.
///
/// [`StaticId`]: crate::StaticId
///
/// # Example
///
/// ```
/// use bioperf_isa::SrcLoc;
///
/// let loc = SrcLoc::new("fast_algorithms.rs", 132, 9, "p7_viterbi");
/// assert_eq!(loc.to_string(), "p7_viterbi (fast_algorithms.rs:132)");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SrcLoc {
    /// File name, typically from `file!()`.
    pub file: &'static str,
    /// 1-based line, typically from `line!()`.
    pub line: u32,
    /// 1-based column, typically from `column!()`; disambiguates several
    /// operations emitted from one line.
    pub column: u32,
    /// Enclosing function name, supplied by the instrumented kernel.
    pub function: &'static str,
}

impl SrcLoc {
    /// Creates a source location.
    pub const fn new(file: &'static str, line: u32, column: u32, function: &'static str) -> Self {
        Self { file, line, column, function }
    }

    /// A placeholder location for synthesized operations (e.g. spill code
    /// inserted by the register-pressure model).
    pub const fn synthetic(function: &'static str) -> Self {
        Self { file: "<synthetic>", line: 0, column: 0, function }
    }
}

impl fmt::Display for SrcLoc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ({}:{})", self.function, self.file, self.line)
    }
}

/// Captures the current source location as a [`SrcLoc`].
///
/// The function name must be supplied because Rust has no stable
/// `function!()` macro.
///
/// # Example
///
/// ```
/// use bioperf_isa::here;
///
/// let loc = here!("my_kernel");
/// assert_eq!(loc.function, "my_kernel");
/// ```
#[macro_export]
macro_rules! here {
    ($function:expr) => {
        $crate::SrcLoc::new(file!(), line!(), column!(), $function)
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_function_and_line() {
        let loc = SrcLoc::new("a.rs", 7, 3, "f");
        assert_eq!(format!("{loc}"), "f (a.rs:7)");
    }

    #[test]
    fn here_captures_this_file() {
        let loc = here!("test_fn");
        assert!(loc.file.ends_with("source.rs"));
        assert_eq!(loc.function, "test_fn");
        assert!(loc.line > 0);
    }

    #[test]
    fn synthetic_is_distinct_from_real_locations() {
        let synth = SrcLoc::synthetic("spill");
        assert_eq!(synth.file, "<synthetic>");
        assert_ne!(synth, here!("spill"));
    }

    #[test]
    fn same_site_compares_equal() {
        let a = SrcLoc::new("k.rs", 10, 2, "f");
        let b = SrcLoc::new("k.rs", 10, 2, "f");
        assert_eq!(a, b);
    }

    #[test]
    fn different_columns_differ() {
        let a = SrcLoc::new("k.rs", 10, 2, "f");
        let b = SrcLoc::new("k.rs", 10, 9, "f");
        assert_ne!(a, b);
    }
}
