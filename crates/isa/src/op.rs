//! Dynamic micro-operations and their classification.

use std::fmt;

use crate::program::StaticId;

/// An SSA-style virtual register produced by a traced operation.
///
/// Virtual registers are assigned monotonically by the tracing layer; each
/// is written exactly once, which makes dependence analysis (the paper's
/// load-to-branch chain detection) a simple backwards walk.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VReg(pub u64);

impl fmt::Display for VReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// The kind of a micro-operation.
///
/// Kinds are chosen to support the paper's analyses: the Figure 1
/// instruction mix (loads / stores / conditional branches / other), the
/// Table 1 floating-point fraction, and the per-kind latencies of the
/// timing model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpKind {
    /// Integer load from memory.
    IntLoad,
    /// Floating-point load from memory.
    FpLoad,
    /// Integer store to memory.
    IntStore,
    /// Floating-point store to memory.
    FpStore,
    /// Conditional branch; outcome recorded on the [`MicroOp`].
    CondBranch,
    /// Unconditional control transfer (jump/call/return).
    Jump,
    /// Single-cycle integer ALU operation (add, compare, logic, shift).
    IntAlu,
    /// Conditional move / select (the paper's transformed code turns
    /// hard-to-predict branches into these).
    CondMove,
    /// Integer multiply.
    IntMul,
    /// Floating-point add/subtract/compare.
    FpAlu,
    /// Floating-point multiply.
    FpMul,
    /// Floating-point divide / sqrt / exp-class long-latency operation.
    FpDiv,
}

impl OpKind {
    /// Every kind, in [`code`](OpKind::code) order.
    pub const ALL: [OpKind; 12] = [
        OpKind::IntLoad,
        OpKind::FpLoad,
        OpKind::IntStore,
        OpKind::FpStore,
        OpKind::CondBranch,
        OpKind::Jump,
        OpKind::IntAlu,
        OpKind::CondMove,
        OpKind::IntMul,
        OpKind::FpAlu,
        OpKind::FpMul,
        OpKind::FpDiv,
    ];

    /// Compact numeric code of this kind (0..12, fits in 4 bits). The
    /// packed trace encoding stores kinds by code; [`from_code`]
    /// inverts it.
    ///
    /// [`from_code`]: OpKind::from_code
    #[inline]
    pub const fn code(self) -> u8 {
        self as u8
    }

    /// Inverse of [`code`](OpKind::code); `None` for out-of-range codes.
    #[inline]
    pub const fn from_code(code: u8) -> Option<OpKind> {
        if (code as usize) < Self::ALL.len() {
            Some(Self::ALL[code as usize])
        } else {
            None
        }
    }

    /// Whether this operation reads memory.
    #[inline]
    pub fn is_load(self) -> bool {
        matches!(self, OpKind::IntLoad | OpKind::FpLoad)
    }

    /// Whether this operation writes memory.
    #[inline]
    pub fn is_store(self) -> bool {
        matches!(self, OpKind::IntStore | OpKind::FpStore)
    }

    /// Whether this operation accesses memory at all.
    #[inline]
    pub fn is_mem(self) -> bool {
        self.is_load() || self.is_store()
    }

    /// Whether this operation is a conditional branch.
    #[inline]
    pub fn is_cond_branch(self) -> bool {
        matches!(self, OpKind::CondBranch)
    }

    /// Whether this operation executes in the floating-point pipeline
    /// (the paper's Table 1 counts FP loads as floating-point
    /// instructions).
    #[inline]
    pub fn is_fp(self) -> bool {
        matches!(
            self,
            OpKind::FpLoad | OpKind::FpStore | OpKind::FpAlu | OpKind::FpMul | OpKind::FpDiv
        )
    }

    /// The coarse class used by the Figure 1 instruction-mix profile.
    #[inline]
    pub fn class(self) -> OpClass {
        match self {
            k if k.is_load() => OpClass::Load,
            k if k.is_store() => OpClass::Store,
            OpKind::CondBranch => OpClass::CondBranch,
            _ => OpClass::Other,
        }
    }
}

impl fmt::Display for OpKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            OpKind::IntLoad => "ldq",
            OpKind::FpLoad => "ldt",
            OpKind::IntStore => "stq",
            OpKind::FpStore => "stt",
            OpKind::CondBranch => "br.cond",
            OpKind::Jump => "jmp",
            OpKind::IntAlu => "alu",
            OpKind::CondMove => "cmov",
            OpKind::IntMul => "mul",
            OpKind::FpAlu => "fadd",
            OpKind::FpMul => "fmul",
            OpKind::FpDiv => "fdiv",
        };
        f.write_str(s)
    }
}

/// Coarse instruction classes reported in the paper's Figure 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpClass {
    /// Memory reads.
    Load,
    /// Memory writes.
    Store,
    /// Conditional branches.
    CondBranch,
    /// Everything else (ALU, FP, unconditional control flow).
    Other,
}

impl OpClass {
    /// All classes in the paper's reporting order.
    pub const ALL: [OpClass; 4] =
        [OpClass::Load, OpClass::Store, OpClass::CondBranch, OpClass::Other];
}

impl fmt::Display for OpClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            OpClass::Load => "loads",
            OpClass::Store => "stores",
            OpClass::CondBranch => "cond branches",
            OpClass::Other => "other",
        };
        f.write_str(s)
    }
}

/// How a value used by an op relates to its producer; reserved for richer
/// dependence annotations (address vs. data dependence).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DepKind {
    /// The consumed value is data input to the computation.
    Data,
    /// The consumed value forms the memory address of a load/store.
    Address,
}

/// Maximum number of register sources a [`MicroOp`] can carry.
pub const MAX_SRCS: usize = 3;

/// One dynamic instruction event in a trace.
///
/// A `MicroOp` is the unit exchanged between the instrumented kernels and
/// every analysis/simulation consumer: instruction-mix counters, the cache
/// hierarchy, branch predictors, dependence-chain detectors, and the
/// trace-driven timing model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MicroOp {
    /// Static instruction that produced this dynamic instance.
    pub sid: StaticId,
    /// Operation kind.
    pub kind: OpKind,
    /// Destination virtual register, if the op produces a value.
    pub dst: Option<VReg>,
    /// Register sources (SSA values consumed). Unused slots are `None`.
    pub srcs: [Option<VReg>; MAX_SRCS],
    /// Effective address for loads/stores.
    pub addr: Option<u64>,
    /// Conditional-branch outcome (`true` = taken); meaningless otherwise.
    pub taken: bool,
}

impl MicroOp {
    /// Builds a load micro-op.
    ///
    /// # Panics
    ///
    /// Panics (debug builds) if `kind` is not a load kind.
    #[inline]
    pub fn load(sid: StaticId, kind: OpKind, dst: VReg, addr: u64, base: Option<VReg>) -> Self {
        debug_assert!(kind.is_load());
        Self { sid, kind, dst: Some(dst), srcs: [base, None, None], addr: Some(addr), taken: false }
    }

    /// Builds a store micro-op.
    ///
    /// # Panics
    ///
    /// Panics (debug builds) if `kind` is not a store kind.
    #[inline]
    pub fn store(sid: StaticId, kind: OpKind, value: Option<VReg>, addr: u64) -> Self {
        debug_assert!(kind.is_store());
        Self { sid, kind, dst: None, srcs: [value, None, None], addr: Some(addr), taken: false }
    }

    /// Builds a computational micro-op producing `dst` from `srcs`.
    #[inline]
    pub fn compute(sid: StaticId, kind: OpKind, dst: VReg, srcs: [Option<VReg>; MAX_SRCS]) -> Self {
        Self { sid, kind, dst: Some(dst), srcs, addr: None, taken: false }
    }

    /// Builds a conditional-branch micro-op with its dynamic outcome.
    #[inline]
    pub fn branch(sid: StaticId, srcs: [Option<VReg>; MAX_SRCS], taken: bool) -> Self {
        Self { sid, kind: OpKind::CondBranch, dst: None, srcs, addr: None, taken }
    }

    /// Iterates over the populated source registers.
    #[inline]
    pub fn sources(&self) -> impl Iterator<Item = VReg> + '_ {
        self.srcs.iter().flatten().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sid(n: u32) -> StaticId {
        StaticId::from_raw(n)
    }

    #[test]
    fn load_classification() {
        assert!(OpKind::IntLoad.is_load());
        assert!(OpKind::FpLoad.is_load());
        assert!(!OpKind::IntStore.is_load());
        assert_eq!(OpKind::IntLoad.class(), OpClass::Load);
        assert_eq!(OpKind::FpLoad.class(), OpClass::Load);
    }

    #[test]
    fn store_classification() {
        assert!(OpKind::IntStore.is_store());
        assert!(OpKind::FpStore.is_store());
        assert_eq!(OpKind::FpStore.class(), OpClass::Store);
    }

    #[test]
    fn branch_and_other_classification() {
        assert_eq!(OpKind::CondBranch.class(), OpClass::CondBranch);
        assert_eq!(OpKind::Jump.class(), OpClass::Other);
        assert_eq!(OpKind::IntAlu.class(), OpClass::Other);
        assert_eq!(OpKind::CondMove.class(), OpClass::Other);
        assert_eq!(OpKind::FpDiv.class(), OpClass::Other);
    }

    #[test]
    fn fp_classification_includes_fp_memory_ops() {
        for k in [OpKind::FpLoad, OpKind::FpStore, OpKind::FpAlu, OpKind::FpMul, OpKind::FpDiv] {
            assert!(k.is_fp(), "{k} should be FP");
        }
        for k in [OpKind::IntLoad, OpKind::IntStore, OpKind::IntAlu, OpKind::CondBranch] {
            assert!(!k.is_fp(), "{k} should not be FP");
        }
    }

    #[test]
    fn mem_ops_have_addresses() {
        let ld = MicroOp::load(sid(1), OpKind::IntLoad, VReg(5), 0xdead, None);
        assert_eq!(ld.addr, Some(0xdead));
        assert_eq!(ld.dst, Some(VReg(5)));

        let st = MicroOp::store(sid(2), OpKind::IntStore, Some(VReg(5)), 0xbeef);
        assert_eq!(st.addr, Some(0xbeef));
        assert_eq!(st.dst, None);
    }

    #[test]
    fn sources_iterates_only_populated_slots() {
        let op = MicroOp::compute(sid(3), OpKind::IntAlu, VReg(9), [Some(VReg(1)), None, Some(VReg(2))]);
        let srcs: Vec<_> = op.sources().collect();
        assert_eq!(srcs, vec![VReg(1), VReg(2)]);
    }

    #[test]
    fn branch_records_outcome() {
        let b = MicroOp::branch(sid(4), [Some(VReg(7)), None, None], true);
        assert!(b.taken);
        assert!(b.kind.is_cond_branch());
        assert_eq!(b.dst, None);
    }

    #[test]
    fn kind_codes_round_trip_and_fit_four_bits() {
        for (i, k) in OpKind::ALL.into_iter().enumerate() {
            assert_eq!(k.code() as usize, i);
            assert!(k.code() < 16, "codes must fit the packed 4-bit field");
            assert_eq!(OpKind::from_code(k.code()), Some(k));
        }
        assert_eq!(OpKind::from_code(OpKind::ALL.len() as u8), None);
        assert_eq!(OpKind::from_code(u8::MAX), None);
    }

    #[test]
    fn class_all_covers_every_kind() {
        use std::collections::HashSet;
        let classes: HashSet<_> = [
            OpKind::IntLoad,
            OpKind::FpLoad,
            OpKind::IntStore,
            OpKind::FpStore,
            OpKind::CondBranch,
            OpKind::Jump,
            OpKind::IntAlu,
            OpKind::CondMove,
            OpKind::IntMul,
            OpKind::FpAlu,
            OpKind::FpMul,
            OpKind::FpDiv,
        ]
        .iter()
        .map(|k| k.class())
        .collect();
        for c in OpClass::ALL {
            assert!(classes.contains(&c), "class {c} unreachable");
        }
    }
}
