//! Static-instruction tables.
//!
//! ATOM's instrumentation identifies instructions by PC; we identify them
//! by the source location of the tracing call that emitted them. The
//! [`Program`] interns locations into dense [`StaticId`]s so that
//! per-static-instruction analyses (load coverage, per-branch predictor
//! state, the Table 5 hot-load profile) can use flat arrays.

use std::collections::HashMap;
use std::fmt;

use crate::op::OpKind;
use crate::source::SrcLoc;

/// Dense identifier of a static instruction, the analog of a PC.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct StaticId(u32);

impl StaticId {
    /// Creates an id from a raw index. Intended for tests and for
    /// consumers that build parallel tables.
    pub const fn from_raw(raw: u32) -> Self {
        Self(raw)
    }

    /// The dense index of this id (0-based, contiguous per [`Program`]).
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for StaticId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "i{}", self.0)
    }
}

/// Metadata about one static instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StaticInst {
    /// The instruction's dense id.
    pub id: StaticId,
    /// Operation kind emitted at this site.
    pub kind: OpKind,
    /// Source location of the emitting statement.
    pub loc: SrcLoc,
}

/// The static-instruction table of a traced program.
///
/// # Example
///
/// ```
/// use bioperf_isa::{OpKind, Program, SrcLoc};
///
/// let mut p = Program::new();
/// let a = p.intern(OpKind::IntLoad, SrcLoc::new("k.rs", 1, 1, "f"));
/// let b = p.intern(OpKind::IntLoad, SrcLoc::new("k.rs", 1, 1, "f"));
/// assert_eq!(a, b, "same site interns to the same id");
/// assert_eq!(p.len(), 1);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Program {
    by_loc: HashMap<SrcLoc, StaticId>,
    insts: Vec<StaticInst>,
}

impl Program {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns a static instruction, returning its stable id.
    ///
    /// The first interning of a location fixes its [`OpKind`]; later calls
    /// from the same location return the same id.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if the same location is re-interned with a
    /// different kind (each tracing call site emits exactly one kind).
    pub fn intern(&mut self, kind: OpKind, loc: SrcLoc) -> StaticId {
        if let Some(&id) = self.by_loc.get(&loc) {
            debug_assert_eq!(
                self.insts[id.index()].kind,
                kind,
                "static instruction at {loc} re-interned with a different kind"
            );
            return id;
        }
        let id = StaticId(u32::try_from(self.insts.len()).expect("static instruction table overflow"));
        self.insts.push(StaticInst { id, kind, loc });
        self.by_loc.insert(loc, id);
        id
    }

    /// Looks up an instruction's metadata.
    ///
    /// # Panics
    ///
    /// Panics if `id` was not produced by this table.
    pub fn get(&self, id: StaticId) -> &StaticInst {
        &self.insts[id.index()]
    }

    /// Number of distinct static instructions interned so far.
    pub fn len(&self) -> usize {
        self.insts.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.insts.is_empty()
    }

    /// Iterates over all static instructions in id order.
    pub fn iter(&self) -> impl Iterator<Item = &StaticInst> {
        self.insts.iter()
    }

    /// Counts the static instructions satisfying `pred` (e.g. static
    /// loads, for the Figure 2 coverage denominator).
    pub fn count_kind(&self, pred: impl Fn(OpKind) -> bool) -> usize {
        self.insts.iter().filter(|i| pred(i.kind)).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn loc(line: u32, col: u32) -> SrcLoc {
        SrcLoc::new("k.rs", line, col, "f")
    }

    #[test]
    fn interning_is_stable_per_site() {
        let mut p = Program::new();
        let a = p.intern(OpKind::IntLoad, loc(1, 1));
        let b = p.intern(OpKind::IntAlu, loc(2, 1));
        let a2 = p.intern(OpKind::IntLoad, loc(1, 1));
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(p.len(), 2);
    }

    #[test]
    fn ids_are_dense_and_indexable() {
        let mut p = Program::new();
        for i in 0..10 {
            let id = p.intern(OpKind::IntAlu, loc(i, 1));
            assert_eq!(id.index(), i as usize);
        }
    }

    #[test]
    fn get_returns_interned_metadata() {
        let mut p = Program::new();
        let id = p.intern(OpKind::FpLoad, loc(42, 7));
        let inst = p.get(id);
        assert_eq!(inst.kind, OpKind::FpLoad);
        assert_eq!(inst.loc.line, 42);
        assert_eq!(inst.id, id);
    }

    #[test]
    fn count_kind_filters() {
        let mut p = Program::new();
        p.intern(OpKind::IntLoad, loc(1, 1));
        p.intern(OpKind::FpLoad, loc(2, 1));
        p.intern(OpKind::IntStore, loc(3, 1));
        p.intern(OpKind::CondBranch, loc(4, 1));
        assert_eq!(p.count_kind(OpKind::is_load), 2);
        assert_eq!(p.count_kind(OpKind::is_cond_branch), 1);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "different kind")]
    fn reinterning_with_different_kind_panics() {
        let mut p = Program::new();
        p.intern(OpKind::IntLoad, loc(1, 1));
        p.intern(OpKind::IntStore, loc(1, 1));
    }

    #[test]
    fn empty_table_reports_empty() {
        let p = Program::new();
        assert!(p.is_empty());
        assert_eq!(p.len(), 0);
        assert_eq!(p.iter().count(), 0);
    }
}
