//! Property tests: the load transformation is semantics-preserving for
//! arbitrary inputs, and the kernels match their reference
//! implementations.

use bioperf_bioseq::matrix::ScoringMatrix;
use bioperf_bioseq::plan7::Plan7Model;
use bioperf_bioseq::SeqGen;
use bioperf_kernels::clustalw::{
    forward_pass, forward_pass_reference, ForwardPassWorkspace, GapPenalties,
};
use bioperf_kernels::hmm::{viterbi, ViterbiWorkspace};
use bioperf_kernels::{registry, ProgramId, Scale, Variant};
use bioperf_trace::NullTracer;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Both Viterbi variants equal the reference for arbitrary models and
    /// sequences.
    #[test]
    fn viterbi_variants_match_reference(
        m in 2usize..30,
        seed in any::<u64>(),
        len in 0usize..60,
    ) {
        let model = Plan7Model::synthetic(m, seed);
        let mut gen = SeqGen::new(seed ^ 0xdead);
        let seq = gen.random_protein(len);
        let expected = model.reference_viterbi(&seq);
        let mut ws = ViterbiWorkspace::new();
        let mut t = NullTracer::new();
        prop_assert_eq!(viterbi(&mut t, &model, &seq, &mut ws, Variant::Original), expected);
        prop_assert_eq!(viterbi(&mut t, &model, &seq, &mut ws, Variant::LoadTransformed), expected);
    }

    /// Both forward-pass variants equal the reference for arbitrary
    /// sequence pairs and gap penalties.
    #[test]
    fn forward_pass_variants_match_reference(
        seed in any::<u64>(),
        n in 0usize..50,
        m in 0usize..50,
        open in 1i32..20,
        extend in 1i32..5,
    ) {
        let mut gen = SeqGen::new(seed);
        let s1 = gen.random_protein(n);
        let s2 = gen.random_protein(m);
        let matrix = ScoringMatrix::blosum62();
        let gap = GapPenalties { open, extend };
        let expected = forward_pass_reference(&s1, &s2, &matrix, gap);
        let mut ws = ForwardPassWorkspace::default();
        let mut t = NullTracer::new();
        prop_assert_eq!(
            forward_pass(&mut t, &s1, &s2, &matrix, gap, &mut ws, Variant::Original),
            expected
        );
        prop_assert_eq!(
            forward_pass(&mut t, &s1, &s2, &matrix, gap, &mut ws, Variant::LoadTransformed),
            expected
        );
    }

    /// Every transformed program agrees across variants for arbitrary
    /// seeds (checksum equality at test scale).
    #[test]
    fn whole_programs_agree_across_variants(seed in any::<u64>(), idx in 0usize..6) {
        let program = ProgramId::TRANSFORMED[idx];
        let mut t = NullTracer::new();
        let a = registry::run(&mut t, program, Variant::Original, Scale::Test, seed);
        let b = registry::run(&mut t, program, Variant::LoadTransformed, Scale::Test, seed);
        prop_assert_eq!(a, b, "{} seed {}", program, seed);
    }
}
