//! Golden result checksums: pin every program's Test-scale output so
//! accidental semantic changes to a kernel (or to the synthetic input
//! generators) are caught immediately.
//!
//! If a change to a kernel is *intended* to alter results, regenerate
//! these constants and say why in the commit.

use bioperf_kernels::{registry, ProgramId, Scale, Variant};
use bioperf_trace::NullTracer;

const GOLDEN: [(ProgramId, u64); 9] = [
    (ProgramId::Blast, 0x8f3e882f04454640),
    (ProgramId::Clustalw, 0x3e648919dbb35beb),
    (ProgramId::Dnapenny, 0x6bc77e00ce0a3150),
    (ProgramId::Fasta, 0x3a1794f0faf22421),
    (ProgramId::Hmmcalibrate, 0xca40b95d8b956b72),
    (ProgramId::Hmmpfam, 0xb08b0ead6459b56a),
    (ProgramId::Hmmsearch, 0xfe9c863ba570d3ab),
    (ProgramId::Predator, 0x0fdeaa253444d3dd),
    (ProgramId::Promlk, 0x3e053cfac1f6beec),
];

#[test]
fn original_variants_match_golden_checksums() {
    let mut t = NullTracer::new();
    for (program, expected) in GOLDEN {
        let r = registry::run(&mut t, program, Variant::Original, Scale::Test, 42);
        assert_eq!(
            r.checksum, expected,
            "{program}: result changed (got 0x{:016x}); if intended, regenerate GOLDEN",
            r.checksum
        );
    }
}

#[test]
fn transformed_variants_match_the_same_checksums() {
    // Semantics preservation pinned against the same constants.
    let mut t = NullTracer::new();
    for (program, expected) in GOLDEN {
        if !program.is_transformable() {
            continue;
        }
        let r = registry::run(&mut t, program, Variant::LoadTransformed, Scale::Test, 42);
        assert_eq!(r.checksum, expected, "{program}: transformed variant diverged");
    }
}

#[test]
fn golden_table_covers_every_program() {
    assert_eq!(GOLDEN.len(), ProgramId::ALL.len());
    for p in ProgramId::ALL {
        assert!(GOLDEN.iter().any(|(g, _)| *g == p), "{p} missing from GOLDEN");
    }
}
