//! Golden result checksums: pin every program's Test-scale output so
//! accidental semantic changes to a kernel (or to the synthetic input
//! generators) are caught immediately.
//!
//! If a change to a kernel is *intended* to alter results, regenerate
//! these constants and say why in the commit.

use bioperf_kernels::{registry, ProgramId, Scale, Variant};
use bioperf_trace::NullTracer;

// Regenerated when the workspace switched to the in-repo offline `rand`
// (xoshiro256** instead of upstream StdRng/ChaCha12): every synthetic
// input stream — and therefore every checksum — changed.
const GOLDEN: [(ProgramId, u64); 9] = [
    (ProgramId::Blast, 0xc9789ee9f270a985),
    (ProgramId::Clustalw, 0x7aa008046024b00b),
    (ProgramId::Dnapenny, 0x51ce6300bf54fd48),
    (ProgramId::Fasta, 0xc4d077e4c5564799),
    (ProgramId::Hmmcalibrate, 0xf46288108bb2a583),
    (ProgramId::Hmmpfam, 0x65bb17c3b2b18199),
    (ProgramId::Hmmsearch, 0xe9b6605fd6a8926a),
    (ProgramId::Predator, 0x464daeba8d96bab6),
    (ProgramId::Promlk, 0x8023deadb4797959),
];

#[test]
fn original_variants_match_golden_checksums() {
    let mut t = NullTracer::new();
    for (program, expected) in GOLDEN {
        let r = registry::run(&mut t, program, Variant::Original, Scale::Test, 42);
        assert_eq!(
            r.checksum, expected,
            "{program}: result changed (got 0x{:016x}); if intended, regenerate GOLDEN",
            r.checksum
        );
    }
}

#[test]
fn transformed_variants_match_the_same_checksums() {
    // Semantics preservation pinned against the same constants.
    let mut t = NullTracer::new();
    for (program, expected) in GOLDEN {
        if !program.is_transformable() {
            continue;
        }
        let r = registry::run(&mut t, program, Variant::LoadTransformed, Scale::Test, 42);
        assert_eq!(r.checksum, expected, "{program}: transformed variant diverged");
    }
}

#[test]
fn golden_table_covers_every_program() {
    assert_eq!(GOLDEN.len(), ProgramId::ALL.len());
    for p in ProgramId::ALL {
        assert!(GOLDEN.iter().any(|(g, _)| *g == p), "{p} missing from GOLDEN");
    }
}
