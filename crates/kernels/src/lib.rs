//! Rust reimplementations of the nine BioPerf program kernels.
//!
//! Each module reimplements the dominant computational kernel of one
//! BioPerf program, written against the [`Tracer`] instrumentation
//! interface so the same source runs natively (with
//! [`NullTracer`](bioperf_trace::NullTracer)) or as an instrumented
//! "binary" (with [`Tape`](bioperf_trace::Tape)).
//!
//! The six programs the paper load-transforms exist in two source shapes:
//!
//! * [`Variant::Original`] — the BioPerf source structure, with the tight
//!   load→compare→branch chains and conditional stores of the paper's
//!   Figure 6(a)/Figure 8(a),
//! * [`Variant::LoadTransformed`] — the paper's manual source-level load
//!   scheduling (Figure 6(c)/Figure 8(b)): loads hoisted into independent
//!   temporaries ahead of the guarding branches, conditional stores
//!   replaced by conditional moves, guard branches eliminated by loop
//!   restructuring.
//!
//! Both variants compute **bit-identical results** (the transformation is
//! semantics-preserving); the test suites enforce this against the slow
//! reference implementations in [`bioperf_bioseq`].
//!
//! The three remaining programs (`blast`, `fasta`, `promlk`) are
//! characterized but not transformed, exactly as in the paper.
//!
//! [`Tracer`]: bioperf_trace::Tracer

// The kernels deliberately use C-style indexed loops and multi-array
// indexing: they mirror the BioPerf C sources statement by statement so
// the traced instruction streams match the paper's machine-code figures.
#![allow(clippy::needless_range_loop)]

pub mod blast;
pub mod clustalw;
pub mod dnapenny;
pub mod fasta;
pub mod hmm;
pub mod predator;
pub mod promlk;
pub mod registry;

pub use registry::{transform_summary, ProgramId, RunResult, Scale, TransformSummary, Variant};
