//! The ClustalW progressive-alignment kernels.
//!
//! ClustalW spends its time in `forward_pass` (pairwise Smith–Waterman
//! scoring used both for the distance matrix and inside progressive
//! alignment). The inner loop is a chain of guarded maximum updates over
//! values loaded from the `HH`/`DD` rows and the substitution matrix —
//! the same load→compare→branch→conditional-store motif the paper
//! transforms in hmmsearch.
//!
//! The transformed variant applies the paper's *narrow* clustalw
//! scheduling (Table 6: 4 static loads, ~10 lines): the iteration's four
//! loads are hoisted to the top, the two-way `d` maximum becomes a
//! conditional move, and the `HH[j]` reload is eliminated; the remaining
//! guarded maxima keep their branches.

use bioperf_bioseq::align::{progressive_msa, AffineGap};
use bioperf_bioseq::matrix::ScoringMatrix;
use bioperf_bioseq::tree::{DistanceMatrix, GuideTree};
use bioperf_bioseq::SeqGen;
use bioperf_isa::here;
use bioperf_trace::Tracer;

use crate::registry::{RunResult, Scale, Variant};

/// Reusable scoring rows (`HH` = match row, `DD` = gap row), kept stable
/// across calls like ClustalW's statically allocated arrays.
#[derive(Debug, Clone, Default)]
pub struct ForwardPassWorkspace {
    hh: Vec<i32>,
    dd: Vec<i32>,
}

/// Result of one forward pass: the best local score and its end cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PassScore {
    /// Maximum local alignment score.
    pub maxscore: i32,
    /// Row of the maximum.
    pub se1: usize,
    /// Column of the maximum.
    pub se2: usize,
}

/// Gap model: opening and extension penalties (positive costs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GapPenalties {
    /// Gap-open cost `g`.
    pub open: i32,
    /// Gap-extend cost `gh`.
    pub extend: i32,
}

/// Reference (untraced, obviously correct) forward pass.
pub fn forward_pass_reference(
    s1: &[u8],
    s2: &[u8],
    matrix: &ScoringMatrix,
    gap: GapPenalties,
) -> PassScore {
    let (g, gh) = (gap.open, gap.extend);
    let m = s2.len();
    let mut hh = vec![0i32; m + 1];
    let mut dd = vec![0i32; m + 1];
    let mut best = PassScore { maxscore: 0, se1: 0, se2: 0 };
    for (i, &a) in s1.iter().enumerate() {
        let mut p = 0i32;
        let mut h = 0i32;
        let mut f = -g;
        for (j, &b) in s2.iter().enumerate() {
            f -= gh;
            let t = h - g - gh;
            if f < t {
                f = t;
            }
            let mut d = dd[j + 1] - gh;
            let t = hh[j + 1] - g - gh;
            if d < t {
                d = t;
            }
            h = p + matrix.score(a, b);
            if h < f {
                h = f;
            }
            if h < d {
                h = d;
            }
            if h < 0 {
                h = 0;
            }
            p = hh[j + 1];
            hh[j + 1] = h;
            dd[j + 1] = d;
            if h > best.maxscore {
                best = PassScore { maxscore: h, se1: i + 1, se2: j + 1 };
            }
        }
    }
    best
}

/// Instrumented forward pass in the selected source shape.
pub fn forward_pass<T: Tracer>(
    t: &mut T,
    s1: &[u8],
    s2: &[u8],
    matrix: &ScoringMatrix,
    gap: GapPenalties,
    ws: &mut ForwardPassWorkspace,
    variant: Variant,
) -> PassScore {
    match variant {
        Variant::Original => forward_pass_original(t, s1, s2, matrix, gap, ws),
        Variant::LoadTransformed => forward_pass_transformed(t, s1, s2, matrix, gap, ws),
    }
}

/// The ClustalW source shape: guarded maxima with conditional stores.
fn forward_pass_original<T: Tracer>(
    t: &mut T,
    s1: &[u8],
    s2: &[u8],
    matrix: &ScoringMatrix,
    gap: GapPenalties,
    ws: &mut ForwardPassWorkspace,
) -> PassScore {
    const F: &str = "clustalw_forward_pass_original";
    let (g, gh) = (gap.open, gap.extend);
    let m = s2.len();
    ws.hh.clear();
    ws.hh.resize(m + 1, 0);
    ws.dd.clear();
    ws.dd.resize(m + 1, 0);

    let mut best = PassScore { maxscore: 0, se1: 0, se2: 0 };
    let mut v_max = t.lit();

    for (i, &a) in s1.iter().enumerate() {
        // seq1 residue load (row pointer into the substitution matrix).
        let v_a = t.int_load(here!(F), &s1[i]);
        let row = matrix.row(a);
        let mut p = 0i32;
        let mut h = 0i32;
        let mut f = -g;
        let mut v_p = t.lit();
        let mut v_h = t.lit();
        let mut v_f = t.lit();

        for (j, &b) in s2.iter().enumerate() {
            // f -= gh; if (f < t = h - g - gh) f = t;
            v_f = t.int_op(here!(F), &[v_f]);
            f -= gh;
            let v_t = t.int_op(here!(F), &[v_h]);
            let tv = h - g - gh;
            let v_cmp = t.int_op(here!(F), &[v_f, v_t]);
            if t.branch(here!(F), &[v_cmp], f < tv) {
                f = tv;
                v_f = v_t;
            }

            // d = DD[j] - gh; if (d < t = HH[j] - g - gh) d = t;
            let v_ddj = t.int_load(here!(F), &ws.dd[j + 1]);
            let mut v_d = t.int_op(here!(F), &[v_ddj]);
            let mut d = ws.dd[j + 1] - gh;
            let v_hhj = t.int_load(here!(F), &ws.hh[j + 1]);
            let v_t = t.int_op(here!(F), &[v_hhj]);
            let tv = ws.hh[j + 1] - g - gh;
            let v_cmp = t.int_op(here!(F), &[v_d, v_t]);
            if t.branch(here!(F), &[v_cmp], d < tv) {
                d = tv;
                v_d = v_t;
            }

            // h = p + matrix[a][b]; three guarded floors.
            let v_b = t.int_load(here!(F), &s2[j]);
            let v_sub = t.int_load_via(here!(F), &row[b as usize], v_b);
            let _ = v_a;
            v_h = t.int_op(here!(F), &[v_p, v_sub]);
            h = p + row[b as usize];
            let v_cmp = t.int_op(here!(F), &[v_h, v_f]);
            if t.branch(here!(F), &[v_cmp], h < f) {
                h = f;
                v_h = v_f;
            }
            let v_cmp = t.int_op(here!(F), &[v_h, v_d]);
            if t.branch(here!(F), &[v_cmp], h < d) {
                h = d;
                v_h = v_d;
            }
            let v_cmp = t.int_op(here!(F), &[v_h]);
            if t.branch(here!(F), &[v_cmp], h < 0) {
                h = 0;
                v_h = t.lit();
            }

            // p = HH[j]; HH[j] = h; DD[j] = d;
            v_p = t.int_load(here!(F), &ws.hh[j + 1]);
            p = ws.hh[j + 1];
            t.int_store(here!(F), &ws.hh[j + 1], v_h);
            ws.hh[j + 1] = h;
            t.int_store(here!(F), &ws.dd[j + 1], v_d);
            ws.dd[j + 1] = d;

            // if (h > maxscore) { maxscore = h; se1 = i; se2 = j; }
            let v_cmp = t.int_op(here!(F), &[v_h, v_max]);
            if t.branch(here!(F), &[v_cmp], h > best.maxscore) {
                best = PassScore { maxscore: h, se1: i + 1, se2: j + 1 };
                v_max = v_h;
            }
        }
    }
    best
}

/// The load-scheduled shape. ClustalW's transformation is the narrowest
/// of the hmm-style ones (Table 6: 4 static loads, ~10 lines): the four
/// loads of the iteration — `HH[j]`, `DD[j]`, the subject residue, and
/// its substitution score — are hoisted to the top of the iteration so
/// they issue before the `f` update's branch, the two-way `d` maximum
/// becomes a conditional move with a single `DD[j]` store, and `p` reuses
/// the already-loaded `HH[j]` instead of reloading it. The remaining
/// guarded maxima keep their branches, as in the paper's clustalw.
fn forward_pass_transformed<T: Tracer>(
    t: &mut T,
    s1: &[u8],
    s2: &[u8],
    matrix: &ScoringMatrix,
    gap: GapPenalties,
    ws: &mut ForwardPassWorkspace,
) -> PassScore {
    const F: &str = "clustalw_forward_pass_transformed";
    let (g, gh) = (gap.open, gap.extend);
    let m = s2.len();
    ws.hh.clear();
    ws.hh.resize(m + 1, 0);
    ws.dd.clear();
    ws.dd.resize(m + 1, 0);

    let mut best = PassScore { maxscore: 0, se1: 0, se2: 0 };
    let mut v_max = t.lit();

    for (i, &a) in s1.iter().enumerate() {
        let _v_a = t.int_load(here!(F), &s1[i]);
        let row = matrix.row(a);
        let mut p = 0i32;
        let mut h = 0i32;
        let mut f = -g;
        let mut v_p = t.lit();
        let mut v_h = t.lit();
        let mut v_f = t.lit();

        for (j, &b) in s2.iter().enumerate() {
            // The four hoisted loads: independent of everything below.
            let v_ddj = t.int_load(here!(F), &ws.dd[j + 1]);
            let v_hhj = t.int_load(here!(F), &ws.hh[j + 1]);
            let v_b = t.int_load(here!(F), &s2[j]);
            let v_sub = t.int_load_via(here!(F), &row[b as usize], v_b);
            let sub = row[b as usize];

            // f update keeps its branch (unchanged from the original).
            v_f = t.int_op(here!(F), &[v_f]);
            f -= gh;
            let v_t = t.int_op(here!(F), &[v_h]);
            let tv = h - g - gh;
            let v_cmp = t.int_op(here!(F), &[v_f, v_t]);
            if t.branch(here!(F), &[v_cmp], f < tv) {
                f = tv;
                v_f = v_t;
            }

            // d via conditional move over the hoisted values.
            let v_tdd = t.int_op(here!(F), &[v_ddj]);
            let t_dd = ws.dd[j + 1] - gh;
            let v_thh = t.int_op(here!(F), &[v_hhj]);
            let t_hh = ws.hh[j + 1] - g - gh;
            let v_c = t.int_op(here!(F), &[v_tdd, v_thh]);
            let v_d = t.select(here!(F), &[v_c, v_tdd, v_thh], t_hh > t_dd);
            let d = t_dd.max(t_hh);

            // h and its guarded floors keep their branches.
            v_h = t.int_op(here!(F), &[v_p, v_sub]);
            h = p + sub;
            let v_cmp = t.int_op(here!(F), &[v_h, v_f]);
            if t.branch(here!(F), &[v_cmp], h < f) {
                h = f;
                v_h = v_f;
            }
            let v_cmp = t.int_op(here!(F), &[v_h, v_d]);
            if t.branch(here!(F), &[v_cmp], h < d) {
                h = d;
                v_h = v_d;
            }
            let v_cmp = t.int_op(here!(F), &[v_h]);
            if t.branch(here!(F), &[v_cmp], h < 0) {
                h = 0;
                v_h = t.lit();
            }

            // p reuses the hoisted HH[j] value; single stores.
            v_p = v_hhj;
            p = ws.hh[j + 1];
            t.int_store(here!(F), &ws.hh[j + 1], v_h);
            ws.hh[j + 1] = h;
            t.int_store(here!(F), &ws.dd[j + 1], v_d);
            ws.dd[j + 1] = d;

            let v_cmp = t.int_op(here!(F), &[v_h, v_max]);
            if t.branch(here!(F), &[v_cmp], h > best.maxscore) {
                best = PassScore { maxscore: h, se1: i + 1, se2: j + 1 };
                v_max = v_h;
            }
        }
    }
    best
}

/// Workload parameters for the clustalw driver.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClustalwConfig {
    /// Number of input sequences.
    pub seq_count: usize,
    /// Sequence length.
    pub seq_len: usize,
    /// Input seed.
    pub seed: u64,
}

impl ClustalwConfig {
    /// Standard parameters for a workload scale.
    pub fn at_scale(scale: Scale, seed: u64) -> Self {
        let (seq_count, seq_len) = match scale {
            Scale::Test => (5, 40),
            Scale::Small => (8, 70),
            Scale::Medium => (12, 110),
            Scale::Large => (16, 160),
        };
        Self { seq_count, seq_len, seed }
    }
}

/// Runs the clustalw driver (registry entry point).
pub fn run<T: Tracer>(t: &mut T, variant: Variant, scale: Scale, seed: u64) -> RunResult {
    clustalw(t, variant, &ClustalwConfig::at_scale(scale, seed))
}

/// Full clustalw pipeline: all-pairs forward passes → distance matrix →
/// neighbor-joining guide tree → progressive consensus alignment.
pub fn clustalw<T: Tracer>(t: &mut T, variant: Variant, cfg: &ClustalwConfig) -> RunResult {
    const F: &str = "clustalw_driver";
    let mut gen = SeqGen::new(cfg.seed);
    let family = gen.protein_family(cfg.seq_count, cfg.seq_len, 0.35);
    let matrix = ScoringMatrix::blosum62();
    let gap = GapPenalties { open: 10, extend: 1 };
    let mut ws = ForwardPassWorkspace::default();

    // Pre-size the scoring rows to the longest sequence (consensus merges
    // never exceed the family length) so the rows keep one allocation —
    // and one normalization region — across every forward pass.
    ws.hh.resize(cfg.seq_len + 1, 0);
    ws.dd.resize(cfg.seq_len + 1, 0);
    t.region(here!(F), &ws.hh);
    t.region(here!(F), &ws.dd);
    t.region(here!(F), matrix.data());
    for s in &family {
        t.region(here!(F), s);
    }

    // Stage 1: pairwise alignment (the dominant stage).
    let n = family.len();
    let mut dist = DistanceMatrix::new(n);
    let mut checksum = 0u64;
    let self_scores: Vec<i32> = family
        .iter()
        .map(|s| forward_pass(t, s, s, &matrix, gap, &mut ws, variant).maxscore)
        .collect();
    for i in 0..n {
        for j in (i + 1)..n {
            let score = forward_pass(t, &family[i], &family[j], &matrix, gap, &mut ws, variant);
            checksum = RunResult::fold(checksum, score.maxscore as i64);
            checksum = RunResult::fold(checksum, score.se1 as i64);
            checksum = RunResult::fold(checksum, score.se2 as i64);
            let denom = self_scores[i].min(self_scores[j]).max(1) as f64;
            dist.set(i, j, 1.0 - score.maxscore as f64 / denom);
        }
    }

    // Stage 2: guide tree.
    let tree = GuideTree::neighbor_joining(&dist);
    for leaf in tree.leaves() {
        checksum = RunResult::fold(checksum, leaf as i64);
    }

    // Stage 3: progressive alignment along the tree — each merge aligns
    // the two child consensus sequences with the same kernel.
    #[allow(clippy::too_many_arguments)] // internal recursion carries the full context
    fn consensus<T: Tracer>(
        t: &mut T,
        tree: &GuideTree,
        family: &[Vec<u8>],
        matrix: &ScoringMatrix,
        gap: GapPenalties,
        ws: &mut ForwardPassWorkspace,
        variant: Variant,
        checksum: &mut u64,
    ) -> Vec<u8> {
        const F: &str = "clustalw_consensus";
        match tree {
            GuideTree::Leaf(i) => {
                let leaf = family[*i].clone();
                t.region(here!(F), &leaf);
                leaf
            }
            GuideTree::Node(l, r) => {
                let cl = consensus(t, l, family, matrix, gap, ws, variant, checksum);
                let cr = consensus(t, r, family, matrix, gap, ws, variant, checksum);
                let score = forward_pass(t, &cl, &cr, matrix, gap, ws, variant);
                *checksum = RunResult::fold(*checksum, score.maxscore as i64);
                // Merge: take the residue-wise "older" (max-coded) symbol
                // over the common prefix; keep the longer tail.
                let (long, short) = if cl.len() >= cr.len() { (&cl, &cr) } else { (&cr, &cl) };
                let mut merged = long.to_vec();
                for (m, &s) in merged.iter_mut().zip(short.iter()) {
                    if s > *m {
                        *m = s;
                    }
                }
                t.region(here!(F), &merged);
                merged
            }
        }
    }
    let root = consensus(t, &tree, &family, &matrix, gap, &mut ws, variant, &mut checksum);
    checksum = RunResult::fold(checksum, root.len() as i64);

    // Stage 4: emit the actual multiple alignment (ClustalW's output).
    // This is driver logic shared verbatim by both variants.
    let msa = progressive_msa(&family, &tree, &matrix, AffineGap { open: 10, extend: 1 });
    checksum = RunResult::fold(checksum, msa.columns() as i64);
    checksum = RunResult::fold(checksum, (msa.average_identity() * 1e6) as i64);
    RunResult { checksum }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bioperf_trace::{consumers::InstrMix, NullTracer, Tape};

    fn pair() -> (Vec<u8>, Vec<u8>, ScoringMatrix, GapPenalties) {
        let mut gen = SeqGen::new(5);
        let a = gen.random_protein(60);
        let b = gen.mutate(&a, bioperf_bioseq::Alphabet::Protein, 0.3);
        (a, b, ScoringMatrix::blosum62(), GapPenalties { open: 10, extend: 1 })
    }

    #[test]
    fn original_matches_reference() {
        let (a, b, m, g) = pair();
        let mut ws = ForwardPassWorkspace::default();
        let mut t = NullTracer::new();
        assert_eq!(
            forward_pass_original(&mut t, &a, &b, &m, g, &mut ws),
            forward_pass_reference(&a, &b, &m, g)
        );
    }

    #[test]
    fn transformed_matches_reference() {
        let (a, b, m, g) = pair();
        let mut ws = ForwardPassWorkspace::default();
        let mut t = NullTracer::new();
        assert_eq!(
            forward_pass_transformed(&mut t, &a, &b, &m, g, &mut ws),
            forward_pass_reference(&a, &b, &m, g)
        );
    }

    #[test]
    fn homologs_outscore_random_pairs() {
        let mut gen = SeqGen::new(8);
        let a = gen.random_protein(80);
        let hom = gen.mutate(&a, bioperf_bioseq::Alphabet::Protein, 0.15);
        let rand_seq = gen.random_protein(80);
        let m = ScoringMatrix::blosum62();
        let g = GapPenalties { open: 10, extend: 1 };
        let s_hom = forward_pass_reference(&a, &hom, &m, g).maxscore;
        let s_rand = forward_pass_reference(&a, &rand_seq, &m, g).maxscore;
        assert!(s_hom > s_rand, "homolog {s_hom} vs random {s_rand}");
    }

    #[test]
    fn driver_produces_a_sane_alignment() {
        use bioperf_bioseq::align::progressive_msa;
        use bioperf_bioseq::align::AffineGap;
        use bioperf_bioseq::tree::{DistanceMatrix, GuideTree};
        let mut gen = SeqGen::new(31);
        let family = gen.protein_family(6, 50, 0.25);
        let matrix = ScoringMatrix::blosum62();
        let dist = DistanceMatrix::p_distance(&family);
        let tree = GuideTree::neighbor_joining(&dist);
        let msa = progressive_msa(&family, &tree, &matrix, AffineGap { open: 10, extend: 1 });
        assert_eq!(msa.rows.len(), 6);
        assert!(msa.average_identity() > 0.4, "{}", msa.average_identity());
    }

    #[test]
    fn driver_variants_agree() {
        let cfg = ClustalwConfig::at_scale(Scale::Test, 2);
        let mut t = NullTracer::new();
        let a = clustalw(&mut t, Variant::Original, &cfg);
        let b = clustalw(&mut t, Variant::LoadTransformed, &cfg);
        assert_eq!(a, b);
    }

    #[test]
    fn transformed_removes_only_the_d_branch() {
        // The clustalw transformation is narrow (Table 6: 4 loads, ~10
        // lines): exactly one guarded max per cell becomes a cmov.
        let (a, b, m, g) = pair();
        let mut ws = ForwardPassWorkspace::default();
        let mut tape = Tape::new(InstrMix::default());
        forward_pass_original(&mut tape, &a, &b, &m, g, &mut ws);
        let (_, orig) = tape.finish();
        let mut tape = Tape::new(InstrMix::default());
        forward_pass_transformed(&mut tape, &a, &b, &m, g, &mut ws);
        let (_, tr) = tape.finish();
        let cells = (a.len() * b.len()) as u64;
        let removed = orig.cond_branches() - tr.cond_branches();
        assert_eq!(removed, cells, "one branch per cell becomes a cmov");
    }

    #[test]
    fn empty_sequences_score_zero() {
        let m = ScoringMatrix::blosum62();
        let g = GapPenalties { open: 10, extend: 1 };
        let score = forward_pass_reference(&[], &[], &m, g);
        assert_eq!(score.maxscore, 0);
    }
}
