//! The FASTA k-tuple heuristic search kernel (characterized only — the
//! paper found no source-level scheduling opportunity in `fasta`, so
//! there is no load-transformed variant).
//!
//! The pipeline is the classic FASTA heuristic: hash the query's k-tuples
//! into chained position lists, scan each database sequence accumulating
//! hit counts per diagonal (the `diag[]` increment is a load–modify–store
//! with a chained-list walk in front of it), select the best diagonal,
//! then rescore a band around it with a small dynamic program.

use bioperf_bioseq::matrix::ScoringMatrix;
use bioperf_bioseq::SeqGen;
use bioperf_isa::here;
use bioperf_trace::Tracer;

use crate::registry::{RunResult, Scale};

const KTUP: usize = 2;
const NCODES: usize = 20 * 20;
const BAND: i64 = 8;

/// Chained k-tuple index over the query.
struct KtupIndex {
    head: Vec<i32>,
    next: Vec<i32>,
}

impl KtupIndex {
    fn build(query: &[u8]) -> Self {
        let mut head = vec![-1i32; NCODES];
        let mut next = vec![-1i32; query.len()];
        for i in 0..query.len().saturating_sub(KTUP - 1) {
            let code = query[i] as usize * 20 + query[i + 1] as usize;
            next[i] = head[code];
            head[code] = i as i32;
        }
        Self { head, next }
    }
}

/// Workload parameters for fasta.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FastaConfig {
    /// Query length.
    pub query_len: usize,
    /// Database size.
    pub db_count: usize,
    /// Shortest database sequence.
    pub seq_min: usize,
    /// Longest database sequence.
    pub seq_max: usize,
    /// Input seed.
    pub seed: u64,
}

impl FastaConfig {
    /// Standard parameters for a workload scale.
    pub fn at_scale(scale: Scale, seed: u64) -> Self {
        let (query_len, db_count, seq_min, seq_max) = match scale {
            Scale::Test => (60, 6, 40, 80),
            Scale::Small => (100, 16, 60, 140),
            Scale::Medium => (150, 36, 80, 200),
            Scale::Large => (200, 64, 100, 280),
        };
        Self { query_len, db_count, seq_min, seq_max, seed }
    }
}

/// Runs fasta (registry entry point).
pub fn run<T: Tracer>(t: &mut T, scale: Scale, seed: u64) -> RunResult {
    fasta(t, &FastaConfig::at_scale(scale, seed))
}

/// Runs the FASTA heuristic over a synthetic database.
pub fn fasta<T: Tracer>(t: &mut T, cfg: &FastaConfig) -> RunResult {
    const F: &str = "fasta_scan";
    let mut gen = SeqGen::new(cfg.seed);
    let query = gen.random_protein(cfg.query_len);
    let db = gen.protein_database(cfg.db_count, cfg.seq_min, cfg.seq_max, &query, 0.25);
    let index = KtupIndex::build(&query);
    let matrix = ScoringMatrix::blosum62();

    let ndiags = cfg.query_len + cfg.seq_max + 1;
    let mut diag = vec![0i32; ndiags];
    let mut checksum = 0u64;

    // Declare the working arrays for address normalization.
    t.region(here!(F), &query);
    t.region(here!(F), &index.head);
    t.region(here!(F), &index.next);
    t.region(here!(F), &diag);
    t.region(here!(F), matrix.data());
    for subject in &db {
        t.region(here!(F), subject);
        // Stage 1: diagonal hit accumulation.
        diag.iter_mut().for_each(|d| *d = 0);
        for j in 0..subject.len().saturating_sub(KTUP - 1) {
            // code = 20*s[j] + s[j+1]
            let v_s0 = t.int_load(here!(F), &subject[j]);
            let v_s1 = t.int_load(here!(F), &subject[j + 1]);
            let v_code = t.int_op(here!(F), &[v_s0, v_s1]);
            let code = subject[j] as usize * 20 + subject[j + 1] as usize;

            // Walk the chained query positions for this code.
            let mut v_p = t.int_load_via(here!(F), &index.head[code], v_code);
            let mut p = index.head[code];
            loop {
                if !t.branch(here!(F), &[v_p], p >= 0) {
                    break;
                }
                let i = p as usize;
                // d = j - i + query_len; diag[d]++ (load-add-store).
                let v_d = t.int_op(here!(F), &[v_p]);
                let d = (j as i64 - i as i64 + cfg.query_len as i64) as usize;
                let v_old = t.int_load_via(here!(F), &diag[d], v_d);
                let v_new = t.int_op(here!(F), &[v_old]);
                t.int_store(here!(F), &diag[d], v_new);
                diag[d] += 1;
                // p = next[p] (pointer chase).
                v_p = t.int_load_via(here!(F), &index.next[i], v_p);
                p = index.next[i];
            }
        }

        // Stage 2: best-diagonal scan (a running max with a data-dependent
        // branch, like the paper's E-state loop).
        let mut best_d = 0usize;
        let mut best_hits = -1i32;
        let mut v_best = t.lit();
        for (d, &hits) in diag.iter().enumerate().take(cfg.query_len + subject.len()) {
            let v_h = t.int_load(here!(F), &diag[d]);
            let v_cmp = t.int_op(here!(F), &[v_h, v_best]);
            if t.branch(here!(F), &[v_cmp], hits > best_hits) {
                best_hits = hits;
                best_d = d;
                v_best = v_h;
            }
        }

        // Stage 3: banded Smith–Waterman around the best diagonal.
        let score = banded_sw(t, &query, subject, &matrix, best_d as i64 - cfg.query_len as i64);
        checksum = RunResult::fold(checksum, best_d as i64);
        checksum = RunResult::fold(checksum, best_hits as i64);
        checksum = RunResult::fold(checksum, score as i64);
    }
    RunResult { checksum }
}

/// Smith–Waterman restricted to a band around diagonal `center`
/// (j − i ≈ center).
fn banded_sw<T: Tracer>(
    t: &mut T,
    query: &[u8],
    subject: &[u8],
    matrix: &ScoringMatrix,
    center: i64,
) -> i32 {
    const F: &str = "fasta_banded_sw";
    let n = query.len();
    let m = subject.len();
    let mut prev = vec![0i32; m + 1];
    let mut cur = vec![0i32; m + 1];
    t.region(here!(F), &prev);
    t.region(here!(F), &cur);
    let mut best = 0i32;
    let mut v_best = t.lit();
    let gap = 6i32;

    for i in 1..=n {
        let v_q = t.int_load(here!(F), &query[i - 1]);
        let row = matrix.row(query[i - 1]);
        cur.iter_mut().for_each(|c| *c = 0);
        let lo = (i as i64 + center - BAND).max(1);
        let hi = (i as i64 + center + BAND).min(m as i64);
        if hi < lo {
            std::mem::swap(&mut prev, &mut cur);
            continue;
        }
        for j in lo as usize..=hi as usize {
            let v_s = t.int_load(here!(F), &subject[j - 1]);
            let v_sub = t.int_load_via(here!(F), &row[subject[j - 1] as usize], v_s);
            let _ = v_q;
            let v_diag = t.int_load(here!(F), &prev[j - 1]);
            let v_h = t.int_op(here!(F), &[v_diag, v_sub]);
            let mut h = prev[j - 1] + row[subject[j - 1] as usize];

            let v_up = t.int_load(here!(F), &prev[j]);
            let v_t = t.int_op(here!(F), &[v_up]);
            let up = prev[j] - gap;
            let v_cmp = t.int_op(here!(F), &[v_h, v_t]);
            let mut v_h = v_h;
            if t.branch(here!(F), &[v_cmp], h < up) {
                h = up;
                v_h = v_t;
            }

            let v_left = t.int_load(here!(F), &cur[j - 1]);
            let v_t = t.int_op(here!(F), &[v_left]);
            let left = cur[j - 1] - gap;
            let v_cmp = t.int_op(here!(F), &[v_h, v_t]);
            if t.branch(here!(F), &[v_cmp], h < left) {
                h = left;
                v_h = v_t;
            }

            let v_cmp = t.int_op(here!(F), &[v_h]);
            if t.branch(here!(F), &[v_cmp], h < 0) {
                h = 0;
                v_h = t.lit();
            }

            t.int_store(here!(F), &cur[j], v_h);
            cur[j] = h;

            let v_cmp = t.int_op(here!(F), &[v_h, v_best]);
            if t.branch(here!(F), &[v_cmp], h > best) {
                best = h;
                v_best = v_h;
            }
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use bioperf_trace::{consumers::InstrMix, NullTracer, Tape};

    #[test]
    fn deterministic() {
        let cfg = FastaConfig::at_scale(Scale::Test, 1);
        let mut t = NullTracer::new();
        assert_eq!(fasta(&mut t, &cfg), fasta(&mut t, &cfg));
    }

    #[test]
    fn index_chains_cover_all_ktuples() {
        let query = vec![0u8, 1, 0, 1, 0];
        let idx = KtupIndex::build(&query);
        // Code (0,1) occurs at positions 0 and 2; chain should hold both.
        let code = 1usize;
        let mut positions = Vec::new();
        let mut p = idx.head[code];
        while p >= 0 {
            positions.push(p);
            p = idx.next[p as usize];
        }
        positions.sort_unstable();
        assert_eq!(positions, vec![0, 2]);
    }

    #[test]
    fn homologous_subject_scores_high_on_its_diagonal() {
        let mut gen = SeqGen::new(2);
        let query = gen.random_protein(80);
        let matrix = ScoringMatrix::blosum62();
        let mut t = NullTracer::new();
        let self_score = banded_sw(&mut t, &query, &query, &matrix, 0);
        let other = gen.random_protein(80);
        let other_score = banded_sw(&mut t, &query, &other, &matrix, 0);
        assert!(self_score > other_score * 2, "{self_score} vs {other_score}");
    }

    #[test]
    fn traces_substantial_work() {
        let cfg = FastaConfig::at_scale(Scale::Test, 3);
        let mut tape = Tape::new(InstrMix::default());
        fasta(&mut tape, &cfg);
        let (program, mix) = tape.finish();
        assert!(mix.total() > 50_000, "{}", mix.total());
        // FASTA has only a handful of static loads — Figure 2's claim.
        assert!(program.count_kind(bioperf_isa::OpKind::is_load) < 40);
    }

    #[test]
    fn banded_sw_empty_inputs() {
        let matrix = ScoringMatrix::blosum62();
        let mut t = NullTracer::new();
        assert_eq!(banded_sw(&mut t, &[], &[], &matrix, 0), 0);
    }
}
