//! Program registry: names, variants, scales, and uniform run entry
//! points for all nine BioPerf kernels.

use bioperf_trace::Tracer;

/// Source shape of a kernel (paper Section 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Variant {
    /// The BioPerf source structure with tight load→branch chains.
    Original,
    /// The paper's manual source-level load scheduling.
    LoadTransformed,
}

impl Variant {
    /// Both variants, Original first.
    pub const ALL: [Variant; 2] = [Variant::Original, Variant::LoadTransformed];

    /// Human-readable label matching the paper's tables.
    pub fn label(self) -> &'static str {
        match self {
            Variant::Original => "original",
            Variant::LoadTransformed => "load-transformed",
        }
    }
}

/// Workload size class, mirroring BioPerf's class-A/B/C input scaling.
///
/// The absolute trace lengths are scaled down from the paper's billions of
/// instructions (documented in EXPERIMENTS.md); shapes, not magnitudes,
/// are the reproduction target.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Scale {
    /// Tiny inputs for unit tests (≈ 10⁴–10⁵ traced ops).
    Test,
    /// Class-A-like (≈ 10⁵–10⁶ traced ops).
    Small,
    /// Class-B-like, used for the characterization tables (≈ 10⁶–10⁷).
    Medium,
    /// Class-C-like, used for the timing evaluation (≈ 10⁷–10⁸).
    Large,
}

impl Scale {
    /// A multiplier applied to per-program base workload parameters.
    pub fn factor(self) -> usize {
        match self {
            Scale::Test => 1,
            Scale::Small => 4,
            Scale::Medium => 16,
            Scale::Large => 48,
        }
    }

    /// The lowercase CLI / JSON name.
    pub fn name(self) -> &'static str {
        match self {
            Scale::Test => "test",
            Scale::Small => "small",
            Scale::Medium => "medium",
            Scale::Large => "large",
        }
    }

    /// Parses a CLI / JSON scale name.
    pub fn from_name(name: &str) -> Option<Self> {
        [Scale::Test, Scale::Small, Scale::Medium, Scale::Large]
            .into_iter()
            .find(|s| s.name() == name)
    }
}

/// The nine studied BioPerf programs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ProgramId {
    /// NCBI BLAST-like protein search (word seeding + ungapped extension).
    Blast,
    /// ClustalW progressive multiple alignment.
    Clustalw,
    /// PHYLIP dnapenny branch-and-bound parsimony.
    Dnapenny,
    /// FASTA k-tuple heuristic search.
    Fasta,
    /// HMMER hmmcalibrate (random-sequence EVD calibration).
    Hmmcalibrate,
    /// HMMER hmmpfam (HMM library vs. query sequences).
    Hmmpfam,
    /// HMMER hmmsearch (one HMM vs. sequence database).
    Hmmsearch,
    /// PREDATOR secondary-structure prediction alignment kernel.
    Predator,
    /// PHYLIP promlk maximum-likelihood phylogeny (molecular clock).
    Promlk,
}

impl ProgramId {
    /// All nine programs in the paper's table order.
    pub const ALL: [ProgramId; 9] = [
        ProgramId::Blast,
        ProgramId::Clustalw,
        ProgramId::Dnapenny,
        ProgramId::Fasta,
        ProgramId::Hmmcalibrate,
        ProgramId::Hmmpfam,
        ProgramId::Hmmsearch,
        ProgramId::Predator,
        ProgramId::Promlk,
    ];

    /// The six programs the paper load-transforms (Table 6).
    pub const TRANSFORMED: [ProgramId; 6] = [
        ProgramId::Dnapenny,
        ProgramId::Hmmpfam,
        ProgramId::Hmmsearch,
        ProgramId::Hmmcalibrate,
        ProgramId::Predator,
        ProgramId::Clustalw,
    ];

    /// BioPerf program name.
    pub fn name(self) -> &'static str {
        match self {
            ProgramId::Blast => "blast",
            ProgramId::Clustalw => "clustalw",
            ProgramId::Dnapenny => "dnapenny",
            ProgramId::Fasta => "fasta",
            ProgramId::Hmmcalibrate => "hmmcalibrate",
            ProgramId::Hmmpfam => "hmmpfam",
            ProgramId::Hmmsearch => "hmmsearch",
            ProgramId::Predator => "predator",
            ProgramId::Promlk => "promlk",
        }
    }

    /// Whether the paper found source-level load-scheduling opportunities
    /// in this program (Section 3.3).
    pub fn is_transformable(self) -> bool {
        Self::TRANSFORMED.contains(&self)
    }

    /// Parses a BioPerf program name.
    pub fn from_name(name: &str) -> Option<Self> {
        Self::ALL.into_iter().find(|p| p.name() == name)
    }
}

impl std::fmt::Display for ProgramId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Outcome of one kernel run: an order-independent checksum of the
/// kernel's results, used to verify that the Original and LoadTransformed
/// variants compute identical answers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunResult {
    /// Checksum over the program's scientific outputs.
    pub checksum: u64,
}

impl RunResult {
    /// Folds a value into a checksum accumulator (FNV-style).
    pub fn fold(acc: u64, value: i64) -> u64 {
        (acc ^ value as u64).wrapping_mul(0x100_0000_01b3)
    }
}

/// Runs one program kernel under the given tracer.
///
/// This is the uniform entry point used by the characterization harness
/// and the benchmark binaries. `seed` controls synthetic input generation;
/// identical `(program, variant, scale, seed)` runs are bit-reproducible.
///
/// # Panics
///
/// Panics if `variant` is [`Variant::LoadTransformed`] for one of the
/// three programs the paper does not transform (`blast`, `fasta`,
/// `promlk`).
pub fn run<T: Tracer>(
    t: &mut T,
    program: ProgramId,
    variant: Variant,
    scale: Scale,
    seed: u64,
) -> RunResult {
    if variant == Variant::LoadTransformed {
        assert!(
            program.is_transformable(),
            "{program} has no load-transformed variant (paper Section 3.3)"
        );
    }
    match program {
        ProgramId::Blast => crate::blast::run(t, scale, seed),
        ProgramId::Clustalw => crate::clustalw::run(t, variant, scale, seed),
        ProgramId::Dnapenny => crate::dnapenny::run(t, variant, scale, seed),
        ProgramId::Fasta => crate::fasta::run(t, scale, seed),
        ProgramId::Hmmcalibrate => {
            crate::hmm::hmmcalibrate(t, variant, &crate::hmm::HmmcalibrateConfig::at_scale(scale, seed))
        }
        ProgramId::Hmmpfam => {
            crate::hmm::hmmpfam(t, variant, &crate::hmm::HmmpfamConfig::at_scale(scale, seed))
        }
        ProgramId::Hmmsearch => {
            crate::hmm::hmmsearch(t, variant, &crate::hmm::HmmsearchConfig::at_scale(scale, seed))
        }
        ProgramId::Predator => crate::predator::run(t, variant, scale, seed),
        ProgramId::Promlk => crate::promlk::run(t, scale, seed),
    }
}

/// One row of the paper's Table 6: the static scope of a program's load
/// transformation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TransformSummary {
    /// Program.
    pub program: ProgramId,
    /// Static loads considered for scheduling.
    pub static_loads_considered: usize,
    /// Approximate lines of source involved in the transformation.
    pub lines_involved: usize,
}

/// The Table 6 inventory for this reproduction's six transformed kernels.
///
/// Counts reflect *this codebase's* kernels: the static load sites whose
/// scheduling differs between the two variants, and the source lines of
/// the transformed regions.
pub fn transform_summary() -> Vec<TransformSummary> {
    vec![
        TransformSummary { program: ProgramId::Dnapenny, static_loads_considered: 3, lines_involved: 12 },
        TransformSummary { program: ProgramId::Hmmpfam, static_loads_considered: 16, lines_involved: 28 },
        TransformSummary { program: ProgramId::Hmmsearch, static_loads_considered: 19, lines_involved: 32 },
        TransformSummary { program: ProgramId::Hmmcalibrate, static_loads_considered: 14, lines_involved: 26 },
        TransformSummary { program: ProgramId::Predator, static_loads_considered: 1, lines_involved: 6 },
        TransformSummary { program: ProgramId::Clustalw, static_loads_considered: 4, lines_involved: 11 },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nine_programs_six_transformable() {
        assert_eq!(ProgramId::ALL.len(), 9);
        assert_eq!(ProgramId::ALL.iter().filter(|p| p.is_transformable()).count(), 6);
        assert!(!ProgramId::Blast.is_transformable());
        assert!(!ProgramId::Fasta.is_transformable());
        assert!(!ProgramId::Promlk.is_transformable());
    }

    #[test]
    fn names_roundtrip() {
        for p in ProgramId::ALL {
            assert_eq!(ProgramId::from_name(p.name()), Some(p));
        }
        assert_eq!(ProgramId::from_name("nonesuch"), None);
    }

    #[test]
    fn scales_are_ordered() {
        assert!(Scale::Test < Scale::Small);
        assert!(Scale::Small.factor() < Scale::Large.factor());
    }

    #[test]
    fn transform_summary_covers_exactly_the_transformed_set() {
        let summary = transform_summary();
        assert_eq!(summary.len(), 6);
        for row in &summary {
            assert!(row.program.is_transformable());
            assert!(row.static_loads_considered >= 1);
            assert!(row.lines_involved > 0);
        }
    }

    #[test]
    fn checksum_fold_is_order_sensitive() {
        let a = RunResult::fold(RunResult::fold(0, 1), 2);
        let b = RunResult::fold(RunResult::fold(0, 2), 1);
        assert_ne!(a, b);
    }
}
