//! The PHYLIP `promlk` kernel: maximum-likelihood phylogeny under a
//! molecular clock (characterized only — no load-transformed variant).
//!
//! `promlk` is the suite's floating-point outlier (65% FP instructions,
//! Table 1): its time goes into evaluating per-site conditional
//! likelihood vectors up a tree. Each internal node combines its
//! children through 4×4 Jukes–Cantor transition matrices — dense FP
//! multiply/add over loaded likelihood entries, with a data-dependent
//! underflow-rescaling branch.

use bioperf_bioseq::SeqGen;
use bioperf_isa::here;
use bioperf_trace::Tracer;

use crate::registry::{RunResult, Scale};

const NSTATES: usize = 4;
const SCALE_THRESHOLD: f64 = 1e-50;
const SCALE_FACTOR: f64 = 1e50;

/// Jukes–Cantor transition probability matrix for branch length `t`.
fn jc_matrix(t: f64) -> [[f64; NSTATES]; NSTATES] {
    let e = (-4.0 * t / 3.0).exp();
    let same = 0.25 + 0.75 * e;
    let diff = 0.25 - 0.25 * e;
    let mut p = [[diff; NSTATES]; NSTATES];
    for (i, row) in p.iter_mut().enumerate() {
        row[i] = same;
    }
    p
}

/// A balanced binary tree over the species, with per-edge branch lengths.
struct CladeTree {
    /// For each internal node: (left child, right child). Children `< n`
    /// are leaves; children `>= n` index internal nodes at `child - n`.
    joins: Vec<(usize, usize)>,
    n_leaves: usize,
}

impl CladeTree {
    /// A left-leaning ladder tree (promlk's clocked trees are rooted).
    fn ladder(n_leaves: usize) -> Self {
        assert!(n_leaves >= 2);
        let mut joins = Vec::with_capacity(n_leaves - 1);
        joins.push((0, 1));
        for leaf in 2..n_leaves {
            let prev_internal = n_leaves + joins.len() - 1;
            joins.push((prev_internal, leaf));
        }
        Self { joins, n_leaves }
    }
}

/// Workload parameters for promlk.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PromlkConfig {
    /// Number of species.
    pub species: usize,
    /// Number of sites.
    pub sites: usize,
    /// Branch-length optimization iterations.
    pub iterations: usize,
    /// Input seed.
    pub seed: u64,
}

impl PromlkConfig {
    /// Standard parameters for a workload scale.
    pub fn at_scale(scale: Scale, seed: u64) -> Self {
        let (species, sites, iterations) = match scale {
            Scale::Test => (6, 60, 3),
            Scale::Small => (8, 150, 5),
            Scale::Medium => (10, 300, 8),
            Scale::Large => (12, 500, 12),
        };
        Self { species, sites, iterations, seed }
    }
}

/// Runs promlk (registry entry point).
pub fn run<T: Tracer>(t: &mut T, scale: Scale, seed: u64) -> RunResult {
    promlk(t, &PromlkConfig::at_scale(scale, seed))
}

/// Evaluates the clocked ML likelihood over a ladder tree for several
/// candidate branch-length scalings (a simple line search, as promlk's
/// iterative optimizer does).
pub fn promlk<T: Tracer>(t: &mut T, cfg: &PromlkConfig) -> RunResult {
    const F: &str = "promlk_likelihood";
    let mut gen = SeqGen::new(cfg.seed);
    let matrix = gen.dna_character_matrix(cfg.species, cfg.sites);
    let tree = CladeTree::ladder(cfg.species);

    // Leaf conditional likelihoods: 1.0 at the observed base.
    let leaf_cl: Vec<Vec<[f64; NSTATES]>> = matrix
        .iter()
        .map(|row| {
            row.iter()
                .map(|&b| {
                    let mut v = [0.0; NSTATES];
                    v[b as usize] = 1.0;
                    v
                })
                .collect()
        })
        .collect();

    // Declare the stable working arrays for address normalization.
    for row in &matrix {
        t.region(here!(F), row);
    }
    for site_cl in &leaf_cl {
        t.region(here!(F), site_cl);
    }

    let mut checksum = 0u64;
    let mut best_ll = f64::NEG_INFINITY;
    for iter in 0..cfg.iterations {
        // Integer phase: promlk's topology bookkeeping — a compatibility
        // screen over species pairs on the raw character matrix (loads,
        // compares, and counting, no FP).
        {
            const FI: &str = "promlk_pair_screen";
            let mut agree_total = 0u64;
            for a in 0..cfg.species {
                for b in (a + 1)..cfg.species {
                    let mut v_cnt = t.lit();
                    let mut agree = 0u64;
                    let mut transversions = 0u64;
                    for site in 0..cfg.sites {
                        let v_a = t.int_load(here!(FI), &matrix[a][site]);
                        let v_b = t.int_load(here!(FI), &matrix[b][site]);
                        let v_c = t.int_op(here!(FI), &[v_a, v_b]);
                        if t.branch(here!(FI), &[v_c], matrix[a][site] == matrix[b][site]) {
                            v_cnt = t.int_op(here!(FI), &[v_cnt]);
                            agree += 1;
                        } else {
                            // Transition vs transversion: purine (A,G =
                            // codes 0,2) against pyrimidine (C,T = 1,3).
                            let v_pa = t.int_op(here!(FI), &[v_a]);
                            let v_pb = t.int_op(here!(FI), &[v_b]);
                            let v_x = t.int_op(here!(FI), &[v_pa, v_pb]);
                            let tv = (matrix[a][site] & 1) != (matrix[b][site] & 1);
                            if t.branch(here!(FI), &[v_x], tv) {
                                v_cnt = t.int_op(here!(FI), &[v_cnt]);
                                transversions += 1;
                            }
                        }
                    }
                    agree_total += agree + transversions;
                }
            }
            checksum = RunResult::fold(checksum, agree_total as i64);
        }

        let t_edge = 0.05 + 0.05 * iter as f64;
        let p = jc_matrix(t_edge);
        // The transition matrix lives on the stack; declare it so its
        // (run-dependent) frame address normalizes deterministically.
        t.region(here!(F), &p[..]);

        // Conditional likelihoods for internal nodes, bottom-up.
        let mut internal_cl: Vec<Vec<[f64; NSTATES]>> = Vec::with_capacity(tree.joins.len());
        let mut log_scale = 0.0f64;
        for &(lc, rc) in &tree.joins {
            let left = if lc < tree.n_leaves { &leaf_cl[lc] } else { &internal_cl[lc - tree.n_leaves] };
            let right = if rc < tree.n_leaves { &leaf_cl[rc] } else { &internal_cl[rc - tree.n_leaves] };

            let mut node = vec![[0.0f64; NSTATES]; cfg.sites];
            t.region(here!(F), &node);
            let mut v_site = t.lit();
            for site in 0..cfg.sites {
                // Site-loop control and indexing (integer).
                v_site = t.int_op(here!(F), &[v_site]);
                t.branch(here!(F), &[v_site], site + 1 < cfg.sites);
                let lsite = &left[site];
                let rsite = &right[site];
                let out = &mut node[site];
                for x in 0..NSTATES {
                    // sum over y of P[x][y] * L_left[y], and same for right.
                    let mut suml = 0.0;
                    let mut sumr = 0.0;
                    let mut v_suml = t.lit();
                    let mut v_sumr = t.lit();
                    for y in 0..NSTATES {
                        let v_p = t.fp_load(here!(F), &p[x][y]);
                        let v_l = t.fp_load(here!(F), &lsite[y]);
                        let v_m = t.fp_mul(here!(F), &[v_p, v_l]);
                        v_suml = t.fp_op(here!(F), &[v_suml, v_m]);
                        suml += p[x][y] * lsite[y];
                        let v_r = t.fp_load(here!(F), &rsite[y]);
                        let v_m = t.fp_mul(here!(F), &[v_p, v_r]);
                        v_sumr = t.fp_op(here!(F), &[v_sumr, v_m]);
                        sumr += p[x][y] * rsite[y];
                    }
                    let v_prod = t.fp_mul(here!(F), &[v_suml, v_sumr]);
                    t.fp_store(here!(F), &out[x], v_prod);
                    out[x] = suml * sumr;
                }
                // Underflow rescaling: data-dependent, rarely taken.
                let v_l0 = t.fp_load(here!(F), &out[0]);
                let v_cmp = t.fp_op(here!(F), &[v_l0]);
                let tiny = out.iter().all(|&v| v < SCALE_THRESHOLD);
                if t.branch(here!(F), &[v_cmp], tiny) {
                    for x in 0..NSTATES {
                        let v = t.fp_load(here!(F), &out[x]);
                        let v2 = t.fp_mul(here!(F), &[v]);
                        t.fp_store(here!(F), &out[x], v2);
                        out[x] *= SCALE_FACTOR;
                    }
                    log_scale -= SCALE_FACTOR.ln();
                }
            }
            internal_cl.push(node);
        }

        // Root log-likelihood with uniform base frequencies.
        let root = internal_cl.last().expect("at least one join");
        let mut ll = log_scale;
        for site in 0..cfg.sites {
            let mut lik = 0.0;
            let mut v_lik = t.lit();
            for x in 0..NSTATES {
                let v = t.fp_load(here!(F), &root[site][x]);
                let v2 = t.fp_mul(here!(F), &[v]);
                v_lik = t.fp_op(here!(F), &[v_lik, v2]);
                lik += 0.25 * root[site][x];
            }
            // log() is a long-latency FP operation.
            let v_log = t.fp_div(here!(F), &[v_lik]);
            let _ = v_log;
            ll += lik.max(f64::MIN_POSITIVE).ln();
        }

        if ll > best_ll {
            best_ll = ll;
        }
        checksum = RunResult::fold(checksum, (ll * 1e6) as i64);
    }
    checksum = RunResult::fold(checksum, (best_ll * 1e6) as i64);
    RunResult { checksum }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bioperf_trace::{consumers::InstrMix, NullTracer, Tape};

    #[test]
    fn jc_matrix_rows_sum_to_one() {
        for t in [0.01, 0.1, 1.0, 10.0] {
            let p = jc_matrix(t);
            for row in p {
                let s: f64 = row.iter().sum();
                assert!((s - 1.0).abs() < 1e-12, "t={t}: row sums to {s}");
            }
        }
    }

    #[test]
    fn jc_matrix_limits() {
        let near = jc_matrix(1e-9);
        assert!(near[0][0] > 0.999);
        let far = jc_matrix(100.0);
        assert!((far[0][0] - 0.25).abs() < 1e-3, "saturates to uniform");
    }

    #[test]
    fn ladder_tree_shape() {
        let t = CladeTree::ladder(5);
        assert_eq!(t.joins.len(), 4);
        assert_eq!(t.joins[0], (0, 1));
        assert_eq!(t.joins[3], (5 + 2, 4));
    }

    #[test]
    fn deterministic() {
        let cfg = PromlkConfig::at_scale(Scale::Test, 1);
        let mut t = NullTracer::new();
        assert_eq!(promlk(&mut t, &cfg), promlk(&mut t, &cfg));
    }

    #[test]
    fn promlk_is_fp_dominated() {
        // Table 1: promlk executes ~65% floating-point instructions.
        let cfg = PromlkConfig::at_scale(Scale::Test, 2);
        let mut tape = Tape::new(InstrMix::default());
        promlk(&mut tape, &cfg);
        let (_, mix) = tape.finish();
        assert!(mix.fp_fraction() > 0.5, "fp fraction {}", mix.fp_fraction());
        assert!(mix.fp_loads() > 0);
    }

    #[test]
    fn related_sequences_have_higher_likelihood_than_random() {
        // A matrix of near-identical sequences should fit the short-branch
        // model better than unrelated ones. Compare checksummed best LL
        // indirectly by direct recomputation.
        let mut gen = SeqGen::new(3);
        let related = gen.dna_character_matrix(4, 100);
        let ll_related = direct_ll(&related, 0.05);
        let unrelated: Vec<Vec<u8>> = (0..4).map(|_| gen.random_dna(100)).collect();
        let ll_unrelated = direct_ll(&unrelated, 0.05);
        assert!(ll_related > ll_unrelated, "{ll_related} vs {ll_unrelated}");
    }

    /// Untraced direct likelihood of a ladder tree (test oracle).
    fn direct_ll(matrix: &[Vec<u8>], t_edge: f64) -> f64 {
        let n = matrix.len();
        let sites = matrix[0].len();
        let p = jc_matrix(t_edge);
        let tree = CladeTree::ladder(n);
        let leaf_cl: Vec<Vec<[f64; 4]>> = matrix
            .iter()
            .map(|row| {
                row.iter()
                    .map(|&b| {
                        let mut v = [0.0; 4];
                        v[b as usize] = 1.0;
                        v
                    })
                    .collect()
            })
            .collect();
        let mut internal: Vec<Vec<[f64; 4]>> = Vec::new();
        for &(lc, rc) in &tree.joins {
            let left = if lc < n { &leaf_cl[lc] } else { &internal[lc - n] };
            let right = if rc < n { &leaf_cl[rc] } else { &internal[rc - n] };
            let node: Vec<[f64; 4]> = (0..sites)
                .map(|s| {
                    let mut out = [0.0; 4];
                    for (x, o) in out.iter_mut().enumerate() {
                        let suml: f64 = (0..4).map(|y| p[x][y] * left[s][y]).sum();
                        let sumr: f64 = (0..4).map(|y| p[x][y] * right[s][y]).sum();
                        *o = suml * sumr;
                    }
                    out
                })
                .collect();
            internal.push(node);
        }
        let root = internal.last().unwrap();
        (0..sites).map(|s| (0..4).map(|x| 0.25 * root[s][x]).sum::<f64>().ln()).sum()
    }
}
