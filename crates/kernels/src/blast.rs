//! The BLAST kernel: word seeding plus ungapped X-drop extension
//! (characterized only — the paper does not transform `blast`).
//!
//! `blast` has the suite's highest load→branch fraction (75.7%) and the
//! hardest branches (19.9% misprediction): the X-drop extension loop
//! loads two residues, scores them, updates a running sum, and branches
//! on `score > best - X` every iteration — a pure load→compare→branch
//! chain whose trip count is data-dependent.

use bioperf_bioseq::matrix::ScoringMatrix;
use bioperf_bioseq::SeqGen;
use bioperf_isa::here;
use bioperf_trace::Tracer;

use crate::registry::{RunResult, Scale};

const WORD: usize = 3;
const NCODES: usize = 20 * 20 * 20;
const XDROP: i32 = 12;

/// Neighborhood word threshold (blastp's `T`): a database word triggers
/// a query position if the pairwise BLOSUM score of the 3-mer pair is at
/// least this value.
const NEIGHBOR_T: i32 = 9;

/// Chained neighborhood 3-mer index over the query, as in real blastp:
/// every word scoring at least [`NEIGHBOR_T`] against a query word is
/// indexed, not just exact matches.
struct WordIndex {
    head: Vec<i32>,
    next: Vec<i32>,
    pos: Vec<i32>,
}

impl WordIndex {
    fn build(query: &[u8], matrix: &ScoringMatrix) -> Self {
        let mut head = vec![-1i32; NCODES];
        let mut next = Vec::new();
        let mut pos = Vec::new();
        for code in 0..NCODES {
            let (c0, c1, c2) = ((code / 400) as u8, (code / 20 % 20) as u8, (code % 20) as u8);
            for i in 0..query.len().saturating_sub(WORD - 1) {
                let score = matrix.score(query[i], c0)
                    + matrix.score(query[i + 1], c1)
                    + matrix.score(query[i + 2], c2);
                if score >= NEIGHBOR_T {
                    next.push(head[code]);
                    pos.push(i as i32);
                    head[code] = (pos.len() - 1) as i32;
                }
            }
        }
        Self { head, next, pos }
    }
}

/// Workload parameters for blast.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlastConfig {
    /// Query length.
    pub query_len: usize,
    /// Database size.
    pub db_count: usize,
    /// Shortest database sequence.
    pub seq_min: usize,
    /// Longest database sequence.
    pub seq_max: usize,
    /// Input seed.
    pub seed: u64,
}

impl BlastConfig {
    /// Standard parameters for a workload scale.
    pub fn at_scale(scale: Scale, seed: u64) -> Self {
        let (query_len, db_count, seq_min, seq_max) = match scale {
            Scale::Test => (80, 10, 50, 100),
            Scale::Small => (140, 24, 80, 160),
            Scale::Medium => (200, 56, 100, 240),
            Scale::Large => (280, 96, 140, 320),
        };
        Self { query_len, db_count, seq_min, seq_max, seed }
    }
}

/// Runs blast (registry entry point).
pub fn run<T: Tracer>(t: &mut T, scale: Scale, seed: u64) -> RunResult {
    blast(t, &BlastConfig::at_scale(scale, seed))
}

/// Runs the word-seeded ungapped search over a synthetic database.
pub fn blast<T: Tracer>(t: &mut T, cfg: &BlastConfig) -> RunResult {
    const F: &str = "blast_scan";
    let mut gen = SeqGen::new(cfg.seed);
    let query = gen.random_protein(cfg.query_len);
    let db = gen.protein_database(cfg.db_count, cfg.seq_min, cfg.seq_max, &query, 0.3);
    let matrix = ScoringMatrix::blosum62();
    let index = WordIndex::build(&query, &matrix);

    let mut checksum = 0u64;
    // Two-hit diagonal bookkeeping, as in real blastp: the last word-hit
    // position per diagonal is stored and reloaded on every hit.
    let ndiags = cfg.query_len + cfg.seq_max + 1;
    let mut last_hit = vec![-1i64; ndiags];
    // Declare the working arrays for address normalization.
    t.region(here!(F), &query);
    t.region(here!(F), &index.head);
    t.region(here!(F), &index.next);
    t.region(here!(F), &index.pos);
    t.region(here!(F), &last_hit);
    for subject in &db {
        t.region(here!(F), subject);
        last_hit.iter_mut().for_each(|d| *d = -1);
        let mut best_hit = 0i32;
        let mut v_best = t.lit();
        for j in 0..subject.len().saturating_sub(WORD - 1) {
            // Word code from three subject residues.
            let v_s0 = t.int_load(here!(F), &subject[j]);
            let v_s1 = t.int_load(here!(F), &subject[j + 1]);
            let v_s2 = t.int_load(here!(F), &subject[j + 2]);
            let v_c = t.int_op(here!(F), &[v_s0, v_s1, v_s2]);
            let code = subject[j] as usize * 400
                + subject[j + 1] as usize * 20
                + subject[j + 2] as usize;

            // Chase the query-position chain for this word.
            let mut v_p = t.int_load_via(here!(F), &index.head[code], v_c);
            let mut p = index.head[code];
            loop {
                if !t.branch(here!(F), &[v_p], p >= 0) {
                    break;
                }
                let v_i = t.int_load_via(here!(F), &index.pos[p as usize], v_p);
                let _ = v_i;
                let i = index.pos[p as usize] as usize;
                // Two-hit check: load the diagonal's last hit position,
                // extend only on a recent second hit, store the update.
                let d = (j as i64 - i as i64 + cfg.query_len as i64) as usize;
                let v_last = t.int_load_via(here!(F), &last_hit[d], v_p);
                let v_gap = t.int_op(here!(F), &[v_last]);
                let recent = last_hit[d] >= 0 && (j as i64 - last_hit[d]) <= 40;
                let v_j = t.lit();
                t.int_store(here!(F), &last_hit[d], v_j);
                let prev = last_hit[d];
                last_hit[d] = j as i64;
                if t.branch(here!(F), &[v_gap], recent) {
                    let _ = prev;
                    let score = extend(t, &query, subject, &matrix, i, j);
                    let v_sc = t.lit();
                    let v_cmp = t.int_op(here!(F), &[v_sc, v_best]);
                    if t.branch(here!(F), &[v_cmp], score > best_hit) {
                        best_hit = score;
                        v_best = v_sc;
                    }
                }
                let entry = p as usize;
                v_p = t.int_load_via(here!(F), &index.next[entry], v_p);
                p = index.next[entry];
            }
        }
        checksum = RunResult::fold(checksum, best_hit as i64);
    }
    RunResult { checksum }
}

/// Ungapped X-drop extension of a seed at `(qi, sj)` in both directions.
///
/// This is the load→branch hot loop: every iteration loads a query and a
/// subject residue, scores them through the substitution matrix, and
/// branches on the X-drop condition.
fn extend<T: Tracer>(
    t: &mut T,
    query: &[u8],
    subject: &[u8],
    matrix: &ScoringMatrix,
    qi: usize,
    sj: usize,
) -> i32 {
    const F: &str = "blast_extend";
    // Seed score.
    let mut score = 0i32;
    let mut v_score = t.lit();
    for w in 0..WORD {
        let v_q = t.int_load(here!(F), &query[qi + w]);
        let v_s = t.int_load(here!(F), &subject[sj + w]);
        let v_m = t.int_op(here!(F), &[v_q, v_s]);
        v_score = t.int_op(here!(F), &[v_score, v_m]);
        score += matrix.score(query[qi + w], subject[sj + w]);
    }
    let mut best = score;
    let mut v_best = v_score;

    // Right extension.
    let (mut i, mut j) = (qi + WORD, sj + WORD);
    loop {
        // Bounds check branch.
        let v_cmp = t.int_op(here!(F), &[v_score]);
        if !t.branch(here!(F), &[v_cmp], i < query.len() && j < subject.len()) {
            break;
        }
        let v_q = t.int_load(here!(F), &query[i]);
        let v_s = t.int_load(here!(F), &subject[j]);
        let v_m = t.int_op(here!(F), &[v_q, v_s]);
        v_score = t.int_op(here!(F), &[v_score, v_m]);
        score += matrix.score(query[i], subject[j]);

        // if (score > best) best = score;
        let v_cmp = t.int_op(here!(F), &[v_score, v_best]);
        if t.branch(here!(F), &[v_cmp], score > best) {
            best = score;
            v_best = v_score;
        }
        // X-drop: while (score > best - X).
        let v_cmp = t.int_op(here!(F), &[v_score, v_best]);
        if !t.branch(here!(F), &[v_cmp], score > best - XDROP) {
            break;
        }
        i += 1;
        j += 1;
    }

    // Left extension.
    let mut score_l = best;
    let mut v_score = v_best;
    let (mut i, mut j) = (qi, sj);
    loop {
        let v_cmp = t.int_op(here!(F), &[v_score]);
        if !t.branch(here!(F), &[v_cmp], i > 0 && j > 0) {
            break;
        }
        i -= 1;
        j -= 1;
        let v_q = t.int_load(here!(F), &query[i]);
        let v_s = t.int_load(here!(F), &subject[j]);
        let v_m = t.int_op(here!(F), &[v_q, v_s]);
        v_score = t.int_op(here!(F), &[v_score, v_m]);
        score_l += matrix.score(query[i], subject[j]);

        let v_cmp = t.int_op(here!(F), &[v_score, v_best]);
        if t.branch(here!(F), &[v_cmp], score_l > best) {
            best = score_l;
            v_best = v_score;
        }
        let v_cmp = t.int_op(here!(F), &[v_score, v_best]);
        if !t.branch(here!(F), &[v_cmp], score_l > best - XDROP) {
            break;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use bioperf_trace::{consumers::InstrMix, NullTracer, Tape};

    #[test]
    fn deterministic() {
        let cfg = BlastConfig::at_scale(Scale::Test, 1);
        let mut t = NullTracer::new();
        assert_eq!(blast(&mut t, &cfg), blast(&mut t, &cfg));
    }

    #[test]
    fn self_extension_covers_whole_query() {
        let mut gen = SeqGen::new(2);
        let q = gen.random_protein(50);
        let matrix = ScoringMatrix::blosum62();
        let mut t = NullTracer::new();
        let score = extend(&mut t, &q, &q, &matrix, 20, 20);
        // Extending a perfect self-match accumulates every residue's
        // positive diagonal score.
        let full: i32 = q.iter().map(|&r| matrix.score(r, r)).sum();
        assert_eq!(score, full);
    }

    #[test]
    fn extension_stops_on_mismatch_run() {
        let matrix = ScoringMatrix::blosum62();
        // Query = AAAA...; subject matches for 6 residues then diverges to
        // tryptophan mismatches (A vs W = -3).
        let q = vec![0u8; 30];
        let mut s = vec![0u8; 30];
        for r in s.iter_mut().skip(6) {
            *r = 17; // W
        }
        let mut t = NullTracer::new();
        let score = extend(&mut t, &q, &s, &matrix, 0, 0);
        let expect: i32 = 6 * matrix.score(0, 0);
        assert_eq!(score, expect, "X-drop should stop the extension");
    }

    #[test]
    fn word_index_contains_exact_and_neighbor_words() {
        let matrix = ScoringMatrix::blosum62();
        let q = vec![4u8, 17, 4, 4, 17, 4]; // CWC CWC: high self-scores
        let idx = WordIndex::build(&q, &matrix);
        let code = 4usize * 400 + 17 * 20 + 4;
        let mut positions = Vec::new();
        let mut p = idx.head[code];
        while p >= 0 {
            positions.push(idx.pos[p as usize]);
            p = idx.next[p as usize];
        }
        positions.sort_unstable();
        // Exact occurrences at 0 and 3 must be indexed (self-score 29).
        assert!(positions.contains(&0) && positions.contains(&3), "{positions:?}");
        // Neighborhood: a near-identical word also triggers position 0.
        let neighbor = 4usize * 400 + 17 * 20 + 15; // C W S
        assert!(idx.head[neighbor] >= 0, "neighbor word missing");
    }

    #[test]
    fn blast_is_load_branch_heavy() {
        let cfg = BlastConfig::at_scale(Scale::Test, 3);
        let mut tape = Tape::new(InstrMix::default());
        blast(&mut tape, &cfg);
        let (_, mix) = tape.finish();
        let branches = mix.cond_branches() as f64 / mix.total() as f64;
        assert!(branches > 0.15, "branch fraction {branches}");
        assert!(mix.loads() > 0);
    }
}
