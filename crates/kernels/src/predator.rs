//! The PREDATOR alignment kernel (paper Figure 8, from `prdfali.c`).
//!
//! PREDATOR predicts protein secondary structure by aligning the query
//! against database fragments under *pair constraints*: `row[i]` is a
//! linked list of columns already paired with row `i`. The hot cell
//! update is exactly the paper's Figure 8 snippet:
//!
//! ```c
//! c = k * m;
//! for (tt = 1, z = row[i]; z != PAIRNULL; z = z->NEXT)
//!     if (z->COL == j) { tt = 0; break; }
//! if (tt != 0)
//!     c = va[j];          /* load right after a hard-to-predict branch */
//! if (c <= 0) { c = 0; ci = i; cj = j; }
//! else        { ci = pi; cj = pj; }
//! ```
//!
//! The transformed variant hoists the `va[j]` load above the `for` loop
//! (safe because `j` is always a valid index, which the compiler cannot
//! prove) and uses the list walk to hide its latency, with the inverted
//! fix-up `if (tt == 0) c = temp1;`.

use bioperf_bioseq::SeqGen;
use bioperf_isa::here;
use bioperf_trace::Tracer;
use rand::Rng;

use crate::registry::{RunResult, Scale, Variant};

/// Arena-allocated pair-constraint lists: `head[i]` indexes into `nodes`,
/// `-1` is `PAIRNULL`.
#[derive(Debug, Clone)]
struct PairLists {
    head: Vec<i32>,
    col: Vec<i32>,
    next: Vec<i32>,
}

impl PairLists {
    /// Builds lists where each row holds a random subset of columns, so
    /// the "pair found" guard is genuinely data-dependent.
    fn generate(gen: &mut SeqGen, rows: usize, cols: usize, density: f64) -> Self {
        let mut head = vec![-1i32; rows];
        let mut col = Vec::new();
        let mut next = Vec::new();
        for (i, h) in head.iter_mut().enumerate() {
            // Pseudo-shuffled column order per row.
            let step = 1 + gen.index(cols - 1).max(1);
            let mut c = gen.index(cols);
            for _ in 0..cols {
                c = (c + step) % cols;
                if gen.rng().gen_bool(density) {
                    let idx = col.len() as i32;
                    col.push(c as i32);
                    next.push(*h);
                    *h = idx;
                }
            }
            let _ = i;
        }
        Self { head, col, next }
    }

    /// Untraced membership check, for result validation.
    #[cfg(test)]
    fn contains(&self, i: usize, j: i32) -> bool {
        let mut z = self.head[i];
        while z >= 0 {
            if self.col[z as usize] == j {
                return true;
            }
            z = self.next[z as usize];
        }
        false
    }
}

/// Workload parameters for the predator kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PredatorConfig {
    /// Alignment rows.
    pub rows: usize,
    /// Alignment columns.
    pub cols: usize,
    /// Number of full passes over the matrix.
    pub passes: usize,
    /// Input seed.
    pub seed: u64,
}

impl PredatorConfig {
    /// Standard parameters for a workload scale.
    pub fn at_scale(scale: Scale, seed: u64) -> Self {
        let (rows, cols, passes) = match scale {
            Scale::Test => (16, 16, 4),
            Scale::Small => (32, 16, 10),
            Scale::Medium => (48, 24, 20),
            Scale::Large => (64, 32, 28),
        };
        Self { rows, cols, passes, seed }
    }
}

/// Runs the predator kernel at a given scale (registry entry point).
pub fn run<T: Tracer>(t: &mut T, variant: Variant, scale: Scale, seed: u64) -> RunResult {
    let cfg = PredatorConfig::at_scale(scale, seed);
    predator(t, variant, &cfg)
}

/// Runs the pair-constrained scoring kernel.
pub fn predator<T: Tracer>(t: &mut T, variant: Variant, cfg: &PredatorConfig) -> RunResult {
    let mut gen = SeqGen::new(cfg.seed);
    let lists = PairLists::generate(&mut gen, cfg.rows, cfg.cols, 0.3);
    // va: mixture of positive and negative scores so `c <= 0` stays
    // data-dependent (hard to predict).
    let va: Vec<i32> = (0..cfg.cols).map(|_| gen.index(200) as i32 - 100).collect();
    // Per-row multipliers and a running dp row drive `k * m`.
    let m_weights: Vec<i32> = (0..cfg.rows).map(|_| gen.index(5) as i32 - 2).collect();
    let mut dp: Vec<i32> = (0..cfg.cols).map(|_| gen.index(7) as i32 - 3).collect();

    // Secondary-structure propensities: PREDATOR's per-residue H/E/C
    // scores are floating point; each pass smooths them over a window
    // (an FP stage the paper's 13.85% FP fraction comes from).
    let mut propensity: Vec<f64> = (0..cfg.cols).map(|c| va[c] as f64 / 100.0).collect();
    let mut smoothed: Vec<f64> = vec![0.0; cfg.cols];

    // Declare the working arrays for address normalization.
    {
        const F: &str = "prdfali_driver";
        t.region(here!(F), &lists.head);
        t.region(here!(F), &lists.col);
        t.region(here!(F), &lists.next);
        t.region(here!(F), &va);
        t.region(here!(F), &dp);
        t.region(here!(F), &propensity);
        t.region(here!(F), &smoothed);
    }

    let mut checksum = 0u64;
    for pass in 0..cfg.passes {
        let (pi, pj) = (pass as i32, (pass as i32) * 3);
        for i in 0..cfg.rows {
            // Per-row propensity smoothing: PREDATOR weights each row's
            // alignment scores by windowed secondary-structure
            // propensities — the FP component of its instruction mix.
            {
                const FP: &str = "predator_propensity";
                for j in 0..cfg.cols {
                    let lo = j.saturating_sub(1);
                    let mut acc = 0.0;
                    let mut v_acc = t.lit();
                    for k in lo..=j {
                        let v = t.fp_load(here!(FP), &propensity[k]);
                        let v2 = t.fp_mul(here!(FP), &[v]);
                        v_acc = t.fp_op(here!(FP), &[v_acc, v2]);
                        acc += propensity[k] * 0.5;
                    }
                    t.fp_store(here!(FP), &smoothed[j], v_acc);
                    smoothed[j] = acc / (j - lo + 1) as f64;
                }
                std::mem::swap(&mut propensity, &mut smoothed);
                checksum = RunResult::fold(checksum, (propensity[0] * 1e6) as i64);
            }
            for j in 0..cfg.cols {
                let (c, ci, cj) = match variant {
                    Variant::Original => {
                        cell_original(t, &lists, &va, &dp, m_weights[i], i, j, pi, pj)
                    }
                    Variant::LoadTransformed => {
                        cell_transformed(t, &lists, &va, &dp, m_weights[i], i, j, pi, pj)
                    }
                };
                // Fold the cell result into the running dp row (keeps the
                // k*m operand live and data-dependent); the update is a
                // real store in the traced stream.
                let v_c = t.lit();
                t.int_store(bioperf_isa::here!("prdfali_driver"), &dp[j], v_c);
                dp[j] = (dp[j] + c) % 97;
                checksum = RunResult::fold(checksum, c as i64);
                checksum = RunResult::fold(checksum, ci as i64);
                checksum = RunResult::fold(checksum, cj as i64);
            }
        }
    }
    RunResult { checksum }
}

/// One cell in the BioPerf source shape (Figure 8(a)).
#[allow(clippy::too_many_arguments)]
fn cell_original<T: Tracer>(
    t: &mut T,
    lists: &PairLists,
    va: &[i32],
    dp: &[i32],
    m: i32,
    i: usize,
    j: usize,
    pi: i32,
    pj: i32,
) -> (i32, i32, i32) {
    const F: &str = "prdfali_original";
    // c = k * m;
    let v_k = t.int_load(here!(F), &dp[j]);
    let v_c = t.int_mul(here!(F), &[v_k]);
    let mut c = dp[j].wrapping_mul(m);

    // for (tt = 1, z = row[i]; z != PAIRNULL; z = z->NEXT)
    //     if (z->COL == j) { tt = 0; break; }
    let mut tt = 1i32;
    let mut v_z = t.int_load(here!(F), &lists.head[i]);
    let mut z = lists.head[i];
    loop {
        // z != PAIRNULL?
        if !t.branch(here!(F), &[v_z], z >= 0) {
            break;
        }
        let zi = z as usize;
        // load z->COL through the list pointer.
        let v_col = t.int_load_via(here!(F), &lists.col[zi], v_z);
        let v_cmp = t.int_op(here!(F), &[v_col]);
        if t.branch(here!(F), &[v_cmp], lists.col[zi] == j as i32) {
            tt = 0;
            break;
        }
        // z = z->NEXT (pointer chase).
        v_z = t.int_load_via(here!(F), &lists.next[zi], v_z);
        z = lists.next[zi];
    }

    // if (tt != 0) c = va[j];   — branch-to-load on a hard branch.
    let v_tt = t.int_op(here!(F), &[v_z]);
    let mut v_c = v_c;
    if t.branch(here!(F), &[v_tt], tt != 0) {
        v_c = t.int_load(here!(F), &va[j]);
        c = va[j];
    }

    // if (c <= 0) {...} else {...} — load-to-branch on the va[j] value.
    let v_cmp = t.int_op(here!(F), &[v_c]);
    let (c, ci, cj) = if t.branch(here!(F), &[v_cmp], c <= 0) {
        (0, i as i32, j as i32)
    } else {
        (c, pi, pj)
    };
    (c, ci, cj)
}

/// One cell in the paper's transformed shape (Figure 8(b)).
#[allow(clippy::too_many_arguments)]
fn cell_transformed<T: Tracer>(
    t: &mut T,
    lists: &PairLists,
    va: &[i32],
    dp: &[i32],
    m: i32,
    i: usize,
    j: usize,
    pi: i32,
    pj: i32,
) -> (i32, i32, i32) {
    const F: &str = "prdfali_transformed";
    // temp1 = k * m;
    let v_k = t.int_load(here!(F), &dp[j]);
    let v_temp1 = t.int_mul(here!(F), &[v_k]);
    let temp1 = dp[j].wrapping_mul(m);

    // c = va[j];  — hoisted above the loop; its latency hides under the
    // list walk below.
    let mut v_c = t.int_load(here!(F), &va[j]);
    let mut c = va[j];

    let mut tt = 1i32;
    let mut v_z = t.int_load(here!(F), &lists.head[i]);
    let mut z = lists.head[i];
    loop {
        if !t.branch(here!(F), &[v_z], z >= 0) {
            break;
        }
        let zi = z as usize;
        let v_col = t.int_load_via(here!(F), &lists.col[zi], v_z);
        let v_cmp = t.int_op(here!(F), &[v_col]);
        if t.branch(here!(F), &[v_cmp], lists.col[zi] == j as i32) {
            tt = 0;
            break;
        }
        v_z = t.int_load_via(here!(F), &lists.next[zi], v_z);
        z = lists.next[zi];
    }

    // if (tt == 0) c = temp1;  — corrective move, no load after the branch.
    let v_tt = t.int_op(here!(F), &[v_z]);
    if t.branch(here!(F), &[v_tt], tt == 0) {
        v_c = v_temp1;
        c = temp1;
    }

    let v_cmp = t.int_op(here!(F), &[v_c]);
    let (c, ci, cj) = if t.branch(here!(F), &[v_cmp], c <= 0) {
        (0, i as i32, j as i32)
    } else {
        (c, pi, pj)
    };
    (c, ci, cj)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bioperf_trace::{consumers::InstrMix, NullTracer, Tape};

    #[test]
    fn variants_agree() {
        for seed in 0..5 {
            let cfg = PredatorConfig::at_scale(Scale::Test, seed);
            let mut t = NullTracer::new();
            let a = predator(&mut t, Variant::Original, &cfg);
            let b = predator(&mut t, Variant::LoadTransformed, &cfg);
            assert_eq!(a, b, "seed {seed}");
        }
    }

    #[test]
    fn cell_semantics_match_direct_evaluation() {
        let mut gen = SeqGen::new(3);
        let lists = PairLists::generate(&mut gen, 8, 12, 0.4);
        let va: Vec<i32> = (0i32..12).map(|x| x * 17 % 31 - 15).collect();
        let dp: Vec<i32> = (0i32..12).map(|x| x - 6).collect();
        let mut t = NullTracer::new();
        for i in 0..8 {
            for j in 0..12 {
                let (c, ci, cj) = cell_original(&mut t, &lists, &va, &dp, 3, i, j, -1, -2);
                // Direct re-evaluation of the Figure 8 semantics.
                let mut expect_c =
                    if lists.contains(i, j as i32) { dp[j].wrapping_mul(3) } else { va[j] };
                let (eci, ecj) =
                    if expect_c <= 0 { (i as i32, j as i32) } else { (-1, -2) };
                if expect_c <= 0 {
                    expect_c = 0;
                }
                assert_eq!((c, ci, cj), (expect_c, eci, ecj), "cell ({i},{j})");
            }
        }
    }

    #[test]
    fn transformed_cell_matches_original_cell() {
        let mut gen = SeqGen::new(9);
        let lists = PairLists::generate(&mut gen, 10, 16, 0.3);
        let va: Vec<i32> = (0i32..16).map(|x| (x * 13) % 41 - 20).collect();
        let dp: Vec<i32> = (0i32..16).map(|x| (x * 7) % 9 - 4).collect();
        let mut t = NullTracer::new();
        for i in 0..10 {
            for j in 0..16 {
                let a = cell_original(&mut t, &lists, &va, &dp, -2, i, j, 5, 6);
                let b = cell_transformed(&mut t, &lists, &va, &dp, -2, i, j, 5, 6);
                assert_eq!(a, b, "cell ({i},{j})");
            }
        }
    }

    #[test]
    fn both_variants_trace_loads_after_or_before_branches() {
        let cfg = PredatorConfig::at_scale(Scale::Test, 1);
        let mut tape = Tape::new(InstrMix::default());
        predator(&mut tape, Variant::Original, &cfg);
        let (_, orig) = tape.finish();
        let mut tape = Tape::new(InstrMix::default());
        predator(&mut tape, Variant::LoadTransformed, &cfg);
        let (_, tr) = tape.finish();
        assert!(orig.loads() > 0 && tr.loads() > 0);
        // The transformed variant loads va[j] unconditionally, so it may
        // execute MORE loads — the win is scheduling, not count.
        assert!(tr.total() as f64 > orig.total() as f64 * 0.8);
    }

    #[test]
    fn deterministic_across_runs() {
        let cfg = PredatorConfig::at_scale(Scale::Test, 11);
        let mut t = NullTracer::new();
        assert_eq!(predator(&mut t, Variant::Original, &cfg), predator(&mut t, Variant::Original, &cfg));
    }
}
