//! The `P7Viterbi` kernel in its two source shapes.
//!
//! [`viterbi_original`] mirrors BioPerf's `fast_algorithms.c` loop — the
//! paper's Figure 6(a): each cell update is a chain of short `if`
//! statements whose conditions load from two arrays and whose `then`
//! paths store conditionally. Compiled, this is exactly the Figure 3
//! pattern of tight load→compare→branch chains with intervening stores
//! that block compiler hoisting.
//!
//! [`viterbi_transformed`] mirrors Figure 6(c): all loads of a cell are
//! hoisted into independent temporaries at the top of the iteration, the
//! guarded maximum updates become conditional moves, the bounds clamps
//! become conditional moves, each result is stored exactly once, and the
//! `k < M` guard around the insert-state block is removed by shortening
//! the loop and duplicating the final iteration's match/delete code after
//! the loop exit.
//!
//! Both variants compute bit-identical scores (verified against
//! [`Plan7Model::reference_viterbi`]).
//!
//! [`Plan7Model::reference_viterbi`]: bioperf_bioseq::plan7::Plan7Model::reference_viterbi

use bioperf_bioseq::plan7::{Plan7Model, INFTY};
use bioperf_isa::here;
use bioperf_trace::Tracer;

use crate::registry::Variant;

const NEG: i32 = -INFTY;

/// Reusable DP rows for the Viterbi kernel.
///
/// Reusing the buffers across sequences keeps the working set stable, as
/// HMMER's preallocated DP matrix does — important for faithful cache
/// behaviour (the paper's "chunk that fits into L1" explanation).
#[derive(Debug, Clone, Default)]
pub struct ViterbiWorkspace {
    mpp: Vec<i32>,
    ipp: Vec<i32>,
    dpp: Vec<i32>,
    mc: Vec<i32>,
    ic: Vec<i32>,
    dc: Vec<i32>,
}

impl ViterbiWorkspace {
    /// Creates an empty workspace; rows grow on first use.
    pub fn new() -> Self {
        Self::default()
    }

    fn reset(&mut self, m: usize) {
        for row in [&mut self.mpp, &mut self.ipp, &mut self.dpp, &mut self.mc, &mut self.ic, &mut self.dc]
        {
            row.clear();
            row.resize(m + 1, NEG);
        }
    }

    fn swap_rows(&mut self) {
        std::mem::swap(&mut self.mpp, &mut self.mc);
        std::mem::swap(&mut self.ipp, &mut self.ic);
        std::mem::swap(&mut self.dpp, &mut self.dc);
    }

    /// Sizes the DP rows for `model` and declares them — together with
    /// the model's score arrays — as address-normalization regions.
    ///
    /// Drivers call this once before a scan so the rows keep a single
    /// allocation (and a single region) across every scored sequence;
    /// later `reset` calls with the same model length never reallocate.
    pub fn declare_regions<T: Tracer>(&mut self, t: &mut T, model: &Plan7Model) {
        const F: &str = "p7_viterbi_regions";
        self.reset(model.m);
        for row in [&self.mpp, &self.ipp, &self.dpp, &self.mc, &self.ic, &self.dc] {
            t.region(here!(F), row);
        }
        for v in [
            &model.tpmm,
            &model.tpmi,
            &model.tpmd,
            &model.tpim,
            &model.tpii,
            &model.tpdm,
            &model.tpdd,
            &model.bsc,
            &model.esc,
        ] {
            t.region(here!(F), v);
        }
        for row in model.msc.iter().chain(model.isc.iter()) {
            t.region(here!(F), row);
        }
    }
}

/// Scores `dsq` against `model` with the selected kernel variant.
///
/// Returns the Viterbi score in integer log-odds units; both variants
/// return identical values.
pub fn viterbi<T: Tracer>(
    t: &mut T,
    model: &Plan7Model,
    dsq: &[u8],
    ws: &mut ViterbiWorkspace,
    variant: Variant,
) -> i32 {
    match variant {
        Variant::Original => viterbi_original(t, model, dsq, ws),
        Variant::LoadTransformed => viterbi_transformed(t, model, dsq, ws),
    }
}

#[inline]
fn clamp(x: i32) -> i32 {
    if x < NEG {
        NEG
    } else {
        x
    }
}

/// Per-row special-state update (E, J, C, N, B), shared by both variants
/// (the paper's transformation does not touch this code).
///
/// Returns `(xmn, xmb, xmj, xmc)` updated, with traced dataflow handles.
#[allow(clippy::too_many_arguments)]
fn special_states<T: Tracer>(
    t: &mut T,
    model: &Plan7Model,
    ws: &ViterbiWorkspace,
    xmn: i32,
    xmj: i32,
    xmc: i32,
    v_state: [T::Val; 3],
) -> (i32, i32, i32, i32, [T::Val; 4]) {
    const F: &str = "p7_viterbi_specials";
    let m = model.m;
    let [v_xmn, v_xmj, v_xmc] = v_state;

    // E state: max over k of mc[k] + esc[k]. A data-dependent maximum —
    // its take-the-max branch is hard to predict early in the scan.
    let mut xme = NEG;
    let mut v_xme = t.lit();
    for k in 1..=m {
        let a = t.int_load(here!(F), &ws.mc[k]);
        let b = t.int_load(here!(F), &model.esc[k]);
        let v_sc = t.int_op(here!(F), &[a, b]);
        let sc = ws.mc[k].saturating_add(model.esc[k]);
        let v_cmp = t.int_op(here!(F), &[v_sc, v_xme]);
        if t.branch(here!(F), &[v_cmp], sc > xme) {
            xme = sc;
            v_xme = v_sc;
        }
    }
    xme = clamp(xme);

    // J state.
    let v_j1 = t.int_op(here!(F), &[v_xmj]);
    let j1 = xmj.saturating_add(model.xtj_loop);
    let v_j2 = t.int_op(here!(F), &[v_xme]);
    let j2 = xme.saturating_add(model.xte_loop);
    let v_cmp = t.int_op(here!(F), &[v_j1, v_j2]);
    let v_xmj = t.select(here!(F), &[v_cmp, v_j1, v_j2], j2 > j1);
    let xmj = clamp(j1.max(j2));

    // C state.
    let v_c1 = t.int_op(here!(F), &[v_xmc]);
    let c1 = xmc.saturating_add(model.xtc_loop);
    let v_c2 = t.int_op(here!(F), &[v_xme]);
    let c2 = xme.saturating_add(model.xte_move);
    let v_cmp = t.int_op(here!(F), &[v_c1, v_c2]);
    let v_xmc = t.select(here!(F), &[v_cmp, v_c1, v_c2], c2 > c1);
    let xmc = clamp(c1.max(c2));

    // N state.
    let v_xmn = t.int_op(here!(F), &[v_xmn]);
    let xmn = clamp(xmn.saturating_add(model.xtn_loop));

    // B state.
    let v_b1 = t.int_op(here!(F), &[v_xmn]);
    let b1 = xmn.saturating_add(model.xtn_move);
    let v_b2 = t.int_op(here!(F), &[v_xmj]);
    let b2 = xmj.saturating_add(model.xtj_move);
    let v_cmp = t.int_op(here!(F), &[v_b1, v_b2]);
    let v_xmb = t.select(here!(F), &[v_cmp, v_b1, v_b2], b2 > b1);
    let xmb = clamp(b1.max(b2));

    (xmn, xmb, xmj, xmc, [v_xmn, v_xmb, v_xmj, v_xmc])
}

/// The BioPerf source shape (paper Figure 6(a)).
pub fn viterbi_original<T: Tracer>(
    t: &mut T,
    model: &Plan7Model,
    dsq: &[u8],
    ws: &mut ViterbiWorkspace,
) -> i32 {
    const F: &str = "p7_viterbi_original";
    let m = model.m;
    ws.reset(m);

    let mut xmn = 0i32;
    let mut xmb = clamp(xmn + model.xtn_move);
    let mut xmj = NEG;
    let mut xmc = NEG;
    let mut v_xmn = t.lit();
    let mut v_xmb = t.lit();
    let mut v_xmj = t.lit();
    let mut v_xmc = t.lit();

    for i in 1..=dsq.len() {
        let res = dsq[i - 1] as usize;
        let ms = &model.msc[res];
        let is = &model.isc[res];
        ws.mc[0] = NEG;
        ws.ic[0] = NEG;
        ws.dc[0] = NEG;
        let mut v_k = t.lit();

        for k in 1..=m {
            // ---- Box 1: match state ------------------------------------
            // mc[k] = mpp[k-1] + tpmm[k-1];
            let a = t.int_load(here!(F), &ws.mpp[k - 1]);
            let b = t.int_load(here!(F), &model.tpmm[k - 1]);
            let v_mck = t.int_op(here!(F), &[a, b]);
            let mut mck = ws.mpp[k - 1].saturating_add(model.tpmm[k - 1]);
            t.int_store(here!(F), &ws.mc[k], v_mck);
            ws.mc[k] = mck;

            // if ((sc = ip[k-1] + tpim[k-1]) > mc[k]) mc[k] = sc;
            // First compare uses the register copy (paper Fig. 3, BB1).
            let a = t.int_load(here!(F), &ws.ipp[k - 1]);
            let b = t.int_load(here!(F), &model.tpim[k - 1]);
            let v_sc = t.int_op(here!(F), &[a, b]);
            let sc = ws.ipp[k - 1].saturating_add(model.tpim[k - 1]);
            let v_cmp = t.int_op(here!(F), &[v_sc, v_mck]);
            if t.branch(here!(F), &[v_cmp], sc > mck) {
                t.int_store(here!(F), &ws.mc[k], v_sc);
                mck = sc;
                ws.mc[k] = sc;
            }

            // if ((sc = dpp[k-1] + tpdm[k-1]) > mc[k]) mc[k] = sc;
            // The conditional store above forces a reload of mc[k]
            // (the paper's "third load in BB3" that cannot be hoisted).
            let a = t.int_load(here!(F), &ws.dpp[k - 1]);
            let b = t.int_load(here!(F), &model.tpdm[k - 1]);
            let v_sc = t.int_op(here!(F), &[a, b]);
            let sc = ws.dpp[k - 1].saturating_add(model.tpdm[k - 1]);
            let v_ml = t.int_load(here!(F), &ws.mc[k]);
            let v_cmp = t.int_op(here!(F), &[v_sc, v_ml]);
            if t.branch(here!(F), &[v_cmp], sc > mck) {
                t.int_store(here!(F), &ws.mc[k], v_sc);
                mck = sc;
                ws.mc[k] = sc;
            }

            // if ((sc = xmb + bp[k]) > mc[k]) mc[k] = sc;
            let b = t.int_load(here!(F), &model.bsc[k]);
            let v_sc = t.int_op(here!(F), &[v_xmb, b]);
            let sc = xmb.saturating_add(model.bsc[k]);
            let v_ml = t.int_load(here!(F), &ws.mc[k]);
            let v_cmp = t.int_op(here!(F), &[v_sc, v_ml]);
            if t.branch(here!(F), &[v_cmp], sc > mck) {
                t.int_store(here!(F), &ws.mc[k], v_sc);
                mck = sc;
                ws.mc[k] = sc;
            }

            // mc[k] += ms[k];
            let v_ml = t.int_load(here!(F), &ws.mc[k]);
            let v_ms = t.int_load(here!(F), &ms[k]);
            let v_sum = t.int_op(here!(F), &[v_ml, v_ms]);
            mck = mck.saturating_add(ms[k]);
            t.int_store(here!(F), &ws.mc[k], v_sum);
            ws.mc[k] = mck;
            let v_mck = v_sum;

            // if (mc[k] < -INFTY) mc[k] = -INFTY;   (bounds check, rarely taken)
            let v_cmp = t.int_op(here!(F), &[v_mck]);
            if t.branch(here!(F), &[v_cmp], mck < NEG) {
                let v_neg = t.lit();
                t.int_store(here!(F), &ws.mc[k], v_neg);
                mck = NEG;
                ws.mc[k] = NEG;
            }
            let _ = mck;

            // ---- Box 2: delete state -----------------------------------
            // dc[k] = dc[k-1] + tpdd[k-1];
            let a = t.int_load(here!(F), &ws.dc[k - 1]);
            let b = t.int_load(here!(F), &model.tpdd[k - 1]);
            let v_dck = t.int_op(here!(F), &[a, b]);
            let mut dck = ws.dc[k - 1].saturating_add(model.tpdd[k - 1]);
            t.int_store(here!(F), &ws.dc[k], v_dck);
            ws.dc[k] = dck;

            // if ((sc = mc[k-1] + tpmd[k-1]) > dc[k]) dc[k] = sc;
            let a = t.int_load(here!(F), &ws.mc[k - 1]);
            let b = t.int_load(here!(F), &model.tpmd[k - 1]);
            let v_sc = t.int_op(here!(F), &[a, b]);
            let sc = ws.mc[k - 1].saturating_add(model.tpmd[k - 1]);
            let v_cmp = t.int_op(here!(F), &[v_sc, v_dck]);
            if t.branch(here!(F), &[v_cmp], sc > dck) {
                t.int_store(here!(F), &ws.dc[k], v_sc);
                dck = sc;
                ws.dc[k] = sc;
            }

            // if (dc[k] < -INFTY) dc[k] = -INFTY;
            let v_dl = t.int_load(here!(F), &ws.dc[k]);
            let v_cmp = t.int_op(here!(F), &[v_dl]);
            if t.branch(here!(F), &[v_cmp], dck < NEG) {
                let v_neg = t.lit();
                t.int_store(here!(F), &ws.dc[k], v_neg);
                ws.dc[k] = NEG;
            }

            // ---- Box 3: insert state, guarded by k < M ------------------
            let v_cmp = t.int_op(here!(F), &[v_k]);
            if t.branch(here!(F), &[v_cmp], k < m) {
                // ic[k] = mpp[k] + tpmi[k];
                let a = t.int_load(here!(F), &ws.mpp[k]);
                let b = t.int_load(here!(F), &model.tpmi[k]);
                let v_ick = t.int_op(here!(F), &[a, b]);
                let mut ick = ws.mpp[k].saturating_add(model.tpmi[k]);
                t.int_store(here!(F), &ws.ic[k], v_ick);
                ws.ic[k] = ick;

                // if ((sc = ip[k] + tpii[k]) > ic[k]) ic[k] = sc;
                let a = t.int_load(here!(F), &ws.ipp[k]);
                let b = t.int_load(here!(F), &model.tpii[k]);
                let v_sc = t.int_op(here!(F), &[a, b]);
                let sc = ws.ipp[k].saturating_add(model.tpii[k]);
                let v_cmp = t.int_op(here!(F), &[v_sc, v_ick]);
                if t.branch(here!(F), &[v_cmp], sc > ick) {
                    t.int_store(here!(F), &ws.ic[k], v_sc);
                    ick = sc;
                    ws.ic[k] = sc;
                }

                // ic[k] += is[k];
                let v_il = t.int_load(here!(F), &ws.ic[k]);
                let v_is = t.int_load(here!(F), &is[k]);
                let v_sum = t.int_op(here!(F), &[v_il, v_is]);
                ick = ick.saturating_add(is[k]);
                t.int_store(here!(F), &ws.ic[k], v_sum);
                ws.ic[k] = ick;

                // if (ic[k] < -INFTY) ic[k] = -INFTY;
                let v_cmp = t.int_op(here!(F), &[v_sum]);
                if t.branch(here!(F), &[v_cmp], ick < NEG) {
                    let v_neg = t.lit();
                    t.int_store(here!(F), &ws.ic[k], v_neg);
                    ws.ic[k] = NEG;
                }
            } else {
                let v_neg = t.lit();
                t.int_store(here!(F), &ws.ic[k], v_neg);
                ws.ic[k] = NEG;
            }

            // Loop control: k++ and back-edge branch.
            v_k = t.int_op(here!(F), &[v_k]);
            t.branch(here!(F), &[v_k], k < m);
        }

        let (nxmn, nxmb, nxmj, nxmc, vs) =
            special_states(t, model, ws, xmn, xmj, xmc, [v_xmn, v_xmj, v_xmc]);
        xmn = nxmn;
        xmb = nxmb;
        xmj = nxmj;
        xmc = nxmc;
        [v_xmn, v_xmb, v_xmj, v_xmc] = vs;

        ws.swap_rows();
    }
    let _ = (v_xmb, v_xmn, v_xmj);
    xmc
}

/// One match/delete cell of the transformed kernel: every load hoisted
/// into independent temporaries, every max/clamp a conditional move, one
/// store per result. Called from the shortened loop and duplicated after
/// the loop exit for `k = M` (the paper's epilogue duplication).
fn match_delete_cell<T: Tracer>(
    t: &mut T,
    model: &Plan7Model,
    ws: &mut ViterbiWorkspace,
    res: usize,
    k: usize,
    xmb: i32,
    v_xmb: T::Val,
) {
    const F: &str = "p7_viterbi_transformed_cell";
    let res_row = &model.msc[res];

    // 1.1 + 2.1: hoisted, mutually independent loads.
    let a = t.int_load(here!(F), &ws.mpp[k - 1]);
    let b = t.int_load(here!(F), &model.tpmm[k - 1]);
    let v_t1 = t.int_op(here!(F), &[a, b]);
    let t1 = ws.mpp[k - 1].saturating_add(model.tpmm[k - 1]);

    let a = t.int_load(here!(F), &ws.ipp[k - 1]);
    let b = t.int_load(here!(F), &model.tpim[k - 1]);
    let v_t2 = t.int_op(here!(F), &[a, b]);
    let t2 = ws.ipp[k - 1].saturating_add(model.tpim[k - 1]);

    let a = t.int_load(here!(F), &ws.dpp[k - 1]);
    let b = t.int_load(here!(F), &model.tpdm[k - 1]);
    let v_t3 = t.int_op(here!(F), &[a, b]);
    let t3 = ws.dpp[k - 1].saturating_add(model.tpdm[k - 1]);

    let b = t.int_load(here!(F), &model.bsc[k]);
    let v_t4 = t.int_op(here!(F), &[v_xmb, b]);
    let t4 = xmb.saturating_add(model.bsc[k]);

    let a = t.int_load(here!(F), &ws.dc[k - 1]);
    let b = t.int_load(here!(F), &model.tpdd[k - 1]);
    let v_t5 = t.int_op(here!(F), &[a, b]);
    let t5 = ws.dc[k - 1].saturating_add(model.tpdd[k - 1]);

    let a = t.int_load(here!(F), &ws.mc[k - 1]);
    let b = t.int_load(here!(F), &model.tpmd[k - 1]);
    let v_t6 = t.int_op(here!(F), &[a, b]);
    let t6 = ws.mc[k - 1].saturating_add(model.tpmd[k - 1]);

    // 1.2: maxes as conditional moves.
    let v_c = t.int_op(here!(F), &[v_t1, v_t2]);
    let v_m1 = t.select(here!(F), &[v_c, v_t1, v_t2], t2 > t1);
    let m1 = t1.max(t2);
    let v_c = t.int_op(here!(F), &[v_m1, v_t3]);
    let v_m1 = t.select(here!(F), &[v_c, v_m1, v_t3], t3 > m1);
    let m1 = m1.max(t3);
    let v_c = t.int_op(here!(F), &[v_m1, v_t4]);
    let v_m1 = t.select(here!(F), &[v_c, v_m1, v_t4], t4 > m1);
    let m1 = m1.max(t4);

    // 1.3: mc[k] = ms[k] + temp1, clamp via cmov, single store.
    let v_ms = t.int_load(here!(F), &res_row[k]);
    let v_sum = t.int_op(here!(F), &[v_m1, v_ms]);
    let sum = m1.saturating_add(res_row[k]);
    let v_c = t.int_op(here!(F), &[v_sum]);
    let v_mck = t.select(here!(F), &[v_c, v_sum], sum < NEG);
    let mck = clamp(sum);
    t.int_store(here!(F), &ws.mc[k], v_mck);
    ws.mc[k] = mck;

    // 2.2 + 2.3: delete state via cmov, single store.
    let v_c = t.int_op(here!(F), &[v_t5, v_t6]);
    let v_m2 = t.select(here!(F), &[v_c, v_t5, v_t6], t6 > t5);
    let m2 = t5.max(t6);
    let v_c = t.int_op(here!(F), &[v_m2]);
    let v_dck = t.select(here!(F), &[v_c, v_m2], m2 < NEG);
    let dck = clamp(m2);
    t.int_store(here!(F), &ws.dc[k], v_dck);
    ws.dc[k] = dck;
}

/// The paper's load-scheduled source shape (Figure 6(c)).
pub fn viterbi_transformed<T: Tracer>(
    t: &mut T,
    model: &Plan7Model,
    dsq: &[u8],
    ws: &mut ViterbiWorkspace,
) -> i32 {
    const F: &str = "p7_viterbi_transformed";
    let m = model.m;
    ws.reset(m);

    let mut xmn = 0i32;
    let mut xmb = clamp(xmn + model.xtn_move);
    let mut xmj = NEG;
    let mut xmc = NEG;
    let mut v_xmn = t.lit();
    let mut v_xmb = t.lit();
    let mut v_xmj = t.lit();
    let mut v_xmc = t.lit();

    for i in 1..=dsq.len() {
        let dsq_row = dsq[i - 1] as usize;
        let is = &model.isc[dsq_row];
        ws.mc[0] = NEG;
        ws.ic[0] = NEG;
        ws.dc[0] = NEG;
        let mut v_k = t.lit();

        // Loop shortened by one: the insert block runs unconditionally,
        // its k < M guard gone (paper Fig. 6(c)).
        for k in 1..m {
            match_delete_cell(t, model, ws, dsq_row, k, xmb, v_xmb);

            // 3.1: insert-state loads hoisted with the rest.
            let a = t.int_load(here!(F), &ws.mpp[k]);
            let b = t.int_load(here!(F), &model.tpmi[k]);
            let v_t7 = t.int_op(here!(F), &[a, b]);
            let t7 = ws.mpp[k].saturating_add(model.tpmi[k]);

            let a = t.int_load(here!(F), &ws.ipp[k]);
            let b = t.int_load(here!(F), &model.tpii[k]);
            let v_t8 = t.int_op(here!(F), &[a, b]);
            let t8 = ws.ipp[k].saturating_add(model.tpii[k]);

            // 3.2 + 3.3: max and clamp via cmov, single store.
            let v_c = t.int_op(here!(F), &[v_t7, v_t8]);
            let v_m3 = t.select(here!(F), &[v_c, v_t7, v_t8], t8 > t7);
            let m3 = t7.max(t8);
            let v_is = t.int_load(here!(F), &is[k]);
            let v_sum = t.int_op(here!(F), &[v_m3, v_is]);
            let sum = m3.saturating_add(is[k]);
            let v_c = t.int_op(here!(F), &[v_sum]);
            let v_ick = t.select(here!(F), &[v_c, v_sum], sum < NEG);
            t.int_store(here!(F), &ws.ic[k], v_ick);
            ws.ic[k] = clamp(sum);

            v_k = t.int_op(here!(F), &[v_k]);
            t.branch(here!(F), &[v_k], k + 1 < m);
        }

        // Epilogue: the duplicated match/delete code for k = M.
        match_delete_cell(t, model, ws, dsq_row, m, xmb, v_xmb);
        let v_neg = t.lit();
        t.int_store(here!(F), &ws.ic[m], v_neg);
        ws.ic[m] = NEG;

        let (nxmn, nxmb, nxmj, nxmc, vs) =
            special_states(t, model, ws, xmn, xmj, xmc, [v_xmn, v_xmj, v_xmc]);
        xmn = nxmn;
        xmb = nxmb;
        xmj = nxmj;
        xmc = nxmc;
        [v_xmn, v_xmb, v_xmj, v_xmc] = vs;

        ws.swap_rows();
    }
    let _ = (v_xmb, v_xmn, v_xmj);
    xmc
}

#[cfg(test)]
mod tests {
    use super::*;
    use bioperf_bioseq::SeqGen;
    use bioperf_trace::{consumers::InstrMix, NullTracer, Tape};

    fn model_and_seqs() -> (Plan7Model, Vec<Vec<u8>>) {
        let model = Plan7Model::synthetic(40, 17);
        let mut gen = SeqGen::new(23);
        let target = gen.random_protein(40);
        let mut seqs = gen.protein_database(12, 20, 80, &target, 0.3);
        seqs.push(Vec::new()); // empty sequence edge case
        seqs.push(gen.random_protein(1));
        (model, seqs)
    }

    #[test]
    fn original_matches_reference() {
        let (model, seqs) = model_and_seqs();
        let mut ws = ViterbiWorkspace::new();
        let mut t = NullTracer::new();
        for s in &seqs {
            assert_eq!(
                viterbi_original(&mut t, &model, s, &mut ws),
                model.reference_viterbi(s),
                "len {}",
                s.len()
            );
        }
    }

    #[test]
    fn transformed_matches_reference() {
        let (model, seqs) = model_and_seqs();
        let mut ws = ViterbiWorkspace::new();
        let mut t = NullTracer::new();
        for s in &seqs {
            assert_eq!(
                viterbi_transformed(&mut t, &model, s, &mut ws),
                model.reference_viterbi(s),
                "len {}",
                s.len()
            );
        }
    }

    #[test]
    fn variants_agree_under_tape() {
        let (model, seqs) = model_and_seqs();
        let mut ws = ViterbiWorkspace::new();
        for s in &seqs {
            let mut tape_a = Tape::new(InstrMix::default());
            let a = viterbi_original(&mut tape_a, &model, s, &mut ws);
            let mut tape_b = Tape::new(InstrMix::default());
            let b = viterbi_transformed(&mut tape_b, &model, s, &mut ws);
            assert_eq!(a, b);
        }
    }

    #[test]
    fn transformed_executes_fewer_branches() {
        let (model, seqs) = model_and_seqs();
        let mut ws = ViterbiWorkspace::new();
        let seq = &seqs[0];
        let mut tape = Tape::new(InstrMix::default());
        viterbi_original(&mut tape, &model, seq, &mut ws);
        let (_, orig) = tape.finish();
        let mut tape = Tape::new(InstrMix::default());
        viterbi_transformed(&mut tape, &model, seq, &mut ws);
        let (_, tr) = tape.finish();
        assert!(
            tr.cond_branches() * 2 < orig.cond_branches(),
            "transformed {} vs original {} branches",
            tr.cond_branches(),
            orig.cond_branches()
        );
    }

    #[test]
    fn original_load_fraction_is_bioperf_like() {
        // Figure 1: loads are roughly 30-40% of executed instructions in
        // the hmm programs.
        let (model, seqs) = model_and_seqs();
        let mut ws = ViterbiWorkspace::new();
        let mut tape = Tape::new(InstrMix::default());
        for s in &seqs {
            viterbi_original(&mut tape, &model, s, &mut ws);
        }
        let (_, mix) = tape.finish();
        let f = mix.class_fraction(bioperf_isa::OpClass::Load);
        assert!((0.25..0.50).contains(&f), "load fraction {f}");
    }

    #[test]
    fn few_static_loads_cover_everything() {
        // Figure 2's point: the kernel has only a handful of static loads.
        let (model, seqs) = model_and_seqs();
        let mut ws = ViterbiWorkspace::new();
        let mut tape = Tape::new(bioperf_trace::consumers::LoadCounts::default());
        for s in &seqs {
            viterbi_original(&mut tape, &model, s, &mut ws);
        }
        let (program, counts) = tape.finish();
        let static_loads = program.count_kind(bioperf_isa::OpKind::is_load);
        assert!(static_loads < 80, "{static_loads} static loads");
        assert!(counts.total() > 10_000);
    }
}
