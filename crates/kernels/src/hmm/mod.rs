//! The HMMER-derived kernels: `hmmsearch`, `hmmpfam`, `hmmcalibrate`.
//!
//! All three BioPerf programs spend almost all their cycles in the
//! `P7Viterbi` dynamic program ([`viterbi()`](viterbi::viterbi)); they
//! differ only in their
//! drivers (what is scanned against what). The paper's Table 5 profile
//! and Figure 6 transformation both target this kernel.

pub mod drivers;
pub mod viterbi;

pub use drivers::{
    hmmcalibrate, hmmpfam, hmmsearch, HmmcalibrateConfig, HmmpfamConfig, HmmsearchConfig,
};
pub use viterbi::{viterbi, ViterbiWorkspace};
