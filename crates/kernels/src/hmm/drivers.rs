//! Drivers for the three HMMER-derived programs.
//!
//! The drivers differ in what is scanned against what; the cycles are all
//! in [`viterbi()`](crate::hmm::viterbi::viterbi).

use bioperf_bioseq::plan7::{EvdFit, Plan7Model};
use bioperf_bioseq::plan7_trace::viterbi_trace;
use bioperf_bioseq::SeqGen;
use bioperf_isa::here;
use bioperf_trace::Tracer;

use crate::hmm::viterbi::{viterbi, ViterbiWorkspace};
use crate::registry::{RunResult, Scale, Variant};

/// Workload of `hmmsearch`: one profile HMM scanned against a sequence
/// database.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HmmsearchConfig {
    /// Model length (match states).
    pub model_len: usize,
    /// Number of database sequences.
    pub db_count: usize,
    /// Shortest database sequence.
    pub seq_min: usize,
    /// Longest database sequence.
    pub seq_max: usize,
    /// Input-generation seed.
    pub seed: u64,
}

impl HmmsearchConfig {
    /// Standard parameters for a workload scale.
    pub fn at_scale(scale: Scale, seed: u64) -> Self {
        let (model_len, db_count, seq_min, seq_max) = match scale {
            Scale::Test => (30, 4, 30, 60),
            Scale::Small => (50, 12, 50, 100),
            Scale::Medium => (80, 24, 60, 140),
            Scale::Large => (100, 32, 80, 200),
        };
        Self { model_len, db_count, seq_min, seq_max, seed }
    }
}

/// Runs the `hmmsearch` kernel: best Viterbi score per database sequence,
/// folded into a checksum.
pub fn hmmsearch<T: Tracer>(t: &mut T, variant: Variant, cfg: &HmmsearchConfig) -> RunResult {
    let model = Plan7Model::synthetic(cfg.model_len, cfg.seed);
    let mut gen = SeqGen::new(cfg.seed ^ 0xabcd_1234);
    let target = gen.random_protein(cfg.model_len);
    let db = gen.protein_database(cfg.db_count, cfg.seq_min, cfg.seq_max, &target, 0.25);

    let mut ws = ViterbiWorkspace::new();
    ws.declare_regions(t, &model);
    for seq in &db {
        t.region(here!("hmmsearch_driver"), seq);
    }
    let mut checksum = 0u64;
    let mut scores = Vec::with_capacity(db.len());
    for seq in &db {
        let score = viterbi(t, &model, seq, &mut ws, variant);
        scores.push(score);
        checksum = RunResult::fold(checksum, score as i64);
    }
    // Report hits: sequences scoring above the database median get their
    // state-path alignment traced back (hmmsearch's output stage; driver
    // logic identical across variants).
    let mut sorted = scores.clone();
    sorted.sort_unstable();
    let threshold = sorted[sorted.len() / 2];
    for (seq, &score) in db.iter().zip(&scores) {
        if score > threshold {
            let trace = viterbi_trace(&model, seq);
            debug_assert_eq!(trace.score, score, "traceback disagrees with the kernel");
            checksum = RunResult::fold(checksum, trace.match_states().len() as i64);
        }
    }
    RunResult { checksum }
}

/// Workload of `hmmpfam`: a library of profile HMMs scanned with query
/// sequences.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HmmpfamConfig {
    /// Number of models in the library.
    pub library_size: usize,
    /// Length of each model.
    pub model_len: usize,
    /// Number of query sequences.
    pub query_count: usize,
    /// Query length.
    pub query_len: usize,
    /// Input-generation seed.
    pub seed: u64,
}

impl HmmpfamConfig {
    /// Standard parameters for a workload scale.
    pub fn at_scale(scale: Scale, seed: u64) -> Self {
        let (library_size, model_len, query_count, query_len) = match scale {
            Scale::Test => (3, 25, 2, 40),
            Scale::Small => (6, 40, 4, 70),
            Scale::Medium => (10, 60, 6, 110),
            Scale::Large => (14, 80, 8, 160),
        };
        Self { library_size, model_len, query_count, query_len, seed }
    }
}

/// Runs the `hmmpfam` kernel: every query against every library model.
pub fn hmmpfam<T: Tracer>(t: &mut T, variant: Variant, cfg: &HmmpfamConfig) -> RunResult {
    let library: Vec<Plan7Model> = (0..cfg.library_size)
        .map(|i| Plan7Model::synthetic(cfg.model_len, cfg.seed.wrapping_add(i as u64 * 7919)))
        .collect();
    let mut gen = SeqGen::new(cfg.seed ^ 0x5eed);
    let queries: Vec<Vec<u8>> = (0..cfg.query_count).map(|_| gen.random_protein(cfg.query_len)).collect();

    let mut ws = ViterbiWorkspace::new();
    for model in &library {
        ws.declare_regions(t, model);
    }
    for query in &queries {
        t.region(here!("hmmpfam_driver"), query);
    }
    let mut checksum = 0u64;
    for query in &queries {
        // hmmpfam reports the best-matching models per query.
        let mut scored: Vec<(i32, usize)> = Vec::with_capacity(library.len());
        for (mi, model) in library.iter().enumerate() {
            let score = viterbi(t, model, query, &mut ws, variant);
            scored.push((score, mi));
            checksum = RunResult::fold(checksum, score as i64);
        }
        scored.sort_unstable_by(|a, b| b.cmp(a));
        // Rescore the top hits with a floating-point forward-style pass
        // (hmmpfam's ~5% FP component in the paper's Table 1).
        for &(score, mi) in scored.iter().take(3) {
            let fwd = forward_rescore(t, &library[mi], query);
            checksum = RunResult::fold(checksum, score as i64);
            checksum = RunResult::fold(checksum, (fwd * 1e3) as i64);
        }
    }
    RunResult { checksum }
}

/// A probability-space forward-style rescoring pass over the best-hit
/// model: dense FP multiply/adds with per-row renormalization. Identical
/// in both source variants (it is not part of the load transformation).
fn forward_rescore<T: Tracer>(t: &mut T, model: &Plan7Model, dsq: &[u8]) -> f64 {
    const F: &str = "hmmpfam_forward_rescore";
    let m = model.m;
    let mut prev = vec![1.0f64 / m as f64; m + 1];
    let mut cur = vec![0.0f64; m + 1];
    t.region(here!(F), &prev);
    t.region(here!(F), &cur);
    let mut log_total = 0.0f64;
    for &res in dsq {
        let emit_row = &model.msc[res as usize];
        let mut sum = 0.0;
        let mut v_sum = t.lit();
        for k in 1..=m {
            let v_p = t.fp_load(here!(F), &prev[k - 1]);
            let v_e = t.fp_load(here!(F), &emit_row[k]);
            let v_m = t.fp_mul(here!(F), &[v_p, v_e]);
            let v_s = t.fp_op(here!(F), &[v_m]);
            t.fp_store(here!(F), &cur[k], v_s);
            // Emission scores are integer log-odds; use a cheap positive
            // proxy so the pass stays in probability space.
            let e = 1.0 + (emit_row[k].clamp(-1000, 1000) as f64) * 1e-4;
            cur[k] = prev[k - 1] * e + prev[k] * 0.1;
            v_sum = t.fp_op(here!(F), &[v_sum, v_s]);
            sum += cur[k];
        }
        // Renormalize (the scaling step of a real forward pass).
        let v_div = t.fp_div(here!(F), &[v_sum]);
        let _ = v_div;
        let scale = if sum > 0.0 { 1.0 / sum } else { 1.0 };
        for k in 1..=m {
            let v = t.fp_load(here!(F), &cur[k]);
            let v2 = t.fp_mul(here!(F), &[v]);
            t.fp_store(here!(F), &cur[k], v2);
            cur[k] *= scale;
        }
        log_total += if sum > 0.0 { sum.ln() } else { 0.0 };
        std::mem::swap(&mut prev, &mut cur);
    }
    log_total
}

/// Workload of `hmmcalibrate`: score synthetic random sequences against a
/// model, then fit an extreme-value distribution to the score sample.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HmmcalibrateConfig {
    /// Model length.
    pub model_len: usize,
    /// Number of random sequences to score.
    pub sample_count: usize,
    /// Length of each random sequence.
    pub sample_len: usize,
    /// Input-generation seed.
    pub seed: u64,
}

impl HmmcalibrateConfig {
    /// Standard parameters for a workload scale.
    pub fn at_scale(scale: Scale, seed: u64) -> Self {
        let (model_len, sample_count, sample_len) = match scale {
            Scale::Test => (25, 8, 40),
            Scale::Small => (40, 20, 70),
            Scale::Medium => (60, 36, 110),
            Scale::Large => (80, 48, 170),
        };
        Self { model_len, sample_count, sample_len, seed }
    }
}

/// Runs the `hmmcalibrate` kernel and EVD fit.
pub fn hmmcalibrate<T: Tracer>(t: &mut T, variant: Variant, cfg: &HmmcalibrateConfig) -> RunResult {
    let model = Plan7Model::synthetic(cfg.model_len, cfg.seed);
    let mut gen = SeqGen::new(cfg.seed ^ 0xca11b);

    let mut ws = ViterbiWorkspace::new();
    ws.declare_regions(t, &model);
    let mut scores = Vec::with_capacity(cfg.sample_count);
    let mut checksum = 0u64;
    for _ in 0..cfg.sample_count {
        let seq = gen.random_protein(cfg.sample_len);
        t.region(here!("hmmcalibrate_driver"), &seq);
        let score = viterbi(t, &model, &seq, &mut ws, variant);
        scores.push(score as f64);
        checksum = RunResult::fold(checksum, score as i64);
    }
    let fit = EvdFit::from_scores(&scores);
    checksum = RunResult::fold(checksum, (fit.mu * 1e6) as i64);
    checksum = RunResult::fold(checksum, (fit.lambda * 1e9) as i64);
    RunResult { checksum }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bioperf_trace::{consumers::InstrMix, NullTracer, Tape};

    #[test]
    fn hmmsearch_variants_agree() {
        let cfg = HmmsearchConfig::at_scale(Scale::Test, 3);
        let mut t = NullTracer::new();
        let a = hmmsearch(&mut t, Variant::Original, &cfg);
        let b = hmmsearch(&mut t, Variant::LoadTransformed, &cfg);
        assert_eq!(a, b);
    }

    #[test]
    fn hmmpfam_variants_agree() {
        let cfg = HmmpfamConfig::at_scale(Scale::Test, 4);
        let mut t = NullTracer::new();
        let a = hmmpfam(&mut t, Variant::Original, &cfg);
        let b = hmmpfam(&mut t, Variant::LoadTransformed, &cfg);
        assert_eq!(a, b);
    }

    #[test]
    fn hmmcalibrate_variants_agree() {
        let cfg = HmmcalibrateConfig::at_scale(Scale::Test, 5);
        let mut t = NullTracer::new();
        let a = hmmcalibrate(&mut t, Variant::Original, &cfg);
        let b = hmmcalibrate(&mut t, Variant::LoadTransformed, &cfg);
        assert_eq!(a, b);
    }

    #[test]
    fn runs_are_seed_deterministic() {
        let cfg = HmmsearchConfig::at_scale(Scale::Test, 7);
        let mut t = NullTracer::new();
        let a = hmmsearch(&mut t, Variant::Original, &cfg);
        let b = hmmsearch(&mut t, Variant::Original, &cfg);
        assert_eq!(a, b);
        let cfg2 = HmmsearchConfig { seed: 8, ..cfg };
        let c = hmmsearch(&mut t, Variant::Original, &cfg2);
        assert_ne!(a, c, "different seeds should give different workloads");
    }

    #[test]
    fn traced_and_native_results_match() {
        let cfg = HmmsearchConfig::at_scale(Scale::Test, 9);
        let mut null = NullTracer::new();
        let native = hmmsearch(&mut null, Variant::Original, &cfg);
        let mut tape = Tape::new(InstrMix::default());
        let traced = hmmsearch(&mut tape, Variant::Original, &cfg);
        assert_eq!(native, traced);
        let (_, mix) = tape.finish();
        assert!(mix.total() > 100_000, "test scale should still trace plenty: {}", mix.total());
    }

    #[test]
    fn scales_grow_work() {
        let mut sizes = Vec::new();
        for scale in [Scale::Test, Scale::Small, Scale::Medium] {
            let cfg = HmmsearchConfig::at_scale(scale, 1);
            let mut tape = Tape::new(InstrMix::default());
            hmmsearch(&mut tape, Variant::Original, &cfg);
            let (_, mix) = tape.finish();
            sizes.push(mix.total());
        }
        assert!(sizes[0] < sizes[1] && sizes[1] < sizes[2], "{sizes:?}");
    }
}
