//! The PHYLIP `dnapenny` kernel: branch-and-bound maximum parsimony.
//!
//! `dnapenny` enumerates tree topologies by stepwise addition, scoring
//! each partial tree with Fitch parsimony and pruning when the running
//! step count exceeds the best complete tree found so far. The hot loop
//! is the per-site Fitch update with the bound check:
//!
//! ```c
//! for (site = 0; site < sites; site++) {
//!     a = left[site] & right[site];
//!     if (a == 0) { steps += weight[site]; a = left[site] | right[site]; }
//!     anc[site] = a;
//!     if (steps > bound) return ABANDON;
//! }
//! ```
//!
//! The `a == 0` branch is data-dependent (hard to predict), and the
//! `weight[site]` load sits right behind it; `steps` then feeds the bound
//! branch — both of the paper's problem sequences. The transformed
//! variant hoists the weight load, accumulates `steps` branch-free, and
//! selects the ancestor state, keeping the same early-exit granularity.

use bioperf_bioseq::SeqGen;
use bioperf_isa::here;
use bioperf_trace::Tracer;

use crate::registry::{RunResult, Scale, Variant};

/// Fitch state sets: one byte per site, one bit per nucleotide.
type StateRow = Vec<u8>;

/// Outcome of scoring one partial tree against the bound.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum FitchOutcome {
    /// Completed with this many steps.
    Steps(u32),
    /// Exceeded the bound at some site; the partial tree is pruned.
    Abandoned,
}

/// The per-join Fitch update in the BioPerf source shape.
fn fitch_join_original<T: Tracer>(
    t: &mut T,
    left: &StateRow,
    right: &StateRow,
    weight: &[u32],
    anc: &mut StateRow,
    mut steps: u32,
    bound: u32,
) -> FitchOutcome {
    const F: &str = "dnapenny_fitch_original";
    let mut v_steps = t.lit();
    for site in 0..left.len() {
        // a = left[site] & right[site];
        let v_l = t.int_load(here!(F), &left[site]);
        let v_r = t.int_load(here!(F), &right[site]);
        let mut v_a = t.int_op(here!(F), &[v_l, v_r]);
        let mut a = left[site] & right[site];

        // if (a == 0) { steps += weight[site]; a = left | right; }
        let v_cmp = t.int_op(here!(F), &[v_a]);
        if t.branch(here!(F), &[v_cmp], a == 0) {
            let v_w = t.int_load(here!(F), &weight[site]);
            v_steps = t.int_op(here!(F), &[v_steps, v_w]);
            steps += weight[site];
            v_a = t.int_op(here!(F), &[v_l, v_r]);
            a = left[site] | right[site];
        }

        // anc[site] = a;
        t.int_store(here!(F), &anc[site], v_a);
        anc[site] = a;

        // if (steps > bound) return ABANDON;
        let v_cmp = t.int_op(here!(F), &[v_steps]);
        if t.branch(here!(F), &[v_cmp], steps > bound) {
            return FitchOutcome::Abandoned;
        }
    }
    FitchOutcome::Steps(steps)
}

/// The per-join Fitch update in the load-scheduled shape. dnapenny's
/// transformation is small (Table 6: 3 static loads, ~10 lines): the
/// `weight[site]` load is hoisted above the hard-to-predict
/// incompatibility guard, the `steps` accumulation becomes branch-free,
/// and the ancestor state is chosen with a select — no load or store
/// remains control-dependent on the guard.
fn fitch_join_transformed<T: Tracer>(
    t: &mut T,
    left: &StateRow,
    right: &StateRow,
    weight: &[u32],
    anc: &mut StateRow,
    mut steps: u32,
    bound: u32,
) -> FitchOutcome {
    const F: &str = "dnapenny_fitch_transformed";
    let mut v_steps = t.lit();
    for site in 0..left.len() {
        // Hoisted, independent loads: all three arrays up front.
        let v_l = t.int_load(here!(F), &left[site]);
        let v_r = t.int_load(here!(F), &right[site]);
        let v_w = t.int_load(here!(F), &weight[site]);

        let v_and = t.int_op(here!(F), &[v_l, v_r]);
        let and = left[site] & right[site];
        let v_or = t.int_op(here!(F), &[v_l, v_r]);
        let or = left[site] | right[site];

        // steps += (a == 0) ? w : 0, computed branchlessly with the
        // mask trick ((a == 0) - 1), which every ISA supports: the
        // steps chain no longer passes through the guard branch or the
        // then-path load.
        let v_z = t.int_op(here!(F), &[v_and]);
        let v_mask = t.int_op(here!(F), &[v_z]);
        let v_inc = t.int_op(here!(F), &[v_mask, v_w]);
        let inc = if and == 0 { weight[site] } else { 0 };
        v_steps = t.int_op(here!(F), &[v_steps, v_inc]);
        steps += inc;

        // a = intersection | (mask & union): when the intersection is
        // empty the union wins, otherwise the intersection passes
        // through. Pure ALU again — stored exactly once.
        let v_masked = t.int_op(here!(F), &[v_mask, v_or]);
        let v_a = t.int_op(here!(F), &[v_masked, v_and]);
        let a = if and == 0 { or } else { and };

        t.int_store(here!(F), &anc[site], v_a);
        anc[site] = a;

        let v_cmp = t.int_op(here!(F), &[v_steps]);
        if t.branch(here!(F), &[v_cmp], steps > bound) {
            return FitchOutcome::Abandoned;
        }
    }
    FitchOutcome::Steps(steps)
}

/// A rooted tree under construction, stored as joins over state rows.
struct SearchState {
    /// Fitch state rows for the species.
    species: Vec<StateRow>,
    /// Per-site weights.
    weight: Vec<u32>,
    /// Best complete score found so far (the bound).
    best: u32,
    /// Number of optimal trees found.
    optimal_count: u64,
    /// Partial trees visited (work measure, folded into the checksum).
    visited: u64,
}

/// Preallocated per-depth row storage, mirroring PHYLIP's practice of
/// allocating all tree-node state up front: `levels[d]` holds the `d`
/// join rows of a partial tree over the first `d` species. Allocating
/// (and address-declaring) every row once in the driver keeps the search
/// loop allocation-free, so its cache behaviour reflects the algorithm
/// rather than allocator churn.
struct Workspace {
    levels: Vec<Vec<StateRow>>,
}

impl Workspace {
    fn new(species: usize, sites: usize) -> Self {
        Self { levels: (0..=species).map(|d| vec![vec![0u8; sites]; d]).collect() }
    }
}

/// Exhaustive stepwise-addition branch-and-bound search.
///
/// Trees over species `0..n` are built by adding species `k` to every
/// edge of the current partial tree. The partial tree is represented as a
/// vector of "join rows" (internal-node Fitch sets); adding to an edge is
/// approximated by joining against the corresponding row — a compact
/// formulation that preserves dnapenny's compute shape (repeated bounded
/// Fitch passes over all sites) and its pruning behaviour. The rows of
/// the partial tree at depth `d` live in `ws.levels[d]`; joining against
/// edge `e` writes the candidate ancestor row directly into the next
/// level's storage.
fn search<T: Tracer>(
    t: &mut T,
    st: &mut SearchState,
    ws: &mut Workspace,
    depth: usize,
    steps: u32,
    variant: Variant,
) {
    st.visited += 1;
    if depth == st.species.len() {
        if steps < st.best {
            st.best = steps;
            st.optimal_count = 1;
        } else if steps == st.best {
            st.optimal_count += 1;
        }
        return;
    }
    for edge in 0..depth {
        let (cur, rest) = ws.levels.split_at_mut(depth + 1);
        let rows = &cur[depth];
        let next = &mut rest[0];
        let outcome = match variant {
            Variant::Original => fitch_join_original(
                t,
                &rows[edge],
                &st.species[depth],
                &st.weight,
                &mut next[edge],
                steps,
                st.best,
            ),
            Variant::LoadTransformed => fitch_join_transformed(
                t,
                &rows[edge],
                &st.species[depth],
                &st.weight,
                &mut next[edge],
                steps,
                st.best,
            ),
        };
        match outcome {
            FitchOutcome::Abandoned => {}
            FitchOutcome::Steps(s) => {
                for i in 0..depth {
                    if i != edge {
                        next[i].copy_from_slice(&rows[i]);
                    }
                }
                next[depth].copy_from_slice(&st.species[depth]);
                search(t, st, ws, depth + 1, s, variant);
            }
        }
    }
}

/// Workload parameters for dnapenny.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DnapennyConfig {
    /// Number of species (search space grows super-exponentially).
    pub species: usize,
    /// Number of sites.
    pub sites: usize,
    /// Input seed.
    pub seed: u64,
}

impl DnapennyConfig {
    /// Standard parameters for a workload scale.
    pub fn at_scale(scale: Scale, seed: u64) -> Self {
        let (species, sites) = match scale {
            Scale::Test => (6, 30),
            Scale::Small => (7, 60),
            Scale::Medium => (9, 90),
            Scale::Large => (10, 110),
        };
        Self { species, sites, seed }
    }
}

/// Runs dnapenny (registry entry point).
pub fn run<T: Tracer>(t: &mut T, variant: Variant, scale: Scale, seed: u64) -> RunResult {
    dnapenny(t, variant, &DnapennyConfig::at_scale(scale, seed))
}

/// Runs the branch-and-bound parsimony search.
pub fn dnapenny<T: Tracer>(t: &mut T, variant: Variant, cfg: &DnapennyConfig) -> RunResult {
    let mut gen = SeqGen::new(cfg.seed);
    let matrix = gen.dna_character_matrix(cfg.species, cfg.sites);
    let species: Vec<StateRow> =
        matrix.iter().map(|row| row.iter().map(|&b| 1u8 << b).collect()).collect();
    let weight: Vec<u32> = (0..cfg.sites).map(|_| 1 + gen.index(3) as u32).collect();

    let mut st = SearchState {
        species,
        weight,
        best: u32::MAX,
        optimal_count: 0,
        visited: 0,
    };
    // Declare every working array for address normalization, once: the
    // weights, the species rows, and the preallocated per-depth node
    // storage the search writes into (PHYLIP allocates its tree nodes up
    // front the same way).
    const F: &str = "dnapenny_driver";
    t.region(here!(F), &st.weight);
    for s in &st.species {
        t.region(here!(F), s);
    }
    let mut ws = Workspace::new(cfg.species, cfg.sites);
    for level in &ws.levels {
        for row in level {
            t.region(here!(F), row);
        }
    }
    ws.levels[2][0].copy_from_slice(&st.species[0]);
    ws.levels[2][1].copy_from_slice(&st.species[1]);
    search(t, &mut st, &mut ws, 2, 0, variant);

    let mut checksum = RunResult::fold(0, st.best as i64);
    checksum = RunResult::fold(checksum, st.optimal_count as i64);
    checksum = RunResult::fold(checksum, st.visited as i64);
    RunResult { checksum }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bioperf_trace::{consumers::InstrMix, NullTracer, Tape};

    #[test]
    fn variants_agree() {
        for seed in [1, 2, 3] {
            let cfg = DnapennyConfig::at_scale(Scale::Test, seed);
            let mut t = NullTracer::new();
            let a = dnapenny(&mut t, Variant::Original, &cfg);
            let b = dnapenny(&mut t, Variant::LoadTransformed, &cfg);
            assert_eq!(a, b, "seed {seed}");
        }
    }

    #[test]
    fn fitch_join_counts_incompatible_sites() {
        let left: StateRow = vec![0b0001, 0b0010, 0b0001];
        let right: StateRow = vec![0b0001, 0b0100, 0b0011];
        let weight = vec![1, 1, 1];
        let mut anc = vec![0u8; 3];
        let mut t = NullTracer::new();
        let out =
            fitch_join_original(&mut t, &left, &right, &weight, &mut anc, 0, u32::MAX);
        // Site 0: intersection nonempty (0 steps). Site 1: empty → union,
        // 1 step. Site 2: intersection 0b0001 (0 steps).
        assert_eq!(out, FitchOutcome::Steps(1));
        assert_eq!(anc, vec![0b0001, 0b0110, 0b0001]);
    }

    #[test]
    fn fitch_join_abandons_on_bound() {
        let left: StateRow = vec![0b0001; 10];
        let right: StateRow = vec![0b0010; 10];
        let weight = vec![1; 10];
        let mut anc = vec![0u8; 10];
        let mut t = NullTracer::new();
        let out = fitch_join_original(&mut t, &left, &right, &weight, &mut anc, 0, 3);
        assert_eq!(out, FitchOutcome::Abandoned);
        let out2 = fitch_join_transformed(&mut t, &left, &right, &weight, &mut anc, 0, 3);
        assert_eq!(out2, FitchOutcome::Abandoned, "same early-exit granularity");
    }

    #[test]
    fn transformed_join_matches_original_join() {
        let mut gen = SeqGen::new(77);
        for _ in 0..20 {
            let sites = 25;
            let left: StateRow = (0..sites).map(|_| 1u8 << gen.index(4)).collect();
            let right: StateRow = (0..sites).map(|_| 1u8 << gen.index(4)).collect();
            let weight: Vec<u32> = (0..sites).map(|_| 1 + gen.index(2) as u32).collect();
            let mut anc_a = vec![0u8; sites];
            let mut anc_b = vec![0u8; sites];
            let mut t = NullTracer::new();
            let a = fitch_join_original(&mut t, &left, &right, &weight, &mut anc_a, 2, 20);
            let b = fitch_join_transformed(&mut t, &left, &right, &weight, &mut anc_b, 2, 20);
            assert_eq!(a, b);
            if a != FitchOutcome::Abandoned {
                assert_eq!(anc_a, anc_b);
            }
        }
    }

    #[test]
    fn pruning_keeps_search_tractable() {
        let cfg = DnapennyConfig::at_scale(Scale::Test, 4);
        let mut tape = Tape::new(InstrMix::default());
        dnapenny(&mut tape, Variant::Original, &cfg);
        let (_, mix) = tape.finish();
        assert!(mix.total() > 1_000, "search should do real work");
        assert!(mix.total() < 50_000_000, "bound should prune the search");
    }

    #[test]
    fn deterministic() {
        let cfg = DnapennyConfig::at_scale(Scale::Test, 5);
        let mut t = NullTracer::new();
        assert_eq!(dnapenny(&mut t, Variant::Original, &cfg), dnapenny(&mut t, Variant::Original, &cfg));
    }
}
