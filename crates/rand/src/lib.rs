//! Offline drop-in subset of the `rand` crate.
//!
//! The build environment has no crates.io access, so the workspace ships
//! this small self-contained replacement implementing exactly the surface
//! the reproduction uses: [`rngs::StdRng`], [`SeedableRng`]
//! (`seed_from_u64` / `from_seed`), and the [`Rng`] methods `gen`,
//! `gen_range`, and `gen_bool`.
//!
//! The generator is xoshiro256\*\* seeded through SplitMix64 — a
//! different stream than upstream `StdRng` (ChaCha12), so synthetic
//! workloads differ in *content* from builds against real `rand`, but
//! every draw is a pure function of the seed: identical `(seed, call
//! sequence)` pairs produce identical data on every run, machine, and
//! thread. That reproducibility is all the harness relies on.

/// Seedable random number generators.
pub trait SeedableRng: Sized {
    /// Seed type (fixed-width byte array).
    type Seed: Default + AsMut<[u8]>;

    /// Creates a generator from a full-entropy seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates a generator from a `u64`, expanded via SplitMix64 (the
    /// same convention upstream `rand` documents).
    fn seed_from_u64(state: u64) -> Self {
        let mut sm = SplitMix64(state);
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = sm.next_u64().to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }
}

/// SplitMix64: seed expander (and a fine standalone 64-bit generator).
struct SplitMix64(u64);

impl SplitMix64 {
    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Core entropy source: everything in [`Rng`] derives from `next_u64`.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

/// Sampling helpers layered over [`RngCore`] — the `rand::Rng` analog.
pub trait Rng: RngCore {
    /// A uniformly random value of a [`Standard`]-samplable type.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self.next_u64())
    }

    /// A uniform sample from `range` (half-open or inclusive).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample(&mut || self.next_u64())
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= p <= 1.0`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool probability {p} outside [0, 1]");
        unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Converts 64 random bits to a uniform `f64` in `[0, 1)`.
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Types samplable uniformly from 64 random bits (the `Standard`
/// distribution analog).
pub trait Standard {
    /// Maps 64 uniform bits to a uniform value.
    fn sample(bits: u64) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample(bits: u64) -> Self {
                bits as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample(bits: u64) -> Self {
        bits & 1 == 1
    }
}

impl Standard for f64 {
    fn sample(bits: u64) -> Self {
        unit_f64(bits)
    }
}

impl Standard for f32 {
    fn sample(bits: u64) -> Self {
        ((bits >> 40) as f32) * (1.0 / (1u32 << 24) as f32)
    }
}

/// Types with a uniform sampler over an interval (the `SampleUniform`
/// analog). The single blanket [`SampleRange`] impl over `Range<T>` /
/// `RangeInclusive<T>` keeps type inference identical to upstream
/// `rand` (`base * rng.gen_range(0.7..1.3)` infers `f64`).
pub trait SampleUniform: PartialOrd + Copy {
    /// A uniform sample from `[start, end)`.
    fn sample_half_open(start: Self, end: Self, next: &mut dyn FnMut() -> u64) -> Self;

    /// A uniform sample from `[start, end]`.
    fn sample_inclusive(start: Self, end: Self, next: &mut dyn FnMut() -> u64) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open(start: Self, end: Self, next: &mut dyn FnMut() -> u64) -> Self {
                let span = (end as i128 - start as i128) as u128;
                let off = (u128::from(next()) * span) >> 64;
                (start as i128 + off as i128) as $t
            }

            fn sample_inclusive(start: Self, end: Self, next: &mut dyn FnMut() -> u64) -> Self {
                let span = (end as i128 - start as i128) as u128 + 1;
                let off = (u128::from(next()) * span) >> 64;
                (start as i128 + off as i128) as $t
            }
        }
    )*};
}
impl_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open(start: Self, end: Self, next: &mut dyn FnMut() -> u64) -> Self {
                let x = start + <$t as Standard>::sample(next()) * (end - start);
                // Floating rounding can land exactly on `end`; stay half-open.
                if x >= end { start } else { x }
            }

            fn sample_inclusive(start: Self, end: Self, next: &mut dyn FnMut() -> u64) -> Self {
                start + <$t as Standard>::sample(next()) * (end - start)
            }
        }
    )*};
}
impl_uniform_float!(f32, f64);

/// Ranges a uniform sample can be drawn from (the `SampleRange` analog).
pub trait SampleRange<T> {
    /// Draws one uniform sample using the supplied bit source.
    fn sample(self, next: &mut dyn FnMut() -> u64) -> T;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample(self, next: &mut dyn FnMut() -> u64) -> T {
        assert!(self.start < self.end, "gen_range called with empty range");
        T::sample_half_open(self.start, self.end, next)
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample(self, next: &mut dyn FnMut() -> u64) -> T {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "gen_range called with empty range");
        T::sample_inclusive(start, end, next)
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256\*\*.
    ///
    /// Small, fast, and statistically strong; **not** cryptographic and
    /// **not** stream-compatible with upstream `rand::rngs::StdRng`.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, w) in s.iter_mut().enumerate() {
                let mut bytes = [0u8; 8];
                bytes.copy_from_slice(&seed[i * 8..i * 8 + 8]);
                *w = u64::from_le_bytes(bytes);
            }
            // An all-zero state is a fixed point of xoshiro; nudge it.
            if s == [0; 4] {
                s = [0x9E37_79B9_7F4A_7C15, 1, 2, 3];
            }
            Self { s }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let av: Vec<u64> = (0..8).map(|_| a.gen()).collect();
        let bv: Vec<u64> = (0..8).map(|_| b.gen()).collect();
        assert_ne!(av, bv);
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = r.gen_range(-20..20);
            assert!((-20..20).contains(&v));
            let u = r.gen_range(0usize..7);
            assert!(u < 7);
            let f = r.gen_range(0.7f64..1.3);
            assert!((0.7..1.3).contains(&f));
            let i = r.gen_range(3u8..=5);
            assert!((3..=5).contains(&i));
        }
    }

    #[test]
    fn gen_range_covers_small_domains() {
        let mut r = StdRng::seed_from_u64(3);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[r.gen_range(0usize..4)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_matches_probability_roughly() {
        let mut r = StdRng::seed_from_u64(11);
        let hits = (0..20_000).filter(|_| r.gen_bool(0.25)).count();
        let rate = hits as f64 / 20_000.0;
        assert!((0.22..0.28).contains(&rate), "rate {rate}");
        assert!((0..100).all(|_| !r.gen_bool(0.0)));
        assert!((0..100).all(|_| r.gen_bool(1.0)));
    }

    #[test]
    fn unit_f64_is_half_open() {
        assert!(super::unit_f64(u64::MAX) < 1.0);
        assert_eq!(super::unit_f64(0), 0.0);
    }
}
