//! A gcc-like expression-compiler workload.
//!
//! gcc has the flattest static-load profile of the paper's three SPEC
//! curves: its work is spread across hundreds of per-tree-code handlers.
//! This module compiles randomly generated integer expressions through
//! four passes — tokenize, parse, constant-fold, common-subexpression
//! elimination, and emit — with per-opcode handler clones modelled as
//! distinct synthesized static-instruction sites, like `vortex`.

use bioperf_isa::{here, SrcLoc};
use bioperf_trace::Tracer;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::{fold, SpecScale};

/// Binary tree codes in the toy IR. Like gcc's tree codes, many are
/// semantic flavours of the same few arithmetic families (signedness,
/// width, overflow variants) — each with its own handler clone. Semantics
/// dispatch on `op % 12`; static-instruction identity dispatches on `op`.
const NOPS: usize = 48;
const OP_FAMILIES: [&str; 12] =
    ["add", "sub", "mul", "div", "rem", "and", "or", "xor", "shl", "shr", "min", "max"];

/// The arithmetic family a tree code belongs to (many codes share a
/// family, as gcc's do).
pub fn family_name(op: usize) -> &'static str {
    OP_FAMILIES[op % OP_FAMILIES.len()]
}

/// Synthesized per-(opcode, pass, slot) handler site.
fn site(op: usize, pass: u32, slot: u32) -> SrcLoc {
    SrcLoc::new("gcc_handlers.rs", 2000 + (op as u32) * 128 + pass * 16 + slot, 1, "gcc_handler")
}

/// Expression tree node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Node {
    /// Integer literal.
    Const(i64),
    /// Named variable slot.
    Var(usize),
    /// Binary operation over two node indices.
    Bin(usize, usize, usize),
}

/// Arena of expression nodes.
#[derive(Debug, Clone, Default)]
struct Arena {
    nodes: Vec<Node>,
}

impl Arena {
    fn push(&mut self, n: Node) -> usize {
        self.nodes.push(n);
        self.nodes.len() - 1
    }
}

/// Generates a random expression tree of the given depth.
fn gen_expr(rng: &mut StdRng, arena: &mut Arena, depth: usize, nvars: usize) -> usize {
    if depth == 0 || rng.gen_bool(0.25) {
        if rng.gen_bool(0.5) {
            arena.push(Node::Const(rng.gen_range(-64..64)))
        } else {
            arena.push(Node::Var(rng.gen_range(0..nvars)))
        }
    } else {
        let l = gen_expr(rng, arena, depth - 1, nvars);
        let r = gen_expr(rng, arena, depth - 1, nvars);
        let op = rng.gen_range(0..NOPS);
        arena.push(Node::Bin(op, l, r))
    }
}

fn apply(op: usize, a: i64, b: i64) -> i64 {
    match op % 12 {
        0 => a.wrapping_add(b),
        1 => a.wrapping_sub(b),
        2 => a.wrapping_mul(b),
        3 => {
            if b == 0 {
                0
            } else {
                a.wrapping_div(b)
            }
        }
        4 => {
            if b == 0 {
                0
            } else {
                a.wrapping_rem(b)
            }
        }
        5 => a & b,
        6 => a | b,
        7 => a ^ b,
        8 => a.wrapping_shl((b & 63) as u32),
        9 => a.wrapping_shr((b & 63) as u32),
        10 => a.min(b),
        11 => a.max(b),
        _ => unreachable!("op % 12 is in range"),
    }
}

/// Constant-folding pass: rewrites `Bin(op, Const, Const)` bottom-up,
/// with one handler clone per opcode.
fn const_fold<T: Tracer>(t: &mut T, arena: &mut Arena, root: usize) -> usize {
    let node = arena.nodes[root];
    match node {
        Node::Const(_) | Node::Var(_) => root,
        Node::Bin(op, l, r) => {
            let l = const_fold(t, arena, l);
            let r = const_fold(t, arena, r);
            // Per-opcode handler: load both child nodes, test for consts.
            let v_l = t.int_load(site(op, 0, 0), &arena.nodes[l]);
            let v_r = t.int_load(site(op, 0, 1), &arena.nodes[r]);
            let v_cmp = t.int_op(site(op, 0, 2), &[v_l, v_r]);
            let foldable = matches!(
                (arena.nodes[l], arena.nodes[r]),
                (Node::Const(_), Node::Const(_))
            );
            if t.branch(site(op, 0, 3), &[v_cmp], foldable) {
                if let (Node::Const(a), Node::Const(b)) = (arena.nodes[l], arena.nodes[r]) {
                    let v_new = t.int_op(site(op, 0, 4), &[v_l, v_r]);
                    let folded = arena.push(Node::Const(apply(op, a, b)));
                    t.int_store(site(op, 0, 5), &arena.nodes[folded], v_new);
                    return folded;
                }
            }
            arena.push(Node::Bin(op, l, r))
        }
    }
}

/// Value-numbering CSE pass with a chained hash table, per-opcode sites.
fn cse<T: Tracer>(t: &mut T, arena: &Arena, root: usize) -> (usize, usize) {
    const F: &str = "gcc_cse";
    const HASH: usize = 512;
    let mut heads = vec![-1i32; HASH];
    let mut entries: Vec<(usize, usize, usize, i32)> = Vec::new(); // (op,l,r,next)
    let mut value_of = vec![usize::MAX; arena.nodes.len()];
    // The entry pool grows while traced (one push per distinct Bin);
    // reserve the worst case so it never moves, then declare the regions.
    entries.reserve(arena.nodes.len());
    t.region(here!(F), &heads);
    t.region_raw(here!(F), entries.as_ptr(), entries.capacity());
    let mut hits = 0usize;
    let mut numbered = 0usize;

    // Post-order walk with an explicit stack.
    let mut stack = vec![(root, false)];
    while let Some((n, visited)) = stack.pop() {
        if value_of[n] != usize::MAX {
            continue;
        }
        match arena.nodes[n] {
            Node::Const(_) | Node::Var(_) => {
                value_of[n] = n;
                numbered += 1;
            }
            Node::Bin(op, l, r) => {
                if !visited {
                    stack.push((n, true));
                    stack.push((l, false));
                    stack.push((r, false));
                    continue;
                }
                let (vl, vr) = (value_of[l], value_of[r]);
                let h = (op.wrapping_mul(31) ^ vl.wrapping_mul(17) ^ vr) % HASH;
                // Chain walk: per-opcode clone sites.
                let mut v_p = t.int_load(site(op, 1, 0), &heads[h]);
                let mut p = heads[h];
                let mut found = None;
                loop {
                    if !t.branch(site(op, 1, 1), &[v_p], p >= 0) {
                        break;
                    }
                    let e = &entries[p as usize];
                    let v_e = t.int_load_via(site(op, 1, 2), &entries[p as usize], v_p);
                    let v_cmp = t.int_op(site(op, 1, 3), &[v_e]);
                    if t.branch(site(op, 1, 4), &[v_cmp], e.0 == op && e.1 == vl && e.2 == vr) {
                        found = Some(p as usize);
                        break;
                    }
                    v_p = t.int_load_via(site(op, 1, 5), &entries[p as usize].3, v_p);
                    p = entries[p as usize].3;
                }
                if let Some(_e) = found {
                    hits += 1;
                    value_of[n] = n; // canonical id not tracked; count only
                } else {
                    entries.push((op, vl, vr, heads[h]));
                    let v_new = t.int_op(site(op, 1, 6), &[v_p]);
                    t.int_store(site(op, 1, 7), &heads[h], v_new);
                    heads[h] = (entries.len() - 1) as i32;
                    value_of[n] = n;
                    numbered += 1;
                }
            }
        }
    }
    (hits, numbered)
}

/// Evaluation / "emit" pass: interprets the tree with per-opcode sites.
fn emit_eval<T: Tracer>(t: &mut T, arena: &Arena, root: usize, vars: &[i64]) -> i64 {
    const F: &str = "gcc_emit";
    match arena.nodes[root] {
        Node::Const(c) => {
            let v = t.int_load(here!(F), &arena.nodes[root]);
            let _ = v;
            c
        }
        Node::Var(i) => {
            let v = t.int_load(here!(F), &vars[i]);
            let _ = v;
            vars[i]
        }
        Node::Bin(op, l, r) => {
            let a = emit_eval(t, arena, l, vars);
            let b = emit_eval(t, arena, r, vars);
            let v_a = t.int_load(site(op, 2, 0), &arena.nodes[l]);
            let v_b = t.int_load(site(op, 2, 1), &arena.nodes[r]);
            let v = t.int_op(site(op, 2, 2), &[v_a, v_b]);
            let _ = v;
            apply(op, a, b)
        }
    }
}

/// Source tokens of the toy language.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Token {
    Num(i64),
    Var(usize),
    Op(usize),
    LParen,
    RParen,
}

/// Pretty-prints a tree as fully parenthesized source text (the
/// "preprocessed translation unit" the front end will consume).
fn unparse(arena: &Arena, node: usize, out: &mut String) {
    match arena.nodes[node] {
        Node::Const(c) => out.push_str(&c.to_string()),
        Node::Var(v) => {
            out.push('v');
            out.push_str(&v.to_string());
        }
        Node::Bin(op, l, r) => {
            out.push('(');
            unparse(arena, l, out);
            out.push_str(&format!(" o{op} "));
            unparse(arena, r, out);
            out.push(')');
        }
    }
}

/// Tokenizer: per-character-class dispatch. The lexer reads the buffer a
/// machine word at a time (one load per eight characters) and extracts
/// bytes with shifts, as optimized lexers do — so its loads stay a small
/// share of the front end's work.
fn tokenize<T: Tracer>(t: &mut T, text: &str) -> Vec<Token> {
    const F: &str = "gcc_tokenize";
    let bytes = text.as_bytes();
    let mut tokens = Vec::new();
    let mut i = 0;
    let mut v_word = t.lit();
    while i < bytes.len() {
        if i % 8 == 0 {
            v_word = t.int_load(here!(F), &bytes[i]);
        }
        let v_c = t.int_op(here!(F), &[v_word]);
        let v_class = t.int_op(here!(F), &[v_c]);
        let c = bytes[i];
        if t.branch(here!(F), &[v_class], c == b' ') {
            i += 1;
            continue;
        }
        if t.branch(here!(F), &[v_class], c == b'(') {
            tokens.push(Token::LParen);
            i += 1;
            continue;
        }
        if t.branch(here!(F), &[v_class], c == b')') {
            tokens.push(Token::RParen);
            i += 1;
            continue;
        }
        if t.branch(here!(F), &[v_class], c == b'v' || c == b'o') {
            let kind = c;
            let mut n = 0usize;
            i += 1;
            while i < bytes.len() {
                if i % 8 == 0 {
                    v_word = t.int_load(here!(F), &bytes[i]);
                }
                let v_d = t.int_op(here!(F), &[v_word]);
                let v_cmp = t.int_op(here!(F), &[v_d]);
                if !t.branch(here!(F), &[v_cmp], bytes[i].is_ascii_digit()) {
                    break;
                }
                n = n * 10 + (bytes[i] - b'0') as usize;
                i += 1;
            }
            tokens.push(if kind == b'v' { Token::Var(n) } else { Token::Op(n) });
            continue;
        }
        // Number (possibly negative).
        let neg = c == b'-';
        if neg {
            i += 1;
        }
        let mut n = 0i64;
        while i < bytes.len() {
            if i % 8 == 0 {
                v_word = t.int_load(here!(F), &bytes[i]);
            }
            let v_d = t.int_op(here!(F), &[v_word]);
            let v_cmp = t.int_op(here!(F), &[v_d]);
            if !t.branch(here!(F), &[v_cmp], bytes[i].is_ascii_digit()) {
                break;
            }
            n = n * 10 + (bytes[i] - b'0') as i64;
            i += 1;
        }
        tokens.push(Token::Num(if neg { -n } else { n }));
    }
    tokens
}

/// Recursive-descent parser over the token stream, rebuilding the tree
/// (fully parenthesized grammar: expr := atom | '(' expr 'oN' expr ')').
fn parse<T: Tracer>(t: &mut T, tokens: &[Token], pos: &mut usize, arena: &mut Arena) -> usize {
    const F: &str = "gcc_parse";
    let v_tok = t.int_load(here!(F), &tokens[*pos]);
    let v_kind = t.int_op(here!(F), &[v_tok]);
    match tokens[*pos] {
        Token::Num(c) => {
            t.branch(here!(F), &[v_kind], true);
            *pos += 1;
            arena.push(Node::Const(c))
        }
        Token::Var(v) => {
            t.branch(here!(F), &[v_kind], false);
            *pos += 1;
            arena.push(Node::Var(v))
        }
        Token::LParen => {
            t.jump(here!(F));
            *pos += 1; // '('
            let l = parse(t, tokens, pos, arena);
            let Token::Op(op) = tokens[*pos] else {
                panic!("expected operator at {pos:?}")
            };
            let v_op = t.int_load(site(op, 3, 0), &tokens[*pos]);
            let _ = v_op;
            *pos += 1;
            let r = parse(t, tokens, pos, arena);
            assert_eq!(tokens[*pos], Token::RParen, "expected ')'");
            *pos += 1;
            arena.push(Node::Bin(op, l, r))
        }
        other => panic!("unexpected token {other:?}"),
    }
}

/// Runs the gcc-like compilation workload.
pub fn run<T: Tracer>(t: &mut T, scale: SpecScale, seed: u64) -> u64 {
    const F: &str = "gcc_driver";
    let mut rng = StdRng::seed_from_u64(seed);
    let nvars = 8;
    let vars: Vec<i64> = (0..nvars).map(|_| rng.gen_range(-100..100)).collect();
    t.region(here!(F), &vars);

    let mut checksum = 0u64;
    let functions = 250 * scale.factor;
    for _ in 0..functions {
        // Front end: generate source text, tokenize, and parse it back.
        let mut gen_arena = Arena::default();
        let gen_root = gen_expr(&mut rng, &mut gen_arena, 9, nvars);
        let mut text = String::new();
        unparse(&gen_arena, gen_root, &mut text);
        t.region(here!(F), text.as_bytes());
        let tokens = tokenize(t, &text);
        t.region(here!(F), &tokens);
        let mut arena = Arena::default();
        let mut pos = 0;
        let root = parse(t, &tokens, &mut pos, &mut arena);
        debug_assert_eq!(pos, tokens.len(), "parser must consume all tokens");

        // Middle end and back end: const folding pushes at most one node
        // per existing node, so one reservation pins the arena in place
        // for the whole traced middle end.
        arena.nodes.reserve(arena.nodes.len() + 1);
        t.region_raw(here!(F), arena.nodes.as_ptr(), arena.nodes.capacity());
        let folded = const_fold(t, &mut arena, root);
        let (hits, numbered) = cse(t, &arena, folded);
        let value = emit_eval(t, &arena, folded, &vars);
        checksum = fold(checksum, value);
        checksum = fold(checksum, hits as i64);
        checksum = fold(checksum, numbered as i64);
        checksum = fold(checksum, tokens.len() as i64);
    }
    checksum
}

#[cfg(test)]
mod tests {
    use super::*;
    use bioperf_trace::NullTracer;

    #[test]
    fn op_families_cover_all_opcodes() {
        assert_eq!(NOPS % OP_FAMILIES.len(), 0);
        assert_eq!(family_name(0), "add");
        assert_eq!(family_name(12), "add", "flavours share a family");
    }

    #[test]
    fn const_folding_preserves_value() {
        let mut rng = StdRng::seed_from_u64(4);
        let vars: Vec<i64> = (0..8).map(|_| rng.gen_range(-50..50)).collect();
        let mut t = NullTracer::new();
        for _ in 0..50 {
            let mut arena = Arena::default();
            let root = gen_expr(&mut rng, &mut arena, 6, 8);
            let before = emit_eval(&mut t, &arena, root, &vars);
            let folded = const_fold(&mut t, &mut arena, root);
            let after = emit_eval(&mut t, &arena, folded, &vars);
            assert_eq!(before, after);
        }
    }

    #[test]
    fn folding_all_const_tree_yields_single_const() {
        let mut arena = Arena::default();
        let a = arena.push(Node::Const(3));
        let b = arena.push(Node::Const(4));
        let root = arena.push(Node::Bin(0, a, b));
        let mut t = NullTracer::new();
        let folded = const_fold(&mut t, &mut arena, root);
        assert_eq!(arena.nodes[folded], Node::Const(7));
    }

    #[test]
    fn cse_detects_shared_subtrees() {
        let mut arena = Arena::default();
        let a = arena.push(Node::Var(0));
        let b = arena.push(Node::Var(1));
        let l = arena.push(Node::Bin(0, a, b));
        // Structurally identical second occurrence.
        let a2 = arena.push(Node::Var(0));
        let b2 = arena.push(Node::Var(1));
        let r = arena.push(Node::Bin(0, a2, b2));
        let root = arena.push(Node::Bin(2, l, r));
        let mut t = NullTracer::new();
        let (hits, _) = cse(&mut t, &arena, root);
        // Var nodes are distinct arena slots, so only the *structural*
        // duplicate Bin can hit — but its children have different value
        // numbers here. No hit expected; the pass must still terminate.
        let _ = hits;
    }

    #[test]
    fn tokenizer_and_parser_roundtrip_the_tree() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut t = NullTracer::new();
        let vars: Vec<i64> = (0..8).map(|_| rng.gen_range(-30..30)).collect();
        for _ in 0..30 {
            let mut arena = Arena::default();
            let root = gen_expr(&mut rng, &mut arena, 5, 8);
            let mut text = String::new();
            unparse(&arena, root, &mut text);
            let tokens = tokenize(&mut t, &text);
            let mut arena2 = Arena::default();
            let mut pos = 0;
            let root2 = parse(&mut t, &tokens, &mut pos, &mut arena2);
            assert_eq!(pos, tokens.len());
            assert_eq!(
                emit_eval(&mut t, &arena, root, &vars),
                emit_eval(&mut t, &arena2, root2, &vars),
                "parsed tree evaluates identically: {text}"
            );
        }
    }

    #[test]
    fn tokenizer_handles_negative_numbers_and_spaces() {
        let mut t = NullTracer::new();
        let tokens = tokenize(&mut t, "( -42 o3 v7 )");
        assert_eq!(
            tokens,
            vec![Token::LParen, Token::Num(-42), Token::Op(3), Token::Var(7), Token::RParen]
        );
    }

    #[test]
    fn division_by_zero_is_defined() {
        assert_eq!(apply(3, 5, 0), 0);
        assert_eq!(apply(4, 5, 0), 0);
    }

    #[test]
    fn deterministic() {
        let mut t = NullTracer::new();
        assert_eq!(run(&mut t, SpecScale::TEST, 3), run(&mut t, SpecScale::TEST, 3));
    }
}
