//! A crafty-like chess workload: 0x88 move generation, perft search, and
//! piece-square evaluation.
//!
//! Move generation branches per piece type into separate code paths, each
//! with its own board and table loads — dynamic loads spread across many
//! more static sites than a bio kernel, but fewer than `vortex`/`gcc`
//! (crafty is the most concentrated of the paper's three SPEC curves).

use bioperf_isa::{here, SrcLoc};
use bioperf_trace::Tracer;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::{fold, SpecScale};

const EMPTY: i8 = 0;
const PAWN: i8 = 1;
const KNIGHT: i8 = 2;
const BISHOP: i8 = 3;
const ROOK: i8 = 4;
const QUEEN: i8 = 5;
const KING: i8 = 6;

/// A 0x88 board: 128 cells, the high nibble bit flags off-board squares.
#[derive(Debug, Clone)]
struct Board {
    sq: [i8; 128],
    psq: [[i32; 128]; 7],
}

#[inline]
fn off_board(s: i32) -> bool {
    s & 0x88 != 0
}

impl Board {
    fn initial(rng: &mut StdRng) -> Self {
        let mut sq = [EMPTY; 128];
        let back = [ROOK, KNIGHT, BISHOP, QUEEN, KING, BISHOP, KNIGHT, ROOK];
        for (f, &p) in back.iter().enumerate() {
            sq[f] = p;
            sq[0x70 + f] = -p;
            sq[0x10 + f] = PAWN;
            sq[0x60 + f] = -PAWN;
        }
        // Piece-square tables with mild random texture (crafty's tables
        // are large constant arrays — the loads are what matter).
        let mut psq = [[0i32; 128]; 7];
        for table in psq.iter_mut() {
            for (s, v) in table.iter_mut().enumerate() {
                if !off_board(s as i32) {
                    *v = rng.gen_range(-20..20);
                }
            }
        }
        Self { sq, psq }
    }

    /// Scrambles the position with a few random pseudo-legal moves so
    /// different seeds search different trees.
    fn scramble(&mut self, rng: &mut StdRng, plies: usize) {
        let mut side = 1i8;
        for _ in 0..plies {
            let mut moves = Vec::new();
            let mut t = bioperf_trace::NullTracer::new();
            generate_moves(&mut t, self, side, &mut moves);
            if moves.is_empty() {
                break;
            }
            let (from, to) = moves[rng.gen_range(0..moves.len())];
            self.sq[to as usize] = self.sq[from as usize];
            self.sq[from as usize] = EMPTY;
            side = -side;
        }
    }
}

/// Synthesized static site for one (piece kind, direction, slot) clone.
/// Crafty's move generator is heavily specialised per piece and ray
/// direction; each specialisation's loads are distinct static loads.
fn site(piece: usize, dir: usize, slot: u32) -> SrcLoc {
    SrcLoc::new(
        "crafty_movegen.rs",
        3000 + (piece as u32) * 512 + (dir as u32) * 16 + slot,
        1,
        "crafty_movegen",
    )
}

// `static`, not `const`: the move generator records loads *from* these
// tables, so they need one stable address to declare to the
// address-normalization pass (a `const` would be re-materialised as a
// temporary at every borrow site).
static KNIGHT_DELTAS: [i32; 8] = [33, 31, 18, 14, -33, -31, -18, -14];
static KING_DELTAS: [i32; 8] = [1, -1, 16, -16, 17, 15, -17, -15];
static BISHOP_DIRS: [i32; 4] = [17, 15, -17, -15];
static ROOK_DIRS: [i32; 4] = [1, -1, 16, -16];
static VALUES: [i32; 7] = [0, 100, 320, 330, 500, 900, 20000];

/// Generates pseudo-legal moves for `side`, dispatching to a per-piece
/// code path (each with its own static loads, as in crafty).
fn generate_moves<T: Tracer>(t: &mut T, b: &Board, side: i8, out: &mut Vec<(i32, i32)>) {
    const F: &str = "crafty_genmoves";
    for from in 0..128i32 {
        if off_board(from) {
            continue;
        }
        let v_p = t.int_load(here!(F), &b.sq[from as usize]);
        let p = b.sq[from as usize];
        let v_cmp = t.int_op(here!(F), &[v_p]);
        if !t.branch(here!(F), &[v_cmp], p != EMPTY && (p > 0) == (side > 0)) {
            continue;
        }
        match p.abs() {
            PAWN => pawn_moves(t, b, from, side, out),
            KNIGHT => leaper_moves_knight(t, b, from, side, out),
            BISHOP => slider_moves_bishop(t, b, from, side, out),
            ROOK => slider_moves_rook(t, b, from, side, out),
            QUEEN => {
                slider_moves_bishop(t, b, from, side, out);
                slider_moves_rook(t, b, from, side, out);
            }
            _ => leaper_moves_king(t, b, from, side, out),
        }
    }
}

fn pawn_moves<T: Tracer>(t: &mut T, b: &Board, from: i32, side: i8, out: &mut Vec<(i32, i32)>) {
    const F: &str = "crafty_pawn";
    let dir = if side > 0 { 16 } else { -16 };
    let fwd = from + dir;
    if !off_board(fwd) {
        let v = t.int_load(here!(F), &b.sq[fwd as usize]);
        let v_cmp = t.int_op(here!(F), &[v]);
        if t.branch(here!(F), &[v_cmp], b.sq[fwd as usize] == EMPTY) {
            out.push((from, fwd));
        }
    }
    for cap_dir in [dir + 1, dir - 1] {
        let to = from + cap_dir;
        if off_board(to) {
            continue;
        }
        let v = t.int_load(here!(F), &b.sq[to as usize]);
        let target = b.sq[to as usize];
        let v_cmp = t.int_op(here!(F), &[v]);
        if t.branch(here!(F), &[v_cmp], target != EMPTY && (target > 0) != (side > 0)) {
            out.push((from, to));
        }
    }
}

fn leaper_moves_knight<T: Tracer>(t: &mut T, b: &Board, from: i32, side: i8, out: &mut Vec<(i32, i32)>) {
    // One fully unrolled clone per knight direction (as crafty's
    // generated move tables are).
    for (i, &d) in KNIGHT_DELTAS.iter().enumerate() {
        let v_d = t.int_load(site(KNIGHT as usize, i, 0), &KNIGHT_DELTAS[i]);
        let to = from + d;
        if off_board(to) {
            continue;
        }
        let v = t.int_load_via(site(KNIGHT as usize, i, 1), &b.sq[to as usize], v_d);
        let target = b.sq[to as usize];
        let v_cmp = t.int_op(site(KNIGHT as usize, i, 2), &[v]);
        if t.branch(site(KNIGHT as usize, i, 3), &[v_cmp], target == EMPTY || (target > 0) != (side > 0)) {
            out.push((from, to));
        }
    }
}

fn leaper_moves_king<T: Tracer>(t: &mut T, b: &Board, from: i32, side: i8, out: &mut Vec<(i32, i32)>) {
    for (i, &d) in KING_DELTAS.iter().enumerate() {
        let v_d = t.int_load(site(KING as usize, i, 0), &KING_DELTAS[i]);
        let to = from + d;
        if off_board(to) {
            continue;
        }
        let v = t.int_load_via(site(KING as usize, i, 1), &b.sq[to as usize], v_d);
        let target = b.sq[to as usize];
        let v_cmp = t.int_op(site(KING as usize, i, 2), &[v]);
        if t.branch(site(KING as usize, i, 3), &[v_cmp], target == EMPTY || (target > 0) != (side > 0)) {
            out.push((from, to));
        }
    }
}

fn slider_moves_bishop<T: Tracer>(t: &mut T, b: &Board, from: i32, side: i8, out: &mut Vec<(i32, i32)>) {
    for (i, &d) in BISHOP_DIRS.iter().enumerate() {
        let v_d = t.int_load(site(BISHOP as usize, i, 0), &BISHOP_DIRS[i]);
        let mut to = from + d;
        let mut v_sq = v_d;
        loop {
            if off_board(to) {
                break;
            }
            v_sq = t.int_load_via(site(BISHOP as usize, i, 1), &b.sq[to as usize], v_sq);
            let target = b.sq[to as usize];
            let v_cmp = t.int_op(site(BISHOP as usize, i, 2), &[v_sq]);
            if t.branch(site(BISHOP as usize, i, 3), &[v_cmp], target == EMPTY) {
                out.push((from, to));
                to += d;
                continue;
            }
            let v_cmp = t.int_op(site(BISHOP as usize, i, 4), &[v_sq]);
            if t.branch(site(BISHOP as usize, i, 5), &[v_cmp], (target > 0) != (side > 0)) {
                out.push((from, to));
            }
            break;
        }
    }
}

fn slider_moves_rook<T: Tracer>(t: &mut T, b: &Board, from: i32, side: i8, out: &mut Vec<(i32, i32)>) {
    for (i, &d) in ROOK_DIRS.iter().enumerate() {
        let v_d = t.int_load(site(ROOK as usize, i, 0), &ROOK_DIRS[i]);
        let mut to = from + d;
        let mut v_sq = v_d;
        loop {
            if off_board(to) {
                break;
            }
            v_sq = t.int_load_via(site(ROOK as usize, i, 1), &b.sq[to as usize], v_sq);
            let target = b.sq[to as usize];
            let v_cmp = t.int_op(site(ROOK as usize, i, 2), &[v_sq]);
            if t.branch(site(ROOK as usize, i, 3), &[v_cmp], target == EMPTY) {
                out.push((from, to));
                to += d;
                continue;
            }
            let v_cmp = t.int_op(site(ROOK as usize, i, 4), &[v_sq]);
            if t.branch(site(ROOK as usize, i, 5), &[v_cmp], (target > 0) != (side > 0)) {
                out.push((from, to));
            }
            break;
        }
    }
}

/// Static-exchange-free evaluation: material plus piece-square terms.
fn evaluate<T: Tracer>(t: &mut T, b: &Board) -> i32 {
    const F: &str = "crafty_evaluate";
    let mut score = 0i32;
    let mut v_score = t.lit();
    for s in 0..128usize {
        if off_board(s as i32) {
            continue;
        }
        let v_p = t.int_load(here!(F), &b.sq[s]);
        let p = b.sq[s];
        let v_cmp = t.int_op(here!(F), &[v_p]);
        if !t.branch(here!(F), &[v_cmp], p != EMPTY) {
            continue;
        }
        let kind = p.unsigned_abs() as usize;
        // Per-(piece kind, rank) evaluation clone: crafty's evaluation is
        // specialised per piece type with rank-dependent terms (passed
        // pawns, seventh-rank rooks, …) — each specialisation's loads are
        // distinct static loads.
        let rank = s >> 4;
        let v_val = t.int_load_via(site(kind, 9 + rank, 0), &VALUES[kind], v_p);
        let v_psq = t.int_load_via(site(kind, 9 + rank, 1), &b.psq[kind][s], v_p);
        let term = VALUES[kind] + b.psq[kind][s];
        let v_t = t.int_op(site(kind, 9 + rank, 2), &[v_val, v_psq]);
        v_score = t.int_op(site(kind, 9 + rank, 3), &[v_score, v_t]);
        score += if p > 0 { term } else { -term };
    }
    score
}

/// Search bookkeeping: crafty's history heuristic table, updated per
/// move tried (per-piece-kind clone sites).
#[derive(Debug)]
struct History {
    counts: Vec<u32>,
}

impl History {
    fn new() -> Self {
        Self { counts: vec![0; 128 * 128] }
    }

    fn bump<T: Tracer>(&mut self, t: &mut T, piece: usize, from: i32, to: i32) {
        let idx = (from as usize) * 128 + to as usize;
        let v = t.int_load(site(piece, 25, 0), &self.counts[idx]);
        let v2 = t.int_op(site(piece, 25, 1), &[v]);
        t.int_store(site(piece, 25, 2), &self.counts[idx], v2);
        self.counts[idx] += 1;
    }
}

/// Perft-style search: counts nodes, accumulates evaluations, and keeps
/// crafty-style history counters.
fn perft<T: Tracer>(
    t: &mut T,
    b: &mut Board,
    history: &mut History,
    side: i8,
    depth: u32,
    checksum: &mut u64,
) -> u64 {
    if depth == 0 {
        let e = evaluate(t, b);
        *checksum = fold(*checksum, e as i64);
        return 1;
    }
    let mut moves = Vec::new();
    generate_moves(t, b, side, &mut moves);
    let mut nodes = 0;
    for (from, to) in moves {
        let captured = b.sq[to as usize];
        if captured.abs() == KING {
            continue; // king capture ends the line
        }
        let piece = b.sq[from as usize].unsigned_abs() as usize;
        history.bump(t, piece, from, to);
        b.sq[to as usize] = b.sq[from as usize];
        b.sq[from as usize] = EMPTY;
        nodes += perft(t, b, history, -side, depth - 1, checksum);
        b.sq[from as usize] = b.sq[to as usize];
        b.sq[to as usize] = captured;
    }
    nodes
}

/// Runs the crafty-like workload.
pub fn run<T: Tracer>(t: &mut T, scale: SpecScale, seed: u64) -> u64 {
    const F: &str = "crafty_driver";
    let mut rng = StdRng::seed_from_u64(seed);
    let mut checksum = 0u64;
    let mut history = History::new();
    t.region(here!(F), &KNIGHT_DELTAS);
    t.region(here!(F), &KING_DELTAS);
    t.region(here!(F), &BISHOP_DIRS);
    t.region(here!(F), &ROOK_DIRS);
    t.region(here!(F), &VALUES);
    t.region(here!(F), &history.counts);
    for game in 0..scale.factor {
        let mut board = Board::initial(&mut rng);
        board.scramble(&mut rng, 6 + game % 5);
        // One region for the whole board struct (sq + psq) so the
        // in-struct layout survives normalization; each game's board is a
        // fresh position, so re-declaring (fresh slot, cold lines) models
        // a newly set-up board faithfully.
        t.region_raw(here!(F), (&board as *const Board).cast::<u8>(), std::mem::size_of::<Board>());
        let nodes = perft(t, &mut board, &mut history, 1, 3, &mut checksum);
        checksum = fold(checksum, nodes as i64);
    }
    checksum
}

#[cfg(test)]
mod tests {
    use super::*;
    use bioperf_trace::NullTracer;

    #[test]
    fn initial_position_has_twenty_pawn_and_knight_moves() {
        let mut rng = StdRng::seed_from_u64(0);
        let b = Board::initial(&mut rng);
        let mut t = NullTracer::new();
        let mut moves = Vec::new();
        generate_moves(&mut t, &b, 1, &mut moves);
        // 16 pawn moves (8 single, 0 double: no double-push modeled) + 4 knight.
        assert_eq!(moves.len(), 12);
    }

    #[test]
    fn evaluation_is_symmetric_at_start() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut b = Board::initial(&mut rng);
        // Zero the random psq texture to isolate material symmetry.
        b.psq = [[0; 128]; 7];
        let mut t = NullTracer::new();
        assert_eq!(evaluate(&mut t, &b), 0);
    }

    #[test]
    fn perft_counts_grow_with_depth() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut b = Board::initial(&mut rng);
        let mut t = NullTracer::new();
        let mut cs = 0u64;
        let mut h = History::new();
        let d1 = perft(&mut t, &mut b, &mut h, 1, 1, &mut cs);
        let d2 = perft(&mut t, &mut b, &mut h, 1, 2, &mut cs);
        assert!(d2 > d1);
    }

    #[test]
    fn history_counts_every_tried_move() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut b = Board::initial(&mut rng);
        let mut t = NullTracer::new();
        let mut cs = 0u64;
        let mut h = History::new();
        perft(&mut t, &mut b, &mut h, 1, 1, &mut cs);
        let total: u32 = h.counts.iter().sum();
        assert!(total > 0, "depth-1 perft tries moves");
    }

    #[test]
    fn off_board_mask_matches_0x88_convention() {
        assert!(!off_board(0x00));
        assert!(!off_board(0x77));
        assert!(off_board(0x78));
        assert!(off_board(0x80));
        assert!(off_board(-1));
    }
}
