//! SPEC CPU2000-like integer comparison workloads for the Figure 2
//! contrast.
//!
//! The paper's Figure 2 compares the BioPerf programs' extreme static-load
//! concentration (≈80 static loads cover >90% of dynamic loads) against
//! three SPEC CPU2000 integer programs — `crafty`, `vortex`, and `gcc` —
//! where the same number of static loads covers only 10–58%. SPEC CPU2000
//! itself is not redistributable, so this crate provides three small
//! workloads engineered to have the property that matters for the
//! comparison: *dynamic load execution spread over many static load
//! sites*:
//!
//! * [`crafty`] — a 0x88 chess move generator with per-piece-type code
//!   paths and piece-square evaluation (moderately spread, like crafty),
//! * [`vortex`] — an object database with per-record-type handlers and
//!   index traversals (more spread),
//! * [`gcc`] — an expression compiler running tokenize → parse → constant
//!   fold → CSE → emit over dozens of opcode handlers (flattest).
//!
//! `vortex` and `gcc` model their many handler clones by synthesizing
//! per-type [`SrcLoc`]s (one static-instruction identity per handler
//! instantiation), the way a large C program has one copy of the access
//! code per record/opcode type.
//!
//! [`SrcLoc`]: bioperf_isa::SrcLoc

pub mod crafty;
pub mod gcc;
pub mod vortex;

use bioperf_trace::Tracer;

/// The three comparison programs in the paper's Figure 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SpecProgram {
    /// Chess move generation and search (crafty-like).
    Crafty,
    /// Object-database transactions (vortex-like).
    Vortex,
    /// Expression compilation passes (gcc-like).
    Gcc,
}

impl SpecProgram {
    /// All three programs.
    pub const ALL: [SpecProgram; 3] = [SpecProgram::Crafty, SpecProgram::Vortex, SpecProgram::Gcc];

    /// SPEC benchmark name.
    pub fn name(self) -> &'static str {
        match self {
            SpecProgram::Crafty => "crafty",
            SpecProgram::Vortex => "vortex",
            SpecProgram::Gcc => "gcc",
        }
    }
}

impl std::fmt::Display for SpecProgram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Work multiplier for the comparison runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpecScale {
    /// Rough dynamic-work multiplier (1 = unit-test sized).
    pub factor: usize,
}

impl SpecScale {
    /// Unit-test sized.
    pub const TEST: SpecScale = SpecScale { factor: 1 };
    /// Characterization sized (comparable to the bio kernels' Medium).
    pub const MEDIUM: SpecScale = SpecScale { factor: 8 };
}

/// Runs one comparison program, returning a result checksum.
pub fn run<T: Tracer>(t: &mut T, program: SpecProgram, scale: SpecScale, seed: u64) -> u64 {
    match program {
        SpecProgram::Crafty => crafty::run(t, scale, seed),
        SpecProgram::Vortex => vortex::run(t, scale, seed),
        SpecProgram::Gcc => gcc::run(t, scale, seed),
    }
}

pub(crate) fn fold(acc: u64, value: i64) -> u64 {
    (acc ^ value as u64).wrapping_mul(0x100_0000_01b3)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bioperf_isa::OpKind;
    use bioperf_trace::{consumers::LoadCounts, NullTracer, Tape};

    #[test]
    fn all_programs_run_deterministically() {
        for p in SpecProgram::ALL {
            let mut t = NullTracer::new();
            let a = run(&mut t, p, SpecScale::TEST, 5);
            let b = run(&mut t, p, SpecScale::TEST, 5);
            assert_eq!(a, b, "{p}");
        }
    }

    #[test]
    fn spec_programs_have_many_static_loads() {
        // The property Figure 2 contrasts: these programs spread their
        // dynamic loads across far more static sites than the bio kernels.
        for p in SpecProgram::ALL {
            let mut tape = Tape::new(LoadCounts::default());
            run(&mut tape, p, SpecScale::TEST, 1);
            let (program, counts) = tape.finish();
            let static_loads = program.count_kind(OpKind::is_load);
            let floor = if p == SpecProgram::Crafty { 50 } else { 150 };
            assert!(static_loads > floor, "{p}: only {static_loads} static loads");
            assert!(counts.total() > 10_000, "{p}: tiny trace");
        }
    }

    #[test]
    fn coverage_at_80_loads_is_partial() {
        // gcc-like: 80 hottest static loads must NOT cover 90% of dynamic
        // loads (in the paper they cover ~10%; we only require the
        // qualitative gap).
        let mut tape = Tape::new(LoadCounts::default());
        run(&mut tape, SpecProgram::Gcc, SpecScale::TEST, 2);
        let (_, counts) = tape.finish();
        let sorted = counts.sorted_desc();
        let top80: u64 = sorted.iter().take(80).sum();
        let frac = top80 as f64 / counts.total() as f64;
        assert!(frac < 0.9, "gcc-like coverage at 80 loads = {frac}");
    }
}
