//! A vortex-like object-database workload.
//!
//! Vortex's dynamic loads are spread over hundreds of static sites: every
//! record type has its own access/validation/update code. We model that
//! faithfully by giving each of the `NTYPES` record types its own
//! synthesized static-instruction identities (one handler "clone" per
//! type, as a large C program would have), executing a Zipf-distributed
//! transaction mix over hash-indexed object stores.

use bioperf_isa::SrcLoc;
use bioperf_trace::Tracer;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::{fold, SpecScale};

const NTYPES: usize = 40;
const FIELDS: usize = 6;
const BUCKETS: usize = 256;

/// Synthesized static-instruction site for one handler clone.
///
/// `vortex`'s handler code is generated per record type; each clone's
/// instructions are distinct static instructions. `line` encodes
/// (type, operation) so every clone interns separately.
fn site(ty: usize, op: u32) -> SrcLoc {
    SrcLoc::new("vortex_handlers.rs", 1000 + (ty as u32) * 64 + op, 1, "vortex_handler")
}

/// One typed object store with an intrusive hash index.
#[derive(Debug, Clone)]
struct Store {
    /// Flattened records: `FIELDS` u64 fields each.
    fields: Vec<u64>,
    /// Key per record.
    keys: Vec<u64>,
    /// Hash chain heads per bucket.
    heads: Vec<i32>,
    /// Next pointers per record.
    next: Vec<i32>,
}

impl Store {
    fn new() -> Self {
        Self { fields: Vec::new(), keys: Vec::new(), heads: vec![-1; BUCKETS], next: Vec::new() }
    }

    fn insert(&mut self, key: u64, seed_fields: u64) {
        let rec = self.keys.len();
        self.keys.push(key);
        self.next.push(self.heads[(key as usize) % BUCKETS]);
        self.heads[(key as usize) % BUCKETS] = rec as i32;
        for f in 0..FIELDS {
            self.fields.push(seed_fields.rotate_left(f as u32) ^ key);
        }
    }
}

/// Declares one store's arrays to the address-normalization pass.
///
/// The growable vecs are declared over *capacity*, not length, so pushes
/// that stay within capacity land inside the declared region. The caller
/// re-declares after any insert that reallocates; `Vec`'s growth policy
/// makes the capacity sequence a deterministic function of the push
/// sequence, so re-declaration points are run-invariant.
fn declare_store<T: Tracer>(t: &mut T, store: &Store, ty: usize) {
    let loc = site(ty, 63);
    t.region_raw(loc, store.fields.as_ptr(), store.fields.capacity());
    t.region_raw(loc, store.keys.as_ptr(), store.keys.capacity());
    t.region(loc, &store.heads);
    t.region_raw(loc, store.next.as_ptr(), store.next.capacity());
}

/// Traced lookup in a typed store: hash-chain walk with per-type sites.
fn lookup<T: Tracer>(t: &mut T, store: &Store, ty: usize, key: u64) -> Option<usize> {
    let bucket = (key as usize) % BUCKETS;
    let mut v_p = t.int_load(site(ty, 0), &store.heads[bucket]);
    let mut p = store.heads[bucket];
    loop {
        if !t.branch(site(ty, 1), &[v_p], p >= 0) {
            return None;
        }
        let rec = p as usize;
        let v_key = t.int_load_via(site(ty, 2), &store.keys[rec], v_p);
        let v_cmp = t.int_op(site(ty, 3), &[v_key]);
        if t.branch(site(ty, 4), &[v_cmp], store.keys[rec] == key) {
            return Some(rec);
        }
        v_p = t.int_load_via(site(ty, 5), &store.next[rec], v_p);
        p = store.next[rec];
    }
}

/// Traced field read + validation, one site pair per (type, field).
fn read_fields<T: Tracer>(t: &mut T, store: &Store, ty: usize, rec: usize) -> u64 {
    let mut acc = 0u64;
    let mut v_acc = t.lit();
    for f in 0..FIELDS {
        let idx = rec * FIELDS + f;
        let v = t.int_load(site(ty, 8 + 2 * f as u32), &store.fields[idx]);
        v_acc = t.int_op(site(ty, 9 + 2 * f as u32), &[v_acc, v]);
        acc = acc.wrapping_add(store.fields[idx].rotate_left(f as u32));
    }
    acc
}

/// Traced field update, one site per (type, field slot).
fn update_field<T: Tracer>(t: &mut T, store: &mut Store, ty: usize, rec: usize, f: usize, delta: u64) {
    let idx = rec * FIELDS + f;
    let v_old = t.int_load(site(ty, 24 + f as u32), &store.fields[idx]);
    let v_new = t.int_op(site(ty, 30 + f as u32), &[v_old]);
    t.int_store(site(ty, 36 + f as u32), &store.fields[idx], v_new);
    store.fields[idx] = store.fields[idx].wrapping_add(delta);
}

/// Runs the vortex-like transaction mix.
pub fn run<T: Tracer>(t: &mut T, scale: SpecScale, seed: u64) -> u64 {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut stores: Vec<Store> = (0..NTYPES).map(|_| Store::new()).collect();

    // Populate: a few hundred records per type.
    for (ty, store) in stores.iter_mut().enumerate() {
        let count = 100 + (ty * 13) % 200;
        for k in 0..count {
            store.insert((k as u64) * 7919 + ty as u64, rng.gen());
        }
    }

    for (ty, store) in stores.iter().enumerate() {
        declare_store(t, store, ty);
    }

    // Zipf-ish type popularity: type weight ∝ 1/(rank+1).
    let weights: Vec<f64> = (0..NTYPES).map(|i| 1.0 / (i + 1) as f64).collect();
    let total_w: f64 = weights.iter().sum();

    let mut checksum = 0u64;
    let txns = 4_000 * scale.factor;
    for _ in 0..txns {
        // Pick a type by popularity.
        let mut x = rng.gen_range(0.0..total_w);
        let mut ty = 0;
        for (i, &w) in weights.iter().enumerate() {
            if x < w {
                ty = i;
                break;
            }
            x -= w;
        }
        let store_len = stores[ty].keys.len();
        let key = (rng.gen_range(0..store_len * 2) as u64) * 7919 / 2 + ty as u64;
        match lookup(t, &stores[ty], ty, key) {
            Some(rec) => {
                let acc = read_fields(t, &stores[ty], ty, rec);
                checksum = fold(checksum, acc as i64);
                if rng.gen_bool(0.3) {
                    let f = rng.gen_range(0..FIELDS);
                    update_field(t, &mut stores[ty], ty, rec, f, acc | 1);
                }
            }
            None => {
                checksum = fold(checksum, -1);
                if rng.gen_bool(0.1) {
                    let s = &mut stores[ty];
                    let caps = (s.fields.capacity(), s.keys.capacity(), s.next.capacity());
                    s.insert(key, checksum);
                    if caps != (s.fields.capacity(), s.keys.capacity(), s.next.capacity()) {
                        declare_store(t, s, ty);
                    }
                }
            }
        }
    }
    checksum
}

#[cfg(test)]
mod tests {
    use super::*;
    use bioperf_trace::NullTracer;

    #[test]
    fn lookup_finds_inserted_keys() {
        let mut s = Store::new();
        s.insert(42, 7);
        s.insert(42 + BUCKETS as u64, 8); // same bucket
        let mut t = NullTracer::new();
        assert!(lookup(&mut t, &s, 0, 42).is_some());
        assert!(lookup(&mut t, &s, 0, 42 + BUCKETS as u64).is_some());
        assert!(lookup(&mut t, &s, 0, 43).is_none());
    }

    #[test]
    fn update_changes_read_accumulator() {
        let mut s = Store::new();
        s.insert(1, 99);
        let mut t = NullTracer::new();
        let before = read_fields(&mut t, &s, 0, 0);
        update_field(&mut t, &mut s, 0, 0, 2, 5);
        let after = read_fields(&mut t, &s, 0, 0);
        assert_ne!(before, after);
    }

    #[test]
    fn sites_are_distinct_per_type() {
        assert_ne!(site(0, 1), site(1, 1));
        assert_ne!(site(3, 0), site(3, 1));
    }

    #[test]
    fn deterministic() {
        let mut t = NullTracer::new();
        assert_eq!(run(&mut t, SpecScale::TEST, 9), run(&mut t, SpecScale::TEST, 9));
    }
}
