//! Seeded adversarial stream generation and differential checking.
//!
//! [`generate_stream`] derives a micro-op stream from a single `u64`
//! seed, biased toward the optimized implementations' hard cases:
//!
//! * SSA-counter gaps (`lit()`-style claimed-but-unproduced vregs) and
//!   wild destination resyncs, which exercise the packed codec's far-dst
//!   side table and counter resynchronization;
//! * delta-0 / future / `u64::MAX` source references, which exercise the
//!   far-src path and the ready-ring sentinel;
//! * set-conflict address ladders, a hot page, spill-slot collisions,
//!   and near-overflow bases, which exercise LRU victim selection,
//!   dirty-writeback propagation, and address wraparound;
//! * per-branch outcome patterns (biased / alternating / random), which
//!   exercise every hybrid-predictor component and mispredict-flush
//!   interleavings.
//!
//! [`check_stream`] replays one stream through every optimized
//! implementation and its reference twin, diffing per-op events and
//! final statistics; [`run_case`] adds deterministic per-case seeding,
//! platform rotation, and removal-based counterexample shrinking.

use bioperf_branch::BranchProfiler;
use bioperf_cache::AccessKind;
use bioperf_isa::{MicroOp, OpKind, Program, StaticId, VReg, MAX_SRCS};
use bioperf_pipe::{CycleSim, PlatformConfig, RegFile};
use bioperf_trace::packed::PackedStream;
use bioperf_trace::{SpillRecorder, TraceConsumer};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::cache::RefHierarchy;
use crate::pipeline::RefPipeline;
use crate::predictor::RefPredictor;
use crate::regfile::RefRegFile;

/// The simulator's spill-slot region; generated addresses deliberately
/// collide with it so spill traffic and demand traffic interleave.
const SPILL_BASE: u64 = 0x7fff_0000_0000;
const SPILL_SLOTS: u64 = 512;

/// Predicate evaluations spent shrinking one failing stream.
const SHRINK_BUDGET: usize = 2000;

/// One observed disagreement between an optimized implementation and its
/// reference model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Divergence {
    /// Which differential check failed: `codec`, `block`, `segment`,
    /// `cache`, `regfile`, `predictor`, or `pipeline`.
    pub component: &'static str,
    /// Human-readable mismatch description.
    pub detail: String,
}

impl Divergence {
    fn new(component: &'static str, detail: String) -> Self {
        Self { component, detail }
    }
}

/// A divergence together with its shrunk witness stream.
#[derive(Debug, Clone)]
pub struct CounterExample {
    /// Failing check on the shrunk stream.
    pub component: &'static str,
    /// Mismatch description on the shrunk stream.
    pub detail: String,
    /// Minimal (under removal shrinking) op stream that still diverges.
    pub ops: Vec<MicroOp>,
}

/// Outcome of one fuzz case.
#[derive(Debug, Clone)]
pub struct CaseOutcome {
    /// Case index within the run.
    pub index: u64,
    /// Derived stream seed (reproduce with `generate_stream(seed)`).
    pub seed: u64,
    /// Platform the case ran on.
    pub platform: &'static str,
    /// Generated stream length.
    pub ops: usize,
    /// The divergence, if any check failed.
    pub divergence: Option<CounterExample>,
}

/// Derives the stream seed of case `index` from the run's base seed
/// (SplitMix64-style mix, so consecutive indices decorrelate).
pub fn case_seed(base: u64, index: u64) -> u64 {
    let mut z = base ^ index.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The platform case `index` runs on (round-robin over the Table 7
/// machines, so every fourth case stresses each configuration).
pub fn platform_for_case(index: u64) -> PlatformConfig {
    PlatformConfig::all()[(index % 4) as usize]
}

/// Generates the adversarial op stream for one seed.
pub fn generate_stream(seed: u64) -> Vec<MicroOp> {
    let mut rng = StdRng::seed_from_u64(seed);
    let len = rng.gen_range(16usize..160);
    let mut ops = Vec::with_capacity(len);

    // SSA state mirroring the tape's monotone vreg allocation.
    let mut counter: u64 = 0;
    let mut produced: Vec<u64> = Vec::new();

    // Per-static-branch outcome behavior.
    let n_sids = rng.gen_range(1u32..10);
    let modes: Vec<u8> = (0..n_sids).map(|_| rng.gen_range(0u8..4)).collect();
    let mut alternators = vec![false; n_sids as usize];

    // Address-pattern state: one conflict stride per stream plus a hot
    // page. 32 KB strides collide L1 sets on every platform; 4 MB
    // strides collide the Alpha's direct-mapped L2; 64 B walks blocks.
    let stride = [32 * 1024u64, 64, 4 << 20, 2048][rng.gen_range(0usize..4)];
    let conflict_base =
        if rng.gen_bool(0.08) { u64::MAX - 2 * (4 << 20) } else { rng.gen_range(0..1u64 << 40) };
    let hot_base = rng.gen_range(0..1u64 << 32) & !0xFFF;
    let mut conflict_rung: u64 = 0;

    for _ in 0..len {
        let sid = StaticId::from_raw(rng.gen_range(0..n_sids));
        let roll = rng.gen_range(0u32..100);
        let op = if roll < 30 {
            let kind = if rng.gen_bool(0.25) { OpKind::FpLoad } else { OpKind::IntLoad };
            let base = pick_src(&mut rng, &produced, counter);
            let addr = pick_addr(&mut rng, stride, conflict_base, &mut conflict_rung, hot_base);
            let dst = pick_dst(&mut rng, &mut counter, &mut produced);
            MicroOp { sid, kind, dst: Some(dst), srcs: [base, None, None], addr: Some(addr), taken: false }
        } else if roll < 45 {
            let kind = if rng.gen_bool(0.2) { OpKind::FpStore } else { OpKind::IntStore };
            let value = pick_src(&mut rng, &produced, counter);
            let addr = pick_addr(&mut rng, stride, conflict_base, &mut conflict_rung, hot_base);
            MicroOp { sid, kind, dst: None, srcs: [value, None, None], addr: Some(addr), taken: false }
        } else if roll < 65 {
            let srcs = [
                pick_src(&mut rng, &produced, counter),
                pick_src(&mut rng, &produced, counter),
                None,
            ];
            let taken = branch_outcome(&mut rng, modes[sid.index()], &mut alternators[sid.index()]);
            MicroOp { sid, kind: OpKind::CondBranch, dst: None, srcs, addr: None, taken }
        } else if roll < 90 {
            let kind = match rng.gen_range(0u32..10) {
                0..=6 => OpKind::IntAlu,
                7 => OpKind::IntMul,
                _ => OpKind::CondMove,
            };
            let srcs = [
                pick_src(&mut rng, &produced, counter),
                pick_src(&mut rng, &produced, counter),
                pick_src(&mut rng, &produced, counter),
            ];
            // A select's outcome matters on platforms without
            // if-conversion, where it executes as compare-and-branch.
            let taken = kind == OpKind::CondMove
                && branch_outcome(&mut rng, modes[sid.index()], &mut alternators[sid.index()]);
            let dst = pick_dst(&mut rng, &mut counter, &mut produced);
            MicroOp { sid, kind, dst: Some(dst), srcs, addr: None, taken }
        } else if roll < 95 {
            // Jumps occasionally carry a (meaningless) address so the
            // codec's addr flag is exercised off the memory-op path.
            let addr = rng.gen_bool(0.3).then(|| rng.gen::<u64>());
            MicroOp { sid, kind: OpKind::Jump, dst: None, srcs: [None; MAX_SRCS], addr, taken: false }
        } else {
            let kind = match rng.gen_range(0u32..3) {
                0 => OpKind::FpAlu,
                1 => OpKind::FpMul,
                _ => OpKind::FpDiv,
            };
            let srcs = [
                pick_src(&mut rng, &produced, counter),
                pick_src(&mut rng, &produced, counter),
                None,
            ];
            let dst = pick_dst(&mut rng, &mut counter, &mut produced);
            MicroOp { sid, kind, dst: Some(dst), srcs, addr: None, taken: false }
        };
        ops.push(op);
    }
    ops
}

/// Destination picker: mostly the running counter (the codec's elided
/// fast path), with `lit()`-style gaps and occasional wild resyncs.
fn pick_dst(rng: &mut StdRng, counter: &mut u64, produced: &mut Vec<u64>) -> VReg {
    let roll = rng.gen_range(0u32..100);
    if (82..94).contains(&roll) {
        // A lit() gap: vregs claimed with no producing op.
        *counter += rng.gen_range(1u64..4);
    } else if (94..98).contains(&roll) {
        // Forward resync far beyond any near encoding.
        *counter += rng.gen_range(4u64..100_000);
    } else if roll >= 98 {
        // Fully wild destination (can rewind the counter).
        *counter = rng.gen();
    }
    let v = *counter;
    *counter = counter.wrapping_add(1);
    produced.push(v);
    VReg(v)
}

/// Source picker: biased toward recent producers (near deltas) but with
/// deep-history, delta-0, future, sentinel, and wild references mixed in.
fn pick_src(rng: &mut StdRng, produced: &[u64], counter: u64) -> Option<VReg> {
    let roll = rng.gen_range(0u32..100);
    match roll {
        0..=34 => {
            let window = produced.len().min(8);
            (window > 0).then(|| {
                VReg(produced[produced.len() - 1 - rng.gen_range(0..window)])
            })
        }
        35..=49 => (!produced.is_empty()).then(|| VReg(produced[rng.gen_range(0..produced.len())])),
        50..=57 => Some(VReg(counter)), // delta 0: unencodable as near
        58..=63 => Some(VReg(counter.wrapping_add(rng.gen_range(1u64..100)))),
        64..=67 => Some(VReg(u64::MAX)), // ready-ring sentinel alias
        68..=74 => Some(VReg(rng.gen())),
        _ => None,
    }
}

/// Per-dynamic-branch outcome under one of four per-sid modes.
fn branch_outcome(rng: &mut StdRng, mode: u8, alternator: &mut bool) -> bool {
    match mode {
        0 => true,
        1 => false,
        2 => {
            *alternator = !*alternator;
            *alternator
        }
        _ => rng.gen(),
    }
}

/// Memory-address picker over four adversarial classes.
fn pick_addr(
    rng: &mut StdRng,
    stride: u64,
    conflict_base: u64,
    conflict_rung: &mut u64,
    hot_base: u64,
) -> u64 {
    match rng.gen_range(0u32..100) {
        0..=39 => {
            let addr = conflict_base.wrapping_add(*conflict_rung * stride);
            *conflict_rung = (*conflict_rung + 1) % 64;
            addr
        }
        40..=69 => hot_base + rng.gen_range(0u64..512) * 8,
        70..=84 => SPILL_BASE + rng.gen_range(0..SPILL_SLOTS) * 8,
        _ => rng.gen(),
    }
}

/// Runs every differential check over one stream, returning the first
/// divergence. Check order is cheapest-first so shrinking re-evaluations
/// stay fast.
pub fn check_stream(ops: &[MicroOp], platform: &PlatformConfig) -> Option<Divergence> {
    codec_check(ops)
        .or_else(|| block_check(ops))
        .or_else(|| segment_check(ops))
        .or_else(|| cache_check(ops, platform))
        .or_else(|| regfile_check(ops, platform))
        .or_else(|| predictor_check(ops))
        .or_else(|| pipeline_check(ops, platform))
}

/// Packed round-trip vs. the raw stream, via both decode paths.
fn codec_check(ops: &[MicroOp]) -> Option<Divergence> {
    let mut stream = PackedStream::new();
    for op in ops {
        stream.push(op);
    }
    if stream.len() != ops.len() {
        return Some(Divergence::new(
            "codec",
            format!("encoded {} ops out of {}", stream.len(), ops.len()),
        ));
    }
    let mut mismatch = None;
    let mut i = 0usize;
    stream.for_each(|decoded| {
        if mismatch.is_none() && *decoded != ops[i] {
            mismatch = Some(Divergence::new(
                "codec",
                format!("op {i}: for_each decoded {decoded:?}, recorded {:?}", ops[i]),
            ));
        }
        i += 1;
    });
    if mismatch.is_some() {
        return mismatch;
    }
    for (i, (decoded, recorded)) in stream.iter().zip(ops).enumerate() {
        if decoded != *recorded {
            return Some(Divergence::new(
                "codec",
                format!("op {i}: iter decoded {decoded:?}, recorded {recorded:?}"),
            ));
        }
    }
    None
}

/// Block decoder vs. per-op decode through a [`RefTape`]. Block sizes 3
/// and 8 put several block edges inside even the shortest fuzz streams,
/// so the cross-block cursor carry (SSA counter, address, far-ref bases)
/// is exercised at every offset; the SoA filter columns are checked
/// against the decoded ops they were derived from.
fn block_check(ops: &[MicroOp]) -> Option<Divergence> {
    let mut stream = PackedStream::new();
    for op in ops {
        stream.push(op);
    }
    // Per-op reference: the iter() decode path feeding an encoding-free
    // RefTape (codec_check already pinned iter() against the raw ops).
    let program = Program::new();
    let mut reference = crate::tape::RefTape::new();
    for op in stream.iter() {
        reference.consume(&op, &program);
    }
    for block_ops in [3usize, 8] {
        let mut decoder = stream.block_decoder();
        let mut block = bioperf_trace::OpBlock::with_capacity(block_ops);
        let mut at = 0usize;
        while decoder.next_block(&mut block, block_ops) > 0 {
            let mut mem = 0usize;
            let mut branches = 0usize;
            for (j, op) in block.ops().iter().enumerate() {
                let i = at + j;
                if *op != reference.ops[i] {
                    return Some(Divergence::new(
                        "block",
                        format!(
                            "block_ops {block_ops} op {i}: block decoded {op:?}, per-op {:?}",
                            reference.ops[i]
                        ),
                    ));
                }
                if let Some(addr) = op.addr {
                    if block.mem_addrs().get(mem) != Some(&addr)
                        || block.mem_loads().get(mem) != Some(&op.kind.is_load())
                    {
                        return Some(Divergence::new(
                            "block",
                            format!("block_ops {block_ops} op {i}: memory column out of step"),
                        ));
                    }
                    mem += 1;
                }
                if op.kind.is_cond_branch() {
                    if block.branch_sids().get(branches) != Some(&op.sid)
                        || block.branch_taken().get(branches) != Some(&op.taken)
                    {
                        return Some(Divergence::new(
                            "block",
                            format!("block_ops {block_ops} op {i}: branch column out of step"),
                        ));
                    }
                    branches += 1;
                }
            }
            if mem != block.mem_addrs().len() || branches != block.branch_sids().len() {
                return Some(Divergence::new(
                    "block",
                    format!(
                        "block_ops {block_ops} at op {at}: columns hold {}/{} entries, ops imply {mem}/{branches}",
                        block.mem_addrs().len(),
                        block.branch_sids().len()
                    ),
                ));
            }
            at += block.len();
        }
        if at != ops.len() {
            return Some(Divergence::new(
                "block",
                format!("block_ops {block_ops}: decoded {at} ops out of {}", ops.len()),
            ));
        }
    }
    None
}

/// Segmented spill/replay round-trip vs. the raw stream. Segment sizes
/// 1 and 5 force splits at every position and mid-resync-gap, so the
/// per-segment header state (the SSA start counter) carries the whole
/// standalone-decode burden.
fn segment_check(ops: &[MicroOp]) -> Option<Divergence> {
    #[derive(Default)]
    struct Collect(Vec<MicroOp>);
    impl TraceConsumer for Collect {
        fn consume(&mut self, op: &MicroOp, _p: &Program) {
            self.0.push(*op);
        }
    }

    for segment_ops in [1usize, 5] {
        let mut spill = SpillRecorder::in_memory(segment_ops, usize::MAX);
        let program = Program::new();
        for op in ops {
            spill.consume(op, &program);
        }
        let segmented = match spill.into_segmented(program) {
            Ok(s) => s,
            Err(e) => {
                return Some(Divergence::new(
                    "segment",
                    format!("segment_ops {segment_ops}: spill failed: {e}"),
                ))
            }
        };
        let mut replayed = Collect::default();
        if let Err(e) = segmented.replay(&mut replayed) {
            return Some(Divergence::new(
                "segment",
                format!("segment_ops {segment_ops}: replay failed: {e}"),
            ));
        }
        if replayed.0.len() != ops.len() {
            return Some(Divergence::new(
                "segment",
                format!(
                    "segment_ops {segment_ops}: replayed {} ops out of {}",
                    replayed.0.len(),
                    ops.len()
                ),
            ));
        }
        for (i, (decoded, recorded)) in replayed.0.iter().zip(ops).enumerate() {
            if decoded != recorded {
                return Some(Divergence::new(
                    "segment",
                    format!(
                        "segment_ops {segment_ops} op {i}: streamed {decoded:?}, recorded {recorded:?}"
                    ),
                ));
            }
        }
    }
    None
}

/// Optimized hierarchy vs. [`RefHierarchy`], per-access and final stats.
fn cache_check(ops: &[MicroOp], platform: &PlatformConfig) -> Option<Divergence> {
    let mut optimized = platform.hierarchy();
    let mut reference = RefHierarchy::for_platform(platform);
    for (i, op) in ops.iter().enumerate() {
        let Some(addr) = op.addr else { continue };
        let kind = if op.kind.is_load() { AccessKind::Load } else { AccessKind::Store };
        let fast = optimized.access_detailed(addr, kind);
        let slow = reference.access_detailed(addr, kind);
        if fast != slow {
            return Some(Divergence::new(
                "cache",
                format!("op {i} addr {addr:#x} {kind:?}: optimized {fast:?}, reference {slow:?}"),
            ));
        }
    }
    (optimized.stats() != reference.stats()).then(|| {
        Divergence::new(
            "cache",
            format!("final stats: optimized {:?}, reference {:?}", optimized.stats(), reference.stats()),
        )
    })
}

/// Optimized O(1) register file vs. [`RefRegFile`] under the simulator's
/// touch-sources / insert-destination access pattern.
fn regfile_check(ops: &[MicroOp], platform: &PlatformConfig) -> Option<Divergence> {
    let mut optimized = RegFile::new(platform.logical_regs);
    let mut reference = RefRegFile::new(platform.logical_regs);
    for (i, op) in ops.iter().enumerate() {
        for src in op.sources() {
            let fast = optimized.touch(src.0);
            let slow = reference.touch(src.0);
            if fast != slow {
                return Some(Divergence::new(
                    "regfile",
                    format!("op {i} touch({}): optimized {fast}, reference {slow}", src.0),
                ));
            }
        }
        if let Some(dst) = op.dst {
            let fast = optimized.insert(dst.0);
            let slow = reference.insert(dst.0);
            if fast != slow {
                return Some(Divergence::new(
                    "regfile",
                    format!("op {i} insert({}): optimized {fast:?}, reference {slow:?}", dst.0),
                ));
            }
        }
    }
    (optimized.len() != reference.len()).then(|| {
        Divergence::new(
            "regfile",
            format!("residents: optimized {}, reference {}", optimized.len(), reference.len()),
        )
    })
}

/// Optimized per-branch profiler vs. [`RefPredictor`], per-branch
/// correctness and final totals.
fn predictor_check(ops: &[MicroOp]) -> Option<Divergence> {
    let mut optimized = BranchProfiler::new();
    let mut reference = RefPredictor::new();
    for (i, op) in ops.iter().enumerate() {
        if !op.kind.is_cond_branch() {
            continue;
        }
        let fast = optimized.observe(op.sid, op.taken);
        let slow = reference.observe(op.sid, op.taken);
        if fast != slow {
            return Some(Divergence::new(
                "predictor",
                format!(
                    "op {i} sid {} taken {}: optimized correct={fast}, reference correct={slow}",
                    op.sid.index(),
                    op.taken
                ),
            ));
        }
    }
    (optimized.total_executions() != reference.total_executions()
        || optimized.total_mispredictions() != reference.total_mispredictions())
    .then(|| {
        Divergence::new(
            "predictor",
            format!(
                "totals: optimized {}/{}, reference {}/{}",
                optimized.total_mispredictions(),
                optimized.total_executions(),
                reference.total_mispredictions(),
                reference.total_executions()
            ),
        )
    })
}

/// Full cycle simulation, optimized vs. [`RefPipeline`].
fn pipeline_check(ops: &[MicroOp], platform: &PlatformConfig) -> Option<Divergence> {
    let program = Program::new();
    let mut optimized = CycleSim::new(*platform);
    let mut reference = RefPipeline::new(*platform);
    for op in ops {
        optimized.consume(op, &program);
        reference.consume(op, &program);
    }
    let fast = optimized.result();
    let slow = reference.result();
    (fast != slow).then(|| {
        Divergence::new("pipeline", format!("optimized {fast:?}, reference {slow:?}"))
    })
}

/// Runs one fuzz case: derive the seed, generate, check, and — on
/// divergence — shrink to a minimal witness and re-derive its diagnosis.
pub fn run_case(base_seed: u64, index: u64) -> CaseOutcome {
    let seed = case_seed(base_seed, index);
    let platform = platform_for_case(index);
    let ops = generate_stream(seed);
    let generated = ops.len();
    let divergence = check_stream(&ops, &platform).map(|first| {
        let shrunk = proptest::shrink::minimize_removals(
            &ops,
            |candidate| check_stream(candidate, &platform).is_some(),
            SHRINK_BUDGET,
        );
        let on_shrunk = check_stream(&shrunk, &platform).unwrap_or(first);
        CounterExample { component: on_shrunk.component, detail: on_shrunk.detail, ops: shrunk }
    });
    CaseOutcome { index, seed, platform: platform.name, ops: generated, divergence }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        assert_eq!(generate_stream(7), generate_stream(7));
        assert_ne!(generate_stream(7), generate_stream(8));
    }

    #[test]
    fn streams_cover_the_adversarial_features() {
        // Over a few seeds the generator must exercise every feature the
        // checks depend on: memory ops, branches, gaps, far references.
        let mut mem = 0usize;
        let mut branches = 0usize;
        let mut gaps = 0usize;
        let mut prev_max: u64 = 0;
        for seed in 0..20u64 {
            let ops = generate_stream(seed);
            assert!((16..160).contains(&ops.len()));
            for op in &ops {
                if op.addr.is_some() {
                    mem += 1;
                }
                if op.kind.is_cond_branch() {
                    branches += 1;
                }
                if let Some(d) = op.dst {
                    if d.0 > prev_max.wrapping_add(1) {
                        gaps += 1;
                    }
                    prev_max = d.0;
                }
            }
            prev_max = 0;
        }
        assert!(mem > 100, "memory ops: {mem}");
        assert!(branches > 50, "branches: {branches}");
        assert!(gaps > 10, "counter gaps: {gaps}");
    }

    #[test]
    fn case_seeds_decorrelate() {
        let s: Vec<u64> = (0..16).map(|i| case_seed(1, i)).collect();
        let mut unique = s.clone();
        unique.sort_unstable();
        unique.dedup();
        assert_eq!(unique.len(), s.len());
    }

    #[test]
    fn clean_build_has_no_divergence_on_a_quick_sample() {
        crate::fault::disarm();
        for index in 0..24u64 {
            let outcome = run_case(42, index);
            assert!(
                outcome.divergence.is_none(),
                "case {index} (seed {}) diverged: {:?}",
                outcome.seed,
                outcome.divergence
            );
        }
    }
}
