//! Differential conformance harness for the simulator stack.
//!
//! PR 3 replaced the study's naive models with heavily optimized ones —
//! a 12-byte packed trace codec with SSA destination elision, an
//! intrusive O(1) register-file LRU, masked issue/ready rings in the
//! cycle simulator. Every paper number now rests on those fast paths
//! being *exactly* equivalent to the obvious implementations. This crate
//! makes that equivalence executable:
//!
//! * **Reference models** ([`RefRegFile`], [`RefCache`]/[`RefHierarchy`],
//!   [`RefPredictor`], [`RefPipeline`], [`RefTape`]) — deliberately
//!   naive, scan-everything implementations whose correctness is
//!   auditable by inspection. They trade all speed for obviousness.
//! * **A seeded fuzzer** ([`fuzz`]) — generates adversarial op streams
//!   biased toward the hard cases (SSA-counter resync around `lit()`
//!   gaps, set-conflict address patterns, register eviction storms,
//!   mispredict-flush interleavings), runs each through the optimized
//!   and reference implementations, and diffs per-op events and final
//!   results. Failing streams are shrunk to minimal witnesses via the
//!   proptest shim's removal-based minimizer.
//! * **A fault catalogue** ([`fault`]) — with the `inject` feature
//!   (default), ~8 seeded bugs can be armed one at a time in the
//!   optimized crates; mutation tests assert the fuzzer detects every
//!   one within a bounded case budget, proving the harness has teeth.
//!
//! The CLI front end lives in `bioperf_core::orchestrate::run_conform`
//! (`bioperf-loadchar conform`), which also cross-checks all nine real
//! program traces end-to-end.

pub mod cache;
pub mod fault;
pub mod fuzz;
pub mod pipeline;
pub mod predictor;
pub mod regfile;
pub mod tape;

pub use cache::{RefCache, RefHierarchy};
pub use fault::FaultId;
pub use fuzz::{CaseOutcome, CounterExample, Divergence};
pub use pipeline::RefPipeline;
pub use predictor::RefPredictor;
pub use regfile::RefRegFile;
pub use tape::RefTape;
