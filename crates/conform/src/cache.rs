//! Scan-everything reference cache and two-level hierarchy.
//!
//! [`RefCache`] works on raw block numbers with `%`/`/` arithmetic and a
//! linear scan per set — no shift/mask index math, no flat line array, no
//! preallocated ways. [`RefHierarchy`] chains two of them with the exact
//! demand-statistics and writeback ordering documented on
//! `bioperf_cache::Hierarchy`:
//!
//! 1. count the L1 access, probe L1;
//! 2. if the L1 fill evicted a dirty block, write it back into L2
//!    (a non-demand store) and count both levels' writebacks;
//! 3. L1 hit → done at L1 latency;
//! 4. count the L1 miss and the L2 access, probe L2 (same writeback
//!    handling), L2 hit → done at L1+L2 latency;
//! 5. count the L2 miss → memory latency.
//!
//! Both models must agree on every per-access `(ServicedBy, latency)`
//! pair *and* on the final [`HierarchyStats`], which pins hit/miss
//! classification, victim selection (true LRU), dirty tracking, and
//! writeback propagation.

use bioperf_cache::{AccessKind, CacheConfig, HierarchyStats, LatencyConfig, ServicedBy, WritePolicy};
use bioperf_pipe::PlatformConfig;

/// One resident block in a [`RefCache`] set.
#[derive(Debug, Clone, Copy)]
struct RefLine {
    /// Block number (`addr / block_bytes`).
    block: u64,
    dirty: bool,
    /// Access clock at last touch; the minimum stamp is the LRU victim.
    stamp: u64,
}

/// Outcome of one [`RefCache`] access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RefAccessResult {
    /// Whether the block was resident.
    pub hit: bool,
    /// Base address of a dirty block evicted by this access's fill.
    pub writeback: Option<u64>,
}

/// A naive set-associative true-LRU cache: one `Vec` of lines per set,
/// scanned in full on every access.
#[derive(Debug, Clone)]
pub struct RefCache {
    config: CacheConfig,
    sets: Vec<Vec<RefLine>>,
    clock: u64,
}

impl RefCache {
    /// An empty cache with the given geometry.
    pub fn new(config: CacheConfig) -> Self {
        Self { config, sets: vec![Vec::new(); config.num_sets() as usize], clock: 0 }
    }

    /// The cache's configuration.
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    /// Accesses `addr`; `is_store` selects the write path.
    pub fn access(&mut self, addr: u64, is_store: bool) -> RefAccessResult {
        self.clock += 1;
        let block = addr / self.config.block_bytes;
        let set = &mut self.sets[(block % self.config.num_sets()) as usize];

        if let Some(line) = set.iter_mut().find(|l| l.block == block) {
            line.stamp = self.clock;
            if is_store && self.config.write_policy == WritePolicy::WriteBackAllocate {
                line.dirty = true;
            }
            return RefAccessResult { hit: true, writeback: None };
        }

        // Miss. Write-through/no-allocate stores do not fill.
        if is_store && self.config.write_policy == WritePolicy::WriteThroughNoAllocate {
            return RefAccessResult { hit: false, writeback: None };
        }

        let fill = RefLine {
            block,
            dirty: is_store && self.config.write_policy == WritePolicy::WriteBackAllocate,
            stamp: self.clock,
        };
        if set.len() < self.config.ways as usize {
            set.push(fill);
            return RefAccessResult { hit: false, writeback: None };
        }
        // Evict the least recently used line (stamps are unique: every
        // access advances the clock, so the minimum is unambiguous).
        let victim_idx = set
            .iter()
            .enumerate()
            .min_by_key(|(_, l)| l.stamp)
            .map(|(i, _)| i)
            .expect("full set is non-empty");
        let victim = set[victim_idx];
        set[victim_idx] = fill;
        RefAccessResult {
            hit: false,
            writeback: victim.dirty.then_some(victim.block * self.config.block_bytes),
        }
    }

    /// Whether the block containing `addr` is resident (no state change).
    pub fn probe(&self, addr: u64) -> bool {
        let block = addr / self.config.block_bytes;
        self.sets[(block % self.config.num_sets()) as usize].iter().any(|l| l.block == block)
    }
}

/// Naive L1 + L2 + memory with the optimized hierarchy's exact demand
/// accounting (see the module docs for the access order it pins).
#[derive(Debug, Clone)]
pub struct RefHierarchy {
    l1: RefCache,
    l2: RefCache,
    latencies: LatencyConfig,
    stats: HierarchyStats,
}

impl RefHierarchy {
    /// Builds a hierarchy from per-level configurations.
    pub fn new(l1: CacheConfig, l2: CacheConfig, latencies: LatencyConfig) -> Self {
        Self {
            l1: RefCache::new(l1),
            l2: RefCache::new(l2),
            latencies,
            stats: HierarchyStats::default(),
        }
    }

    /// The reference twin of `PlatformConfig::hierarchy()`.
    pub fn for_platform(platform: &PlatformConfig) -> Self {
        Self::new(
            platform.l1,
            platform.l2,
            LatencyConfig {
                l1: platform.int_load_latency,
                l2: platform.l2_latency,
                memory: platform.memory_latency,
            },
        )
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &HierarchyStats {
        &self.stats
    }

    /// Performs a demand access and returns its total latency.
    pub fn access(&mut self, addr: u64, kind: AccessKind) -> u64 {
        self.access_detailed(addr, kind).1
    }

    /// Performs a demand access, returning the servicing level and the
    /// total latency in cycles.
    pub fn access_detailed(&mut self, addr: u64, kind: AccessKind) -> (ServicedBy, u64) {
        let is_store = kind == AccessKind::Store;
        match kind {
            AccessKind::Load => self.stats.l1.load_accesses += 1,
            AccessKind::Store => self.stats.l1.store_accesses += 1,
        }
        let r1 = self.l1.access(addr, is_store);
        if let Some(wb) = r1.writeback {
            self.stats.l1.writebacks += 1;
            let r2 = self.l2.access(wb, true);
            if r2.writeback.is_some() {
                self.stats.l2.writebacks += 1;
            }
        }
        if r1.hit {
            return (ServicedBy::L1, self.latencies.total(false, false));
        }
        match kind {
            AccessKind::Load => self.stats.l1.load_misses += 1,
            AccessKind::Store => self.stats.l1.store_misses += 1,
        }
        match kind {
            AccessKind::Load => self.stats.l2.load_accesses += 1,
            AccessKind::Store => self.stats.l2.store_accesses += 1,
        }
        let r2 = self.l2.access(addr, is_store);
        if r2.writeback.is_some() {
            self.stats.l2.writebacks += 1;
        }
        if r2.hit {
            return (ServicedBy::L2, self.latencies.total(true, false));
        }
        match kind {
            AccessKind::Load => self.stats.l2.load_misses += 1,
            AccessKind::Store => self.stats.l2.store_misses += 1,
        }
        (ServicedBy::Memory, self.latencies.total(true, true))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> RefCache {
        // 2 sets x 2 ways x 64 B blocks.
        RefCache::new(CacheConfig::new(256, 2, 64))
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut c = tiny();
        c.access(0x000, false);
        c.access(0x080, false);
        c.access(0x000, false); // refresh 0x000 so 0x080 is LRU
        c.access(0x100, false);
        assert!(c.probe(0x000));
        assert!(!c.probe(0x080));
        assert!(c.probe(0x100));
    }

    #[test]
    fn writeback_carries_the_victim_block_address() {
        let mut c = tiny();
        c.access(0x000, true);
        c.access(0x080, false);
        let r = c.access(0x100, false);
        assert_eq!(r, RefAccessResult { hit: false, writeback: Some(0x000) });
    }

    #[test]
    fn hierarchy_levels_service_in_depth_order() {
        let mut h = RefHierarchy::new(
            CacheConfig::new(256, 2, 64),
            CacheConfig::new(4096, 1, 64),
            LatencyConfig::alpha21264(),
        );
        assert_eq!(h.access_detailed(0x40, AccessKind::Load), (ServicedBy::Memory, 80));
        assert_eq!(h.access_detailed(0x40, AccessKind::Load), (ServicedBy::L1, 3));
        // Conflict 0x40 out of L1 set 1 (blocks 1, 3, 5 share it).
        h.access(0x0C0, AccessKind::Load);
        h.access(0x140, AccessKind::Load);
        assert_eq!(h.access_detailed(0x40, AccessKind::Load), (ServicedBy::L2, 8));
        assert_eq!(h.stats().l1.load_accesses, 5);
        assert_eq!(h.stats().l2.load_accesses, 4);
    }
}
