//! The scanned reference register file.
//!
//! This is the original `Vec`-scan move-to-front LRU that
//! `bioperf_pipe::RegFile` replaced with an intrusive linked list. LRU
//! order is a pure function of the access sequence, so the two must
//! agree on every `touch`/`insert` outcome — including which value each
//! eviction returns. This is the *only* copy of the oracle; the
//! equivalence tests in `tests/regfile_equivalence.rs` and the
//! conformance fuzzer both import it from here.

/// Scan-based LRU over virtual-register numbers: index 0 is the LRU
/// victim, the back is most recently used.
#[derive(Debug, Clone)]
pub struct RefRegFile {
    slots: Vec<u64>,
    capacity: usize,
}

impl RefRegFile {
    /// A file with the given number of logical registers; the capacity
    /// formula must match `RegFile::new` (a few registers are reserved
    /// for addressing, constants, and the stack/frame pointers).
    pub fn new(logical_regs: u32) -> Self {
        let capacity = (logical_regs.saturating_sub(2)).max(2) as usize;
        Self { slots: Vec::with_capacity(capacity), capacity }
    }

    /// Residents the file can hold before evicting.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Currently resident values.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Whether nothing is resident.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Touches `v`; returns `true` if it was resident (now MRU).
    pub fn touch(&mut self, v: u64) -> bool {
        if let Some(pos) = self.slots.iter().position(|&x| x == v) {
            let val = self.slots.remove(pos);
            self.slots.push(val);
            true
        } else {
            false
        }
    }

    /// Inserts `v` as MRU, returning the evicted LRU value if the file
    /// was full (`None` if `v` was already resident or there was room).
    pub fn insert(&mut self, v: u64) -> Option<u64> {
        if self.touch(v) {
            return None;
        }
        let evicted =
            if self.slots.len() == self.capacity { Some(self.slots.remove(0)) } else { None };
        self.slots.push(v);
        evicted
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lru_semantics() {
        let mut rf = RefRegFile::new(6); // capacity 4
        assert_eq!(rf.capacity(), 4);
        assert_eq!(rf.insert(1), None);
        assert_eq!(rf.insert(2), None);
        assert_eq!(rf.insert(3), None);
        assert_eq!(rf.insert(4), None);
        assert!(rf.touch(1)); // 1 becomes MRU
        assert_eq!(rf.insert(5), Some(2), "2 is now LRU");
        assert!(!rf.touch(2));
        assert!(rf.touch(1));
        assert!(!rf.is_empty());
        assert_eq!(rf.len(), 4);
    }
}
