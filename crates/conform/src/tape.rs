//! The unpacked reference recorder.
//!
//! `bioperf_trace::Recorder` stores ops in the 12-byte packed encoding
//! with SSA destination elision and delta-compressed sources. `RefTape`
//! is the encoding-free alternative: it just keeps every [`MicroOp`]
//! verbatim. Diffing a packed recording's decode against a `RefTape` of
//! the same stream is the codec conformance check.

use bioperf_isa::{MicroOp, Program};
use bioperf_trace::TraceConsumer;

/// Records a micro-op stream with no encoding at all.
#[derive(Debug, Clone, Default)]
pub struct RefTape {
    /// Every consumed op, in trace order.
    pub ops: Vec<MicroOp>,
}

impl RefTape {
    /// An empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of recorded ops.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }
}

impl TraceConsumer for RefTape {
    fn consume(&mut self, op: &MicroOp, _program: &Program) {
        self.ops.push(*op);
    }
}
