//! The catalogue of injectable faults (mutation testing for the fuzzer).
//!
//! A conformance harness is only trustworthy if it *would* catch the bug
//! classes it claims to cover. Each [`FaultId`] names one realistic,
//! subtle mutation compiled into an optimized crate behind that crate's
//! `conform-inject` cargo feature (this crate's default `inject` feature
//! turns them all on). [`arm`] activates exactly one process-wide;
//! [`disarm`] restores correct behavior. The mutation tests in
//! `tests/inject.rs` assert the fuzzer detects every catalogued fault
//! within its [`budget`](FaultId::budget) of cases, and the `conform
//! --inject <fault>` CLI mode does the same from the command line.
//!
//! Faults are armed through a per-crate atomic, so arming happens-before
//! any worker thread spawned afterwards; the orchestrator arms before
//! fanning out and disarms after joining.

use std::fmt;

/// One catalogued seeded bug in an optimized component.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultId {
    /// L1/L2 hits stop refreshing the line's LRU stamp, so replacement
    /// degrades toward FIFO.
    CacheLruTouch,
    /// Store-miss fills forget the dirty bit, so their eventual eviction
    /// emits no writeback.
    CacheDirtyWriteback,
    /// The packed encoder shortens near source deltas ≥ 2 by one,
    /// re-linking a source to a younger producer.
    PackedSrcDelta,
    /// The packed encoder advances its SSA counter by one on far
    /// destinations instead of resynchronizing to the written vreg.
    PackedSsaResync,
    /// The spill recorder writes a stale SSA start counter into segment
    /// headers, so non-first segments no longer decode standalone.
    SegmentStartCounter,
    /// The block decoder mis-carries the running SSA counter across a
    /// block edge, shifting every implicit destination decoded after the
    /// first non-initial block boundary.
    BlockBoundaryCarry,
    /// Mispredicted branches stop redirecting the front end (the flush
    /// is dropped), erasing the misprediction penalty.
    PipeDroppedFlush,
    /// The register file evicts the most recently used value instead of
    /// the least.
    RegfileEvictMru,
    /// Touching a resident register no longer moves it to MRU, so LRU
    /// order goes stale.
    RegfileTouchStale,
    /// The hybrid predictor's chooser stops training, freezing component
    /// selection at its cold state.
    BranchChooserStale,
    /// The design-space sweep's cell merge rotates each bank job's
    /// per-cell results by one, crediting every measurement to a
    /// neighboring grid cell. (The atomic lives in `bioperf-trace`
    /// because the perturbation site, `bioperf-core`, sits above this
    /// crate in the dependency graph.)
    SweepMergeOrder,
    /// The factored sweep's miss-level annotation cursor starts at 1
    /// instead of 0, so every annotated access reads its successor's
    /// level. (Atomic in `bioperf-trace` for the same dependency-graph
    /// reason; the perturbation site is `CycleSim::with_annotations` in
    /// `bioperf-pipe`.)
    FactoredAnnotationSkew,
}

impl FaultId {
    /// Every catalogued fault, in reporting order.
    pub const ALL: [FaultId; 12] = [
        FaultId::CacheLruTouch,
        FaultId::CacheDirtyWriteback,
        FaultId::PackedSrcDelta,
        FaultId::PackedSsaResync,
        FaultId::SegmentStartCounter,
        FaultId::BlockBoundaryCarry,
        FaultId::PipeDroppedFlush,
        FaultId::RegfileEvictMru,
        FaultId::RegfileTouchStale,
        FaultId::BranchChooserStale,
        FaultId::SweepMergeOrder,
        FaultId::FactoredAnnotationSkew,
    ];

    /// Stable CLI / report name.
    pub fn name(self) -> &'static str {
        match self {
            FaultId::CacheLruTouch => "cache-lru-touch",
            FaultId::CacheDirtyWriteback => "cache-dirty-writeback",
            FaultId::PackedSrcDelta => "packed-src-delta",
            FaultId::PackedSsaResync => "packed-ssa-resync",
            FaultId::SegmentStartCounter => "segment-start-counter",
            FaultId::BlockBoundaryCarry => "block-boundary-carry",
            FaultId::PipeDroppedFlush => "pipe-dropped-flush",
            FaultId::RegfileEvictMru => "regfile-evict-mru",
            FaultId::RegfileTouchStale => "regfile-touch-stale",
            FaultId::BranchChooserStale => "branch-chooser-stale",
            FaultId::SweepMergeOrder => "sweep-merge-order",
            FaultId::FactoredAnnotationSkew => "factored-annotation-skew",
        }
    }

    /// Inverse of [`name`](FaultId::name).
    pub fn parse(s: &str) -> Option<FaultId> {
        Self::ALL.into_iter().find(|f| f.name() == s)
    }

    /// One-line description for CLI listings.
    pub fn describe(self) -> &'static str {
        match self {
            FaultId::CacheLruTouch => "cache hits stop refreshing LRU order",
            FaultId::CacheDirtyWriteback => "store-miss fills lose the dirty bit",
            FaultId::PackedSrcDelta => "encoder shortens near source deltas by one",
            FaultId::PackedSsaResync => "encoder skips SSA counter resync on far dsts",
            FaultId::SegmentStartCounter => "segment headers record a stale SSA start counter",
            FaultId::BlockBoundaryCarry => "block decoder mis-carries the SSA counter across block edges",
            FaultId::PipeDroppedFlush => "mispredict redirects are dropped",
            FaultId::RegfileEvictMru => "register file evicts MRU instead of LRU",
            FaultId::RegfileTouchStale => "register touches stop updating LRU order",
            FaultId::BranchChooserStale => "hybrid chooser stops training",
            FaultId::SweepMergeOrder => "sweep cell merge rotates each bank's results by one",
            FaultId::FactoredAnnotationSkew => {
                "factored sweep's annotation cursor starts off by one"
            }
        }
    }

    /// Fuzz-case budget within which the harness must detect this fault
    /// (asserted by `tests/inject.rs`; measured detection indices are
    /// recorded in `EXPERIMENTS.md` and sit well under these bounds).
    pub fn budget(self) -> u64 {
        match self {
            // Codec faults corrupt almost any stream with sources/gaps.
            FaultId::PackedSrcDelta => 32,
            FaultId::PackedSsaResync => 32,
            // Any stream long enough for a second segment with a nonzero
            // start counter (segment_check splits at sizes 1 and 5).
            FaultId::SegmentStartCounter => 32,
            // Any stream spanning at least two decode blocks; the block
            // cross-check decodes at small block sizes so even short fuzz
            // streams have interior edges.
            FaultId::BlockBoundaryCarry => 32,
            // Mispredicts are frequent; the first redirect-worthy one
            // exposes the dropped flush.
            FaultId::PipeDroppedFlush => 128,
            // Needs a full set plus a hit-reordered eviction.
            FaultId::CacheLruTouch => 256,
            // Needs a store-miss fill that is later evicted.
            FaultId::CacheDirtyWriteback => 256,
            // Needs the register file at capacity (1 in 4 cases runs the
            // 8-register Pentium 4).
            FaultId::RegfileEvictMru => 256,
            FaultId::RegfileTouchStale => 256,
            // Needs a branch where the trained chooser would switch
            // components; patterned branch modes make these common.
            FaultId::BranchChooserStale => 1024,
            // Not detected by the op-level fuzzer at all: the sweep
            // self-check (one tiny multi-cell sweep diffed against
            // direct per-cell replays) fires deterministically on its
            // single run, so the budget only bounds the fuzz phase that
            // runs alongside it.
            FaultId::SweepMergeOrder => 16,
            // Like SweepMergeOrder: invisible to the op-level fuzzer
            // (its replays own live hierarchies). The sweep-factor
            // self-check runs a factored-vs-unfactored diff once and
            // fires deterministically; the budget bounds the fuzz phase.
            FaultId::FactoredAnnotationSkew => 16,
        }
    }
}

impl fmt::Display for FaultId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Whether the fault hooks were compiled in (the `inject` feature).
/// Without them, [`arm`] is a no-op and mutation mode cannot work.
pub fn injection_compiled() -> bool {
    cfg!(feature = "inject")
}

/// Arms exactly `fault`, disarming everything else first. Process-wide;
/// arm before spawning workers so the store happens-before their reads.
pub fn arm(fault: FaultId) {
    disarm();
    match fault {
        FaultId::CacheLruTouch => bioperf_cache::inject::set(bioperf_cache::inject::LRU_TOUCH),
        FaultId::CacheDirtyWriteback => {
            bioperf_cache::inject::set(bioperf_cache::inject::DIRTY_WRITEBACK)
        }
        FaultId::PackedSrcDelta => bioperf_trace::inject::set(bioperf_trace::inject::SRC_DELTA),
        FaultId::PackedSsaResync => bioperf_trace::inject::set(bioperf_trace::inject::SSA_RESYNC),
        FaultId::SegmentStartCounter => {
            bioperf_trace::inject::set(bioperf_trace::inject::SEG_COUNTER)
        }
        FaultId::BlockBoundaryCarry => {
            bioperf_trace::inject::set(bioperf_trace::inject::BLOCK_CARRY)
        }
        FaultId::PipeDroppedFlush => bioperf_pipe::inject::set(bioperf_pipe::inject::DROPPED_FLUSH),
        FaultId::RegfileEvictMru => {
            bioperf_pipe::inject::set(bioperf_pipe::inject::REGFILE_EVICT_MRU)
        }
        FaultId::RegfileTouchStale => {
            bioperf_pipe::inject::set(bioperf_pipe::inject::REGFILE_TOUCH_STALE)
        }
        FaultId::BranchChooserStale => {
            bioperf_branch::inject::set(bioperf_branch::inject::CHOOSER_STALE)
        }
        FaultId::SweepMergeOrder => bioperf_trace::inject::set(bioperf_trace::inject::SWEEP_MERGE),
        FaultId::FactoredAnnotationSkew => {
            bioperf_trace::inject::set(bioperf_trace::inject::ANN_SKEW)
        }
    }
}

/// Disarms every fault in every instrumented crate.
pub fn disarm() {
    bioperf_cache::inject::set(bioperf_cache::inject::NONE);
    bioperf_trace::inject::set(bioperf_trace::inject::NONE);
    bioperf_pipe::inject::set(bioperf_pipe::inject::NONE);
    bioperf_branch::inject::set(bioperf_branch::inject::NONE);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_round_trip_and_are_unique() {
        let mut seen = std::collections::HashSet::new();
        for f in FaultId::ALL {
            assert_eq!(FaultId::parse(f.name()), Some(f));
            assert!(seen.insert(f.name()), "duplicate name {f}");
            assert!(f.budget() > 0);
            assert!(!f.describe().is_empty());
        }
        assert_eq!(FaultId::parse("no-such-fault"), None);
    }
}
