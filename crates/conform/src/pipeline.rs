//! Straight-line reference re-implementation of the cycle simulator.
//!
//! `bioperf_pipe::CycleSim` earns its speed from preallocated masked
//! rings and an intrusive register-file LRU. [`RefPipeline`] recomputes
//! the same cycle accounting with `HashMap`s and `Vec::remove(0)`,
//! layered on the conformance crate's own reference models
//! ([`RefHierarchy`](crate::RefHierarchy), [`RefRegFile`],
//! [`RefPredictor`]) so no optimized component is in the loop.
//!
//! Two ring behaviors are part of the simulator's *documented contract*
//! and are therefore reproduced rather than "fixed":
//!
//! * slot aliasing — the issue and ready rings are `cycle & (size - 1)` /
//!   `vreg & (size - 1)` maps whose sizes (`2^12` issue, `2^16` ready)
//!   bound the span of simultaneously-live keys; a colliding key evicts
//!   the old entry in both models;
//! * the untouched-slot sentinel — a never-written ready slot reads as
//!   `(u64::MAX, 0)`, so `VReg(u64::MAX)` appears "ready at cycle 0"
//!   instead of unknown. The reference map reproduces this by defaulting
//!   absent entries to the same sentinel.

use std::collections::HashMap;

use bioperf_cache::AccessKind;
use bioperf_isa::{MicroOp, OpKind, Program, VReg};
use bioperf_pipe::{PlatformConfig, SimResult};
use bioperf_trace::TraceConsumer;

use crate::cache::RefHierarchy;
use crate::predictor::RefPredictor;
use crate::regfile::RefRegFile;

/// Ring sizes and the spill-slot region, pinned to the optimized
/// simulator's values (they are observable through slot aliasing and
/// spill addresses).
const ISSUE_RING: usize = 1 << 12;
const READY_RING: usize = 1 << 16;
const SPILL_BASE: u64 = 0x7fff_0000_0000;
const SPILL_SLOTS: u64 = 512;

/// Naive trace-driven cycle model of one platform.
#[derive(Debug, Clone)]
pub struct RefPipeline {
    cfg: PlatformConfig,
    hierarchy: RefHierarchy,
    predictor: RefPredictor,
    fp_load_extra: u64,

    fetch_cycle: u64,
    fetched_this_cycle: u32,
    /// Ring-index → `(cycle, ops issued that cycle)`.
    issue_slots: HashMap<usize, (u64, u32)>,
    /// Ring-index → `(vreg, ready cycle)`.
    ready_slots: HashMap<usize, (u64, u64)>,
    /// Ring-index → whether the resident value came from a load.
    from_load: HashMap<usize, bool>,
    rob: Vec<u64>,
    last_issue: u64,
    regs: RefRegFile,

    max_completion: u64,
    instructions: u64,
    branches: u64,
    mispredicts: u64,
    spill_stores: u64,
    spill_reloads: u64,
}

impl RefPipeline {
    /// Creates a reference simulator for one platform.
    pub fn new(cfg: PlatformConfig) -> Self {
        Self {
            hierarchy: RefHierarchy::for_platform(&cfg),
            predictor: RefPredictor::new(),
            fp_load_extra: cfg.fp_load_latency.saturating_sub(cfg.int_load_latency),
            fetch_cycle: 0,
            fetched_this_cycle: 0,
            issue_slots: HashMap::new(),
            ready_slots: HashMap::new(),
            from_load: HashMap::new(),
            rob: Vec::new(),
            last_issue: 0,
            regs: RefRegFile::new(cfg.logical_regs),
            max_completion: 0,
            instructions: 0,
            branches: 0,
            mispredicts: 0,
            spill_stores: 0,
            spill_reloads: 0,
            cfg,
        }
    }

    /// The simulation result so far.
    pub fn result(&self) -> SimResult {
        SimResult {
            cycles: self.max_completion.max(self.fetch_cycle),
            instructions: self.instructions,
            branches: self.branches,
            mispredicts: self.mispredicts,
            spill_stores: self.spill_stores,
            spill_reloads: self.spill_reloads,
            cache: *self.hierarchy.stats(),
        }
    }

    fn issue_at(&mut self, earliest: u64) -> u64 {
        let mut c = earliest;
        loop {
            let slot =
                self.issue_slots.entry((c as usize) & (ISSUE_RING - 1)).or_insert((u64::MAX, 0));
            if slot.0 != c {
                *slot = (c, 0);
            }
            if slot.1 < self.cfg.issue_width {
                slot.1 += 1;
                return c;
            }
            c += 1;
        }
    }

    fn ready_of(&self, v: VReg) -> Option<u64> {
        let slot = self
            .ready_slots
            .get(&((v.0 as usize) & (READY_RING - 1)))
            .copied()
            .unwrap_or((u64::MAX, 0));
        (slot.0 == v.0).then_some(slot.1)
    }

    fn set_ready(&mut self, v: VReg, cycle: u64) {
        self.ready_slots.insert((v.0 as usize) & (READY_RING - 1), (v.0, cycle));
    }

    fn is_from_load(&self, v: VReg) -> bool {
        self.from_load.get(&((v.0 as usize) & (READY_RING - 1))).copied().unwrap_or(false)
    }

    fn dispatch(&mut self) -> u64 {
        if self.fetched_this_cycle >= self.cfg.fetch_width {
            self.fetch_cycle += 1;
            self.fetched_this_cycle = 0;
        }
        if self.rob.len() >= self.cfg.rob_size {
            let head = self.rob.remove(0);
            if head > self.fetch_cycle {
                self.fetch_cycle = head;
                self.fetched_this_cycle = 0;
            }
        }
        self.fetched_this_cycle += 1;
        self.fetch_cycle
    }

    fn src_ready(&mut self, src: VReg, dispatch: u64) -> u64 {
        let Some(base) = self.ready_of(src) else {
            return 0;
        };
        if self.regs.touch(src.0) {
            return base;
        }
        self.spill_reloads += 1;
        self.fetched_this_cycle += 1;
        let (addr, extra) = if self.is_from_load(src) {
            (SPILL_BASE + (src.0 % SPILL_SLOTS) * 8, 0)
        } else {
            self.spill_stores += 1;
            let addr = SPILL_BASE + (src.0 % SPILL_SLOTS) * 8;
            self.hierarchy.access(addr, AccessKind::Store);
            self.issue_at(dispatch);
            (addr, self.cfg.spill_forward_extra)
        };
        let start = self.issue_at(dispatch.max(base));
        let lat = self.hierarchy.access(addr, AccessKind::Load) + extra;
        let ready = start + lat;
        self.set_ready(src, ready);
        self.regs.insert(src.0);
        ready
    }

    fn resolve_branch(&mut self, op: &MicroOp, resolve: u64) {
        self.branches += 1;
        let correct = self.predictor.observe(op.sid, op.taken);
        if !correct {
            self.mispredicts += 1;
            let redirect = resolve + self.cfg.mispredict_penalty;
            if redirect > self.fetch_cycle {
                self.fetch_cycle = redirect;
                self.fetched_this_cycle = 0;
            }
        }
    }
}

impl TraceConsumer for RefPipeline {
    fn consume(&mut self, op: &MicroOp, _program: &Program) {
        self.instructions += 1;
        let dispatch = self.dispatch();

        let mut operands = 0u64;
        for src in op.sources() {
            operands = operands.max(self.src_ready(src, dispatch));
        }
        let mut earliest = dispatch.max(operands);
        if self.cfg.in_order {
            earliest = earliest.max(self.last_issue);
        }
        let start = self.issue_at(earliest);
        if self.cfg.in_order {
            self.last_issue = start;
        }

        let completion = match op.kind {
            OpKind::IntLoad | OpKind::FpLoad => {
                let lat = self
                    .hierarchy
                    .access(op.addr.expect("loads carry addresses"), AccessKind::Load);
                let extra = if op.kind == OpKind::FpLoad { self.fp_load_extra } else { 0 };
                start + lat + extra
            }
            OpKind::IntStore | OpKind::FpStore => {
                self.hierarchy.access(op.addr.expect("stores carry addresses"), AccessKind::Store);
                start + 1
            }
            OpKind::CondBranch => {
                let resolve = start + 1;
                self.resolve_branch(op, resolve);
                resolve
            }
            OpKind::CondMove if !self.cfg.if_conversion => {
                let resolve = start + 1;
                self.resolve_branch(op, resolve);
                resolve
            }
            kind => start + self.cfg.op_latency(kind),
        };

        if let Some(dst) = op.dst {
            self.set_ready(dst, completion);
            self.from_load.insert((dst.0 as usize) & (READY_RING - 1), op.kind.is_load());
            self.regs.insert(dst.0);
        }
        self.rob.push(completion);
        if self.rob.len() > self.cfg.rob_size {
            self.rob.remove(0);
        }
        if completion > self.max_completion {
            self.max_completion = completion;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bioperf_isa::StaticId;

    fn sid(n: u32) -> StaticId {
        StaticId::from_raw(n)
    }

    #[test]
    fn dependent_alu_chain_serializes() {
        let program = Program::new();
        let mut sim = RefPipeline::new(PlatformConfig::alpha21264());
        for i in 0..100u64 {
            let src = (i > 0).then(|| VReg(i - 1));
            sim.consume(
                &MicroOp::compute(sid(0), OpKind::IntAlu, VReg(i), [src, None, None]),
                &program,
            );
        }
        let r = sim.result();
        assert_eq!(r.instructions, 100);
        assert!(r.cycles >= 99, "1-cycle chain must serialize: {}", r.cycles);
    }

    #[test]
    fn unknown_source_is_ready_immediately() {
        let program = Program::new();
        let mut sim = RefPipeline::new(PlatformConfig::alpha21264());
        // VReg(u64::MAX) aliases the untouched-sentinel slot: ready at 0.
        sim.consume(
            &MicroOp::compute(sid(0), OpKind::IntAlu, VReg(0), [Some(VReg(u64::MAX)), None, None]),
            &program,
        );
        assert_eq!(sim.result().instructions, 1);
    }
}
