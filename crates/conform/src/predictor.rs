//! Naive re-implementation of the per-branch profiling predictor.
//!
//! `bioperf_branch::BranchProfiler` lazily boxes one `Hybrid` per static
//! branch in a dense table. [`RefPredictor`] rebuilds the same semantics
//! from scratch — its own saturating counters, a plain `Vec` history
//! table indexed with `%`, and an association-list lookup of per-branch
//! state — so the two share no code. The contract both must satisfy, per
//! dynamic branch, in order:
//!
//! 1. predict with the chooser-selected component under the *current*
//!    global history;
//! 2. train the chooser toward the correct component, but only when the
//!    components disagree;
//! 3. train the bimodal counter and the history-indexed counter;
//! 4. shift the outcome into the shared global history register.

use bioperf_branch::BranchStats;
use bioperf_isa::{MicroOp, Program, StaticId};
use bioperf_trace::TraceConsumer;

/// A two-bit saturating counter (0 = strongly not-taken … 3 = strongly
/// taken), written out longhand.
#[derive(Debug, Clone, Copy)]
struct NaiveCounter(u8);

impl NaiveCounter {
    fn weakly_not_taken() -> Self {
        Self(1)
    }

    fn predict(self) -> bool {
        self.0 == 2 || self.0 == 3
    }

    fn train(&mut self, taken: bool) {
        if taken && self.0 < 3 {
            self.0 += 1;
        }
        if !taken && self.0 > 0 {
            self.0 -= 1;
        }
    }
}

/// One static branch's predictor: bimodal + history table + chooser.
#[derive(Debug, Clone)]
struct NaiveHybrid {
    bimodal: NaiveCounter,
    table: Vec<NaiveCounter>,
    chooser: NaiveCounter,
}

impl NaiveHybrid {
    fn new(history_bits: u32) -> Self {
        Self {
            bimodal: NaiveCounter::weakly_not_taken(),
            table: vec![NaiveCounter::weakly_not_taken(); 1usize << history_bits],
            chooser: NaiveCounter::weakly_not_taken(),
        }
    }

    fn index(&self, history: u64) -> usize {
        (history % self.table.len() as u64) as usize
    }

    fn predict(&self, history: u64) -> bool {
        if self.chooser.predict() {
            self.table[self.index(history)].predict()
        } else {
            self.bimodal.predict()
        }
    }

    fn update(&mut self, history: u64, taken: bool) {
        let bi = self.bimodal.predict();
        let hi = self.table[self.index(history)].predict();
        if bi != hi {
            self.chooser.train(hi == taken);
        }
        self.bimodal.train(taken);
        let idx = self.index(history);
        self.table[idx].train(taken);
    }
}

/// Naive per-static-branch profiler: an association list of hybrids plus
/// a shared global history register.
#[derive(Debug, Clone)]
pub struct RefPredictor {
    history_bits: u32,
    global_history: u64,
    /// `(static index, predictor, executions, mispredictions)` in first-
    /// seen order, looked up by linear scan.
    branches: Vec<(usize, NaiveHybrid, u64, u64)>,
}

impl Default for RefPredictor {
    fn default() -> Self {
        Self::new()
    }
}

impl RefPredictor {
    /// A profiler with the measurement default of 10 history bits
    /// (`BranchProfiler::DEFAULT_HISTORY_BITS`).
    pub fn new() -> Self {
        Self::with_history_bits(10)
    }

    /// A profiler with `2^bits`-entry per-branch history tables.
    pub fn with_history_bits(bits: u32) -> Self {
        Self { history_bits: bits, global_history: 0, branches: Vec::new() }
    }

    /// Observes one dynamic branch; returns whether the prediction was
    /// correct.
    pub fn observe(&mut self, sid: StaticId, taken: bool) -> bool {
        let idx = sid.index();
        let pos = match self.branches.iter().position(|(i, ..)| *i == idx) {
            Some(pos) => pos,
            None => {
                self.branches.push((idx, NaiveHybrid::new(self.history_bits), 0, 0));
                self.branches.len() - 1
            }
        };
        let entry = &mut self.branches[pos];
        let correct = entry.1.predict(self.global_history) == taken;
        entry.1.update(self.global_history, taken);
        self.global_history = (self.global_history << 1) | taken as u64;
        entry.2 += 1;
        if !correct {
            entry.3 += 1;
        }
        correct
    }

    /// Statistics for one static branch (zeros if never executed).
    pub fn stats(&self, sid: StaticId) -> BranchStats {
        self.branches
            .iter()
            .find(|(i, ..)| *i == sid.index())
            .map(|&(_, _, executions, mispredictions)| BranchStats { executions, mispredictions })
            .unwrap_or_default()
    }

    /// Total dynamic branches observed.
    pub fn total_executions(&self) -> u64 {
        self.branches.iter().map(|(_, _, e, _)| e).sum()
    }

    /// Total dynamic mispredictions observed.
    pub fn total_mispredictions(&self) -> u64 {
        self.branches.iter().map(|(_, _, _, m)| m).sum()
    }
}

impl TraceConsumer for RefPredictor {
    fn consume(&mut self, op: &MicroOp, _program: &Program) {
        if op.kind.is_cond_branch() {
            self.observe(op.sid, op.taken);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sid(n: u32) -> StaticId {
        StaticId::from_raw(n)
    }

    #[test]
    fn learns_a_biased_branch() {
        let mut p = RefPredictor::new();
        for _ in 0..100 {
            p.observe(sid(0), true);
        }
        let s = p.stats(sid(0));
        assert_eq!(s.executions, 100);
        assert!(s.mispredictions <= 2, "{} wrong on an always-taken branch", s.mispredictions);
    }

    #[test]
    fn branches_are_isolated() {
        let mut p = RefPredictor::new();
        for _ in 0..200 {
            p.observe(sid(3), true);
            p.observe(sid(9), false);
        }
        assert!(p.stats(sid(3)).mispredictions <= 2);
        assert!(p.stats(sid(9)).mispredictions <= 2);
        assert_eq!(p.total_executions(), 400);
        assert_eq!(p.stats(sid(7)), BranchStats::default());
    }
}
