//! Direct reference-vs-optimized checks that predate the fuzzer: a long
//! adversarial register-file sequence (moved here from the root
//! `tests/regfile_equivalence.rs`, which now also uses [`RefRegFile`] as
//! its oracle) and hierarchy agreement on a stride ladder.

use bioperf_cache::AccessKind;
use bioperf_conform::{RefHierarchy, RefRegFile};
use bioperf_pipe::{PlatformConfig, RegFile};

/// 50k mixed touch/insert steps over value distributions chosen to force
/// rapid eviction churn (small dense), far-flung values (sparse), and
/// recurring values (cyclic), at capacities from degenerate to large.
#[test]
fn optimized_regfile_matches_reference_on_adversarial_sequence() {
    for regs in [3u32, 6, 34, 128] {
        let mut fast = RegFile::new(regs);
        let mut slow = RefRegFile::new(regs);
        let mut state: u64 = 0x2545_F491_4F6C_DD1D;
        for step in 0..50_000u64 {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let v = match state >> 62 {
                0 => state % 16,
                1 => (state % 64) * 512,
                _ => step % 2048,
            };
            if state & 1 == 0 {
                assert_eq!(fast.touch(v), slow.touch(v), "regs={regs} step={step} touch({v})");
            } else {
                assert_eq!(fast.insert(v), slow.insert(v), "regs={regs} step={step} insert({v})");
            }
        }
        assert_eq!(fast.len(), slow.len(), "resident count at regs={regs}");
    }
}

/// Every platform's optimized hierarchy agrees with the reference on a
/// deterministic conflict ladder that spans L1 sets, L2 sets, and memory.
#[test]
fn optimized_hierarchy_matches_reference_on_conflict_ladder() {
    for platform in PlatformConfig::all() {
        let mut fast = platform.hierarchy();
        let mut slow = RefHierarchy::for_platform(&platform);
        let mut addr: u64 = 0x40;
        for step in 0..20_000u32 {
            let kind = if step % 3 == 0 { AccessKind::Store } else { AccessKind::Load };
            let a = fast.access_detailed(addr, kind);
            let b = slow.access_detailed(addr, kind);
            assert_eq!(a, b, "{} step {step} addr {addr:#x}", platform.name);
            // Walk a mixed-stride ladder: blocks, L1-set conflicts, and
            // an occasional fold back to the start.
            addr = match step % 7 {
                0..=2 => addr.wrapping_add(64),
                3 | 4 => addr.wrapping_add(32 * 1024),
                5 => addr.wrapping_add(4 << 20),
                _ => addr & 0xFFFF,
            };
        }
        assert_eq!(fast.stats(), slow.stats(), "{} final stats", platform.name);
    }
}
