//! Mutation tests: the fuzzer must detect every catalogued fault within
//! its per-fault case budget.
//!
//! All arming happens inside ONE `#[test]` because the injection hooks
//! are process-global atomics: were each fault its own test, the harness
//! would run them on concurrent threads and the armed faults would
//! perturb each other's (and any other test's) optimized components.

use bioperf_conform::fuzz::{check_stream, platform_for_case, run_case};
use bioperf_conform::{fault, FaultId};

#[test]
fn every_catalogued_fault_is_detected_within_its_budget() {
    assert!(
        fault::injection_compiled(),
        "tests require the conform crate's default `inject` feature"
    );

    for f in FaultId::ALL {
        // The sweep faults perturb code paths only the design-space
        // sweep in bioperf-core exercises, above the op-level fuzzer's
        // horizon — no micro-op stream can expose them. Their detectors
        // are the sweep self-checks run_conform performs (see
        // crates/core/tests/sweep_inject.rs and the CI mutation sweep).
        if f == FaultId::SweepMergeOrder || f == FaultId::FactoredAnnotationSkew {
            continue;
        }
        fault::arm(f);
        let mut detected = None;
        for index in 0..f.budget() {
            let outcome = run_case(1, index);
            if let Some(counterexample) = outcome.divergence {
                detected = Some((index, outcome.platform, counterexample));
                break;
            }
        }
        fault::disarm();

        let (index, platform, counterexample) = detected
            .unwrap_or_else(|| panic!("fault {f} escaped {} fuzz cases", f.budget()));

        // The shrunk witness must still fail (under the fault) and be
        // 1-minimal: removing any single op makes the divergence vanish.
        fault::arm(f);
        let cfg = platform_for_case(index);
        assert_eq!(cfg.name, platform);
        assert!(
            check_stream(&counterexample.ops, &cfg).is_some(),
            "fault {f}: shrunk witness of {} ops no longer diverges",
            counterexample.ops.len()
        );
        for skip in 0..counterexample.ops.len() {
            let mut shorter = counterexample.ops.clone();
            shorter.remove(skip);
            assert!(
                check_stream(&shorter, &cfg).is_none(),
                "fault {f}: witness is not 1-minimal (op {skip} of {} is removable)",
                counterexample.ops.len()
            );
        }
        fault::disarm();

        println!(
            "fault {f}: detected at case {index} on {platform} ({} in {}-op witness)",
            counterexample.component,
            counterexample.ops.len()
        );
    }

    // Disarmed again, the same seeds must be clean.
    for index in 0..8u64 {
        assert!(run_case(1, index).divergence.is_none(), "residual armed fault");
    }
}
