//! A sizable seeded fuzz run against the clean (unmutated) build must
//! report zero divergences on every platform.
//!
//! This is the same differential run `conform --cases N --seed S`
//! performs; 300 cases round-robin all four platforms 75 times each.

use bioperf_conform::fuzz::run_case;

#[test]
fn clean_build_survives_three_hundred_seeded_cases() {
    bioperf_conform::fault::disarm();
    for index in 0..300u64 {
        let outcome = run_case(42, index);
        assert!(
            outcome.divergence.is_none(),
            "case {index} (seed {:#x}, platform {}, {} ops) diverged: {:?}",
            outcome.seed,
            outcome.platform,
            outcome.ops,
            outcome.divergence
        );
    }
}

#[test]
fn cases_are_reproducible_from_their_seed() {
    bioperf_conform::fault::disarm();
    for index in [0u64, 17, 63] {
        let first = run_case(9, index);
        let second = run_case(9, index);
        assert_eq!(first.seed, second.seed);
        assert_eq!(first.platform, second.platform);
        assert_eq!(first.ops, second.ops);
        // Regenerating from the recorded seed yields the same stream.
        let ops = bioperf_conform::fuzz::generate_stream(first.seed);
        assert_eq!(ops.len(), first.ops);
    }
}
