//! Named metric collections and the hot-loop sink.

use crate::counter::{Counter, Gauge};
use crate::histogram::LogHistogram;
use crate::json::Json;

/// A named collection of counters, gauges, and histograms.
///
/// Lookup is a linear scan over small `Vec`s: a collection point touches
/// a handful of distinct names, and the scan beats hashing at that size
/// while keeping the crate dependency-free. Insertion order is the
/// arrival order of first writes; [`to_json_entries`](Self::to_json_entries)
/// sorts by name so emitted documents are deterministic no matter which
/// shard registered a metric first.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricSet {
    counters: Vec<(String, Counter)>,
    gauges: Vec<(String, Gauge)>,
    histograms: Vec<(String, LogHistogram)>,
}

fn slot<'a, T: Default>(entries: &'a mut Vec<(String, T)>, name: &str) -> &'a mut T {
    if let Some(i) = entries.iter().position(|(n, _)| n == name) {
        return &mut entries[i].1;
    }
    entries.push((name.to_string(), T::default()));
    &mut entries.last_mut().expect("just pushed").1
}

impl MetricSet {
    /// An empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    /// Adds `n` to the named counter (created at zero on first use).
    pub fn counter_add(&mut self, name: &str, n: u64) {
        slot(&mut self.counters, name).add(n);
    }

    /// Sets the named gauge.
    pub fn gauge_set(&mut self, name: &str, v: f64) {
        slot(&mut self.gauges, name).set(v);
    }

    /// Records a sample into the named histogram.
    pub fn histogram_record(&mut self, name: &str, sample: u64) {
        slot(&mut self.histograms, name).record(sample);
    }

    /// Folds a fully-formed histogram into the named slot (element-wise
    /// addition) — how hot loops that accumulate into a local
    /// [`LogHistogram`] publish it without paying a name lookup per
    /// sample.
    pub fn histogram_merge(&mut self, name: &str, h: &LogHistogram) {
        slot(&mut self.histograms, name).merge(h);
    }

    /// The named counter's total (`None` if never touched).
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters.iter().find(|(n, _)| n == name).map(|(_, c)| c.get())
    }

    /// The named gauge's value (`None` if never set).
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.iter().find(|(n, _)| n == name).map(|(_, g)| g.get())
    }

    /// The named histogram (`None` if never touched).
    pub fn histogram(&self, name: &str) -> Option<&LogHistogram> {
        self.histograms.iter().find(|(n, _)| n == name).map(|(_, h)| h)
    }

    /// Number of distinct metric names.
    pub fn len(&self) -> usize {
        self.counters.len() + self.gauges.len() + self.histograms.len()
    }

    /// Folds `other` into this set under each metric's own merge rule:
    /// counters add, gauges fill gaps, histograms add element-wise.
    pub fn merge(&mut self, other: &MetricSet) {
        self.merge_prefixed("", other);
    }

    /// [`merge`](Self::merge) with `prefix` prepended to every incoming
    /// name — how per-program and per-platform shards land in the suite
    /// set without colliding.
    pub fn merge_prefixed(&mut self, prefix: &str, other: &MetricSet) {
        for (name, c) in &other.counters {
            slot(&mut self.counters, &format!("{prefix}{name}")).merge(*c);
        }
        for (name, g) in &other.gauges {
            slot(&mut self.gauges, &format!("{prefix}{name}")).merge(*g);
        }
        for (name, h) in &other.histograms {
            slot(&mut self.histograms, &format!("{prefix}{name}")).merge(h);
        }
    }

    /// The set as `("counters" | "gauges" | "histograms", object)` JSON
    /// entries, every object sorted by metric name.
    pub fn to_json_entries(&self) -> Vec<(String, Json)> {
        fn sorted<T>(entries: &[(String, T)], f: impl Fn(&T) -> Json) -> Json {
            let mut pairs: Vec<(&String, &T)> = entries.iter().map(|(n, v)| (n, v)).collect();
            pairs.sort_by(|a, b| a.0.cmp(b.0));
            Json::Object(pairs.into_iter().map(|(n, v)| (n.clone(), f(v))).collect())
        }
        vec![
            ("counters".into(), sorted(&self.counters, |c: &Counter| Json::U64(c.get()))),
            ("gauges".into(), sorted(&self.gauges, |g: &Gauge| Json::F64(g.get()))),
            ("histograms".into(), sorted(&self.histograms, LogHistogram::to_json)),
        ]
    }

    /// The set as one JSON object (`{"counters": …, "gauges": …,
    /// "histograms": …}`).
    pub fn to_json(&self) -> Json {
        Json::Object(self.to_json_entries())
    }
}

/// Where a hot loop sends its events: nowhere, or into an owned
/// [`MetricSet`].
///
/// The recording methods are `#[inline]` and reduce to a single
/// discriminant branch in the [`Sink::Null`] state, so instrumented inner
/// loops (one `record`/`add` per simulated access) cost nothing
/// measurable when metrics are off — the zero-cost-when-off contract
/// documented in DESIGN.md. The boxed set keeps the null variant one
/// word, so carrying a sink does not bloat simulator structs.
#[derive(Debug, Clone, Default, PartialEq)]
pub enum Sink {
    /// Drop everything (the default).
    #[default]
    Null,
    /// Record into the owned set.
    Collect(Box<MetricSet>),
}

impl Sink {
    /// A discarding sink.
    pub fn null() -> Self {
        Sink::Null
    }

    /// A collecting sink with an empty set.
    pub fn collecting() -> Self {
        Sink::Collect(Box::default())
    }

    /// Whether events are being recorded.
    #[inline]
    pub fn enabled(&self) -> bool {
        matches!(self, Sink::Collect(_))
    }

    /// Counter increment (no-op when null).
    #[inline]
    pub fn add(&mut self, name: &str, n: u64) {
        if let Sink::Collect(m) = self {
            m.counter_add(name, n);
        }
    }

    /// Gauge write (no-op when null).
    #[inline]
    pub fn set(&mut self, name: &str, v: f64) {
        if let Sink::Collect(m) = self {
            m.gauge_set(name, v);
        }
    }

    /// Histogram sample (no-op when null).
    #[inline]
    pub fn record(&mut self, name: &str, sample: u64) {
        if let Sink::Collect(m) = self {
            m.histogram_record(name, sample);
        }
    }

    /// Takes the collected set (empty for a null sink), leaving the sink
    /// in its current mode with a fresh set.
    pub fn take(&mut self) -> MetricSet {
        match self {
            Sink::Null => MetricSet::new(),
            Sink::Collect(m) => std::mem::take(m.as_mut()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_reads_back() {
        let mut m = MetricSet::new();
        m.counter_add("hits", 2);
        m.counter_add("hits", 3);
        m.gauge_set("rate", 0.5);
        m.histogram_record("lat", 7);
        assert_eq!(m.counter("hits"), Some(5));
        assert_eq!(m.gauge("rate"), Some(0.5));
        assert_eq!(m.histogram("lat").map(|h| h.count()), Some(1));
        assert_eq!(m.counter("absent"), None);
        assert_eq!(m.len(), 3);
    }

    #[test]
    fn merge_prefixed_namespaces_names() {
        let mut shard = MetricSet::new();
        shard.counter_add("l1_hits", 10);
        let mut suite = MetricSet::new();
        suite.merge_prefixed("events/blast/", &shard);
        suite.merge_prefixed("events/blast/", &shard);
        assert_eq!(suite.counter("events/blast/l1_hits"), Some(20));
    }

    #[test]
    fn json_entries_sorted_by_name() {
        let mut m = MetricSet::new();
        m.counter_add("zebra", 1);
        m.counter_add("ant", 1);
        let json = m.to_json();
        assert_eq!(json.get("counters").expect("counters").keys(), vec!["ant", "zebra"]);
        assert_eq!(json.keys(), vec!["counters", "gauges", "histograms"]);
    }

    #[test]
    fn null_sink_drops_collecting_sink_keeps() {
        let mut null = Sink::null();
        null.add("x", 1);
        null.record("y", 1);
        assert!(!null.enabled());
        assert!(null.take().is_empty());

        let mut sink = Sink::collecting();
        sink.add("x", 1);
        sink.set("g", 2.0);
        assert!(sink.enabled());
        let taken = sink.take();
        assert_eq!(taken.counter("x"), Some(1));
        assert!(sink.enabled(), "take leaves the sink collecting");
        assert!(sink.take().is_empty());
    }
}
