//! Observability for the BioPerf reproduction pipeline.
//!
//! The paper's argument is metric-driven — load mixes, miss rates,
//! sequence fractions, AMAT, speedups — so every experiment in this
//! workspace emits a machine-readable metric snapshot alongside its text
//! tables. This crate is the shared substrate:
//!
//! * [`counter`] — monotonic [`Counter`]s and last-write [`Gauge`]s,
//! * [`histogram`] — the mergeable log-scale [`LogHistogram`],
//! * [`set`] — the named [`MetricSet`] and the hot-loop [`Sink`] with its
//!   zero-cost-when-off [`Sink::Null`] fast path,
//! * [`timer`] — scoped wall-clock [`Timings`] spans (per program ×
//!   phase),
//! * [`json`] — a dependency-free, escape-correct, deterministic [`Json`]
//!   emitter plus a minimal parser for tests and CI schema checks.
//!
//! The environment has no crates.io access, hence no `serde`; [`json`] is
//! deliberately self-contained.
//!
//! # Determinism contract
//!
//! Counters and histograms fed from the (deterministic) simulators, and
//! gauges derived from their results, are bit-identical across runs and
//! worker counts; [`MetricSet::to_json`] sorts names, so the emitted
//! bytes are too. Wall-clock [`Timings`] are not deterministic and are
//! emitted in a separate `run` section by the suite orchestrator.
//!
//! # Example
//!
//! ```
//! use bioperf_metrics::{MetricSet, Sink};
//!
//! let mut sink = Sink::collecting();
//! sink.add("l1_hits", 3);
//! sink.record("latency_cycles", 72);
//!
//! let mut suite = MetricSet::new();
//! suite.merge_prefixed("events/blast/cache/", &sink.take());
//! assert_eq!(suite.counter("events/blast/cache/l1_hits"), Some(3));
//! let text = suite.to_json().render();
//! assert!(text.contains("\"events/blast/cache/l1_hits\":3"));
//! ```

pub mod counter;
pub mod histogram;
pub mod json;
pub mod set;
pub mod timer;

pub use counter::{Counter, Gauge};
pub use histogram::LogHistogram;
pub use json::Json;
pub use set::{MetricSet, Sink};
pub use timer::{SpanStats, Timings};
