//! Scoped wall-clock span timers.
//!
//! Spans measure the pipeline's phases (per program × phase: trace,
//! characterize, replay, …). Durations are wall-clock and therefore
//! **non-deterministic**: they belong in the `run` section of emitted
//! documents, never in the deterministic section that byte-identical
//! comparisons run against.

use std::time::{Duration, Instant};

use crate::json::Json;

/// Aggregated timings for one span name.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SpanStats {
    /// Completed spans.
    pub count: u64,
    /// Total wall-clock nanoseconds across them.
    pub total_ns: u64,
    /// Longest single span in nanoseconds.
    pub max_ns: u64,
}

impl SpanStats {
    fn record(&mut self, d: Duration) {
        let ns = u64::try_from(d.as_nanos()).unwrap_or(u64::MAX);
        self.count += 1;
        self.total_ns = self.total_ns.saturating_add(ns);
        self.max_ns = self.max_ns.max(ns);
    }

    fn merge(&mut self, other: &SpanStats) {
        self.count += other.count;
        self.total_ns = self.total_ns.saturating_add(other.total_ns);
        self.max_ns = self.max_ns.max(other.max_ns);
    }
}

/// Named span timings, mergeable across parallel jobs.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Timings {
    spans: Vec<(String, SpanStats)>,
}

impl Timings {
    /// An empty timing set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Whether any span completed.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }

    /// Times `f` under `name`.
    pub fn time<T>(&mut self, name: &str, f: impl FnOnce() -> T) -> T {
        let start = Instant::now();
        let out = f();
        self.record(name, start.elapsed());
        out
    }

    /// Records an already-measured duration under `name`.
    pub fn record(&mut self, name: &str, d: Duration) {
        let stats = match self.spans.iter().position(|(n, _)| n == name) {
            Some(i) => &mut self.spans[i].1,
            None => {
                self.spans.push((name.to_string(), SpanStats::default()));
                &mut self.spans.last_mut().expect("just pushed").1
            }
        };
        stats.record(d);
    }

    /// Stats for one span name.
    pub fn span(&self, name: &str) -> Option<SpanStats> {
        self.spans.iter().find(|(n, _)| n == name).map(|(_, s)| *s)
    }

    /// Folds another timing set into this one.
    pub fn merge(&mut self, other: &Timings) {
        for (name, stats) in &other.spans {
            match self.spans.iter().position(|(n, _)| n == name) {
                Some(i) => self.spans[i].1.merge(stats),
                None => self.spans.push((name.clone(), *stats)),
            }
        }
    }

    /// JSON object keyed by span name (sorted), each value carrying
    /// `count` / `total_ns` / `max_ns`.
    pub fn to_json(&self) -> Json {
        let mut pairs: Vec<&(String, SpanStats)> = self.spans.iter().collect();
        pairs.sort_by(|a, b| a.0.cmp(&b.0));
        Json::Object(
            pairs
                .into_iter()
                .map(|(name, s)| {
                    (
                        name.clone(),
                        Json::object(vec![
                            ("count", Json::U64(s.count)),
                            ("total_ns", Json::U64(s.total_ns)),
                            ("max_ns", Json::U64(s.max_ns)),
                        ]),
                    )
                })
                .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_returns_the_closure_value_and_records() {
        let mut t = Timings::new();
        let v = t.time("work", || 41 + 1);
        assert_eq!(v, 42);
        let s = t.span("work").expect("recorded");
        assert_eq!(s.count, 1);
        assert_eq!(s.max_ns, s.total_ns);
    }

    #[test]
    fn merge_aggregates_by_name() {
        let mut a = Timings::new();
        a.record("x", Duration::from_nanos(10));
        let mut b = Timings::new();
        b.record("x", Duration::from_nanos(30));
        b.record("y", Duration::from_nanos(5));
        a.merge(&b);
        let x = a.span("x").expect("x");
        assert_eq!(x.count, 2);
        assert_eq!(x.total_ns, 40);
        assert_eq!(x.max_ns, 30);
        assert!(a.span("y").is_some());
    }

    #[test]
    fn json_is_sorted() {
        let mut t = Timings::new();
        t.record("b", Duration::from_nanos(1));
        t.record("a", Duration::from_nanos(1));
        assert_eq!(t.to_json().keys(), vec!["a", "b"]);
    }
}
