//! A hand-rolled JSON value, emitter, and minimal parser.
//!
//! The build environment has no crates.io access, so there is no `serde`;
//! this module is the workspace's machine-readable output format. Two
//! properties matter more than generality:
//!
//! * **Determinism.** Objects preserve insertion order and the emitter
//!   has exactly one rendering per value (floats render through Rust's
//!   shortest-round-trip `{:?}`, integers through `{}`), so equal values
//!   always produce byte-identical text.
//! * **Escape correctness.** Strings escape `"`, `\`, and every control
//!   character below `0x20` (named escapes where JSON has them, `\u00XX`
//!   otherwise); everything else passes through as UTF-8.
//!
//! The parser ([`parse`]) is deliberately minimal — it exists so tests
//! and CI checks can round-trip and inspect emitted documents without an
//! external dependency, not as a general-purpose JSON reader. It accepts
//! exactly the constructs the emitter produces plus insignificant
//! whitespace.

use std::fmt::Write as _;

/// A JSON value with order-preserving objects.
///
/// Unsigned and floating-point numbers are distinct variants so that
/// `u64` counters survive a round-trip exactly: the emitter writes
/// floats with a fractional part or exponent (`1.0`, not `1`), and the
/// parser maps fraction-free integers back to [`Json::U64`].
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A non-negative integer (counters, counts, cycle totals).
    U64(u64),
    /// A double (rates, means, speedups). Non-finite values emit `null`.
    F64(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Json>),
    /// An object; key order is insertion order and is preserved verbatim
    /// by the emitter.
    Object(Vec<(String, Json)>),
}

impl Json {
    /// Convenience string constructor.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Builds an object from `(key, value)` pairs, preserving order.
    pub fn object(entries: Vec<(impl Into<String>, Json)>) -> Json {
        Json::Object(entries.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// Looks up a key in an object; `None` for missing keys and
    /// non-objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The object's keys in insertion order (empty for non-objects).
    pub fn keys(&self) -> Vec<&str> {
        match self {
            Json::Object(entries) => entries.iter().map(|(k, _)| k.as_str()).collect(),
            _ => Vec::new(),
        }
    }

    /// The value as `u64`, if it is one.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::U64(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as `f64` (floats only; integers keep their own type).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::F64(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as `&str`, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s.as_str()),
            _ => None,
        }
    }

    /// Compact single-line rendering.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Pretty rendering: two-space indentation, one entry per line, and a
    /// trailing newline — the format of every committed `.json` artifact.
    pub fn render_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::U64(v) => {
                let _ = write!(out, "{v}");
            }
            Json::F64(v) => {
                if v.is_finite() {
                    // `{:?}` keeps a fractional part or exponent ("1.0",
                    // "1e300"), so floats never collide with integers.
                    let _ = write!(out, "{v:?}");
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Array(items) => {
                write_seq(out, indent, depth, '[', ']', items.len(), |out, i, d| {
                    items[i].write(out, indent, d);
                });
            }
            Json::Object(entries) => {
                write_seq(out, indent, depth, '{', '}', entries.len(), |out, i, d| {
                    let (k, v) = &entries[i];
                    write_escaped(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, indent, d);
                });
            }
        }
    }
}

/// Shared array/object layout: compact when `indent` is `None`, one
/// element per line otherwise.
fn write_seq(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    open: char,
    close: char,
    len: usize,
    mut item: impl FnMut(&mut String, usize, usize),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(step) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(step * (depth + 1)));
        }
        item(out, i, depth + 1);
    }
    if let Some(step) = indent {
        out.push('\n');
        out.push_str(&" ".repeat(step * depth));
    }
    out.push(close);
}

/// Writes `s` as a JSON string literal with full escaping.
fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{8}' => out.push_str("\\b"),
            '\u{c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parses a JSON document produced by this module's emitter.
///
/// Minimal by design (see the module docs): strict on structure, accepts
/// spaces/tabs/newlines between tokens, rejects trailing garbage.
pub fn parse(text: &str) -> Result<Json, String> {
    let bytes = text.as_bytes();
    let mut pos = 0;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, b: u8) -> Result<(), String> {
    if bytes.get(*pos) == Some(&b) {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected '{}' at byte {}", b as char, *pos))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'n') => parse_lit(bytes, pos, "null", Json::Null),
        Some(b't') => parse_lit(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(bytes, pos, "false", Json::Bool(false)),
        Some(b'"') => parse_string(bytes, pos).map(Json::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Array(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Array(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {}", *pos)),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut entries = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Object(entries));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                expect(bytes, pos, b':')?;
                let value = parse_value(bytes, pos)?;
                entries.push((key, value));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Object(entries));
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {}", *pos)),
                }
            }
        }
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_lit(bytes: &[u8], pos: &mut usize, lit: &str, value: Json) -> Result<Json, String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("bad literal at byte {}", *pos))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let mut fractional = false;
    while let Some(&b) = bytes.get(*pos) {
        match b {
            b'0'..=b'9' => *pos += 1,
            b'.' | b'e' | b'E' | b'+' | b'-' => {
                fractional = true;
                *pos += 1;
            }
            _ => break,
        }
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).expect("ascii number");
    if text.is_empty() || text == "-" {
        return Err(format!("expected a value at byte {start}"));
    }
    if !fractional {
        if let Ok(v) = text.parse::<u64>() {
            return Ok(Json::U64(v));
        }
    }
    text.parse::<f64>().map(Json::F64).map_err(|e| format!("bad number '{text}': {e}"))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hi = parse_hex4(bytes, pos)?;
                        // Surrogate pairs: the emitter never produces
                        // them (it writes raw UTF-8), but accept them so
                        // foreign documents don't silently corrupt.
                        let code = if (0xD800..0xDC00).contains(&hi) {
                            if bytes.get(*pos + 1) == Some(&b'\\')
                                && bytes.get(*pos + 2) == Some(&b'u')
                            {
                                *pos += 2;
                                let lo = parse_hex4(bytes, pos)?;
                                0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                            } else {
                                return Err("lone high surrogate".into());
                            }
                        } else {
                            hi
                        };
                        out.push(
                            char::from_u32(code).ok_or_else(|| "bad \\u escape".to_string())?,
                        );
                    }
                    _ => return Err(format!("bad escape at byte {}", *pos)),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (the input is a &str, so the
                // byte stream is valid UTF-8 by construction).
                let rest = std::str::from_utf8(&bytes[*pos..]).expect("valid utf-8 input");
                let c = rest.chars().next().expect("non-empty");
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

/// Parses the four hex digits after `\u`; `pos` is left on the last one.
fn parse_hex4(bytes: &[u8], pos: &mut usize) -> Result<u32, String> {
    let start = *pos + 1;
    let end = start + 4;
    if end > bytes.len() {
        return Err("truncated \\u escape".into());
    }
    let text = std::str::from_utf8(&bytes[start..end]).map_err(|_| "bad \\u escape")?;
    let v = u32::from_str_radix(text, 16).map_err(|_| "bad \\u escape")?;
    *pos = end - 1;
    Ok(v)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_scalars() {
        assert_eq!(Json::Null.render(), "null");
        assert_eq!(Json::Bool(true).render(), "true");
        assert_eq!(Json::U64(42).render(), "42");
        assert_eq!(Json::F64(1.0).render(), "1.0");
        assert_eq!(Json::F64(f64::NAN).render(), "null");
        assert_eq!(Json::str("hi").render(), "\"hi\"");
    }

    #[test]
    fn object_preserves_insertion_order() {
        let j = Json::object(vec![("z", Json::U64(1)), ("a", Json::U64(2))]);
        assert_eq!(j.render(), "{\"z\":1,\"a\":2}");
        assert_eq!(j.keys(), vec!["z", "a"]);
    }

    #[test]
    fn pretty_rendering_is_stable() {
        let j = Json::object(vec![("a", Json::Array(vec![Json::U64(1), Json::U64(2)]))]);
        assert_eq!(j.render_pretty(), "{\n  \"a\": [\n    1,\n    2\n  ]\n}\n");
    }

    #[test]
    fn parse_rejects_trailing_garbage() {
        assert!(parse("1 2").is_err());
        assert!(parse("{").is_err());
        assert!(parse("").is_err());
    }
}
