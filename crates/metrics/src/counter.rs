//! Monotonic counters and last-write gauges.

/// A monotonically increasing event counter.
///
/// Merging two counters adds their totals, so counters accumulated in
/// parallel shards combine into exactly the sequential total regardless
/// of merge order or grouping (the property tests pin this down).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Counter(u64);

impl Counter {
    /// A zeroed counter.
    pub fn new() -> Self {
        Self(0)
    }

    /// Adds `n` events (saturating; a counter never wraps backwards).
    #[inline]
    pub fn add(&mut self, n: u64) {
        self.0 = self.0.saturating_add(n);
    }

    /// The accumulated total.
    #[inline]
    pub fn get(self) -> u64 {
        self.0
    }

    /// Folds another counter's events into this one.
    pub fn merge(&mut self, other: Counter) {
        self.add(other.0);
    }
}

/// A point-in-time measurement: the last value written wins.
///
/// Gauges record *derived* quantities (rates, means, ratios) that are
/// recomputed rather than accumulated, so merging keeps the other shard's
/// value only if this one was never set — suite-level code sets each
/// gauge exactly once, making merge order immaterial in practice.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Gauge(Option<f64>);

impl Gauge {
    /// An unset gauge.
    pub fn new() -> Self {
        Self(None)
    }

    /// Sets the current value.
    #[inline]
    pub fn set(&mut self, v: f64) {
        self.0 = Some(v);
    }

    /// The current value (`0.0` if never set).
    #[inline]
    pub fn get(self) -> f64 {
        self.0.unwrap_or(0.0)
    }

    /// Whether the gauge was ever set.
    pub fn is_set(self) -> bool {
        self.0.is_some()
    }

    /// Takes the other gauge's value if this one is unset.
    pub fn merge(&mut self, other: Gauge) {
        if self.0.is_none() {
            self.0 = other.0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_accumulates_and_saturates() {
        let mut c = Counter::new();
        c.add(3);
        c.add(4);
        assert_eq!(c.get(), 7);
        c.add(u64::MAX);
        assert_eq!(c.get(), u64::MAX);
    }

    #[test]
    fn gauge_last_write_wins_and_merge_fills_gaps() {
        let mut g = Gauge::new();
        assert!(!g.is_set());
        g.set(1.5);
        g.set(2.5);
        assert_eq!(g.get(), 2.5);
        let mut unset = Gauge::new();
        unset.merge(g);
        assert_eq!(unset.get(), 2.5);
        let mut set = Gauge::new();
        set.set(9.0);
        set.merge(g);
        assert_eq!(set.get(), 9.0);
    }
}
