//! A mergeable log-scale histogram over `u64` samples.

use crate::json::Json;

/// Bucket count: one zero bucket plus one per power of two up to 2⁶³.
const BUCKETS: usize = 65;

/// A base-2 log-scale histogram.
///
/// Bucket `0` holds the sample `0`; bucket `i ≥ 1` holds samples in
/// `[2^(i-1), 2^i)`. Cache latencies, cycle counts, and queue depths span
/// orders of magnitude, so exponential buckets give useful shape at a
/// fixed 65-slot footprint — and because buckets are positional,
/// [`merge`](LogHistogram::merge) is plain element-wise addition:
/// commutative, associative, and count-preserving (the property tests
/// exercise all three).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LogHistogram {
    buckets: [u64; BUCKETS],
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for LogHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LogHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self { buckets: [0; BUCKETS], count: 0, sum: 0, min: u64::MAX, max: 0 }
    }

    /// The bucket index a sample falls into.
    #[inline]
    pub fn bucket_of(sample: u64) -> usize {
        match sample {
            0 => 0,
            s => 1 + s.ilog2() as usize,
        }
    }

    /// Records one sample.
    #[inline]
    pub fn record(&mut self, sample: u64) {
        self.buckets[Self::bucket_of(sample)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(sample);
        self.min = self.min.min(sample);
        self.max = self.max.max(sample);
    }

    /// Total recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest recorded sample (`None` when empty).
    pub fn min(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest recorded sample (`None` when empty).
    pub fn max(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max)
    }

    /// Mean sample value (`0.0` when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Count in one bucket.
    pub fn bucket(&self, i: usize) -> u64 {
        self.buckets.get(i).copied().unwrap_or(0)
    }

    /// Folds another histogram into this one (element-wise addition).
    pub fn merge(&mut self, other: &LogHistogram) {
        for (b, o) in self.buckets.iter_mut().zip(&other.buckets) {
            *b += o;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// JSON form: summary fields plus the non-empty buckets as
    /// `[bucket_index, count]` pairs (sparse, deterministic order).
    pub fn to_json(&self) -> Json {
        let buckets: Vec<Json> = self
            .buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| Json::Array(vec![Json::U64(i as u64), Json::U64(c)]))
            .collect();
        Json::object(vec![
            ("count", Json::U64(self.count)),
            ("sum", Json::U64(self.sum)),
            ("min", Json::U64(self.min().unwrap_or(0))),
            ("max", Json::U64(self.max)),
            ("buckets", Json::Array(buckets)),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries() {
        assert_eq!(LogHistogram::bucket_of(0), 0);
        assert_eq!(LogHistogram::bucket_of(1), 1);
        assert_eq!(LogHistogram::bucket_of(2), 2);
        assert_eq!(LogHistogram::bucket_of(3), 2);
        assert_eq!(LogHistogram::bucket_of(4), 3);
        assert_eq!(LogHistogram::bucket_of(u64::MAX), 64);
    }

    #[test]
    fn record_updates_summary() {
        let mut h = LogHistogram::new();
        assert_eq!(h.min(), None);
        h.record(3);
        h.record(100);
        h.record(0);
        assert_eq!(h.count(), 3);
        assert_eq!(h.sum(), 103);
        assert_eq!(h.min(), Some(0));
        assert_eq!(h.max(), Some(100));
        assert_eq!(h.bucket(0), 1);
        assert_eq!(h.bucket(2), 1);
        assert_eq!(h.bucket(7), 1); // 100 ∈ [64, 128)
    }

    #[test]
    fn merge_is_elementwise() {
        let mut a = LogHistogram::new();
        a.record(1);
        let mut b = LogHistogram::new();
        b.record(1);
        b.record(9);
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.bucket(1), 2);
        assert_eq!(a.max(), Some(9));
    }
}
