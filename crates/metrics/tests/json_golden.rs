//! Golden tests for the JSON emitter: exact expected bytes for escaping
//! and key order, and round-trips through the minimal parser.

use bioperf_metrics::json::{parse, Json};
use bioperf_metrics::MetricSet;

#[test]
fn escapes_quotes_backslashes_and_control_characters() {
    let cases: [(&str, &str); 6] = [
        ("plain", "\"plain\""),
        ("say \"hi\"", "\"say \\\"hi\\\"\""),
        ("back\\slash", "\"back\\\\slash\""),
        ("tab\there\nnewline\rcr", "\"tab\\there\\nnewline\\rcr\""),
        ("bell\u{7}bs\u{8}ff\u{c}esc\u{1b}", "\"bell\\u0007bs\\bff\\fesc\\u001b\""),
        ("unicode é ∆ 🧬", "\"unicode é ∆ 🧬\""),
    ];
    for (input, expected) in cases {
        assert_eq!(Json::str(input).render(), expected, "input {input:?}");
    }
}

#[test]
fn every_control_character_round_trips() {
    for code in 0u32..0x20 {
        let c = char::from_u32(code).expect("control char");
        let original = Json::str(format!("a{c}b"));
        let text = original.render();
        assert_eq!(parse(&text).expect("parses"), original, "control char {code:#x}");
    }
}

#[test]
fn key_order_is_insertion_order_and_deterministic() {
    let build = || {
        Json::object(vec![
            ("zeta", Json::U64(1)),
            ("alpha", Json::U64(2)),
            ("mid", Json::object(vec![("b", Json::Null), ("a", Json::Bool(false))])),
        ])
    };
    let expected = "{\"zeta\":1,\"alpha\":2,\"mid\":{\"b\":null,\"a\":false}}";
    assert_eq!(build().render(), expected);
    // Two identical constructions emit identical bytes, compact and pretty.
    assert_eq!(build().render(), build().render());
    assert_eq!(build().render_pretty(), build().render_pretty());
}

#[test]
fn golden_document_renders_exactly() {
    let doc = Json::object(vec![
        ("schema", Json::str("bioperf-suite/v1")),
        ("count", Json::U64(12)),
        ("rate", Json::F64(0.25)),
        ("whole", Json::F64(3.0)),
        ("items", Json::Array(vec![Json::U64(1), Json::str("two"), Json::Null])),
    ]);
    assert_eq!(
        doc.render(),
        "{\"schema\":\"bioperf-suite/v1\",\"count\":12,\"rate\":0.25,\
         \"whole\":3.0,\"items\":[1,\"two\",null]}"
    );
    assert_eq!(
        doc.render_pretty(),
        "{\n  \"schema\": \"bioperf-suite/v1\",\n  \"count\": 12,\n  \"rate\": 0.25,\n  \
         \"whole\": 3.0,\n  \"items\": [\n    1,\n    \"two\",\n    null\n  ]\n}\n"
    );
}

#[test]
fn nested_document_round_trips_through_the_parser() {
    let doc = Json::object(vec![
        ("empty_obj", Json::Object(Vec::new())),
        ("empty_arr", Json::Array(Vec::new())),
        ("nested", Json::object(vec![("deep", Json::Array(vec![Json::F64(1.5), Json::U64(u64::MAX)]))])),
        ("text", Json::str("line1\nline2\t\"quoted\" \\ done")),
    ]);
    for text in [doc.render(), doc.render_pretty()] {
        assert_eq!(parse(&text).expect("parses"), doc);
    }
}

#[test]
fn integers_and_floats_stay_distinct_through_round_trip() {
    let doc = Json::Array(vec![Json::U64(7), Json::F64(7.0)]);
    let parsed = parse(&doc.render()).expect("parses");
    assert_eq!(parsed, doc);
    let Json::Array(items) = parsed else { panic!("array") };
    assert!(matches!(items[0], Json::U64(7)));
    assert!(matches!(items[1], Json::F64(v) if v == 7.0));
}

#[test]
fn metric_set_json_round_trips_and_sorts() {
    let mut m = MetricSet::new();
    m.counter_add("z/count", 3);
    m.counter_add("a/count", 1);
    m.gauge_set("mid/rate", 0.125);
    m.histogram_record("lat", 0);
    m.histogram_record("lat", 100);
    let json = m.to_json();
    assert_eq!(json.keys(), vec!["counters", "gauges", "histograms"]);
    assert_eq!(json.get("counters").expect("counters").keys(), vec!["a/count", "z/count"]);
    let round = parse(&json.render_pretty()).expect("parses");
    assert_eq!(round, json);
    let hist = round.get("histograms").and_then(|h| h.get("lat")).expect("lat");
    assert_eq!(hist.get("count").and_then(Json::as_u64), Some(2));
    assert_eq!(hist.get("sum").and_then(Json::as_u64), Some(100));
}
