//! Merge-semantics properties: merging metric shards must behave like a
//! commutative monoid and never lose events, no matter how the suite
//! orchestrator groups its parallel jobs.

use bioperf_metrics::{Json, LogHistogram, MetricSet};
use proptest::prelude::*;

fn hist_of(samples: &[u64]) -> LogHistogram {
    let mut h = LogHistogram::new();
    for &s in samples {
        h.record(s);
    }
    h
}

/// A handful of counter names so generated streams collide on names.
const NAMES: [&str; 4] = ["l1_hits", "l2_hits", "memory", "writebacks"];

fn set_of(events: &[(u8, u64)]) -> MetricSet {
    let mut m = MetricSet::new();
    for &(which, n) in events {
        m.counter_add(NAMES[which as usize % NAMES.len()], n % 1_000_000);
        m.histogram_record("samples", n);
    }
    m
}

proptest! {
    #[test]
    fn histogram_merge_is_commutative(
        a in prop::collection::vec(any::<u64>(), 0..64),
        b in prop::collection::vec(any::<u64>(), 0..64),
    ) {
        let (ha, hb) = (hist_of(&a), hist_of(&b));
        let mut ab = ha.clone();
        ab.merge(&hb);
        let mut ba = hb.clone();
        ba.merge(&ha);
        prop_assert_eq!(ab, ba);
    }

    #[test]
    fn histogram_merge_is_associative(
        a in prop::collection::vec(any::<u64>(), 0..48),
        b in prop::collection::vec(any::<u64>(), 0..48),
        c in prop::collection::vec(any::<u64>(), 0..48),
    ) {
        let (ha, hb, hc) = (hist_of(&a), hist_of(&b), hist_of(&c));
        // (a ⊕ b) ⊕ c
        let mut left = ha.clone();
        left.merge(&hb);
        left.merge(&hc);
        // a ⊕ (b ⊕ c)
        let mut bc = hb.clone();
        bc.merge(&hc);
        let mut right = ha.clone();
        right.merge(&bc);
        prop_assert_eq!(left, right);
    }

    #[test]
    fn histogram_merge_preserves_counts_and_sums(
        a in prop::collection::vec(0u64..1 << 40, 0..64),
        b in prop::collection::vec(0u64..1 << 40, 0..64),
    ) {
        let (ha, hb) = (hist_of(&a), hist_of(&b));
        let mut merged = ha.clone();
        merged.merge(&hb);
        prop_assert_eq!(merged.count(), ha.count() + hb.count());
        prop_assert_eq!(merged.sum(), ha.sum() + hb.sum());
        // Every sample landed in exactly one bucket.
        let bucket_total: u64 = (0..65).map(|i| merged.bucket(i)).sum();
        prop_assert_eq!(bucket_total, merged.count());
        // Merging equals recording the concatenated stream directly.
        let mut all = a.clone();
        all.extend_from_slice(&b);
        prop_assert_eq!(merged, hist_of(&all));
    }

    #[test]
    fn metric_set_merge_matches_sequential_recording(
        a in prop::collection::vec((0u8..4, any::<u64>()), 0..48),
        b in prop::collection::vec((0u8..4, any::<u64>()), 0..48),
    ) {
        // Two shards merged must equal one shard that saw both streams:
        // counters sum, histograms add element-wise, nothing is dropped.
        let mut merged = set_of(&a);
        merged.merge(&set_of(&b));
        let mut all = a.clone();
        all.extend_from_slice(&b);
        let sequential = set_of(&all);
        for name in NAMES {
            prop_assert_eq!(merged.counter(name), sequential.counter(name));
        }
        prop_assert_eq!(merged.histogram("samples"), sequential.histogram("samples"));
        // And the emitted JSON — what the determinism tests compare — is
        // byte-identical regardless of sharding.
        prop_assert_eq!(merged.to_json().render(), sequential.to_json().render());
    }

    #[test]
    fn metric_set_merge_is_commutative_on_counters(
        a in prop::collection::vec((0u8..4, any::<u64>()), 0..32),
        b in prop::collection::vec((0u8..4, any::<u64>()), 0..32),
    ) {
        let mut ab = set_of(&a);
        ab.merge(&set_of(&b));
        let mut ba = set_of(&b);
        ba.merge(&set_of(&a));
        // Insertion order may differ; the sorted JSON rendering is the
        // canonical form.
        prop_assert_eq!(ab.to_json().render(), ba.to_json().render());
    }

    #[test]
    fn json_string_escaping_round_trips(
        codepoints in prop::collection::vec(0u32..0x300, 0..24),
    ) {
        // Includes the whole control range, quotes, and backslashes.
        let s: String = codepoints.into_iter().filter_map(char::from_u32).collect();
        let doc = Json::object(vec![(s.clone(), Json::Str(s.clone()))]);
        let parsed = bioperf_metrics::json::parse(&doc.render()).expect("emitter output parses");
        prop_assert_eq!(parsed, doc);
    }
}
