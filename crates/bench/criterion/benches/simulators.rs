//! Substrate throughput benchmarks: how fast the tracing layer, cache
//! hierarchy, branch profiler, and pipeline model consume micro-ops.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::time::Duration;

use bioperf_branch::BranchProfiler;
use bioperf_cache::{alpha21264_hierarchy, AccessKind};
use bioperf_core::Characterizer;
use bioperf_isa::{MicroOp, Program, StaticId};
use bioperf_kernels::{registry, ProgramId, Scale, Variant};
use bioperf_pipe::{CycleSim, PlatformConfig, RegFile};
use bioperf_trace::{consumers::InstrMix, Recorder, Recording, Tape, TraceConsumer};

const N: u64 = 100_000;

fn bench_cache(c: &mut Criterion) {
    let mut group = c.benchmark_group("cache_hierarchy");
    group.throughput(Throughput::Elements(N));
    group.sample_size(20).measurement_time(Duration::from_secs(2));
    group.bench_function("sequential_loads", |b| {
        b.iter(|| {
            let mut h = alpha21264_hierarchy();
            let mut sum = 0u64;
            for i in 0..N {
                sum += h.access(i * 8 % (1 << 20), AccessKind::Load);
            }
            sum
        })
    });
    group.finish();
}

fn bench_branch(c: &mut Criterion) {
    let mut group = c.benchmark_group("branch_profiler");
    group.throughput(Throughput::Elements(N));
    group.sample_size(20).measurement_time(Duration::from_secs(2));
    group.bench_function("biased_branches", |b| {
        b.iter(|| {
            let mut p = BranchProfiler::new();
            let sid = StaticId::from_raw(0);
            let mut correct = 0u64;
            for i in 0..N {
                correct += p.observe(sid, i % 7 != 0) as u64;
            }
            correct
        })
    });
    group.finish();
}

fn bench_full_stacks(c: &mut Criterion) {
    let mut group = c.benchmark_group("trace_consumers");
    group.sample_size(10).measurement_time(Duration::from_secs(3));
    group.bench_function("hmmsearch_instr_mix", |b| {
        b.iter(|| {
            let mut tape = Tape::new(InstrMix::default());
            registry::run(&mut tape, ProgramId::Hmmsearch, Variant::Original, Scale::Test, 1);
            tape.finish().1
        })
    });
    group.bench_function("hmmsearch_characterizer", |b| {
        b.iter(|| {
            let mut tape = Tape::new(Characterizer::new());
            registry::run(&mut tape, ProgramId::Hmmsearch, Variant::Original, Scale::Test, 1);
            tape.finish().0.len()
        })
    });
    group.bench_function("hmmsearch_cycle_sim_alpha", |b| {
        b.iter(|| {
            let mut tape = Tape::new(CycleSim::new(PlatformConfig::alpha21264()));
            registry::run(&mut tape, ProgramId::Hmmsearch, Variant::Original, Scale::Test, 1);
            let (_, sim) = tape.finish();
            sim.into_result().cycles
        })
    });
    group.finish();
}

/// The pre-rewrite scanned register file, kept here so the bench can
/// report the LRU rewrite's win without resurrecting the old simulator.
struct VecRegFile {
    slots: Vec<u64>,
    capacity: usize,
}

impl VecRegFile {
    fn new(logical_regs: u32) -> Self {
        let capacity = (logical_regs.saturating_sub(2)).max(2) as usize;
        Self { slots: Vec::with_capacity(capacity), capacity }
    }

    fn touch(&mut self, v: u64) -> bool {
        if let Some(pos) = self.slots.iter().position(|&x| x == v) {
            let val = self.slots.remove(pos);
            self.slots.push(val);
            true
        } else {
            false
        }
    }

    fn insert(&mut self, v: u64) -> Option<u64> {
        if self.touch(v) {
            return None;
        }
        let evicted =
            if self.slots.len() == self.capacity { Some(self.slots.remove(0)) } else { None };
        self.slots.push(v);
        evicted
    }
}

/// A consumer that stores the stream as unpacked `MicroOp`s — the
/// representation `Recorder` used before the packed encoding.
#[derive(Default)]
struct UnpackedRecorder {
    ops: Vec<MicroOp>,
}

impl TraceConsumer for UnpackedRecorder {
    fn consume(&mut self, op: &MicroOp, _program: &Program) {
        self.ops.push(*op);
    }
}

fn hmmsearch_recording() -> Recording {
    let mut tape = Tape::new(Recorder::new());
    registry::run(&mut tape, ProgramId::Hmmsearch, Variant::Original, Scale::Test, 1);
    let (program, rec) = tape.finish();
    rec.into_recording(program)
}

fn bench_replay_encoding(c: &mut Criterion) {
    // Packed-decode replay vs walking a materialized Vec<MicroOp>: same
    // consumer, same ops, different memory traffic per op.
    let packed = hmmsearch_recording();
    let mut tape = Tape::new(UnpackedRecorder::default());
    registry::run(&mut tape, ProgramId::Hmmsearch, Variant::Original, Scale::Test, 1);
    let (program, unpacked) = tape.finish();

    let mut group = c.benchmark_group("replay_encoding");
    group.throughput(Throughput::Elements(packed.len() as u64));
    group.sample_size(20).measurement_time(Duration::from_secs(3));
    group.bench_function("packed_replay_alpha", |b| {
        b.iter(|| {
            let mut sim = CycleSim::new(PlatformConfig::alpha21264());
            packed.replay(&mut sim);
            sim.into_result().cycles
        })
    });
    group.bench_function("unpacked_replay_alpha", |b| {
        b.iter(|| {
            let mut sim = CycleSim::new(PlatformConfig::alpha21264());
            for op in &unpacked.ops {
                sim.consume(op, &program);
            }
            sim.finish(&program);
            sim.into_result().cycles
        })
    });
    group.finish();
}

fn bench_regfile(c: &mut Criterion) {
    // The simulator's per-operand access pattern on a real trace, on the
    // 126-entry Itanium 2 file where the old O(n) scan hurt most.
    let recording = hmmsearch_recording();
    let accesses: Vec<u64> = recording
        .iter()
        .flat_map(|op| {
            op.sources().into_iter().map(|v| v.0).chain(op.dst.map(|d| d.0)).collect::<Vec<_>>()
        })
        .collect();
    let logical_regs = PlatformConfig::itanium2().logical_regs;

    let mut group = c.benchmark_group("regfile_itanium2");
    group.throughput(Throughput::Elements(accesses.len() as u64));
    group.sample_size(20).measurement_time(Duration::from_secs(3));
    group.bench_function("linked_lru", |b| {
        b.iter(|| {
            let mut rf = RegFile::new(logical_regs);
            let mut evictions = 0u64;
            for &v in &accesses {
                if !rf.touch(v) {
                    evictions += rf.insert(v).is_some() as u64;
                }
            }
            evictions
        })
    });
    group.bench_function("scanned_vec", |b| {
        b.iter(|| {
            let mut rf = VecRegFile::new(logical_regs);
            let mut evictions = 0u64;
            for &v in &accesses {
                if !rf.touch(v) {
                    evictions += rf.insert(v).is_some() as u64;
                }
            }
            evictions
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_cache,
    bench_branch,
    bench_full_stacks,
    bench_replay_encoding,
    bench_regfile
);
criterion_main!(benches);
