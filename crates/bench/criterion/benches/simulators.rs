//! Substrate throughput benchmarks: how fast the tracing layer, cache
//! hierarchy, branch profiler, and pipeline model consume micro-ops.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::time::Duration;

use bioperf_branch::BranchProfiler;
use bioperf_cache::{alpha21264_hierarchy, AccessKind};
use bioperf_core::Characterizer;
use bioperf_isa::StaticId;
use bioperf_kernels::{registry, ProgramId, Scale, Variant};
use bioperf_pipe::{CycleSim, PlatformConfig};
use bioperf_trace::{consumers::InstrMix, Tape};

const N: u64 = 100_000;

fn bench_cache(c: &mut Criterion) {
    let mut group = c.benchmark_group("cache_hierarchy");
    group.throughput(Throughput::Elements(N));
    group.sample_size(20).measurement_time(Duration::from_secs(2));
    group.bench_function("sequential_loads", |b| {
        b.iter(|| {
            let mut h = alpha21264_hierarchy();
            let mut sum = 0u64;
            for i in 0..N {
                sum += h.access(i * 8 % (1 << 20), AccessKind::Load);
            }
            sum
        })
    });
    group.finish();
}

fn bench_branch(c: &mut Criterion) {
    let mut group = c.benchmark_group("branch_profiler");
    group.throughput(Throughput::Elements(N));
    group.sample_size(20).measurement_time(Duration::from_secs(2));
    group.bench_function("biased_branches", |b| {
        b.iter(|| {
            let mut p = BranchProfiler::new();
            let sid = StaticId::from_raw(0);
            let mut correct = 0u64;
            for i in 0..N {
                correct += p.observe(sid, i % 7 != 0) as u64;
            }
            correct
        })
    });
    group.finish();
}

fn bench_full_stacks(c: &mut Criterion) {
    let mut group = c.benchmark_group("trace_consumers");
    group.sample_size(10).measurement_time(Duration::from_secs(3));
    group.bench_function("hmmsearch_instr_mix", |b| {
        b.iter(|| {
            let mut tape = Tape::new(InstrMix::default());
            registry::run(&mut tape, ProgramId::Hmmsearch, Variant::Original, Scale::Test, 1);
            tape.finish().1
        })
    });
    group.bench_function("hmmsearch_characterizer", |b| {
        b.iter(|| {
            let mut tape = Tape::new(Characterizer::new());
            registry::run(&mut tape, ProgramId::Hmmsearch, Variant::Original, Scale::Test, 1);
            tape.finish().0.len()
        })
    });
    group.bench_function("hmmsearch_cycle_sim_alpha", |b| {
        b.iter(|| {
            let mut tape = Tape::new(CycleSim::new(PlatformConfig::alpha21264()));
            registry::run(&mut tape, ProgramId::Hmmsearch, Variant::Original, Scale::Test, 1);
            let (_, sim) = tape.finish();
            sim.into_result().cycles
        })
    });
    group.finish();
}

criterion_group!(benches, bench_cache, bench_branch, bench_full_stacks);
criterion_main!(benches);
