//! Native wall-clock benchmarks: Original vs LoadTransformed kernels on
//! the host CPU (the reproduction's analog of the paper's `time`
//! measurements on real machines).
//!
//! The kernels run through [`NullTracer`], so instrumentation compiles
//! away and the measured difference is purely the source-shape change.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

use bioperf_kernels::{registry, ProgramId, Scale, Variant};
use bioperf_trace::NullTracer;

fn bench_transformed_kernels(c: &mut Criterion) {
    let mut group = c.benchmark_group("native_original_vs_transformed");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));
    for program in ProgramId::TRANSFORMED {
        for variant in Variant::ALL {
            group.bench_with_input(
                BenchmarkId::new(program.name(), variant.label()),
                &(program, variant),
                |b, &(program, variant)| {
                    b.iter(|| {
                        let mut t = NullTracer::new();
                        registry::run(&mut t, program, variant, Scale::Small, 42)
                    })
                },
            );
        }
    }
    group.finish();
}

fn bench_characterized_only_kernels(c: &mut Criterion) {
    let mut group = c.benchmark_group("native_characterized_only");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));
    for program in [ProgramId::Blast, ProgramId::Fasta, ProgramId::Promlk] {
        group.bench_function(program.name(), |b| {
            b.iter(|| {
                let mut t = NullTracer::new();
                registry::run(&mut t, program, Variant::Original, Scale::Small, 42)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_transformed_kernels, bench_characterized_only_kernels);
criterion_main!(benches);
