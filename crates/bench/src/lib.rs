//! Shared plumbing for the table/figure regeneration binaries.
//!
//! Every binary regenerates one artifact of the paper:
//!
//! | Binary | Paper artifact |
//! |---|---|
//! | `fig1_instr_mix` | Figure 1 — instruction mix per program |
//! | `table1_instr_counts` | Table 1 — instruction counts and FP% |
//! | `fig2_load_coverage` | Figure 2 — static-load coverage, BioPerf vs SPEC |
//! | `table2_cache_perf` | Tables 2 and 3 — cache miss rates and AMAT |
//! | `table4_sequences` | Table 4 — load→branch and branch→load sequences |
//! | `table5_hot_loads` | Table 5 — hot-load profile of hmmsearch |
//! | `table6_transform_scope` | Table 6 — transformation scope |
//! | `table7_platforms` | Table 7 — evaluation platforms |
//! | `table8_runtime` | Table 8 — simulated cycles, original vs transformed |
//! | `fig9_speedup` | Figure 9 — speedups and harmonic means |
//! | `fig3_walkthrough` | Figures 3–5 — cycle-by-cycle pipeline walkthrough |
//! | `find_candidates` | Section 3 — ranked load-scheduling candidates |
//! | `ablation_mechanisms` | (extension) which modeled mechanism carries the speedup |
//! | `ablation_predictor` | (extension) no-aliasing vs realistic predictors |
//! | `ablation_prefetch` | (extension) prefetching vs the source transformation |
//! | `bench_suite` | the full-suite metric snapshot (`BENCH_suite.json`) |
//!
//! # Command line
//!
//! Every binary takes an optional workload scale (`test`, `small`,
//! `medium`, `large`) plus `--json <path>` to additionally write the
//! printed tables as a machine-readable JSON twin ([`JsonReport`]).
//! Unknown or malformed arguments are rejected with a usage message and
//! exit status 2 — they are never silently ignored, so a typo'd scale
//! cannot masquerade as a finished default-scale run.

use std::path::PathBuf;

use bioperf_core::report::TextTable;
use bioperf_kernels::Scale;
use bioperf_metrics::Json;

/// Seed used by every reproduction run (fixed for repeatability).
pub const REPRO_SEED: u64 = 42;

/// Schema tag of the table binaries' `--json` documents.
pub const TABLE_SCHEMA: &str = "bioperf-table/v1";

/// Exit status for rejected command lines (mirrors `EX_USAGE`-style
/// conventions: distinct from both success and runtime panics).
pub const USAGE_EXIT: i32 = 2;

/// Parsed command line of a table/figure binary.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchArgs {
    /// Workload scale (the binary's default unless overridden).
    pub scale: Scale,
    /// Where to write the JSON twin, if `--json` was given.
    pub json: Option<PathBuf>,
}

/// The usage string printed on rejected command lines and `--help`.
pub fn usage(artifact: &str, takes_scale: bool) -> String {
    if takes_scale {
        format!("usage: {artifact} [test|small|medium|large] [--json <path>]")
    } else {
        format!("usage: {artifact} [--json <path>]")
    }
}

/// Pure argument parser behind [`bench_args`]; `argv` excludes the
/// program name. Kept separate so tests can exercise every rejection
/// path without spawning processes.
pub fn parse_bench_args(
    argv: &[String],
    default: Scale,
    takes_scale: bool,
) -> Result<BenchArgs, String> {
    let mut parsed = BenchArgs { scale: default, json: None };
    let mut scale_seen = false;
    let mut it = argv.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--json" => {
                if parsed.json.is_some() {
                    return Err("duplicate --json".into());
                }
                match it.next() {
                    Some(path) if !path.is_empty() => parsed.json = Some(PathBuf::from(path)),
                    _ => return Err("--json needs a file path".into()),
                }
            }
            s if s.starts_with('-') => return Err(format!("unknown option '{s}'")),
            s => {
                if !takes_scale {
                    return Err(format!("unexpected argument '{s}'"));
                }
                if scale_seen {
                    return Err(format!("unexpected extra argument '{s}'"));
                }
                parsed.scale = Scale::from_name(s)
                    .ok_or_else(|| format!("unknown scale '{s}' (use test|small|medium|large)"))?;
                scale_seen = true;
            }
        }
    }
    Ok(parsed)
}

/// Parses the process command line for a scale-taking binary; prints
/// usage and exits with status [`USAGE_EXIT`] on a malformed command
/// line, and with status 0 on `--help`.
pub fn bench_args(artifact: &str, default: Scale) -> BenchArgs {
    bench_args_with(artifact, default, true)
}

/// [`bench_args`] for binaries with a fixed workload (table 6/7, the
/// Figure 3 walkthrough): any positional argument is rejected.
pub fn bench_args_no_scale(artifact: &str) -> BenchArgs {
    bench_args_with(artifact, Scale::Test, false)
}

fn bench_args_with(artifact: &str, default: Scale, takes_scale: bool) -> BenchArgs {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    if argv.iter().any(|a| a == "--help" || a == "-h") {
        println!("{}", usage(artifact, takes_scale));
        std::process::exit(0);
    }
    match parse_bench_args(&argv, default, takes_scale) {
        Ok(parsed) => parsed,
        Err(msg) => {
            eprintln!("{artifact}: {msg}");
            eprintln!("{}", usage(artifact, takes_scale));
            std::process::exit(USAGE_EXIT);
        }
    }
}

/// The machine-readable twin of a binary's printed tables.
///
/// Collects the same [`TextTable`]s the binary prints (cell-for-cell —
/// the JSON holds the exact rendered strings) plus free-form notes, and
/// writes them as one pretty-printed document when the user asked for
/// `--json`.
#[derive(Debug, Clone)]
pub struct JsonReport {
    artifact: String,
    scale: Option<Scale>,
    tables: Vec<(String, Json)>,
    notes: Vec<String>,
}

impl JsonReport {
    /// A report for one named artifact at one scale. Pass `None` for the
    /// fixed-workload binaries.
    pub fn new(artifact: &str, scale: Option<Scale>) -> Self {
        Self { artifact: artifact.to_string(), scale, tables: Vec::new(), notes: Vec::new() }
    }

    /// Adds a printed table under `name`.
    pub fn table(&mut self, name: &str, table: &TextTable) {
        self.tables.push((name.to_string(), table.to_json()));
    }

    /// Adds an arbitrary pre-built JSON value under `name` (for artifacts
    /// with non-tabular parts, like the walkthrough timelines).
    pub fn value(&mut self, name: &str, value: Json) {
        self.tables.push((name.to_string(), value));
    }

    /// Adds a free-form note (the "Paper shape: …" trailer lines).
    pub fn note(&mut self, text: &str) {
        self.notes.push(text.to_string());
    }

    /// The full document: schema/artifact/scale/seed header, then the
    /// tables in print order, then the notes.
    pub fn to_json(&self) -> Json {
        Json::object(vec![
            ("schema", Json::str(TABLE_SCHEMA)),
            ("artifact", Json::str(self.artifact.clone())),
            (
                "scale",
                self.scale.map_or(Json::Null, |s| Json::str(s.name())),
            ),
            ("seed", Json::U64(REPRO_SEED)),
            ("tables", Json::Object(self.tables.clone())),
            (
                "notes",
                Json::Array(self.notes.iter().map(|n| Json::str(n.clone())).collect()),
            ),
        ])
    }

    /// Writes the document to the `--json` path, if one was requested.
    ///
    /// # Panics
    ///
    /// Panics if the file cannot be written (the binaries have no
    /// recovery path; a missing artifact must fail loudly).
    pub fn write_if_requested(&self, args: &BenchArgs) {
        if let Some(path) = &args.json {
            std::fs::write(path, self.to_json().render_pretty())
                .unwrap_or_else(|e| panic!("writing {}: {e}", path.display()));
            println!("wrote {}", path.display());
        }
    }
}

/// The process's peak resident set size (`VmHWM`) in bytes, read from
/// `/proc/self/status`. `None` off Linux or if the field is absent —
/// callers report "n/a" rather than a fake number. A high-water mark:
/// it proves a phase stayed *under* a bound only if the whole process
/// did, which is why the streamed-replay memory smoke runs spill mode
/// as its own process.
pub fn peak_rss_bytes() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    let kib: u64 = line.split_whitespace().nth(1)?.parse().ok()?;
    Some(kib * 1024)
}

/// Standard header printed by every binary.
pub fn banner(artifact: &str, scale: Scale) {
    println!("=== {artifact} ===");
    println!("(reproduction of IISWC 2006 BioPerf load-characterization; scale {scale:?}, seed {REPRO_SEED})");
    println!();
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn empty_command_line_keeps_the_default() {
        let a = parse_bench_args(&[], Scale::Medium, true).unwrap();
        assert_eq!(a, BenchArgs { scale: Scale::Medium, json: None });
    }

    #[test]
    fn scale_and_json_parse_in_either_order() {
        let a = parse_bench_args(&argv(&["small", "--json", "out.json"]), Scale::Medium, true)
            .unwrap();
        assert_eq!(a.scale, Scale::Small);
        assert_eq!(a.json.as_deref(), Some(std::path::Path::new("out.json")));
        let b = parse_bench_args(&argv(&["--json", "out.json", "small"]), Scale::Medium, true)
            .unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn malformed_command_lines_are_rejected_not_ignored() {
        for bad in [
            vec!["huge"],                    // unknown scale
            vec!["test", "small"],           // two scales
            vec!["--jsn", "x"],              // misspelled option
            vec!["--json"],                  // missing value
            vec!["--json", "a", "--json", "b"], // duplicate
        ] {
            assert!(
                parse_bench_args(&argv(&bad), Scale::Medium, true).is_err(),
                "{bad:?} must be rejected"
            );
        }
    }

    #[test]
    fn fixed_workload_binaries_reject_positional_args() {
        assert!(parse_bench_args(&argv(&["test"]), Scale::Test, false).is_err());
        let a = parse_bench_args(&argv(&["--json", "x.json"]), Scale::Test, false).unwrap();
        assert!(a.json.is_some());
    }

    #[test]
    fn json_report_shape() {
        let mut t = TextTable::new(&["program", "loads"]);
        t.row(&["blast", "30.1%"]);
        let mut r = JsonReport::new("fig1_instr_mix", Some(Scale::Test));
        r.table("figure1", &t);
        r.note("loads average ~30%");
        let j = r.to_json();
        assert_eq!(j.keys(), vec!["schema", "artifact", "scale", "seed", "tables", "notes"]);
        assert_eq!(j.get("schema").and_then(Json::as_str), Some(TABLE_SCHEMA));
        assert_eq!(j.get("scale").and_then(Json::as_str), Some("test"));
        let table = j.get("tables").and_then(|t| t.get("figure1")).expect("table");
        assert_eq!(table.get("columns").expect("columns").render(), "[\"program\",\"loads\"]");
        // The document round-trips through the in-workspace parser.
        let parsed = bioperf_metrics::json::parse(&j.render_pretty()).unwrap();
        assert_eq!(parsed, j);
    }
}
