//! Shared plumbing for the table/figure regeneration binaries.
//!
//! Every binary regenerates one artifact of the paper:
//!
//! | Binary | Paper artifact |
//! |---|---|
//! | `fig1_instr_mix` | Figure 1 — instruction mix per program |
//! | `table1_instr_counts` | Table 1 — instruction counts and FP% |
//! | `fig2_load_coverage` | Figure 2 — static-load coverage, BioPerf vs SPEC |
//! | `table2_cache_perf` | Tables 2 and 3 — cache miss rates and AMAT |
//! | `table4_sequences` | Table 4 — load→branch and branch→load sequences |
//! | `table5_hot_loads` | Table 5 — hot-load profile of hmmsearch |
//! | `table6_transform_scope` | Table 6 — transformation scope |
//! | `table7_platforms` | Table 7 — evaluation platforms |
//! | `table8_runtime` | Table 8 — simulated cycles, original vs transformed |
//! | `fig9_speedup` | Figure 9 — speedups and harmonic means |
//! | `fig3_walkthrough` | Figures 3–5 — cycle-by-cycle pipeline walkthrough |
//! | `find_candidates` | Section 3 — ranked load-scheduling candidates |
//! | `ablation_mechanisms` | (extension) which modeled mechanism carries the speedup |
//! | `ablation_predictor` | (extension) no-aliasing vs realistic predictors |
//! | `ablation_prefetch` | (extension) prefetching vs the source transformation |
//!
//! All binaries accept an optional workload scale argument
//! (`test`, `small`, `medium`, `large`; default `medium` for
//! characterization and `large` for the runtime evaluation).

use bioperf_kernels::Scale;

/// Seed used by every reproduction run (fixed for repeatability).
pub const REPRO_SEED: u64 = 42;

/// Parses the first CLI argument as a workload scale.
///
/// # Panics
///
/// Panics with a usage message on an unknown scale name.
pub fn scale_from_args(default: Scale) -> Scale {
    match std::env::args().nth(1).as_deref() {
        None => default,
        Some("test") => Scale::Test,
        Some("small") => Scale::Small,
        Some("medium") => Scale::Medium,
        Some("large") => Scale::Large,
        Some(other) => panic!("unknown scale '{other}' (use test|small|medium|large)"),
    }
}

/// Standard header printed by every binary.
pub fn banner(artifact: &str, scale: Scale) {
    println!("=== {artifact} ===");
    println!("(reproduction of IISWC 2006 BioPerf load-characterization; scale {scale:?}, seed {REPRO_SEED})");
    println!();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_scale_used_without_args() {
        // Tests run with extra harness args; just verify the constant.
        assert_eq!(REPRO_SEED, 42);
        let _ = Scale::Medium;
    }
}
