//! Table 7: the four modeled evaluation platforms.

use bioperf_bench::{banner, bench_args_no_scale, JsonReport};
use bioperf_core::report::TextTable;
use bioperf_kernels::Scale;
use bioperf_pipe::PlatformConfig;

fn main() {
    let args = bench_args_no_scale("table7_platforms");
    banner("Table 7: evaluation platform models", Scale::Test);

    let mut table = TextTable::new(&[
        "parameter",
        "Alpha 21264",
        "PowerPC G5",
        "Pentium 4",
        "Itanium 2",
    ]);
    let ps = PlatformConfig::all();
    let row = |name: &str, f: &dyn Fn(&PlatformConfig) -> String| {
        let mut cells = vec![name.to_string()];
        cells.extend(ps.iter().map(f));
        cells
    };
    table.row_owned(row("issue order", &|p| {
        if p.in_order { "in-order".into() } else { "out-of-order".into() }
    }));
    table.row_owned(row("fetch/issue width", &|p| format!("{}/{}", p.fetch_width, p.issue_width)));
    table.row_owned(row("window (ROB)", &|p| p.rob_size.to_string()));
    table.row_owned(row("L1 data cache", &|p| p.l1.to_string()));
    table.row_owned(row("L1 load-to-use (int/fp)", &|p| {
        format!("{}/{} cycles", p.int_load_latency, p.fp_load_latency)
    }));
    table.row_owned(row("L2 cache", &|p| p.l2.to_string()));
    table.row_owned(row("L2 hit latency", &|p| format!("+{} cycles", p.l2_latency)));
    table.row_owned(row("memory latency", &|p| format!("+{} cycles", p.memory_latency)));
    table.row_owned(row("mispredict penalty", &|p| format!("{} cycles", p.mispredict_penalty)));
    table.row_owned(row("logical int registers", &|p| p.logical_regs.to_string()));
    table.row_owned(row("if-conversion (cmov)", &|p| {
        if p.if_conversion { "yes".into() } else { "no".into() }
    }));
    println!("{}", table.render());
    println!("Cache geometry and L1 latencies follow the paper's Table 7; parameters the");
    println!("table omits use the machines' published microarchitecture values (see");
    println!("EXPERIMENTS.md). 'if-conversion' reflects whether that platform's ISA and");
    println!("paper-era compiler realize selects as conditional moves.");

    let mut json = JsonReport::new("table7_platforms", None);
    json.table("table7", &table);
    json.note("cache geometry and L1 latencies follow the paper's Table 7");
    json.write_if_requested(&args);
}
