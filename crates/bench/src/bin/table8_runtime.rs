//! Table 8: simulated runtime (cycles) of the original and
//! load-transformed programs on the four platform models.

use bioperf_bench::{banner, bench_args, JsonReport, REPRO_SEED};
use bioperf_core::orchestrate::evaluate_all;
use bioperf_core::report::TextTable;
use bioperf_kernels::{ProgramId, Scale};
use bioperf_pipe::PlatformConfig;

fn main() {
    let args = bench_args("table8_runtime", Scale::Large);
    let scale = args.scale;
    banner("Table 8: simulated cycles, original vs load-transformed", scale);

    let matrix = evaluate_all(scale, REPRO_SEED, 0).unwrap_or_else(|e| {
        eprintln!("table8_runtime: {e}");
        std::process::exit(1);
    });
    let platforms: Vec<&str> = PlatformConfig::all().iter().map(|p| p.name).collect();

    let mut header = vec!["program", "variant"];
    header.extend(platforms.iter());
    let mut table = TextTable::new(&header);

    for program in ProgramId::TRANSFORMED {
        for (variant_idx, variant_name) in ["original", "load-transformed"].iter().enumerate() {
            let mut row = vec![
                if variant_idx == 0 { program.name().to_string() } else { String::new() },
                variant_name.to_string(),
            ];
            for platform in &platforms {
                let cell = matrix
                    .cells
                    .iter()
                    .find(|c| c.program == program && c.platform == *platform);
                row.push(match cell {
                    None => "n.a.".to_string(),
                    Some(c) => {
                        let r = if variant_idx == 0 { &c.original } else { &c.transformed };
                        format!("{:.2}M", r.cycles as f64 / 1e6)
                    }
                });
            }
            table.row_owned(row);
        }
    }
    println!("{}", table.render());
    println!("(dnapenny / Itanium is n.a. — the paper could not compile it there either.)");
    println!("The paper reports wall-clock seconds on real machines; this reproduction");
    println!("reports simulated cycles on the Table 7 models. Compare shapes, not units.");
    println!("Run fig9_speedup for the speedups and harmonic means.");

    let mut json = JsonReport::new("table8_runtime", Some(scale));
    json.table("table8", &table);
    json.note("simulated cycles on the Table 7 models, not wall-clock seconds");
    json.write_if_requested(&args);
}
