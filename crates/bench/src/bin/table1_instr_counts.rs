//! Table 1: executed instruction counts and floating-point percentage.

use bioperf_bench::{banner, bench_args, JsonReport, REPRO_SEED};
use bioperf_core::orchestrate::characterize_all;
use bioperf_core::report::{pct2, TextTable};
use bioperf_kernels::Scale;

fn main() {
    let args = bench_args("table1_instr_counts", Scale::Medium);
    let scale = args.scale;
    banner("Table 1: executed instructions and floating-point fraction", scale);

    let mut table =
        TextTable::new(&["program", "instructions (M)", "floating-point", "fp loads"]);
    for (program, r) in characterize_all(scale, REPRO_SEED, 0) {
        table.row_owned(vec![
            program.name().to_string(),
            format!("{:.2}", r.mix.total() as f64 / 1e6),
            pct2(r.mix.fp_fraction()),
            pct2(r.mix.fp_loads() as f64 / r.mix.total() as f64),
        ]);
    }
    println!("{}", table.render());
    println!("Paper shape: only hmmpfam, predator, and promlk execute significant FP work;");
    println!("promlk is the outlier at ~65% FP. Absolute counts are scaled down from the");
    println!("paper's 20-894 billion (see EXPERIMENTS.md).");

    let mut json = JsonReport::new("table1_instr_counts", Some(scale));
    json.table("table1", &table);
    json.note("counts are scaled down from the paper's 20-894 billion");
    json.write_if_requested(&args);
}
