//! Figure 2: cumulative frequency of executed loads versus number of
//! static loads — three BioPerf programs against three SPEC-like
//! comparison workloads.

use bioperf_bench::{banner, bench_args, JsonReport, REPRO_SEED};
use bioperf_core::report::{pct, TextTable};
use bioperf_core::LoadCoverage;
use bioperf_kernels::{registry, ProgramId, Scale, Variant};
use bioperf_specmini::{SpecProgram, SpecScale};
use bioperf_trace::Tape;

const RANKS: [usize; 8] = [1, 5, 10, 20, 40, 80, 160, 320];

fn bio_coverage(program: ProgramId, scale: Scale) -> (String, LoadCoverage, usize) {
    let mut tape = Tape::new(LoadCoverage::new());
    registry::run(&mut tape, program, Variant::Original, scale, REPRO_SEED);
    let (static_prog, cov) = tape.finish();
    let statics = static_prog.count_kind(bioperf_isa::OpKind::is_load);
    (program.name().to_string(), cov, statics)
}

fn spec_coverage(program: SpecProgram, scale: SpecScale) -> (String, LoadCoverage, usize) {
    let mut tape = Tape::new(LoadCoverage::new());
    bioperf_specmini::run(&mut tape, program, scale, REPRO_SEED);
    let (static_prog, cov) = tape.finish();
    let statics = static_prog.count_kind(bioperf_isa::OpKind::is_load);
    (program.name().to_string(), cov, statics)
}

fn main() {
    let args = bench_args("fig2_load_coverage", Scale::Medium);
    let scale = args.scale;
    banner("Figure 2: cumulative load coverage vs. ranked static loads", scale);
    let spec_scale = if scale >= Scale::Medium { SpecScale::MEDIUM } else { SpecScale::TEST };

    let mut curves = Vec::new();
    for p in [ProgramId::Hmmsearch, ProgramId::Clustalw, ProgramId::Fasta] {
        curves.push(bio_coverage(p, scale));
    }
    for p in SpecProgram::ALL {
        curves.push(spec_coverage(p, spec_scale));
    }

    let mut header: Vec<String> = vec!["top-N static loads".to_string()];
    header.extend(curves.iter().map(|(name, _, _)| name.clone()));
    let header_refs: Vec<&str> = header.iter().map(|s| s.as_str()).collect();
    let mut table = TextTable::new(&header_refs);
    for rank in RANKS {
        let mut row = vec![rank.to_string()];
        for (_, cov, _) in &curves {
            row.push(pct(cov.coverage_at(rank)));
        }
        table.row_owned(row);
    }
    println!("{}", table.render());

    let mut statics = TextTable::new(&["program", "active static loads", "dynamic loads (M)"]);
    for (name, cov, n) in &curves {
        statics.row_owned(vec![
            name.clone(),
            n.to_string(),
            format!("{:.2}", cov.total_loads() as f64 / 1e6),
        ]);
    }
    println!("{}", statics.render());
    println!("Paper shape: ~80 static loads cover >90% of the BioPerf programs' dynamic");
    println!("loads, while the same count covers far less of the SPEC-like programs.");

    let mut json = JsonReport::new("fig2_load_coverage", Some(scale));
    json.table("coverage", &table);
    json.table("static_loads", &statics);
    json.note("~80 static loads cover >90% of the BioPerf programs' dynamic loads");
    json.write_if_requested(&args);
}
