//! Replay-throughput smoke benchmark: records one heavy trace and
//! replays it through every platform model, reporting Mops/s per
//! platform and the packed encoding's bytes/op. Platforms are measured
//! twice — once each sequentially (per-platform regression signal) and
//! once as a single-decode *bank* (the suite's production replay path) —
//! and `--min-mops <x>` turns the bank aggregate into a hard floor: the
//! binary exits 1 below it, which is how CI fails a change that
//! regresses the replay hot loop. CI runs this in release mode and
//! posts the table to the job summary.

use std::path::PathBuf;
use std::time::Instant;

use bioperf_bench::{banner, usage as usage_line, JsonReport, REPRO_SEED, USAGE_EXIT};
use bioperf_core::report::TextTable;
use bioperf_kernels::{registry, ProgramId, Scale, Variant};
use bioperf_metrics::Json;
use bioperf_pipe::{CycleSim, PlatformConfig};
use bioperf_trace::{Recorder, Tape};

const ARTIFACT: &str = "replay_throughput";

fn usage() -> String {
    format!("{} [--min-mops <x>]", usage_line(ARTIFACT, true).trim_end())
}

fn bail(msg: &str) -> ! {
    eprintln!("{ARTIFACT}: {msg}");
    eprintln!("{}", usage());
    std::process::exit(USAGE_EXIT);
}

struct Args {
    scale: Scale,
    json: Option<PathBuf>,
    /// Fail (exit 1) if the bank aggregate falls below this many Mops/s.
    min_mops: Option<f64>,
}

fn parse_args() -> Args {
    let mut parsed = Args { scale: Scale::Small, json: None, min_mops: None };
    let mut scale_seen = false;
    let argv: Vec<String> = std::env::args().skip(1).collect();
    if argv.iter().any(|a| a == "--help" || a == "-h") {
        println!("{}", usage());
        std::process::exit(0);
    }
    let mut it = argv.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--json" => {
                if parsed.json.is_some() {
                    bail("duplicate --json");
                }
                match it.next() {
                    Some(path) if !path.is_empty() => parsed.json = Some(PathBuf::from(path)),
                    _ => bail("--json needs a file path"),
                }
            }
            "--min-mops" => {
                if parsed.min_mops.is_some() {
                    bail("duplicate --min-mops");
                }
                match it.next().and_then(|v| v.parse::<f64>().ok()) {
                    Some(x) if x.is_finite() && x > 0.0 => parsed.min_mops = Some(x),
                    _ => bail("--min-mops needs a positive number"),
                }
            }
            s if s.starts_with('-') => bail(&format!("unknown option '{s}'")),
            s => {
                if scale_seen {
                    bail(&format!("unexpected extra argument '{s}'"));
                }
                match Scale::from_name(s) {
                    Some(scale) => parsed.scale = scale,
                    None => bail(&format!("unknown scale '{s}' (use test|small|medium|large)")),
                }
                scale_seen = true;
            }
        }
    }
    parsed
}

fn main() {
    let args = parse_args();
    let scale = args.scale;
    banner("Replay throughput: packed-trace decode + cycle simulation", scale);

    let program = ProgramId::Hmmsearch;
    let mut tape = Tape::new(Recorder::new());
    let start = Instant::now();
    registry::run(&mut tape, program, Variant::Original, scale, REPRO_SEED);
    let record_secs = start.elapsed().as_secs_f64();
    let (static_program, rec) = tape.finish();
    if rec.overflowed() {
        eprintln!("{ARTIFACT}: {program} trace exceeded the recorder capacity");
        std::process::exit(1);
    }
    let recording = rec.into_recording(static_program);
    let ops = recording.len() as u64;
    println!(
        "{program}: {ops} ops recorded in {record_secs:.2}s, {:.1} bytes/op packed\n",
        recording.bytes_per_op()
    );

    let platforms = PlatformConfig::all();
    let mut table = TextTable::new(&["platform", "replay (s)", "Mops/s", "cycles"]);
    let mut json = JsonReport::new(ARTIFACT, Some(scale));

    // One sequential pass per platform: decode + simulate, the
    // per-platform regression signal.
    let mut sequential = Vec::new();
    let mut sequential_secs = 0.0;
    for platform in platforms.iter() {
        let mut sim = CycleSim::new(*platform);
        let start = Instant::now();
        recording.replay(&mut sim);
        let secs = start.elapsed().as_secs_f64();
        sequential_secs += secs;
        let result = sim.into_result();
        let mops = ops as f64 / secs / 1e6;
        table.row_owned(vec![
            platform.name.to_string(),
            format!("{secs:.3}"),
            format!("{mops:.1}"),
            result.cycles.to_string(),
        ]);
        json.value(&format!("mops_per_sec/{}", platform.name), Json::F64(mops));
        sequential.push(result);
    }
    let platform_ops = ops * platforms.len() as u64;
    let sequential_mops = platform_ops as f64 / sequential_secs / 1e6;
    table.row_owned(vec![
        "sequential total".to_string(),
        format!("{sequential_secs:.3}"),
        format!("{sequential_mops:.1}"),
        String::new(),
    ]);

    // The bank pass: one decode of the packed stream drives all four
    // platform models — the suite's production replay path.
    let mut bank: Vec<CycleSim> = platforms.iter().map(|&p| CycleSim::new(p)).collect();
    let start = Instant::now();
    recording.replay_bank(&mut bank);
    let bank_secs = start.elapsed().as_secs_f64();
    let bank_mops = platform_ops as f64 / bank_secs / 1e6;
    for (platform, (banked, solo)) in platforms.iter().zip(bank.iter().zip(&sequential)) {
        if banked.result() != *solo {
            eprintln!("{ARTIFACT}: {}: bank replay diverged from sequential replay", platform.name);
            std::process::exit(1);
        }
    }
    table.row_owned(vec![
        "bank (1 decode)".to_string(),
        format!("{bank_secs:.3}"),
        format!("{bank_mops:.1}"),
        String::new(),
    ]);
    println!("{}", table.render());

    json.value("ops", Json::U64(ops));
    json.value("bytes_per_op", Json::F64(recording.bytes_per_op()));
    json.value("mops_per_sec/total", Json::F64(sequential_mops));
    json.value("mops_per_sec/bank_total", Json::F64(bank_mops));
    json.note("one hmmsearch recording; each platform replayed sequentially, then all four off one bank decode");
    json.write_if_requested(&args_to_bench(&args));

    if let Some(floor) = args.min_mops {
        if bank_mops < floor {
            eprintln!(
                "{ARTIFACT}: bank aggregate {bank_mops:.1} Mops/s is below the {floor:.1} Mops/s floor"
            );
            std::process::exit(1);
        }
        println!("bank aggregate {bank_mops:.1} Mops/s clears the {floor:.1} Mops/s floor");
    }
}

/// Adapter so [`JsonReport::write_if_requested`] (which takes the shared
/// [`bioperf_bench::BenchArgs`]) works with this binary's extended
/// command line.
fn args_to_bench(args: &Args) -> bioperf_bench::BenchArgs {
    bioperf_bench::BenchArgs { scale: args.scale, json: args.json.clone() }
}
