//! Replay-throughput smoke benchmark: records one heavy trace and
//! replays it through every platform model, reporting Mops/s per
//! platform and the packed encoding's bytes/op. CI runs this in release
//! mode and posts the table to the job summary; it is the quick answer
//! to "did a change regress the replay hot loop?".

use std::time::Instant;

use bioperf_bench::{banner, bench_args, JsonReport, REPRO_SEED};
use bioperf_core::report::TextTable;
use bioperf_kernels::{registry, ProgramId, Scale, Variant};
use bioperf_metrics::Json;
use bioperf_pipe::{CycleSim, PlatformConfig};
use bioperf_trace::{Recorder, Tape};

fn main() {
    let args = bench_args("replay_throughput", Scale::Small);
    let scale = args.scale;
    banner("Replay throughput: packed-trace decode + cycle simulation", scale);

    let program = ProgramId::Hmmsearch;
    let mut tape = Tape::new(Recorder::new());
    let start = Instant::now();
    registry::run(&mut tape, program, Variant::Original, scale, REPRO_SEED);
    let record_secs = start.elapsed().as_secs_f64();
    let (static_program, rec) = tape.finish();
    if rec.overflowed() {
        eprintln!("replay_throughput: {program} trace exceeded the recorder capacity");
        std::process::exit(1);
    }
    let recording = rec.into_recording(static_program);
    let ops = recording.len() as u64;
    println!(
        "{program}: {ops} ops recorded in {record_secs:.2}s, {:.1} bytes/op packed\n",
        recording.bytes_per_op()
    );

    let mut table = TextTable::new(&["platform", "replay (s)", "Mops/s", "cycles"]);
    let mut json = JsonReport::new("replay_throughput", Some(scale));
    let mut total_secs = 0.0;
    for platform in PlatformConfig::all() {
        let mut sim = CycleSim::new(platform);
        let start = Instant::now();
        recording.replay(&mut sim);
        let secs = start.elapsed().as_secs_f64();
        total_secs += secs;
        let result = sim.into_result();
        let mops = ops as f64 / secs / 1e6;
        table.row_owned(vec![
            platform.name.to_string(),
            format!("{secs:.3}"),
            format!("{mops:.1}"),
            result.cycles.to_string(),
        ]);
        json.value(&format!("mops_per_sec/{}", platform.name), Json::F64(mops));
    }
    let total_mops = ops as f64 * PlatformConfig::all().len() as f64 / total_secs / 1e6;
    table.row_owned(vec![
        "total".to_string(),
        format!("{total_secs:.3}"),
        format!("{total_mops:.1}"),
        String::new(),
    ]);
    println!("{}", table.render());

    json.value("ops", Json::U64(ops));
    json.value("bytes_per_op", Json::F64(recording.bytes_per_op()));
    json.value("mops_per_sec/total", Json::F64(total_mops));
    json.note("one hmmsearch recording replayed once per platform model");
    json.write_if_requested(&args);
}
