//! Replay-throughput smoke benchmark: records one heavy trace and
//! replays it through every platform model, reporting Mops/s per
//! platform, the packed encoding's bytes/op, and the process's peak
//! RSS. Platforms are measured three ways — once each sequentially
//! (per-platform regression signal), once as a single-decode in-memory
//! *bank* (the suite's production replay path), and once as a *streamed*
//! bank off spilled disk segments (the spill-mode replay path) — and
//! `--min-mops <x>` turns the bank aggregate into a hard floor: the
//! binary exits 1 below it, which is how CI fails a change that
//! regresses the replay hot loop. CI runs this in release mode and
//! posts the table to the job summary.
//!
//! `--spill-dir <dir>` switches to a streamed-only run: the trace is
//! recorded directly into segment files (never held in memory whole)
//! and only the streamed bank is measured, with `--min-mops` applied to
//! it. CI runs this mode under `ulimit -v` to prove streamed peak
//! memory is bounded by the segment size, not the trace size.

use std::path::PathBuf;
use std::time::Instant;

use bioperf_bench::{banner, peak_rss_bytes, usage as usage_line, JsonReport, REPRO_SEED, USAGE_EXIT};
use bioperf_core::report::TextTable;
use bioperf_kernels::{registry, ProgramId, Scale, Variant};
use bioperf_metrics::Json;
use bioperf_pipe::{CycleSim, PlatformConfig, SimResult};
use bioperf_trace::{segment_recording, Recorder, SegmentedRecording, SpillRecorder, Tape};

const ARTIFACT: &str = "replay_throughput";

fn usage() -> String {
    format!(
        "{} [--min-mops <x>] [--spill-dir <dir>] [--segment-ops <n>] [--block-ops <n>]",
        usage_line(ARTIFACT, true).trim_end()
    )
}

fn bail(msg: &str) -> ! {
    eprintln!("{ARTIFACT}: {msg}");
    eprintln!("{}", usage());
    std::process::exit(USAGE_EXIT);
}

struct Args {
    scale: Scale,
    json: Option<PathBuf>,
    /// Fail (exit 1) if the bank aggregate falls below this many Mops/s.
    min_mops: Option<f64>,
    /// Streamed-only mode: record straight to segments under this dir.
    spill_dir: Option<PathBuf>,
    /// Ops per segment file (0 = `DEFAULT_SEGMENT_OPS`).
    segment_ops: usize,
    /// Ops per decode block in the bank passes (0 = `BLOCK_OPS`).
    block_ops: usize,
}

fn parse_args() -> Args {
    let mut parsed = Args {
        scale: Scale::Small,
        json: None,
        min_mops: None,
        spill_dir: None,
        segment_ops: 0,
        block_ops: 0,
    };
    let mut scale_seen = false;
    let argv: Vec<String> = std::env::args().skip(1).collect();
    if argv.iter().any(|a| a == "--help" || a == "-h") {
        println!("{}", usage());
        std::process::exit(0);
    }
    let mut it = argv.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--json" => {
                if parsed.json.is_some() {
                    bail("duplicate --json");
                }
                match it.next() {
                    Some(path) if !path.is_empty() => parsed.json = Some(PathBuf::from(path)),
                    _ => bail("--json needs a file path"),
                }
            }
            "--min-mops" => {
                if parsed.min_mops.is_some() {
                    bail("duplicate --min-mops");
                }
                match it.next().and_then(|v| v.parse::<f64>().ok()) {
                    Some(x) if x.is_finite() && x > 0.0 => parsed.min_mops = Some(x),
                    _ => bail("--min-mops needs a positive number"),
                }
            }
            "--spill-dir" => {
                if parsed.spill_dir.is_some() {
                    bail("duplicate --spill-dir");
                }
                match it.next() {
                    Some(path) if !path.is_empty() => parsed.spill_dir = Some(PathBuf::from(path)),
                    _ => bail("--spill-dir needs a directory path"),
                }
            }
            "--segment-ops" => {
                if parsed.segment_ops != 0 {
                    bail("duplicate --segment-ops");
                }
                match it.next().and_then(|v| v.parse::<usize>().ok()) {
                    Some(n) if n > 0 => parsed.segment_ops = n,
                    _ => bail("--segment-ops needs a positive op count"),
                }
            }
            "--block-ops" => {
                if parsed.block_ops != 0 {
                    bail("duplicate --block-ops");
                }
                match it.next().and_then(|v| v.parse::<usize>().ok()) {
                    Some(n) if n > 0 => parsed.block_ops = n,
                    _ => bail("--block-ops needs a positive op count"),
                }
            }
            s if s.starts_with('-') => bail(&format!("unknown option '{s}'")),
            s => {
                if scale_seen {
                    bail(&format!("unexpected extra argument '{s}'"));
                }
                match Scale::from_name(s) {
                    Some(scale) => parsed.scale = scale,
                    None => bail(&format!("unknown scale '{s}' (use test|small|medium|large)")),
                }
                scale_seen = true;
            }
        }
    }
    parsed
}

fn effective_segment_ops(args: &Args) -> usize {
    if args.segment_ops == 0 {
        bioperf_trace::DEFAULT_SEGMENT_OPS
    } else {
        args.segment_ops
    }
}

fn effective_block_ops(args: &Args) -> usize {
    if args.block_ops == 0 {
        bioperf_trace::BLOCK_OPS
    } else {
        args.block_ops
    }
}

/// Streamed bank replay of a segmented recording; returns per-platform
/// results and elapsed seconds. Exits 1 on a segment error.
fn streamed_bank(segmented: &SegmentedRecording, platforms: &[PlatformConfig]) -> (Vec<SimResult>, f64) {
    let mut bank: Vec<CycleSim> = platforms.iter().map(|&p| CycleSim::new(p)).collect();
    let start = Instant::now();
    if let Err(e) = segmented.replay_bank(&mut bank) {
        eprintln!("{ARTIFACT}: streamed replay failed: {e}");
        std::process::exit(1);
    }
    let secs = start.elapsed().as_secs_f64();
    (bank.into_iter().map(CycleSim::into_result).collect(), secs)
}

fn report_peak_rss(json: &mut JsonReport) {
    match peak_rss_bytes() {
        Some(bytes) => {
            let mib = bytes as f64 / (1024.0 * 1024.0);
            println!("peak RSS (VmHWM): {mib:.0} MiB");
            json.value("peak_rss_bytes", Json::U64(bytes));
        }
        None => println!("peak RSS (VmHWM): n/a on this platform"),
    }
}

fn enforce_floor(label: &str, mops: f64, floor: Option<f64>) {
    if let Some(floor) = floor {
        if mops < floor {
            eprintln!(
                "{ARTIFACT}: {label} aggregate {mops:.1} Mops/s is below the {floor:.1} Mops/s floor"
            );
            std::process::exit(1);
        }
        println!("{label} aggregate {mops:.1} Mops/s clears the {floor:.1} Mops/s floor");
    }
}

/// Streamed-only mode: record straight into segment files and replay the
/// streamed bank. The whole trace is never resident, so `ulimit -v` caps
/// meaningfully bound this mode.
fn run_spill_only(args: &Args, spill_dir: &PathBuf) {
    let scale = args.scale;
    banner("Replay throughput: streamed segment decode + cycle simulation", scale);
    let program = ProgramId::Hmmsearch;
    let segment_ops = effective_segment_ops(args);
    let recorder = match SpillRecorder::to_dir(spill_dir, segment_ops, bioperf_trace::replay::DEFAULT_CAPACITY) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("{ARTIFACT}: {e}");
            std::process::exit(1);
        }
    };
    let mut tape = Tape::new(recorder);
    let start = Instant::now();
    registry::run(&mut tape, program, Variant::Original, scale, REPRO_SEED);
    let record_secs = start.elapsed().as_secs_f64();
    let (static_program, rec) = tape.finish();
    if rec.overflowed() {
        eprintln!("{ARTIFACT}: {program} trace exceeded the recorder capacity");
        std::process::exit(1);
    }
    let segmented = match rec.into_segmented(static_program) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("{ARTIFACT}: {e}");
            std::process::exit(1);
        }
    };
    let ops = segmented.len() as u64;
    println!(
        "{program}: {ops} ops spilled to {} segments ({segment_ops} ops each) in {record_secs:.2}s\n",
        segmented.segment_count()
    );

    let platforms = PlatformConfig::all();
    let (_, secs) = streamed_bank(&segmented, &platforms);
    let platform_ops = ops * platforms.len() as u64;
    let mops = platform_ops as f64 / secs / 1e6;

    let mut table = TextTable::new(&["platform", "replay (s)", "Mops/s", "cycles"]);
    table.row_owned(vec![
        format!("streamed bank ({} segs)", segmented.segment_count()),
        format!("{secs:.3}"),
        format!("{mops:.1}"),
        String::new(),
    ]);
    println!("{}", table.render());

    let mut json = JsonReport::new(ARTIFACT, Some(scale));
    json.value("ops", Json::U64(ops));
    json.value("segments", Json::U64(segmented.segment_count() as u64));
    json.value("segment_ops", Json::U64(segment_ops as u64));
    json.value("mops_per_sec/streamed_bank", Json::F64(mops));
    json.note("hmmsearch recorded straight to disk segments; four platform models off one streamed bank decode");
    report_peak_rss(&mut json);
    json.write_if_requested(&args_to_bench(args));
    enforce_floor("streamed bank", mops, args.min_mops);
}

fn main() {
    let args = parse_args();
    if let Some(spill_dir) = args.spill_dir.clone() {
        run_spill_only(&args, &spill_dir);
        return;
    }
    let scale = args.scale;
    banner("Replay throughput: packed-trace decode + cycle simulation", scale);

    let program = ProgramId::Hmmsearch;
    let mut tape = Tape::new(Recorder::new());
    let start = Instant::now();
    registry::run(&mut tape, program, Variant::Original, scale, REPRO_SEED);
    let record_secs = start.elapsed().as_secs_f64();
    let (static_program, rec) = tape.finish();
    if rec.overflowed() {
        eprintln!("{ARTIFACT}: {program} trace exceeded the recorder capacity");
        std::process::exit(1);
    }
    let recording = rec.into_recording(static_program);
    let ops = recording.len() as u64;
    println!(
        "{program}: {ops} ops recorded in {record_secs:.2}s, {:.1} bytes/op packed\n",
        recording.bytes_per_op()
    );

    let platforms = PlatformConfig::all();
    let mut table = TextTable::new(&["platform", "replay (s)", "Mops/s", "cycles"]);
    let mut json = JsonReport::new(ARTIFACT, Some(scale));

    // One sequential pass per platform: decode + simulate, the
    // per-platform regression signal.
    let mut sequential = Vec::new();
    let mut sequential_secs = 0.0;
    for platform in platforms.iter() {
        let mut sim = CycleSim::new(*platform);
        let start = Instant::now();
        recording.replay(&mut sim);
        let secs = start.elapsed().as_secs_f64();
        sequential_secs += secs;
        let result = sim.into_result();
        let mops = ops as f64 / secs / 1e6;
        table.row_owned(vec![
            platform.name.to_string(),
            format!("{secs:.3}"),
            format!("{mops:.1}"),
            result.cycles.to_string(),
        ]);
        json.value(&format!("mops_per_sec/{}", platform.name), Json::F64(mops));
        sequential.push(result);
    }
    let platform_ops = ops * platforms.len() as u64;
    let sequential_mops = platform_ops as f64 / sequential_secs / 1e6;
    table.row_owned(vec![
        "sequential total".to_string(),
        format!("{sequential_secs:.3}"),
        format!("{sequential_mops:.1}"),
        String::new(),
    ]);

    // Per-op bank baseline: one decode drives all four platforms, but
    // each decoded op is handed to every simulator before the next is
    // decoded — the pre-block replay loop, kept as the comparison row
    // for the blocked path below.
    let mut per_op_bank: Vec<CycleSim> = platforms.iter().map(|&p| CycleSim::new(p)).collect();
    let start = Instant::now();
    {
        let static_program = recording.program();
        use bioperf_trace::TraceConsumer;
        for op in recording.iter() {
            for sim in per_op_bank.iter_mut() {
                sim.consume(&op, static_program);
            }
        }
        for sim in per_op_bank.iter_mut() {
            sim.finish(static_program);
        }
    }
    let per_op_secs = start.elapsed().as_secs_f64();
    let per_op_mops = platform_ops as f64 / per_op_secs / 1e6;
    for (platform, (banked, solo)) in platforms.iter().zip(per_op_bank.iter().zip(&sequential)) {
        if banked.result() != *solo {
            eprintln!(
                "{ARTIFACT}: {}: per-op bank replay diverged from sequential replay",
                platform.name
            );
            std::process::exit(1);
        }
    }
    table.row_owned(vec![
        "bank (per-op)".to_string(),
        format!("{per_op_secs:.3}"),
        format!("{per_op_mops:.1}"),
        String::new(),
    ]);

    // The blocked bank pass: the stream is decoded into SoA op blocks and
    // each simulator consumes a whole block at a time — the suite's
    // production replay path.
    let block_ops = effective_block_ops(&args);
    let mut bank: Vec<CycleSim> = platforms.iter().map(|&p| CycleSim::new(p)).collect();
    let start = Instant::now();
    recording.replay_bank_blocks(&mut bank, block_ops);
    let bank_secs = start.elapsed().as_secs_f64();
    let bank_mops = platform_ops as f64 / bank_secs / 1e6;
    for (platform, (banked, solo)) in platforms.iter().zip(bank.iter().zip(&sequential)) {
        if banked.result() != *solo {
            eprintln!("{ARTIFACT}: {}: bank replay diverged from sequential replay", platform.name);
            std::process::exit(1);
        }
    }
    table.row_owned(vec![
        format!("bank ({block_ops}-op blocks)"),
        format!("{bank_secs:.3}"),
        format!("{bank_mops:.1}"),
        String::new(),
    ]);

    // The streamed pass: the same recording spilled to disk segments and
    // replayed through the bank with background prefetch — the spill
    // mode's production path, verified bit-identical to the in-memory
    // bank before its row is trusted.
    let segment_ops = effective_segment_ops(&args);
    let seg_dir = std::env::temp_dir().join(format!("bioperf-replay-seg-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&seg_dir);
    let segmented = match segment_recording(&recording, &seg_dir, segment_ops) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("{ARTIFACT}: spilling the recording failed: {e}");
            std::process::exit(1);
        }
    };
    let (streamed, streamed_secs) = streamed_bank(&segmented, &platforms);
    let _ = std::fs::remove_dir_all(&seg_dir);
    let streamed_mops = platform_ops as f64 / streamed_secs / 1e6;
    for (platform, (a, b)) in platforms.iter().zip(streamed.iter().zip(&sequential)) {
        if a != b {
            eprintln!(
                "{ARTIFACT}: {}: streamed replay diverged from sequential replay",
                platform.name
            );
            std::process::exit(1);
        }
    }
    table.row_owned(vec![
        format!("streamed bank ({} segs)", segmented.segment_count()),
        format!("{streamed_secs:.3}"),
        format!("{streamed_mops:.1}"),
        String::new(),
    ]);
    println!("{}", table.render());

    json.value("ops", Json::U64(ops));
    json.value("bytes_per_op", Json::F64(recording.bytes_per_op()));
    json.value("block_ops", Json::U64(block_ops as u64));
    json.value("mops_per_sec/total", Json::F64(sequential_mops));
    json.value("mops_per_sec/bank_per_op", Json::F64(per_op_mops));
    json.value("mops_per_sec/bank_total", Json::F64(bank_mops));
    json.value("mops_per_sec/streamed_bank", Json::F64(streamed_mops));
    json.value("segments", Json::U64(segmented.segment_count() as u64));
    json.note("one hmmsearch recording; each platform replayed sequentially, all four off one per-op bank decode, off one block-batched bank decode, then off one streamed segment decode");
    report_peak_rss(&mut json);
    json.write_if_requested(&args_to_bench(&args));
    enforce_floor("bank", bank_mops, args.min_mops);
}

/// Adapter so [`JsonReport::write_if_requested`] (which takes the shared
/// [`bioperf_bench::BenchArgs`]) works with this binary's extended
/// command line.
fn args_to_bench(args: &Args) -> bioperf_bench::BenchArgs {
    bioperf_bench::BenchArgs { scale: args.scale, json: args.json.clone() }
}
