//! Tables 2 and 3: cache performance of each application under the
//! paper's reference hierarchy.

use bioperf_bench::{banner, bench_args, JsonReport, REPRO_SEED};
use bioperf_cache::{CacheConfig, LatencyConfig};
use bioperf_core::orchestrate::characterize_all;
use bioperf_core::report::{pct2, pct3, TextTable};
use bioperf_kernels::{ProgramId, Scale};

fn main() {
    let args = bench_args("table2_cache_perf", Scale::Medium);
    let scale = args.scale;
    banner("Table 2: cache performance (local miss rates and AMAT)", scale);

    let lat = LatencyConfig::alpha21264();
    println!("Table 3 configuration:");
    println!("  L1 data cache : {}", CacheConfig::new(64 * 1024, 2, 64));
    println!("  L2 unified    : {}", CacheConfig::new(4 * 1024 * 1024, 1, 64));
    println!("  write policy  : write back, write allocate");
    println!("  latencies     : L1 {} / L2 +{} / memory +{} cycles", lat.l1, lat.l2, lat.memory);
    println!();

    let mut table = TextTable::new(&["program", "L1 local", "L2 local", "overall", "AMAT"]);
    let (mut s1, mut s2, mut so, mut sa) = (0.0, 0.0, 0.0, 0.0);
    let (mut g1, mut g2) = (0.0f64, 0.0f64);
    let n = ProgramId::ALL.len() as f64;
    for (program, r) in characterize_all(scale, REPRO_SEED, 0) {
        let m1 = r.cache.l1.load_miss_ratio();
        let m2 = r.cache.l2.load_miss_ratio();
        let overall = r.cache.overall_load_memory_ratio();
        s1 += m1;
        s2 += m2;
        so += overall;
        sa += r.amat;
        g1 += (m1.max(1e-9)).ln();
        g2 += (m2.max(1e-9)).ln();
        table.row_owned(vec![
            program.name().to_string(),
            pct2(m1),
            pct2(m2),
            pct3(overall),
            format!("{:.2}", r.amat),
        ]);
    }
    table.row_owned(vec![
        "average".to_string(),
        pct2(s1 / n),
        pct2(s2 / n),
        pct3(so / n),
        format!("{:.2}", sa / n),
    ]);
    table.row_owned(vec![
        "gmean".to_string(),
        pct2((g1 / n).exp()),
        pct2((g2 / n).exp()),
        "".to_string(),
        "".to_string(),
    ]);
    println!("{}", table.render());
    println!("Paper shape: L1 local load miss rates ≪ 2%, overall memory rate ~0.03%,");
    println!("so AMAT sits within a few percent of the 3-cycle L1 hit latency.");

    let mut json = JsonReport::new("table2_cache_perf", Some(scale));
    json.table("table2", &table);
    json.note("L1 local load miss rates well under 2%; AMAT near the L1 hit latency");
    json.write_if_requested(&args);
}
