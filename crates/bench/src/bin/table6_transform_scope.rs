//! Table 6: static scope of the source-level load transformations.

use bioperf_bench::{banner, bench_args_no_scale, JsonReport};
use bioperf_core::report::TextTable;
use bioperf_kernels::{transform_summary, Scale};

fn main() {
    let args = bench_args_no_scale("table6_transform_scope");
    banner("Table 6: static loads and source lines involved in the transformations", Scale::Test);

    let mut table = TextTable::new(&["program", "static loads considered", "lines of code involved"]);
    for row in transform_summary() {
        table.row_owned(vec![
            row.program.name().to_string(),
            row.static_loads_considered.to_string(),
            row.lines_involved.to_string(),
        ]);
    }
    println!("{}", table.render());
    println!("Paper shape: the transformations are tiny — between 1 and 19 static loads");
    println!("and 5-32 source lines per program; blast, fasta, and promlk offered no");
    println!("source-level scheduling opportunity and are not transformed.");

    let mut json = JsonReport::new("table6_transform_scope", None);
    json.table("table6", &table);
    json.note("blast, fasta, and promlk are not transformed");
    json.write_if_requested(&args);
}
