//! The design-space sweep snapshot: runs the smoke grid over every
//! transformed program and writes each program's Pareto frontier as one
//! JSON document (`BENCH_sweep.json` at the repository root; CI
//! regenerates and schema-checks it on every push).
//!
//! The sweep runs **twice** — once through the factored two-pass
//! pipeline and once through the unfactored oracle — and prints a
//! wall-clock / cells-per-second comparison of the two, after asserting
//! their measurements are bit-identical. `--min-speedup <x>` turns the
//! comparison into a regression gate: exit status 1 if the factored
//! path is less than `x`× faster. `--grid standard` swaps in the
//! 576-cell exploration grid (the configuration the speedup target is
//! specified against).
//!
//! `--check` mode does not run anything: it parses an existing document
//! and verifies its `bioperf-sweep/v1` shape, failing with exit status 1
//! on drift — the guard CI runs against the committed artifact.

use std::path::PathBuf;
use std::time::Instant;

use bioperf_bench::{banner, usage as usage_line, REPRO_SEED, USAGE_EXIT};
use bioperf_core::sweep::{run_sweep, SweepConfig, SweepGrid, SweepResult, SWEEP_SCHEMA};
use bioperf_kernels::Scale;
use bioperf_metrics::{json, Json};

const ARTIFACT: &str = "bench_sweep";

fn usage() -> String {
    format!(
        "{} [--jobs <n>] [--out <path>] [--grid smoke|standard] [--min-speedup <x>] [--check]",
        usage_line(ARTIFACT, true).trim_end_matches(" [--json <path>]")
    )
}

fn bail(msg: &str) -> ! {
    eprintln!("{ARTIFACT}: {msg}");
    eprintln!("{}", usage());
    std::process::exit(USAGE_EXIT);
}

struct Args {
    scale: Scale,
    jobs: usize,
    out: PathBuf,
    grid: SweepGrid,
    min_speedup: Option<f64>,
    check: bool,
}

fn parse_args() -> Args {
    let mut parsed = Args {
        scale: Scale::Test,
        jobs: 0,
        out: PathBuf::from("BENCH_sweep.json"),
        grid: SweepGrid::smoke(),
        min_speedup: None,
        check: false,
    };
    let mut scale_seen = false;
    let argv: Vec<String> = std::env::args().skip(1).collect();
    if argv.iter().any(|a| a == "--help" || a == "-h") {
        println!("{}", usage());
        std::process::exit(0);
    }
    let mut it = argv.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--jobs" => match it.next().and_then(|v| v.parse().ok()) {
                Some(n) => parsed.jobs = n,
                None => bail("--jobs needs a number"),
            },
            "--out" => match it.next() {
                Some(path) if !path.is_empty() => parsed.out = PathBuf::from(path),
                _ => bail("--out needs a file path"),
            },
            "--grid" => match it.next().map(String::as_str) {
                Some("smoke") => parsed.grid = SweepGrid::smoke(),
                Some("standard") => parsed.grid = SweepGrid::standard(),
                _ => bail("--grid needs smoke or standard"),
            },
            "--min-speedup" => match it.next().and_then(|v| v.parse::<f64>().ok()) {
                Some(x) if x > 0.0 => parsed.min_speedup = Some(x),
                _ => bail("--min-speedup needs a positive number"),
            },
            "--check" => parsed.check = true,
            s if s.starts_with('-') => bail(&format!("unknown option '{s}'")),
            s => {
                if scale_seen {
                    bail(&format!("unexpected extra argument '{s}'"));
                }
                match Scale::from_name(s) {
                    Some(scale) => parsed.scale = scale,
                    None => bail(&format!("unknown scale '{s}' (use test|small|medium|large)")),
                }
                scale_seen = true;
            }
        }
    }
    parsed
}

/// The schema invariants `--check` pins (and the `cli_sweep` test
/// re-checks against the committed artifact).
fn check_document(doc: &Json) -> Result<(), String> {
    if doc.get("schema").and_then(Json::as_str) != Some(SWEEP_SCHEMA) {
        return Err(format!("schema tag is not {SWEEP_SCHEMA:?}"));
    }
    if doc.keys() != vec!["schema", "deterministic"] {
        return Err(format!("unexpected top-level keys {:?}", doc.keys()));
    }
    let det = doc.get("deterministic").ok_or("missing deterministic section")?;
    if det.keys() != vec!["config", "skipped", "frontier"] {
        return Err(format!("unexpected deterministic keys {:?}", det.keys()));
    }
    let config = det.get("config").ok_or("missing config")?;
    if config.keys() != vec!["scale", "seed", "grid_hash", "cells", "programs", "complete"] {
        return Err(format!("unexpected config keys {:?}", config.keys()));
    }
    if config.get("complete").and_then(Json::as_u64) != Some(1) {
        return Err("committed sweep artifact must be complete".into());
    }
    let frontier = det.get("frontier").ok_or("missing frontier section")?;
    for program in frontier.keys() {
        let points = frontier.get(program).expect("listed key");
        let Json::Array(points) = points else {
            return Err(format!("frontier.{program} is not an array"));
        };
        if points.is_empty() {
            return Err(format!("frontier.{program} is empty"));
        }
        for point in points {
            for key in
                ["cell", "config", "amat", "speedup", "cost", "cycles_original", "cycles_transformed"]
            {
                if point.get(key).is_none() {
                    return Err(format!("a frontier.{program} point is missing {key:?}"));
                }
            }
        }
    }
    Ok(())
}

fn main() {
    let args = parse_args();

    if args.check {
        let text = std::fs::read_to_string(&args.out)
            .unwrap_or_else(|e| bail(&format!("reading {}: {e}", args.out.display())));
        let doc = json::parse(&text).unwrap_or_else(|e| {
            eprintln!("{ARTIFACT}: {} does not parse: {e}", args.out.display());
            std::process::exit(1);
        });
        if let Err(msg) = check_document(&doc) {
            eprintln!("{ARTIFACT}: {}: {msg}", args.out.display());
            std::process::exit(1);
        }
        println!("{}: schema ok ({SWEEP_SCHEMA})", args.out.display());
        return;
    }

    banner("Design-space sweep: Pareto frontiers + factored-path timing", args.scale);
    let cfg = SweepConfig {
        scale: args.scale,
        seed: REPRO_SEED,
        jobs: args.jobs,
        programs: Vec::new(), // every transformed program
        grid: args.grid.clone(),
        checkpoint: None,
        max_cells: 0,
        factor: true,
    };
    let timed = |cfg: &SweepConfig| -> (SweepResult, f64) {
        let start = Instant::now();
        let result = run_sweep(cfg).unwrap_or_else(|e| {
            eprintln!("{ARTIFACT}: {e}");
            std::process::exit(1);
        });
        (result, start.elapsed().as_secs_f64())
    };
    let (result, factored_secs) = timed(&cfg);
    let (oracle, unfactored_secs) = timed(&SweepConfig { factor: false, ..cfg });

    // The comparison is only meaningful if the two strategies agree; a
    // mismatch here is a correctness bug, not a performance result.
    for (p, per_cell) in result.measures.iter().enumerate() {
        if *per_cell != oracle.measures[p] {
            eprintln!(
                "{ARTIFACT}: factored and unfactored measurements diverge for {}",
                result.programs[p].name()
            );
            std::process::exit(1);
        }
    }

    let cells = result.computed as f64;
    let speedup = unfactored_secs / factored_secs;
    println!(
        "factored:   {factored_secs:8.2} s  {:9.1} cells/s",
        cells / factored_secs
    );
    println!(
        "unfactored: {unfactored_secs:8.2} s  {:9.1} cells/s",
        cells / unfactored_secs
    );
    println!("speedup:    {speedup:8.2} x");

    print!("{}", result.render_table());
    let doc = result.to_json();
    check_document(&doc).expect("freshly generated sweep document must satisfy its own schema");
    std::fs::write(&args.out, doc.render_pretty())
        .unwrap_or_else(|e| panic!("writing {}: {e}", args.out.display()));
    println!(
        "wrote {} ({} cells x {} programs, {} skipped)",
        args.out.display(),
        result.grid.cells(),
        result.programs.len(),
        result.skipped.len()
    );

    if let Some(floor) = args.min_speedup {
        if speedup < floor {
            eprintln!(
                "{ARTIFACT}: factored sweep speedup {speedup:.2}x is below the {floor:.2}x floor"
            );
            std::process::exit(1);
        }
        println!("speedup floor ok ({speedup:.2}x >= {floor:.2}x)");
    }
}
