//! Table 5: profile of the most frequently executed loads in hmmsearch,
//! mapped back to source.

use bioperf_bench::{banner, bench_args, JsonReport, REPRO_SEED};
use bioperf_core::characterize::characterize_program;
use bioperf_core::report::{pct, pct2, TextTable};
use bioperf_kernels::{ProgramId, Scale};

fn main() {
    let args = bench_args("table5_hot_loads", Scale::Medium);
    let scale = args.scale;
    banner("Table 5: hot-load profile of hmmsearch", scale);

    let r = characterize_program(ProgramId::Hmmsearch, scale, REPRO_SEED);
    let mut table = TextTable::new(&[
        "load index",
        "frequency",
        "L1 miss rate",
        "branch mispredict",
        "function",
        "line",
    ]);
    for load in &r.hot_loads {
        table.row_owned(vec![
            load.sid.to_string(),
            pct(load.frequency),
            pct2(load.l1_miss_rate),
            pct(load.branch_misprediction_rate),
            load.loc.function.to_string(),
            load.loc.line.to_string(),
        ]);
    }
    println!("{}", table.render());
    println!(
        "({} static loads cover {} dynamic loads in total)",
        r.static_loads,
        r.sequences.total_loads
    );
    println!();
    println!("Paper shape: the hot loads sit in P7Viterbi's match-state IF conditions,");
    println!("hit L1 almost always (<0.1% misses), yet feed branches that mispredict");
    println!("at 10-40%. The paper's rows map to fast_algorithms.c:132-136.");

    let mut json = JsonReport::new("table5_hot_loads", Some(scale));
    json.table("table5", &table);
    json.note(&format!(
        "{} static loads cover {} dynamic loads in total",
        r.static_loads, r.sequences.total_loads
    ));
    json.write_if_requested(&args);
}
