//! The paper's Section 3 workflow, automated: profile a program, detect
//! the problem load sequences, and print ranked source-level scheduling
//! candidates with the metrics the authors used to pick theirs.

use bioperf_bench::{banner, bench_args, JsonReport, REPRO_SEED};
use bioperf_core::candidates::{find_candidates, CandidateCriteria};
use bioperf_core::orchestrate::characterize_all;
use bioperf_core::report::{pct, pct2, TextTable};
use bioperf_kernels::Scale;

fn main() {
    let args = bench_args("find_candidates", Scale::Small);
    let scale = args.scale;
    banner("Section 3 workflow: ranked load-scheduling candidates per program", scale);

    let mut json = JsonReport::new("find_candidates", Some(scale));
    for (program, report) in characterize_all(scale, REPRO_SEED, 0) {
        let candidates = find_candidates(&report, CandidateCriteria::default());
        println!(
            "{} — {} candidate static loads (of {} total):",
            program,
            candidates.len(),
            report.static_loads
        );
        if candidates.is_empty() {
            println!("  (no frequently executed loads around hard branches)\n");
            continue;
        }
        let mut table = TextTable::new(&[
            "  location",
            "pattern",
            "freq",
            "L1 miss",
            "fed mispredict",
            "after hard",
            "score",
        ]);
        for c in candidates.iter().take(6) {
            table.row_owned(vec![
                format!("  {}:{}", c.loc.function, c.loc.line),
                c.reason.to_string(),
                pct(c.frequency),
                pct2(c.l1_miss_rate),
                pct(c.fed_branch_misprediction_rate),
                pct(c.after_hard_branch_fraction),
                format!("{:.4}", c.score),
            ]);
        }
        println!("{}", table.render());
        json.table(program.name(), &table);
    }
    println!("Paper shape: the hmm programs yield the most candidates (their Table 6 rows");
    println!("considered 14-19 loads); promlk yields few or none. Every candidate hits L1");
    println!("almost always — the latency being scheduled around is the *hit* latency.");

    json.note("the hmm programs yield the most candidates; promlk few or none");
    json.write_if_requested(&args);
}
