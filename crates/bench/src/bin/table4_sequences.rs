//! Table 4: load→branch sequences (with the misprediction rate of their
//! branches) and loads right after hard-to-predict branches.

use bioperf_bench::{banner, bench_args, JsonReport, REPRO_SEED};
use bioperf_core::orchestrate::characterize_all;
use bioperf_core::report::{pct, TextTable};
use bioperf_kernels::Scale;

fn main() {
    let args = bench_args("table4_sequences", Scale::Medium);
    let scale = args.scale;
    banner("Table 4: load-to-branch sequences and loads after hard branches", scale);

    let mut table = TextTable::new(&[
        "program",
        "load→branch",
        "seq branch mispredict",
        "load after hard branch",
        "overall mispredict",
    ]);
    for (program, r) in characterize_all(scale, REPRO_SEED, 0) {
        let s = r.sequences;
        table.row_owned(vec![
            program.name().to_string(),
            pct(s.load_to_branch_fraction()),
            pct(s.sequence_branch_misprediction_rate()),
            pct(s.loads_after_hard_branch_fraction()),
            pct(r.overall_branch_misprediction_rate),
        ]);
    }
    println!("{}", table.render());
    println!("Paper shape: the hmm programs top both columns (>90% load→branch, >55%");
    println!("after-hard-branch); promlk is lowest; sequence branches mispredict at 6-20%.");

    let mut json = JsonReport::new("table4_sequences", Some(scale));
    json.table("table4", &table);
    json.note("the hmm programs top both sequence columns; promlk is lowest");
    json.write_if_requested(&args);
}
