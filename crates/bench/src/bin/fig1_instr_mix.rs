//! Figure 1: instruction profile (loads / stores / conditional branches /
//! other) of the nine BioPerf applications.

use bioperf_bench::{banner, bench_args, JsonReport, REPRO_SEED};
use bioperf_core::orchestrate::characterize_all;
use bioperf_core::report::{pct, TextTable};
use bioperf_isa::OpClass;
use bioperf_kernels::{ProgramId, Scale};

fn main() {
    let args = bench_args("fig1_instr_mix", Scale::Medium);
    let scale = args.scale;
    banner("Figure 1: instruction mix of the BioPerf applications", scale);

    let mut table = TextTable::new(&["program", "loads", "stores", "cond branches", "other"]);
    let mut sums = [0.0f64; 4];
    for (program, r) in characterize_all(scale, REPRO_SEED, 0) {
        let fr: Vec<f64> = OpClass::ALL.iter().map(|&c| r.mix.class_fraction(c)).collect();
        for (s, f) in sums.iter_mut().zip(&fr) {
            *s += f;
        }
        table.row_owned(vec![
            program.name().to_string(),
            pct(fr[0]),
            pct(fr[1]),
            pct(fr[2]),
            pct(fr[3]),
        ]);
    }
    let n = ProgramId::ALL.len() as f64;
    table.row_owned(vec![
        "average".to_string(),
        pct(sums[0] / n),
        pct(sums[1] / n),
        pct(sums[2] / n),
        pct(sums[3] / n),
    ]);
    println!("{}", table.render());
    println!("Paper shape: loads average ~30% of executed instructions across the suite.");

    let mut json = JsonReport::new("fig1_instr_mix", Some(scale));
    json.table("figure1", &table);
    json.note("loads average ~30% of executed instructions across the suite");
    json.write_if_requested(&args);
}
