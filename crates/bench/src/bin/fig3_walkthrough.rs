//! Figures 3–5 walkthrough: the paper's cycle-by-cycle narrative of why
//! the load→branch sequence in hmmsearch's machine code defeats
//! latency hiding, and how hoisting fixes it.
//!
//! The paper walks the BB1→BB3→BB5 code of Figure 3 through an Alpha-like
//! pipeline (Figure 4), then shows the hoisted code of Figure 5. This
//! binary builds those exact instruction sequences, runs them through the
//! Alpha timing model with timeline recording, and prints per-op
//! dispatch/issue/complete cycles for both shapes.

use bioperf_bench::{banner, bench_args_no_scale, JsonReport};
use bioperf_isa::here;
use bioperf_metrics::Json;
use bioperf_kernels::Scale;
use bioperf_pipe::{CycleSim, PlatformConfig};
use bioperf_trace::{Tape, Tracer};

/// One iteration of the Figure 3 original shape:
/// BB1: two loads → add → compare → branch (hard to predict)
/// BB2: store (conditionally executed)
/// BB3: two loads → add → load(mc) → compare → branch
/// BB5: two loads → add …
fn original_iteration<T: Tracer>(t: &mut T, mem: &[i64; 8], hard1: bool, hard2: bool) {
    const F: &str = "fig3_original";
    // BB1
    let a = t.int_load(here!(F), &mem[0]);
    let b = t.int_load(here!(F), &mem[1]);
    let s = t.int_op(here!(F), &[a, b]);
    let c = t.int_op(here!(F), &[s]);
    if t.branch(here!(F), &[c], hard1) {
        // BB2: the intervening store that blocks compiler hoisting.
        t.int_store(here!(F), &mem[4], s);
    }
    // BB3
    let a = t.int_load(here!(F), &mem[2]);
    let b = t.int_load(here!(F), &mem[3]);
    let s2 = t.int_op(here!(F), &[a, b]);
    let mc = t.int_load(here!(F), &mem[4]); // the mc reload
    let c = t.int_op(here!(F), &[s2, mc]);
    if t.branch(here!(F), &[c], hard2) {
        t.int_store(here!(F), &mem[4], s2);
    }
    // BB5
    let a = t.int_load(here!(F), &mem[5]);
    let b = t.int_load(here!(F), &mem[6]);
    let s3 = t.int_op(here!(F), &[a, b]);
    t.int_op(here!(F), &[s3]);
}

/// The Figure 5(b) hoisted shape: all six loads first, then the compares
/// and selects — no load is control-dependent on the hard branches.
fn hoisted_iteration<T: Tracer>(t: &mut T, mem: &[i64; 8], hard1: bool, hard2: bool) {
    const F: &str = "fig5_hoisted";
    let a1 = t.int_load(here!(F), &mem[0]);
    let b1 = t.int_load(here!(F), &mem[1]);
    let a2 = t.int_load(here!(F), &mem[2]);
    let b2 = t.int_load(here!(F), &mem[3]);
    let a3 = t.int_load(here!(F), &mem[5]);
    let b3 = t.int_load(here!(F), &mem[6]);
    let s1 = t.int_op(here!(F), &[a1, b1]);
    let s2 = t.int_op(here!(F), &[a2, b2]);
    let s3 = t.int_op(here!(F), &[a3, b3]);
    let c1 = t.int_op(here!(F), &[s1]);
    let m1 = t.select(here!(F), &[c1, s1, s2], hard1);
    let c2 = t.int_op(here!(F), &[m1, s2]);
    let m2 = t.select(here!(F), &[c2, m1, s3], hard2);
    t.int_store(here!(F), &mem[4], m2);
    t.int_op(here!(F), &[m2]);
}

fn run(label: &str, f: impl Fn(&mut Tape<CycleSim>, &[i64; 8], bool, bool)) -> u64 {
    let mem = [10i64, 20, 30, 40, 50, 60, 70, 80];
    let mut tape = Tape::new(CycleSim::new(PlatformConfig::alpha21264()).with_timeline());
    // Warm the caches and predictor with a biased prologue, then run the
    // interesting iterations with adversarial outcomes.
    let mut state = 0x2545_F491u64;
    for _ in 0..300 {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
        f(&mut tape, &mem, (state >> 33) & 1 == 1, (state >> 34) & 1 == 1);
    }
    let (program, sim) = tape.finish();
    let result = sim.result();
    let timeline = sim.timeline().expect("timeline enabled");

    // Print the last iteration's ops, normalized to its first dispatch:
    // iterations vary in length (conditional stores), so find the last
    // occurrence of the iteration's first static instruction.
    let first_sid = timeline[0].sid;
    let last_start = timeline.iter().rposition(|op| op.sid == first_sid).expect("non-empty");
    let tail = &timeline[last_start..];
    let t0 = tail[0].dispatch;
    println!("--- {label} (one steady-state iteration, cycles relative to first dispatch) ---");
    println!("{:>3} {:<9} {:>8} {:>6} {:>9}  note", "#", "op", "dispatch", "issue", "complete");
    for (i, op) in tail.iter().enumerate() {
        let _ = program.get(op.sid);
        println!(
            "{:>3} {:<9} {:>8} {:>6} {:>9}  {}",
            i,
            op.kind.to_string(),
            op.dispatch - t0,
            op.issue - t0,
            op.complete - t0,
            if op.mispredicted { "MISPREDICT → redirect" } else { "" }
        );
    }
    println!(
        "total: {} cycles for {} instructions (IPC {:.2}), {} mispredicts\n",
        result.cycles,
        result.instructions,
        result.ipc(),
        result.mispredicts
    );
    result.cycles
}

fn main() {
    let args = bench_args_no_scale("fig3_walkthrough");
    banner("Figures 3-5: pipeline walkthrough of the load→branch pathology", Scale::Test);
    let orig = run("Figure 3: original (loads behind hard branches)", original_iteration);
    let hoisted = run("Figure 5: hoisted (loads first, branches become selects)", hoisted_iteration);
    println!(
        "hoisting speedup on this snippet: {:+.1}%",
        (orig as f64 / hoisted as f64 - 1.0) * 100.0
    );

    let mut json = JsonReport::new("fig3_walkthrough", None);
    json.value(
        "summary",
        Json::object(vec![
            ("original_cycles", Json::U64(orig)),
            ("hoisted_cycles", Json::U64(hoisted)),
            ("speedup", Json::F64(orig as f64 / hoisted as f64)),
        ]),
    );
    json.note("cycle totals of the Figure 3 vs Figure 5 snippet on the Alpha model");
    json.write_if_requested(&args);
    println!("\nThe original shape resolves its branches only after a 3-cycle L1 hit plus");
    println!("an add and a compare, so every misprediction redirect is charged that much");
    println!("later — and the loads fetched after the redirect start from an empty window.");
    println!("The hoisted shape issues all loads up front and replaces the hard branches");
    println!("with conditional moves: there is nothing left to mispredict.");
}
