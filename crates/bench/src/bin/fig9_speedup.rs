//! Figure 9: speedup of the load-transformed code over the original, per
//! program and platform, with harmonic means.

use bioperf_bench::{banner, bench_args, JsonReport, REPRO_SEED};
use bioperf_core::orchestrate::evaluate_all;
use bioperf_core::report::TextTable;
use bioperf_kernels::{ProgramId, Scale};
use bioperf_pipe::PlatformConfig;

fn main() {
    let args = bench_args("fig9_speedup", Scale::Large);
    let scale = args.scale;
    banner("Figure 9: speedup of load-transformed over original code", scale);

    let matrix = evaluate_all(scale, REPRO_SEED, 0).unwrap_or_else(|e| {
        eprintln!("fig9_speedup: {e}");
        std::process::exit(1);
    });
    let platforms: Vec<&str> = PlatformConfig::all().iter().map(|p| p.name).collect();

    let mut header = vec!["program"];
    header.extend(platforms.iter());
    let mut table = TextTable::new(&header);
    for program in ProgramId::TRANSFORMED {
        let mut row = vec![program.name().to_string()];
        for platform in &platforms {
            let cell =
                matrix.cells.iter().find(|c| c.program == program && c.platform == *platform);
            row.push(match cell {
                None => "n.a.".to_string(),
                Some(c) => format!("{:+.1}%", (c.speedup() - 1.0) * 100.0),
            });
        }
        table.row_owned(row);
    }
    let mut row = vec!["harmonic mean".to_string()];
    for platform in &platforms {
        let hm = matrix.harmonic_mean_speedup(platform);
        row.push(format!("{:+.1}%", (hm - 1.0) * 100.0));
    }
    table.row_owned(row);
    println!("{}", table.render());
    println!("Paper Figure 9 harmonic means: Alpha +25.4%, PowerPC +15.1%, Pentium 4 +4.3%,");
    println!("Itanium +12.7% — with hmmsearch peaking at +92% on the Alpha. Expected shape:");
    println!("the hmm programs dominate, the Alpha benefits most, the register-scarce");
    println!("2-cycle-L1 Pentium 4 benefits least, and the in-order Itanium still gains.");

    let mut json = JsonReport::new("fig9_speedup", Some(scale));
    json.table("figure9", &table);
    json.note("paper harmonic means: Alpha +25.4%, PowerPC +15.1%, P4 +4.3%, Itanium +12.7%");
    json.write_if_requested(&args);
}
