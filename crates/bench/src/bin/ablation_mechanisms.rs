//! Ablation study over the timing model's mechanisms (the design choices
//! DESIGN.md calls out): which modeled effect contributes how much of the
//! simulated speedup, per platform.
//!
//! Mechanisms toggled:
//! * **if-conversion** — whether the transformed code's selects execute
//!   as conditional moves or as compare-and-branch,
//! * **register pressure** — the LRU spill model (given effectively
//!   unlimited registers),
//! * **L1 latency** — counterfactual single-cycle L1 (the paper's core
//!   claim: the benefit comes from hiding the multi-cycle hit latency),
//! * **misprediction penalty** — a hypothetical free redirect.

use bioperf_bench::{banner, bench_args, JsonReport, REPRO_SEED};
use bioperf_core::evaluate::evaluate_program;
use bioperf_core::report::TextTable;
use bioperf_kernels::{ProgramId, Scale};
use bioperf_pipe::PlatformConfig;

fn speedup(program: ProgramId, platform: PlatformConfig, scale: Scale) -> f64 {
    evaluate_program(program, platform, scale, REPRO_SEED).speedup()
}

fn main() {
    let args = bench_args("ablation_mechanisms", Scale::Small);
    let scale = args.scale;
    banner("Ablation: which modeled mechanism carries the speedup", scale);
    let program = ProgramId::Hmmsearch;
    println!("program: {program}\n");

    let mut table = TextTable::new(&["variant", "Alpha 21264", "PowerPC G5", "Pentium 4", "Itanium 2"]);
    let base = PlatformConfig::all();

    let row = |label: &str, tweak: &dyn Fn(&mut PlatformConfig)| {
        let mut cells = vec![label.to_string()];
        for p in base {
            let mut cfg = p;
            tweak(&mut cfg);
            cells.push(format!("{:+.1}%", (speedup(program, cfg, scale) - 1.0) * 100.0));
        }
        cells
    };

    let baseline = row("baseline model", &|_| {});
    table.row_owned(baseline);
    table.row_owned(row("force if-conversion ON", &|c| c.if_conversion = true));
    table.row_owned(row("force if-conversion OFF", &|c| c.if_conversion = false));
    table.row_owned(row("no register pressure (256 regs)", &|c| c.logical_regs = 256));
    table.row_owned(row("single-cycle L1", &|c| {
        c.int_load_latency = 1;
        c.fp_load_latency = 2;
    }));
    table.row_owned(row("free mispredicts (penalty 0)", &|c| c.mispredict_penalty = 0));
    table.row_owned(row("double mispredict penalty", &|c| c.mispredict_penalty *= 2));
    println!("{}", table.render());

    let mut json = JsonReport::new("ablation_mechanisms", Some(scale));
    json.table("mechanisms", &table);
    json.note("speedup of the transformed hmmsearch under each model tweak");
    json.write_if_requested(&args);

    println!("Reading guide:");
    println!(" * forcing if-conversion ON lifts the PowerPC/Pentium 4 to Alpha-like gains,");
    println!("   and forcing it OFF collapses the Alpha's — most of the cross-platform");
    println!("   spread is whether the ISA/compiler realizes the selects branchlessly;");
    println!(" * a single-cycle L1 trims the gain: part of the benefit is pure latency");
    println!("   hiding, and the rest is the load latency's contribution to *branch*");
    println!("   resolution delay, which the penalty rows scale directly;");
    println!(" * removing register pressure mainly helps the 8-register Pentium 4.");
}
