//! The full-suite metric snapshot: runs the nine-program
//! characterization plus the Table 8 evaluation and writes every paper
//! metric series, raw simulator event counter, and phase timing as one
//! JSON document (`BENCH_suite.json` at the repository root; CI
//! regenerates and schema-checks it on every push).
//!
//! `--check` mode does not run anything: it parses an existing document
//! and verifies its schema shape, failing with exit status 1 on drift —
//! the guard CI runs against the committed artifact.

use std::path::PathBuf;

use bioperf_bench::{banner, usage as usage_line, REPRO_SEED, USAGE_EXIT};
use bioperf_core::orchestrate::{run_suite, SuiteConfig, SUITE_SCHEMA};
use bioperf_kernels::Scale;
use bioperf_metrics::{json, Json};

const ARTIFACT: &str = "bench_suite";

fn usage() -> String {
    format!(
        "{} [--jobs <n>] [--out <path>] [--check]",
        usage_line(ARTIFACT, true).trim_end_matches(" [--json <path>]")
    )
}

fn bail(msg: &str) -> ! {
    eprintln!("{ARTIFACT}: {msg}");
    eprintln!("{}", usage());
    std::process::exit(USAGE_EXIT);
}

struct Args {
    scale: Scale,
    jobs: usize,
    out: PathBuf,
    check: bool,
}

fn parse_args() -> Args {
    let mut parsed =
        Args { scale: Scale::Test, jobs: 0, out: PathBuf::from("BENCH_suite.json"), check: false };
    let mut scale_seen = false;
    let argv: Vec<String> = std::env::args().skip(1).collect();
    if argv.iter().any(|a| a == "--help" || a == "-h") {
        println!("{}", usage());
        std::process::exit(0);
    }
    let mut it = argv.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--jobs" => match it.next().and_then(|v| v.parse().ok()) {
                Some(n) => parsed.jobs = n,
                None => bail("--jobs needs a number"),
            },
            "--out" => match it.next() {
                Some(path) if !path.is_empty() => parsed.out = PathBuf::from(path),
                _ => bail("--out needs a file path"),
            },
            "--check" => parsed.check = true,
            s if s.starts_with('-') => bail(&format!("unknown option '{s}'")),
            s => {
                if scale_seen {
                    bail(&format!("unexpected extra argument '{s}'"));
                }
                match Scale::from_name(s) {
                    Some(scale) => parsed.scale = scale,
                    None => bail(&format!("unknown scale '{s}' (use test|small|medium|large)")),
                }
                scale_seen = true;
            }
        }
    }
    parsed
}

/// The schema invariants `--check` pins (and the `bench_suite_schema`
/// test re-checks against the committed artifact).
fn check_document(doc: &Json) -> Result<(), String> {
    if doc.get("schema").and_then(Json::as_str) != Some(SUITE_SCHEMA) {
        return Err(format!("schema tag is not {SUITE_SCHEMA:?}"));
    }
    if doc.keys() != vec!["schema", "run", "deterministic"] {
        return Err(format!("unexpected top-level keys {:?}", doc.keys()));
    }
    let run = doc.get("run").ok_or("missing run section")?;
    for key in ["jobs", "workers", "jobs_per_worker", "replayed_ops", "ops_per_sec", "timings"] {
        if run.get(key).is_none() {
            return Err(format!("run section is missing {key:?}"));
        }
    }
    let det = doc.get("deterministic").ok_or("missing deterministic section")?;
    if det.keys() != vec!["config", "counters", "gauges", "histograms"] {
        return Err(format!("unexpected deterministic keys {:?}", det.keys()));
    }
    let config = det.get("config").ok_or("missing config")?;
    for key in ["scale", "seed", "programs", "eval_cells"] {
        if config.get(key).is_none() {
            return Err(format!("config is missing {key:?}"));
        }
    }
    if config.get("programs").and_then(Json::as_u64) != Some(9) {
        return Err("config.programs is not 9".into());
    }
    Ok(())
}

fn main() {
    let args = parse_args();

    if args.check {
        let text = std::fs::read_to_string(&args.out)
            .unwrap_or_else(|e| bail(&format!("reading {}: {e}", args.out.display())));
        let doc = json::parse(&text).unwrap_or_else(|e| {
            eprintln!("{ARTIFACT}: {} does not parse: {e}", args.out.display());
            std::process::exit(1);
        });
        if let Err(msg) = check_document(&doc) {
            eprintln!("{ARTIFACT}: {}: {msg}", args.out.display());
            std::process::exit(1);
        }
        println!("{}: schema ok ({SUITE_SCHEMA})", args.out.display());
        return;
    }

    banner("Suite metric snapshot: paper series + simulator events + timings", args.scale);
    let suite = run_suite(SuiteConfig {
        scale: args.scale,
        seed: REPRO_SEED,
        jobs: args.jobs,
        metrics: true,
        trace_cap: 0,
        spill: None,
    })
    .unwrap_or_else(|e| {
        eprintln!("{ARTIFACT}: {e}");
        std::process::exit(1);
    });
    let doc = suite.to_json();
    check_document(&doc).expect("freshly generated suite document must satisfy its own schema");
    std::fs::write(&args.out, doc.render_pretty())
        .unwrap_or_else(|e| panic!("writing {}: {e}", args.out.display()));
    println!(
        "wrote {} ({} programs, {} eval cells, {} metric series)",
        args.out.display(),
        suite.reports.len(),
        suite.eval.cells.len(),
        suite.metrics.len()
    );
}
