//! Ablation: can a prefetcher recover what the load transformation
//! recovers?
//!
//! The paper's argument implies it cannot: the programs' loads already
//! hit L1 almost always, so a prefetcher — which can only remove misses —
//! has nothing to remove. This harness runs each program's trace through
//! the reference hierarchy with no prefetcher, an (optimistic) next-line
//! prefetcher, and a stride prefetcher, and reports L1 miss rates and
//! AMAT side by side with the speedup the source transformation achieves
//! on the Alpha model.

use bioperf_bench::{banner, bench_args, JsonReport, REPRO_SEED};
use bioperf_cache::{alpha21264_hierarchy, CacheSim, Prefetcher};
use bioperf_core::evaluate::evaluate_program;
use bioperf_core::report::{pct2, TextTable};
use bioperf_kernels::{registry, ProgramId, Scale, Variant};
use bioperf_pipe::PlatformConfig;
use bioperf_trace::Tape;

fn miss_and_amat(program: ProgramId, scale: Scale, policy: Prefetcher) -> (f64, f64) {
    let hierarchy = alpha21264_hierarchy().with_prefetcher(policy);
    let mut tape = Tape::new(CacheSim::new(hierarchy));
    registry::run(&mut tape, program, Variant::Original, scale, REPRO_SEED);
    let (_, sim) = tape.finish();
    let h = sim.into_hierarchy();
    (h.stats().l1.load_miss_ratio(), h.amat())
}

fn main() {
    let args = bench_args("ablation_prefetch", Scale::Small);
    let scale = args.scale;
    banner("Ablation: prefetching vs the source transformation", scale);

    let mut table = TextTable::new(&[
        "program",
        "L1 miss (none)",
        "L1 miss (next-line)",
        "L1 miss (stride)",
        "AMAT (none)",
        "AMAT (stride)",
        "transform speedup",
    ]);
    for program in ProgramId::TRANSFORMED {
        let (m_none, a_none) = miss_and_amat(program, scale, Prefetcher::None);
        let (m_next, _) = miss_and_amat(program, scale, Prefetcher::NextLine);
        let (m_stride, a_stride) = miss_and_amat(program, scale, Prefetcher::Stride);
        let speedup =
            evaluate_program(program, PlatformConfig::alpha21264(), scale, REPRO_SEED).speedup();
        table.row_owned(vec![
            program.name().to_string(),
            pct2(m_none),
            pct2(m_next),
            pct2(m_stride),
            format!("{a_none:.3}"),
            format!("{a_stride:.3}"),
            format!("{:+.1}%", (speedup - 1.0) * 100.0),
        ]);
    }
    println!("{}", table.render());
    println!("Expected shape: prefetchers shave the (already tiny) miss rates, moving");
    println!("AMAT by hundredths of a cycle — while the source transformation, which");
    println!("attacks the *hit* latency's interaction with branches, gains whole");
    println!("percents to factors. Misses are not the problem; the paper's point.");

    let mut json = JsonReport::new("ablation_prefetch", Some(scale));
    json.table("prefetch", &table);
    json.note("prefetchers cannot recover what the source transformation recovers");
    json.write_if_requested(&args);
}
