//! Ablation: the paper's idealized no-aliasing measurement predictor vs
//! realistic shared-table predictors of various sizes.
//!
//! The paper's Table 4/5 misprediction rates come from a hybrid with a
//! private entry per static branch. This harness replays each program's
//! branch stream through that profiler *and* through aliased
//! (PC⊕history-indexed) hybrids, showing how much aliasing changes the
//! measured rates — i.e., whether the paper's idealization matters.

use bioperf_bench::{banner, bench_args, JsonReport, REPRO_SEED};
use bioperf_branch::{AliasedHybrid, BranchProfiler};
use bioperf_core::report::{pct, TextTable};
use bioperf_isa::{MicroOp, Program};
use bioperf_kernels::{registry, ProgramId, Scale, Variant};
use bioperf_trace::{Tape, TraceConsumer};

/// Feeds every conditional branch to all predictors under comparison.
#[derive(Debug)]
struct PredictorRace {
    ideal: BranchProfiler,
    aliased: Vec<(u32, AliasedHybrid)>,
}

impl PredictorRace {
    fn new(sizes: &[u32]) -> Self {
        Self {
            ideal: BranchProfiler::new(),
            aliased: sizes.iter().map(|&b| (b, AliasedHybrid::new(b))).collect(),
        }
    }
}

impl TraceConsumer for PredictorRace {
    fn consume(&mut self, op: &MicroOp, _program: &Program) {
        if op.kind.is_cond_branch() {
            self.ideal.observe(op.sid, op.taken);
            for (_, p) in &mut self.aliased {
                p.observe(op.sid, op.taken);
            }
        }
    }
}

fn main() {
    let args = bench_args("ablation_predictor", Scale::Small);
    let scale = args.scale;
    banner("Ablation: no-aliasing measurement predictor vs realistic tables", scale);

    const SIZES: [u32; 3] = [10, 12, 16];
    let mut table = TextTable::new(&[
        "program",
        "no aliasing (paper)",
        "2^10 shared",
        "2^12 shared",
        "2^16 shared",
    ]);
    for program in ProgramId::ALL {
        let mut tape = Tape::new(PredictorRace::new(&SIZES));
        registry::run(&mut tape, program, Variant::Original, scale, REPRO_SEED);
        let (_, race) = tape.finish();
        let mut row = vec![
            program.name().to_string(),
            pct(race.ideal.overall_misprediction_rate()),
        ];
        for (_, p) in &race.aliased {
            row.push(pct(p.misprediction_rate()));
        }
        table.row_owned(row);
    }
    println!("{}", table.render());
    println!("Expected shape: the bio kernels have so few static branches that aliasing");
    println!("barely moves their rates even at modest table sizes — the paper's");
    println!("no-aliasing idealization is harmless for this suite (it matters for codes");
    println!("with thousands of hot branches).");

    let mut json = JsonReport::new("ablation_predictor", Some(scale));
    json.table("predictors", &table);
    json.note("aliasing barely moves the measured misprediction rates");
    json.write_if_requested(&args);
}
