//! End-to-end command-line contract of the table/figure binaries: bad
//! arguments are rejected loudly (exit status 2 plus a usage message),
//! never silently ignored, and `--json` writes a parseable document.
//!
//! Only the instant binaries (table6/table7, which run no kernels) are
//! spawned with *valid* arguments, so the test stays fast; the rejection
//! paths never get as far as running a workload on any binary.

use std::path::PathBuf;
use std::process::{Command, Output};

fn run(exe: &str, args: &[&str]) -> Output {
    Command::new(exe).args(args).output().expect("binary spawns")
}

fn tmp_path(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("bioperf-cli-test-{}-{name}", std::process::id()));
    p
}

#[test]
fn unknown_scale_is_rejected_with_usage() {
    // A typo'd scale used to be silently... no: it panicked; but extra
    // args after a valid scale *were* silently ignored. Both must now be
    // status-2 usage errors.
    let out = run(env!("CARGO_BIN_EXE_fig1_instr_mix"), &["huge"]);
    assert_eq!(out.status.code(), Some(2), "unknown scale must exit 2");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("unknown scale"), "stderr: {err}");
    assert!(err.contains("usage:"), "stderr: {err}");
}

#[test]
fn extra_arguments_are_rejected_not_ignored() {
    let out = run(env!("CARGO_BIN_EXE_table8_runtime"), &["test", "extra"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage:"));

    let out = run(env!("CARGO_BIN_EXE_table2_cache_perf"), &["--frobnicate"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown option"));
}

#[test]
fn fixed_workload_binaries_reject_positional_args() {
    let out = run(env!("CARGO_BIN_EXE_table7_platforms"), &["medium"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("unexpected argument"));
}

#[test]
fn help_exits_zero_with_usage() {
    let out = run(env!("CARGO_BIN_EXE_fig9_speedup"), &["--help"]);
    assert_eq!(out.status.code(), Some(0));
    assert!(String::from_utf8_lossy(&out.stdout).contains("usage:"));
}

#[test]
fn json_twin_is_written_and_parses() {
    let path = tmp_path("table6.json");
    let out = run(
        env!("CARGO_BIN_EXE_table6_transform_scope"),
        &["--json", path.to_str().unwrap()],
    );
    assert_eq!(out.status.code(), Some(0), "stderr: {}", String::from_utf8_lossy(&out.stderr));
    let text = std::fs::read_to_string(&path).expect("json twin written");
    std::fs::remove_file(&path).ok();
    let doc = bioperf_metrics::json::parse(&text).expect("twin parses");
    assert_eq!(doc.get("schema").and_then(|s| s.as_str()), Some("bioperf-table/v1"));
    assert_eq!(doc.get("artifact").and_then(|s| s.as_str()), Some("table6_transform_scope"));
    let table = doc.get("tables").and_then(|t| t.get("table6")).expect("table6 present");
    // Six transformed programs -> six rows.
    match table.get("rows") {
        Some(bioperf_metrics::Json::Array(rows)) => assert_eq!(rows.len(), 6),
        other => panic!("rows missing or not an array: {other:?}"),
    }
}

#[test]
fn bench_suite_rejects_bad_args_and_bad_documents() {
    let out = run(env!("CARGO_BIN_EXE_bench_suite"), &["--jobs", "many"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("--jobs needs a number"));

    // --check on a non-suite document must fail with status 1.
    let path = tmp_path("bogus-suite.json");
    std::fs::write(&path, "{\"schema\":\"something-else/v9\"}").unwrap();
    let out =
        run(env!("CARGO_BIN_EXE_bench_suite"), &["--check", "--out", path.to_str().unwrap()]);
    std::fs::remove_file(&path).ok();
    assert_eq!(out.status.code(), Some(1));
    assert!(String::from_utf8_lossy(&out.stderr).contains("schema tag"));
}
