//! Corrupt-input tests for the segment reader: every class of damaged
//! or missing segment file must surface as the matching typed
//! [`SegmentError`] naming the offending path — never a panic, never a
//! silently wrong replay. Each test writes a valid multi-segment
//! recording to disk, damages exactly one thing, and replays.

use std::fs;
use std::path::{Path, PathBuf};

use bioperf_isa::{MicroOp, OpKind, Program, StaticId, VReg, MAX_SRCS};
use bioperf_trace::{SegmentError, SegmentedRecording, SpillRecorder, TraceConsumer};

struct Collect(Vec<MicroOp>);

impl TraceConsumer for Collect {
    fn consume(&mut self, op: &MicroOp, _p: &Program) {
        self.0.push(*op);
    }
}

/// A fresh scratch directory under the system temp dir.
fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("bioperf-segcorrupt-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

/// A deterministic little op stream with destinations, sources, and
/// addresses (all the payload columns populated).
fn sample_ops(n: usize) -> Vec<MicroOp> {
    (0..n)
        .map(|i| {
            let mut srcs = [None; MAX_SRCS];
            if i > 0 {
                srcs[0] = Some(VReg(i as u64 - 1));
            }
            MicroOp {
                sid: StaticId::from_raw(i as u32 % 13),
                kind: if i % 3 == 0 { OpKind::IntLoad } else { OpKind::IntAlu },
                dst: Some(VReg(i as u64)),
                srcs,
                addr: (i % 3 == 0).then_some(0x4000 + 8 * i as u64),
                taken: false,
            }
        })
        .collect()
}

/// Writes `n` ops as segments of `segment_ops` under `dir` and returns
/// the recording plus its on-disk paths.
fn spill(dir: &Path, n: usize, segment_ops: usize) -> (SegmentedRecording, Vec<PathBuf>) {
    let mut rec = SpillRecorder::to_dir(dir, segment_ops, usize::MAX).expect("scratch dir");
    let program = Program::new();
    for op in sample_ops(n) {
        rec.consume(&op, &program);
    }
    let segmented = rec.into_segmented(program).expect("spill to scratch");
    let paths: Vec<PathBuf> =
        segmented.segment_paths().into_iter().map(Path::to_path_buf).collect();
    assert!(paths.len() >= 3, "tests need a middle segment to damage");
    (segmented, paths)
}

/// Replays and returns the error the damaged recording must produce.
fn replay_err(segmented: &SegmentedRecording) -> SegmentError {
    let mut sink = Collect(Vec::new());
    match segmented.replay(&mut sink) {
        Ok(()) => panic!("replay of a damaged recording must fail"),
        Err(e) => e,
    }
}

/// Every error must name the file it concerns, both structurally and in
/// its rendered message (that is what the suite CLI prints).
fn assert_names(err: &SegmentError, victim: &Path) {
    assert_eq!(err.path(), victim, "error must carry the offending path");
    assert!(
        err.to_string().contains(&victim.display().to_string()),
        "display must name the path: {err}"
    );
}

#[test]
fn pristine_recording_replays_clean() {
    let dir = scratch("pristine");
    let (segmented, _) = spill(&dir, 40, 8);
    let mut sink = Collect(Vec::new());
    segmented.replay(&mut sink).expect("pristine replay");
    assert_eq!(sink.0, sample_ops(40));
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn missing_middle_segment_is_reported_with_its_path() {
    let dir = scratch("missing");
    let (segmented, paths) = spill(&dir, 40, 8);
    fs::remove_file(&paths[2]).expect("delete middle segment");
    let err = replay_err(&segmented);
    assert!(matches!(err, SegmentError::Missing { .. }), "got {err:?}");
    assert_names(&err, &paths[2]);
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn truncated_header_is_reported() {
    let dir = scratch("trunc-header");
    let (segmented, paths) = spill(&dir, 40, 8);
    let bytes = fs::read(&paths[1]).unwrap();
    fs::write(&paths[1], &bytes[..20]).unwrap();
    let err = replay_err(&segmented);
    match &err {
        SegmentError::Truncated { actual, .. } => assert_eq!(*actual, 20),
        other => panic!("expected Truncated, got {other:?}"),
    }
    assert_names(&err, &paths[1]);
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn truncated_payload_is_reported_with_expected_and_actual_sizes() {
    let dir = scratch("trunc-payload");
    let (segmented, paths) = spill(&dir, 40, 8);
    let bytes = fs::read(&paths[1]).unwrap();
    fs::write(&paths[1], &bytes[..bytes.len() - 5]).unwrap();
    let err = replay_err(&segmented);
    match &err {
        SegmentError::Truncated { expected, actual, .. } => {
            assert_eq!(*expected, bytes.len() as u64);
            assert_eq!(*actual, bytes.len() as u64 - 5);
        }
        other => panic!("expected Truncated, got {other:?}"),
    }
    assert_names(&err, &paths[1]);
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn foreign_magic_is_rejected() {
    let dir = scratch("magic");
    let (segmented, paths) = spill(&dir, 40, 8);
    let mut bytes = fs::read(&paths[0]).unwrap();
    bytes[..8].copy_from_slice(b"ELFNOPE\0");
    fs::write(&paths[0], &bytes).unwrap();
    let err = replay_err(&segmented);
    assert!(matches!(err, SegmentError::BadMagic { .. }), "got {err:?}");
    assert_names(&err, &paths[0]);
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn future_format_version_is_rejected_with_the_found_version() {
    let dir = scratch("version");
    let (segmented, paths) = spill(&dir, 40, 8);
    let mut bytes = fs::read(&paths[0]).unwrap();
    bytes[8..12].copy_from_slice(&99u32.to_le_bytes());
    fs::write(&paths[0], &bytes).unwrap();
    let err = replay_err(&segmented);
    match &err {
        SegmentError::BadVersion { found, .. } => assert_eq!(*found, 99),
        other => panic!("expected BadVersion, got {other:?}"),
    }
    assert_names(&err, &paths[0]);
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn op_count_mismatch_is_reported_with_both_counts() {
    let dir = scratch("opcount");
    let (segmented, paths) = spill(&dir, 40, 8);
    let mut bytes = fs::read(&paths[1]).unwrap();
    bytes[16..24].copy_from_slice(&1_000u64.to_le_bytes());
    fs::write(&paths[1], &bytes).unwrap();
    let err = replay_err(&segmented);
    match &err {
        SegmentError::CountMismatch { header_ops, expected_ops, .. } => {
            assert_eq!(*header_ops, 1_000);
            assert_eq!(*expected_ops, 8);
        }
        other => panic!("expected CountMismatch, got {other:?}"),
    }
    assert_names(&err, &paths[1]);
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn reordered_segment_files_are_detected_by_header_index() {
    let dir = scratch("reorder");
    let (segmented, paths) = spill(&dir, 40, 8);
    // Swap segments 1 and 2 on disk: both still valid files, but each
    // now sits at the wrong position of the recording.
    let a = fs::read(&paths[1]).unwrap();
    let b = fs::read(&paths[2]).unwrap();
    fs::write(&paths[1], &b).unwrap();
    fs::write(&paths[2], &a).unwrap();
    let err = replay_err(&segmented);
    match &err {
        SegmentError::IndexMismatch { expected, found, .. } => {
            assert_eq!(*expected, 1);
            assert_eq!(*found, 2);
        }
        other => panic!("expected IndexMismatch, got {other:?}"),
    }
    assert_names(&err, &paths[1]);
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn payload_bit_flip_fails_the_checksum() {
    let dir = scratch("bitflip");
    let (segmented, paths) = spill(&dir, 40, 8);
    let mut bytes = fs::read(&paths[2]).unwrap();
    let at = 64 + (bytes.len() - 64) / 2;
    bytes[at] ^= 0x40;
    fs::write(&paths[2], &bytes).unwrap();
    let err = replay_err(&segmented);
    assert!(matches!(err, SegmentError::Corrupt { .. }), "got {err:?}");
    assert_names(&err, &paths[2]);
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn trailing_garbage_is_rejected() {
    let dir = scratch("trailing");
    let (segmented, paths) = spill(&dir, 40, 8);
    let mut bytes = fs::read(&paths[0]).unwrap();
    bytes.extend_from_slice(b"junk");
    fs::write(&paths[0], &bytes).unwrap();
    let err = replay_err(&segmented);
    assert!(matches!(err, SegmentError::Corrupt { .. }), "got {err:?}");
    assert_names(&err, &paths[0]);
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn damage_in_a_later_segment_does_not_corrupt_earlier_ops() {
    // The streaming replay hands over complete segments only: ops from
    // segments before the damaged one arrive intact before the error.
    let dir = scratch("prefix");
    let (segmented, paths) = spill(&dir, 40, 8);
    fs::remove_file(&paths[3]).expect("delete a late segment");
    let mut sink = Collect(Vec::new());
    let err = segmented.replay(&mut sink).expect_err("damaged replay must fail");
    assert!(matches!(err, SegmentError::Missing { .. }), "got {err:?}");
    let reference = sample_ops(40);
    assert!(sink.0.len() >= 24, "three clean segments precede the damage");
    assert_eq!(sink.0[..24], reference[..24]);
    let _ = fs::remove_dir_all(&dir);
}
