//! Property test: the packed trace encoding round-trips *arbitrary* op
//! sequences, not just the well-behaved streams the tape emits.
//!
//! Each generated op descriptor independently picks its destination
//! discipline (none / sequential-SSA / post-`lit`-gap / fully random),
//! source discipline per slot (none / near backward reference / random
//! far value / zero-distance self reference), and address presence — so
//! every encoder path (implicit dst, dst exception table, 16-bit deltas,
//! far-source table, SoA address array) is exercised against the decoder.

use bioperf_isa::{MicroOp, OpKind, StaticId, VReg, MAX_SRCS};
use bioperf_trace::packed::PackedStream;
use proptest::prelude::*;

/// One op descriptor: `(kind, taken)`, `(dst_mode, dst_value)`, three
/// `(src_mode, src_value)` slots, `(has_addr, addr)`.
type OpSpec = ((usize, bool), (u8, u64), Vec<(u8, u64)>, (bool, u64));

fn op_spec() -> impl Strategy<Value = OpSpec> {
    (
        (0..OpKind::ALL.len(), prop::bool::ANY),
        (0..4u8, any::<u64>()),
        prop::collection::vec((0..4u8, any::<u64>()), 3..4),
        (prop::bool::ANY, any::<u64>()),
    )
}

/// Materializes descriptors into a `MicroOp` stream, tracking the SSA
/// counter the tape would have used so "near" sources really are near.
fn build_ops(specs: &[OpSpec]) -> Vec<MicroOp> {
    let mut ops = Vec::with_capacity(specs.len());
    let mut next_vreg = 0u64;
    for (i, ((kind_idx, taken), (dst_mode, dst_value), src_specs, (has_addr, addr))) in
        specs.iter().enumerate()
    {
        let base = next_vreg;
        let mut srcs = [None; MAX_SRCS];
        for (slot, (src_mode, src_value)) in src_specs.iter().enumerate().take(MAX_SRCS) {
            srcs[slot] = match src_mode {
                0 => None,
                // A near backward reference, delta within u16 range.
                1 if base > 0 => {
                    let span = base.min(u64::from(u16::MAX));
                    Some(VReg(base - 1 - (src_value % span.max(1)).min(span - 1)))
                }
                1 => None,
                // An arbitrary (usually far / not-yet-produced) value.
                2 => Some(VReg(*src_value)),
                // Zero-distance self reference: unencodable as a near
                // delta, must take the far path.
                _ => Some(VReg(base)),
            };
        }
        let dst = match dst_mode {
            0 => None,
            // Sequential SSA: exactly what the tape emits.
            1 => {
                let v = next_vreg;
                next_vreg = next_vreg.wrapping_add(1);
                Some(VReg(v))
            }
            // A lit()-style gap: a vreg was claimed with no producing op.
            2 => {
                next_vreg = next_vreg.wrapping_add(1);
                let v = next_vreg;
                next_vreg = next_vreg.wrapping_add(1);
                Some(VReg(v))
            }
            // Fully random destination, counter resynchronizes after it.
            _ => {
                next_vreg = dst_value.wrapping_add(1);
                Some(VReg(*dst_value))
            }
        };
        ops.push(MicroOp {
            sid: StaticId::from_raw(i as u32 % 97),
            kind: OpKind::ALL[*kind_idx],
            dst,
            srcs,
            addr: has_addr.then_some(*addr),
            taken: *taken,
        });
    }
    ops
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn packed_encoding_round_trips_arbitrary_streams(
        specs in prop::collection::vec(op_spec(), 0..200),
    ) {
        let ops = build_ops(&specs);
        let mut stream = PackedStream::new();
        for op in &ops {
            stream.push(op);
        }
        prop_assert_eq!(stream.len(), ops.len());

        let mut decoded = Vec::with_capacity(ops.len());
        stream.for_each(|op| decoded.push(*op));
        prop_assert_eq!(&decoded, &ops);

        let via_iter: Vec<MicroOp> = stream.iter().collect();
        prop_assert_eq!(&via_iter, &ops);
    }

    #[test]
    fn tape_shaped_streams_stay_within_the_byte_budget(
        specs in prop::collection::vec(op_spec(), 1..200),
    ) {
        // Restrict destinations to the sequential-SSA discipline (what
        // real tapes produce): the fixed 12-byte record plus at most one
        // u64 address must stay ≤ 24 bytes/op even with every op a
        // memory op.
        let mut well_formed = specs.clone();
        for spec in &mut well_formed {
            if spec.1 .0 > 1 {
                spec.1 .0 = 1;
            }
            for src in &mut spec.2 {
                if src.0 > 1 {
                    src.0 = 1;
                }
            }
        }
        let ops = build_ops(&well_formed);
        let mut stream = PackedStream::new();
        for op in &ops {
            stream.push(op);
        }
        prop_assert!(stream.far_entries() == 0);
        prop_assert!(stream.bytes_per_op() <= 24.0, "got {}", stream.bytes_per_op());
    }
}
