//! Property tests: block-batched replay is invisible.
//!
//! The block decoder carries streaming state (the SSA counter, the
//! side-table cursors) across block edges, and the `OpBlock` side
//! columns are a second, derived view of the decoded ops. Both must be
//! exact for *arbitrary* streams — SSA resync gaps, far sources,
//! zero-distance self references — at any block size, and across
//! segment boundaries in spilled recordings:
//!
//! * an order-sensitive digest of every op field must match per-op
//!   replay for block sizes 1, 3, 4095, 4096, and 8192 (plus a random
//!   size), in-memory and segmented;
//! * every filter column (memory, branch, select, kind codes, register
//!   events) must agree entry-for-entry with the ops it summarizes —
//!   the invariant the pipeline's phased block engine trusts blindly.

use bioperf_isa::{MicroOp, OpKind, Program, StaticId, VReg, MAX_SRCS};
use bioperf_trace::{
    OpBlock, Recorder, SpillRecorder, TraceConsumer, REG_EVENT_DST, REG_EVENT_DST_LOAD,
    REG_EVENT_IDX_SHIFT, REG_EVENT_POS,
};
use proptest::prelude::*;

/// One op descriptor, as in `packed_prop`: `(kind, taken)`,
/// `(dst_mode, dst_value)`, three `(src_mode, src_value)` slots,
/// `(has_addr, addr)`.
type OpSpec = ((usize, bool), (u8, u64), Vec<(u8, u64)>, (bool, u64));

fn op_spec() -> impl Strategy<Value = OpSpec> {
    (
        (0..OpKind::ALL.len(), prop::bool::ANY),
        (0..4u8, any::<u64>()),
        prop::collection::vec((0..4u8, any::<u64>()), 3..4),
        (prop::bool::ANY, any::<u64>()),
    )
}

/// Materializes descriptors into a `MicroOp` stream, tracking the SSA
/// counter so "near" sources really are near and resync gaps (lit-style
/// holes, random destinations) really desynchronize the decoder.
fn build_ops(specs: &[OpSpec]) -> Vec<MicroOp> {
    let mut ops = Vec::with_capacity(specs.len());
    let mut next_vreg = 0u64;
    for (i, ((kind_idx, taken), (dst_mode, dst_value), src_specs, (has_addr, addr))) in
        specs.iter().enumerate()
    {
        let base = next_vreg;
        let mut srcs = [None; MAX_SRCS];
        for (slot, (src_mode, src_value)) in src_specs.iter().enumerate().take(MAX_SRCS) {
            srcs[slot] = match src_mode {
                0 => None,
                1 if base > 0 => {
                    let span = base.min(u64::from(u16::MAX));
                    Some(VReg(base - 1 - (src_value % span.max(1)).min(span - 1)))
                }
                1 => None,
                2 => Some(VReg(*src_value)),
                _ => Some(VReg(base)),
            };
        }
        let dst = match dst_mode {
            0 => None,
            1 => {
                let v = next_vreg;
                next_vreg = next_vreg.wrapping_add(1);
                Some(VReg(v))
            }
            2 => {
                next_vreg = next_vreg.wrapping_add(1);
                let v = next_vreg;
                next_vreg = next_vreg.wrapping_add(1);
                Some(VReg(v))
            }
            _ => {
                next_vreg = dst_value.wrapping_add(1);
                Some(VReg(*dst_value))
            }
        };
        ops.push(MicroOp {
            sid: StaticId::from_raw(i as u32 % 97),
            kind: OpKind::ALL[*kind_idx],
            dst,
            srcs,
            addr: has_addr.then_some(*addr),
            taken: *taken,
        });
    }
    ops
}

/// Order-sensitive digest of everything a consumer can observe.
#[derive(Default, Debug, Clone, PartialEq, Eq)]
struct Digest {
    hash: u64,
    ops: u64,
    finishes: u64,
}

impl Digest {
    fn mix(&mut self, x: u64) {
        self.hash = (self.hash ^ x).wrapping_mul(0x9E37_79B9_7F4A_7C15).rotate_left(17);
    }

    fn op(&mut self, op: &MicroOp) {
        self.mix(op.sid.index() as u64);
        self.mix(u64::from(op.kind.code()));
        self.mix(op.dst.map_or(u64::MAX, |v| v.0));
        for src in &op.srcs {
            self.mix(src.map_or(u64::MAX, |v| v.0));
        }
        self.mix(op.addr.unwrap_or(u64::MAX));
        self.mix(u64::from(op.taken));
        self.ops += 1;
    }
}

impl TraceConsumer for Digest {
    fn consume(&mut self, op: &MicroOp, _program: &Program) {
        self.op(op);
    }

    fn finish(&mut self, _program: &Program) {
        self.finishes += 1;
    }
}

/// Digesting consumer with a `consume_block` override that first
/// cross-checks every side column against the ops array.
#[derive(Default, Debug, Clone, PartialEq, Eq)]
struct BlockedDigest(Digest);

impl BlockedDigest {
    fn check_columns(block: &OpBlock) {
        let ops = block.ops();
        assert_eq!(block.kind_codes().len(), ops.len());
        let metas = block.reg_event_meta();
        let vregs = block.reg_event_vreg();
        assert_eq!(metas.len(), vregs.len());
        let (mut mem, mut br, mut sel, mut ev) = (0, 0, 0, 0);
        for (i, op) in ops.iter().enumerate() {
            assert_eq!(block.kind_codes()[i], op.kind.code());
            if let Some(addr) = op.addr {
                assert_eq!(block.mem_idx()[mem] as usize, i);
                assert_eq!(block.mem_addrs()[mem], addr);
                assert_eq!(block.mem_loads()[mem], op.kind.is_load());
                mem += 1;
            }
            if op.kind.is_cond_branch() {
                assert_eq!(block.branch_idx()[br] as usize, i);
                assert_eq!(block.branch_sids()[br], op.sid);
                assert_eq!(block.branch_taken()[br], op.taken);
                br += 1;
            } else if op.kind == OpKind::CondMove {
                assert_eq!(block.select_idx()[sel] as usize, i);
                assert_eq!(block.select_sids()[sel], op.sid);
                assert_eq!(block.select_taken()[sel], op.taken);
                sel += 1;
            }
            for (pos, src) in op.srcs.iter().enumerate() {
                let Some(v) = src else { continue };
                let meta = metas[ev];
                assert_eq!((meta >> REG_EVENT_IDX_SHIFT) as usize, i);
                assert_eq!(meta & REG_EVENT_DST, 0);
                assert_eq!((meta & REG_EVENT_POS) as usize, pos);
                assert_eq!(vregs[ev], v.0);
                ev += 1;
            }
            if let Some(dst) = op.dst {
                let meta = metas[ev];
                assert_eq!((meta >> REG_EVENT_IDX_SHIFT) as usize, i);
                assert_ne!(meta & REG_EVENT_DST, 0);
                assert_eq!(meta & REG_EVENT_DST_LOAD != 0, op.kind.is_load());
                assert_eq!(vregs[ev], dst.0);
                ev += 1;
            }
        }
        assert_eq!(mem, block.mem_addrs().len());
        assert_eq!(mem, block.mem_idx().len());
        assert_eq!(br, block.branch_sids().len());
        assert_eq!(sel, block.select_idx().len());
        assert_eq!(ev, metas.len());
    }
}

impl TraceConsumer for BlockedDigest {
    fn consume(&mut self, op: &MicroOp, _program: &Program) {
        self.0.op(op);
    }

    fn consume_block(&mut self, block: &OpBlock, _program: &Program) {
        Self::check_columns(block);
        for op in block.ops() {
            self.0.op(op);
        }
    }

    fn finish(&mut self, _program: &Program) {
        self.0.finishes += 1;
    }
}

/// The block sizes the issue pins: degenerate (1), tiny and unaligned
/// (3), one off the default (4095), the default (4096), and larger than
/// the default (8192).
const BLOCK_SIZES: [usize; 5] = [1, 3, 4095, 4096, 8192];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn blocked_replay_digest_matches_per_op_replay(
        specs in prop::collection::vec(op_spec(), 0..700),
        random_block in 1usize..700,
    ) {
        let ops = build_ops(&specs);
        let program = Program::new();
        let mut recorder = Recorder::new();
        for op in &ops {
            recorder.consume(op, &program);
        }
        let recording = recorder.into_recording(program);

        let mut reference = Digest::default();
        recording.replay(&mut reference);
        prop_assert_eq!(reference.ops, ops.len() as u64);

        for block_ops in BLOCK_SIZES.into_iter().chain([random_block]) {
            let mut blocked = BlockedDigest::default();
            recording.replay_bank_blocks(std::slice::from_mut(&mut blocked), block_ops);
            prop_assert_eq!(
                &blocked.0, &reference,
                "block size {} diverged from per-op replay", block_ops
            );
        }
    }

    #[test]
    fn blocked_replay_is_exact_across_segment_boundaries(
        specs in prop::collection::vec(op_spec(), 1..500),
        segment_ops in 1usize..300,
        block_ops in 1usize..300,
    ) {
        // Segment edges end a block early (a block never spans two
        // segments) and force the decoder to re-anchor from the segment
        // header, on top of the block-level cursor carry.
        let ops = build_ops(&specs);
        let program = Program::new();
        let mut reference = Digest::default();
        let mut spill = SpillRecorder::in_memory(segment_ops, usize::MAX);
        for op in &ops {
            reference.consume(op, &program);
            spill.consume(op, &program);
        }
        reference.finish(&program);
        let segmented = spill.into_segmented(program).expect("in-memory spill");
        prop_assert_eq!(segmented.len(), ops.len());

        for block_ops in BLOCK_SIZES.into_iter().chain([block_ops]) {
            let mut blocked = BlockedDigest::default();
            segmented
                .replay_bank_blocks(std::slice::from_mut(&mut blocked), block_ops)
                .expect("streamed blocked replay");
            prop_assert_eq!(
                &blocked.0, &reference,
                "segments of {} ops, block size {} diverged", segment_ops, block_ops
            );
        }
    }
}
