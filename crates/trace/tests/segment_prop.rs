//! Property test: spilling an *arbitrary* op stream into segments and
//! streaming it back is indistinguishable from decoding the unsegmented
//! packed stream — at adversarial segment sizes (one op per segment,
//! odd sizes that never divide the stream, a boundary landing exactly on
//! a `lit()` resync gap). The only cross-segment decode state is the SSA
//! start counter in each header; these tests are what pins that
//! invariant against every encoder path the generator can reach.

use bioperf_isa::{MicroOp, OpKind, Program, StaticId, VReg, MAX_SRCS};
use bioperf_trace::packed::PackedStream;
use bioperf_trace::{SpillRecorder, TraceConsumer};
use proptest::prelude::*;

/// One op descriptor: `(kind, taken)`, `(dst_mode, dst_value)`, three
/// `(src_mode, src_value)` slots, `(has_addr, addr)` — the same shape
/// (and disciplines) as the packed-codec property test, so every encoder
/// path crosses segment boundaries too.
type OpSpec = ((usize, bool), (u8, u64), Vec<(u8, u64)>, (bool, u64));

fn op_spec() -> impl Strategy<Value = OpSpec> {
    (
        (0..OpKind::ALL.len(), prop::bool::ANY),
        (0..4u8, any::<u64>()),
        prop::collection::vec((0..4u8, any::<u64>()), 3..4),
        (prop::bool::ANY, any::<u64>()),
    )
}

/// Materializes descriptors into a `MicroOp` stream, tracking the SSA
/// counter the tape would have used so "near" sources really are near.
fn build_ops(specs: &[OpSpec]) -> Vec<MicroOp> {
    let mut ops = Vec::with_capacity(specs.len());
    let mut next_vreg = 0u64;
    for (i, ((kind_idx, taken), (dst_mode, dst_value), src_specs, (has_addr, addr))) in
        specs.iter().enumerate()
    {
        let base = next_vreg;
        let mut srcs = [None; MAX_SRCS];
        for (slot, (src_mode, src_value)) in src_specs.iter().enumerate().take(MAX_SRCS) {
            srcs[slot] = match src_mode {
                0 => None,
                1 if base > 0 => {
                    let span = base.min(u64::from(u16::MAX));
                    Some(VReg(base - 1 - (src_value % span.max(1)).min(span - 1)))
                }
                1 => None,
                2 => Some(VReg(*src_value)),
                _ => Some(VReg(base)),
            };
        }
        let dst = match dst_mode {
            0 => None,
            1 => {
                let v = next_vreg;
                next_vreg = next_vreg.wrapping_add(1);
                Some(VReg(v))
            }
            2 => {
                next_vreg = next_vreg.wrapping_add(1);
                let v = next_vreg;
                next_vreg = next_vreg.wrapping_add(1);
                Some(VReg(v))
            }
            _ => {
                next_vreg = dst_value.wrapping_add(1);
                Some(VReg(*dst_value))
            }
        };
        ops.push(MicroOp {
            sid: StaticId::from_raw(i as u32 % 97),
            kind: OpKind::ALL[*kind_idx],
            dst,
            srcs,
            addr: has_addr.then_some(*addr),
            taken: *taken,
        });
    }
    ops
}

struct Collect(Vec<MicroOp>);

impl TraceConsumer for Collect {
    fn consume(&mut self, op: &MicroOp, _p: &Program) {
        self.0.push(*op);
    }
}

/// The reference decode: the same ops through one unsegmented stream.
fn unsegmented_decode(ops: &[MicroOp]) -> Vec<MicroOp> {
    let mut stream = PackedStream::new();
    for op in ops {
        stream.push(op);
    }
    stream.iter().collect()
}

/// Spills `ops` at `segment_ops` per segment (in memory), streams the
/// segments back, and asserts the replay matches `reference` op-for-op.
fn roundtrip_at(ops: &[MicroOp], reference: &[MicroOp], segment_ops: usize) {
    let mut rec = SpillRecorder::in_memory(segment_ops, usize::MAX);
    let program = Program::new();
    for op in ops {
        rec.consume(op, &program);
    }
    assert!(!rec.overflowed());
    assert_eq!(rec.len(), ops.len());
    let segmented = rec.into_segmented(program).expect("in-memory spill cannot fail");
    assert_eq!(segmented.len(), ops.len());
    assert!(segmented.is_complete());
    let mut streamed = Collect(Vec::with_capacity(ops.len()));
    segmented.replay(&mut streamed).expect("streamed replay");
    assert_eq!(
        streamed.0, reference,
        "segment_ops {segment_ops}: streamed replay diverged from the unsegmented decode"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Arbitrary streams, adversarial fixed segment sizes: 1 op per
    /// segment (every boundary), odd sizes that never divide the stream,
    /// one segment larger than the stream (no spill at all), and the
    /// exact stream length (one full segment, empty tail).
    #[test]
    fn segmented_replay_matches_unsegmented_decode(
        specs in prop::collection::vec(op_spec(), 1..120),
    ) {
        let ops = build_ops(&specs);
        let reference = unsegmented_decode(&ops);
        prop_assert_eq!(reference.len(), ops.len());
        for segment_ops in [1, 3, 7, ops.len().max(2) - 1, ops.len(), ops.len() + 1] {
            roundtrip_at(&ops, &reference, segment_ops);
        }
    }

    /// A generated split point: whatever ops the generator produced, cut
    /// the segments exactly there — including at stream edges (0 is
    /// clamped to 1 by the recorder).
    #[test]
    fn segmented_replay_survives_arbitrary_split_points(
        specs in prop::collection::vec(op_spec(), 1..80),
        split in 0usize..81,
    ) {
        let ops = build_ops(&specs);
        let reference = unsegmented_decode(&ops);
        roundtrip_at(&ops, &reference, split.min(ops.len() + 1).max(1));
    }
}

/// A segment boundary landing exactly on a `lit()` resync gap: the op
/// *after* the gap opens the next segment, so its far-dst resync is the
/// first record the standalone decoder sees. A stale start counter (the
/// catalogued `segment-start-counter` fault) breaks precisely this case.
#[test]
fn boundary_on_a_lit_resync_gap_round_trips() {
    // dst_mode 1 = sequential SSA, dst_mode 2 = lit() gap. Put the gap
    // at index 3 so a segment size of 4 closes the segment on it.
    let specs: Vec<OpSpec> = (0..12)
        .map(|i| {
            let dst_mode = if i == 3 { 2 } else { 1 };
            (
                (i % OpKind::ALL.len(), i % 2 == 0),
                (dst_mode, 0),
                vec![(1u8, 1u64), (0, 0), (0, 0)],
                (i % 3 == 0, 0x1000 + i as u64),
            )
        })
        .collect();
    let ops = build_ops(&specs);
    assert!(ops[3].dst.unwrap().0 > ops[2].dst.unwrap().0 + 1, "index 3 must be a lit() gap");
    let reference = unsegmented_decode(&ops);
    for segment_ops in [1, 3, 4, 5] {
        roundtrip_at(&ops, &reference, segment_ops);
    }
}

/// One-op streams: the smallest possible spill, at every segment size.
#[test]
fn single_op_stream_round_trips() {
    let specs: Vec<OpSpec> =
        vec![((0, true), (1, 0), vec![(0, 0), (0, 0), (0, 0)], (true, 0xdead))];
    let ops = build_ops(&specs);
    let reference = unsegmented_decode(&ops);
    for segment_ops in [1, 2, 1 << 20] {
        roundtrip_at(&ops, &reference, segment_ops);
    }
}
