//! Integration tests for consumer composition and the tape's dataflow
//! guarantees.

use bioperf_isa::{here, MicroOp, OpKind, Program};
use bioperf_trace::consumers::{InstrMix, LoadCounts};
use bioperf_trace::{Recorder, Tape, TraceConsumer, Tracer};

/// A consumer that asserts SSA discipline: every destination vreg is
/// defined exactly once.
#[derive(Default)]
struct SsaChecker {
    seen: std::collections::HashSet<u64>,
    finished: bool,
}

impl TraceConsumer for SsaChecker {
    fn consume(&mut self, op: &MicroOp, _program: &Program) {
        if let Some(dst) = op.dst {
            assert!(self.seen.insert(dst.0), "vreg {dst} defined twice");
        }
        for src in op.sources() {
            // A source must have been defined earlier or be a literal
            // (literals never appear as sources of recorded ops unless
            // created by lit(), which has no producer — both fine).
            let _ = src;
        }
    }
    fn finish(&mut self, _program: &Program) {
        self.finished = true;
    }
}

fn drive<C: TraceConsumer>(consumer: C) -> (Program, C) {
    let xs = vec![1u64; 32];
    let mut tape = Tape::new(consumer);
    for i in 0..200usize {
        let a = tape.int_load(here!("w"), &xs[i % 32]);
        let b = tape.int_load(here!("w"), &xs[(i * 3) % 32]);
        let c = tape.int_op(here!("w"), &[a, b]);
        let s = tape.select(here!("w"), &[c, a, b], i % 2 == 0);
        tape.int_store(here!("w"), &xs[i % 32], s);
        tape.branch(here!("w"), &[c], i % 5 == 0);
    }
    tape.finish()
}

#[test]
fn ssa_discipline_holds() {
    let (_, checker) = drive(SsaChecker::default());
    assert!(checker.finished, "finish must be called");
    assert_eq!(checker.seen.len(), 200 * 4, "loads, alu, selects define vregs");
}

#[test]
fn composed_consumers_see_identical_streams() {
    let (_, (mix_a, counts_a)) = drive((InstrMix::default(), LoadCounts::default()));
    let (program, recorder) = drive(Recorder::new());
    let recording = recorder.into_recording(program);
    let mut mix_b = InstrMix::default();
    let mut counts_b = LoadCounts::default();
    recording.replay(&mut (&mut mix_b, &mut counts_b));
    assert_eq!(mix_a, mix_b);
    assert_eq!(counts_a.total(), counts_b.total());
    assert_eq!(counts_a.sorted_desc(), counts_b.sorted_desc());
}

#[test]
fn six_way_tuple_fan_out_compiles_and_runs() {
    let consumers = (
        InstrMix::default(),
        InstrMix::default(),
        LoadCounts::default(),
        LoadCounts::default(),
        InstrMix::default(),
        LoadCounts::default(),
    );
    let (_, (a, b, c, d, e, f)) = drive(consumers);
    assert_eq!(a, b);
    assert_eq!(a, e);
    assert_eq!(c.total(), d.total());
    assert_eq!(c.total(), f.total());
}

#[test]
fn selects_record_their_outcome_in_the_stream() {
    let (_, recorder) = drive(Recorder::new());
    let recording = recorder.into_recording(Program::new());
    let outcomes: Vec<bool> = recording
        .iter()
        .filter(|op| op.kind == OpKind::CondMove)
        .map(|op| op.taken)
        .collect();
    assert_eq!(outcomes.len(), 200);
    assert!(outcomes.iter().step_by(2).all(|&t| t), "even iterations select true");
    assert!(outcomes.iter().skip(1).step_by(2).all(|&t| !t));
}

#[test]
fn program_is_shared_across_consumers() {
    let (program, _) = drive(InstrMix::default());
    // One call site per operation kind in `drive`.
    assert_eq!(program.len(), 6);
    assert_eq!(program.count_kind(OpKind::is_load), 2);
    assert_eq!(program.count_kind(|k| k == OpKind::CondMove), 1);
}
