//! The [`Tracer`] abstraction and its no-op implementation.

use crate::packed::OpBlock;
use bioperf_isa::{MicroOp, OpKind, Program, SrcLoc};

/// Receives the dynamic micro-op stream produced by a [`Tape`].
///
/// Consumers are streaming: they see each op exactly once, in program
/// order, and must not assume the trace fits in memory. [`finish`] is
/// called once after the last op.
///
/// The replay hot path delivers ops in decoded batches through
/// [`consume_block`]; the default implementation loops over [`consume`],
/// so a consumer only implements the per-op form unless it wants the
/// batched one for speed. An override must be observably equivalent to
/// the default — same state after the block, same `finish` result — for
/// every possible block, including blocks cut short by segment
/// boundaries (the conformance fuzzer cross-checks this).
///
/// [`Tape`]: crate::Tape
/// [`finish`]: TraceConsumer::finish
/// [`consume`]: TraceConsumer::consume
/// [`consume_block`]: TraceConsumer::consume_block
pub trait TraceConsumer {
    /// Observes one dynamic instruction.
    fn consume(&mut self, op: &MicroOp, program: &Program);

    /// Observes one decoded block of dynamic instructions, in trace
    /// order. Equivalent to calling [`consume`](TraceConsumer::consume)
    /// on each op of [`OpBlock::ops`]; hot simulators override it with a
    /// monomorphic loop over the block (or one of its filter columns).
    fn consume_block(&mut self, block: &OpBlock, program: &Program) {
        for op in block.ops() {
            self.consume(op, program);
        }
    }

    /// Called once after the trace ends.
    fn finish(&mut self, _program: &Program) {}
}

impl<C: TraceConsumer + ?Sized> TraceConsumer for &mut C {
    fn consume(&mut self, op: &MicroOp, program: &Program) {
        (**self).consume(op, program);
    }
    fn consume_block(&mut self, block: &OpBlock, program: &Program) {
        (**self).consume_block(block, program);
    }
    fn finish(&mut self, program: &Program) {
        (**self).finish(program);
    }
}

impl<C: TraceConsumer + ?Sized> TraceConsumer for Box<C> {
    fn consume(&mut self, op: &MicroOp, program: &Program) {
        (**self).consume(op, program);
    }
    fn consume_block(&mut self, block: &OpBlock, program: &Program) {
        (**self).consume_block(block, program);
    }
    fn finish(&mut self, program: &Program) {
        (**self).finish(program);
    }
}

impl TraceConsumer for Vec<Box<dyn TraceConsumer>> {
    fn consume(&mut self, op: &MicroOp, program: &Program) {
        for c in self.iter_mut() {
            c.consume(op, program);
        }
    }
    fn consume_block(&mut self, block: &OpBlock, program: &Program) {
        for c in self.iter_mut() {
            c.consume_block(block, program);
        }
    }
    fn finish(&mut self, program: &Program) {
        for c in self.iter_mut() {
            c.finish(program);
        }
    }
}

macro_rules! impl_consumer_for_tuple {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: TraceConsumer),+> TraceConsumer for ($($name,)+) {
            fn consume(&mut self, op: &MicroOp, program: &Program) {
                $(self.$idx.consume(op, program);)+
            }
            fn consume_block(&mut self, block: &OpBlock, program: &Program) {
                $(self.$idx.consume_block(block, program);)+
            }
            fn finish(&mut self, program: &Program) {
                $(self.$idx.finish(program);)+
            }
        }
    };
}

impl_consumer_for_tuple!(A: 0);
impl_consumer_for_tuple!(A: 0, B: 1);
impl_consumer_for_tuple!(A: 0, B: 1, C: 2);
impl_consumer_for_tuple!(A: 0, B: 1, C: 2, D: 3);
impl_consumer_for_tuple!(A: 0, B: 1, C: 2, D: 3, E: 4);
impl_consumer_for_tuple!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);

/// Instrumentation interface the BioPerf kernels are written against.
///
/// Each method both *describes* one machine-level operation of the
/// kernel's hot code and, in the [`Tape`] implementation, records it. The
/// associated [`Val`] type threads SSA dataflow through the kernel; with
/// [`NullTracer`] it is `()` and all calls compile away.
///
/// Address arguments are real Rust references into the kernel's working
/// arrays, so the recorded effective addresses reflect the kernel's true
/// memory layout — the cache simulator sees realistic locality.
///
/// [`Tape`]: crate::Tape
/// [`Val`]: Tracer::Val
pub trait Tracer {
    /// Handle to a traced SSA value.
    type Val: Copy;

    /// A value with no recorded producer (an immediate or a register that
    /// was live before the traced region).
    fn lit(&mut self) -> Self::Val;

    /// Records an integer load from `addr`.
    fn int_load<T>(&mut self, loc: SrcLoc, addr: &T) -> Self::Val;

    /// Records an integer load whose *address* depends on `base`
    /// (pointer chasing / computed indexing).
    fn int_load_via<T>(&mut self, loc: SrcLoc, addr: &T, base: Self::Val) -> Self::Val;

    /// Records a floating-point load from `addr`.
    fn fp_load<T>(&mut self, loc: SrcLoc, addr: &T) -> Self::Val;

    /// Records an integer store of `value` to `addr`.
    fn int_store<T>(&mut self, loc: SrcLoc, addr: &T, value: Self::Val);

    /// Records a floating-point store of `value` to `addr`.
    fn fp_store<T>(&mut self, loc: SrcLoc, addr: &T, value: Self::Val);

    /// Records a computational op of `kind` over `srcs` (at most 3).
    fn op(&mut self, loc: SrcLoc, kind: OpKind, srcs: &[Self::Val]) -> Self::Val;

    /// Records a conditional branch whose condition derives from `srcs`,
    /// with dynamic outcome `taken`. Returns `taken` so kernels can write
    /// `if t.branch(loc, &[v], cond) { ... }`.
    fn branch(&mut self, loc: SrcLoc, srcs: &[Self::Val], taken: bool) -> bool;

    /// Records a conditional move (select) whose condition derives from
    /// the first source, with dynamic selection outcome `cond`. On ISAs
    /// without a conditional move (PowerPC integer code, i386-target
    /// gcc), the platform timing model executes this as a branch, so the
    /// outcome must be recorded.
    fn select(&mut self, loc: SrcLoc, srcs: &[Self::Val], cond: bool) -> Self::Val;

    /// Records an unconditional control transfer (loop back-edge,
    /// call/return of a traced helper).
    fn jump(&mut self, loc: SrcLoc);

    /// Declares `data`'s backing memory as one contiguous working array.
    ///
    /// Kernels call this right after allocating (or re-sizing) each hot
    /// array. It emits no micro-op; it feeds the address-normalization
    /// pass (see [`normalize`](crate::normalize)) so traced addresses are
    /// independent of where the allocator placed the array. The default
    /// is a no-op, so `NullTracer` and custom tracers compile it away.
    #[inline]
    fn region<T>(&mut self, _loc: SrcLoc, _data: &[T]) {}

    /// Like [`region`](Tracer::region), but declares `elems` elements
    /// starting at `base` without requiring an initialized slice.
    ///
    /// For buffers that *grow while traced* (an arena, a hash-table entry
    /// pool): reserve the worst-case capacity first, then declare the
    /// whole reserved range so later pushes never move the buffer out of
    /// its region. The pointer is never dereferenced.
    #[inline]
    fn region_raw<T>(&mut self, _loc: SrcLoc, _base: *const T, _elems: usize) {}

    /// Single-cycle integer ALU op (add/sub/compare/logic).
    #[inline]
    fn int_op(&mut self, loc: SrcLoc, srcs: &[Self::Val]) -> Self::Val {
        self.op(loc, OpKind::IntAlu, srcs)
    }

    /// Floating-point add/sub/compare.
    #[inline]
    fn fp_op(&mut self, loc: SrcLoc, srcs: &[Self::Val]) -> Self::Val {
        self.op(loc, OpKind::FpAlu, srcs)
    }

    /// Floating-point multiply.
    #[inline]
    fn fp_mul(&mut self, loc: SrcLoc, srcs: &[Self::Val]) -> Self::Val {
        self.op(loc, OpKind::FpMul, srcs)
    }

    /// Long-latency floating-point op (divide, exp/log approximations).
    #[inline]
    fn fp_div(&mut self, loc: SrcLoc, srcs: &[Self::Val]) -> Self::Val {
        self.op(loc, OpKind::FpDiv, srcs)
    }

    /// Integer multiply.
    #[inline]
    fn int_mul(&mut self, loc: SrcLoc, srcs: &[Self::Val]) -> Self::Val {
        self.op(loc, OpKind::IntMul, srcs)
    }
}

/// A tracer whose every operation is an inlined no-op.
///
/// Kernels monomorphized against `NullTracer` compile to the plain
/// computation — this is the "uninstrumented binary" used for native
/// wall-clock measurements (the reproduction's analog of the paper's
/// `time`-measured runs).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NullTracer;

impl NullTracer {
    /// Creates a no-op tracer.
    pub fn new() -> Self {
        Self
    }
}

impl Tracer for NullTracer {
    type Val = ();

    #[inline(always)]
    fn lit(&mut self) -> Self::Val {}
    #[inline(always)]
    fn int_load<T>(&mut self, _loc: SrcLoc, _addr: &T) -> Self::Val {}
    #[inline(always)]
    fn int_load_via<T>(&mut self, _loc: SrcLoc, _addr: &T, _base: Self::Val) -> Self::Val {}
    #[inline(always)]
    fn fp_load<T>(&mut self, _loc: SrcLoc, _addr: &T) -> Self::Val {}
    #[inline(always)]
    fn int_store<T>(&mut self, _loc: SrcLoc, _addr: &T, _value: Self::Val) {}
    #[inline(always)]
    fn fp_store<T>(&mut self, _loc: SrcLoc, _addr: &T, _value: Self::Val) {}
    #[inline(always)]
    fn op(&mut self, _loc: SrcLoc, _kind: OpKind, _srcs: &[Self::Val]) -> Self::Val {}
    #[inline(always)]
    fn branch(&mut self, _loc: SrcLoc, _srcs: &[Self::Val], taken: bool) -> bool {
        taken
    }
    #[inline(always)]
    fn select(&mut self, _loc: SrcLoc, _srcs: &[Self::Val], _cond: bool) -> Self::Val {}
    #[inline(always)]
    fn jump(&mut self, _loc: SrcLoc) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use bioperf_isa::here;

    #[test]
    fn null_tracer_branch_returns_outcome() {
        let mut t = NullTracer::new();
        assert!(t.branch(here!("f"), &[], true));
        assert!(!t.branch(here!("f"), &[], false));
    }

    #[test]
    #[allow(clippy::let_unit_value)]
    fn null_tracer_values_are_unit() {
        let mut t = NullTracer::new();
        let a = t.int_load(here!("f"), &42u64);
        let b = t.int_op(here!("f"), &[a, a]);
        t.int_store(here!("f"), &42u64, b);
    }

    /// A consumer that counts ops, used to verify fan-out impls.
    #[derive(Default)]
    struct Counter(u64, bool);

    impl TraceConsumer for Counter {
        fn consume(&mut self, _op: &MicroOp, _p: &Program) {
            self.0 += 1;
        }
        fn finish(&mut self, _p: &Program) {
            self.1 = true;
        }
    }

    #[test]
    fn tuple_consumers_fan_out() {
        let mut pair = (Counter::default(), Counter::default());
        let p = Program::new();
        let op = MicroOp::compute(
            bioperf_isa::StaticId::from_raw(0),
            OpKind::IntAlu,
            bioperf_isa::VReg(0),
            [None, None, None],
        );
        pair.consume(&op, &p);
        pair.finish(&p);
        assert_eq!(pair.0 .0, 1);
        assert_eq!(pair.1 .0, 1);
        assert!(pair.0 .1 && pair.1 .1);
    }

    #[test]
    fn boxed_dyn_consumers_fan_out() {
        let mut v: Vec<Box<dyn TraceConsumer>> =
            vec![Box::new(Counter::default()), Box::new(Counter::default())];
        let p = Program::new();
        let op = MicroOp::compute(
            bioperf_isa::StaticId::from_raw(0),
            OpKind::IntAlu,
            bioperf_isa::VReg(0),
            [None, None, None],
        );
        v.consume(&op, &p);
        v.finish(&p);
    }
}
