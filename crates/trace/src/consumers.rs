//! Basic built-in trace consumers.

use bioperf_isa::{MicroOp, OpClass, Program};

use crate::tracer::TraceConsumer;

/// Instruction-mix counter: the data behind the paper's Figure 1 (loads /
/// stores / conditional branches / other as a fraction of all executed
/// instructions) and Table 1 (total count and floating-point fraction).
///
/// # Example
///
/// ```
/// use bioperf_isa::here;
/// use bioperf_trace::{consumers::InstrMix, Tape, Tracer};
///
/// let mut tape = Tape::new(InstrMix::default());
/// let v = tape.fp_load(here!("f"), &1.0f64);
/// tape.fp_op(here!("f"), &[v, v]);
/// let (_, mix) = tape.finish();
/// assert_eq!(mix.total(), 2);
/// assert!((mix.fp_fraction() - 1.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct InstrMix {
    loads: u64,
    stores: u64,
    cond_branches: u64,
    other: u64,
    fp: u64,
    fp_loads: u64,
}

impl InstrMix {
    /// Creates an empty counter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Total executed instructions observed.
    pub fn total(&self) -> u64 {
        self.loads + self.stores + self.cond_branches + self.other
    }

    /// Executed loads (integer + floating-point).
    pub fn loads(&self) -> u64 {
        self.loads
    }

    /// Executed stores.
    pub fn stores(&self) -> u64 {
        self.stores
    }

    /// Executed conditional branches.
    pub fn cond_branches(&self) -> u64 {
        self.cond_branches
    }

    /// Executed instructions outside the three reported classes.
    pub fn other(&self) -> u64 {
        self.other
    }

    /// Executed floating-point instructions (including FP loads/stores,
    /// matching the paper's Table 1 accounting).
    pub fn fp(&self) -> u64 {
        self.fp
    }

    /// Executed floating-point loads (the paper reports these for
    /// hmmpfam/predator/promlk in Section 2).
    pub fn fp_loads(&self) -> u64 {
        self.fp_loads
    }

    /// Count for one Figure 1 class.
    pub fn class(&self, class: OpClass) -> u64 {
        match class {
            OpClass::Load => self.loads,
            OpClass::Store => self.stores,
            OpClass::CondBranch => self.cond_branches,
            OpClass::Other => self.other,
        }
    }

    /// Fraction of executed instructions in `class` (0 if empty trace).
    pub fn class_fraction(&self, class: OpClass) -> f64 {
        let total = self.total();
        if total == 0 {
            0.0
        } else {
            self.class(class) as f64 / total as f64
        }
    }

    /// Fraction of executed instructions that are floating-point.
    pub fn fp_fraction(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            0.0
        } else {
            self.fp as f64 / total as f64
        }
    }

    /// Merges another counter into this one (used when a program is traced
    /// in several phases).
    pub fn merge(&mut self, other: &InstrMix) {
        self.loads += other.loads;
        self.stores += other.stores;
        self.cond_branches += other.cond_branches;
        self.other += other.other;
        self.fp += other.fp;
        self.fp_loads += other.fp_loads;
    }
}

impl TraceConsumer for InstrMix {
    fn consume(&mut self, op: &MicroOp, _program: &Program) {
        match op.kind.class() {
            OpClass::Load => self.loads += 1,
            OpClass::Store => self.stores += 1,
            OpClass::CondBranch => self.cond_branches += 1,
            OpClass::Other => self.other += 1,
        }
        if op.kind.is_fp() {
            self.fp += 1;
            if op.kind.is_load() {
                self.fp_loads += 1;
            }
        }
    }
}

/// Broadcasts one op stream to N consumers — trace once, analyze many.
///
/// The consumer tuples handle a fixed, statically-known set of analyses;
/// `FanOut` handles a set assembled at runtime. With the default
/// `Box<dyn TraceConsumer>` element type the set is heterogeneous:
///
/// ```
/// use bioperf_isa::here;
/// use bioperf_trace::{consumers::{FanOut, InstrMix, LoadCounts}, Tape, Tracer};
///
/// let mut fan = FanOut::new();
/// fan.push(Box::new(InstrMix::default()) as Box<dyn bioperf_trace::TraceConsumer>);
/// fan.push(Box::new(LoadCounts::default()));
/// let mut tape = Tape::new(fan);
/// tape.int_load(here!("f"), &3u64);
/// let (_, fan) = tape.finish();
/// assert_eq!(fan.len(), 2);
/// ```
///
/// Every consumer sees every op, in program order, exactly once; `finish`
/// reaches each consumer exactly once. Used by the experiment
/// orchestrator so a single kernel execution feeds the characterizer, the
/// replay recorder, and coverage counting simultaneously.
#[derive(Debug, Default)]
pub struct FanOut<C = Box<dyn TraceConsumer>> {
    consumers: Vec<C>,
}

impl<C: TraceConsumer> FanOut<C> {
    /// Creates an empty fan-out.
    pub fn new() -> Self {
        Self { consumers: Vec::new() }
    }

    /// Adds a consumer; it sees only ops recorded after this call.
    pub fn push(&mut self, consumer: C) {
        self.consumers.push(consumer);
    }

    /// Builder-style [`push`](Self::push).
    pub fn with(mut self, consumer: C) -> Self {
        self.push(consumer);
        self
    }

    /// Number of attached consumers.
    pub fn len(&self) -> usize {
        self.consumers.len()
    }

    /// Whether no consumer is attached.
    pub fn is_empty(&self) -> bool {
        self.consumers.is_empty()
    }

    /// Borrows consumer `i` (insertion order).
    pub fn get(&self, i: usize) -> Option<&C> {
        self.consumers.get(i)
    }

    /// Returns the consumers in insertion order.
    pub fn into_inner(self) -> Vec<C> {
        self.consumers
    }
}

impl<C: TraceConsumer> FromIterator<C> for FanOut<C> {
    fn from_iter<I: IntoIterator<Item = C>>(iter: I) -> Self {
        Self { consumers: iter.into_iter().collect() }
    }
}

impl<C: TraceConsumer> TraceConsumer for FanOut<C> {
    fn consume(&mut self, op: &MicroOp, program: &Program) {
        for c in &mut self.consumers {
            c.consume(op, program);
        }
    }

    fn consume_block(&mut self, block: &crate::packed::OpBlock, program: &Program) {
        for c in &mut self.consumers {
            c.consume_block(block, program);
        }
    }

    fn finish(&mut self, program: &Program) {
        for c in &mut self.consumers {
            c.finish(program);
        }
    }
}

/// Per-static-load dynamic execution counter — the raw data for the
/// paper's Figure 2 cumulative-coverage curves.
///
/// Indexable by [`StaticId`]; ids that never executed report zero.
///
/// [`StaticId`]: bioperf_isa::StaticId
#[derive(Debug, Clone, Default)]
pub struct LoadCounts {
    counts: Vec<u64>,
    total: u64,
}

impl LoadCounts {
    /// Creates an empty counter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Dynamic executions of the static load `sid` (zero if never seen).
    pub fn count(&self, sid: bioperf_isa::StaticId) -> u64 {
        self.counts.get(sid.index()).copied().unwrap_or(0)
    }

    /// Total dynamic loads observed.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Per-static-load counts sorted descending — the Figure 2 ranking.
    pub fn sorted_desc(&self) -> Vec<u64> {
        let mut v: Vec<u64> = self.counts.iter().copied().filter(|&c| c > 0).collect();
        v.sort_unstable_by(|a, b| b.cmp(a));
        v
    }

    /// Number of distinct static loads that executed at least once.
    pub fn active_static_loads(&self) -> usize {
        self.counts.iter().filter(|&&c| c > 0).count()
    }
}

impl TraceConsumer for LoadCounts {
    fn consume(&mut self, op: &MicroOp, _program: &Program) {
        if !op.kind.is_load() {
            return;
        }
        let idx = op.sid.index();
        if idx >= self.counts.len() {
            self.counts.resize(idx + 1, 0);
        }
        self.counts[idx] += 1;
        self.total += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Tape, Tracer};
    use bioperf_isa::here;

    #[test]
    fn mix_counts_every_class() {
        let x = 0u64;
        let f = 0.0f64;
        let mut t = Tape::new(InstrMix::default());
        let a = t.int_load(here!("f"), &x);
        let b = t.fp_load(here!("f"), &f);
        t.int_store(here!("f"), &x, a);
        t.branch(here!("f"), &[a], true);
        t.fp_op(here!("f"), &[b, b]);
        t.jump(here!("f"));
        let (_, mix) = t.finish();
        assert_eq!(mix.total(), 6);
        assert_eq!(mix.loads(), 2);
        assert_eq!(mix.stores(), 1);
        assert_eq!(mix.cond_branches(), 1);
        assert_eq!(mix.other(), 2);
        assert_eq!(mix.fp(), 2);
        assert_eq!(mix.fp_loads(), 1);
    }

    #[test]
    fn fractions_sum_to_one() {
        let x = 0u64;
        let mut t = Tape::new(InstrMix::default());
        for _ in 0..7 {
            let v = t.int_load(here!("f"), &x);
            t.int_op(here!("f"), &[v]);
        }
        let (_, mix) = t.finish();
        let sum: f64 = OpClass::ALL.iter().map(|&c| mix.class_fraction(c)).sum();
        assert!((sum - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_mix_has_zero_fractions() {
        let mix = InstrMix::new();
        assert_eq!(mix.total(), 0);
        assert_eq!(mix.class_fraction(OpClass::Load), 0.0);
        assert_eq!(mix.fp_fraction(), 0.0);
    }

    #[test]
    fn merge_accumulates() {
        let x = 0u64;
        let mut t = Tape::new(InstrMix::default());
        t.int_load(here!("f"), &x);
        let (_, a) = t.finish();
        let mut b = a;
        b.merge(&a);
        assert_eq!(b.loads(), 2);
    }

    #[test]
    fn fan_out_feeds_every_consumer_the_whole_stream() {
        let xs = [0u64; 4];
        let fan: FanOut<InstrMix> = (0..3).map(|_| InstrMix::default()).collect();
        let mut t = Tape::new(fan);
        for x in &xs {
            let v = t.int_load(here!("f"), x);
            t.int_op(here!("f"), &[v]);
        }
        let (_, fan) = t.finish();
        let mixes = fan.into_inner();
        assert_eq!(mixes.len(), 3);
        for m in &mixes {
            assert_eq!(m.total(), 8, "every consumer sees the full stream");
            assert_eq!(m.loads(), 4);
        }
        assert_eq!(mixes[0], mixes[1]);
        assert_eq!(mixes[1], mixes[2]);
    }

    #[test]
    fn fan_out_of_boxed_consumers_is_heterogeneous() {
        let x = 0u64;
        let fan = FanOut::new()
            .with(Box::new(InstrMix::default()) as Box<dyn crate::TraceConsumer>)
            .with(Box::new(LoadCounts::default()));
        assert!(!fan.is_empty());
        let mut t = Tape::new(fan);
        t.int_load(here!("f"), &x);
        let (_, fan) = t.finish();
        assert_eq!(fan.len(), 2);
    }

    #[test]
    fn load_counts_rank_hot_loads() {
        let xs = [0u64; 4];
        let mut t = Tape::new(LoadCounts::default());
        for _ in 0..10 {
            t.int_load(here!("hot"), &xs[0]);
        }
        t.int_load(here!("cold"), &xs[1]);
        // A non-load must not be counted.
        let v = t.lit();
        t.int_op(here!("alu"), &[v]);
        let (_, lc) = t.finish();
        assert_eq!(lc.total(), 11);
        assert_eq!(lc.active_static_loads(), 2);
        assert_eq!(lc.sorted_desc(), vec![10, 1]);
    }
}
