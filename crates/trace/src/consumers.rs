//! Basic built-in trace consumers.

use bioperf_isa::{MicroOp, OpClass, Program};

use crate::tracer::TraceConsumer;

/// Instruction-mix counter: the data behind the paper's Figure 1 (loads /
/// stores / conditional branches / other as a fraction of all executed
/// instructions) and Table 1 (total count and floating-point fraction).
///
/// # Example
///
/// ```
/// use bioperf_isa::here;
/// use bioperf_trace::{consumers::InstrMix, Tape, Tracer};
///
/// let mut tape = Tape::new(InstrMix::default());
/// let v = tape.fp_load(here!("f"), &1.0f64);
/// tape.fp_op(here!("f"), &[v, v]);
/// let (_, mix) = tape.finish();
/// assert_eq!(mix.total(), 2);
/// assert!((mix.fp_fraction() - 1.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct InstrMix {
    loads: u64,
    stores: u64,
    cond_branches: u64,
    other: u64,
    fp: u64,
    fp_loads: u64,
}

impl InstrMix {
    /// Creates an empty counter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Total executed instructions observed.
    pub fn total(&self) -> u64 {
        self.loads + self.stores + self.cond_branches + self.other
    }

    /// Executed loads (integer + floating-point).
    pub fn loads(&self) -> u64 {
        self.loads
    }

    /// Executed stores.
    pub fn stores(&self) -> u64 {
        self.stores
    }

    /// Executed conditional branches.
    pub fn cond_branches(&self) -> u64 {
        self.cond_branches
    }

    /// Executed instructions outside the three reported classes.
    pub fn other(&self) -> u64 {
        self.other
    }

    /// Executed floating-point instructions (including FP loads/stores,
    /// matching the paper's Table 1 accounting).
    pub fn fp(&self) -> u64 {
        self.fp
    }

    /// Executed floating-point loads (the paper reports these for
    /// hmmpfam/predator/promlk in Section 2).
    pub fn fp_loads(&self) -> u64 {
        self.fp_loads
    }

    /// Count for one Figure 1 class.
    pub fn class(&self, class: OpClass) -> u64 {
        match class {
            OpClass::Load => self.loads,
            OpClass::Store => self.stores,
            OpClass::CondBranch => self.cond_branches,
            OpClass::Other => self.other,
        }
    }

    /// Fraction of executed instructions in `class` (0 if empty trace).
    pub fn class_fraction(&self, class: OpClass) -> f64 {
        let total = self.total();
        if total == 0 {
            0.0
        } else {
            self.class(class) as f64 / total as f64
        }
    }

    /// Fraction of executed instructions that are floating-point.
    pub fn fp_fraction(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            0.0
        } else {
            self.fp as f64 / total as f64
        }
    }

    /// Merges another counter into this one (used when a program is traced
    /// in several phases).
    pub fn merge(&mut self, other: &InstrMix) {
        self.loads += other.loads;
        self.stores += other.stores;
        self.cond_branches += other.cond_branches;
        self.other += other.other;
        self.fp += other.fp;
        self.fp_loads += other.fp_loads;
    }
}

impl TraceConsumer for InstrMix {
    fn consume(&mut self, op: &MicroOp, _program: &Program) {
        match op.kind.class() {
            OpClass::Load => self.loads += 1,
            OpClass::Store => self.stores += 1,
            OpClass::CondBranch => self.cond_branches += 1,
            OpClass::Other => self.other += 1,
        }
        if op.kind.is_fp() {
            self.fp += 1;
            if op.kind.is_load() {
                self.fp_loads += 1;
            }
        }
    }
}

/// Per-static-load dynamic execution counter — the raw data for the
/// paper's Figure 2 cumulative-coverage curves.
///
/// Indexable by [`StaticId`]; ids that never executed report zero.
///
/// [`StaticId`]: bioperf_isa::StaticId
#[derive(Debug, Clone, Default)]
pub struct LoadCounts {
    counts: Vec<u64>,
    total: u64,
}

impl LoadCounts {
    /// Creates an empty counter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Dynamic executions of the static load `sid` (zero if never seen).
    pub fn count(&self, sid: bioperf_isa::StaticId) -> u64 {
        self.counts.get(sid.index()).copied().unwrap_or(0)
    }

    /// Total dynamic loads observed.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Per-static-load counts sorted descending — the Figure 2 ranking.
    pub fn sorted_desc(&self) -> Vec<u64> {
        let mut v: Vec<u64> = self.counts.iter().copied().filter(|&c| c > 0).collect();
        v.sort_unstable_by(|a, b| b.cmp(a));
        v
    }

    /// Number of distinct static loads that executed at least once.
    pub fn active_static_loads(&self) -> usize {
        self.counts.iter().filter(|&&c| c > 0).count()
    }
}

impl TraceConsumer for LoadCounts {
    fn consume(&mut self, op: &MicroOp, _program: &Program) {
        if !op.kind.is_load() {
            return;
        }
        let idx = op.sid.index();
        if idx >= self.counts.len() {
            self.counts.resize(idx + 1, 0);
        }
        self.counts[idx] += 1;
        self.total += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Tape, Tracer};
    use bioperf_isa::here;

    #[test]
    fn mix_counts_every_class() {
        let x = 0u64;
        let f = 0.0f64;
        let mut t = Tape::new(InstrMix::default());
        let a = t.int_load(here!("f"), &x);
        let b = t.fp_load(here!("f"), &f);
        t.int_store(here!("f"), &x, a);
        t.branch(here!("f"), &[a], true);
        t.fp_op(here!("f"), &[b, b]);
        t.jump(here!("f"));
        let (_, mix) = t.finish();
        assert_eq!(mix.total(), 6);
        assert_eq!(mix.loads(), 2);
        assert_eq!(mix.stores(), 1);
        assert_eq!(mix.cond_branches(), 1);
        assert_eq!(mix.other(), 2);
        assert_eq!(mix.fp(), 2);
        assert_eq!(mix.fp_loads(), 1);
    }

    #[test]
    fn fractions_sum_to_one() {
        let x = 0u64;
        let mut t = Tape::new(InstrMix::default());
        for _ in 0..7 {
            let v = t.int_load(here!("f"), &x);
            t.int_op(here!("f"), &[v]);
        }
        let (_, mix) = t.finish();
        let sum: f64 = OpClass::ALL.iter().map(|&c| mix.class_fraction(c)).sum();
        assert!((sum - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_mix_has_zero_fractions() {
        let mix = InstrMix::new();
        assert_eq!(mix.total(), 0);
        assert_eq!(mix.class_fraction(OpClass::Load), 0.0);
        assert_eq!(mix.fp_fraction(), 0.0);
    }

    #[test]
    fn merge_accumulates() {
        let x = 0u64;
        let mut t = Tape::new(InstrMix::default());
        t.int_load(here!("f"), &x);
        let (_, a) = t.finish();
        let mut b = a;
        b.merge(&a);
        assert_eq!(b.loads(), 2);
    }

    #[test]
    fn load_counts_rank_hot_loads() {
        let xs = [0u64; 4];
        let mut t = Tape::new(LoadCounts::default());
        for _ in 0..10 {
            t.int_load(here!("hot"), &xs[0]);
        }
        t.int_load(here!("cold"), &xs[1]);
        // A non-load must not be counted.
        let v = t.lit();
        t.int_op(here!("alu"), &[v]);
        let (_, lc) = t.finish();
        assert_eq!(lc.total(), 11);
        assert_eq!(lc.active_static_loads(), 2);
        assert_eq!(lc.sorted_desc(), vec![10, 1]);
    }
}
