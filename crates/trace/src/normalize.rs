//! Deterministic address normalization.
//!
//! The [`Tape`](crate::Tape) records effective addresses of real Rust
//! references, so a raw trace depends on where the allocator happened to
//! place each buffer: two identical runs produce cache statistics that
//! differ by a handful of conflict misses, and runs on different machines
//! (or under ASLR) are not comparable at all. The [`AddressNormalizer`]
//! rewrites every traced address into a stable *virtual* address space so
//! that identical `(program, variant, scale, seed)` runs emit
//! bit-identical address streams — the property the paper-claim checks
//! (Table 2 AMAT, Table 8 speedups) assert exactly.
//!
//! # Model
//!
//! The virtual space is a sequence of **regions**. A region is created in
//! one of two ways, both of which happen at deterministic points of the
//! traced program's execution:
//!
//! * **Registration** ([`Tracer::region`](crate::Tracer::region)): a
//!   kernel declares a working array right after allocating it. The whole
//!   `[base, base + len)` raw range maps onto one fresh region, so the
//!   array's internal layout — element offsets, line crossings, stride
//!   patterns — is preserved exactly. Registration supersedes any older
//!   region overlapping the same raw range (the memory was necessarily
//!   freed and reused).
//! * **First touch**: a load or store whose raw address lies in no known
//!   region opens a fallback region covering exactly the touched object
//!   (`size_of::<T>()` bytes). Later touches that exactly abut or overlap
//!   a region's edge extend it, so an unregistered array scanned
//!   contiguously still coalesces into a single region.
//!
//! Region slots are numbered in creation order. Since kernels execute the
//! same instrumented operations in the same order on every run, creation
//! order — and therefore every normalized address — is a pure function of
//! the workload, not of the allocator. Each slot's base address carries a
//! deterministic line-aligned stagger so that regions do not all collide
//! on cache set 0 the way a uniform power-of-two placement would.
//!
//! The one caveat is *cross-allocation* coalescing: two separate
//! unregistered allocations would be joined if the allocator placed them
//! with zero gap and the trace touched them edge-to-edge. Heap allocators
//! keep per-chunk metadata between allocations, so this does not occur in
//! practice, and registered regions are immune by construction. Register
//! every hot array (the kernels in this workspace all do).

use std::collections::BTreeMap;

/// Start of the virtual heap (all normalized addresses sit above this).
const HEAP_BASE: u64 = 0x4000_0000_0000;

/// Virtual spacing between region slots; no region may outgrow it.
const SLOT_SPACING: u64 = 1 << 32;

/// Headroom below a region's anchor for backward extension.
const ANCHOR_BIAS: u64 = 1 << 31;

/// One region of the virtual address space.
#[derive(Debug, Clone, Copy)]
struct Region {
    /// Current raw extent in bytes.
    len: u64,
    /// Virtual address of the region's current raw base.
    virt_base: u64,
}

/// Statistics about the normalization pass (diagnostics only).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NormalizerStats {
    /// Regions created through explicit registration.
    pub registered_regions: u64,
    /// Regions created by first touch of an unregistered address.
    pub fallback_regions: u64,
}

/// Maps raw (allocator-dependent) addresses to stable virtual addresses.
#[derive(Debug, Default)]
pub struct AddressNormalizer {
    /// Live regions keyed by current raw base address.
    regions: BTreeMap<u64, Region>,
    /// Next region slot to hand out (creation-order identity).
    next_slot: u64,
    stats: NormalizerStats,
}

/// SplitMix64 finalizer — the per-slot stagger hash.
fn mix(z: u64) -> u64 {
    let mut z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl AddressNormalizer {
    /// Creates an empty normalizer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Diagnostics about region creation so far.
    pub fn stats(&self) -> NormalizerStats {
        self.stats
    }

    /// Virtual anchor address of region slot `slot`.
    ///
    /// Slots are spaced far apart, biased to leave backward-extension
    /// headroom, and staggered by a deterministic line-aligned offset so
    /// region bases spread across cache sets like real allocations do.
    fn slot_anchor(slot: u64) -> u64 {
        // Stagger < 4 MiB, 64-byte aligned: slot spacing is a power of
        // two (≡ 0 modulo every cache's way size), so without the stagger
        // every region base would compete for the same sets of the 4 MB
        // direct-mapped L2. Spreading bases across its full index range
        // mimics how a real bump-ish allocator scatters arrays.
        let stagger = mix(slot) & 0x003F_FFC0;
        HEAP_BASE + slot * SLOT_SPACING + ANCHOR_BIAS + stagger
    }

    fn new_region(&mut self, len: u64) -> Region {
        let slot = self.next_slot;
        self.next_slot += 1;
        assert!(
            len < SLOT_SPACING - ANCHOR_BIAS - (1 << 22),
            "region of {len} bytes exceeds the virtual slot capacity"
        );
        Region { len, virt_base: Self::slot_anchor(slot) }
    }

    /// Declares `[base, base + len)` as one fresh region, superseding any
    /// overlapping older regions (their memory was freed and reused).
    pub fn register(&mut self, base: u64, len: u64) {
        if len == 0 {
            return;
        }
        // Drop every region overlapping the new range.
        let mut doomed = Vec::new();
        if let Some((&b, r)) = self.regions.range(..base).next_back() {
            if b + r.len > base {
                doomed.push(b);
            }
        }
        doomed.extend(self.regions.range(base..base + len).map(|(&b, _)| b));
        for b in doomed {
            self.regions.remove(&b);
        }
        let region = self.new_region(len);
        self.stats.registered_regions += 1;
        self.regions.insert(base, region);
    }

    /// Maps one touched object `[addr, addr + size)` to its virtual
    /// address, opening or extending a region as needed.
    pub fn normalize(&mut self, addr: u64, size: u64) -> u64 {
        let size = size.max(1);

        // Inside or exactly at the growing edge of a preceding region?
        if let Some((&base, region)) = self.regions.range_mut(..=addr).next_back() {
            if addr <= base + region.len {
                let end = addr + size - base;
                if end > region.len {
                    region.len = end;
                }
                return region.virt_base + (addr - base);
            }
        }

        // Exactly abutting (or overlapping) the front of a following
        // region? Extend it backward, keeping its mapping linear.
        if let Some((&base, &region)) = self.regions.range(addr..addr + size + 1).next() {
            debug_assert!(base > addr);
            let growth = base - addr;
            assert!(
                growth < ANCHOR_BIAS,
                "region extended {growth} bytes backward past its anchor headroom"
            );
            self.regions.remove(&base);
            let grown = Region {
                len: region.len + growth,
                virt_base: region.virt_base - growth,
            };
            self.regions.insert(addr, grown);
            return grown.virt_base;
        }

        // Unknown memory: open a fallback region for this object.
        let region = self.new_region(size);
        self.stats.fallback_regions += 1;
        self.regions.insert(addr, region);
        region.virt_base
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_touch_sequences_normalize_identically() {
        // Two "runs" of the same logical program with different raw
        // layouts (simulating allocator drift) produce identical virtual
        // streams.
        let run = |heap_base: u64| -> Vec<u64> {
            let mut n = AddressNormalizer::new();
            let a = heap_base; // array A: 64 elements of 8 bytes
            let b = heap_base + 0x2000; // array B elsewhere
            n.register(a, 512);
            n.register(b, 512);
            let mut out = Vec::new();
            for i in 0..64 {
                out.push(n.normalize(a + i * 8, 8));
                out.push(n.normalize(b + (63 - i) * 8, 8));
            }
            out.push(n.normalize(heap_base + 0x9000, 8)); // stray scalar
            out
        };
        assert_eq!(run(0x7f12_3450_0000), run(0x5566_0000_1230));
    }

    #[test]
    fn registered_region_preserves_internal_layout() {
        let mut n = AddressNormalizer::new();
        let base = 0x1234_5678;
        n.register(base, 4096);
        let v0 = n.normalize(base, 4);
        let v100 = n.normalize(base + 100, 4);
        let v4092 = n.normalize(base + 4092, 4);
        assert_eq!(v100 - v0, 100);
        assert_eq!(v4092 - v0, 4092);
        assert_eq!(n.stats().registered_regions, 1);
        assert_eq!(n.stats().fallback_regions, 0);
    }

    #[test]
    fn contiguous_first_touch_coalesces() {
        let mut n = AddressNormalizer::new();
        let base = 0x9000;
        let first = n.normalize(base, 4);
        for i in 1..100u64 {
            let v = n.normalize(base + i * 4, 4);
            assert_eq!(v, first + i * 4, "element {i} left the region");
        }
        assert_eq!(n.stats().fallback_regions, 1);
    }

    #[test]
    fn backward_touch_extends_frontward_region() {
        let mut n = AddressNormalizer::new();
        let base = 0x9000;
        let v8 = n.normalize(base + 8, 8);
        let v0 = n.normalize(base, 8); // exactly abuts the front
        assert_eq!(v8 - v0, 8);
        assert_eq!(n.stats().fallback_regions, 1);
    }

    #[test]
    fn disjoint_objects_get_disjoint_regions() {
        let mut n = AddressNormalizer::new();
        let a = n.normalize(0x9000, 8);
        let b = n.normalize(0x9010, 8); // 8-byte gap: different object
        assert_ne!(a, b);
        assert_eq!(n.stats().fallback_regions, 2);
        // The same raw addresses keep their mapping.
        assert_eq!(n.normalize(0x9000, 8), a);
        assert_eq!(n.normalize(0x9010, 8), b);
    }

    #[test]
    fn registration_supersedes_overlapping_regions() {
        let mut n = AddressNormalizer::new();
        let stale = n.normalize(0x9000, 8);
        n.register(0x8f00, 0x200); // reused allocation covering 0x9000
        let fresh = n.normalize(0x9000, 8);
        assert_ne!(stale, fresh);
        assert_eq!(n.normalize(0x8f00, 8) + 0x100, fresh);
    }

    #[test]
    fn slot_anchors_are_staggered() {
        let anchors: Vec<u64> = (0..16).map(AddressNormalizer::slot_anchor).collect();
        let offsets: std::collections::HashSet<u64> =
            anchors.iter().map(|a| a & (SLOT_SPACING - 1)).collect();
        assert!(offsets.len() > 8, "slot bases should spread across cache sets");
        assert!(anchors.iter().all(|a| a % 64 == 0), "anchors stay line-aligned");
    }

    #[test]
    fn zero_sized_registration_is_ignored() {
        let mut n = AddressNormalizer::new();
        n.register(0x9000, 0);
        assert_eq!(n.stats().registered_regions, 0);
    }
}
