//! Trace recording and replay.
//!
//! Characterizing one program on four platform models naively re-executes
//! the kernel once per consumer. [`Recording`] captures the micro-op
//! stream (and the static program) once; [`Recording::replay`] feeds it
//! to any number of consumers afterwards — the ATOM analog of saving a
//! trace file.
//!
//! The stream is stored in the packed fixed-width encoding of
//! [`crate::packed`] (~12–20 bytes per op instead of the 88-byte
//! [`MicroOp`]), and replay decodes it streaming into one reused
//! `MicroOp` — the unpacked vector never exists.

use bioperf_isa::{MicroOp, Program};

use crate::packed::{OpBlock, PackedStream, BLOCK_OPS};
use crate::tracer::TraceConsumer;

/// Default cap on recorded ops (packed, ~16 bytes each; 256M ops ≈ 4 GB
/// is past any reasonable in-memory trace).
pub const DEFAULT_CAPACITY: usize = 256 << 20;

/// A trace consumer that records the stream for later replay.
///
/// # Example
///
/// ```
/// use bioperf_isa::here;
/// use bioperf_trace::{consumers::InstrMix, replay::Recorder, Tape, Tracer};
///
/// let mut tape = Tape::new(Recorder::new());
/// let x = 5u64;
/// let v = tape.int_load(here!("k"), &x);
/// tape.int_op(here!("k"), &[v]);
/// let (program, recorder) = tape.finish();
/// let recording = recorder.into_recording(program);
///
/// let mut mix = InstrMix::default();
/// recording.replay(&mut mix);
/// assert_eq!(mix.total(), 2);
/// let mut mix2 = InstrMix::default();
/// recording.replay(&mut mix2); // replay as many times as needed
/// assert_eq!(mix, mix2);
/// ```
#[derive(Debug, Clone)]
pub struct Recorder {
    stream: PackedStream,
    capacity: usize,
    overflowed: bool,
}

impl Default for Recorder {
    fn default() -> Self {
        Self::new()
    }
}

impl Recorder {
    /// Creates a recorder with the default capacity.
    pub fn new() -> Self {
        Self::with_capacity(DEFAULT_CAPACITY)
    }

    /// Creates a recorder that keeps at most `capacity` ops; the rest of
    /// the stream is counted but dropped (check [`overflowed`]).
    ///
    /// [`overflowed`]: Recorder::overflowed
    pub fn with_capacity(capacity: usize) -> Self {
        Self { stream: PackedStream::new(), capacity, overflowed: false }
    }

    /// Whether the trace exceeded the capacity (the recording is then a
    /// prefix of the full run).
    pub fn overflowed(&self) -> bool {
        self.overflowed
    }

    /// Ops recorded so far.
    pub fn len(&self) -> usize {
        self.stream.len()
    }

    /// Whether nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.stream.is_empty()
    }

    /// Pairs the recorded ops with their static program.
    pub fn into_recording(self, program: Program) -> Recording {
        Recording { stream: self.stream, program, complete: !self.overflowed }
    }
}

impl TraceConsumer for Recorder {
    fn consume(&mut self, op: &MicroOp, _program: &Program) {
        if self.stream.len() < self.capacity {
            self.stream.push(op);
        } else {
            self.overflowed = true;
        }
    }
}

/// A captured trace: the packed dynamic op stream plus the static
/// program.
#[derive(Debug, Clone)]
pub struct Recording {
    stream: PackedStream,
    program: Program,
    complete: bool,
}

impl Recording {
    /// The static program the ops refer to.
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// Number of recorded dynamic ops.
    pub fn len(&self) -> usize {
        self.stream.len()
    }

    /// Whether the recording is empty.
    pub fn is_empty(&self) -> bool {
        self.stream.is_empty()
    }

    /// Whether the whole run was captured (false if the recorder
    /// overflowed its capacity).
    pub fn is_complete(&self) -> bool {
        self.complete
    }

    /// Bytes held by the packed encoding (see
    /// [`PackedStream::payload_bytes`]).
    pub fn payload_bytes(&self) -> usize {
        self.stream.payload_bytes()
    }

    /// Average encoded bytes per op.
    pub fn bytes_per_op(&self) -> f64 {
        self.stream.bytes_per_op()
    }

    /// Feeds the recorded stream (and a final `finish`) to a consumer.
    ///
    /// A single-consumer bank: routes through
    /// [`replay_bank`](Self::replay_bank) so there is exactly one replay
    /// loop in the crate to optimize and test.
    pub fn replay<C: TraceConsumer>(&self, consumer: &mut C) {
        self.replay_bank(std::slice::from_mut(consumer));
    }

    /// Iterates over the recorded ops, decoded by value.
    pub fn iter(&self) -> impl Iterator<Item = MicroOp> + '_ {
        self.stream.iter()
    }

    /// Single-pass fan-out replay: decodes the stream exactly once and
    /// feeds every decoded op to each consumer in the bank (then a final
    /// `finish` each, like [`replay`](Self::replay)).
    ///
    /// This is the suite's platform-bank kernel: one packed decode drives
    /// all platform simulators, instead of each consumer paying the
    /// ~10 ns/op decode again. Ops are delivered in [`BLOCK_OPS`]-sized
    /// [`OpBlock`] batches — decoded once per block, then handed to each
    /// consumer's [`TraceConsumer::consume_block`] — so a consumer's
    /// state stays hot across the whole block instead of the bank's
    /// combined working set thrashing per op. The consumers are
    /// homogeneous (`&mut [C]`), so the inner dispatch is static; results
    /// are identical to replaying each consumer separately because decode
    /// shares no state with consumption.
    pub fn replay_bank<C: TraceConsumer>(&self, consumers: &mut [C]) {
        self.replay_bank_blocks(consumers, BLOCK_OPS);
    }

    /// [`replay_bank`](Self::replay_bank) with an explicit block size —
    /// the benchmarking and property-test hook (block size must never
    /// change any result).
    pub fn replay_bank_blocks<C: TraceConsumer>(&self, consumers: &mut [C], block_ops: usize) {
        let mut block = OpBlock::with_capacity(block_ops.min(self.stream.len()));
        let mut decoder = self.stream.block_decoder();
        while decoder.next_block(&mut block, block_ops) > 0 {
            for c in consumers.iter_mut() {
                c.consume_block(&block, &self.program);
            }
        }
        for c in consumers.iter_mut() {
            c.finish(&self.program);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::consumers::InstrMix;
    use crate::{Tape, Tracer};
    use bioperf_isa::here;

    fn small_recording(n: usize) -> Recording {
        let x = 3u64;
        let mut tape = Tape::new(Recorder::new());
        for i in 0..n {
            let v = tape.int_load(here!("k"), &x);
            tape.branch(here!("k"), &[v], i % 2 == 0);
        }
        let (program, rec) = tape.finish();
        rec.into_recording(program)
    }

    #[test]
    fn replay_reproduces_the_stream() {
        let rec = small_recording(50);
        assert_eq!(rec.len(), 100);
        assert!(rec.is_complete());
        let mut a = InstrMix::default();
        rec.replay(&mut a);
        let mut b = InstrMix::default();
        rec.replay(&mut b);
        assert_eq!(a, b);
        assert_eq!(a.loads(), 50);
        assert_eq!(a.cond_branches(), 50);
    }

    #[test]
    fn capacity_overflow_is_flagged() {
        let x = 1u64;
        let mut tape = Tape::new(Recorder::with_capacity(10));
        for _ in 0..20 {
            tape.int_load(here!("k"), &x);
        }
        let (program, rec) = tape.finish();
        assert!(rec.overflowed());
        let recording = rec.into_recording(program);
        assert_eq!(recording.len(), 10);
        assert!(!recording.is_complete());
    }

    #[test]
    fn recorded_ops_preserve_identity_and_outcome() {
        let rec = small_recording(4);
        let branches: Vec<bool> = rec
            .iter()
            .filter(|op| op.kind.is_cond_branch())
            .map(|op| op.taken)
            .collect();
        assert_eq!(branches, vec![true, false, true, false]);
    }

    #[test]
    fn packed_recording_matches_unpacked_stream() {
        // The equivalence layer: record through (Vec collect, Recorder)
        // simultaneously and require decode == the original stream.
        #[derive(Default)]
        struct Collect(Vec<MicroOp>);
        impl TraceConsumer for Collect {
            fn consume(&mut self, op: &MicroOp, _p: &Program) {
                self.0.push(*op);
            }
        }

        let xs: Vec<u64> = (0..64).collect();
        let mut tape = Tape::new((Collect::default(), Recorder::new()));
        let mut acc = tape.lit();
        for (i, x) in xs.iter().enumerate() {
            let v = tape.int_load(here!("k"), x);
            acc = tape.int_op(here!("k"), &[acc, v]);
            let sel = tape.select(here!("k"), &[acc, v], i % 2 == 0);
            tape.fp_store(here!("k"), x, sel);
            tape.branch(here!("k"), &[sel], i % 3 == 0);
        }
        let (program, (collect, rec)) = tape.finish();
        let recording = rec.into_recording(program);
        let decoded: Vec<MicroOp> = recording.iter().collect();
        assert_eq!(decoded, collect.0);
        assert!(recording.bytes_per_op() <= 24.0, "got {}", recording.bytes_per_op());
    }

    #[test]
    fn bank_replay_matches_sequential_replays() {
        let rec = small_recording(64);
        let mut bank = vec![InstrMix::default(); 3];
        rec.replay_bank(&mut bank);
        for b in &bank {
            let mut solo = InstrMix::default();
            rec.replay(&mut solo);
            assert_eq!(*b, solo, "bank consumer must equal a sequential replay");
        }
    }

    #[test]
    fn empty_recording_replays_cleanly() {
        let tape = Tape::new(Recorder::new());
        let (program, rec) = tape.finish();
        let recording = rec.into_recording(program);
        assert!(recording.is_empty());
        let mut mix = InstrMix::default();
        recording.replay(&mut mix);
        assert_eq!(mix.total(), 0);
    }
}
