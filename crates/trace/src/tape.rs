//! The recording tracer.

use bioperf_isa::{MicroOp, OpKind, Program, SrcLoc, VReg, MAX_SRCS};

use crate::normalize::{AddressNormalizer, NormalizerStats};
use crate::tracer::{TraceConsumer, Tracer};

/// Handle to a traced SSA value (a virtual register).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Val(VReg);

impl Val {
    /// The underlying virtual register.
    pub fn vreg(self) -> VReg {
        self.0
    }
}

/// Recording implementation of [`Tracer`]: executes the kernel's
/// instrumentation calls, interning static instructions and streaming
/// [`MicroOp`]s to a [`TraceConsumer`].
///
/// Equivalent to running an ATOM-instrumented binary: the consumer plays
/// the role of the analysis routine linked into the binary.
///
/// By default every recorded effective address passes through an
/// [`AddressNormalizer`], so the emitted stream — and any cache
/// statistics computed from it — is bit-identical across runs regardless
/// of allocator placement or ASLR. [`Tape::raw`] opts out and records
/// true process addresses.
///
/// # Example
///
/// ```
/// use bioperf_isa::here;
/// use bioperf_trace::{consumers::InstrMix, Tape, Tracer};
///
/// let mut tape = Tape::new(InstrMix::default());
/// let x = tape.int_load(here!("demo"), &7u64);
/// let y = tape.int_op(here!("demo"), &[x]);
/// tape.branch(here!("demo"), &[y], true);
/// let (program, mix) = tape.finish();
/// assert_eq!(mix.total(), 3);
/// assert_eq!(program.len(), 3);
/// ```
#[derive(Debug)]
pub struct Tape<C> {
    program: Program,
    consumer: C,
    next_vreg: u64,
    ops_emitted: u64,
    normalizer: Option<AddressNormalizer>,
}

impl<C: TraceConsumer> Tape<C> {
    /// Creates a tape streaming into `consumer`, with deterministic
    /// address normalization on.
    pub fn new(consumer: C) -> Self {
        Self {
            program: Program::new(),
            consumer,
            next_vreg: 0,
            ops_emitted: 0,
            normalizer: Some(AddressNormalizer::new()),
        }
    }

    /// Creates a tape recording raw process addresses (no normalization).
    ///
    /// Useful for inspecting the kernel's true memory layout; raw traces
    /// are *not* reproducible across runs.
    pub fn raw(consumer: C) -> Self {
        Self { normalizer: None, ..Self::new(consumer) }
    }

    /// Address-normalization diagnostics, or `None` for a raw tape.
    pub fn normalizer_stats(&self) -> Option<NormalizerStats> {
        self.normalizer.as_ref().map(|n| n.stats())
    }

    /// Number of dynamic micro-ops emitted so far.
    pub fn ops_emitted(&self) -> u64 {
        self.ops_emitted
    }

    /// The static-instruction table built so far.
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// Borrows the consumer (e.g. to inspect running statistics).
    pub fn consumer(&self) -> &C {
        &self.consumer
    }

    /// Ends the trace: notifies the consumer and returns the static
    /// program together with the consumer.
    pub fn finish(mut self) -> (Program, C) {
        self.consumer.finish(&self.program);
        (self.program, self.consumer)
    }

    fn fresh(&mut self) -> VReg {
        let v = VReg(self.next_vreg);
        self.next_vreg += 1;
        v
    }

    fn emit(&mut self, op: MicroOp) {
        self.ops_emitted += 1;
        self.consumer.consume(&op, &self.program);
    }

    fn srcs_array(srcs: &[Val]) -> [Option<VReg>; MAX_SRCS] {
        assert!(
            srcs.len() <= MAX_SRCS,
            "micro-ops take at most {MAX_SRCS} sources; chain ops for wider fan-in"
        );
        let mut out = [None; MAX_SRCS];
        for (slot, v) in out.iter_mut().zip(srcs) {
            *slot = Some(v.0);
        }
        out
    }

    fn effective_addr<T>(&mut self, addr: &T) -> u64 {
        let raw = addr as *const T as u64;
        match &mut self.normalizer {
            Some(n) => n.normalize(raw, std::mem::size_of::<T>() as u64),
            None => raw,
        }
    }

    fn record_load<T>(&mut self, loc: SrcLoc, kind: OpKind, addr: &T, base: Option<Val>) -> Val {
        let sid = self.program.intern(kind, loc);
        let dst = self.fresh();
        let ea = self.effective_addr(addr);
        let op = MicroOp::load(sid, kind, dst, ea, base.map(|b| b.0));
        self.emit(op);
        Val(dst)
    }

    fn record_store<T>(&mut self, loc: SrcLoc, kind: OpKind, addr: &T, value: Val) {
        let sid = self.program.intern(kind, loc);
        let ea = self.effective_addr(addr);
        let op = MicroOp::store(sid, kind, Some(value.0), ea);
        self.emit(op);
    }
}

impl<C: TraceConsumer> Tracer for Tape<C> {
    type Val = Val;

    fn lit(&mut self) -> Val {
        // Literals occupy a vreg but emit no op: they are "already ready"
        // values (immediates / pre-loop live-ins). Consumers treat vregs
        // with no recorded producer as ready at time zero.
        Val(self.fresh())
    }

    fn int_load<T>(&mut self, loc: SrcLoc, addr: &T) -> Val {
        self.record_load(loc, OpKind::IntLoad, addr, None)
    }

    fn int_load_via<T>(&mut self, loc: SrcLoc, addr: &T, base: Val) -> Val {
        self.record_load(loc, OpKind::IntLoad, addr, Some(base))
    }

    fn fp_load<T>(&mut self, loc: SrcLoc, addr: &T) -> Val {
        self.record_load(loc, OpKind::FpLoad, addr, None)
    }

    fn int_store<T>(&mut self, loc: SrcLoc, addr: &T, value: Val) {
        self.record_store(loc, OpKind::IntStore, addr, value);
    }

    fn fp_store<T>(&mut self, loc: SrcLoc, addr: &T, value: Val) {
        self.record_store(loc, OpKind::FpStore, addr, value);
    }

    fn op(&mut self, loc: SrcLoc, kind: OpKind, srcs: &[Val]) -> Val {
        debug_assert!(!kind.is_mem() && !kind.is_cond_branch(), "use the dedicated methods");
        let sid = self.program.intern(kind, loc);
        let dst = self.fresh();
        let op = MicroOp::compute(sid, kind, dst, Self::srcs_array(srcs));
        self.emit(op);
        Val(dst)
    }

    fn branch(&mut self, loc: SrcLoc, srcs: &[Val], taken: bool) -> bool {
        let sid = self.program.intern(OpKind::CondBranch, loc);
        let op = MicroOp::branch(sid, Self::srcs_array(srcs), taken);
        self.emit(op);
        taken
    }

    fn select(&mut self, loc: SrcLoc, srcs: &[Val], cond: bool) -> Val {
        let sid = self.program.intern(OpKind::CondMove, loc);
        let dst = self.fresh();
        let mut op = MicroOp::compute(sid, OpKind::CondMove, dst, Self::srcs_array(srcs));
        op.taken = cond;
        self.emit(op);
        Val(dst)
    }

    fn jump(&mut self, loc: SrcLoc) {
        let sid = self.program.intern(OpKind::Jump, loc);
        let op = MicroOp {
            sid,
            kind: OpKind::Jump,
            dst: None,
            srcs: [None; MAX_SRCS],
            addr: None,
            taken: true,
        };
        self.emit(op);
    }

    fn region<T>(&mut self, _loc: SrcLoc, data: &[T]) {
        if let Some(n) = &mut self.normalizer {
            n.register(data.as_ptr() as u64, std::mem::size_of_val(data) as u64);
        }
    }

    fn region_raw<T>(&mut self, _loc: SrcLoc, base: *const T, elems: usize) {
        if let Some(n) = &mut self.normalizer {
            n.register(base as u64, (elems * std::mem::size_of::<T>()) as u64);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bioperf_isa::here;

    /// Collects the raw op stream for assertions.
    #[derive(Default)]
    struct Collect(Vec<MicroOp>);

    impl TraceConsumer for Collect {
        fn consume(&mut self, op: &MicroOp, _p: &Program) {
            self.0.push(*op);
        }
    }

    #[test]
    fn vregs_are_ssa() {
        let mut t = Tape::new(Collect::default());
        let a = t.int_load(here!("f"), &1u64);
        let b = t.int_load(here!("f"), &2u64);
        let c = t.int_op(here!("f"), &[a, b]);
        assert_ne!(a.vreg(), b.vreg());
        assert_ne!(b.vreg(), c.vreg());
        let (_, ops) = t.finish();
        assert_eq!(ops.0.len(), 3);
        assert_eq!(ops.0[2].srcs[0], Some(a.vreg()));
        assert_eq!(ops.0[2].srcs[1], Some(b.vreg()));
    }

    #[test]
    fn raw_tape_records_true_addresses() {
        let xs = [5u64, 6, 7];
        let mut t = Tape::raw(Collect::default());
        t.int_load(here!("f"), &xs[2]);
        let (_, ops) = t.finish();
        assert_eq!(ops.0[0].addr, Some(&xs[2] as *const u64 as u64));
        assert!(Tape::raw(Collect::default()).normalizer_stats().is_none());
    }

    #[test]
    fn normalized_addresses_preserve_array_layout() {
        let xs = [5u64, 6, 7];
        let mut t = Tape::new(Collect::default());
        t.region(here!("f"), &xs);
        for x in &xs {
            t.int_load(here!("f"), x);
        }
        let stats = t.normalizer_stats().unwrap();
        assert_eq!(stats.registered_regions, 1);
        assert_eq!(stats.fallback_regions, 0);
        let (_, ops) = t.finish();
        let a: Vec<u64> = ops.0.iter().map(|op| op.addr.unwrap()).collect();
        assert_eq!(a[1] - a[0], 8);
        assert_eq!(a[2] - a[1], 8);
        assert_ne!(a[0], &xs[0] as *const u64 as u64, "addresses are virtual");
    }

    #[test]
    fn normalized_streams_are_allocation_invariant() {
        // The same logical trace over two *different* heap allocations
        // emits bit-identical address streams.
        let run = || {
            let xs: Vec<u64> = (0..64).collect();
            let mut t = Tape::new(Collect::default());
            t.region(here!("f"), &xs);
            for i in [0usize, 63, 7, 7, 31] {
                t.int_load(here!("f"), &xs[i]);
            }
            let (_, ops) = t.finish();
            ops.0.iter().map(|op| op.addr.unwrap()).collect::<Vec<u64>>()
        };
        let first = run();
        let second = run();
        assert_eq!(first, second);
    }

    #[test]
    fn same_loop_site_shares_static_id() {
        let xs = [1u64, 2, 3, 4];
        let mut t = Tape::new(Collect::default());
        for x in &xs {
            t.int_load(here!("f"), x);
        }
        let (program, ops) = t.finish();
        assert_eq!(program.len(), 1, "one static load");
        assert_eq!(ops.0.len(), 4, "four dynamic loads");
        assert!(ops.0.windows(2).all(|w| w[0].sid == w[1].sid));
    }

    #[test]
    fn branch_returns_and_records_outcome() {
        let mut t = Tape::new(Collect::default());
        let v = t.lit();
        assert!(t.branch(here!("f"), &[v], true));
        assert!(!t.branch(here!("f"), &[v], false));
        let (_, ops) = t.finish();
        assert!(ops.0[0].taken);
        assert!(!ops.0[1].taken);
    }

    #[test]
    fn lit_emits_no_op() {
        let mut t = Tape::new(Collect::default());
        let _ = t.lit();
        assert_eq!(t.ops_emitted(), 0);
    }

    #[test]
    fn pointer_chase_records_base_dependence() {
        let x = 9u64;
        let mut t = Tape::new(Collect::default());
        let p = t.int_load(here!("f"), &x);
        t.int_load_via(here!("f"), &x, p);
        let (_, ops) = t.finish();
        assert_eq!(ops.0[1].srcs[0], Some(p.vreg()));
    }

    #[test]
    #[should_panic(expected = "at most")]
    fn too_many_sources_panics() {
        let mut t = Tape::new(Collect::default());
        let v = t.lit();
        t.int_op(here!("f"), &[v, v, v, v]);
    }

    #[test]
    fn stores_record_value_dependence() {
        let x = 1u64;
        let mut t = Tape::new(Collect::default());
        let v = t.int_load(here!("f"), &x);
        t.int_store(here!("f"), &x, v);
        let (_, ops) = t.finish();
        assert_eq!(ops.0[1].srcs[0], Some(v.vreg()));
        assert!(ops.0[1].kind.is_store());
    }
}
