//! Seeded fault hooks for the differential conformance harness.
//!
//! With the `conform-inject` feature enabled, the conformance crate can
//! arm exactly one catalogued fault process-wide; the corresponding call
//! site in the optimized model then misbehaves in a specific, documented
//! way, and the conformance fuzzer must detect the divergence within its
//! case budget — mutation testing for the test suite itself. Without the
//! feature (every production build) [`active`] is a constant `false` the
//! optimizer removes; with the feature compiled in but nothing armed,
//! behavior is bit-identical to an uninstrumented build.

/// No fault armed. Never passed to [`active`].
pub const NONE: u8 = 0;
/// Encode near-source backward deltas ≥ 2 off by one, corrupting the
/// decoded dataflow edge.
pub const SRC_DELTA: u8 = 1;
/// After a far-destination side-table entry, advance the running SSA
/// counter instead of resynchronizing it to the recorded destination.
pub const SSA_RESYNC: u8 = 2;
/// Record a stale SSA start counter in each spilled segment header,
/// breaking the standalone-decode invariant of non-first segments.
pub const SEG_COUNTER: u8 = 3;
/// Mis-carry the running SSA counter across a block edge in the block
/// decoder, corrupting every implicit destination after the first
/// non-initial block boundary.
pub const BLOCK_CARRY: u8 = 4;
/// Rotate each sweep bank job's per-cell results by one before the
/// cell merge, crediting every measurement to a neighboring grid cell.
/// The atomic lives here (not in the sweep's own crate) because the
/// conformance catalogue can only arm faults in crates *below* it in
/// the dependency graph; the perturbation site is in `bioperf-core`.
pub const SWEEP_MERGE: u8 = 5;
/// Start the factored sweep's miss-level annotation cursor at 1 instead
/// of 0, so every annotated access reads its successor's level — the
/// off-by-one the `sweep-factor` self-check must catch. Lives here for
/// the same dependency-graph reason as [`SWEEP_MERGE`]; the perturbation
/// site is `CycleSim::with_annotations` in `bioperf-pipe`.
pub const ANN_SKEW: u8 = 6;

#[cfg(feature = "conform-inject")]
mod imp {
    use std::sync::atomic::{AtomicU8, Ordering};

    static ARMED: AtomicU8 = AtomicU8::new(super::NONE);

    /// Arms `fault` (or [`super::NONE`] to disarm) for the whole process.
    pub fn set(fault: u8) {
        ARMED.store(fault, Ordering::SeqCst);
    }

    /// Whether `fault` is the currently armed fault.
    #[inline]
    pub fn active(fault: u8) -> bool {
        ARMED.load(Ordering::Relaxed) == fault
    }
}

#[cfg(not(feature = "conform-inject"))]
mod imp {
    /// No-op without the `conform-inject` feature.
    pub fn set(_fault: u8) {}

    /// Constant `false` without the `conform-inject` feature.
    #[inline(always)]
    pub fn active(_fault: u8) -> bool {
        false
    }
}

pub use imp::{active, set};
