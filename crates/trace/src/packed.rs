//! Fixed-width packed encoding of the dynamic micro-op stream.
//!
//! A [`MicroOp`] is convenient to produce and consume but bulky to store:
//! `Option<VReg>` fields alone push it to 88 bytes, so a large-scale
//! recording is gigabytes of memory — and replay, which dominates the
//! suite's wall-clock, re-walks all of it once per platform model. The
//! packed encoding shrinks the per-op record to a fixed 12 bytes plus a
//! structure-of-arrays `u64` address stream for memory ops, cutting
//! replay's memory traffic roughly sixfold while decoding back to the
//! *bit-identical* op stream.
//!
//! Three observations make 12 bytes enough:
//!
//! * **Destinations are (almost) emission order.** The tape assigns SSA
//!   virtual registers from a monotone counter, so an op's destination is
//!   exactly the decoder's running counter — it does not need to be
//!   stored. The only exceptions are gaps introduced by [`Tracer::lit`]
//!   (which claims a vreg but emits no op); those ops record their true
//!   destination in a rare side table that also resynchronizes the
//!   counter.
//! * **Sources are close.** Dependence distances are short in real code;
//!   a source is stored as a backward delta from the running counter and
//!   fits 16 bits essentially always. Far references fall back to a
//!   side table of full `u64`s.
//! * **Only memory ops carry addresses.** The `u64` effective address
//!   moves to a parallel array indexed by a presence flag, so ALU ops and
//!   branches pay nothing for it.
//!
//! Every fallback keeps the format lossless for *arbitrary* op streams
//! (the property test round-trips adversarial ones), but on real traces
//! the side tables hold well under 0.1% of the ops, and
//! [`PackedStream::bytes_per_op`] stays under 24 bytes even for
//! all-memory traces.
//!
//! [`Tracer::lit`]: crate::Tracer::lit

use bioperf_isa::{MicroOp, OpKind, StaticId, VReg, MAX_SRCS};

/// Bit layout of [`PackedOp::flags`].
const KIND_MASK: u16 = 0b1111;
const TAKEN_BIT: u16 = 1 << 4;
const ADDR_BIT: u16 = 1 << 5;
const DST_SHIFT: u32 = 6;
const SRC_SHIFT: [u32; MAX_SRCS] = [8, 10, 12];
const FIELD_MASK: u16 = 0b11;

/// Destination / source field modes (2 bits each).
const MODE_NONE: u16 = 0;
const MODE_NEAR: u16 = 1; // dst: implicit counter; src: 16-bit backward delta
const MODE_FAR: u16 = 2; // full u64 in the corresponding side table

/// One dynamic op in packed form: static id, a flag word, and up to
/// three 16-bit backward source deltas. 12 bytes, `u32`-aligned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct PackedOp {
    sid: u32,
    flags: u16,
    deltas: [u16; MAX_SRCS],
}

/// An append-only packed op stream with streaming decode.
///
/// Encoding is stateful (the running vreg counter), so ops must be
/// pushed in trace order; decoding replays the same counter arithmetic.
///
/// # Example
///
/// ```
/// use bioperf_isa::{here, MicroOp, OpKind, StaticId, VReg};
/// use bioperf_trace::packed::PackedStream;
///
/// let op = MicroOp::load(StaticId::from_raw(0), OpKind::IntLoad, VReg(0), 0x40, None);
/// let mut stream = PackedStream::new();
/// stream.push(&op);
/// let mut decoded = Vec::new();
/// stream.for_each(|d| decoded.push(*d));
/// assert_eq!(decoded, vec![op]);
/// ```
#[derive(Debug, Clone, Default)]
pub struct PackedStream {
    ops: Vec<PackedOp>,
    /// Effective addresses of ops with [`ADDR_BIT`], in stream order.
    addrs: Vec<u64>,
    /// Full destinations of ops whose dst is not the running counter.
    far_dsts: Vec<u64>,
    /// Full sources whose backward delta overflows 16 bits.
    far_srcs: Vec<u64>,
    /// Encoder-side running vreg counter.
    counter: u64,
    /// Counter value encoding started from (decoding restarts here). `0`
    /// for a whole-trace stream; a segment of a spilled trace carries the
    /// counter it was split off at, so it decodes standalone (see
    /// [`crate::segment`]).
    base_counter: u64,
}

impl PackedStream {
    /// An empty stream.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty stream whose SSA counter starts at `base` instead of 0.
    ///
    /// This is the segment-spilling hook: a trace split into segments
    /// keeps encoding each segment with the counter value the previous
    /// segment ended on, so per-segment decode reproduces exactly the
    /// ops an unsegmented decode would.
    pub fn with_base_counter(base: u64) -> Self {
        Self { counter: base, base_counter: base, ..Self::default() }
    }

    /// The encoder's current running SSA counter (what the *next*
    /// segment of a split trace must start from).
    pub fn encode_counter(&self) -> u64 {
        self.counter
    }

    /// The counter value this stream's encoding started from.
    pub fn base_counter(&self) -> u64 {
        self.base_counter
    }

    /// Element counts of the four encoded columns:
    /// `[ops, addrs, far_dsts, far_srcs]`.
    pub fn column_lens(&self) -> [usize; 4] {
        [self.ops.len(), self.addrs.len(), self.far_dsts.len(), self.far_srcs.len()]
    }

    /// Exact wire size of [`write_payload`](Self::write_payload) for the
    /// given [`column_lens`](Self::column_lens).
    pub fn payload_wire_len(columns: [usize; 4]) -> usize {
        columns[0] * 12 + (columns[1] + columns[2] + columns[3]) * 8
    }

    /// Appends the wire encoding of the stream's payload to `out`: the
    /// 12-byte op records (`sid:u32, flags:u16, deltas:3×u16`, all
    /// little-endian) followed by the address, far-destination, and
    /// far-source `u64` columns.
    pub fn write_payload(&self, out: &mut Vec<u8>) {
        out.reserve(Self::payload_wire_len(self.column_lens()));
        for op in &self.ops {
            out.extend_from_slice(&op.sid.to_le_bytes());
            out.extend_from_slice(&op.flags.to_le_bytes());
            for d in op.deltas {
                out.extend_from_slice(&d.to_le_bytes());
            }
        }
        for column in [&self.addrs, &self.far_dsts, &self.far_srcs] {
            for v in column.iter() {
                out.extend_from_slice(&v.to_le_bytes());
            }
        }
    }

    /// Parses a payload produced by [`write_payload`](Self::write_payload)
    /// back into a decodable stream whose SSA counter starts at
    /// `base_counter`. Returns `None` if `bytes` is not exactly the wire
    /// size implied by `columns`.
    ///
    /// The parsed stream is for *decoding*: its encoder counter is left
    /// at `base_counter`, so pushing further ops onto it would re-encode
    /// from the segment start rather than the true stream tail.
    pub fn from_payload(columns: [usize; 4], base_counter: u64, bytes: &[u8]) -> Option<Self> {
        if bytes.len() != Self::payload_wire_len(columns) {
            return None;
        }
        let (mut stream, [n_ops, n_addrs, n_far_dsts, n_far_srcs]) =
            (Self::with_base_counter(base_counter), columns);
        let mut at = 0usize;
        let mut take = |n: usize| {
            let slice = &bytes[at..at + n];
            at += n;
            slice
        };
        stream.ops.reserve_exact(n_ops);
        for _ in 0..n_ops {
            let rec = take(12);
            stream.ops.push(PackedOp {
                sid: u32::from_le_bytes(rec[0..4].try_into().expect("4-byte slice")),
                flags: u16::from_le_bytes(rec[4..6].try_into().expect("2-byte slice")),
                deltas: [
                    u16::from_le_bytes(rec[6..8].try_into().expect("2-byte slice")),
                    u16::from_le_bytes(rec[8..10].try_into().expect("2-byte slice")),
                    u16::from_le_bytes(rec[10..12].try_into().expect("2-byte slice")),
                ],
            });
        }
        for (column, n) in [
            (&mut stream.addrs, n_addrs),
            (&mut stream.far_dsts, n_far_dsts),
            (&mut stream.far_srcs, n_far_srcs),
        ] {
            column.reserve_exact(n);
            for _ in 0..n {
                column.push(u64::from_le_bytes(take(8).try_into().expect("8-byte slice")));
            }
        }
        // Cross-validate the flag words against the column lengths so a
        // parsed stream can never panic during decode: every kind code
        // must be valid and every far/addr flag must have its side-table
        // entry.
        let (mut addrs, mut far_dsts, mut far_srcs) = (0usize, 0usize, 0usize);
        for op in &stream.ops {
            OpKind::from_code((op.flags & KIND_MASK) as u8)?;
            for shift in SRC_SHIFT {
                if (op.flags >> shift) & FIELD_MASK == MODE_FAR {
                    far_srcs += 1;
                }
            }
            if (op.flags >> DST_SHIFT) & FIELD_MASK == MODE_FAR {
                far_dsts += 1;
            }
            if op.flags & ADDR_BIT != 0 {
                addrs += 1;
            }
        }
        ((addrs, far_dsts, far_srcs) == (n_addrs, n_far_dsts, n_far_srcs)).then_some(stream)
    }

    /// Number of encoded ops.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether no op has been pushed.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Appends one op. Ops must arrive in trace order.
    pub fn push(&mut self, op: &MicroOp) {
        let base = self.counter;
        let mut flags = u16::from(op.kind.code()) & KIND_MASK;
        if op.taken {
            flags |= TAKEN_BIT;
        }
        let mut deltas = [0u16; MAX_SRCS];
        for (i, src) in op.srcs.iter().enumerate() {
            if let Some(v) = src {
                let delta = base.wrapping_sub(v.0);
                if v.0 < base && delta <= u64::from(u16::MAX) {
                    flags |= MODE_NEAR << SRC_SHIFT[i];
                    let mut near = delta as u16;
                    if crate::inject::active(crate::inject::SRC_DELTA) && near >= 2 {
                        near -= 1;
                    }
                    deltas[i] = near;
                } else {
                    flags |= MODE_FAR << SRC_SHIFT[i];
                    self.far_srcs.push(v.0);
                }
            }
        }
        match op.dst {
            None => {}
            Some(v) if v.0 == self.counter => {
                flags |= MODE_NEAR << DST_SHIFT;
                self.counter = self.counter.wrapping_add(1);
            }
            Some(v) => {
                flags |= MODE_FAR << DST_SHIFT;
                self.far_dsts.push(v.0);
                self.counter = if crate::inject::active(crate::inject::SSA_RESYNC) {
                    self.counter.wrapping_add(1)
                } else {
                    v.0.wrapping_add(1)
                };
            }
        }
        if let Some(addr) = op.addr {
            flags |= ADDR_BIT;
            self.addrs.push(addr);
        }
        self.ops.push(PackedOp { sid: op.sid.index() as u32, flags, deltas });
    }

    /// Decodes the stream into a reused [`MicroOp`], calling `f` once
    /// per op in trace order. No unpacked vector is ever materialized.
    pub fn for_each(&self, mut f: impl FnMut(&MicroOp)) {
        let mut cursor = self.start_cursor();
        let mut op = MicroOp {
            sid: StaticId::from_raw(0),
            kind: OpKind::IntAlu,
            dst: None,
            srcs: [None; MAX_SRCS],
            addr: None,
            taken: false,
        };
        for packed in &self.ops {
            self.decode_into(packed, &mut cursor, &mut op);
            f(&op);
        }
    }

    /// Iterates the decoded ops by value.
    pub fn iter(&self) -> Iter<'_> {
        Iter { stream: self, index: 0, cursor: self.start_cursor() }
    }

    /// A block decoder positioned at the start of the stream — the
    /// batched form of [`iter`](Self::iter) (see [`BlockDecoder`]).
    pub fn block_decoder(&self) -> BlockDecoder<'_> {
        BlockDecoder { stream: self, index: 0, cursor: self.start_cursor() }
    }

    /// Iterates the decoded ops by value starting at op `start`.
    ///
    /// Decoding is stateful (the running SSA destination counter and the
    /// side-table positions), so a mid-stream decoder must *reconstruct*
    /// that state — a default cursor at a nonzero index would misattribute
    /// every implicit destination after the first `lit()` gap. The state
    /// is rebuilt by a flags-only scan of the skipped prefix
    /// ([`cursor_at`](Self::cursor_at) — no `MicroOp` is materialized),
    /// and the scan reads resynchronized counter values out of the
    /// far-destination side table itself, so the resumed decoder is exact
    /// even when the split lands on an SSA-resync gap.
    ///
    /// # Panics
    ///
    /// Panics if `start > len()`.
    pub fn iter_from(&self, start: usize) -> Iter<'_> {
        Iter { stream: self, index: start, cursor: self.cursor_at(start) }
    }

    /// Decodes ops `start..` into a reused [`MicroOp`], calling `f` once
    /// per op — the resumable form of [`for_each`](Self::for_each).
    ///
    /// # Panics
    ///
    /// Panics if `start > len()`.
    pub fn for_each_from(&self, start: usize, mut f: impl FnMut(&MicroOp)) {
        let mut cursor = self.cursor_at(start);
        let mut op = MicroOp {
            sid: StaticId::from_raw(0),
            kind: OpKind::IntAlu,
            dst: None,
            srcs: [None; MAX_SRCS],
            addr: None,
            taken: false,
        };
        for packed in &self.ops[start..] {
            self.decode_into(packed, &mut cursor, &mut op);
            f(&op);
        }
    }

    /// Reconstructs the decode state positioned just before op `index` by
    /// scanning the packed flag words of the prefix: far-mode source and
    /// address flags advance the side-table positions, a near destination
    /// advances the SSA counter, and a far destination reloads the counter
    /// from the side table exactly as [`decode_into`](Self::decode_into)
    /// would.
    /// Decode state positioned at the start of the stream (the SSA
    /// counter begins at [`base_counter`](Self::base_counter)).
    fn start_cursor(&self) -> Cursor {
        Cursor { counter: self.base_counter, ..Cursor::default() }
    }

    fn cursor_at(&self, index: usize) -> Cursor {
        assert!(index <= self.ops.len(), "cursor index {index} out of range");
        let mut cursor = self.start_cursor();
        for packed in &self.ops[..index] {
            for shift in SRC_SHIFT {
                if (packed.flags >> shift) & FIELD_MASK == MODE_FAR {
                    cursor.far_src += 1;
                }
            }
            match (packed.flags >> DST_SHIFT) & FIELD_MASK {
                MODE_NONE => {}
                MODE_NEAR => cursor.counter = cursor.counter.wrapping_add(1),
                _ => {
                    cursor.counter = self.far_dsts[cursor.far_dst].wrapping_add(1);
                    cursor.far_dst += 1;
                }
            }
            if packed.flags & ADDR_BIT != 0 {
                cursor.addr += 1;
            }
        }
        cursor
    }

    /// Bytes held by the encoded representation (ops, addresses, side
    /// tables), excluding `Vec` headers and unused capacity.
    pub fn payload_bytes(&self) -> usize {
        self.ops.len() * std::mem::size_of::<PackedOp>()
            + (self.addrs.len() + self.far_dsts.len() + self.far_srcs.len())
                * std::mem::size_of::<u64>()
    }

    /// Average encoded bytes per op (0 for an empty stream).
    pub fn bytes_per_op(&self) -> f64 {
        if self.ops.is_empty() {
            0.0
        } else {
            self.payload_bytes() as f64 / self.ops.len() as f64
        }
    }

    /// Ops that needed a side-table entry (far destination or source) —
    /// diagnostics for the "rare fallback" claim.
    pub fn far_entries(&self) -> usize {
        self.far_dsts.len() + self.far_srcs.len()
    }

    fn decode_into(&self, packed: &PackedOp, cursor: &mut Cursor, op: &mut MicroOp) {
        let base = cursor.counter;
        op.sid = StaticId::from_raw(packed.sid);
        op.kind = OpKind::from_code((packed.flags & KIND_MASK) as u8)
            .expect("encoder only writes valid kind codes");
        op.taken = packed.flags & TAKEN_BIT != 0;
        for (i, shift) in SRC_SHIFT.iter().enumerate() {
            op.srcs[i] = match (packed.flags >> shift) & FIELD_MASK {
                MODE_NONE => None,
                MODE_NEAR => Some(VReg(base.wrapping_sub(u64::from(packed.deltas[i])))),
                _ => {
                    let v = self.far_srcs[cursor.far_src];
                    cursor.far_src += 1;
                    Some(VReg(v))
                }
            };
        }
        op.dst = match (packed.flags >> DST_SHIFT) & FIELD_MASK {
            MODE_NONE => None,
            MODE_NEAR => {
                let v = cursor.counter;
                cursor.counter = cursor.counter.wrapping_add(1);
                Some(VReg(v))
            }
            _ => {
                let v = self.far_dsts[cursor.far_dst];
                cursor.far_dst += 1;
                cursor.counter = v.wrapping_add(1);
                Some(VReg(v))
            }
        };
        op.addr = if packed.flags & ADDR_BIT != 0 {
            let a = self.addrs[cursor.addr];
            cursor.addr += 1;
            Some(a)
        } else {
            None
        };
    }
}

/// Streaming decode position.
#[derive(Debug, Clone, Copy, Default)]
struct Cursor {
    counter: u64,
    addr: usize,
    far_dst: usize,
    far_src: usize,
}

/// Default ops per decoded block: big enough to amortize per-block setup
/// to noise, small enough that a block (~0.5 MiB of decoded ops plus
/// filter columns) stays cache-resident while a consumer drains it.
pub const BLOCK_OPS: usize = 4096;

/// A reusable batch of decoded ops with structure-of-arrays filter
/// columns, filled by [`BlockDecoder::next_block`].
///
/// The `ops` array is the decode-once product every consumer can walk
/// (the default [`TraceConsumer::consume_block`] does exactly that); the
/// side columns pre-filter the two op classes the hot simulators care
/// about so their block loops touch no non-participating op:
///
/// * the **memory column** holds `(addr, is_load)` for every op carrying
///   an effective address — the cache hierarchy's exact access stream,
///   including non-load/store kinds with addresses, which the per-op
///   path also treats as accesses;
/// * the **branch column** holds `(sid, taken)` for every conditional
///   branch — the branch predictors' exact observation stream.
///
/// Capacity is retained across refills, so a replay loop allocates one
/// block up front and reuses it for the whole trace.
///
/// [`TraceConsumer::consume_block`]: crate::TraceConsumer::consume_block
#[derive(Debug, Clone, Default)]
pub struct OpBlock {
    ops: Vec<MicroOp>,
    mem_addrs: Vec<u64>,
    mem_loads: Vec<bool>,
    /// Block-relative op index of each memory-column entry.
    mem_idx: Vec<u32>,
    branch_sids: Vec<StaticId>,
    branch_taken: Vec<bool>,
    /// Block-relative op index of each branch-column entry.
    branch_idx: Vec<u32>,
    /// Block-relative op index of each conditional move (select); on
    /// platforms without if-conversion these resolve like branches, so
    /// their sid and predicate ride along in parallel columns.
    select_idx: Vec<u32>,
    select_sids: Vec<StaticId>,
    select_taken: Vec<bool>,
    /// `OpKind::code()` per op: a dense latency-class column.
    kind_codes: Vec<u8>,
    /// Program-ordered register-event stream: one entry per *present*
    /// source or destination, so register-model consumers never test
    /// `Option` slots. Parallel to [`reg_event_vreg`](Self::reg_event_vreg);
    /// see [`reg_event_meta`](Self::reg_event_meta) for the encoding.
    reg_event_meta: Vec<u32>,
    reg_event_vreg: Vec<u64>,
}

/// [`OpBlock::reg_event_meta`] bit layout: the event is a destination
/// write (else a source read at position `meta & REG_EVENT_POS`).
pub const REG_EVENT_DST: u32 = 1 << 2;
/// The destination value was produced by a load (meaningful only with
/// [`REG_EVENT_DST`]).
pub const REG_EVENT_DST_LOAD: u32 = 1 << 3;
/// Source-position mask (0..3).
pub const REG_EVENT_POS: u32 = 0b11;
/// The owning op's block-relative index is `meta >> REG_EVENT_IDX_SHIFT`.
pub const REG_EVENT_IDX_SHIFT: u32 = 4;

impl OpBlock {
    /// An empty block with room for `ops` decoded ops.
    pub fn with_capacity(ops: usize) -> Self {
        Self {
            ops: Vec::with_capacity(ops),
            mem_addrs: Vec::with_capacity(ops),
            mem_loads: Vec::with_capacity(ops),
            mem_idx: Vec::with_capacity(ops),
            branch_sids: Vec::with_capacity(ops),
            branch_taken: Vec::with_capacity(ops),
            branch_idx: Vec::with_capacity(ops),
            select_idx: Vec::new(),
            select_sids: Vec::new(),
            select_taken: Vec::new(),
            kind_codes: Vec::with_capacity(ops),
            reg_event_meta: Vec::with_capacity(ops * 2),
            reg_event_vreg: Vec::with_capacity(ops * 2),
        }
    }

    /// Number of decoded ops in the block.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether the block holds no ops.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// The decoded ops, in trace order.
    pub fn ops(&self) -> &[MicroOp] {
        &self.ops
    }

    /// Effective addresses of the block's address-carrying ops, in trace
    /// order (parallel to [`mem_loads`](Self::mem_loads)).
    pub fn mem_addrs(&self) -> &[u64] {
        &self.mem_addrs
    }

    /// Whether each address-carrying op is a load (`false` means the
    /// access is treated as a store), parallel to
    /// [`mem_addrs`](Self::mem_addrs).
    pub fn mem_loads(&self) -> &[bool] {
        &self.mem_loads
    }

    /// Static ids of the block's conditional branches, in trace order
    /// (parallel to [`branch_taken`](Self::branch_taken)).
    pub fn branch_sids(&self) -> &[StaticId] {
        &self.branch_sids
    }

    /// Outcome of each conditional branch, parallel to
    /// [`branch_sids`](Self::branch_sids).
    pub fn branch_taken(&self) -> &[bool] {
        &self.branch_taken
    }

    /// Block-relative op index of each memory-column entry (parallel to
    /// [`mem_addrs`](Self::mem_addrs)), for consumers that scatter
    /// per-access results back to ops.
    pub fn mem_idx(&self) -> &[u32] {
        &self.mem_idx
    }

    /// Block-relative op index of each branch-column entry (parallel to
    /// [`branch_sids`](Self::branch_sids)).
    pub fn branch_idx(&self) -> &[u32] {
        &self.branch_idx
    }

    /// Block-relative op indices of the block's conditional moves, in
    /// trace order (parallel to [`select_sids`](Self::select_sids) and
    /// [`select_taken`](Self::select_taken)).
    pub fn select_idx(&self) -> &[u32] {
        &self.select_idx
    }

    /// Static ids of the block's conditional moves, parallel to
    /// [`select_idx`](Self::select_idx).
    pub fn select_sids(&self) -> &[StaticId] {
        &self.select_sids
    }

    /// Predicate of each conditional move, parallel to
    /// [`select_idx`](Self::select_idx).
    pub fn select_taken(&self) -> &[bool] {
        &self.select_taken
    }

    /// `OpKind::code()` of each op — a dense latency-class column.
    pub fn kind_codes(&self) -> &[u8] {
        &self.kind_codes
    }

    /// Register-event metadata, parallel to
    /// [`reg_event_vreg`](Self::reg_event_vreg): for each *present* source
    /// or destination, in program order (an op's sources by position,
    /// then its destination), `idx << REG_EVENT_IDX_SHIFT` plus the
    /// `REG_EVENT_*` bits.
    pub fn reg_event_meta(&self) -> &[u32] {
        &self.reg_event_meta
    }

    /// The virtual register of each register event.
    pub fn reg_event_vreg(&self) -> &[u64] {
        &self.reg_event_vreg
    }

    /// Clears the side columns only: `ops` is resized (not cleared) by
    /// the decoder so a steady-state refill overwrites each op in place
    /// instead of re-initializing it and writing it twice.
    fn clear(&mut self) {
        self.mem_addrs.clear();
        self.mem_loads.clear();
        self.mem_idx.clear();
        self.branch_sids.clear();
        self.branch_taken.clear();
        self.branch_idx.clear();
        self.select_idx.clear();
        self.select_sids.clear();
        self.select_taken.clear();
        self.kind_codes.clear();
        self.reg_event_meta.clear();
        self.reg_event_vreg.clear();
    }
}

/// Resumable block decoder over a [`PackedStream`].
///
/// Carries the streaming decode state ([`Cursor`]) across
/// [`next_block`](Self::next_block) calls, so a sequence of block
/// decodes reproduces exactly the op stream a single
/// [`for_each`](PackedStream::for_each) pass would — the property the
/// block-size proptests and the `block-boundary-carry` conformance fault
/// pin down.
#[derive(Debug, Clone)]
pub struct BlockDecoder<'a> {
    stream: &'a PackedStream,
    index: usize,
    cursor: Cursor,
}

impl<'a> BlockDecoder<'a> {
    /// Fills `block` with up to `max_ops` decoded ops and returns how
    /// many were decoded (0 once the stream is exhausted). The block is
    /// cleared first; its capacity is reused.
    ///
    /// # Panics
    ///
    /// Panics if `max_ops` is 0 on a non-exhausted stream (the decode
    /// loop could never terminate).
    pub fn next_block(&mut self, block: &mut OpBlock, max_ops: usize) -> usize {
        block.clear();
        let remaining = self.stream.ops.len() - self.index;
        if remaining == 0 {
            block.ops.clear();
            return 0;
        }
        assert!(max_ops > 0, "block size must be at least 1 op");
        // The carried cursor is the only state crossing the block edge;
        // the armed fault corrupts exactly that carry (and nothing about
        // a first or only block), which per-op replay never performs —
        // the divergence the conformance fuzzer must catch.
        if self.index > 0 && crate::inject::active(crate::inject::BLOCK_CARRY) {
            self.cursor.counter = self.cursor.counter.wrapping_add(1);
        }
        let count = remaining.min(max_ops);
        let end = self.index + count;
        // Reuse the previous refill's op storage: a steady-state block is
        // the same size, so this writes nothing and `decode_into` below
        // overwrites every field of every op exactly once.
        block.ops.resize(
            count,
            MicroOp {
                sid: StaticId::from_raw(0),
                kind: OpKind::IntAlu,
                dst: None,
                srcs: [None; MAX_SRCS],
                addr: None,
                taken: false,
            },
        );
        for (i, packed) in self.stream.ops[self.index..end].iter().enumerate() {
            self.stream.decode_into(packed, &mut self.cursor, &mut block.ops[i]);
            let op = &block.ops[i];
            block.kind_codes.push(op.kind.code());
            if let Some(addr) = op.addr {
                block.mem_addrs.push(addr);
                block.mem_loads.push(op.kind.is_load());
                block.mem_idx.push(i as u32);
            }
            if op.kind.is_cond_branch() {
                block.branch_sids.push(op.sid);
                block.branch_taken.push(op.taken);
                block.branch_idx.push(i as u32);
            } else if op.kind == OpKind::CondMove {
                block.select_idx.push(i as u32);
                block.select_sids.push(op.sid);
                block.select_taken.push(op.taken);
            }
            let idx = (i as u32) << REG_EVENT_IDX_SHIFT;
            for (pos, src) in op.srcs.iter().enumerate() {
                if let Some(v) = src {
                    block.reg_event_meta.push(idx | pos as u32);
                    block.reg_event_vreg.push(v.0);
                }
            }
            if let Some(dst) = op.dst {
                let load = if op.kind.is_load() { REG_EVENT_DST_LOAD } else { 0 };
                block.reg_event_meta.push(idx | REG_EVENT_DST | load);
                block.reg_event_vreg.push(dst.0);
            }
        }
        let decoded = end - self.index;
        self.index = end;
        decoded
    }
}

/// By-value iterator over the decoded ops.
#[derive(Debug, Clone)]
pub struct Iter<'a> {
    stream: &'a PackedStream,
    index: usize,
    cursor: Cursor,
}

impl Iterator for Iter<'_> {
    type Item = MicroOp;

    fn next(&mut self) -> Option<MicroOp> {
        let packed = self.stream.ops.get(self.index)?;
        self.index += 1;
        let mut op = MicroOp {
            sid: StaticId::from_raw(0),
            kind: OpKind::IntAlu,
            dst: None,
            srcs: [None; MAX_SRCS],
            addr: None,
            taken: false,
        };
        self.stream.decode_into(packed, &mut self.cursor, &mut op);
        Some(op)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let rest = self.stream.ops.len() - self.index;
        (rest, Some(rest))
    }
}

impl ExactSizeIterator for Iter<'_> {}

#[cfg(test)]
mod tests {
    use super::*;
    use bioperf_isa::here;

    fn sid(n: u32) -> StaticId {
        StaticId::from_raw(n)
    }

    fn round_trip(ops: &[MicroOp]) {
        let mut stream = PackedStream::new();
        for op in ops {
            stream.push(op);
        }
        assert_eq!(stream.len(), ops.len());
        let mut decoded = Vec::with_capacity(ops.len());
        stream.for_each(|op| decoded.push(*op));
        assert_eq!(decoded, ops, "for_each decode must reproduce the stream");
        let via_iter: Vec<MicroOp> = stream.iter().collect();
        assert_eq!(via_iter, ops, "iterator decode must reproduce the stream");
    }

    #[test]
    fn packed_op_is_twelve_bytes() {
        assert_eq!(std::mem::size_of::<PackedOp>(), 12);
        assert_eq!(std::mem::align_of::<PackedOp>(), 4);
    }

    #[test]
    fn empty_stream_round_trips() {
        round_trip(&[]);
        assert!(PackedStream::new().is_empty());
        assert_eq!(PackedStream::new().bytes_per_op(), 0.0);
    }

    #[test]
    fn tape_shaped_stream_round_trips_with_no_far_entries() {
        // Loads, ALU, branches, stores with in-order dsts — the shape the
        // tape emits when no lit() gaps occur.
        let mut ops = Vec::new();
        let mut vreg = 0u64;
        for i in 0..200u64 {
            let a = VReg(vreg);
            ops.push(MicroOp::load(sid(0), OpKind::IntLoad, a, 0x1000 + i * 8, None));
            vreg += 1;
            let b = VReg(vreg);
            ops.push(MicroOp::compute(sid(1), OpKind::IntAlu, b, [Some(a), None, None]));
            vreg += 1;
            ops.push(MicroOp::store(sid(2), OpKind::IntStore, Some(b), 0x2000 + i * 8));
            ops.push(MicroOp::branch(sid(3), [Some(b), None, None], i % 3 == 0));
        }
        let mut stream = PackedStream::new();
        for op in &ops {
            stream.push(op);
        }
        assert_eq!(stream.far_entries(), 0, "in-order dsts and near srcs need no side table");
        round_trip(&ops);
    }

    #[test]
    fn lit_gaps_use_the_dst_side_table() {
        // A vreg claimed without an emitted op (lit) leaves a gap; the
        // next producing op must record its dst explicitly.
        let ops = vec![
            MicroOp::compute(sid(0), OpKind::IntAlu, VReg(0), [None; MAX_SRCS]),
            // vreg 1 was claimed by lit(): no op produced it.
            MicroOp::compute(sid(1), OpKind::IntAlu, VReg(2), [Some(VReg(1)), None, None]),
            MicroOp::compute(sid(2), OpKind::IntAlu, VReg(3), [Some(VReg(2)), None, None]),
        ];
        let mut stream = PackedStream::new();
        for op in &ops {
            stream.push(op);
        }
        // One dst exception resynchronizes the counter, and the zero-
        // distance reference to the gap vreg (delta 0 is unencodable as
        // near) takes the far-src path.
        assert_eq!(stream.far_entries(), 2);
        round_trip(&ops);
    }

    #[test]
    fn far_sources_round_trip() {
        let mut ops = Vec::new();
        // Create a producer, then reference it from far beyond u16 range.
        ops.push(MicroOp::compute(sid(0), OpKind::IntAlu, VReg(0), [None; MAX_SRCS]));
        for i in 1..=70_000u64 {
            ops.push(MicroOp::compute(sid(1), OpKind::IntAlu, VReg(i), [Some(VReg(i - 1)), None, None]));
        }
        ops.push(MicroOp::compute(
            sid(2),
            OpKind::IntAlu,
            VReg(70_001),
            [Some(VReg(0)), Some(VReg(70_000)), None],
        ));
        let mut stream = PackedStream::new();
        for op in &ops {
            stream.push(op);
        }
        assert_eq!(stream.far_entries(), 1, "only the 70k-distance source goes far");
        round_trip(&ops);
    }

    #[test]
    fn adversarial_dsts_and_sources_round_trip() {
        // Non-monotone dsts, self-references, u64 extremes, holes.
        let ops = vec![
            MicroOp::compute(sid(9), OpKind::FpDiv, VReg(u64::MAX), [Some(VReg(u64::MAX)), None, None]),
            MicroOp::compute(sid(8), OpKind::IntMul, VReg(5), [Some(VReg(u64::MAX)), None, Some(VReg(0))]),
            MicroOp { sid: sid(7), kind: OpKind::Jump, dst: Some(VReg(5)), srcs: [None, Some(VReg(6)), None], addr: Some(0xdead), taken: true },
            MicroOp::branch(sid(6), [Some(VReg(5)), Some(VReg(4)), Some(VReg(3))], false),
            MicroOp { sid: sid(5), kind: OpKind::IntStore, dst: None, srcs: [None, None, Some(VReg(6))], addr: None, taken: false },
        ];
        round_trip(&ops);
    }

    #[test]
    fn addresses_only_cost_memory_ops() {
        let mut stream = PackedStream::new();
        for i in 0..100u64 {
            let dst = VReg(i);
            if i % 4 == 0 {
                stream.push(&MicroOp::load(sid(0), OpKind::IntLoad, dst, i, None));
            } else {
                stream.push(&MicroOp::compute(sid(1), OpKind::IntAlu, dst, [None; MAX_SRCS]));
            }
        }
        assert_eq!(stream.addrs.len(), 25);
        // 12 fixed + 8 * mem-fraction, far below the 24-byte budget.
        assert!(stream.bytes_per_op() <= 14.0, "got {}", stream.bytes_per_op());
    }

    #[test]
    fn worst_case_bytes_per_op_is_within_budget() {
        // Every op a memory op: 12 + 8 = 20 bytes, still ≤ 24.
        let mut stream = PackedStream::new();
        for i in 0..64u64 {
            stream.push(&MicroOp::load(sid(0), OpKind::FpLoad, VReg(i), i * 8, None));
        }
        assert!(stream.bytes_per_op() <= 24.0, "got {}", stream.bytes_per_op());
    }

    /// Split-pass decode must equal one-pass decode for every split
    /// point — including splits landing exactly on SSA-resync gaps
    /// (far-dst ops), far sources, and address-carrying ops.
    fn assert_split_passes_match(stream: &PackedStream, expected: &[MicroOp]) {
        for split in 0..=stream.len() {
            let mut halves = Vec::with_capacity(expected.len());
            for op in stream.iter().take(split) {
                halves.push(op);
            }
            stream.for_each_from(split, |op| halves.push(*op));
            assert_eq!(halves, expected, "split at {split} diverged (for_each_from)");
            let resumed: Vec<MicroOp> = stream.iter_from(split).collect();
            assert_eq!(resumed, expected[split..], "split at {split} diverged (iter_from)");
        }
    }

    #[test]
    fn split_pass_decode_matches_one_pass_across_ssa_resync_gaps() {
        // lit() gaps force far-dst entries (counter resyncs); zero-distance
        // references force far srcs; loads and stores exercise the address
        // column. Every split point must reconstruct the same stream.
        let ops = vec![
            MicroOp::compute(sid(0), OpKind::IntAlu, VReg(0), [None; MAX_SRCS]),
            // vreg 1 claimed by lit(): the next producer resyncs the counter.
            MicroOp::compute(sid(1), OpKind::IntAlu, VReg(2), [Some(VReg(1)), None, None]),
            MicroOp::load(sid(2), OpKind::IntLoad, VReg(3), 0x40, Some(VReg(2))),
            // Another gap (vreg 4), split points land right on the resync.
            MicroOp::compute(sid(3), OpKind::IntMul, VReg(5), [Some(VReg(4)), Some(VReg(3)), None]),
            MicroOp::store(sid(4), OpKind::IntStore, Some(VReg(5)), 0x80),
            MicroOp::branch(sid(5), [Some(VReg(5)), None, None], true),
            // Non-monotone dst: counter jumps backward.
            MicroOp::compute(sid(6), OpKind::IntAlu, VReg(3), [Some(VReg(5)), None, None]),
            MicroOp::compute(sid(7), OpKind::IntAlu, VReg(4), [Some(VReg(3)), None, None]),
        ];
        let mut stream = PackedStream::new();
        for op in &ops {
            stream.push(op);
        }
        assert!(stream.far_entries() > 0, "the fixture must exercise the side tables");
        assert_split_passes_match(&stream, &ops);
    }

    #[test]
    fn split_pass_decode_matches_on_a_real_tape() {
        use crate::{Tape, TraceConsumer, Tracer};
        use bioperf_isa::Program;

        #[derive(Default)]
        struct Both {
            raw: Vec<MicroOp>,
            packed: PackedStream,
        }
        impl TraceConsumer for Both {
            fn consume(&mut self, op: &MicroOp, _p: &Program) {
                self.raw.push(*op);
                self.packed.push(op);
            }
        }

        let xs: Vec<u64> = (0..16).collect();
        let mut tape = Tape::new(Both::default());
        let mut acc = tape.lit();
        for (i, x) in xs.iter().enumerate() {
            let v = tape.int_load(here!("k"), x);
            let lit = tape.lit(); // gap: forces an SSA resync downstream
            acc = tape.int_op(here!("k"), &[acc, v, lit]);
            tape.int_store(here!("k"), x, acc);
            tape.branch(here!("k"), &[acc], i % 3 == 0);
        }
        let (_, both) = tape.finish();
        assert_split_passes_match(&both.packed, &both.raw);
    }

    #[test]
    fn payload_wire_encoding_round_trips() {
        let ops = vec![
            MicroOp::compute(sid(0), OpKind::IntAlu, VReg(0), [None; MAX_SRCS]),
            MicroOp::compute(sid(1), OpKind::IntAlu, VReg(2), [Some(VReg(1)), None, None]),
            MicroOp::load(sid(2), OpKind::IntLoad, VReg(3), 0x40, Some(VReg(2))),
            MicroOp::compute(sid(9), OpKind::FpDiv, VReg(u64::MAX), [Some(VReg(u64::MAX)), None, None]),
        ];
        let mut stream = PackedStream::new();
        for op in &ops {
            stream.push(op);
        }
        let mut bytes = Vec::new();
        stream.write_payload(&mut bytes);
        assert_eq!(bytes.len(), PackedStream::payload_wire_len(stream.column_lens()));
        let parsed = PackedStream::from_payload(stream.column_lens(), 0, &bytes)
            .expect("well-formed payload parses");
        let decoded: Vec<MicroOp> = parsed.iter().collect();
        assert_eq!(decoded, ops);
    }

    #[test]
    fn from_payload_rejects_malformed_bytes() {
        let mut stream = PackedStream::new();
        stream.push(&MicroOp::load(sid(0), OpKind::IntLoad, VReg(0), 0x40, None));
        let mut bytes = Vec::new();
        stream.write_payload(&mut bytes);
        let columns = stream.column_lens();
        // Wrong payload size for the claimed columns.
        assert!(PackedStream::from_payload(columns, 0, &bytes[..bytes.len() - 1]).is_none());
        assert!(PackedStream::from_payload([2, 1, 0, 0], 0, &bytes).is_none());
        // Address flag set but the address column count claims zero
        // entries: the cross-validation must reject rather than letting
        // decode index out of range.
        let stripped = &bytes[..12];
        assert!(PackedStream::from_payload([1, 0, 0, 0], 0, stripped).is_none());
        // Invalid kind code (flags low nibble 0xF is unassigned).
        let mut bad_kind = bytes.clone();
        bad_kind[4] |= 0b1111;
        assert!(PackedStream::from_payload(columns, 0, &bad_kind).is_none());
    }

    #[test]
    fn base_counter_continuation_matches_unsegmented_decode() {
        // Encode a lit()-gap-heavy stream whole, then re-encode it as two
        // chunks where the second starts from the first's end counter —
        // concatenated decodes must be op-identical, including when the
        // split lands exactly on an SSA resync (far-dst) gap.
        let ops = vec![
            MicroOp::compute(sid(0), OpKind::IntAlu, VReg(0), [None; MAX_SRCS]),
            MicroOp::compute(sid(1), OpKind::IntAlu, VReg(2), [Some(VReg(1)), None, None]),
            MicroOp::load(sid(2), OpKind::IntLoad, VReg(3), 0x40, Some(VReg(2))),
            MicroOp::compute(sid(3), OpKind::IntMul, VReg(5), [Some(VReg(4)), Some(VReg(3)), None]),
            MicroOp::store(sid(4), OpKind::IntStore, Some(VReg(5)), 0x80),
            MicroOp::compute(sid(6), OpKind::IntAlu, VReg(3), [Some(VReg(5)), None, None]),
            MicroOp::compute(sid(7), OpKind::IntAlu, VReg(4), [Some(VReg(3)), None, None]),
        ];
        for split in 0..=ops.len() {
            let mut head = PackedStream::new();
            for op in &ops[..split] {
                head.push(op);
            }
            let mut tail = PackedStream::with_base_counter(head.encode_counter());
            assert_eq!(tail.base_counter(), head.encode_counter());
            for op in &ops[split..] {
                tail.push(op);
            }
            let mut decoded: Vec<MicroOp> = head.iter().collect();
            decoded.extend(tail.iter());
            assert_eq!(decoded, ops, "split at {split} diverged");
        }
    }

    #[test]
    fn block_decode_matches_per_op_decode_at_every_block_size() {
        // The SSA-resync fixture from the split-pass test: block edges
        // must carry the counter across lit() gaps exactly like a
        // single-pass decode.
        let ops = vec![
            MicroOp::compute(sid(0), OpKind::IntAlu, VReg(0), [None; MAX_SRCS]),
            MicroOp::compute(sid(1), OpKind::IntAlu, VReg(2), [Some(VReg(1)), None, None]),
            MicroOp::load(sid(2), OpKind::IntLoad, VReg(3), 0x40, Some(VReg(2))),
            MicroOp::compute(sid(3), OpKind::IntMul, VReg(5), [Some(VReg(4)), Some(VReg(3)), None]),
            MicroOp::store(sid(4), OpKind::IntStore, Some(VReg(5)), 0x80),
            MicroOp::branch(sid(5), [Some(VReg(5)), None, None], true),
            MicroOp { sid: sid(6), kind: OpKind::Jump, dst: None, srcs: [None; MAX_SRCS], addr: Some(0xbeef), taken: true },
            MicroOp::compute(sid(7), OpKind::IntAlu, VReg(3), [Some(VReg(5)), None, None]),
            MicroOp::compute(sid(8), OpKind::IntAlu, VReg(4), [Some(VReg(3)), None, None]),
        ];
        let mut stream = PackedStream::new();
        for op in &ops {
            stream.push(op);
        }
        for block_size in 1..=ops.len() + 1 {
            let mut decoder = stream.block_decoder();
            let mut block = OpBlock::with_capacity(block_size);
            let mut decoded = Vec::new();
            let (mut mem, mut branches) = (Vec::new(), Vec::new());
            loop {
                let n = decoder.next_block(&mut block, block_size);
                if n == 0 {
                    break;
                }
                assert_eq!(n, block.len());
                assert!(n <= block_size);
                decoded.extend_from_slice(block.ops());
                mem.extend(block.mem_addrs().iter().zip(block.mem_loads()).map(|(&a, &l)| (a, l)));
                branches.extend(
                    block.branch_sids().iter().zip(block.branch_taken()).map(|(&s, &t)| (s, t)),
                );
            }
            assert_eq!(decoded, ops, "block size {block_size} diverged");
            // The memory column covers every address-carrying op — the
            // Jump with an address included — with its load/store class.
            let expect_mem: Vec<(u64, bool)> = ops
                .iter()
                .filter_map(|op| op.addr.map(|a| (a, op.kind.is_load())))
                .collect();
            assert_eq!(mem, expect_mem, "block size {block_size} memory column");
            let expect_branches: Vec<(StaticId, bool)> = ops
                .iter()
                .filter(|op| op.kind.is_cond_branch())
                .map(|op| (op.sid, op.taken))
                .collect();
            assert_eq!(branches, expect_branches, "block size {block_size} branch column");
        }
    }

    #[test]
    fn exhausted_block_decoder_keeps_returning_zero() {
        let mut stream = PackedStream::new();
        stream.push(&MicroOp::compute(sid(0), OpKind::IntAlu, VReg(0), [None; MAX_SRCS]));
        let mut decoder = stream.block_decoder();
        let mut block = OpBlock::with_capacity(BLOCK_OPS);
        assert_eq!(decoder.next_block(&mut block, BLOCK_OPS), 1);
        assert_eq!(decoder.next_block(&mut block, BLOCK_OPS), 0);
        assert!(block.is_empty(), "an exhausted decode clears the block");
        assert_eq!(decoder.next_block(&mut block, BLOCK_OPS), 0);
    }

    #[test]
    #[should_panic(expected = "at least 1 op")]
    fn zero_block_size_is_rejected() {
        let mut stream = PackedStream::new();
        stream.push(&MicroOp::compute(sid(0), OpKind::IntAlu, VReg(0), [None; MAX_SRCS]));
        let mut block = OpBlock::with_capacity(1);
        let _ = stream.block_decoder().next_block(&mut block, 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn iter_from_rejects_out_of_range_starts() {
        let stream = PackedStream::new();
        let _ = stream.iter_from(1);
    }

    #[test]
    fn real_tape_stream_round_trips() {
        use crate::{Tape, TraceConsumer, Tracer};
        use bioperf_isa::Program;

        // Record through a (Collect, PackedStream-feeder) pair and prove
        // packed-decode == the original stream, lit gaps included.
        #[derive(Default)]
        struct Both {
            raw: Vec<MicroOp>,
            packed: PackedStream,
        }
        impl TraceConsumer for Both {
            fn consume(&mut self, op: &MicroOp, _p: &Program) {
                self.raw.push(*op);
                self.packed.push(op);
            }
        }

        let xs: Vec<u64> = (0..32).collect();
        let mut tape = Tape::new(Both::default());
        let mut acc = tape.lit(); // forces a dst-table entry on the next producer
        for (i, x) in xs.iter().enumerate() {
            let v = tape.int_load(here!("k"), x);
            let lit = tape.lit();
            acc = tape.int_op(here!("k"), &[acc, v, lit]);
            let sel = tape.select(here!("k"), &[acc, v], i % 2 == 0);
            tape.int_store(here!("k"), x, sel);
            tape.branch(here!("k"), &[sel], i % 3 == 0);
            tape.jump(here!("k"));
        }
        let (_, both) = tape.finish();
        let mut decoded = Vec::new();
        both.packed.for_each(|op| decoded.push(*op));
        assert_eq!(decoded, both.raw);
        assert!(both.packed.bytes_per_op() <= 24.0);
    }
}
