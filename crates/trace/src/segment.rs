//! Spill-to-disk segmented traces and streaming double-buffered replay.
//!
//! The in-memory [`Recorder`](crate::Recorder) caps a recording at what
//! fits in RAM; full-scale BioPerf runs (the paper characterizes
//! billion-load executions) need traces larger than that. This module
//! splits the packed op stream into fixed-size *segments* that spill to
//! disk as they close, and replays them back with a prefetch pipeline so
//! peak memory stays O(segment size) regardless of trace length:
//!
//! * [`SpillRecorder`] — a [`TraceConsumer`] that encodes into a
//!   [`PackedStream`] chunk and, every `segment_ops` ops, writes the
//!   closed chunk as one segment file and starts the next chunk *from
//!   the encoder's running SSA counter*, so every segment decodes
//!   standalone.
//! * [`SegmentedRecording`] — the replay side.
//!   [`replay_bank`](SegmentedRecording::replay_bank) streams the
//!   segments through a bank of consumers with double buffering: a
//!   background loader thread reads and parses segment *k+1* while the
//!   caller's consumers drain segment *k*. Decode order and content are
//!   bit-identical to an unsegmented [`Recording`](crate::Recording)
//!   replay.
//!
//! # Segment file format (`bioperf-seg/v1`)
//!
//! A segment is a 64-byte little-endian header followed by the packed
//! payload ([`PackedStream::write_payload`]):
//!
//! ```text
//! offset  size  field
//!      0     8  magic  "BPFSEG1\0"
//!      8     4  format version (1)
//!     12     4  segment index within the recording (0-based)
//!     16     8  op count
//!     24     8  address-column count
//!     32     8  far-destination count
//!     40     8  far-source count
//!     48     8  SSA counter at segment start (standalone-decode state)
//!     56     8  FNV-1a 64 checksum of the payload bytes
//! ```
//!
//! The header's start counter is the *only* cross-segment decode state:
//! side tables are per-segment, and near-source deltas are pure counter
//! arithmetic, so `(header, payload)` is sufficient to reproduce the
//! segment's ops exactly. Every malformed input — truncation, foreign
//! magic, count/length disagreement, out-of-order or missing segments,
//! payload corruption — surfaces as a typed [`SegmentError`] naming the
//! offending path; no input can panic the reader.

use std::fmt;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::mpsc;

use bioperf_isa::{MicroOp, Program};

use crate::packed::{OpBlock, PackedStream, BLOCK_OPS};
use crate::tracer::TraceConsumer;

/// Magic bytes opening every segment file.
pub const SEGMENT_MAGIC: [u8; 8] = *b"BPFSEG1\0";

/// Current segment format version.
pub const SEGMENT_VERSION: u32 = 1;

/// Fixed header size in bytes.
pub const SEGMENT_HEADER_LEN: usize = 64;

/// Default ops per segment (4M ops ≈ 48 MB of fixed records plus the
/// address column — big enough to amortize I/O, small enough that two
/// in-flight segments stay far under any realistic memory cap).
pub const DEFAULT_SEGMENT_OPS: usize = 4 << 20;

/// A typed failure of the segment writer or reader. Every variant names
/// the segment it concerns, so diagnostics always carry the offending
/// path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SegmentError {
    /// Filesystem error reading or writing a segment.
    Io {
        /// Segment (or directory) being accessed.
        path: PathBuf,
        /// The underlying I/O error kind.
        kind: io::ErrorKind,
    },
    /// A segment file of the recording no longer exists.
    Missing {
        /// The missing segment.
        path: PathBuf,
    },
    /// The file does not start with [`SEGMENT_MAGIC`].
    BadMagic {
        /// The rejected file.
        path: PathBuf,
    },
    /// The format version is not [`SEGMENT_VERSION`].
    BadVersion {
        /// The rejected file.
        path: PathBuf,
        /// Version the header claims.
        found: u32,
    },
    /// The file is shorter than its header-declared payload.
    Truncated {
        /// The truncated file.
        path: PathBuf,
        /// Bytes the header implies.
        expected: u64,
        /// Bytes actually present.
        actual: u64,
    },
    /// The header's op count disagrees with the payload present (or with
    /// the recording's per-segment manifest).
    CountMismatch {
        /// The inconsistent file.
        path: PathBuf,
        /// Ops the header claims.
        header_ops: u64,
        /// Ops expected at this position of the recording.
        expected_ops: u64,
    },
    /// The segment at position *k* carries a different index in its
    /// header (renamed or reordered files).
    IndexMismatch {
        /// The misplaced file.
        path: PathBuf,
        /// Index expected from the file's position.
        expected: u32,
        /// Index the header carries.
        found: u32,
    },
    /// The payload checksum does not match the header.
    Corrupt {
        /// The corrupted file.
        path: PathBuf,
    },
}

impl SegmentError {
    /// The segment (or directory) path the error concerns.
    pub fn path(&self) -> &Path {
        match self {
            SegmentError::Io { path, .. }
            | SegmentError::Missing { path }
            | SegmentError::BadMagic { path }
            | SegmentError::BadVersion { path, .. }
            | SegmentError::Truncated { path, .. }
            | SegmentError::CountMismatch { path, .. }
            | SegmentError::IndexMismatch { path, .. }
            | SegmentError::Corrupt { path } => path,
        }
    }

    fn io(path: &Path, err: &io::Error) -> SegmentError {
        if err.kind() == io::ErrorKind::NotFound {
            SegmentError::Missing { path: path.to_path_buf() }
        } else {
            SegmentError::Io { path: path.to_path_buf(), kind: err.kind() }
        }
    }
}

impl fmt::Display for SegmentError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SegmentError::Io { path, kind } => {
                write!(f, "{}: segment I/O error: {kind}", path.display())
            }
            SegmentError::Missing { path } => {
                write!(f, "{}: segment file is missing", path.display())
            }
            SegmentError::BadMagic { path } => {
                write!(f, "{}: not a bioperf segment file (bad magic)", path.display())
            }
            SegmentError::BadVersion { path, found } => write!(
                f,
                "{}: unsupported segment format version {found} (expected {SEGMENT_VERSION})",
                path.display()
            ),
            SegmentError::Truncated { path, expected, actual } => write!(
                f,
                "{}: truncated segment ({actual} bytes, header implies {expected})",
                path.display()
            ),
            SegmentError::CountMismatch { path, header_ops, expected_ops } => write!(
                f,
                "{}: op-count mismatch (header says {header_ops}, expected {expected_ops})",
                path.display()
            ),
            SegmentError::IndexMismatch { path, expected, found } => write!(
                f,
                "{}: segment out of order (position {expected}, header index {found})",
                path.display()
            ),
            SegmentError::Corrupt { path } => {
                write!(f, "{}: segment payload failed its checksum", path.display())
            }
        }
    }
}

impl std::error::Error for SegmentError {}

/// FNV-1a 64 over the payload — cheap, dependency-free bit-rot
/// detection (logic bugs are the conformance harness's job).
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Encodes one closed chunk as a complete segment: header then payload.
/// `start_counter` is the SSA counter the chunk's encoding began at.
fn encode_segment(stream: &PackedStream, index: u32, start_counter: u64) -> Vec<u8> {
    let columns = stream.column_lens();
    let mut bytes = Vec::with_capacity(SEGMENT_HEADER_LEN + PackedStream::payload_wire_len(columns));
    bytes.extend_from_slice(&SEGMENT_MAGIC);
    bytes.extend_from_slice(&SEGMENT_VERSION.to_le_bytes());
    bytes.extend_from_slice(&index.to_le_bytes());
    for count in columns {
        bytes.extend_from_slice(&(count as u64).to_le_bytes());
    }
    bytes.extend_from_slice(&start_counter.to_le_bytes());
    let checksum_at = bytes.len();
    bytes.extend_from_slice(&[0u8; 8]); // checksum placeholder
    stream.write_payload(&mut bytes);
    let checksum = fnv1a(&bytes[SEGMENT_HEADER_LEN..]);
    bytes[checksum_at..checksum_at + 8].copy_from_slice(&checksum.to_le_bytes());
    bytes
}

/// Parses and validates one segment at position `position` of a
/// recording that expects `expected_ops` ops there.
fn decode_segment(
    path: &Path,
    position: u32,
    expected_ops: u64,
    bytes: &[u8],
) -> Result<PackedStream, SegmentError> {
    let reject = |e: SegmentError| -> Result<PackedStream, SegmentError> { Err(e) };
    if bytes.len() < SEGMENT_HEADER_LEN {
        return reject(SegmentError::Truncated {
            path: path.to_path_buf(),
            expected: SEGMENT_HEADER_LEN as u64,
            actual: bytes.len() as u64,
        });
    }
    if bytes[..8] != SEGMENT_MAGIC {
        return reject(SegmentError::BadMagic { path: path.to_path_buf() });
    }
    let u32_at = |at: usize| u32::from_le_bytes(bytes[at..at + 4].try_into().expect("4 bytes"));
    let u64_at = |at: usize| u64::from_le_bytes(bytes[at..at + 8].try_into().expect("8 bytes"));
    let version = u32_at(8);
    if version != SEGMENT_VERSION {
        return reject(SegmentError::BadVersion { path: path.to_path_buf(), found: version });
    }
    let index = u32_at(12);
    if index != position {
        return reject(SegmentError::IndexMismatch {
            path: path.to_path_buf(),
            expected: position,
            found: index,
        });
    }
    let header_ops = u64_at(16);
    if header_ops != expected_ops {
        return reject(SegmentError::CountMismatch {
            path: path.to_path_buf(),
            header_ops,
            expected_ops,
        });
    }
    let columns_u64 = [header_ops, u64_at(24), u64_at(32), u64_at(40)];
    if columns_u64.iter().any(|&c| c > usize::MAX as u64) {
        return reject(SegmentError::Corrupt { path: path.to_path_buf() });
    }
    let columns = columns_u64.map(|c| c as usize);
    let start_counter = u64_at(48);
    let checksum = u64_at(56);
    let expected_len = (SEGMENT_HEADER_LEN + PackedStream::payload_wire_len(columns)) as u64;
    let actual_len = bytes.len() as u64;
    if actual_len < expected_len {
        return reject(SegmentError::Truncated {
            path: path.to_path_buf(),
            expected: expected_len,
            actual: actual_len,
        });
    }
    if actual_len > expected_len {
        // Trailing garbage: the header cannot account for these bytes.
        return reject(SegmentError::Corrupt { path: path.to_path_buf() });
    }
    let payload = &bytes[SEGMENT_HEADER_LEN..];
    if fnv1a(payload) != checksum {
        return reject(SegmentError::Corrupt { path: path.to_path_buf() });
    }
    PackedStream::from_payload(columns, start_counter, payload)
        .ok_or(SegmentError::Corrupt { path: path.to_path_buf() })
}

/// Where closed segments go.
#[derive(Debug)]
enum Sink {
    /// Spill to `seg-<index>.seg` files under a directory.
    Dir(PathBuf),
    /// Keep the encoded bytes in memory (conformance fuzzing and
    /// property tests, where disk I/O would dominate the case cost).
    Mem,
}

/// One closed segment of a recording.
#[derive(Debug)]
enum Slot {
    File { path: PathBuf, ops: usize },
    Mem { bytes: Vec<u8>, ops: usize },
}

impl Slot {
    fn ops(&self) -> usize {
        match self {
            Slot::File { ops, .. } | Slot::Mem { ops, .. } => *ops,
        }
    }

    /// Display path of the slot (memory slots use a synthetic label).
    fn label(&self, position: usize) -> PathBuf {
        match self {
            Slot::File { path, .. } => path.clone(),
            Slot::Mem { .. } => PathBuf::from(format!("<mem:seg-{position:05}>")),
        }
    }
}

/// A [`TraceConsumer`] that spills the packed op stream to fixed-size
/// segments as it records, bounding resident memory by O(segment size)
/// for traces of any length.
///
/// The total-op `capacity` spans *all* segments (it is the same
/// whole-recording cap as [`Recorder::with_capacity`]); `segment_ops`
/// only controls spill granularity.
///
/// [`Recorder::with_capacity`]: crate::Recorder::with_capacity
#[derive(Debug)]
pub struct SpillRecorder {
    sink: Sink,
    segment_ops: usize,
    capacity: usize,
    current: PackedStream,
    slots: Vec<Slot>,
    total_ops: usize,
    overflowed: bool,
    error: Option<SegmentError>,
}

impl SpillRecorder {
    /// A recorder spilling segments of `segment_ops` ops into `dir`
    /// (created if needed), keeping at most `capacity` ops in total.
    pub fn to_dir(
        dir: impl Into<PathBuf>,
        segment_ops: usize,
        capacity: usize,
    ) -> Result<SpillRecorder, SegmentError> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir).map_err(|e| SegmentError::io(&dir, &e))?;
        Ok(Self::with_sink(Sink::Dir(dir), segment_ops, capacity))
    }

    /// A recorder keeping the encoded segments in memory — same format,
    /// same chunking, no filesystem. Used by the conformance fuzzer and
    /// the property tests.
    pub fn in_memory(segment_ops: usize, capacity: usize) -> SpillRecorder {
        Self::with_sink(Sink::Mem, segment_ops, capacity)
    }

    fn with_sink(sink: Sink, segment_ops: usize, capacity: usize) -> SpillRecorder {
        SpillRecorder {
            sink,
            segment_ops: segment_ops.max(1),
            capacity,
            current: PackedStream::new(),
            slots: Vec::new(),
            total_ops: 0,
            overflowed: false,
            error: None,
        }
    }

    /// Whether the trace exceeded the *total* capacity (the recording is
    /// then a prefix of the full run).
    pub fn overflowed(&self) -> bool {
        self.overflowed
    }

    /// Ops recorded so far, across every spilled segment plus the open
    /// chunk.
    pub fn len(&self) -> usize {
        self.total_ops
    }

    /// Whether nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.total_ops == 0
    }

    /// Segments closed so far (the open chunk is not counted).
    pub fn spilled_segments(&self) -> usize {
        self.slots.len()
    }

    /// The first write error, if spilling failed.
    pub fn error(&self) -> Option<&SegmentError> {
        self.error.as_ref()
    }

    /// Closes the open chunk as a segment.
    fn flush(&mut self) {
        let index = self.slots.len() as u32;
        let ops = self.current.len();
        let mut start_counter = self.current.base_counter();
        // Catalogued fault (`segment-start-counter`): record a stale SSA
        // start counter in the header, as a resync bookkeeping bug would.
        if crate::inject::active(crate::inject::SEG_COUNTER) && start_counter > 0 {
            start_counter -= 1;
        }
        let next = PackedStream::with_base_counter(self.current.encode_counter());
        let closed = std::mem::replace(&mut self.current, next);
        let bytes = encode_segment(&closed, index, start_counter);
        match &mut self.sink {
            Sink::Dir(dir) => {
                let path = dir.join(format!("seg-{index:05}.seg"));
                match std::fs::write(&path, &bytes) {
                    Ok(()) => self.slots.push(Slot::File { path, ops }),
                    Err(e) => self.error = Some(SegmentError::io(&path, &e)),
                }
            }
            Sink::Mem => self.slots.push(Slot::Mem { bytes, ops }),
        }
    }

    /// Closes the recording: spills the open tail chunk and pairs the
    /// segments with their static program. Returns the first spill error
    /// instead, if any write failed mid-trace.
    pub fn into_segmented(mut self, program: Program) -> Result<SegmentedRecording, SegmentError> {
        if self.error.is_none() && !self.current.is_empty() {
            self.flush();
        }
        if let Some(error) = self.error {
            return Err(error);
        }
        Ok(SegmentedRecording {
            program,
            slots: self.slots,
            total_ops: self.total_ops,
            complete: !self.overflowed,
        })
    }
}

impl TraceConsumer for SpillRecorder {
    fn consume(&mut self, op: &MicroOp, _program: &Program) {
        if self.error.is_some() {
            return;
        }
        // The capacity is a *whole-recording* op budget: segments already
        // spilled count against it exactly like the open chunk.
        if self.total_ops >= self.capacity {
            self.overflowed = true;
            return;
        }
        self.current.push(op);
        self.total_ops += 1;
        if self.current.len() >= self.segment_ops {
            self.flush();
        }
    }
}

/// A captured trace spilled to segments, replayable with streaming
/// double-buffered decode.
#[derive(Debug)]
pub struct SegmentedRecording {
    program: Program,
    slots: Vec<Slot>,
    total_ops: usize,
    complete: bool,
}

impl SegmentedRecording {
    /// The static program the ops refer to.
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// Total recorded dynamic ops across all segments.
    pub fn len(&self) -> usize {
        self.total_ops
    }

    /// Whether the recording is empty.
    pub fn is_empty(&self) -> bool {
        self.total_ops == 0
    }

    /// Whether the whole run was captured (false if the recorder
    /// overflowed its total capacity).
    pub fn is_complete(&self) -> bool {
        self.complete
    }

    /// Number of segments.
    pub fn segment_count(&self) -> usize {
        self.slots.len()
    }

    /// Paths of the on-disk segments, in replay order (empty for an
    /// in-memory recording).
    pub fn segment_paths(&self) -> Vec<&Path> {
        self.slots
            .iter()
            .filter_map(|s| match s {
                Slot::File { path, .. } => Some(path.as_path()),
                Slot::Mem { .. } => None,
            })
            .collect()
    }

    /// Loads and validates the segment at `position`.
    fn load(&self, position: usize) -> Result<PackedStream, SegmentError> {
        let slot = &self.slots[position];
        let expected_ops = slot.ops() as u64;
        match slot {
            Slot::File { path, .. } => {
                let bytes = std::fs::read(path).map_err(|e| SegmentError::io(path, &e))?;
                decode_segment(path, position as u32, expected_ops, &bytes)
            }
            Slot::Mem { bytes, .. } => {
                decode_segment(&slot.label(position), position as u32, expected_ops, bytes)
            }
        }
    }

    /// Streams the segments in order through `drain`, with the next
    /// segment loaded and parsed on a background thread while the
    /// current one is being drained (double buffering). The loader stops
    /// early if a segment fails validation or the drain side bails.
    fn stream_segments(
        &self,
        mut drain: impl FnMut(&PackedStream),
    ) -> Result<(), SegmentError> {
        if self.slots.is_empty() {
            return Ok(());
        }
        std::thread::scope(|scope| {
            let (tx, rx) = mpsc::sync_channel::<Result<PackedStream, SegmentError>>(1);
            scope.spawn(move || {
                for position in 0..self.slots.len() {
                    let loaded = self.load(position);
                    let failed = loaded.is_err();
                    // A send error means the drain side already returned
                    // (its own error); either way stop prefetching.
                    if tx.send(loaded).is_err() || failed {
                        break;
                    }
                }
            });
            for _ in 0..self.slots.len() {
                let stream = rx.recv().expect("loader sends one result per segment")?;
                drain(&stream);
            }
            Ok(())
        })
    }

    /// Feeds the recorded stream (and a final `finish`) to one consumer,
    /// streaming segment by segment. Equivalent to
    /// [`Recording::replay`](crate::Recording::replay) on the same trace.
    ///
    /// A single-consumer bank: routes through
    /// [`replay_bank`](Self::replay_bank), exactly like the in-memory
    /// [`Recording::replay`](crate::Recording::replay).
    pub fn replay<C: TraceConsumer>(&self, consumer: &mut C) -> Result<(), SegmentError> {
        self.replay_bank(std::slice::from_mut(consumer))
    }

    /// Single-pass fan-out replay off the streamed segments: each
    /// segment is decoded exactly once — in [`OpBlock`] batches handed
    /// to every consumer's [`TraceConsumer::consume_block`] — then each
    /// consumer gets a final `finish`. The streaming twin of
    /// [`Recording::replay_bank`](crate::Recording::replay_bank), with
    /// the next segment prefetched while the bank drains the current
    /// one. A segment boundary simply ends a block early: each segment
    /// gets its own block decoder (the header's SSA start counter is the
    /// only carried state), so blocks never span segments.
    pub fn replay_bank<C: TraceConsumer>(&self, consumers: &mut [C]) -> Result<(), SegmentError> {
        self.replay_bank_blocks(consumers, BLOCK_OPS)
    }

    /// [`replay_bank`](Self::replay_bank) with an explicit block size —
    /// the benchmarking and property-test hook (block size must never
    /// change any result).
    pub fn replay_bank_blocks<C: TraceConsumer>(
        &self,
        consumers: &mut [C],
        block_ops: usize,
    ) -> Result<(), SegmentError> {
        let mut block = OpBlock::with_capacity(block_ops.min(self.total_ops));
        self.stream_segments(|stream| {
            let mut decoder = stream.block_decoder();
            while decoder.next_block(&mut block, block_ops) > 0 {
                for c in consumers.iter_mut() {
                    c.consume_block(&block, &self.program);
                }
            }
        })?;
        for c in consumers.iter_mut() {
            c.finish(&self.program);
        }
        Ok(())
    }
}

/// Spills an existing in-memory [`Recording`](crate::Recording) into a
/// segmented on-disk recording (decode + re-encode). Useful for
/// converting a captured trace without re-running the kernel.
pub fn segment_recording(
    recording: &crate::Recording,
    dir: impl Into<PathBuf>,
    segment_ops: usize,
) -> Result<SegmentedRecording, SegmentError> {
    let mut spill = SpillRecorder::to_dir(dir, segment_ops, usize::MAX)?;
    let program = recording.program().clone();
    for op in recording.iter() {
        spill.consume(&op, &program);
    }
    spill.into_segmented(program)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Recorder, Tape, Tracer};
    use bioperf_isa::here;

    /// Collects every replayed op (plus the finish call) for diffing.
    #[derive(Default)]
    struct Collect {
        ops: Vec<MicroOp>,
        finished: bool,
    }

    impl TraceConsumer for Collect {
        fn consume(&mut self, op: &MicroOp, _p: &Program) {
            self.ops.push(*op);
        }
        fn finish(&mut self, _p: &Program) {
            self.finished = true;
        }
    }

    /// Records a lit()-gap-heavy kernel through (raw, packed, spill)
    /// simultaneously.
    fn record(n: usize, segment_ops: usize) -> (Vec<MicroOp>, SegmentedRecording) {
        let xs: Vec<u64> = (0..n as u64).collect();
        let mut tape = Tape::new((
            Collect::default(),
            SpillRecorder::in_memory(segment_ops, usize::MAX),
        ));
        let mut acc = tape.lit();
        for (i, x) in xs.iter().enumerate() {
            let v = tape.int_load(here!("k"), x);
            let lit = tape.lit(); // SSA gap: forces far-dst resyncs
            acc = tape.int_op(here!("k"), &[acc, v, lit]);
            tape.int_store(here!("k"), x, acc);
            tape.branch(here!("k"), &[acc], i % 3 == 0);
        }
        let (program, (raw, spill)) = tape.finish();
        let segmented = spill.into_segmented(program).expect("spill");
        (raw.ops, segmented)
    }

    #[test]
    fn segmented_replay_reproduces_the_stream_at_adversarial_sizes() {
        for segment_ops in [1usize, 3, 7, 64, 1 << 20] {
            let (raw, segmented) = record(40, segment_ops);
            assert_eq!(segmented.len(), raw.len());
            assert!(segmented.is_complete());
            let mut replayed = Collect::default();
            segmented.replay(&mut replayed).expect("replay");
            assert!(replayed.finished);
            assert_eq!(replayed.ops, raw, "segment_ops={segment_ops}");
        }
    }

    #[test]
    fn bank_replay_matches_per_consumer_replay() {
        let (raw, segmented) = record(32, 5);
        let mut bank = vec![Collect::default(), Collect::default(), Collect::default()];
        segmented.replay_bank(&mut bank).expect("bank replay");
        for member in &bank {
            assert!(member.finished);
            assert_eq!(member.ops, raw);
        }
    }

    #[test]
    fn capacity_spans_segments_not_each_segment() {
        // segment_ops 8, capacity 20: a per-segment misreading of the cap
        // would never overflow (every segment stays ≤ 8 ops); the
        // whole-recording cap must stop at exactly 20.
        let x = 1u64;
        let mut tape = Tape::new(SpillRecorder::in_memory(8, 20));
        for _ in 0..30 {
            tape.int_load(here!("k"), &x);
        }
        let (program, spill) = tape.finish();
        assert!(spill.overflowed());
        assert_eq!(spill.len(), 20);
        assert_eq!(spill.spilled_segments(), 2, "two full 8-op segments spilled");
        let segmented = spill.into_segmented(program).expect("spill");
        assert_eq!(segmented.len(), 20);
        assert!(!segmented.is_complete());
        let mut replayed = Collect::default();
        segmented.replay(&mut replayed).expect("replay");
        assert_eq!(replayed.ops.len(), 20);
    }

    #[test]
    fn empty_recording_replays_cleanly() {
        let tape = Tape::new(SpillRecorder::in_memory(4, usize::MAX));
        let (program, spill) = tape.finish();
        assert!(spill.is_empty());
        let segmented = spill.into_segmented(program).expect("spill");
        assert!(segmented.is_empty());
        assert_eq!(segmented.segment_count(), 0);
        let mut replayed = Collect::default();
        segmented.replay(&mut replayed).expect("replay");
        assert!(replayed.finished);
        assert!(replayed.ops.is_empty());
    }

    #[test]
    fn spilled_files_round_trip_through_disk() {
        let dir = std::env::temp_dir().join(format!("bioperf-seg-rt-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let xs: Vec<u64> = (0..24).collect();
        let mut tape = Tape::new((
            Collect::default(),
            SpillRecorder::to_dir(&dir, 7, usize::MAX).expect("spill dir"),
        ));
        for (i, x) in xs.iter().enumerate() {
            let v = tape.int_load(here!("k"), x);
            tape.branch(here!("k"), &[v], i % 2 == 0);
        }
        let (program, (raw, spill)) = tape.finish();
        let segmented = spill.into_segmented(program).expect("spill");
        assert!(segmented.segment_count() >= 2);
        assert_eq!(segmented.segment_paths().len(), segmented.segment_count());
        for path in segmented.segment_paths() {
            assert!(path.exists(), "{} missing", path.display());
        }
        let mut replayed = Collect::default();
        segmented.replay(&mut replayed).expect("replay");
        assert_eq!(replayed.ops, raw.ops);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn segmenting_an_in_memory_recording_matches_it() {
        let dir = std::env::temp_dir().join(format!("bioperf-seg-conv-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let xs: Vec<u64> = (0..16).collect();
        let mut tape = Tape::new(Recorder::new());
        for x in &xs {
            let v = tape.int_load(here!("k"), x);
            tape.int_op(here!("k"), &[v]);
        }
        let (program, rec) = tape.finish();
        let recording = rec.into_recording(program);
        let segmented = segment_recording(&recording, &dir, 5).expect("segment");
        assert_eq!(segmented.len(), recording.len());
        let mut streamed = Collect::default();
        segmented.replay(&mut streamed).expect("replay");
        let direct: Vec<MicroOp> = recording.iter().collect();
        assert_eq!(streamed.ops, direct);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn unwritable_spill_dir_is_a_typed_error() {
        let err = SpillRecorder::to_dir("/proc/bioperf-definitely-unwritable/seg", 4, 100)
            .expect_err("creating a spill dir under /proc must fail");
        assert!(matches!(err, SegmentError::Io { .. } | SegmentError::Missing { .. }));
        assert!(err.path().starts_with("/proc"));
        assert!(err.to_string().contains("/proc"), "{err}");
    }
}
