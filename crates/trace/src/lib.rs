//! Taped-execution instrumentation — the study's ATOM substitute.
//!
//! The original paper instruments Alpha binaries with the ATOM toolkit:
//! every executed instruction invokes analysis callbacks. We achieve the
//! same observability by writing the BioPerf kernels against the
//! [`Tracer`] trait: every load, store, ALU operation, and branch of the
//! hot code is both *executed natively* (the kernel computes its real
//! result in Rust) and *recorded* as a [`MicroOp`](bioperf_isa::MicroOp) carrying
//! static-instruction identity and SSA dataflow.
//!
//! Two tracer implementations exist:
//!
//! * [`Tape`] — records the stream and feeds it to a [`TraceConsumer`]
//!   (instruction-mix counters, cache simulator, branch predictors,
//!   dependence detectors, the timing model). This is the "instrumented
//!   binary".
//! * [`NullTracer`] — every method is an inlined no-op; kernels
//!   monomorphized against it run at native speed. This is the
//!   "uninstrumented binary" used for wall-clock benchmarking.
//!
//! [`Tape`] normalizes every recorded effective address (see
//! [`normalize`]) so traces — and everything derived from them, cache
//! miss counts included — are bit-identical across runs. [`Tape::raw`]
//! opts out. Need one kernel execution to feed several analyses? Wrap
//! them in a [`FanOut`] (or a consumer tuple) instead of re-tracing.
//!
//! # Example
//!
//! ```
//! use bioperf_isa::here;
//! use bioperf_trace::{consumers::InstrMix, Tape, Tracer};
//!
//! fn kernel<T: Tracer>(t: &mut T, xs: &[i64]) -> i64 {
//!     let mut sum = 0;
//!     let mut acc = t.lit();
//!     for x in xs {
//!         let v = t.int_load(here!("kernel"), x);
//!         acc = t.int_op(here!("kernel"), &[acc, v]);
//!         sum += *x;
//!     }
//!     sum
//! }
//!
//! let mut tape = Tape::new(InstrMix::default());
//! let sum = kernel(&mut tape, &[1, 2, 3]);
//! assert_eq!(sum, 6);
//! let (program, mix) = tape.finish();
//! assert_eq!(mix.loads(), 3);
//! assert_eq!(program.count_kind(bioperf_isa::OpKind::is_load), 1);
//! ```

pub mod consumers;
pub mod inject;
pub mod normalize;
pub mod packed;
pub mod replay;
pub mod segment;
pub mod tape;
pub mod tracer;

pub use consumers::{FanOut, InstrMix};
pub use normalize::{AddressNormalizer, NormalizerStats};
pub use packed::{
    BlockDecoder, OpBlock, PackedStream, BLOCK_OPS, REG_EVENT_DST, REG_EVENT_DST_LOAD,
    REG_EVENT_IDX_SHIFT, REG_EVENT_POS,
};
pub use replay::{Recorder, Recording};
pub use segment::{
    segment_recording, SegmentError, SegmentedRecording, SpillRecorder, DEFAULT_SEGMENT_OPS,
};
pub use tape::Tape;
pub use tracer::{NullTracer, TraceConsumer, Tracer};
