//! Property tests over the biological substrate.

use bioperf_bioseq::alphabet::Alphabet;
use bioperf_bioseq::fasta;
use bioperf_bioseq::matrix::ScoringMatrix;
use bioperf_bioseq::plan7::{EvdFit, Plan7Model};
use bioperf_bioseq::tree::{DistanceMatrix, GuideTree};
use bioperf_bioseq::SeqGen;
use proptest::prelude::*;

proptest! {
    /// Encode/decode round-trips for any residue string.
    #[test]
    fn alphabet_roundtrip(codes in prop::collection::vec(0u8..20, 0..200)) {
        let text = Alphabet::Protein.decode(&codes);
        prop_assert_eq!(Alphabet::Protein.encode(&text), codes);
    }

    /// FASTA round-trips arbitrary records.
    #[test]
    fn fasta_roundtrip(seqs in prop::collection::vec(prop::collection::vec(0u8..4, 0..150), 1..8)) {
        let records: Vec<fasta::Record> = seqs
            .iter()
            .enumerate()
            .map(|(i, s)| fasta::Record { name: format!("seq{i}"), residues: s.clone() })
            .collect();
        let text = fasta::format(&records, Alphabet::Dna);
        let parsed = fasta::parse(&text, Alphabet::Dna).unwrap();
        prop_assert_eq!(parsed, records);
    }

    /// Mutation preserves length and alphabet membership at any rate.
    #[test]
    fn mutation_preserves_shape(seed in any::<u64>(), len in 0usize..300, rate in 0.0f64..1.0) {
        let mut gen = SeqGen::new(seed);
        let s = gen.random_protein(len);
        let m = gen.mutate(&s, Alphabet::Protein, rate);
        prop_assert_eq!(m.len(), len);
        prop_assert!(m.iter().all(|&r| (r as usize) < 20));
    }

    /// Neighbor joining always yields a tree over exactly the input taxa.
    #[test]
    fn nj_is_a_permutation(n in 2usize..12, seed in any::<u64>()) {
        let mut gen = SeqGen::new(seed);
        let rows = gen.dna_character_matrix(n, 40);
        let d = DistanceMatrix::p_distance(&rows);
        let tree = GuideTree::neighbor_joining(&d);
        let mut leaves = tree.leaves();
        leaves.sort_unstable();
        prop_assert_eq!(leaves, (0..n).collect::<Vec<_>>());
    }

    /// The Viterbi score of any sequence against any synthetic model is
    /// finite and no better than a perfect-consensus bound.
    #[test]
    fn viterbi_scores_are_sane(m in 4usize..40, seed in any::<u64>(), len in 1usize..80) {
        let model = Plan7Model::synthetic(m, seed);
        let mut gen = SeqGen::new(seed ^ 1);
        let seq = gen.random_protein(len);
        let score = model.reference_viterbi(&seq);
        prop_assert!(score > -bioperf_bioseq::plan7::INFTY);
        prop_assert!(score < bioperf_bioseq::plan7::INFTY);
    }

    /// The EVD p-value is a survival function: monotone non-increasing
    /// and within [0, 1].
    #[test]
    fn evd_pvalue_is_a_survival_function(
        mu in -100.0f64..100.0,
        lambda in 0.01f64..1.0,
        a in -200.0f64..200.0,
        b in -200.0f64..200.0,
    ) {
        let fit = EvdFit { mu, lambda };
        let (lo, hi) = if a < b { (a, b) } else { (b, a) };
        let (p_lo, p_hi) = (fit.pvalue(lo), fit.pvalue(hi));
        prop_assert!((0.0..=1.0).contains(&p_lo));
        prop_assert!((0.0..=1.0).contains(&p_hi));
        prop_assert!(p_lo >= p_hi - 1e-12);
    }

    /// BLOSUM row lookups agree with symmetric entry lookups everywhere.
    #[test]
    fn matrix_row_is_consistent(a in 0u8..20, b in 0u8..20) {
        let m = ScoringMatrix::blosum62();
        prop_assert_eq!(m.row(a)[b as usize], m.score(a, b));
        prop_assert_eq!(m.score(a, b), m.score(b, a));
    }
}
