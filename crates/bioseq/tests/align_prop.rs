//! Property tests for the alignment machinery.

use bioperf_bioseq::align::{global, progressive_msa, AffineGap};
use bioperf_bioseq::matrix::ScoringMatrix;
use bioperf_bioseq::tree::{DistanceMatrix, GuideTree};
use bioperf_bioseq::SeqGen;
use proptest::prelude::*;

fn gap() -> AffineGap {
    AffineGap { open: 10, extend: 1 }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The traceback path always covers both inputs exactly once, in
    /// order, with no (gap, gap) columns.
    #[test]
    fn path_is_a_monotone_cover(seed in any::<u64>(), n in 0usize..40, m in 0usize..40) {
        let mut gen = SeqGen::new(seed);
        let a = gen.random_protein(n);
        let b = gen.random_protein(m);
        let aln = global(&a, &b, &ScoringMatrix::blosum62(), gap());
        let ai: Vec<usize> = aln.path.iter().filter_map(|(x, _)| *x).collect();
        let bi: Vec<usize> = aln.path.iter().filter_map(|(_, y)| *y).collect();
        prop_assert_eq!(ai, (0..n).collect::<Vec<_>>());
        prop_assert_eq!(bi, (0..m).collect::<Vec<_>>());
        prop_assert!(aln.path.iter().all(|(x, y)| x.is_some() || y.is_some()));
    }

    /// Global alignment score is symmetric in its arguments.
    #[test]
    fn score_is_symmetric(seed in any::<u64>(), n in 0usize..30, m in 0usize..30) {
        let mut gen = SeqGen::new(seed);
        let a = gen.random_protein(n);
        let b = gen.random_protein(m);
        let matrix = ScoringMatrix::blosum62();
        prop_assert_eq!(global(&a, &b, &matrix, gap()).score, global(&b, &a, &matrix, gap()).score);
    }

    /// Self-alignment is optimal and gap-free, scoring the diagonal sum.
    #[test]
    fn self_alignment_is_diagonal(seed in any::<u64>(), n in 1usize..50) {
        let mut gen = SeqGen::new(seed);
        let s = gen.random_protein(n);
        let matrix = ScoringMatrix::blosum62();
        let aln = global(&s, &s, &matrix, gap());
        prop_assert_eq!(aln.matched_columns(), n);
        let diag: i32 = s.iter().map(|&r| matrix.score(r, r)).sum();
        prop_assert_eq!(aln.score, diag);
    }

    /// The optimal score never exceeds the self-alignment bound of the
    /// higher-scoring input.
    #[test]
    fn score_is_bounded_by_self_scores(seed in any::<u64>(), n in 1usize..30, m in 1usize..30) {
        let mut gen = SeqGen::new(seed);
        let a = gen.random_protein(n);
        let b = gen.random_protein(m);
        let matrix = ScoringMatrix::blosum62();
        let bound = global(&a, &a, &matrix, gap()).score.max(global(&b, &b, &matrix, gap()).score);
        prop_assert!(global(&a, &b, &matrix, gap()).score <= bound);
    }

    /// A progressive MSA over any family preserves every member's
    /// residues in order, with equal-length rows.
    #[test]
    fn msa_rows_spell_their_sequences(seed in any::<u64>(), count in 2usize..7, len in 5usize..40) {
        let mut gen = SeqGen::new(seed);
        let family = gen.protein_family(count, len, 0.3);
        let matrix = ScoringMatrix::blosum62();
        let tree = GuideTree::neighbor_joining(&DistanceMatrix::p_distance(&family));
        let msa = progressive_msa(&family, &tree, &matrix, gap());
        let cols = msa.columns();
        for (row, &member) in msa.rows.iter().zip(&msa.members) {
            prop_assert_eq!(row.len(), cols);
            let spelled: Vec<u8> = row.iter().filter_map(|&r| r).collect();
            prop_assert_eq!(&spelled, &family[member]);
        }
        let mut members = msa.members.clone();
        members.sort_unstable();
        prop_assert_eq!(members, (0..count).collect::<Vec<_>>());
    }
}
