//! Bioinformatics substrate for the BioPerf kernel reimplementations.
//!
//! The original study runs the BioPerf programs on the suite's class-B/C
//! input data sets (protein and DNA databases, profile HMM libraries,
//! alignment inputs). Those data sets are not redistributable here, so
//! this crate provides the substrate the kernels need instead:
//!
//! * [`align`] — global (Gotoh) pairwise alignment with traceback and
//!   progressive multiple alignment (ClustalW's output machinery),
//! * [`alphabet`] — DNA and protein alphabets with dense residue codes,
//! * [`matrix`] — scoring matrices (full BLOSUM62, DNA match/mismatch),
//! * [`generate`] — seeded synthetic data: random sequences with realistic
//!   composition, mutated homolog families, whole databases,
//! * [`fasta`] — FASTA parsing and formatting,
//! * [`plan7`] — Plan7 profile HMMs in the HMMER2 integer log-odds style
//!   (the model the `hmmsearch`/`hmmpfam`/`hmmcalibrate` kernels consume),
//! * [`plan7_io`] / [`phylip`] — text formats for models and character
//!   matrices (HMMER2-style saves, PHYLIP sequential infiles),
//! * [`tree`] — distance matrices, neighbor-joining guide trees, and
//!   phylogeny character matrices for `clustalw`/`dnapenny`/`promlk`.
//!
//! All generation is deterministic given a seed, so every experiment in
//! the reproduction is repeatable.
//!
//! # Example
//!
//! ```
//! use bioperf_bioseq::alphabet::Alphabet;
//! use bioperf_bioseq::generate::SeqGen;
//!
//! let mut gen = SeqGen::new(42);
//! let seq = gen.random_protein(120);
//! assert_eq!(seq.len(), 120);
//! assert!(seq.iter().all(|&r| (r as usize) < Alphabet::Protein.size()));
//! ```

pub mod align;
pub mod alphabet;
pub mod fasta;
pub mod generate;
pub mod matrix;
pub mod phylip;
pub mod plan7;
pub mod plan7_io;
pub mod plan7_trace;
pub mod tree;

pub use alphabet::Alphabet;
pub use generate::SeqGen;
pub use matrix::ScoringMatrix;
pub use plan7::Plan7Model;
