//! PHYLIP sequential-format character matrices.
//!
//! `dnapenny` and `promlk` consume PHYLIP infiles; this module reads and
//! writes the sequential variant so the reproduction's drivers can
//! round-trip real inputs.

use std::fmt;

use crate::alphabet::Alphabet;

/// A parsed PHYLIP matrix: named, equal-length encoded sequences.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PhylipMatrix {
    /// Taxon names (up to 10 characters in the classic format).
    pub names: Vec<String>,
    /// Encoded rows, one per taxon, all the same length.
    pub rows: Vec<Vec<u8>>,
}

impl PhylipMatrix {
    /// Number of taxa.
    pub fn species(&self) -> usize {
        self.rows.len()
    }

    /// Number of sites.
    pub fn sites(&self) -> usize {
        self.rows.first().map_or(0, Vec::len)
    }
}

/// Error parsing PHYLIP text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParsePhylipError {
    /// The header line was missing or malformed.
    BadHeader,
    /// Fewer taxon lines than the header promised.
    MissingTaxa {
        /// Taxa promised by the header.
        expected: usize,
        /// Taxa actually present.
        found: usize,
    },
    /// A row's site count disagreed with the header.
    WrongSiteCount {
        /// Offending taxon name.
        taxon: String,
        /// Sites promised by the header.
        expected: usize,
        /// Sites actually present after encoding.
        found: usize,
    },
}

impl fmt::Display for ParsePhylipError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParsePhylipError::BadHeader => write!(f, "missing or malformed PHYLIP header"),
            ParsePhylipError::MissingTaxa { expected, found } => {
                write!(f, "header promised {expected} taxa but found {found}")
            }
            ParsePhylipError::WrongSiteCount { taxon, expected, found } => {
                write!(f, "taxon '{taxon}' has {found} sites, header promised {expected}")
            }
        }
    }
}

impl std::error::Error for ParsePhylipError {}

/// Parses sequential PHYLIP text.
///
/// # Errors
///
/// Returns a [`ParsePhylipError`] on a malformed header, missing taxa, or
/// rows whose encoded length disagrees with the header.
///
/// # Example
///
/// ```
/// use bioperf_bioseq::alphabet::Alphabet;
/// use bioperf_bioseq::phylip;
///
/// let text = " 3 8\nA         ACGTACGT\nB         ACGTACGA\nC         TCGTACGA\n";
/// let m = phylip::parse(text, Alphabet::Dna)?;
/// assert_eq!(m.species(), 3);
/// assert_eq!(m.sites(), 8);
/// assert_eq!(m.names[2], "C");
/// # Ok::<(), phylip::ParsePhylipError>(())
/// ```
pub fn parse(text: &str, alphabet: Alphabet) -> Result<PhylipMatrix, ParsePhylipError> {
    let mut lines = text.lines().filter(|l| !l.trim().is_empty());
    let header = lines.next().ok_or(ParsePhylipError::BadHeader)?;
    let mut parts = header.split_whitespace();
    let species: usize =
        parts.next().and_then(|s| s.parse().ok()).ok_or(ParsePhylipError::BadHeader)?;
    let sites: usize =
        parts.next().and_then(|s| s.parse().ok()).ok_or(ParsePhylipError::BadHeader)?;

    let mut names = Vec::with_capacity(species);
    let mut rows = Vec::with_capacity(species);
    for line in lines.take(species) {
        // Classic format: name in the first 10 columns, sequence after.
        let (name_part, seq_part) = if line.len() > 10 { line.split_at(10) } else { (line, "") };
        let name = name_part.trim().to_string();
        let row = alphabet.encode(seq_part);
        if row.len() != sites {
            return Err(ParsePhylipError::WrongSiteCount { taxon: name, expected: sites, found: row.len() });
        }
        names.push(name);
        rows.push(row);
    }
    if rows.len() != species {
        return Err(ParsePhylipError::MissingTaxa { expected: species, found: rows.len() });
    }
    Ok(PhylipMatrix { names, rows })
}

/// Formats a matrix as sequential PHYLIP text.
///
/// # Panics
///
/// Panics if rows have unequal lengths.
pub fn format(matrix: &PhylipMatrix, alphabet: Alphabet) -> String {
    let sites = matrix.sites();
    assert!(matrix.rows.iter().all(|r| r.len() == sites), "ragged matrix");
    let mut out = format!(" {} {}\n", matrix.species(), sites);
    for (name, row) in matrix.names.iter().zip(&matrix.rows) {
        let padded = format!("{name:<10}");
        out.push_str(&padded[..10.min(padded.len())]);
        out.push_str(&alphabet.decode(row));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> PhylipMatrix {
        PhylipMatrix {
            names: vec!["human".into(), "chimp".into(), "mouse".into()],
            rows: vec![
                Alphabet::Dna.encode("ACGTAC"),
                Alphabet::Dna.encode("ACGTAA"),
                Alphabet::Dna.encode("TCGTAA"),
            ],
        }
    }

    #[test]
    fn roundtrip() {
        let m = sample();
        let text = format(&m, Alphabet::Dna);
        let parsed = parse(&text, Alphabet::Dna).unwrap();
        assert_eq!(parsed, m);
    }

    #[test]
    fn header_shape() {
        let text = format(&sample(), Alphabet::Dna);
        assert!(text.starts_with(" 3 6\n"));
    }

    #[test]
    fn bad_header_rejected() {
        assert_eq!(parse("", Alphabet::Dna).unwrap_err(), ParsePhylipError::BadHeader);
        assert_eq!(parse("x y\n", Alphabet::Dna).unwrap_err(), ParsePhylipError::BadHeader);
    }

    #[test]
    fn missing_taxa_rejected() {
        let err = parse(" 3 4\nA         ACGT\n", Alphabet::Dna).unwrap_err();
        assert_eq!(err, ParsePhylipError::MissingTaxa { expected: 3, found: 1 });
    }

    #[test]
    fn wrong_site_count_rejected() {
        let err = parse(" 1 8\nA         ACGT\n", Alphabet::Dna).unwrap_err();
        assert!(matches!(err, ParsePhylipError::WrongSiteCount { expected: 8, found: 4, .. }));
        assert!(err.to_string().contains("promised 8"));
    }

    #[test]
    fn long_names_truncate_to_ten_columns() {
        let m = PhylipMatrix {
            names: vec!["averylongtaxonname".into()],
            rows: vec![Alphabet::Dna.encode("AC")],
        };
        let text = format(&m, Alphabet::Dna);
        let parsed = parse(&text, Alphabet::Dna).unwrap();
        assert_eq!(parsed.names[0], "averylongt");
    }

    #[test]
    fn whitespace_in_sequences_is_tolerated() {
        let m = parse(" 1 6\nA         AC GT AC\n", Alphabet::Dna).unwrap();
        assert_eq!(m.sites(), 6);
    }
}
