//! Plan7 profile HMMs in the HMMER2 integer log-odds style.
//!
//! The three HMMER-derived BioPerf programs (`hmmsearch`, `hmmpfam`,
//! `hmmcalibrate`) spend nearly all their time in the `P7Viterbi` dynamic
//! program over a model of this shape. Field names follow the paper's
//! Figure 6 source (`tpmm`, `tpim`, `tpdm`, `bsc`, …), which are HMMER2's
//! transition-score rows.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::alphabet::Alphabet;

/// HMMER2's "minus infinity" score sentinel; the Figure 6 loop clamps
/// scores at this value (`if (mc[k] < -INFTY) mc[k] = -INFTY`).
pub const INFTY: i32 = 987_654_321;

/// Integer log-odds scale (HMMER2 uses 1000 × log2; we use a comparable
/// natural-log scale).
const INTSCALE: f64 = 350.0;

fn prob_to_score(p: f64) -> i32 {
    if p <= 0.0 {
        -INFTY
    } else {
        (p.ln() * INTSCALE).round() as i32
    }
}

/// A Plan7 profile HMM of length `m` with integer log-odds scores.
///
/// Emission tables are laid out `[residue][k]` so the Viterbi kernel can
/// take a row pointer per sequence position, exactly like HMMER2's
/// `msc[dsq[i]]`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Plan7Model {
    /// Model length (number of match states).
    pub m: usize,
    /// M(k) → M(k+1) transition scores, indexed `0..=m`.
    pub tpmm: Vec<i32>,
    /// M(k) → I(k) transition scores.
    pub tpmi: Vec<i32>,
    /// M(k) → D(k+1) transition scores.
    pub tpmd: Vec<i32>,
    /// I(k) → M(k+1) transition scores.
    pub tpim: Vec<i32>,
    /// I(k) → I(k) transition scores.
    pub tpii: Vec<i32>,
    /// D(k) → M(k+1) transition scores.
    pub tpdm: Vec<i32>,
    /// D(k) → D(k+1) transition scores.
    pub tpdd: Vec<i32>,
    /// Match emission scores, `msc[residue][k]`.
    pub msc: Vec<Vec<i32>>,
    /// Insert emission scores, `isc[residue][k]`.
    pub isc: Vec<Vec<i32>>,
    /// Begin → M(k) entry scores.
    pub bsc: Vec<i32>,
    /// M(k) → End exit scores.
    pub esc: Vec<i32>,
    /// N-state self-loop score (models flanking sequence).
    pub xtn_loop: i32,
    /// N → B move score.
    pub xtn_move: i32,
    /// E → C move score.
    pub xte_move: i32,
    /// E → J loop score (multi-hit).
    pub xte_loop: i32,
    /// J self-loop score.
    pub xtj_loop: i32,
    /// J → B move score.
    pub xtj_move: i32,
    /// C self-loop score.
    pub xtc_loop: i32,
}

impl Plan7Model {
    /// Builds a model from an (implicitly aligned) protein family: column
    /// residue frequencies become match emissions; transitions get
    /// realistic magnitudes with per-position jitter.
    ///
    /// # Panics
    ///
    /// Panics if the family is empty or members have unequal lengths.
    pub fn from_family(family: &[Vec<u8>], seed: u64) -> Self {
        assert!(!family.is_empty(), "family must be non-empty");
        let m = family[0].len();
        assert!(family.iter().all(|s| s.len() == m), "family members must align");
        assert!(m >= 2, "model needs at least two match states");

        let mut rng = StdRng::seed_from_u64(seed);
        let nres = Alphabet::Protein.size();
        // Background composition: uniform-ish with pseudo-counts.
        let bg = 1.0 / nres as f64;

        // Column frequencies with Laplace smoothing.
        let mut msc = vec![vec![0i32; m + 1]; nres];
        let mut isc = vec![vec![0i32; m + 1]; nres];
        for k in 1..=m {
            let mut counts = vec![1.0f64; nres]; // pseudo-count
            for seq in family {
                counts[seq[k - 1] as usize] += 1.0;
            }
            let total: f64 = counts.iter().sum();
            for r in 0..nres {
                let p = counts[r] / total;
                msc[r][k] = prob_to_score(p / bg);
                // Inserts emit near-background: small noisy scores.
                isc[r][k] = rng.gen_range(-40..10);
            }
        }

        let jitter = |rng: &mut StdRng, base: f64| {
            let p = (base * rng.gen_range(0.7..1.3)).min(0.999);
            prob_to_score(p)
        };

        let mut tpmm = vec![0i32; m + 1];
        let mut tpmi = vec![0i32; m + 1];
        let mut tpmd = vec![0i32; m + 1];
        let mut tpim = vec![0i32; m + 1];
        let mut tpii = vec![0i32; m + 1];
        let mut tpdm = vec![0i32; m + 1];
        let mut tpdd = vec![0i32; m + 1];
        for k in 0..=m {
            tpmm[k] = jitter(&mut rng, 0.90);
            tpmi[k] = jitter(&mut rng, 0.05);
            tpmd[k] = jitter(&mut rng, 0.05);
            tpim[k] = jitter(&mut rng, 0.60);
            tpii[k] = jitter(&mut rng, 0.40);
            tpdm[k] = jitter(&mut rng, 0.70);
            tpdd[k] = jitter(&mut rng, 0.30);
        }

        // Local (wing-retracted) entry/exit: strong at the ends, weak
        // but possible internally.
        let mut bsc = vec![-INFTY; m + 1];
        let mut esc = vec![-INFTY; m + 1];
        for k in 1..=m {
            bsc[k] = if k == 1 { prob_to_score(0.5) } else { prob_to_score(0.5 / m as f64) };
            esc[k] = if k == m { prob_to_score(0.5) } else { prob_to_score(0.5 / m as f64) };
        }

        Self {
            m,
            tpmm,
            tpmi,
            tpmd,
            tpim,
            tpii,
            tpdm,
            tpdd,
            msc,
            isc,
            bsc,
            esc,
            xtn_loop: prob_to_score(0.99),
            xtn_move: prob_to_score(0.01),
            xte_move: prob_to_score(0.5),
            xte_loop: prob_to_score(0.5),
            xtj_loop: prob_to_score(0.99),
            xtj_move: prob_to_score(0.01),
            xtc_loop: prob_to_score(0.99),
        }
    }

    /// A convenience model built from a fresh synthetic family.
    pub fn synthetic(m: usize, seed: u64) -> Self {
        let mut gen = crate::generate::SeqGen::new(seed);
        let family = gen.protein_family(8, m, 0.2);
        Self::from_family(&family, seed ^ 0x9e37_79b9_7f4a_7c15)
    }

    /// Reference Viterbi score of `dsq` against this model: a slow,
    /// obviously-correct implementation of the Plan7 recurrence used to
    /// validate the instrumented kernels (both the Original and the
    /// LoadTransformed variants must reproduce it bit-for-bit).
    #[allow(clippy::needless_range_loop)] // mirrors the HMMER recurrence
    pub fn reference_viterbi(&self, dsq: &[u8]) -> i32 {
        let m = self.m;
        let n = dsq.len();
        let neg = -INFTY;
        let clamp = |x: i32| if x < neg { neg } else { x };

        let mut mpp = vec![neg; m + 1];
        let mut ipp = vec![neg; m + 1];
        let mut dpp = vec![neg; m + 1];
        let mut mc = vec![neg; m + 1];
        let mut ic = vec![neg; m + 1];
        let mut dc = vec![neg; m + 1];

        let mut xmn = 0i32; // N state at row 0
        let mut xmb = clamp(xmn + self.xtn_move);
        let mut xmj = neg;
        let mut xmc = neg;

        for i in 1..=n {
            let res = dsq[i - 1] as usize;
            let ms = &self.msc[res];
            let is = &self.isc[res];
            mc[0] = neg;
            ic[0] = neg;
            dc[0] = neg;
            for k in 1..=m {
                // Match state.
                let mut sc = mpp[k - 1].saturating_add(self.tpmm[k - 1]);
                let t = ipp[k - 1].saturating_add(self.tpim[k - 1]);
                if t > sc {
                    sc = t;
                }
                let t = dpp[k - 1].saturating_add(self.tpdm[k - 1]);
                if t > sc {
                    sc = t;
                }
                let t = xmb.saturating_add(self.bsc[k]);
                if t > sc {
                    sc = t;
                }
                mc[k] = clamp(sc.saturating_add(ms[k]));

                // Delete state (within-row dependence on mc[k-1]).
                let mut sc = dc[k - 1].saturating_add(self.tpdd[k - 1]);
                let t = mc[k - 1].saturating_add(self.tpmd[k - 1]);
                if t > sc {
                    sc = t;
                }
                dc[k] = clamp(sc);

                // Insert state (no insert at k == m in Plan7).
                if k < m {
                    let mut sc = mpp[k].saturating_add(self.tpmi[k]);
                    let t = ipp[k].saturating_add(self.tpii[k]);
                    if t > sc {
                        sc = t;
                    }
                    ic[k] = clamp(sc.saturating_add(is[k]));
                } else {
                    ic[k] = neg;
                }
            }

            // Special states, HMMER2 order: E, J, C, N, B.
            let mut e = neg;
            for k in 1..=m {
                let t = mc[k].saturating_add(self.esc[k]);
                if t > e {
                    e = t;
                }
            }
            let xme = clamp(e);
            let j1 = xmj.saturating_add(self.xtj_loop);
            let j2 = xme.saturating_add(self.xte_loop);
            xmj = clamp(j1.max(j2));
            let c1 = xmc.saturating_add(self.xtc_loop);
            let c2 = xme.saturating_add(self.xte_move);
            xmc = clamp(c1.max(c2));
            xmn = clamp(xmn.saturating_add(self.xtn_loop));
            let b1 = xmn.saturating_add(self.xtn_move);
            let b2 = xmj.saturating_add(self.xtj_move);
            xmb = clamp(b1.max(b2));

            std::mem::swap(&mut mpp, &mut mc);
            std::mem::swap(&mut ipp, &mut ic);
            std::mem::swap(&mut dpp, &mut dc);
        }
        xmc
    }
}

/// Extreme-value (Gumbel) distribution parameters, fit by the method of
/// moments — the statistical step of `hmmcalibrate`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EvdFit {
    /// Location parameter.
    pub mu: f64,
    /// Scale parameter.
    pub lambda: f64,
}

impl EvdFit {
    /// Fits Gumbel parameters to a sample of scores.
    ///
    /// # Panics
    ///
    /// Panics if fewer than two scores are supplied.
    pub fn from_scores(scores: &[f64]) -> Self {
        assert!(scores.len() >= 2, "EVD fit needs at least two scores");
        let n = scores.len() as f64;
        let mean = scores.iter().sum::<f64>() / n;
        let var = scores.iter().map(|s| (s - mean) * (s - mean)).sum::<f64>() / (n - 1.0);
        let std = var.sqrt().max(1e-9);
        let lambda = std::f64::consts::PI / (std * 6.0f64.sqrt());
        let mu = mean - 0.577_215_664_901_532_9 / lambda;
        Self { mu, lambda }
    }

    /// Gumbel survival function: `P(S > x)`.
    pub fn pvalue(&self, x: f64) -> f64 {
        1.0 - (-(-self.lambda * (x - self.mu)).exp()).exp()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::SeqGen;

    #[test]
    fn model_shapes() {
        let m = Plan7Model::synthetic(50, 1);
        assert_eq!(m.m, 50);
        assert_eq!(m.tpmm.len(), 51);
        assert_eq!(m.msc.len(), 20);
        assert_eq!(m.msc[0].len(), 51);
        assert_eq!(m.bsc[0], -INFTY);
    }

    #[test]
    fn determinism() {
        let a = Plan7Model::synthetic(30, 9);
        let b = Plan7Model::synthetic(30, 9);
        assert_eq!(a, b);
    }

    #[test]
    fn consensus_scores_higher_than_random() {
        let mut gen = SeqGen::new(11);
        let family = gen.protein_family(8, 80, 0.15);
        let model = Plan7Model::from_family(&family, 11);
        let hit = model.reference_viterbi(&family[0]);
        let random = gen.random_protein(80);
        let miss = model.reference_viterbi(&random);
        assert!(hit > miss, "consensus {hit} should outscore random {miss}");
    }

    #[test]
    fn viterbi_scores_are_finite_for_reasonable_sequences() {
        let model = Plan7Model::synthetic(40, 2);
        let mut gen = SeqGen::new(3);
        for len in [10, 40, 100] {
            let s = gen.random_protein(len);
            let score = model.reference_viterbi(&s);
            assert!(score > -INFTY && score < INFTY, "len {len}: {score}");
        }
    }

    #[test]
    fn empty_sequence_scores_neg_infinity_ish() {
        let model = Plan7Model::synthetic(10, 4);
        // No row processed: C never reached.
        assert_eq!(model.reference_viterbi(&[]), -INFTY);
    }

    #[test]
    fn longer_homolog_prefix_increases_score_monotonic_tendency() {
        // Not a strict invariant, but a hit sequence must beat its own
        // tiny prefix.
        let mut gen = SeqGen::new(5);
        let family = gen.protein_family(6, 60, 0.1);
        let model = Plan7Model::from_family(&family, 5);
        let full = model.reference_viterbi(&family[1]);
        let prefix = model.reference_viterbi(&family[1][..5]);
        assert!(full > prefix);
    }

    #[test]
    fn evd_fit_recovers_parameters() {
        // Sample from a known Gumbel via inverse CDF.
        let (mu, lambda) = (120.0, 0.07);
        let mut rng = StdRng::seed_from_u64(42);
        let scores: Vec<f64> = (0..20_000)
            .map(|_| {
                let u: f64 = rng.gen_range(1e-9..1.0);
                mu - (-(u.ln())).ln() / lambda
            })
            .collect();
        let fit = EvdFit::from_scores(&scores);
        assert!((fit.mu - mu).abs() < 2.0, "mu = {}", fit.mu);
        assert!((fit.lambda - lambda).abs() < 0.01, "lambda = {}", fit.lambda);
    }

    #[test]
    fn evd_pvalue_is_monotone_decreasing() {
        let fit = EvdFit { mu: 100.0, lambda: 0.1 };
        assert!(fit.pvalue(90.0) > fit.pvalue(110.0));
        assert!(fit.pvalue(200.0) < 0.001);
    }

    #[test]
    #[should_panic(expected = "align")]
    fn ragged_family_rejected() {
        Plan7Model::from_family(&[vec![0; 5], vec![0; 6]], 0);
    }
}
