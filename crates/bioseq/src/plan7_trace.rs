//! Full-matrix Viterbi with state-path traceback.
//!
//! `hmmsearch` does not just score its hits — it reports the aligned
//! state path for every sequence above threshold. This module provides
//! the full O(N·M) dynamic program with traceback, plus an independent
//! path re-scorer used to validate the recurrence end-to-end.

use crate::plan7::{Plan7Model, INFTY};

const NEG: i32 = -INFTY;

/// One step of a Plan7 state path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum State {
    /// Flanking N state emitting sequence position `i` (1-based); `i = 0`
    /// marks the initial silent N.
    N(usize),
    /// Begin state entered before row `i + 1`.
    B(usize),
    /// Match state `k` emitting position `i`.
    M(usize, usize),
    /// Insert state `k` emitting position `i`.
    I(usize, usize),
    /// Delete state `k` at row `i` (silent).
    D(usize, usize),
    /// End state at row `i`.
    E(usize),
    /// J (loop) state at row `i`.
    J(usize),
    /// Flanking C state at row `i`.
    C(usize),
}

/// A complete Viterbi result: the score and the optimal state path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ViterbiTrace {
    /// Optimal score (identical to
    /// [`Plan7Model::reference_viterbi`]).
    pub score: i32,
    /// State path from the first N to the final C.
    pub path: Vec<State>,
}

impl ViterbiTrace {
    /// Match states visited, in order — the alignment hmmsearch prints.
    pub fn match_states(&self) -> Vec<(usize, usize)> {
        self.path
            .iter()
            .filter_map(|s| if let State::M(i, k) = s { Some((*i, *k)) } else { None })
            .collect()
    }
}

/// Computes the Viterbi score with full matrices and traces back the
/// optimal state path.
///
/// The returned score always equals [`Plan7Model::reference_viterbi`];
/// [`rescore_path`] recomputes the same value from the path alone.
pub fn viterbi_trace(model: &Plan7Model, dsq: &[u8]) -> ViterbiTrace {
    let m = model.m;
    let n = dsq.len();
    let w = m + 1;
    let clamp = |x: i32| if x < NEG { NEG } else { x };

    let mut mmx = vec![NEG; (n + 1) * w];
    let mut imx = vec![NEG; (n + 1) * w];
    let mut dmx = vec![NEG; (n + 1) * w];
    let mut xn = vec![NEG; n + 1];
    let mut xb = vec![NEG; n + 1];
    let mut xe = vec![NEG; n + 1];
    let mut xj = vec![NEG; n + 1];
    let mut xc = vec![NEG; n + 1];

    xn[0] = 0;
    xb[0] = clamp(model.xtn_move);

    for i in 1..=n {
        let res = dsq[i - 1] as usize;
        let ms = &model.msc[res];
        let is = &model.isc[res];
        for k in 1..=m {
            let idx = i * w + k;
            let prev = (i - 1) * w + (k - 1);
            let mut sc = mmx[prev].saturating_add(model.tpmm[k - 1]);
            sc = sc.max(imx[prev].saturating_add(model.tpim[k - 1]));
            sc = sc.max(dmx[prev].saturating_add(model.tpdm[k - 1]));
            sc = sc.max(xb[i - 1].saturating_add(model.bsc[k]));
            mmx[idx] = clamp(sc.saturating_add(ms[k]));

            let mut sc = dmx[idx - 1].saturating_add(model.tpdd[k - 1]);
            sc = sc.max(mmx[idx - 1].saturating_add(model.tpmd[k - 1]));
            dmx[idx] = clamp(sc);

            if k < m {
                let up = (i - 1) * w + k;
                let mut sc = mmx[up].saturating_add(model.tpmi[k]);
                sc = sc.max(imx[up].saturating_add(model.tpii[k]));
                imx[idx] = clamp(sc.saturating_add(is[k]));
            }
        }
        let mut e = NEG;
        for k in 1..=m {
            e = e.max(mmx[i * w + k].saturating_add(model.esc[k]));
        }
        xe[i] = clamp(e);
        xj[i] = clamp(
            xj[i - 1].saturating_add(model.xtj_loop).max(xe[i].saturating_add(model.xte_loop)),
        );
        xc[i] = clamp(
            xc[i - 1].saturating_add(model.xtc_loop).max(xe[i].saturating_add(model.xte_move)),
        );
        xn[i] = clamp(xn[i - 1].saturating_add(model.xtn_loop));
        xb[i] = clamp(
            xn[i].saturating_add(model.xtn_move).max(xj[i].saturating_add(model.xtj_move)),
        );
    }

    // Traceback by predecessor re-checking (HMMER's shadowless style).
    let mut path = Vec::new();
    if n == 0 {
        return ViterbiTrace { score: NEG, path: vec![State::N(0)] };
    }
    let score = xc[n];
    let mut i = n;
    #[derive(Clone, Copy, PartialEq)]
    enum Cur {
        C,
        J,
        E,
        B,
        N,
        M(usize),
        I(usize),
        D(usize),
    }
    let mut cur = Cur::C;
    path.push(State::C(n));
    let mut guard = 0usize;
    while !(cur == Cur::N && i == 0) {
        guard += 1;
        assert!(guard < 4 * (n + 2) * (m + 2), "traceback failed to terminate");
        match cur {
            Cur::C => {
                // C(i) came from C(i-1) loop or E(i) move.
                if i >= 1 && xc[i] == clamp(xc[i - 1].saturating_add(model.xtc_loop)) && xc[i - 1] > NEG {
                    i -= 1;
                    path.push(State::C(i));
                } else {
                    cur = Cur::E;
                    path.push(State::E(i));
                }
            }
            Cur::J => {
                if i >= 1 && xj[i] == clamp(xj[i - 1].saturating_add(model.xtj_loop)) && xj[i - 1] > NEG {
                    i -= 1;
                    path.push(State::J(i));
                } else {
                    cur = Cur::E;
                    path.push(State::E(i));
                }
            }
            Cur::E => {
                // E(i) is the max over M(i, k) + esc[k].
                let mut found = None;
                for k in 1..=m {
                    if xe[i] == clamp(mmx[i * w + k].saturating_add(model.esc[k])) {
                        found = Some(k);
                        break;
                    }
                }
                let k = found.expect("E state must have a match predecessor");
                cur = Cur::M(k);
                path.push(State::M(i, k));
            }
            Cur::B => {
                // B(i) from N(i) or J(i).
                if xb[i] == clamp(xn[i].saturating_add(model.xtn_move)) {
                    cur = Cur::N;
                    path.push(State::N(i));
                } else {
                    cur = Cur::J;
                    path.push(State::J(i));
                }
            }
            Cur::N => {
                // N(i) from N(i-1); emits position i.
                i -= 1;
                path.push(State::N(i));
            }
            Cur::M(k) => {
                // M(i,k) from M/I/D(i-1,k-1) or B(i-1).
                let res = dsq[i - 1] as usize;
                let emitted = model.msc[res][k];
                let target = mmx[i * w + k];
                let prev = (i - 1) * w + (k - 1);
                if target == clamp(xb[i - 1].saturating_add(model.bsc[k]).saturating_add(emitted)) {
                    i -= 1;
                    cur = Cur::B;
                    path.push(State::B(i));
                } else if target == clamp(mmx[prev].saturating_add(model.tpmm[k - 1]).saturating_add(emitted)) {
                    i -= 1;
                    cur = Cur::M(k - 1);
                    path.push(State::M(i, k - 1));
                } else if target == clamp(imx[prev].saturating_add(model.tpim[k - 1]).saturating_add(emitted)) {
                    i -= 1;
                    cur = Cur::I(k - 1);
                    path.push(State::I(i, k - 1));
                } else {
                    i -= 1;
                    cur = Cur::D(k - 1);
                    path.push(State::D(i, k - 1));
                }
            }
            Cur::I(k) => {
                let res = dsq[i - 1] as usize;
                let emitted = model.isc[res][k];
                let target = imx[i * w + k];
                let up = (i - 1) * w + k;
                if target == clamp(mmx[up].saturating_add(model.tpmi[k]).saturating_add(emitted)) {
                    i -= 1;
                    cur = Cur::M(k);
                    path.push(State::M(i, k));
                } else {
                    i -= 1;
                    cur = Cur::I(k);
                    path.push(State::I(i, k));
                }
            }
            Cur::D(k) => {
                let target = dmx[i * w + k];
                if target == clamp(mmx[i * w + k - 1].saturating_add(model.tpmd[k - 1])) {
                    cur = Cur::M(k - 1);
                    path.push(State::M(i, k - 1));
                } else {
                    cur = Cur::D(k - 1);
                    path.push(State::D(i, k - 1));
                }
            }
        }
    }
    path.reverse();
    ViterbiTrace { score, path }
}

/// Independently rescores a state path by summing its transitions and
/// emissions. For a path produced by [`viterbi_trace`] this equals the
/// Viterbi score — the strongest possible check of the recurrence.
pub fn rescore_path(model: &Plan7Model, dsq: &[u8], path: &[State]) -> i32 {
    let mut score = 0i64;
    for pair in path.windows(2) {
        let step = match (pair[0], pair[1]) {
            (State::N(_), State::N(_)) => model.xtn_loop as i64,
            (State::N(_), State::B(_)) => model.xtn_move as i64,
            (State::B(_), State::M(i, k)) => {
                (model.bsc[k] as i64) + model.msc[dsq[i - 1] as usize][k] as i64
            }
            (State::M(_, k), State::M(i, k2)) if k2 == k + 1 => {
                (model.tpmm[k] as i64) + model.msc[dsq[i - 1] as usize][k2] as i64
            }
            (State::M(_, k), State::I(i, k2)) if k2 == k => {
                (model.tpmi[k] as i64) + model.isc[dsq[i - 1] as usize][k] as i64
            }
            (State::M(_, k), State::D(_, k2)) if k2 == k + 1 => model.tpmd[k] as i64,
            (State::M(_, k), State::E(_)) => model.esc[k] as i64,
            (State::I(_, k), State::I(i, k2)) if k2 == k => {
                (model.tpii[k] as i64) + model.isc[dsq[i - 1] as usize][k] as i64
            }
            (State::I(_, k), State::M(i, k2)) if k2 == k + 1 => {
                (model.tpim[k] as i64) + model.msc[dsq[i - 1] as usize][k2] as i64
            }
            (State::D(_, k), State::D(_, k2)) if k2 == k + 1 => model.tpdd[k] as i64,
            (State::D(_, k), State::M(i, k2)) if k2 == k + 1 => {
                (model.tpdm[k] as i64) + model.msc[dsq[i - 1] as usize][k2] as i64
            }
            (State::E(_), State::C(_)) => model.xte_move as i64,
            (State::E(_), State::J(_)) => model.xte_loop as i64,
            (State::J(_), State::J(_)) => model.xtj_loop as i64,
            (State::J(_), State::B(_)) => model.xtj_move as i64,
            (State::C(_), State::C(_)) => model.xtc_loop as i64,
            (a, b) => panic!("illegal transition {a:?} -> {b:?}"),
        };
        score += step;
    }
    score.clamp(NEG as i64, INFTY as i64) as i32
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SeqGen;

    #[test]
    fn trace_score_matches_reference() {
        let model = Plan7Model::synthetic(25, 3);
        let mut gen = SeqGen::new(4);
        for len in [5, 20, 60] {
            let seq = gen.random_protein(len);
            let trace = viterbi_trace(&model, &seq);
            assert_eq!(trace.score, model.reference_viterbi(&seq), "len {len}");
        }
    }

    #[test]
    fn path_rescoring_reproduces_the_score() {
        let model = Plan7Model::synthetic(18, 5);
        let mut gen = SeqGen::new(6);
        for len in [8, 30, 45] {
            let seq = gen.random_protein(len);
            let trace = viterbi_trace(&model, &seq);
            if trace.score > NEG {
                let rescored = rescore_path(&model, &seq, &trace.path);
                assert_eq!(rescored, trace.score, "len {len}: path disagrees with DP");
            }
        }
    }

    #[test]
    fn homolog_path_uses_many_match_states() {
        let mut gen = SeqGen::new(7);
        let family = gen.protein_family(6, 40, 0.1);
        let model = Plan7Model::from_family(&family, 7);
        let trace = viterbi_trace(&model, &family[1]);
        let matches = trace.match_states();
        assert!(matches.len() > 25, "homolog should thread the model: {} matches", matches.len());
        // Match positions advance monotonically in both coordinates.
        assert!(matches.windows(2).all(|w| w[1].0 > w[0].0 && w[1].1 > w[0].1));
    }

    #[test]
    fn empty_sequence_gives_trivial_path() {
        let model = Plan7Model::synthetic(10, 8);
        let trace = viterbi_trace(&model, &[]);
        assert_eq!(trace.score, NEG);
        assert_eq!(trace.path, vec![State::N(0)]);
    }

    #[test]
    fn path_emissions_cover_the_sequence() {
        let model = Plan7Model::synthetic(15, 9);
        let mut gen = SeqGen::new(10);
        let seq = gen.random_protein(25);
        let trace = viterbi_trace(&model, &seq);
        // Every sequence position is emitted exactly once by an M, I, N,
        // J, or C state transition.
        let mut emitted = vec![false; seq.len() + 1];
        for pair in trace.path.windows(2) {
            let pos = match (pair[0], pair[1]) {
                (State::N(a), State::N(b)) if b == a + 1 => Some(b),
                (State::J(a), State::J(b)) if b == a + 1 => Some(b),
                (State::C(a), State::C(b)) if b == a + 1 => Some(b),
                (_, State::M(i, _)) => Some(i),
                (_, State::I(i, _)) => Some(i),
                _ => None,
            };
            if let Some(p) = pos {
                assert!(!emitted[p], "position {p} emitted twice");
                emitted[p] = true;
            }
        }
        assert!(emitted[1..].iter().all(|&e| e), "all positions emitted: {emitted:?}");
    }
}
