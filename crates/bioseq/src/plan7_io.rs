//! Text serialization for [`Plan7Model`], in the spirit of HMMER2's
//! ASCII save files: one keyword-tagged line per score vector.
//!
//! ```text
//! PLAN7 M <m>
//! TPMM <m+1 integers>
//! …                         (TPMI TPMD TPIM TPII TPDM TPDD BSC ESC)
//! XT <7 integers>
//! MSC <residue> <m+1 integers>   (×20)
//! ISC <residue> <m+1 integers>   (×20)
//! //
//! ```

use std::fmt;

use crate::alphabet::Alphabet;
use crate::plan7::Plan7Model;

/// Error parsing a Plan7 text file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParsePlan7Error {
    /// Missing or malformed `PLAN7 M <m>` header.
    BadHeader,
    /// A required section was missing.
    MissingSection(&'static str),
    /// A score vector had the wrong number of entries.
    WrongLength {
        /// Section tag.
        section: String,
        /// Expected entries (`m + 1`).
        expected: usize,
        /// Entries found.
        found: usize,
    },
    /// A score failed to parse as an integer.
    BadScore(String),
    /// The terminating `//` was missing.
    MissingTerminator,
}

impl fmt::Display for ParsePlan7Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParsePlan7Error::BadHeader => write!(f, "missing or malformed PLAN7 header"),
            ParsePlan7Error::MissingSection(s) => write!(f, "missing section {s}"),
            ParsePlan7Error::WrongLength { section, expected, found } => {
                write!(f, "section {section}: expected {expected} scores, found {found}")
            }
            ParsePlan7Error::BadScore(tok) => write!(f, "unparseable score '{tok}'"),
            ParsePlan7Error::MissingTerminator => write!(f, "missing terminating //"),
        }
    }
}

impl std::error::Error for ParsePlan7Error {}

fn write_vec(out: &mut String, tag: &str, v: &[i32]) {
    out.push_str(tag);
    for x in v {
        out.push(' ');
        out.push_str(&x.to_string());
    }
    out.push('\n');
}

/// Serializes a model to the text format.
pub fn to_text(model: &Plan7Model) -> String {
    let mut out = format!("PLAN7 M {}\n", model.m);
    write_vec(&mut out, "TPMM", &model.tpmm);
    write_vec(&mut out, "TPMI", &model.tpmi);
    write_vec(&mut out, "TPMD", &model.tpmd);
    write_vec(&mut out, "TPIM", &model.tpim);
    write_vec(&mut out, "TPII", &model.tpii);
    write_vec(&mut out, "TPDM", &model.tpdm);
    write_vec(&mut out, "TPDD", &model.tpdd);
    write_vec(&mut out, "BSC", &model.bsc);
    write_vec(&mut out, "ESC", &model.esc);
    write_vec(
        &mut out,
        "XT",
        &[
            model.xtn_loop,
            model.xtn_move,
            model.xte_move,
            model.xte_loop,
            model.xtj_loop,
            model.xtj_move,
            model.xtc_loop,
        ],
    );
    for r in 0..Alphabet::Protein.size() {
        write_vec(&mut out, &format!("MSC {r}"), &model.msc[r]);
    }
    for r in 0..Alphabet::Protein.size() {
        write_vec(&mut out, &format!("ISC {r}"), &model.isc[r]);
    }
    out.push_str("//\n");
    out
}

fn parse_scores(tokens: &[&str], expected: usize, section: &str) -> Result<Vec<i32>, ParsePlan7Error> {
    if tokens.len() != expected {
        return Err(ParsePlan7Error::WrongLength {
            section: section.to_string(),
            expected,
            found: tokens.len(),
        });
    }
    tokens
        .iter()
        .map(|t| t.parse().map_err(|_| ParsePlan7Error::BadScore(t.to_string())))
        .collect()
}

/// Parses a model from the text format.
///
/// # Errors
///
/// Returns [`ParsePlan7Error`] on structural or numeric problems; a
/// successfully parsed model always round-trips through [`to_text`].
pub fn from_text(text: &str) -> Result<Plan7Model, ParsePlan7Error> {
    let mut lines = text.lines().filter(|l| !l.trim().is_empty());
    let header = lines.next().ok_or(ParsePlan7Error::BadHeader)?;
    let mut hp = header.split_whitespace();
    if hp.next() != Some("PLAN7") || hp.next() != Some("M") {
        return Err(ParsePlan7Error::BadHeader);
    }
    let m: usize = hp.next().and_then(|s| s.parse().ok()).ok_or(ParsePlan7Error::BadHeader)?;
    let n = m + 1;
    let nres = Alphabet::Protein.size();

    let mut tpmm = None;
    let mut tpmi = None;
    let mut tpmd = None;
    let mut tpim = None;
    let mut tpii = None;
    let mut tpdm = None;
    let mut tpdd = None;
    let mut bsc = None;
    let mut esc = None;
    let mut xt: Option<Vec<i32>> = None;
    let mut msc: Vec<Option<Vec<i32>>> = vec![None; nres];
    let mut isc: Vec<Option<Vec<i32>>> = vec![None; nres];
    let mut terminated = false;

    for line in lines {
        let tokens: Vec<&str> = line.split_whitespace().collect();
        match tokens.as_slice() {
            ["//"] => {
                terminated = true;
                break;
            }
            ["TPMM", rest @ ..] => tpmm = Some(parse_scores(rest, n, "TPMM")?),
            ["TPMI", rest @ ..] => tpmi = Some(parse_scores(rest, n, "TPMI")?),
            ["TPMD", rest @ ..] => tpmd = Some(parse_scores(rest, n, "TPMD")?),
            ["TPIM", rest @ ..] => tpim = Some(parse_scores(rest, n, "TPIM")?),
            ["TPII", rest @ ..] => tpii = Some(parse_scores(rest, n, "TPII")?),
            ["TPDM", rest @ ..] => tpdm = Some(parse_scores(rest, n, "TPDM")?),
            ["TPDD", rest @ ..] => tpdd = Some(parse_scores(rest, n, "TPDD")?),
            ["BSC", rest @ ..] => bsc = Some(parse_scores(rest, n, "BSC")?),
            ["ESC", rest @ ..] => esc = Some(parse_scores(rest, n, "ESC")?),
            ["XT", rest @ ..] => xt = Some(parse_scores(rest, 7, "XT")?),
            ["MSC", r, rest @ ..] => {
                let ri: usize = r.parse().map_err(|_| ParsePlan7Error::BadScore(r.to_string()))?;
                if ri < nres {
                    msc[ri] = Some(parse_scores(rest, n, "MSC")?);
                }
            }
            ["ISC", r, rest @ ..] => {
                let ri: usize = r.parse().map_err(|_| ParsePlan7Error::BadScore(r.to_string()))?;
                if ri < nres {
                    isc[ri] = Some(parse_scores(rest, n, "ISC")?);
                }
            }
            _ => return Err(ParsePlan7Error::BadScore(line.trim().to_string())),
        }
    }
    if !terminated {
        return Err(ParsePlan7Error::MissingTerminator);
    }

    let xt = xt.ok_or(ParsePlan7Error::MissingSection("XT"))?;
    let unwrap_all = |v: Vec<Option<Vec<i32>>>, name: &'static str| {
        v.into_iter()
            .map(|o| o.ok_or(ParsePlan7Error::MissingSection(name)))
            .collect::<Result<Vec<_>, _>>()
    };
    Ok(Plan7Model {
        m,
        tpmm: tpmm.ok_or(ParsePlan7Error::MissingSection("TPMM"))?,
        tpmi: tpmi.ok_or(ParsePlan7Error::MissingSection("TPMI"))?,
        tpmd: tpmd.ok_or(ParsePlan7Error::MissingSection("TPMD"))?,
        tpim: tpim.ok_or(ParsePlan7Error::MissingSection("TPIM"))?,
        tpii: tpii.ok_or(ParsePlan7Error::MissingSection("TPII"))?,
        tpdm: tpdm.ok_or(ParsePlan7Error::MissingSection("TPDM"))?,
        tpdd: tpdd.ok_or(ParsePlan7Error::MissingSection("TPDD"))?,
        msc: unwrap_all(msc, "MSC")?,
        isc: unwrap_all(isc, "ISC")?,
        bsc: bsc.ok_or(ParsePlan7Error::MissingSection("BSC"))?,
        esc: esc.ok_or(ParsePlan7Error::MissingSection("ESC"))?,
        xtn_loop: xt[0],
        xtn_move: xt[1],
        xte_move: xt[2],
        xte_loop: xt[3],
        xtj_loop: xt[4],
        xtj_move: xt[5],
        xtc_loop: xt[6],
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SeqGen;

    #[test]
    fn roundtrip_preserves_model() {
        let model = Plan7Model::synthetic(20, 7);
        let text = to_text(&model);
        let parsed = from_text(&text).unwrap();
        assert_eq!(parsed, model);
    }

    #[test]
    fn roundtripped_model_scores_identically() {
        let model = Plan7Model::synthetic(25, 8);
        let parsed = from_text(&to_text(&model)).unwrap();
        let mut gen = SeqGen::new(9);
        let seq = gen.random_protein(40);
        assert_eq!(parsed.reference_viterbi(&seq), model.reference_viterbi(&seq));
    }

    #[test]
    fn bad_header_rejected() {
        assert_eq!(from_text("").unwrap_err(), ParsePlan7Error::BadHeader);
        assert_eq!(from_text("HMM 3\n//\n").unwrap_err(), ParsePlan7Error::BadHeader);
    }

    #[test]
    fn missing_section_rejected() {
        let model = Plan7Model::synthetic(5, 1);
        let text = to_text(&model).replace("\nBSC", "\nZZZ");
        assert!(from_text(&text).is_err());
    }

    #[test]
    fn wrong_length_rejected() {
        let model = Plan7Model::synthetic(5, 1);
        let mut text = String::new();
        for line in to_text(&model).lines() {
            if let Some(rest) = line.strip_prefix("TPMM ") {
                let mut toks: Vec<&str> = rest.split(' ').collect();
                toks.pop();
                text.push_str(&format!("TPMM {}\n", toks.join(" ")));
            } else {
                text.push_str(line);
                text.push('\n');
            }
        }
        let err = from_text(&text).unwrap_err();
        assert!(matches!(err, ParsePlan7Error::WrongLength { .. }), "{err}");
    }

    #[test]
    fn missing_terminator_rejected() {
        let model = Plan7Model::synthetic(5, 1);
        let text = to_text(&model).replace("//\n", "");
        assert_eq!(from_text(&text).unwrap_err(), ParsePlan7Error::MissingTerminator);
    }

    #[test]
    fn unparseable_score_reported() {
        let model = Plan7Model::synthetic(4, 2);
        let text = to_text(&model).replacen("TPMM ", "TPMM x", 1);
        assert!(matches!(from_text(&text).unwrap_err(), ParsePlan7Error::WrongLength { .. } | ParsePlan7Error::BadScore(_)));
    }
}
