//! Residue alphabets with dense codes.

/// A biological sequence alphabet.
///
/// Residues are stored as dense `u8` codes (`0..size()`), which is what
/// the kernels index their score tables with.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Alphabet {
    /// Nucleotides `ACGT`.
    Dna,
    /// The twenty standard amino acids, in the conventional
    /// `ARNDCQEGHILKMFPSTWYV` order used by BLOSUM matrices.
    Protein,
}

/// Letters of the DNA alphabet in code order.
pub const DNA_LETTERS: &[u8; 4] = b"ACGT";

/// Letters of the protein alphabet in code order (BLOSUM convention).
pub const PROTEIN_LETTERS: &[u8; 20] = b"ARNDCQEGHILKMFPSTWYV";

impl Alphabet {
    /// Number of residues in the alphabet.
    pub const fn size(self) -> usize {
        match self {
            Alphabet::Dna => 4,
            Alphabet::Protein => 20,
        }
    }

    /// The ASCII letter for a residue code.
    ///
    /// # Panics
    ///
    /// Panics if `code >= self.size()`.
    pub fn letter(self, code: u8) -> char {
        let letters: &[u8] = match self {
            Alphabet::Dna => DNA_LETTERS,
            Alphabet::Protein => PROTEIN_LETTERS,
        };
        letters[code as usize] as char
    }

    /// The residue code for an ASCII letter (case-insensitive), or `None`
    /// for letters outside the alphabet.
    pub fn code(self, letter: u8) -> Option<u8> {
        let upper = letter.to_ascii_uppercase();
        let letters: &[u8] = match self {
            Alphabet::Dna => DNA_LETTERS,
            Alphabet::Protein => PROTEIN_LETTERS,
        };
        letters.iter().position(|&l| l == upper).map(|i| i as u8)
    }

    /// Encodes an ASCII sequence, skipping characters outside the
    /// alphabet (whitespace, ambiguity codes).
    pub fn encode(self, text: &str) -> Vec<u8> {
        text.bytes().filter_map(|b| self.code(b)).collect()
    }

    /// Decodes residue codes back to an ASCII string.
    ///
    /// # Panics
    ///
    /// Panics if any code is out of range.
    pub fn decode(self, codes: &[u8]) -> String {
        codes.iter().map(|&c| self.letter(c)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dna_roundtrip() {
        let seq = "ACGTACGT";
        let codes = Alphabet::Dna.encode(seq);
        assert_eq!(codes, vec![0, 1, 2, 3, 0, 1, 2, 3]);
        assert_eq!(Alphabet::Dna.decode(&codes), seq);
    }

    #[test]
    fn protein_roundtrip() {
        let seq = "MKVLAW";
        let codes = Alphabet::Protein.encode(seq);
        assert_eq!(Alphabet::Protein.decode(&codes), seq);
        assert!(codes.iter().all(|&c| (c as usize) < 20));
    }

    #[test]
    fn encode_is_case_insensitive_and_skips_junk() {
        assert_eq!(Alphabet::Dna.encode("a c-g\nt N"), vec![0, 1, 2, 3]);
    }

    #[test]
    fn code_rejects_foreign_letters() {
        assert_eq!(Alphabet::Dna.code(b'E'), None);
        assert_eq!(Alphabet::Protein.code(b'B'), None);
        assert_eq!(Alphabet::Protein.code(b'V'), Some(19));
    }

    #[test]
    fn sizes() {
        assert_eq!(Alphabet::Dna.size(), 4);
        assert_eq!(Alphabet::Protein.size(), 20);
    }
}
