//! Global pairwise alignment (Gotoh affine-gap Needleman–Wunsch) with
//! traceback, and profile-based progressive multiple alignment — the
//! machinery behind ClustalW's output stage.

use crate::alphabet::Alphabet;
use crate::matrix::ScoringMatrix;
use crate::tree::GuideTree;

/// Affine gap penalties (positive costs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AffineGap {
    /// Cost of opening a gap.
    pub open: i32,
    /// Cost of extending a gap by one column.
    pub extend: i32,
}

/// One column of an alignment path: indices into the two inputs, `None`
/// meaning a gap in that input.
pub type PathStep = (Option<usize>, Option<usize>);

/// A scored global alignment with its traceback path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Alignment {
    /// Optimal global score.
    pub score: i32,
    /// Column-by-column path covering both inputs completely.
    pub path: Vec<PathStep>,
}

impl Alignment {
    /// Number of alignment columns.
    pub fn columns(&self) -> usize {
        self.path.len()
    }

    /// Number of columns aligning a residue to a residue.
    pub fn matched_columns(&self) -> usize {
        self.path.iter().filter(|(a, b)| a.is_some() && b.is_some()).count()
    }

    /// Renders the two gapped rows as strings (`-` for gaps).
    pub fn render(&self, a: &[u8], b: &[u8], alphabet: Alphabet) -> (String, String) {
        let mut ra = String::with_capacity(self.path.len());
        let mut rb = String::with_capacity(self.path.len());
        for &(ia, ib) in &self.path {
            ra.push(ia.map_or('-', |i| alphabet.letter(a[i])));
            rb.push(ib.map_or('-', |i| alphabet.letter(b[i])));
        }
        (ra, rb)
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Tb {
    Diag,
    Up,   // gap in b (consume a)
    Left, // gap in a (consume b)
}

/// Globally aligns `a` and `b` under affine gaps (Gotoh's algorithm),
/// returning the optimal score and a full traceback path.
///
/// # Example
///
/// ```
/// use bioperf_bioseq::align::{global, AffineGap};
/// use bioperf_bioseq::alphabet::Alphabet;
/// use bioperf_bioseq::matrix::ScoringMatrix;
///
/// let m = ScoringMatrix::blosum62();
/// let a = Alphabet::Protein.encode("HEAGAWGHEE");
/// let b = Alphabet::Protein.encode("PAWHEAE");
/// let aln = global(&a, &b, &m, AffineGap { open: 10, extend: 1 });
/// assert_eq!(aln.path.iter().filter(|(x, _)| x.is_some()).count(), a.len());
/// assert_eq!(aln.path.iter().filter(|(_, y)| y.is_some()).count(), b.len());
/// ```
pub fn global(a: &[u8], b: &[u8], matrix: &ScoringMatrix, gap: AffineGap) -> Alignment {
    let (n, m) = (a.len(), b.len());
    const NEG: i32 = i32::MIN / 4;
    let w = m + 1;

    // DP matrices: best ending in match (h), gap-in-b (e: consuming a),
    // gap-in-a (f: consuming b).
    let mut h = vec![NEG; (n + 1) * w];
    let mut e = vec![NEG; (n + 1) * w];
    let mut f = vec![NEG; (n + 1) * w];
    let mut tb = vec![Tb::Diag; (n + 1) * w];

    h[0] = 0;
    for j in 1..=m {
        f[j] = -gap.open - (j as i32) * gap.extend;
        h[j] = f[j];
        tb[j] = Tb::Left;
    }
    for i in 1..=n {
        e[i * w] = -gap.open - (i as i32) * gap.extend;
        h[i * w] = e[i * w];
        tb[i * w] = Tb::Up;
    }

    for i in 1..=n {
        for j in 1..=m {
            let idx = i * w + j;
            let up = idx - w;
            let left = idx - 1;
            e[idx] = (h[up] - gap.open - gap.extend).max(e[up] - gap.extend);
            f[idx] = (h[left] - gap.open - gap.extend).max(f[left] - gap.extend);
            let diag = h[up - 1] + matrix.score(a[i - 1], b[j - 1]);
            let best = diag.max(e[idx]).max(f[idx]);
            h[idx] = best;
            tb[idx] = if best == diag {
                Tb::Diag
            } else if best == e[idx] {
                Tb::Up
            } else {
                Tb::Left
            };
        }
    }

    // Traceback.
    let mut path = Vec::with_capacity(n + m);
    let (mut i, mut j) = (n, m);
    while i > 0 || j > 0 {
        if i == 0 {
            j -= 1;
            path.push((None, Some(j)));
        } else if j == 0 {
            i -= 1;
            path.push((Some(i), None));
        } else {
            match tb[i * w + j] {
                Tb::Diag => {
                    i -= 1;
                    j -= 1;
                    path.push((Some(i), Some(j)));
                }
                Tb::Up => {
                    i -= 1;
                    path.push((Some(i), None));
                }
                Tb::Left => {
                    j -= 1;
                    path.push((None, Some(j)));
                }
            }
        }
    }
    path.reverse();
    Alignment { score: h[n * w + m], path }
}

/// A multiple sequence alignment: gapped rows over the original inputs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Msa {
    /// Indices of the input sequences, row-aligned with `rows`.
    pub members: Vec<usize>,
    /// Gapped rows: `Some(residue)` or `None` for a gap; all rows have
    /// equal length.
    pub rows: Vec<Vec<Option<u8>>>,
}

impl Msa {
    /// A single-sequence alignment.
    pub fn singleton(index: usize, seq: &[u8]) -> Self {
        Self { members: vec![index], rows: vec![seq.iter().map(|&r| Some(r)).collect()] }
    }

    /// Number of alignment columns.
    pub fn columns(&self) -> usize {
        self.rows.first().map_or(0, Vec::len)
    }

    /// Column-majority consensus (gaps lose ties).
    pub fn consensus(&self) -> Vec<u8> {
        let ncols = self.columns();
        let mut out = Vec::with_capacity(ncols);
        for c in 0..ncols {
            let mut counts = [0u32; 21];
            for row in &self.rows {
                match row[c] {
                    Some(r) => counts[r as usize] += 1,
                    None => counts[20] += 1,
                }
            }
            let (best, _) = counts[..20].iter().enumerate().max_by_key(|&(_, c)| *c).expect("20 residues");
            // Keep the column only if residues outnumber gaps.
            if counts[best] > 0 && counts[..20].iter().sum::<u32>() >= counts[20] {
                out.push(best as u8);
            }
        }
        out
    }

    /// Average per-column identity over residue-residue pairs (an MSA
    /// quality measure).
    pub fn average_identity(&self) -> f64 {
        let ncols = self.columns();
        let mut pairs = 0u64;
        let mut same = 0u64;
        for c in 0..ncols {
            for x in 0..self.rows.len() {
                for y in (x + 1)..self.rows.len() {
                    if let (Some(a), Some(b)) = (self.rows[x][c], self.rows[y][c]) {
                        pairs += 1;
                        if a == b {
                            same += 1;
                        }
                    }
                }
            }
        }
        if pairs == 0 {
            0.0
        } else {
            same as f64 / pairs as f64
        }
    }

    /// Merges two MSAs along a pairwise alignment of their consensus
    /// sequences (ClustalW-style profile join: the path's gap columns are
    /// propagated into every member row).
    pub fn join(left: &Msa, right: &Msa, matrix: &ScoringMatrix, gap: AffineGap) -> Msa {
        let ca = left.consensus();
        let cb = right.consensus();
        // Map consensus positions back to alignment columns: consensus()
        // may drop gap-heavy columns, so align over column indices kept.
        let kept = |msa: &Msa| -> Vec<usize> {
            let ncols = msa.columns();
            let mut keep = Vec::new();
            for c in 0..ncols {
                let gaps = msa.rows.iter().filter(|r| r[c].is_none()).count();
                if msa.rows.len() - gaps >= gaps.max(1) || gaps == 0 {
                    keep.push(c);
                }
            }
            keep
        };
        let _ = (kept, &ca, &cb);

        // Simpler and robust: align the two consensus sequences over
        // *all* columns by expanding each MSA to its full width first.
        let full_a: Vec<u8> = expand_consensus(left);
        let full_b: Vec<u8> = expand_consensus(right);
        let aln = global(&full_a, &full_b, matrix, gap);

        let mut members = left.members.clone();
        members.extend(&right.members);
        let mut rows: Vec<Vec<Option<u8>>> =
            vec![Vec::with_capacity(aln.columns()); left.rows.len() + right.rows.len()];
        for &(ia, ib) in &aln.path {
            for (ri, row) in left.rows.iter().enumerate() {
                rows[ri].push(ia.and_then(|c| row[c]));
            }
            for (ri, row) in right.rows.iter().enumerate() {
                rows[left.rows.len() + ri].push(ib.and_then(|c| row[c]));
            }
        }
        Msa { members, rows }
    }
}

/// A per-column representative residue covering *every* column (gap-heavy
/// columns take the most common residue anyway, defaulting to alanine for
/// all-gap columns).
fn expand_consensus(msa: &Msa) -> Vec<u8> {
    (0..msa.columns())
        .map(|c| {
            let mut counts = [0u32; 20];
            for row in &msa.rows {
                if let Some(r) = row[c] {
                    counts[r as usize] += 1;
                }
            }
            counts.iter().enumerate().max_by_key(|&(_, n)| *n).map(|(r, _)| r as u8).unwrap_or(0)
        })
        .collect()
}

/// Builds a full progressive MSA along a guide tree.
pub fn progressive_msa(
    seqs: &[Vec<u8>],
    tree: &GuideTree,
    matrix: &ScoringMatrix,
    gap: AffineGap,
) -> Msa {
    match tree {
        GuideTree::Leaf(i) => Msa::singleton(*i, &seqs[*i]),
        GuideTree::Node(l, r) => {
            let left = progressive_msa(seqs, l, matrix, gap);
            let right = progressive_msa(seqs, r, matrix, gap);
            Msa::join(&left, &right, matrix, gap)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::{DistanceMatrix, GuideTree};
    use crate::SeqGen;

    fn gap() -> AffineGap {
        AffineGap { open: 10, extend: 1 }
    }

    #[test]
    fn self_alignment_has_no_gaps() {
        let m = ScoringMatrix::blosum62();
        let mut gen = SeqGen::new(1);
        let s = gen.random_protein(40);
        let aln = global(&s, &s, &m, gap());
        assert_eq!(aln.columns(), 40);
        assert_eq!(aln.matched_columns(), 40);
        let expected: i32 = s.iter().map(|&r| m.score(r, r)).sum();
        assert_eq!(aln.score, expected);
    }

    #[test]
    fn path_covers_both_inputs_exactly_once() {
        let m = ScoringMatrix::blosum62();
        let mut gen = SeqGen::new(2);
        let a = gen.random_protein(25);
        let b = gen.random_protein(33);
        let aln = global(&a, &b, &m, gap());
        let ai: Vec<usize> = aln.path.iter().filter_map(|(x, _)| *x).collect();
        let bi: Vec<usize> = aln.path.iter().filter_map(|(_, y)| *y).collect();
        assert_eq!(ai, (0..25).collect::<Vec<_>>());
        assert_eq!(bi, (0..33).collect::<Vec<_>>());
    }

    #[test]
    fn deletion_is_recovered() {
        let m = ScoringMatrix::blosum62();
        let mut gen = SeqGen::new(3);
        let a = gen.random_protein(30);
        // b = a with positions 10..13 deleted.
        let mut b = a.clone();
        b.drain(10..13);
        let aln = global(&a, &b, &m, gap());
        let gaps_in_b = aln.path.iter().filter(|(x, y)| x.is_some() && y.is_none()).count();
        assert_eq!(gaps_in_b, 3, "three-residue deletion should align as one gap run");
        // All other columns are residue matches.
        assert_eq!(aln.matched_columns(), 27);
    }

    #[test]
    fn alignment_score_is_symmetric() {
        let m = ScoringMatrix::blosum62();
        let mut gen = SeqGen::new(4);
        let a = gen.random_protein(20);
        let b = gen.random_protein(24);
        assert_eq!(global(&a, &b, &m, gap()).score, global(&b, &a, &m, gap()).score);
    }

    #[test]
    fn empty_inputs() {
        let m = ScoringMatrix::blosum62();
        let s = vec![1u8, 2, 3];
        let aln = global(&s, &[], &m, gap());
        assert_eq!(aln.columns(), 3);
        assert_eq!(aln.matched_columns(), 0);
        let aln = global(&[], &[], &m, gap());
        assert_eq!(aln.columns(), 0);
        assert_eq!(aln.score, 0);
    }

    #[test]
    fn render_shows_gaps() {
        let m = ScoringMatrix::blosum62();
        let a = crate::Alphabet::Protein.encode("ACD");
        let b = crate::Alphabet::Protein.encode("AD");
        let aln = global(&a, &b, &m, gap());
        let (ra, rb) = aln.render(&a, &b, crate::Alphabet::Protein);
        assert_eq!(ra, "ACD");
        assert_eq!(rb.len(), 3);
        assert!(rb.contains('-'));
    }

    #[test]
    fn progressive_msa_aligns_a_family() {
        let mut gen = SeqGen::new(5);
        let family = gen.protein_family(5, 60, 0.15);
        let m = ScoringMatrix::blosum62();
        let dist = DistanceMatrix::p_distance(&family);
        let tree = GuideTree::neighbor_joining(&dist);
        let msa = progressive_msa(&family, &tree, &m, gap());
        assert_eq!(msa.rows.len(), 5);
        assert_eq!(msa.members.len(), 5);
        let cols = msa.columns();
        assert!(msa.rows.iter().all(|r| r.len() == cols), "rows equal length");
        // A 15%-diverged ungapped family should align near-perfectly.
        assert!(
            msa.average_identity() > 0.6,
            "family identity {:.2}",
            msa.average_identity()
        );
    }

    #[test]
    fn msa_preserves_every_residue() {
        let mut gen = SeqGen::new(6);
        let family = gen.protein_family(4, 30, 0.3);
        let m = ScoringMatrix::blosum62();
        let dist = DistanceMatrix::p_distance(&family);
        let tree = GuideTree::neighbor_joining(&dist);
        let msa = progressive_msa(&family, &tree, &m, gap());
        for (row, &member) in msa.rows.iter().zip(&msa.members) {
            let residues: Vec<u8> = row.iter().filter_map(|&r| r).collect();
            assert_eq!(residues, family[member], "row must spell its sequence");
        }
    }

    #[test]
    fn consensus_of_identical_rows_is_the_sequence() {
        let s = vec![3u8, 1, 4, 1, 5];
        let msa = Msa {
            members: vec![0, 1],
            rows: vec![
                s.iter().map(|&r| Some(r)).collect(),
                s.iter().map(|&r| Some(r)).collect(),
            ],
        };
        assert_eq!(msa.consensus(), s);
        assert_eq!(msa.average_identity(), 1.0);
    }
}
