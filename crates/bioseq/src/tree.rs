//! Distance matrices, neighbor-joining guide trees, and phylogeny inputs.
//!
//! `clustalw` builds a guide tree from pairwise distances before its
//! progressive alignment; `dnapenny` and `promlk` search tree topologies
//! over character matrices. This module provides those substrates.

/// A symmetric pairwise distance matrix over `n` taxa.
#[derive(Debug, Clone, PartialEq)]
pub struct DistanceMatrix {
    n: usize,
    d: Vec<f64>,
}

impl DistanceMatrix {
    /// Creates a zero matrix over `n` taxa.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2`.
    pub fn new(n: usize) -> Self {
        assert!(n >= 2, "need at least two taxa");
        Self { n, d: vec![0.0; n * n] }
    }

    /// Computes p-distances (fraction of mismatching sites) between all
    /// rows of a character matrix.
    ///
    /// # Panics
    ///
    /// Panics if rows have unequal lengths or there are fewer than two.
    pub fn p_distance(rows: &[Vec<u8>]) -> Self {
        let n = rows.len();
        let mut m = Self::new(n);
        let sites = rows[0].len();
        assert!(rows.iter().all(|r| r.len() == sites), "ragged character matrix");
        assert!(sites > 0, "empty character matrix");
        for i in 0..n {
            for j in (i + 1)..n {
                let diff = rows[i].iter().zip(&rows[j]).filter(|(a, b)| a != b).count();
                m.set(i, j, diff as f64 / sites as f64);
            }
        }
        m
    }

    /// Number of taxa.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the matrix is trivial (never true: `n >= 2`).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Distance between taxa `i` and `j`.
    pub fn get(&self, i: usize, j: usize) -> f64 {
        self.d[i * self.n + j]
    }

    /// Sets the symmetric distance between `i` and `j`.
    pub fn set(&mut self, i: usize, j: usize, v: f64) {
        self.d[i * self.n + j] = v;
        self.d[j * self.n + i] = v;
    }
}

/// A rooted binary guide tree over taxon indices.
#[derive(Debug, Clone, PartialEq)]
pub enum GuideTree {
    /// A single taxon.
    Leaf(usize),
    /// An internal node joining two subtrees.
    Node(Box<GuideTree>, Box<GuideTree>),
}

impl GuideTree {
    /// Builds a guide tree by neighbor joining on the distance matrix.
    ///
    /// This is the classic Saitou–Nei algorithm: repeatedly join the pair
    /// minimizing the Q-criterion until two clusters remain.
    pub fn neighbor_joining(dist: &DistanceMatrix) -> GuideTree {
        let n = dist.len();
        let mut active: Vec<usize> = (0..n).collect();
        let mut trees: Vec<Option<GuideTree>> = (0..n).map(|i| Some(GuideTree::Leaf(i))).collect();
        // Working distance matrix indexed by cluster id; grows as we join.
        let mut d: Vec<Vec<f64>> = (0..n)
            .map(|i| (0..n).map(|j| dist.get(i, j)).collect())
            .collect();

        while active.len() > 2 {
            let r = active.len();
            // Row sums over active clusters.
            let sums: Vec<f64> = active
                .iter()
                .map(|&i| active.iter().map(|&j| d[i][j]).sum())
                .collect();
            // Minimize Q(i,j) = (r-2) d(i,j) - sum_i - sum_j.
            let mut best = (0usize, 1usize, f64::INFINITY);
            for (ai, &i) in active.iter().enumerate() {
                for (aj, &j) in active.iter().enumerate().skip(ai + 1) {
                    let q = (r as f64 - 2.0) * d[i][j] - sums[ai] - sums[aj];
                    if q < best.2 {
                        best = (ai, aj, q);
                    }
                }
            }
            let (ai, aj, _) = best;
            let (i, j) = (active[ai], active[aj]);

            // New cluster id with distances to all remaining clusters.
            let new_id = d.len();
            for row in d.iter_mut() {
                let dij = 0.5 * (row[i] + row[j]);
                row.push(dij);
            }
            let mut new_row: Vec<f64> = (0..new_id).map(|k| 0.5 * (d[k][i] + d[k][j])).collect();
            new_row.push(0.0);
            d.push(new_row);

            let left = trees[i].take().expect("active cluster has a tree");
            let right = trees[j].take().expect("active cluster has a tree");
            trees.push(Some(GuideTree::Node(Box::new(left), Box::new(right))));

            // Remove j first (it is the later index).
            active.remove(aj);
            active.remove(ai);
            active.push(new_id);
        }

        let right = trees[active[1]].take().expect("final cluster");
        let left = trees[active[0]].take().expect("final cluster");
        GuideTree::Node(Box::new(left), Box::new(right))
    }

    /// All taxon indices in this subtree, left-to-right.
    pub fn leaves(&self) -> Vec<usize> {
        let mut out = Vec::new();
        self.collect_leaves(&mut out);
        out
    }

    fn collect_leaves(&self, out: &mut Vec<usize>) {
        match self {
            GuideTree::Leaf(i) => out.push(*i),
            GuideTree::Node(l, r) => {
                l.collect_leaves(out);
                r.collect_leaves(out);
            }
        }
    }

    /// Number of leaves.
    pub fn leaf_count(&self) -> usize {
        match self {
            GuideTree::Leaf(_) => 1,
            GuideTree::Node(l, r) => l.leaf_count() + r.leaf_count(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn p_distance_of_identical_rows_is_zero() {
        let rows = vec![vec![0u8, 1, 2, 3], vec![0, 1, 2, 3]];
        let d = DistanceMatrix::p_distance(&rows);
        assert_eq!(d.get(0, 1), 0.0);
    }

    #[test]
    fn p_distance_counts_mismatches() {
        let rows = vec![vec![0u8, 1, 2, 3], vec![0, 1, 0, 0]];
        let d = DistanceMatrix::p_distance(&rows);
        assert_eq!(d.get(0, 1), 0.5);
        assert_eq!(d.get(1, 0), 0.5);
    }

    #[test]
    fn nj_joins_closest_pair_first() {
        // Taxa 0,1 are near each other; 2,3 near each other; the two
        // groups are far apart. NJ must pair them accordingly.
        let mut d = DistanceMatrix::new(4);
        d.set(0, 1, 0.1);
        d.set(2, 3, 0.1);
        for (i, j) in [(0, 2), (0, 3), (1, 2), (1, 3)] {
            d.set(i, j, 1.0);
        }
        let tree = GuideTree::neighbor_joining(&d);
        assert_eq!(tree.leaf_count(), 4);
        let mut leaves = tree.leaves();
        leaves.sort_unstable();
        assert_eq!(leaves, vec![0, 1, 2, 3]);
        // Check sibling structure: find the node containing exactly {0,1}.
        fn has_clade(t: &GuideTree, want: &[usize]) -> bool {
            let mut l = t.leaves();
            l.sort_unstable();
            if l == want {
                return true;
            }
            match t {
                GuideTree::Leaf(_) => false,
                GuideTree::Node(a, b) => has_clade(a, want) || has_clade(b, want),
            }
        }
        assert!(has_clade(&tree, &[0, 1]));
        assert!(has_clade(&tree, &[2, 3]));
    }

    #[test]
    fn nj_handles_two_taxa() {
        let mut d = DistanceMatrix::new(2);
        d.set(0, 1, 0.4);
        let tree = GuideTree::neighbor_joining(&d);
        assert_eq!(tree.leaf_count(), 2);
    }

    #[test]
    fn nj_scales_to_many_taxa() {
        let mut d = DistanceMatrix::new(20);
        for i in 0..20 {
            for j in (i + 1)..20 {
                d.set(i, j, ((i * 7 + j * 13) % 17 + 1) as f64 / 17.0);
            }
        }
        let tree = GuideTree::neighbor_joining(&d);
        assert_eq!(tree.leaf_count(), 20);
        let mut leaves = tree.leaves();
        leaves.sort_unstable();
        assert_eq!(leaves, (0..20).collect::<Vec<_>>());
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn ragged_matrix_rejected() {
        DistanceMatrix::p_distance(&[vec![0u8; 3], vec![0u8; 4]]);
    }
}
