//! Minimal FASTA parsing and formatting.
//!
//! The BioPerf programs all consume FASTA inputs; the reproduction's
//! drivers use this module to round-trip synthetic databases through the
//! same on-disk format.

use std::fmt;

use crate::alphabet::Alphabet;

/// A named sequence with encoded residues.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Record {
    /// Header text after `>` (without the marker).
    pub name: String,
    /// Dense residue codes.
    pub residues: Vec<u8>,
}

/// Error parsing FASTA text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseFastaError {
    /// Sequence data appeared before any `>` header.
    MissingHeader { line: usize },
}

impl fmt::Display for ParseFastaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseFastaError::MissingHeader { line } => {
                write!(f, "sequence data before any '>' header at line {line}")
            }
        }
    }
}

impl std::error::Error for ParseFastaError {}

/// Parses FASTA text, encoding residues with `alphabet` (letters outside
/// the alphabet are skipped, matching common tool behaviour for ambiguity
/// codes).
///
/// # Errors
///
/// Returns [`ParseFastaError::MissingHeader`] if sequence data precedes
/// the first header.
///
/// # Example
///
/// ```
/// use bioperf_bioseq::alphabet::Alphabet;
/// use bioperf_bioseq::fasta;
///
/// let recs = fasta::parse(">s1\nACGT\nAC\n>s2\nTTTT\n", Alphabet::Dna)?;
/// assert_eq!(recs.len(), 2);
/// assert_eq!(recs[0].residues.len(), 6);
/// # Ok::<(), fasta::ParseFastaError>(())
/// ```
pub fn parse(text: &str, alphabet: Alphabet) -> Result<Vec<Record>, ParseFastaError> {
    let mut records: Vec<Record> = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        if let Some(name) = line.strip_prefix('>') {
            records.push(Record { name: name.trim().to_string(), residues: Vec::new() });
        } else {
            let rec = records
                .last_mut()
                .ok_or(ParseFastaError::MissingHeader { line: lineno + 1 })?;
            rec.residues.extend(line.bytes().filter_map(|b| alphabet.code(b)));
        }
    }
    Ok(records)
}

/// Formats records as FASTA text with 60-column sequence lines.
pub fn format(records: &[Record], alphabet: Alphabet) -> String {
    let mut out = String::new();
    for rec in records {
        out.push('>');
        out.push_str(&rec.name);
        out.push('\n');
        for chunk in rec.residues.chunks(60) {
            out.push_str(&alphabet.decode(chunk));
            out.push('\n');
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let recs = vec![
            Record { name: "a".into(), residues: Alphabet::Dna.encode("ACGTACGT") },
            Record { name: "b longer name".into(), residues: Alphabet::Dna.encode("TTTT") },
        ];
        let text = format(&recs, Alphabet::Dna);
        let parsed = parse(&text, Alphabet::Dna).unwrap();
        assert_eq!(parsed, recs);
    }

    #[test]
    fn multiline_sequences_concatenate() {
        let recs = parse(">x\nAC\nGT\n", Alphabet::Dna).unwrap();
        assert_eq!(recs[0].residues, Alphabet::Dna.encode("ACGT"));
    }

    #[test]
    fn missing_header_is_an_error() {
        let err = parse("ACGT\n", Alphabet::Dna).unwrap_err();
        assert_eq!(err, ParseFastaError::MissingHeader { line: 1 });
        assert!(err.to_string().contains("line 1"));
    }

    #[test]
    fn long_sequences_wrap_at_60() {
        let recs =
            vec![Record { name: "x".into(), residues: vec![0u8; 130] }];
        let text = format(&recs, Alphabet::Dna);
        let lines: Vec<_> = text.lines().collect();
        assert_eq!(lines.len(), 4); // header + 60 + 60 + 10
        assert_eq!(lines[1].len(), 60);
        assert_eq!(lines[3].len(), 10);
    }

    #[test]
    fn empty_input_parses_to_empty() {
        assert!(parse("", Alphabet::Protein).unwrap().is_empty());
    }

    #[test]
    fn blank_lines_ignored() {
        let recs = parse("\n>x\n\nAC\n\nGT\n", Alphabet::Dna).unwrap();
        assert_eq!(recs[0].residues.len(), 4);
    }
}
