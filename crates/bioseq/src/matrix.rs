//! Residue-pair scoring matrices.

use crate::alphabet::Alphabet;

/// Upper triangle (row-major, including the diagonal) of BLOSUM62 in
/// `ARNDCQEGHILKMFPSTWYV` order.
#[rustfmt::skip]
const BLOSUM62_UPPER: &[i32] = &[
    // A
    4, -1, -2, -2,  0, -1, -1,  0, -2, -1, -1, -1, -1, -2, -1,  1,  0, -3, -2,  0,
    // R
    5,  0, -2, -3,  1,  0, -2,  0, -3, -2,  2, -1, -3, -2, -1, -1, -3, -2, -3,
    // N
    6,  1, -3,  0,  0,  0,  1, -3, -3,  0, -2, -3, -2,  1,  0, -4, -2, -3,
    // D
    6, -3,  0,  2, -1, -1, -3, -4, -1, -3, -3, -1,  0, -1, -4, -3, -3,
    // C
    9, -3, -4, -3, -3, -1, -1, -3, -1, -2, -3, -1, -1, -2, -2, -1,
    // Q
    5,  2, -2,  0, -3, -2,  1,  0, -3, -1,  0, -1, -2, -1, -2,
    // E
    5, -2,  0, -3, -3,  1, -2, -3, -1,  0, -1, -3, -2, -2,
    // G
    6, -2, -4, -4, -2, -3, -3, -2,  0, -2, -2, -3, -3,
    // H
    8, -3, -3, -1, -2, -1, -2, -1, -2, -2,  2, -3,
    // I
    4,  2, -3,  1,  0, -3, -2, -1, -3, -1,  3,
    // L
    4, -2,  2,  0, -3, -2, -1, -2, -1,  1,
    // K
    5, -1, -3, -1,  0, -1, -3, -2, -2,
    // M
    5,  0, -2, -1, -1, -1, -1,  1,
    // F
    6, -4, -2, -2,  1,  3, -1,
    // P
    7, -1, -1, -4, -3, -2,
    // S
    4,  1, -3, -2, -2,
    // T
    5, -2, -2,  0,
    // W
    11,  2, -3,
    // Y
    7, -1,
    // V
    4,
];

/// A symmetric residue-pair scoring matrix over one [`Alphabet`].
///
/// # Example
///
/// ```
/// use bioperf_bioseq::alphabet::Alphabet;
/// use bioperf_bioseq::matrix::ScoringMatrix;
///
/// let m = ScoringMatrix::blosum62();
/// let a = Alphabet::Protein.code(b'A').unwrap();
/// let w = Alphabet::Protein.code(b'W').unwrap();
/// assert_eq!(m.score(a, a), 4);
/// assert_eq!(m.score(w, w), 11);
/// assert_eq!(m.score(a, w), m.score(w, a));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScoringMatrix {
    alphabet: Alphabet,
    scores: Vec<i32>, // dense size x size
}

impl ScoringMatrix {
    /// The standard BLOSUM62 protein substitution matrix.
    pub fn blosum62() -> Self {
        let n = Alphabet::Protein.size();
        let mut scores = vec![0i32; n * n];
        let mut it = BLOSUM62_UPPER.iter();
        for i in 0..n {
            for j in i..n {
                let v = *it.next().expect("BLOSUM62 table complete");
                scores[i * n + j] = v;
                scores[j * n + i] = v;
            }
        }
        assert!(it.next().is_none(), "BLOSUM62 table has trailing entries");
        Self { alphabet: Alphabet::Protein, scores }
    }

    /// A simple DNA matrix with the given match and mismatch scores.
    pub fn dna(matching: i32, mismatching: i32) -> Self {
        let n = Alphabet::Dna.size();
        let mut scores = vec![mismatching; n * n];
        for i in 0..n {
            scores[i * n + i] = matching;
        }
        Self { alphabet: Alphabet::Dna, scores }
    }

    /// The matrix's alphabet.
    pub fn alphabet(&self) -> Alphabet {
        self.alphabet
    }

    /// Score of a residue pair.
    ///
    /// # Panics
    ///
    /// Panics if either code is outside the alphabet.
    #[inline]
    pub fn score(&self, a: u8, b: u8) -> i32 {
        let n = self.alphabet.size();
        assert!((a as usize) < n && (b as usize) < n, "residue code out of range");
        self.scores[a as usize * n + b as usize]
    }

    /// The full dense score table (row-major, `size × size`). Traced
    /// kernels declare it as one address-normalization region.
    pub fn data(&self) -> &[i32] {
        &self.scores
    }

    /// The full row for residue `a` — kernels index this directly in hot
    /// loops.
    #[inline]
    pub fn row(&self, a: u8) -> &[i32] {
        let n = self.alphabet.size();
        &self.scores[a as usize * n..(a as usize + 1) * n]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn blosum62_is_symmetric() {
        let m = ScoringMatrix::blosum62();
        let n = Alphabet::Protein.size() as u8;
        for a in 0..n {
            for b in 0..n {
                assert_eq!(m.score(a, b), m.score(b, a), "asymmetry at ({a},{b})");
            }
        }
    }

    #[test]
    fn blosum62_known_entries() {
        let m = ScoringMatrix::blosum62();
        let p = |c| Alphabet::Protein.code(c).unwrap();
        assert_eq!(m.score(p(b'C'), p(b'C')), 9);
        assert_eq!(m.score(p(b'W'), p(b'W')), 11);
        assert_eq!(m.score(p(b'I'), p(b'V')), 3);
        assert_eq!(m.score(p(b'D'), p(b'E')), 2);
        assert_eq!(m.score(p(b'G'), p(b'I')), -4);
    }

    #[test]
    fn blosum62_diagonal_dominates_rows() {
        let m = ScoringMatrix::blosum62();
        for a in 0..20u8 {
            for b in 0..20u8 {
                if a != b {
                    assert!(m.score(a, a) > m.score(a, b), "diag not maximal at ({a},{b})");
                }
            }
        }
    }

    #[test]
    fn dna_matrix_scores() {
        let m = ScoringMatrix::dna(5, -4);
        assert_eq!(m.score(0, 0), 5);
        assert_eq!(m.score(0, 3), -4);
    }

    #[test]
    fn row_matches_score() {
        let m = ScoringMatrix::blosum62();
        let row = m.row(3);
        for b in 0..20u8 {
            assert_eq!(row[b as usize], m.score(3, b));
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_code_panics() {
        ScoringMatrix::dna(1, -1).score(4, 0);
    }
}
