//! Value-generation strategies with simplification candidates.

use crate::test_runner::TestRng;
use rand::Rng;

/// Generates values of an output type from a random source.
///
/// Object-safe; combinators ([`Strategy::prop_map`], [`Strategy::boxed`])
/// require `Sized`.
pub trait Strategy {
    /// The generated value type.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Proposes strictly simpler candidates for `value`, most aggressive
    /// first. The shrinking loop ([`crate::shrink::minimize`]) keeps any
    /// candidate that still fails and asks again, so an empty vector —
    /// the default, used by strategies with no meaningful simpler form
    /// (e.g. [`Map`], whose function cannot be inverted) — just ends the
    /// descent along this strategy.
    fn shrink(&self, _value: &Self::Value) -> Vec<Self::Value> {
        Vec::new()
    }

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<V> = Box<dyn Strategy<Value = V>>;

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        (**self).generate(rng)
    }

    fn shrink(&self, value: &V) -> Vec<V> {
        (**self).shrink(value)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }

    fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
        (**self).shrink(value)
    }
}

/// Always generates a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// [`Strategy::prop_map`] adapter.
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Uniform choice among type-erased strategies (see [`prop_oneof!`]).
///
/// [`prop_oneof!`]: crate::prop_oneof
pub struct OneOf<V> {
    options: Vec<BoxedStrategy<V>>,
}

impl<V> OneOf<V> {
    /// Creates a choice over `options`.
    ///
    /// # Panics
    ///
    /// Panics if `options` is empty.
    pub fn new(options: Vec<BoxedStrategy<V>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Self { options }
    }
}

impl<V> Strategy for OneOf<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        let idx = rng.gen_range(0..self.options.len());
        self.options[idx].generate(rng)
    }
}

/// Full-domain strategy for primitives (see [`any`]).
#[derive(Debug, Clone, Copy, Default)]
pub struct Any<T> {
    _marker: core::marker::PhantomData<T>,
}

/// `any::<T>()` — uniform samples over `T`'s whole domain.
pub fn any<T: rand::Standard>() -> Any<T> {
    Any { _marker: core::marker::PhantomData }
}

impl<T: rand::Standard> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        rng.gen()
    }
}

/// The strategy behind `prop::bool::ANY`.
#[derive(Debug, Clone, Copy)]
pub struct BoolAny;

/// Uniform booleans (`prop::bool::ANY`).
pub const BOOL_ANY: BoolAny = BoolAny;

impl Strategy for BoolAny {
    type Value = bool;

    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.gen()
    }

    fn shrink(&self, value: &bool) -> Vec<bool> {
        if *value {
            vec![false]
        } else {
            Vec::new()
        }
    }
}

/// Integer shrink candidates: the range's low end, the midpoint between
/// it and the failing value (binary descent), and the predecessor (so the
/// fixpoint is the exact minimal failing value, not a power-of-two
/// neighborhood of it). Wrapping arithmetic keeps full-domain ranges
/// (e.g. `i64::MIN..MAX`) panic-free; out-of-range artifacts are
/// filtered by `in_range`.
macro_rules! int_shrink {
    ($value:expr, $lo:expr, $in_range:expr) => {{
        let value = *$value;
        let lo = $lo;
        let mut out = Vec::new();
        if value != lo && $in_range(&value) {
            out.push(lo);
            let mid = lo.wrapping_add(value.wrapping_sub(lo) / 2);
            if mid != lo && mid != value && $in_range(&mid) {
                out.push(mid);
            }
            let prev = value.wrapping_sub(1);
            if prev != lo && prev != mid && $in_range(&prev) {
                out.push(prev);
            }
        }
        out
    }};
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }

            fn shrink(&self, value: &$t) -> Vec<$t> {
                int_shrink!(value, self.start, |v| self.contains(v))
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }

            fn shrink(&self, value: &$t) -> Vec<$t> {
                int_shrink!(value, *self.start(), |v| self.contains(v))
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for core::ops::Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        rng.gen_range(self.clone())
    }
}

impl Strategy for core::ops::Range<f32> {
    type Value = f32;

    fn generate(&self, rng: &mut TestRng) -> f32 {
        rng.gen_range(self.clone())
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+)
        where
            $($name::Value: Clone,)+
        {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }

            fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
                // One component varies per candidate, the rest stay fixed.
                let mut out = Vec::new();
                $(for candidate in self.$idx.shrink(&value.$idx) {
                    let mut next = value.clone();
                    next.$idx = candidate;
                    out.push(next);
                })+
                out
            }
        }
    };
}
impl_tuple_strategy!(A: 0);
impl_tuple_strategy!(A: 0, B: 1);
impl_tuple_strategy!(A: 0, B: 1, C: 2);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4);

/// `prop::collection::vec(element, sizes)` — vectors whose length is
/// drawn from `sizes` and whose elements come from `element`.
pub fn vec<S: Strategy>(element: S, sizes: core::ops::Range<usize>) -> VecStrategy<S> {
    assert!(sizes.start < sizes.end, "vec strategy size range is empty");
    VecStrategy { element, sizes }
}

/// See [`vec`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    sizes: core::ops::Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S>
where
    S::Value: Clone,
{
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = rng.gen_range(self.sizes.clone());
        (0..len).map(|_| self.element.generate(rng)).collect()
    }

    fn shrink(&self, value: &Vec<S::Value>) -> Vec<Vec<S::Value>> {
        crate::shrink::vec_candidates(value, self.sizes.start, |e| self.element.shrink(e))
    }
}
