//! Offline drop-in subset of the `proptest` crate.
//!
//! The build environment has no crates.io access, so the workspace ships
//! this small self-contained replacement. It implements the surface the
//! repository's property tests use — the [`proptest!`] macro,
//! [`prop_assert!`]/[`prop_assert_eq!`], range and tuple strategies,
//! [`prelude::any`], `prop::collection::vec`, `prop::bool::ANY`,
//! [`strategy::Just`], [`prop_oneof!`], and `prop_map` — with these
//! properties:
//!
//! * **Greedy shrinking.** A failing case is minimized before being
//!   reported: ranges descend toward their low end, vectors drop chunks
//!   and elements ([`shrink::vec_candidates`]), tuples shrink one
//!   component at a time, all driven to a fixpoint by
//!   [`shrink::minimize`] under a bounded probe budget. Both the
//!   original and the minimal inputs are printed. Generated values must
//!   be `Clone` (they are re-tested during minimization).
//! * **Deterministic seeding.** Cases derive from a fixed per-test seed
//!   (an FNV hash of the test's module path and name), so failures —
//!   and their shrunk witnesses — reproduce exactly on every run and
//!   machine.
//!
//! The default case count is 64 (upstream defaults to 256); tests that
//! need a different budget say so with
//! `#![proptest_config(ProptestConfig::with_cases(n))]`.

pub mod shrink;
pub mod strategy;
pub mod test_runner;

/// Everything a property-test file needs, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};

    /// The `prop::` module tree (`prop::collection::vec`, `prop::bool::ANY`).
    pub mod prop {
        /// Collection strategies.
        pub mod collection {
            pub use crate::strategy::vec;
        }
        /// Boolean strategies.
        pub mod bool {
            pub use crate::strategy::BOOL_ANY as ANY;
        }
    }
}

/// FNV-1a over a string — the per-test deterministic seed.
pub fn fnv(s: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Defines property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `body` over generated cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_cfg ($cfg) $($rest)*);
    };
    (@with_cfg ($cfg:expr)
        $($(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*
    ) => {
        $($(#[$meta])*
        fn $name() {
            #[allow(unused_imports)]
            use $crate::strategy::Strategy as _;
            let __cfg: $crate::test_runner::ProptestConfig = $cfg;
            // Strategies are built once and combined as a tuple so the
            // shrinker can re-derive candidates for the whole argument
            // pack; the runner clones values out per probe.
            $crate::test_runner::run_cases(
                concat!(module_path!(), "::", stringify!($name)),
                __cfg,
                &($(&$strat,)+),
                |__vals| {
                    let ($($arg,)+) = __vals;
                    format!(concat!($(stringify!($arg), " = {:?}, ",)+ ""), $($arg,)+)
                },
                |__vals| {
                    let ($($arg,)+) = __vals;
                    $body
                },
            );
        })*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@with_cfg ($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

/// `assert!` under a proptest-compatible name.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// `assert_eq!` under a proptest-compatible name.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Uniform choice between several strategies producing the same value
/// type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_respect_bounds(x in 3u8..7, y in -5i64..5, f in 0.25f64..0.75) {
            prop_assert!((3..7).contains(&x));
            prop_assert!((-5..5).contains(&y));
            prop_assert!((0.25..0.75).contains(&f));
        }

        #[test]
        fn vec_sizes_respect_range(v in prop::collection::vec(0u32..10, 2..6)) {
            prop_assert!((2..6).contains(&v.len()));
            prop_assert!(v.iter().all(|&e| e < 10));
        }

        #[test]
        fn tuples_and_oneof_compose(
            pair in (0u16..100, prop::bool::ANY),
            choice in prop_oneof![Just(1u8), Just(2u8), (5u8..7).prop_map(|v| v)],
        ) {
            prop_assert!(pair.0 < 100);
            prop_assert!(matches!(choice, 1 | 2 | 5 | 6));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(13))]

        /// The configured case budget reaches the body.
        #[test]
        fn config_is_honored(seed in any::<u64>()) {
            let _ = seed;
        }
    }

    #[test]
    fn fnv_distinguishes_names() {
        assert_ne!(super::fnv("a::b"), super::fnv("a::c"));
    }
}
