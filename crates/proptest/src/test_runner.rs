//! Test configuration and the deterministic case RNG.

/// The generator property tests draw from.
pub type TestRng = rand::rngs::StdRng;

/// Creates the deterministic RNG for one named test.
///
/// Seeding from the test's fully qualified name keeps each test's case
/// stream independent of every other test and identical across runs.
pub fn rng_for(test_name: &str) -> TestRng {
    <TestRng as rand::SeedableRng>::seed_from_u64(crate::fnv(test_name))
}

/// Subset of `proptest::test_runner::Config`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Upstream defaults to 256; 64 keeps the kernel-heavy suites fast
        // while still exercising a broad input space.
        Self { cases: 64 }
    }
}

impl ProptestConfig {
    /// A config running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

/// The engine behind [`proptest!`](crate::proptest): generates `cfg.cases`
/// values from `strats` (the tuple of all argument strategies), runs
/// `body` on each, and on the first panic minimizes the failing value via
/// [`crate::shrink::minimize`] before reporting both the original and the
/// minimal inputs and re-raising the panic.
pub fn run_cases<S: crate::strategy::Strategy>(
    test_path: &str,
    cfg: ProptestConfig,
    strats: &S,
    render: impl Fn(&S::Value) -> String,
    body: impl Fn(S::Value),
) where
    S::Value: Clone,
{
    let mut rng = rng_for(test_path);
    let check = |vals: &S::Value| {
        let cloned = vals.clone();
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| body(cloned)))
    };
    for case in 0..cfg.cases {
        let vals = strats.generate(&mut rng);
        if let Err(panic) = check(&vals) {
            let inputs = render(&vals);
            // Minimize under a silenced panic hook: every probe that
            // still fails would otherwise print its own backtrace.
            let hook = std::panic::take_hook();
            std::panic::set_hook(Box::new(|_| {}));
            let shrunk = crate::shrink::minimize(
                strats,
                vals.clone(),
                |cand| check(cand).is_err(),
                crate::shrink::MACRO_SHRINK_BUDGET,
            );
            std::panic::set_hook(hook);
            eprintln!("proptest failure at case {case} of {}: {inputs}", cfg.cases);
            eprintln!("proptest minimal inputs: {}", render(&shrunk));
            std::panic::resume_unwind(panic);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn named_rngs_are_reproducible_and_distinct() {
        use rand::Rng;
        let mut a = rng_for("crate::test_a");
        let mut b = rng_for("crate::test_a");
        let mut c = rng_for("crate::test_b");
        let (x, y, z) = (a.gen::<u64>(), b.gen::<u64>(), c.gen::<u64>());
        assert_eq!(x, y);
        assert_ne!(x, z);
    }

    #[test]
    fn default_config_has_cases() {
        assert!(ProptestConfig::default().cases >= 32);
        assert_eq!(ProptestConfig::with_cases(7).cases, 7);
    }
}
