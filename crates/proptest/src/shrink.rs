//! Greedy counterexample minimization.
//!
//! [`Strategy::shrink`] proposes simpler candidates for one value;
//! [`minimize`] drives those proposals to a fixpoint under a
//! "still fails" predicate, which is exactly what the [`proptest!`] macro
//! and the conformance fuzzer need: the smallest input the caller's check
//! still rejects. Everything is deterministic — candidate order is fixed,
//! so the same failure always minimizes to the same witness.
//!
//! [`proptest!`]: crate::proptest

use crate::strategy::Strategy;

/// Candidate budget the [`proptest!`](crate::proptest) macro spends on
/// minimizing a failing case before reporting it.
pub const MACRO_SHRINK_BUDGET: usize = 1024;

/// Simplification candidates for a vector: chunk removals (largest
/// chunks first, so the minimizer discards dead weight in few probes),
/// then single-element removals, then per-element simplifications via
/// `shrink_elem`. Candidates never go below `min_len` elements.
pub fn vec_candidates<T: Clone>(
    value: &[T],
    min_len: usize,
    shrink_elem: impl Fn(&T) -> Vec<T>,
) -> Vec<Vec<T>> {
    let mut out = Vec::new();
    // Removal passes: chunks of len/2, len/4, ..., 1.
    let mut chunk = value.len() / 2;
    while chunk >= 1 {
        if value.len() - chunk >= min_len {
            let mut start = 0;
            while start + chunk <= value.len() {
                let mut candidate = Vec::with_capacity(value.len() - chunk);
                candidate.extend_from_slice(&value[..start]);
                candidate.extend_from_slice(&value[start + chunk..]);
                out.push(candidate);
                start += chunk;
            }
        }
        chunk /= 2;
    }
    // Element passes: each position simplified in place.
    for (i, elem) in value.iter().enumerate() {
        for simpler in shrink_elem(elem) {
            let mut candidate = value.to_vec();
            candidate[i] = simpler;
            out.push(candidate);
        }
    }
    out
}

/// Greedily minimizes `value` under `strategy`'s candidates: any
/// candidate for which `still_fails` holds replaces the value and the
/// search restarts from it, until no candidate fails or `budget`
/// predicate evaluations are spent. Returns the smallest failing value
/// found (at worst the input itself).
pub fn minimize<S: Strategy>(
    strategy: &S,
    mut value: S::Value,
    mut still_fails: impl FnMut(&S::Value) -> bool,
    budget: usize,
) -> S::Value {
    let mut evals = 0usize;
    'fixpoint: loop {
        for candidate in strategy.shrink(&value) {
            if evals >= budget {
                break 'fixpoint;
            }
            evals += 1;
            if still_fails(&candidate) {
                value = candidate;
                continue 'fixpoint;
            }
        }
        break;
    }
    value
}

/// Removal-only variant of [`minimize`] for plain slices with no
/// strategy attached (the conformance fuzzer's op streams): greedily
/// deletes chunks, then single elements, to a fixpoint.
pub fn minimize_removals<T: Clone>(
    value: &[T],
    mut still_fails: impl FnMut(&[T]) -> bool,
    budget: usize,
) -> Vec<T> {
    let mut current = value.to_vec();
    let mut evals = 0usize;
    'fixpoint: loop {
        for candidate in vec_candidates(&current, 0, |_| Vec::new()) {
            if evals >= budget {
                break 'fixpoint;
            }
            evals += 1;
            if still_fails(&candidate) {
                current = candidate;
                continue 'fixpoint;
            }
        }
        break;
    }
    current
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::{vec, BOOL_ANY};

    #[test]
    fn integer_range_minimizes_to_smallest_failing_value() {
        // Predicate "fails" for anything >= 13: the minimum witness is 13.
        let found = minimize(&(0u32..1000), 700, |v| *v >= 13, 10_000);
        assert_eq!(found, 13);
    }

    #[test]
    fn integer_range_respects_lower_bound() {
        let found = minimize(&(5i64..100), 60, |v| *v >= 2, 10_000);
        assert_eq!(found, 5, "cannot shrink below the range start");
    }

    #[test]
    fn vec_minimizes_to_single_guilty_element() {
        // "Fails" when any element >= 8; minimal witness is the one-element
        // vector [8].
        let strat = vec(0u32..100, 1..10);
        let start = vec![9, 2, 8, 4, 77, 1];
        let found = minimize(&strat, start, |v| v.iter().any(|&e| e >= 8), 100_000);
        assert_eq!(found, vec![8]);
    }

    #[test]
    fn vec_candidates_respect_min_len() {
        let cands = vec_candidates(&[1, 2, 3], 3, |_: &i32| Vec::new());
        assert!(cands.is_empty(), "no removals allowed at the size floor");
        let cands = vec_candidates(&[1, 2, 3], 2, |_: &i32| Vec::new());
        assert!(cands.iter().all(|c| c.len() >= 2));
        assert!(!cands.is_empty());
    }

    #[test]
    fn tuple_shrinks_one_component_per_candidate() {
        let strat = (0u8..50, BOOL_ANY);
        let candidates = crate::strategy::Strategy::shrink(&strat, &(40u8, true));
        assert!(candidates.contains(&(0, true)), "first component to range start");
        assert!(candidates.contains(&(40, false)), "second component to false");
        assert!(
            candidates.iter().all(|&(n, b)| n == 40 || b),
            "never both components at once"
        );
    }

    #[test]
    fn minimize_removals_finds_minimal_subsequence() {
        // Fails iff the slice contains a 3 followed (not necessarily
        // adjacently) by a 7.
        let fails = |s: &[u32]| {
            let first3 = s.iter().position(|&x| x == 3);
            match first3 {
                Some(i) => s[i..].contains(&7),
                None => false,
            }
        };
        let start = [1, 3, 9, 9, 9, 7, 2, 2];
        let found = minimize_removals(&start, fails, 100_000);
        assert_eq!(found, vec![3, 7]);
    }

    #[test]
    fn minimize_respects_budget() {
        let mut evals = 0usize;
        let found = minimize(
            &(0u64..1_000_000),
            999_999,
            |v| {
                evals += 1;
                *v >= 500_000
            },
            7,
        );
        assert!(evals <= 7, "stops at the eval budget, spent {evals}");
        assert!((500_000..999_999).contains(&found), "made bounded progress: {found}");
    }

    #[test]
    fn boolean_shrinks_true_to_false() {
        assert_eq!(crate::strategy::Strategy::shrink(&BOOL_ANY, &true), vec![false]);
        assert!(crate::strategy::Strategy::shrink(&BOOL_ANY, &false).is_empty());
    }
}
