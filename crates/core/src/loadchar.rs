//! Load→branch / branch→load sequence detection and per-load profiles
//! (the analyses behind the paper's Tables 4 and 5).

use std::collections::VecDeque;

use bioperf_branch::BranchProfiler;
use bioperf_cache::{alpha21264_hierarchy, AccessKind, Hierarchy};
use bioperf_isa::{MicroOp, Program, SrcLoc, StaticId, VReg};
use bioperf_trace::TraceConsumer;

/// Maximum dependence-chain length from a load to a branch for the load
/// to count as part of a load→branch sequence (the paper's chains are
/// 2–4 instructions: load → add → compare → branch).
const MAX_CHAIN: u8 = 6;

/// How many origin loads a value can carry (a compare merges two
/// operands that may each derive from two loads).
const MAX_ORIGINS: usize = 4;

/// Window of ops after a hard-to-predict branch within which a load
/// counts as "right after" the branch (Table 4b).
const AFTER_BRANCH_WINDOW: u64 = 10;

/// A load within the window must have a consumer within this many ops to
/// count as having a "tight dependence chain".
const TIGHT_USE_DISTANCE: u64 = 6;

/// Minimum executions before a branch's running misprediction rate is
/// trusted for hard-to-predict classification (cold predictors always
/// miss their first executions).
const HARD_CLASSIFY_MIN_EXECS: u64 = 32;

const VREG_RING: usize = 1 << 16;
const COUNTED_RING: usize = 1 << 16;

/// Dataflow origin of a value: which dynamic loads it derives from.
#[derive(Debug, Clone, Copy)]
struct OriginRec {
    vreg: u64,
    chain_len: u8,
    n: u8,
    load_sids: [StaticId; MAX_ORIGINS],
    dyn_ids: [u64; MAX_ORIGINS],
}

impl OriginRec {
    const EMPTY: OriginRec = OriginRec {
        vreg: u64::MAX,
        chain_len: 0,
        n: 0,
        load_sids: [StaticId::from_raw(0); MAX_ORIGINS],
        dyn_ids: [0; MAX_ORIGINS],
    };
}

/// Per-static-load statistics (Table 5 rows).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LoadStats {
    /// Dynamic executions of this static load.
    pub executions: u64,
    /// L1 data cache misses among those executions.
    pub l1_misses: u64,
    /// Executions of branches this load's value fed (through a tight
    /// chain).
    pub fed_branch_executions: u64,
    /// Mispredictions among those fed branches.
    pub fed_branch_mispredictions: u64,
    /// Executions that started a tight dependent chain right after a
    /// hard-to-predict branch (Table 4b membership, per static load).
    pub after_hard_branch: u64,
}

impl LoadStats {
    /// This load's own L1 miss rate.
    pub fn l1_miss_rate(&self) -> f64 {
        if self.executions == 0 {
            0.0
        } else {
            self.l1_misses as f64 / self.executions as f64
        }
    }

    /// Fraction of this load's executions that sat right behind a
    /// hard-to-predict branch with a tight dependent chain.
    pub fn after_hard_branch_fraction(&self) -> f64 {
        if self.executions == 0 {
            0.0
        } else {
            self.after_hard_branch as f64 / self.executions as f64
        }
    }

    /// Misprediction rate of the branches fed by this load.
    pub fn fed_branch_misprediction_rate(&self) -> f64 {
        if self.fed_branch_executions == 0 {
            0.0
        } else {
            self.fed_branch_mispredictions as f64 / self.fed_branch_executions as f64
        }
    }
}

/// One row of the paper's Table 5: a hot load's profile, mapped back to
/// source.
#[derive(Debug, Clone)]
pub struct HotLoad {
    /// Static instruction id ("load index" in the paper).
    pub sid: StaticId,
    /// Fraction of all executed loads contributed by this static load.
    pub frequency: f64,
    /// This load's L1 miss rate.
    pub l1_miss_rate: f64,
    /// Misprediction rate of the branches this load feeds.
    pub branch_misprediction_rate: f64,
    /// Source location (function, file, line).
    pub loc: SrcLoc,
}

/// Aggregate results of the sequence analysis (Table 4).
#[derive(Debug, Clone, Copy, Default)]
pub struct SequenceSummary {
    /// Total dynamic loads.
    pub total_loads: u64,
    /// Dynamic loads whose value fed a conditional branch through a
    /// tight dependence chain (Table 4a numerator).
    pub loads_to_branch: u64,
    /// Executions of branches at the end of such sequences.
    pub sequence_branch_executions: u64,
    /// Mispredictions among those.
    pub sequence_branch_mispredictions: u64,
    /// Dynamic loads with a tight dependence chain appearing right after
    /// a hard-to-predict (≥5%) branch (Table 4b numerator).
    pub loads_after_hard_branch: u64,
}

impl SequenceSummary {
    /// Table 4a: load→branch sequences as a fraction of executed loads.
    pub fn load_to_branch_fraction(&self) -> f64 {
        if self.total_loads == 0 {
            0.0
        } else {
            self.loads_to_branch as f64 / self.total_loads as f64
        }
    }

    /// Table 4a: average misprediction rate of sequence-ending branches.
    pub fn sequence_branch_misprediction_rate(&self) -> f64 {
        if self.sequence_branch_executions == 0 {
            0.0
        } else {
            self.sequence_branch_mispredictions as f64 / self.sequence_branch_executions as f64
        }
    }

    /// Table 4b: loads after hard-to-predict branches as a fraction of
    /// executed loads.
    pub fn loads_after_hard_branch_fraction(&self) -> f64 {
        if self.total_loads == 0 {
            0.0
        } else {
            self.loads_after_hard_branch as f64 / self.total_loads as f64
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct PendingLoad {
    sid: StaticId,
    vreg: u64,
    expires_at: u64,
}

/// The combined dataflow analysis: tracks which loads feed branches
/// (load→branch), which loads with tight chains follow hard-to-predict
/// branches (branch→load), per-static-load L1 and fed-branch statistics,
/// and the branch-misprediction profile — one streaming pass.
#[derive(Debug)]
pub struct LoadBranchAnalysis {
    profiler: BranchProfiler,
    hierarchy: Hierarchy,
    origins: Vec<OriginRec>,
    counted: Vec<u64>,
    loads: Vec<LoadStats>,
    summary: SequenceSummary,
    op_index: u64,
    last_hard_branch_at: Option<u64>,
    pending: VecDeque<PendingLoad>,
}

impl Default for LoadBranchAnalysis {
    fn default() -> Self {
        Self::new()
    }
}

impl LoadBranchAnalysis {
    /// Creates the analysis with the paper's reference cache hierarchy
    /// and measurement predictor.
    pub fn new() -> Self {
        Self {
            profiler: BranchProfiler::new(),
            hierarchy: alpha21264_hierarchy(),
            origins: vec![OriginRec::EMPTY; VREG_RING],
            counted: vec![u64::MAX; COUNTED_RING],
            loads: Vec::new(),
            summary: SequenceSummary::default(),
            op_index: 0,
            last_hard_branch_at: None,
            pending: VecDeque::new(),
        }
    }

    /// Aggregate sequence results (Table 4).
    pub fn summary(&self) -> SequenceSummary {
        self.summary
    }

    /// The measurement branch profiler (per-branch rates, totals).
    pub fn profiler(&self) -> &BranchProfiler {
        &self.profiler
    }

    /// Statistics for one static load.
    pub fn load_stats(&self, sid: StaticId) -> LoadStats {
        self.loads.get(sid.index()).copied().unwrap_or_default()
    }

    /// Per-static-load statistics, indexed by [`StaticId::index`].
    pub fn all_load_stats(&self) -> &[LoadStats] {
        &self.loads
    }

    /// The `n` hottest loads as Table 5 rows, most frequent first.
    pub fn hot_loads(&self, n: usize, program: &Program) -> Vec<HotLoad> {
        let total = self.summary.total_loads.max(1);
        let mut rows: Vec<(usize, &LoadStats)> =
            self.loads.iter().enumerate().filter(|(_, s)| s.executions > 0).collect();
        rows.sort_by_key(|(_, s)| std::cmp::Reverse(s.executions));
        rows.into_iter()
            .take(n)
            .map(|(idx, s)| {
                let sid = StaticId::from_raw(idx as u32);
                HotLoad {
                    sid,
                    frequency: s.executions as f64 / total as f64,
                    l1_miss_rate: s.l1_miss_rate(),
                    branch_misprediction_rate: s.fed_branch_misprediction_rate(),
                    loc: program.get(sid).loc,
                }
            })
            .collect()
    }

    fn origin_of(&self, v: VReg) -> Option<&OriginRec> {
        let rec = &self.origins[(v.0 as usize) & (VREG_RING - 1)];
        (rec.vreg == v.0).then_some(rec)
    }

    fn set_origin(&mut self, v: VReg, rec: OriginRec) {
        self.origins[(v.0 as usize) & (VREG_RING - 1)] = rec;
    }

    fn load_stats_mut(&mut self, sid: StaticId) -> &mut LoadStats {
        let idx = sid.index();
        if idx >= self.loads.len() {
            self.loads.resize(idx + 1, LoadStats::default());
        }
        &mut self.loads[idx]
    }

    /// Marks a dynamic load as counted for Table 4a; returns true the
    /// first time.
    fn count_once(&mut self, dyn_id: u64) -> bool {
        let slot = &mut self.counted[(dyn_id as usize) & (COUNTED_RING - 1)];
        if *slot == dyn_id {
            false
        } else {
            *slot = dyn_id;
            true
        }
    }

    /// Checks pending after-hard-branch loads for consumption by this op.
    fn check_pending_consumption(&mut self, op: &MicroOp) {
        if self.pending.is_empty() {
            return;
        }
        while let Some(front) = self.pending.front() {
            if front.expires_at < self.op_index {
                self.pending.pop_front();
            } else {
                break;
            }
        }
        let mut consumed: Vec<usize> = Vec::new();
        for src in op.sources() {
            for (i, p) in self.pending.iter().enumerate() {
                if p.vreg == src.0 && !consumed.contains(&i) {
                    consumed.push(i);
                }
            }
        }
        // Count and remove (largest index first to keep indices valid).
        consumed.sort_unstable_by(|a, b| b.cmp(a));
        for i in consumed {
            if let Some(pl) = self.pending.remove(i) {
                self.summary.loads_after_hard_branch += 1;
                self.load_stats_mut(pl.sid).after_hard_branch += 1;
            }
        }
    }
}

impl TraceConsumer for LoadBranchAnalysis {
    fn consume(&mut self, op: &MicroOp, _program: &Program) {
        self.op_index += 1;

        if op.kind.is_load() {
            let dyn_id = self.summary.total_loads;
            self.summary.total_loads += 1;

            // Cache profile for this static load.
            let hit = matches!(
                self.hierarchy.access_detailed(op.addr.expect("loads carry addresses"), AccessKind::Load),
                (bioperf_cache::ServicedBy::L1, _)
            );
            let stats = self.load_stats_mut(op.sid);
            stats.executions += 1;
            if !hit {
                stats.l1_misses += 1;
            }

            // New dataflow origin.
            if let Some(dst) = op.dst {
                let mut rec = OriginRec::EMPTY;
                rec.vreg = dst.0;
                rec.chain_len = 0;
                rec.n = 1;
                rec.load_sids[0] = op.sid;
                rec.dyn_ids[0] = dyn_id;
                self.set_origin(dst, rec);
            }

            // Table 4b candidate: load right after a hard-to-predict
            // branch; counts when something consumes it soon.
            if let (Some(at), Some(dst)) = (self.last_hard_branch_at, op.dst) {
                if self.op_index - at <= AFTER_BRANCH_WINDOW {
                    self.pending.push_back(PendingLoad {
                        sid: op.sid,
                        vreg: dst.0,
                        expires_at: self.op_index + TIGHT_USE_DISTANCE,
                    });
                }
            }
            return;
        }

        self.check_pending_consumption(op);

        if op.kind.is_store() {
            self.hierarchy.access(op.addr.expect("stores carry addresses"), AccessKind::Store);
            return;
        }

        if op.kind.is_cond_branch() {
            // Gather load origins feeding this branch.
            let mut origins: Vec<(StaticId, u64)> = Vec::new();
            for src in op.sources() {
                if let Some(rec) = self.origin_of(src) {
                    if rec.chain_len <= MAX_CHAIN {
                        for i in 0..rec.n as usize {
                            origins.push((rec.load_sids[i], rec.dyn_ids[i]));
                        }
                    }
                }
            }
            let correct = self.profiler.observe(op.sid, op.taken);
            if !origins.is_empty() {
                self.summary.sequence_branch_executions += 1;
                if !correct {
                    self.summary.sequence_branch_mispredictions += 1;
                }
                for (sid, dyn_id) in origins {
                    if self.count_once(dyn_id) {
                        self.summary.loads_to_branch += 1;
                    }
                    let stats = self.load_stats_mut(sid);
                    stats.fed_branch_executions += 1;
                    if !correct {
                        stats.fed_branch_mispredictions += 1;
                    }
                }
            }
            // Hard-to-predict marker for Table 4b.
            let bstats = self.profiler.stats(op.sid);
            if bstats.executions >= HARD_CLASSIFY_MIN_EXECS
                && self.profiler.is_hard_to_predict(op.sid)
            {
                self.last_hard_branch_at = Some(self.op_index);
            }
            return;
        }

        // Computational op: propagate load origins through the dataflow.
        if let Some(dst) = op.dst {
            let mut rec = OriginRec::EMPTY;
            rec.vreg = dst.0;
            let mut max_chain = 0u8;
            for src in op.sources() {
                if let Some(srec) = self.origin_of(src) {
                    if srec.chain_len >= MAX_CHAIN {
                        continue;
                    }
                    max_chain = max_chain.max(srec.chain_len + 1);
                    for i in 0..srec.n as usize {
                        if (rec.n as usize) < MAX_ORIGINS
                            && !rec.dyn_ids[..rec.n as usize].contains(&srec.dyn_ids[i])
                        {
                            rec.load_sids[rec.n as usize] = srec.load_sids[i];
                            rec.dyn_ids[rec.n as usize] = srec.dyn_ids[i];
                            rec.n += 1;
                        }
                    }
                }
            }
            if rec.n > 0 {
                rec.chain_len = max_chain;
                self.set_origin(dst, rec);
            } else {
                // Clear any stale record occupying this ring slot.
                self.set_origin(dst, OriginRec { vreg: dst.0, ..OriginRec::EMPTY });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bioperf_isa::here;
    use bioperf_trace::{Tape, Tracer};

    #[test]
    fn direct_load_to_branch_is_detected() {
        let x = 1u64;
        let mut tape = Tape::new(LoadBranchAnalysis::new());
        for i in 0..100u64 {
            let v = tape.int_load(here!("k"), &x);
            let c = tape.int_op(here!("k"), &[v]);
            tape.branch(here!("k"), &[c], i % 3 == 0);
        }
        let (_, a) = tape.finish();
        let s = a.summary();
        assert_eq!(s.total_loads, 100);
        assert_eq!(s.loads_to_branch, 100, "every load feeds the branch");
        assert_eq!(s.sequence_branch_executions, 100);
    }

    #[test]
    fn unrelated_loads_are_not_counted() {
        let x = 1u64;
        let mut tape = Tape::new(LoadBranchAnalysis::new());
        let cond = tape.lit();
        for i in 0..50u64 {
            // A load that feeds only arithmetic, never a branch.
            let v = tape.int_load(here!("k"), &x);
            tape.int_op(here!("k"), &[v]);
            tape.branch(here!("k"), &[cond], i % 2 == 0);
        }
        let (_, a) = tape.finish();
        assert_eq!(a.summary().loads_to_branch, 0);
    }

    #[test]
    fn long_chains_are_excluded() {
        let x = 1u64;
        let mut tape = Tape::new(LoadBranchAnalysis::new());
        for i in 0..50u64 {
            let mut v = tape.int_load(here!("k"), &x);
            for _ in 0..(MAX_CHAIN as usize + 3) {
                v = tape.int_op(here!("k"), &[v]);
            }
            tape.branch(here!("k"), &[v], i % 2 == 0);
        }
        let (_, a) = tape.finish();
        assert_eq!(a.summary().loads_to_branch, 0, "chain too long to count");
    }

    #[test]
    fn loads_after_hard_branch_are_counted_when_consumed() {
        let x = 1u64;
        let mut state = 7u64;
        let mut tape = Tape::new(LoadBranchAnalysis::new());
        for _ in 0..500 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let taken = (state >> 33) & 1 == 1;
            let c = tape.lit();
            tape.branch(here!("hard"), &[c], taken);
            // Dependent load chain right after the branch.
            let v = tape.int_load(here!("after"), &x);
            tape.int_op(here!("after"), &[v]);
        }
        let (_, a) = tape.finish();
        let s = a.summary();
        assert!(
            s.loads_after_hard_branch > 300,
            "most post-branch loads count once the branch is known-hard: {}",
            s.loads_after_hard_branch
        );
    }

    #[test]
    fn loads_after_predictable_branch_are_not_counted() {
        let x = 1u64;
        let mut tape = Tape::new(LoadBranchAnalysis::new());
        for _ in 0..500 {
            let c = tape.lit();
            tape.branch(here!("easy"), &[c], true);
            let v = tape.int_load(here!("after"), &x);
            tape.int_op(here!("after"), &[v]);
        }
        let (_, a) = tape.finish();
        assert_eq!(a.summary().loads_after_hard_branch, 0);
    }

    #[test]
    fn unconsumed_loads_after_hard_branch_do_not_count() {
        let x = 1u64;
        let mut state = 3u64;
        let mut tape = Tape::new(LoadBranchAnalysis::new());
        for _ in 0..300 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let c = tape.lit();
            tape.branch(here!("hard"), &[c], (state >> 33) & 1 == 1);
            // Load whose value nothing consumes.
            tape.int_load(here!("dead"), &x);
        }
        let (_, a) = tape.finish();
        assert_eq!(a.summary().loads_after_hard_branch, 0);
    }

    #[test]
    fn hot_loads_report_frequency_and_location() {
        let x = 1u64;
        let mut state = 11u64;
        let mut tape = Tape::new(LoadBranchAnalysis::new());
        for _ in 0..400u64 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let v = tape.int_load(here!("hot_fn"), &x);
            let c = tape.int_op(here!("hot_fn"), &[v]);
            tape.branch(here!("hot_fn"), &[c], (state >> 33) & 1 == 1);
        }
        tape.int_load(here!("cold_fn"), &x);
        let (program, a) = tape.finish();
        let rows = a.hot_loads(2, &program);
        assert_eq!(rows.len(), 2);
        assert!(rows[0].frequency > rows[1].frequency);
        assert_eq!(rows[0].loc.function, "hot_fn");
        assert!(rows[0].branch_misprediction_rate > 0.2, "random branch is hard");
        assert!(rows[0].l1_miss_rate < 0.1, "single cell always hits after warmup");
    }

    #[test]
    fn per_load_l1_miss_tracking() {
        // Loads striding through a large array miss; a fixed cell hits.
        let big = vec![0u64; 1 << 16];
        let mut tape = Tape::new(LoadBranchAnalysis::new());
        for i in 0..4096usize {
            tape.int_load(here!("stride"), &big[i * 8 % big.len()]);
            tape.int_load(here!("fixed"), &big[0]);
        }
        let (program, a) = tape.finish();
        let rows = a.hot_loads(2, &program);
        let stride = rows.iter().find(|r| r.loc.function == "stride").unwrap();
        let fixed = rows.iter().find(|r| r.loc.function == "fixed").unwrap();
        assert!(stride.l1_miss_rate > fixed.l1_miss_rate);
    }

    #[test]
    fn compare_merges_two_load_origins() {
        let (x, y) = (1u64, 2u64);
        let mut tape = Tape::new(LoadBranchAnalysis::new());
        for i in 0..100u64 {
            let a = tape.int_load(here!("a"), &x);
            let b = tape.int_load(here!("b"), &y);
            let c = tape.int_op(here!("cmp"), &[a, b]);
            tape.branch(here!("br"), &[c], i % 2 == 0);
        }
        let (_, a) = tape.finish();
        assert_eq!(a.summary().loads_to_branch, 200, "both operand loads count");
    }
}
