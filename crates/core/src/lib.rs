//! Load-instruction characterization — the paper's primary contribution.
//!
//! This crate ties the substrates together into the study's analyses:
//!
//! * [`coverage`] — cumulative dynamic-load coverage versus ranked static
//!   loads (Figure 2): the bio kernels concentrate >90% of their dynamic
//!   loads in a few dozen static loads, SPEC-like code does not.
//! * [`loadchar`] — the dataflow analyses behind Tables 4 and 5:
//!   detection of **load→branch** sequences (a load whose value feeds a
//!   conditional branch through a tight dependence chain) and
//!   **branch→load** sequences (a load with a tight dependence chain
//!   right after a hard-to-predict branch), plus per-static-load profiles
//!   (execution frequency, L1 miss rate, fed-branch misprediction rate,
//!   source location).
//! * [`characterize`] — the one-pass [`Characterizer`] combining
//!   instruction mix, cache behaviour, branch prediction, and the
//!   sequence analyses; [`characterize_program`] runs a BioPerf kernel
//!   through it.
//! * [`evaluate`] — the performance-evaluation harness: runs Original vs
//!   LoadTransformed kernels through the four platform timing models
//!   (Tables 7/8, Figure 9).
//! * [`orchestrate`] — the parallel experiment runner: executes each
//!   instrumented kernel *once* (a tuple fan-out feeds the characterizer
//!   and a replay recorder simultaneously), replays recordings through
//!   the platform models via a `FanOut` of simulators, and schedules the
//!   per-program jobs on a scoped worker pool with results in job order
//!   — `--jobs 1` and `--jobs N` produce identical output.
//! * [`sweep`] — design-space exploration: grid sweeps over cache
//!   geometry, pipeline shape, predictor family, and prefetcher policy,
//!   with resumable FNV-checksummed checkpoints and per-program
//!   [`pareto`]-front reports.
//! * [`report`] — plain-text table formatting used by the `bioperf-bench`
//!   binaries that regenerate every table and figure.
//!
//! # Example
//!
//! ```no_run
//! use bioperf_core::characterize::characterize_program;
//! use bioperf_kernels::{ProgramId, Scale};
//!
//! let report = characterize_program(ProgramId::Hmmsearch, Scale::Small, 42);
//! assert!(report.mix.loads() > 0);
//! assert!(report.cache.l1.load_miss_ratio() < 0.05);
//! println!("load→branch fraction: {:.1}%", report.sequences.load_to_branch_fraction() * 100.0);
//! ```

pub mod candidates;
pub mod characterize;
pub mod coverage;
pub mod evaluate;
pub mod loadchar;
pub mod orchestrate;
pub mod pareto;
pub mod report;
pub mod sweep;

pub use candidates::{find_candidates, CandidateCriteria, TransformCandidate};
pub use characterize::{characterize_program, Characterizer, CharacterizationReport};
pub use coverage::LoadCoverage;
pub use evaluate::{evaluate_program, EvalCell, EvalMatrix};
pub use loadchar::{HotLoad, LoadBranchAnalysis, SequenceSummary};
pub use orchestrate::{
    characterize_all, evaluate_all, run_conform, run_jobs, run_suite, ConformConfig,
    ConformResult, FaultId, ProgramCrossCheck, SuiteConfig, SuiteError, SuiteResult,
};
pub use pareto::{pareto_frontier, ParetoPoint};
pub use sweep::{
    run_sweep, sweep_factor_self_check, sweep_merge_self_check, CellMeasure, CellSpec,
    CheckpointError, SweepConfig, SweepError, SweepGrid, SweepResult, SWEEP_SCHEMA,
};
