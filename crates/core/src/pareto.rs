//! Pareto-front reduction over design-space sweep cells.
//!
//! The sweep scores every configuration on three objectives — average
//! memory access time (minimize), speedup of the load transformation
//! (maximize), and a hardware-cost proxy (minimize: total cache bytes
//! plus window depth). The report keeps only the non-dominated frontier:
//! a configuration survives unless some other configuration is at least
//! as good on every objective and strictly better on one.
//!
//! The reduction is `O(n²)` over a few hundred points — far below the
//! replay cost of producing them — and returns the frontier sorted by
//! point id, so the result is invariant under permutation of the input
//! (the property tests in `tests/pareto_prop.rs` pin this down).

/// One candidate configuration's objective scores.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ParetoPoint {
    /// Caller-assigned identity (the sweep uses the cell index); ties on
    /// all three objectives keep every id.
    pub id: u32,
    /// Average memory access time in cycles (lower is better).
    pub amat: f64,
    /// Speedup of the transformed variant over the original (higher is
    /// better).
    pub speedup: f64,
    /// Hardware-cost proxy: total cache bytes + window depth (lower is
    /// better).
    pub cost: u64,
}

impl ParetoPoint {
    /// Whether `self` dominates `other`: no worse on every objective and
    /// strictly better on at least one.
    pub fn dominates(&self, other: &ParetoPoint) -> bool {
        let no_worse =
            self.amat <= other.amat && self.speedup >= other.speedup && self.cost <= other.cost;
        let better =
            self.amat < other.amat || self.speedup > other.speedup || self.cost < other.cost;
        no_worse && better
    }
}

/// Reduces `points` to its non-dominated frontier, sorted by id.
///
/// Points that tie on all three objectives do not dominate each other,
/// so equivalent configurations all survive. The output depends only on
/// the *set* of points, never on input order.
pub fn pareto_frontier(points: &[ParetoPoint]) -> Vec<ParetoPoint> {
    let mut frontier: Vec<ParetoPoint> = points
        .iter()
        .filter(|p| !points.iter().any(|q| q.dominates(p)))
        .copied()
        .collect();
    frontier.sort_by_key(|p| p.id);
    frontier
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pt(id: u32, amat: f64, speedup: f64, cost: u64) -> ParetoPoint {
        ParetoPoint { id, amat, speedup, cost }
    }

    #[test]
    fn dominance_requires_strict_improvement() {
        let a = pt(0, 3.0, 1.1, 100);
        let b = pt(1, 3.0, 1.1, 100);
        assert!(!a.dominates(&b), "equal points do not dominate");
        assert!(!b.dominates(&a));
        let c = pt(2, 3.0, 1.1, 99);
        assert!(c.dominates(&a));
        assert!(!a.dominates(&c));
    }

    #[test]
    fn frontier_drops_strictly_worse_points() {
        let points = [
            pt(0, 3.0, 1.10, 100), // frontier
            pt(1, 2.5, 1.05, 200), // frontier (best amat at its cost)
            pt(2, 3.1, 1.08, 150), // dominated by 0
            pt(3, 3.0, 1.10, 300), // dominated by 0 (same scores, pricier)
        ];
        let front = pareto_frontier(&points);
        assert_eq!(front.iter().map(|p| p.id).collect::<Vec<_>>(), vec![0, 1]);
    }

    #[test]
    fn ties_on_all_objectives_all_survive() {
        let points = [pt(5, 3.0, 1.1, 100), pt(2, 3.0, 1.1, 100)];
        let front = pareto_frontier(&points);
        assert_eq!(front.iter().map(|p| p.id).collect::<Vec<_>>(), vec![2, 5]);
    }

    #[test]
    fn empty_and_singleton_inputs() {
        assert!(pareto_frontier(&[]).is_empty());
        let one = [pt(7, 4.0, 1.0, 9)];
        assert_eq!(pareto_frontier(&one), vec![one[0]]);
    }
}
