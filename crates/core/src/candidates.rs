//! Transformation-candidate discovery — the paper's Section 3 workflow.
//!
//! The paper's method for deciding *which* loads to schedule: "use ATOM
//! to detect the two load sequences … and map the loads back to source
//! code lines. A profile run then determines, for each sequence, the
//! frequency of execution, the branch misprediction rate, the L1 miss
//! rate, and information about the corresponding lines of source code.
//! The optimization candidates are the frequently executed loads that
//! lead to or follow branches with high misprediction rates."
//!
//! [`find_candidates`] automates exactly that over a
//! [`CharacterizationReport`], ranking static loads by expected benefit.

use bioperf_isa::{SrcLoc, StaticId};

use crate::characterize::CharacterizationReport;

/// Why a load qualifies as a scheduling candidate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CandidateReason {
    /// The load's value feeds a hard-to-predict branch (load→branch):
    /// hoisting it shortens branch resolution.
    LeadsToHardBranch,
    /// The load starts a tight dependent chain right after a
    /// hard-to-predict branch (branch→load): hoisting it above the
    /// branch hides its latency under older work.
    FollowsHardBranch,
    /// Both patterns apply (the sequences are not mutually exclusive,
    /// as the paper notes).
    Both,
}

impl std::fmt::Display for CandidateReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            CandidateReason::LeadsToHardBranch => "load→branch",
            CandidateReason::FollowsHardBranch => "branch→load",
            CandidateReason::Both => "load→branch + branch→load",
        };
        f.write_str(s)
    }
}

/// A ranked transformation candidate: one static load worth scheduling.
#[derive(Debug, Clone)]
pub struct TransformCandidate {
    /// The static load.
    pub sid: StaticId,
    /// Source location to edit.
    pub loc: SrcLoc,
    /// Fraction of all dynamic loads this site contributes.
    pub frequency: f64,
    /// Its own L1 miss rate (candidates should be L1-resident — the
    /// point of the paper is that *hits* are the problem).
    pub l1_miss_rate: f64,
    /// Misprediction rate of the branches it feeds.
    pub fed_branch_misprediction_rate: f64,
    /// Fraction of its executions right behind a hard branch.
    pub after_hard_branch_fraction: f64,
    /// Which pattern(s) qualified it.
    pub reason: CandidateReason,
    /// Ranking score: frequency × exposure probability.
    pub score: f64,
}

/// Thresholds for candidate selection.
#[derive(Debug, Clone, Copy)]
pub struct CandidateCriteria {
    /// Minimum fraction of dynamic loads a site must contribute.
    pub min_frequency: f64,
    /// Minimum misprediction rate of fed branches for the load→branch
    /// pattern (the paper's "high misprediction rates"; its Table 4b
    /// threshold is 5%).
    pub min_fed_mispredict: f64,
    /// Minimum after-hard-branch fraction for the branch→load pattern.
    pub min_after_hard: f64,
}

impl Default for CandidateCriteria {
    fn default() -> Self {
        Self { min_frequency: 0.005, min_fed_mispredict: 0.05, min_after_hard: 0.25 }
    }
}

/// Finds and ranks scheduling candidates in a characterization report.
///
/// Returns candidates sorted by descending score. A load qualifies if it
/// is frequent and either feeds hard branches or follows them; its score
/// is `frequency × max(fed_mispredict, after_hard_fraction)` — an
/// estimate of how often its L1 hit latency lands on the critical path.
///
/// # Example
///
/// ```no_run
/// use bioperf_core::candidates::{find_candidates, CandidateCriteria};
/// use bioperf_core::characterize::characterize_program;
/// use bioperf_kernels::{ProgramId, Scale};
///
/// let report = characterize_program(ProgramId::Hmmsearch, Scale::Small, 42);
/// let candidates = find_candidates(&report, CandidateCriteria::default());
/// for c in candidates.iter().take(5) {
///     println!("{} ({}): score {:.4}", c.loc, c.reason, c.score);
/// }
/// ```
pub fn find_candidates(
    report: &CharacterizationReport,
    criteria: CandidateCriteria,
) -> Vec<TransformCandidate> {
    let total = report.sequences.total_loads.max(1) as f64;
    let mut out = Vec::new();
    for inst in report.program.iter() {
        if !inst.kind.is_load() {
            continue;
        }
        let stats = report.analysis_load_stats(inst.id);
        if stats.executions == 0 {
            continue;
        }
        let frequency = stats.executions as f64 / total;
        if frequency < criteria.min_frequency {
            continue;
        }
        let fed = stats.fed_branch_misprediction_rate();
        let after = stats.after_hard_branch_fraction();
        let leads = stats.fed_branch_executions > 0 && fed >= criteria.min_fed_mispredict;
        let follows = after >= criteria.min_after_hard;
        let reason = match (leads, follows) {
            (true, true) => CandidateReason::Both,
            (true, false) => CandidateReason::LeadsToHardBranch,
            (false, true) => CandidateReason::FollowsHardBranch,
            (false, false) => continue,
        };
        out.push(TransformCandidate {
            sid: inst.id,
            loc: inst.loc,
            frequency,
            l1_miss_rate: stats.l1_miss_rate(),
            fed_branch_misprediction_rate: fed,
            after_hard_branch_fraction: after,
            reason,
            score: frequency * fed.max(after),
        });
    }
    out.sort_by(|a, b| b.score.partial_cmp(&a.score).expect("scores are finite"));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::characterize::{characterize_program, Characterizer};
    use bioperf_isa::here;
    use bioperf_kernels::{ProgramId, Scale};
    use bioperf_trace::{Tape, Tracer};

    #[test]
    fn hmmsearch_candidates_point_into_the_viterbi_kernel() {
        let report = characterize_program(ProgramId::Hmmsearch, Scale::Test, 42);
        let candidates = find_candidates(&report, CandidateCriteria::default());
        assert!(!candidates.is_empty(), "hmmsearch must yield candidates");
        for c in candidates.iter().take(3) {
            assert!(c.loc.file.contains("viterbi"), "candidate at {}", c.loc);
            assert!(c.l1_miss_rate < 0.02, "candidates hit L1: {}", c.l1_miss_rate);
        }
        // Scores are sorted descending.
        assert!(candidates.windows(2).all(|w| w[0].score >= w[1].score));
    }

    #[test]
    fn promlk_yields_fewer_candidates_than_hmmsearch() {
        let hmm = characterize_program(ProgramId::Hmmsearch, Scale::Test, 42);
        let promlk = characterize_program(ProgramId::Promlk, Scale::Test, 42);
        let ch = find_candidates(&hmm, CandidateCriteria::default());
        let cp = find_candidates(&promlk, CandidateCriteria::default());
        assert!(
            ch.len() > cp.len(),
            "hmmsearch ({}) should offer more opportunities than promlk ({})",
            ch.len(),
            cp.len()
        );
    }

    #[test]
    fn synthetic_hard_branch_load_is_found() {
        // A hot load feeding a random branch qualifies; a load feeding
        // nothing does not.
        let xs = [1u64, 2];
        let mut state = 5u64;
        let mut tape = Tape::new(Characterizer::new());
        for _ in 0..2000 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let v = tape.int_load(here!("feeds_branch"), &xs[0]);
            let c = tape.int_op(here!("feeds_branch"), &[v]);
            tape.branch(here!("feeds_branch"), &[c], (state >> 33) & 1 == 1);
            let w = tape.int_load(here!("feeds_nothing"), &xs[1]);
            tape.int_op(here!("dead"), &[w]);
        }
        let (program, ch) = tape.finish();
        let report = ch.into_report(program, 5);
        let candidates = find_candidates(&report, CandidateCriteria::default());
        assert!(candidates.iter().any(|c| c.loc.function == "feeds_branch"));
        assert!(
            !candidates
                .iter()
                .any(|c| c.loc.function == "feeds_nothing" && c.reason == CandidateReason::LeadsToHardBranch),
            "a load that never feeds a branch is not a load→branch candidate"
        );
    }

    #[test]
    fn criteria_thresholds_filter() {
        let report = characterize_program(ProgramId::Hmmsearch, Scale::Test, 42);
        let strict = CandidateCriteria {
            min_frequency: 0.99,
            min_fed_mispredict: 0.99,
            min_after_hard: 0.99,
        };
        assert!(find_candidates(&report, strict).is_empty());
    }
}
