//! Cumulative load-coverage curves (Figure 2).

use bioperf_isa::{MicroOp, Program};
use bioperf_trace::consumers::LoadCounts;
use bioperf_trace::TraceConsumer;

/// Builds the paper's Figure 2 curve: the fraction of dynamic loads
/// covered by the `n` most frequently executed static loads.
///
/// # Example
///
/// ```
/// use bioperf_core::LoadCoverage;
/// use bioperf_isa::here;
/// use bioperf_trace::{Tape, Tracer};
///
/// let mut tape = Tape::new(LoadCoverage::new());
/// let (hot, cold) = (1u64, 2u64);
/// for _ in 0..99 {
///     tape.int_load(here!("k"), &hot);
/// }
/// tape.int_load(here!("k2"), &cold);
/// let (_, cov) = tape.finish();
/// assert_eq!(cov.coverage_at(1), 0.99);
/// assert_eq!(cov.coverage_at(2), 1.0);
/// ```
#[derive(Debug, Clone, Default)]
pub struct LoadCoverage {
    counts: LoadCounts,
}

impl LoadCoverage {
    /// Creates an empty coverage accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Total dynamic loads observed.
    pub fn total_loads(&self) -> u64 {
        self.counts.total()
    }

    /// Number of static loads that executed at least once.
    pub fn active_static_loads(&self) -> usize {
        self.counts.active_static_loads()
    }

    /// Fraction of dynamic loads covered by the `n` hottest static loads.
    pub fn coverage_at(&self, n: usize) -> f64 {
        let total = self.counts.total();
        if total == 0 {
            return 0.0;
        }
        let top: u64 = self.counts.sorted_desc().iter().take(n).sum();
        top as f64 / total as f64
    }

    /// The whole cumulative curve: element `i` is the coverage of the
    /// `i + 1` hottest static loads. Monotonically non-decreasing,
    /// ending at 1.0 (for a non-empty trace).
    pub fn curve(&self) -> Vec<f64> {
        let total = self.counts.total();
        if total == 0 {
            return Vec::new();
        }
        let mut acc = 0u64;
        self.counts
            .sorted_desc()
            .into_iter()
            .map(|c| {
                acc += c;
                acc as f64 / total as f64
            })
            .collect()
    }

    /// Curve values sampled at the given ranks (1-based), clamping ranks
    /// beyond the active static-load count to full coverage.
    pub fn sampled(&self, ranks: &[usize]) -> Vec<(usize, f64)> {
        ranks.iter().map(|&r| (r, self.coverage_at(r))).collect()
    }
}

impl TraceConsumer for LoadCoverage {
    fn consume(&mut self, op: &MicroOp, program: &Program) {
        self.counts.consume(op, program);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bioperf_isa::here;
    use bioperf_trace::{Tape, Tracer};

    fn skewed_coverage() -> LoadCoverage {
        let x = 0u64;
        let mut tape = Tape::new(LoadCoverage::new());
        for _ in 0..90 {
            tape.int_load(here!("hot"), &x);
        }
        for _ in 0..9 {
            tape.int_load(here!("warm"), &x);
        }
        tape.int_load(here!("cold"), &x);
        tape.finish().1
    }

    #[test]
    fn coverage_orders_by_frequency() {
        let cov = skewed_coverage();
        assert_eq!(cov.total_loads(), 100);
        assert_eq!(cov.active_static_loads(), 3);
        assert!((cov.coverage_at(1) - 0.90).abs() < 1e-12);
        assert!((cov.coverage_at(2) - 0.99).abs() < 1e-12);
        assert!((cov.coverage_at(3) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn curve_is_monotone_and_complete() {
        let cov = skewed_coverage();
        let curve = cov.curve();
        assert_eq!(curve.len(), 3);
        assert!(curve.windows(2).all(|w| w[0] <= w[1]));
        assert!((curve.last().unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn over_asking_clamps_to_one() {
        let cov = skewed_coverage();
        assert_eq!(cov.coverage_at(100), 1.0);
    }

    #[test]
    fn empty_trace_is_zero() {
        let cov = LoadCoverage::new();
        assert_eq!(cov.coverage_at(5), 0.0);
        assert!(cov.curve().is_empty());
    }

    #[test]
    fn sampled_returns_requested_ranks() {
        let cov = skewed_coverage();
        let samples = cov.sampled(&[1, 3]);
        assert_eq!(samples.len(), 2);
        assert_eq!(samples[0].0, 1);
        assert!((samples[1].1 - 1.0).abs() < 1e-12);
    }
}
