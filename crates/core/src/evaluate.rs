//! The performance-evaluation harness (Tables 7–8, Figure 9).

use bioperf_kernels::{registry, ProgramId, Scale, Variant};
use bioperf_metrics::MetricSet;
use bioperf_pipe::{CycleSim, PlatformConfig, SimResult};
use bioperf_trace::Tape;

/// One (program, platform) cell of Table 8: both variants simulated.
#[derive(Debug, Clone, Copy)]
pub struct EvalCell {
    /// Program.
    pub program: ProgramId,
    /// Platform name.
    pub platform: &'static str,
    /// Simulation of the original source shape.
    pub original: SimResult,
    /// Simulation of the load-transformed shape.
    pub transformed: SimResult,
}

impl EvalCell {
    /// Speedup ratio (original cycles / transformed cycles).
    pub fn speedup(&self) -> f64 {
        if self.transformed.cycles == 0 {
            1.0
        } else {
            self.original.cycles as f64 / self.transformed.cycles as f64
        }
    }
}

/// The full Table 8 / Figure 9 result matrix.
#[derive(Debug, Clone, Default)]
pub struct EvalMatrix {
    /// All simulated cells, program-major in the paper's order.
    pub cells: Vec<EvalCell>,
}

impl EvalMatrix {
    /// Whether a (program, platform) cell exists in the paper's Table 8.
    /// dnapenny did not compile on the Itanium ("n.a." in the paper); the
    /// reproduction mirrors that hole so the harmonic means stay
    /// comparable.
    pub fn cell_applicable(program: ProgramId, platform: &str) -> bool {
        !(program == ProgramId::Dnapenny && platform.contains("Itanium"))
    }

    /// Runs the full evaluation: every transformed program on every
    /// platform, both variants. `scale` should be [`Scale::Large`] for
    /// the paper-shaped run (class-C-like inputs); smaller scales give
    /// the same shape faster.
    ///
    /// Each (program, variant) is executed once and its trace recorded;
    /// the four platform models then replay the recording — four
    /// simulations per kernel execution instead of four re-executions.
    ///
    /// This is the sequential entry point; it delegates to
    /// [`crate::orchestrate::evaluate_all`] with one worker, which the
    /// parallel callers also use, so both paths share one implementation.
    pub fn run(scale: Scale, seed: u64) -> Self {
        crate::orchestrate::evaluate_all(scale, seed, 1)
            .unwrap_or_else(|e| panic!("evaluation failed: {e}"))
    }

    /// Cells for one platform, in program order.
    pub fn platform_cells(&self, platform: &str) -> Vec<&EvalCell> {
        self.cells.iter().filter(|c| c.platform == platform).collect()
    }

    /// Harmonic-mean speedup for one platform (the paper's Figure 9
    /// summary bars).
    pub fn harmonic_mean_speedup(&self, platform: &str) -> f64 {
        let cells = self.platform_cells(platform);
        if cells.is_empty() {
            return 1.0;
        }
        cells.len() as f64 / cells.iter().map(|c| 1.0 / c.speedup()).sum::<f64>()
    }

    /// Exports the Table 8 / Figure 9 numbers as named series under
    /// `prefix` (conventionally `eval/`): per (program, platform) cell
    /// the simulated cycle and instruction counts of both variants plus
    /// the speedup, and per platform the harmonic-mean speedup.
    pub fn export_metrics(&self, out: &mut MetricSet, prefix: &str) {
        for cell in &self.cells {
            let c = |name: &str| {
                format!("{prefix}{}/{}/{name}", cell.program.name(), cell.platform)
            };
            out.counter_add(&c("original_cycles"), cell.original.cycles);
            out.counter_add(&c("transformed_cycles"), cell.transformed.cycles);
            out.counter_add(&c("original_instructions"), cell.original.instructions);
            out.counter_add(&c("transformed_instructions"), cell.transformed.instructions);
            out.counter_add(&c("original_mispredicts"), cell.original.mispredicts);
            out.counter_add(&c("transformed_mispredicts"), cell.transformed.mispredicts);
            out.gauge_set(&c("speedup"), cell.speedup());
        }
        let mut platforms: Vec<&str> = Vec::new();
        for cell in &self.cells {
            if !platforms.contains(&cell.platform) {
                platforms.push(cell.platform);
            }
        }
        for platform in platforms {
            out.gauge_set(
                &format!("{prefix}harmonic_mean/{platform}"),
                self.harmonic_mean_speedup(platform),
            );
        }
    }
}

/// Simulates one program on one platform in both source shapes.
pub fn evaluate_program(
    program: ProgramId,
    platform: PlatformConfig,
    scale: Scale,
    seed: u64,
) -> EvalCell {
    let run_variant = |variant: Variant| -> SimResult {
        let mut tape = Tape::new(CycleSim::new(platform));
        registry::run(&mut tape, program, variant, scale, seed);
        let (_, sim) = tape.finish();
        sim.into_result()
    };
    EvalCell {
        program,
        platform: platform.name,
        original: run_variant(Variant::Original),
        transformed: run_variant(Variant::LoadTransformed),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hmmsearch_speeds_up_on_alpha() {
        let cell =
            evaluate_program(ProgramId::Hmmsearch, PlatformConfig::alpha21264(), Scale::Test, 5);
        assert!(
            cell.speedup() > 1.2,
            "transformed hmmsearch must be much faster on Alpha: {:.2}",
            cell.speedup()
        );
    }

    #[test]
    fn variants_execute_comparable_work() {
        let cell =
            evaluate_program(ProgramId::Predator, PlatformConfig::alpha21264(), Scale::Test, 5);
        let ratio = cell.original.instructions as f64 / cell.transformed.instructions as f64;
        assert!((0.5..2.0).contains(&ratio), "instruction counts differ wildly: {ratio}");
    }

    #[test]
    fn dnapenny_itanium_is_not_applicable() {
        assert!(!EvalMatrix::cell_applicable(ProgramId::Dnapenny, "Itanium 2"));
        assert!(EvalMatrix::cell_applicable(ProgramId::Dnapenny, "Alpha 21264"));
        assert!(EvalMatrix::cell_applicable(ProgramId::Hmmsearch, "Itanium 2"));
    }

    #[test]
    fn matrix_covers_paper_cells() {
        let m = EvalMatrix::run(Scale::Test, 2);
        // 6 programs x 4 platforms - 1 n.a. cell.
        assert_eq!(m.cells.len(), 23);
        let hm = m.harmonic_mean_speedup("Alpha 21264");
        assert!(hm > 1.0, "Alpha harmonic mean must show a speedup: {hm}");
    }
}
