//! The one-pass program characterizer (Figures 1–2, Tables 1–5).

use bioperf_cache::{alpha21264_hierarchy, CacheSim, HierarchyStats};
use bioperf_isa::{MicroOp, OpClass, Program};
use bioperf_kernels::{registry, ProgramId, Scale, Variant};
use bioperf_metrics::MetricSet;
use bioperf_trace::{consumers::InstrMix, Tape, TraceConsumer};

use crate::coverage::LoadCoverage;
use crate::loadchar::{HotLoad, LoadBranchAnalysis, SequenceSummary};

/// Streaming consumer combining all of the paper's characterization
/// passes: instruction mix, load coverage, cache behaviour, and the
/// load↔branch sequence/profile analysis.
#[derive(Debug, Default)]
pub struct Characterizer {
    /// Instruction-mix counters (Figure 1 / Table 1).
    pub mix: InstrMix,
    /// Load-coverage accumulator (Figure 2).
    pub coverage: LoadCoverage,
    /// Cache simulation on the reference hierarchy (Table 2).
    cache: Option<CacheSim>,
    /// Sequence and per-load analysis (Tables 4 and 5).
    pub analysis: LoadBranchAnalysis,
}

impl Characterizer {
    /// Creates a characterizer with the paper's reference cache.
    pub fn new() -> Self {
        Self {
            mix: InstrMix::default(),
            coverage: LoadCoverage::new(),
            cache: Some(CacheSim::new(alpha21264_hierarchy())),
            analysis: LoadBranchAnalysis::new(),
        }
    }

    /// Like [`new`](Self::new), but with event-metric collection switched
    /// on in the cache simulation; the collected events come back in
    /// [`CharacterizationReport::events`].
    pub fn with_metrics() -> Self {
        let mut c = Self::new();
        c.cache = c.cache.map(CacheSim::with_metrics);
        c
    }

    /// Finalizes into a report.
    pub fn into_report(self, program: Program, hot_load_rows: usize) -> CharacterizationReport {
        let mut cache = self.cache.expect("cache sim present").into_hierarchy();
        let events = cache.take_metrics();
        let amat = cache.amat();
        let hot_loads = self.analysis.hot_loads(hot_load_rows, &program);
        CharacterizationReport {
            mix: self.mix,
            coverage: self.coverage,
            cache: *cache.stats(),
            amat,
            sequences: self.analysis.summary(),
            overall_branch_misprediction_rate: self.analysis.profiler().overall_misprediction_rate(),
            hot_loads,
            load_stats: self.analysis.all_load_stats().to_vec(),
            static_loads: program.count_kind(bioperf_isa::OpKind::is_load),
            program,
            events,
        }
    }
}

impl TraceConsumer for Characterizer {
    fn consume(&mut self, op: &MicroOp, program: &Program) {
        self.mix.consume(op, program);
        self.coverage.consume(op, program);
        if let Some(cache) = self.cache.as_mut() {
            cache.consume(op, program);
        }
        self.analysis.consume(op, program);
    }
}

/// Everything the characterization tables need for one program.
#[derive(Debug)]
pub struct CharacterizationReport {
    /// Instruction mix (Figure 1, Table 1).
    pub mix: InstrMix,
    /// Load coverage (Figure 2).
    pub coverage: LoadCoverage,
    /// Reference-hierarchy cache statistics (Table 2).
    pub cache: HierarchyStats,
    /// Average memory access time under the paper's formula (Table 2).
    pub amat: f64,
    /// Sequence analysis (Table 4).
    pub sequences: SequenceSummary,
    /// Overall dynamic branch misprediction rate.
    pub overall_branch_misprediction_rate: f64,
    /// The hottest loads (Table 5).
    pub hot_loads: Vec<HotLoad>,
    /// Full per-static-load statistics, indexed by static-id index.
    pub load_stats: Vec<crate::loadchar::LoadStats>,
    /// Number of distinct static loads traced.
    pub static_loads: usize,
    /// The traced static program (for source mapping).
    pub program: Program,
    /// Raw event metrics from the cache simulation (empty unless the
    /// characterizer was built with [`Characterizer::with_metrics`]).
    pub events: MetricSet,
}

impl CharacterizationReport {
    /// Per-static-load statistics for one load (zeros if never traced).
    pub fn analysis_load_stats(&self, sid: bioperf_isa::StaticId) -> crate::loadchar::LoadStats {
        self.load_stats.get(sid.index()).copied().unwrap_or_default()
    }

    /// Exports every metric the paper's characterization tables report —
    /// the Figure 1 mix, Figure 2 coverage, Table 2 cache behaviour, and
    /// the Table 4 sequence fractions — as named series under `prefix`
    /// (conventionally `char/<program>/`).
    pub fn export_metrics(&self, out: &mut MetricSet, prefix: &str) {
        let c = |name: &str| format!("{prefix}{name}");
        // Figure 1 / Table 1: instruction mix.
        out.counter_add(&c("instructions"), self.mix.total());
        out.counter_add(&c("dynamic_loads"), self.mix.loads());
        out.counter_add(&c("dynamic_stores"), self.mix.stores());
        out.counter_add(&c("cond_branches"), self.mix.cond_branches());
        out.gauge_set(&c("load_fraction"), self.mix.class_fraction(OpClass::Load));
        out.gauge_set(&c("store_fraction"), self.mix.class_fraction(OpClass::Store));
        out.gauge_set(&c("branch_fraction"), self.mix.class_fraction(OpClass::CondBranch));
        out.gauge_set(&c("fp_fraction"), self.mix.fp_fraction());
        // Figure 2: static-load coverage.
        out.counter_add(&c("static_loads"), self.static_loads as u64);
        out.gauge_set(&c("coverage_top10"), self.coverage.coverage_at(10));
        out.gauge_set(&c("coverage_top80"), self.coverage.coverage_at(80));
        // Tables 2/3: cache miss rates and AMAT.
        out.counter_add(&c("l1_load_misses"), self.cache.l1.load_misses);
        out.counter_add(&c("l2_load_misses"), self.cache.l2.load_misses);
        out.gauge_set(&c("l1_load_miss_rate"), self.cache.l1.load_miss_ratio());
        out.gauge_set(&c("l2_load_miss_rate"), self.cache.l2.load_miss_ratio());
        out.gauge_set(&c("overall_memory_rate"), self.cache.overall_load_memory_ratio());
        out.gauge_set(&c("amat_cycles"), self.amat);
        // Table 4: load↔branch sequences.
        out.gauge_set(&c("load_to_branch_fraction"), self.sequences.load_to_branch_fraction());
        out.gauge_set(
            &c("sequence_branch_mispredict_rate"),
            self.sequences.sequence_branch_misprediction_rate(),
        );
        out.gauge_set(
            &c("load_after_hard_branch_fraction"),
            self.sequences.loads_after_hard_branch_fraction(),
        );
        out.gauge_set(&c("branch_mispredict_rate"), self.overall_branch_misprediction_rate);
    }
}

/// Runs one BioPerf program (original source shape) through the full
/// characterizer — the reproduction's equivalent of an ATOM profiling
/// run.
pub fn characterize_program(program: ProgramId, scale: Scale, seed: u64) -> CharacterizationReport {
    let mut tape = Tape::new(Characterizer::new());
    registry::run(&mut tape, program, Variant::Original, scale, seed);
    let (static_program, characterizer) = tape.finish();
    characterizer.into_report(static_program, 10)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hmmsearch_characterization_matches_paper_shape() {
        let r = characterize_program(ProgramId::Hmmsearch, Scale::Test, 1);
        // Figure 1: loads are a large fraction of instructions.
        let load_frac = r.mix.class_fraction(bioperf_isa::OpClass::Load);
        assert!((0.2..0.5).contains(&load_frac), "load fraction {load_frac}");
        // Table 2: almost all loads hit L1.
        assert!(r.cache.l1.load_miss_ratio() < 0.02, "{}", r.cache.l1.load_miss_ratio());
        assert!(r.amat < 3.5, "AMAT {} dominated by the L1 hit latency", r.amat);
        // Figure 2: a handful of static loads covers everything.
        assert!(r.coverage.coverage_at(80) > 0.9);
        // Table 4a: most loads lead to branches.
        assert!(r.sequences.load_to_branch_fraction() > 0.5);
        // Table 5: hot loads exist with source mapping.
        assert!(!r.hot_loads.is_empty());
        assert!(r.hot_loads[0].loc.file.contains("viterbi"));
    }

    #[test]
    fn characterization_is_deterministic() {
        // Address normalization (bioperf_trace::normalize) makes traced
        // addresses independent of allocator placement, so two runs of
        // the same (program, scale, seed) must agree *exactly* — cache
        // conflict misses included — for every program.
        for p in ProgramId::ALL {
            let a = characterize_program(p, Scale::Test, 9);
            let b = characterize_program(p, Scale::Test, 9);
            assert_eq!(a.mix, b.mix, "{p}: instruction mix");
            assert_eq!(a.sequences.loads_to_branch, b.sequences.loads_to_branch, "{p}");
            assert_eq!(a.cache, b.cache, "{p}: cache statistics must be bit-identical");
            assert_eq!(a.amat, b.amat, "{p}: AMAT");
        }
    }

    #[test]
    fn all_nine_programs_characterize() {
        for p in ProgramId::ALL {
            let r = characterize_program(p, Scale::Test, 3);
            assert!(r.mix.total() > 10_000, "{p}: tiny trace {}", r.mix.total());
            assert!(r.mix.loads() > 0, "{p}");
            assert!(r.static_loads > 0, "{p}");
        }
    }
}
