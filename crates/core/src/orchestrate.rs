//! Parallel single-trace experiment orchestration.
//!
//! The paper's experiments decompose into independent jobs — one per
//! (program) for characterization, one per (program) for the Table 8
//! runtime evaluation — and each job needs the kernel executed *once*:
//!
//! * A characterization job runs the instrumented kernel with a tuple
//!   fan-out `(Characterizer, Recorder)`, so one execution feeds the
//!   instruction-mix/coverage/cache/sequence passes **and** captures the
//!   trace for replay.
//! * An evaluation job replays each captured trace through every
//!   applicable platform model in a single pass over the recording,
//!   using a [`FanOut`] of [`CycleSim`]s (the consumer count is dynamic
//!   — dnapenny has no Itanium cell — which is exactly what `FanOut`
//!   handles and a tuple cannot).
//!
//! Jobs run on a [`std::thread::scope`] worker pool ([`run_jobs`]); the
//! result vector is indexed by job, not by completion order, so the
//! orchestrated output is identical for any worker count. Combined with
//! address normalization (see `bioperf_trace::normalize`) this makes the
//! whole suite deterministic: `--jobs 1` and `--jobs N` produce
//! byte-identical reports.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use bioperf_kernels::{registry, ProgramId, Scale, Variant};
use bioperf_pipe::{CycleSim, PlatformConfig, SimResult};
use bioperf_trace::{FanOut, Recorder, Recording, Tape};

use crate::characterize::{CharacterizationReport, Characterizer};
use crate::evaluate::{EvalCell, EvalMatrix};

/// Runs `jobs` closures on up to `threads` workers and returns their
/// results *in job order* (result `i` is job `i`'s output, regardless of
/// which worker finished when).
///
/// `threads == 1` degenerates to a plain sequential map with no thread
/// machinery at all, so a single-job run is bit-for-bit the reference
/// execution that parallel runs are compared against.
///
/// # Panics
///
/// Propagates a panic from any job once all workers have stopped.
pub fn run_jobs<T, F>(jobs: Vec<F>, threads: usize) -> Vec<T>
where
    T: Send,
    F: FnOnce() -> T + Send,
{
    let n = jobs.len();
    let threads = threads.clamp(1, n.max(1));
    if threads <= 1 {
        return jobs.into_iter().map(|f| f()).collect();
    }
    let next = AtomicUsize::new(0);
    let jobs: Vec<Mutex<Option<F>>> = jobs.into_iter().map(|f| Mutex::new(Some(f))).collect();
    let slots: Vec<Mutex<Option<T>>> = (0..n).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|s| {
        for _ in 0..threads {
            s.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let job = jobs[i].lock().unwrap().take().expect("each job index is claimed once");
                let out = job();
                *slots[i].lock().unwrap() = Some(out);
            });
        }
    });
    slots
        .into_iter()
        .map(|m| m.into_inner().unwrap().expect("scope joined every worker"))
        .collect()
}

/// Worker count to use when the caller passes `0` ("auto").
pub fn default_jobs() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// Configuration for [`run_suite`].
#[derive(Debug, Clone, Copy)]
pub struct SuiteConfig {
    /// Workload scale for every job.
    pub scale: Scale,
    /// Seed for every job (the suite is deterministic in it).
    pub seed: u64,
    /// Worker threads; `0` means [`default_jobs`].
    pub jobs: usize,
}

/// Everything the full suite produces: the nine characterization
/// reports (in [`ProgramId::ALL`] order) and the Table 8 evaluation
/// matrix (program-major in [`ProgramId::TRANSFORMED`] order).
#[derive(Debug)]
pub struct SuiteResult {
    /// Scale the suite ran at.
    pub scale: Scale,
    /// Seed the suite ran with.
    pub seed: u64,
    /// One characterization report per program, in `ProgramId::ALL` order.
    pub reports: Vec<(ProgramId, CharacterizationReport)>,
    /// The runtime-evaluation matrix (Tables 7–8, Figure 9).
    pub eval: EvalMatrix,
}

/// Output of one per-program suite job.
struct ProgramResult {
    report: CharacterizationReport,
    /// Table 8 cells for this program; empty for the three programs the
    /// paper characterized but did not transform.
    cells: Vec<EvalCell>,
}

/// Replays one recording through every applicable platform model in a
/// single pass over the trace.
fn simulate_platforms(program: ProgramId, recording: &Recording) -> Vec<(&'static str, SimResult)> {
    let platforms: Vec<PlatformConfig> = PlatformConfig::all()
        .into_iter()
        .filter(|p| EvalMatrix::cell_applicable(program, p.name))
        .collect();
    let mut fan: FanOut<CycleSim> = platforms.iter().map(|&p| CycleSim::new(p)).collect();
    recording.replay(&mut fan);
    platforms.iter().zip(fan.into_inner()).map(|(p, sim)| (p.name, sim.into_result())).collect()
}

/// Executes the load-transformed variant once and captures its trace.
fn record_variant(program: ProgramId, variant: Variant, scale: Scale, seed: u64) -> Recording {
    let mut tape = Tape::new(Recorder::new());
    registry::run(&mut tape, program, variant, scale, seed);
    let (static_program, rec) = tape.finish();
    assert!(!rec.overflowed(), "{program}: trace exceeded the recorder capacity");
    rec.into_recording(static_program)
}

/// One suite job: characterize `program` from a single instrumented
/// execution and, if it has a load-transformed variant, produce its
/// Table 8 cells by replaying the captured traces.
fn run_program(program: ProgramId, scale: Scale, seed: u64) -> ProgramResult {
    if !program.is_transformable() {
        let report = crate::characterize::characterize_program(program, scale, seed);
        return ProgramResult { report, cells: Vec::new() };
    }

    // Single original-variant execution: the tuple consumer fans the op
    // stream out to the characterizer and the replay recorder at once.
    let mut tape = Tape::new((Characterizer::new(), Recorder::new()));
    registry::run(&mut tape, program, Variant::Original, scale, seed);
    let (static_program, (characterizer, rec)) = tape.finish();
    assert!(!rec.overflowed(), "{program}: trace exceeded the recorder capacity");
    let original = rec.into_recording(static_program.clone());
    let report = characterizer.into_report(static_program, 10);

    let transformed = record_variant(program, Variant::LoadTransformed, scale, seed);

    let orig_sims = simulate_platforms(program, &original);
    let trans_sims = simulate_platforms(program, &transformed);
    let cells = orig_sims
        .into_iter()
        .zip(trans_sims)
        .map(|((platform, original), (platform_t, transformed))| {
            debug_assert_eq!(platform, platform_t);
            EvalCell { program, platform, original, transformed }
        })
        .collect();
    ProgramResult { report, cells }
}

/// Runs the nine-program characterization suite and the six-program ×
/// four-platform runtime evaluation as one parallel job set.
pub fn run_suite(cfg: SuiteConfig) -> SuiteResult {
    let threads = if cfg.jobs == 0 { default_jobs() } else { cfg.jobs };
    let jobs: Vec<_> = ProgramId::ALL
        .into_iter()
        .map(|program| move || run_program(program, cfg.scale, cfg.seed))
        .collect();
    let results = run_jobs(jobs, threads);

    let mut reports = Vec::with_capacity(ProgramId::ALL.len());
    let mut per_program: Vec<(ProgramId, Vec<EvalCell>)> = Vec::new();
    for (program, result) in ProgramId::ALL.into_iter().zip(results) {
        reports.push((program, result.report));
        per_program.push((program, result.cells));
    }
    // Emit Table 8 cells program-major in the paper's (TRANSFORMED)
    // order, independent of ALL's ordering.
    let mut cells = Vec::new();
    for program in ProgramId::TRANSFORMED {
        if let Some((_, c)) = per_program.iter_mut().find(|(p, _)| *p == program) {
            cells.append(c);
        }
    }
    SuiteResult { scale: cfg.scale, seed: cfg.seed, reports, eval: EvalMatrix { cells } }
}

/// Characterizes every program in parallel; results in
/// [`ProgramId::ALL`] order. The parallel backend behind the
/// table/figure binaries that loop over all nine programs.
pub fn characterize_all(
    scale: Scale,
    seed: u64,
    jobs: usize,
) -> Vec<(ProgramId, CharacterizationReport)> {
    let threads = if jobs == 0 { default_jobs() } else { jobs };
    let work: Vec<_> = ProgramId::ALL
        .into_iter()
        .map(|program| move || crate::characterize::characterize_program(program, scale, seed))
        .collect();
    ProgramId::ALL.into_iter().zip(run_jobs(work, threads)).collect()
}

/// Runs the Table 8 evaluation in parallel: per program, each variant is
/// executed once and its recording replayed through the platform models.
/// Cell order matches [`EvalMatrix::run`].
pub fn evaluate_all(scale: Scale, seed: u64, jobs: usize) -> EvalMatrix {
    let threads = if jobs == 0 { default_jobs() } else { jobs };
    let work: Vec<_> = ProgramId::TRANSFORMED
        .into_iter()
        .map(|program| {
            move || {
                let original = record_variant(program, Variant::Original, scale, seed);
                let transformed = record_variant(program, Variant::LoadTransformed, scale, seed);
                let orig_sims = simulate_platforms(program, &original);
                let trans_sims = simulate_platforms(program, &transformed);
                orig_sims
                    .into_iter()
                    .zip(trans_sims)
                    .map(|((platform, original), (_, transformed))| EvalCell {
                        program,
                        platform,
                        original,
                        transformed,
                    })
                    .collect::<Vec<_>>()
            }
        })
        .collect();
    let cells = run_jobs(work, threads).into_iter().flatten().collect();
    EvalMatrix { cells }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_jobs_preserves_job_order() {
        let jobs: Vec<_> = (0..32).map(|i| move || i * 10).collect();
        let seq = run_jobs(jobs, 1);
        let jobs: Vec<_> = (0..32).map(|i| move || i * 10).collect();
        let par = run_jobs(jobs, 8);
        assert_eq!(seq, par);
        assert_eq!(seq, (0..32).map(|i| i * 10).collect::<Vec<_>>());
    }

    #[test]
    fn run_jobs_handles_more_threads_than_jobs() {
        let jobs: Vec<_> = (0..3).map(|i| move || i).collect();
        assert_eq!(run_jobs(jobs, 64), vec![0, 1, 2]);
        let none: Vec<Box<dyn FnOnce() -> i32 + Send>> = Vec::new();
        assert!(run_jobs(none, 4).is_empty());
    }

    #[test]
    fn single_trace_job_matches_direct_characterization() {
        // The tuple fan-out execution inside a suite job must produce the
        // same characterization as a dedicated characterization run.
        let direct =
            crate::characterize::characterize_program(ProgramId::Hmmsearch, Scale::Test, 7);
        let job = run_program(ProgramId::Hmmsearch, Scale::Test, 7);
        assert_eq!(direct.mix, job.report.mix);
        assert_eq!(direct.cache, job.report.cache);
        assert_eq!(direct.sequences.loads_to_branch, job.report.sequences.loads_to_branch);
        assert!(!job.cells.is_empty());
    }

    #[test]
    fn replayed_platform_sims_match_direct_execution() {
        // Record-once + FanOut replay must equal running the kernel
        // directly into each platform model.
        let direct = crate::evaluate::evaluate_program(
            ProgramId::Predator,
            PlatformConfig::alpha21264(),
            Scale::Test,
            5,
        );
        let recording = record_variant(ProgramId::Predator, Variant::Original, Scale::Test, 5);
        let sims = simulate_platforms(ProgramId::Predator, &recording);
        let (_, alpha) = sims
            .iter()
            .find(|(name, _)| *name == PlatformConfig::alpha21264().name)
            .expect("alpha cell");
        assert_eq!(alpha.cycles, direct.original.cycles);
        assert_eq!(alpha.instructions, direct.original.instructions);
    }

    #[test]
    fn parallel_suite_equals_sequential_suite() {
        let seq = run_suite(SuiteConfig { scale: Scale::Test, seed: 11, jobs: 1 });
        let par = run_suite(SuiteConfig { scale: Scale::Test, seed: 11, jobs: 4 });
        assert_eq!(seq.reports.len(), par.reports.len());
        for ((pa, a), (pb, b)) in seq.reports.iter().zip(&par.reports) {
            assert_eq!(pa, pb);
            assert_eq!(a.mix, b.mix, "{pa}");
            assert_eq!(a.cache, b.cache, "{pa}: cache stats must not depend on worker count");
            assert_eq!(a.amat, b.amat, "{pa}");
        }
        assert_eq!(seq.eval.cells.len(), par.eval.cells.len());
        // 6 programs x 4 platforms - 1 n.a. cell, like EvalMatrix::run.
        assert_eq!(seq.eval.cells.len(), 23);
        for (a, b) in seq.eval.cells.iter().zip(&par.eval.cells) {
            assert_eq!(a.program, b.program);
            assert_eq!(a.platform, b.platform);
            assert_eq!(a.original.cycles, b.original.cycles);
            assert_eq!(a.transformed.cycles, b.transformed.cycles);
        }
    }

    #[test]
    fn evaluate_all_matches_eval_matrix_run() {
        let a = EvalMatrix::run(Scale::Test, 2);
        let b = evaluate_all(Scale::Test, 2, 3);
        assert_eq!(a.cells.len(), b.cells.len());
        for (x, y) in a.cells.iter().zip(&b.cells) {
            assert_eq!(x.program, y.program);
            assert_eq!(x.platform, y.platform);
            assert_eq!(x.original.cycles, y.original.cycles);
            assert_eq!(x.transformed.cycles, y.transformed.cycles);
        }
    }
}
