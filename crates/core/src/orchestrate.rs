//! Parallel single-trace experiment orchestration.
//!
//! The paper's experiments decompose into independent jobs — one per
//! (program) for characterization, one per (program) for the Table 8
//! runtime evaluation — and each job needs the kernel executed *once*:
//!
//! * A characterization job runs the instrumented kernel with a tuple
//!   fan-out `(Characterizer, Recorder)`, so one execution feeds the
//!   instruction-mix/coverage/cache/sequence passes **and** captures the
//!   trace for replay.
//! * An evaluation job replays each captured trace through every
//!   applicable platform model in a single pass over the recording,
//!   using a [`FanOut`] of [`CycleSim`]s (the consumer count is dynamic
//!   — dnapenny has no Itanium cell — which is exactly what `FanOut`
//!   handles and a tuple cannot).
//!
//! Jobs run on a [`std::thread::scope`] worker pool ([`run_jobs`]); the
//! result vector is indexed by job, not by completion order, so the
//! orchestrated output is identical for any worker count. Combined with
//! address normalization (see `bioperf_trace::normalize`) this makes the
//! whole suite deterministic: `--jobs 1` and `--jobs N` produce
//! byte-identical reports.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use bioperf_kernels::{registry, ProgramId, Scale, Variant};
use bioperf_metrics::{Json, MetricSet, Timings};
use bioperf_pipe::{CycleSim, PlatformConfig, SimResult};
use bioperf_trace::{FanOut, Recorder, Recording, Tape};

use crate::characterize::{CharacterizationReport, Characterizer};
use crate::evaluate::{EvalCell, EvalMatrix};

/// Schema tag of the suite's emitted JSON documents (`suite --metrics`,
/// `BENCH_suite.json`); bump on breaking shape changes.
pub const SUITE_SCHEMA: &str = "bioperf-suite/v1";

/// Runs `jobs` closures on up to `threads` workers and returns their
/// results *in job order* (result `i` is job `i`'s output, regardless of
/// which worker finished when).
///
/// `threads == 1` degenerates to a plain sequential map with no thread
/// machinery at all, so a single-job run is bit-for-bit the reference
/// execution that parallel runs are compared against.
///
/// # Panics
///
/// Propagates a panic from any job once all workers have stopped.
pub fn run_jobs<T, F>(jobs: Vec<F>, threads: usize) -> Vec<T>
where
    T: Send,
    F: FnOnce() -> T + Send,
{
    let n = jobs.len();
    let threads = threads.clamp(1, n.max(1));
    if threads <= 1 {
        return jobs.into_iter().map(|f| f()).collect();
    }
    let next = AtomicUsize::new(0);
    let jobs: Vec<Mutex<Option<F>>> = jobs.into_iter().map(|f| Mutex::new(Some(f))).collect();
    let slots: Vec<Mutex<Option<T>>> = (0..n).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|s| {
        for _ in 0..threads {
            s.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let job = jobs[i].lock().unwrap().take().expect("each job index is claimed once");
                let out = job();
                *slots[i].lock().unwrap() = Some(out);
            });
        }
    });
    slots
        .into_iter()
        .map(|m| m.into_inner().unwrap().expect("scope joined every worker"))
        .collect()
}

/// Worker count to use when the caller passes `0` ("auto").
pub fn default_jobs() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// Configuration for [`run_suite`].
#[derive(Debug, Clone, Copy)]
pub struct SuiteConfig {
    /// Workload scale for every job.
    pub scale: Scale,
    /// Seed for every job (the suite is deterministic in it).
    pub seed: u64,
    /// Worker threads; `0` means [`default_jobs`].
    pub jobs: usize,
    /// Collect raw event metrics inside the cache/pipeline simulators.
    /// The paper-metric series and the phase timings are always
    /// collected; this switch only controls the per-access event sinks,
    /// which are the part with a (small) hot-loop cost.
    pub metrics: bool,
}

/// Everything the full suite produces: the nine characterization
/// reports (in [`ProgramId::ALL`] order) and the Table 8 evaluation
/// matrix (program-major in [`ProgramId::TRANSFORMED`] order).
#[derive(Debug)]
pub struct SuiteResult {
    /// Scale the suite ran at.
    pub scale: Scale,
    /// Seed the suite ran with.
    pub seed: u64,
    /// Worker threads actually used.
    pub workers: usize,
    /// One characterization report per program, in `ProgramId::ALL` order.
    pub reports: Vec<(ProgramId, CharacterizationReport)>,
    /// The runtime-evaluation matrix (Tables 7–8, Figure 9).
    pub eval: EvalMatrix,
    /// Every deterministic metric series: the paper metrics exported from
    /// the reports and the evaluation matrix, plus (when
    /// [`SuiteConfig::metrics`] was set) the simulators' raw event
    /// counters and histograms. Identical for every worker count.
    pub metrics: MetricSet,
    /// Wall-clock span timings per program × phase — non-deterministic by
    /// nature and therefore kept out of [`Self::deterministic_json`].
    pub timings: Timings,
}

impl SuiteResult {
    /// The deterministic section of the suite document: run
    /// configuration (scale, seed — but *not* worker count) plus every
    /// metric series, names sorted. Byte-identical across worker counts;
    /// the `suite_determinism` integration test compares exactly these
    /// bytes for `--jobs 1` vs `--jobs 4`.
    pub fn deterministic_json(&self) -> Json {
        let mut entries = vec![(
            "config".to_string(),
            Json::object(vec![
                ("scale", Json::str(self.scale.name())),
                ("seed", Json::U64(self.seed)),
                ("programs", Json::U64(self.reports.len() as u64)),
                ("eval_cells", Json::U64(self.eval.cells.len() as u64)),
            ]),
        )];
        entries.extend(self.metrics.to_json_entries());
        Json::Object(entries)
    }

    /// The full suite document: `schema`, a non-deterministic `run`
    /// section (worker count, pool utilization, wall-clock timings), and
    /// the [`deterministic`](Self::deterministic_json) section.
    pub fn to_json(&self) -> Json {
        let jobs = self.reports.len() as u64;
        let run = Json::object(vec![
            ("jobs", Json::U64(jobs)),
            ("workers", Json::U64(self.workers as u64)),
            ("jobs_per_worker", Json::F64(jobs as f64 / self.workers.max(1) as f64)),
            ("timings", self.timings.to_json()),
        ]);
        Json::object(vec![
            ("schema", Json::str(SUITE_SCHEMA)),
            ("run", run),
            ("deterministic", self.deterministic_json()),
        ])
    }
}

/// Output of one per-program suite job.
struct ProgramResult {
    report: CharacterizationReport,
    /// Table 8 cells for this program; empty for the three programs the
    /// paper characterized but did not transform.
    cells: Vec<EvalCell>,
    /// Raw simulator events, already namespaced `events/<program>/…`
    /// (empty unless event collection was requested).
    events: MetricSet,
    /// This job's wall-clock phase spans.
    timings: Timings,
}

/// Replays one recording through every applicable platform model in a
/// single pass over the trace; with `events` set, each simulator also
/// returns its raw event metrics.
fn simulate_platforms(
    program: ProgramId,
    recording: &Recording,
    events: bool,
) -> Vec<(&'static str, SimResult, MetricSet)> {
    let platforms: Vec<PlatformConfig> = PlatformConfig::all()
        .into_iter()
        .filter(|p| EvalMatrix::cell_applicable(program, p.name))
        .collect();
    let mut fan: FanOut<CycleSim> = platforms
        .iter()
        .map(|&p| if events { CycleSim::new(p).with_metrics() } else { CycleSim::new(p) })
        .collect();
    recording.replay(&mut fan);
    platforms
        .iter()
        .zip(fan.into_inner())
        .map(|(p, mut sim)| {
            let m = sim.take_metrics();
            (p.name, sim.into_result(), m)
        })
        .collect()
}

/// Executes the load-transformed variant once and captures its trace.
fn record_variant(program: ProgramId, variant: Variant, scale: Scale, seed: u64) -> Recording {
    let mut tape = Tape::new(Recorder::new());
    registry::run(&mut tape, program, variant, scale, seed);
    let (static_program, rec) = tape.finish();
    assert!(!rec.overflowed(), "{program}: trace exceeded the recorder capacity");
    rec.into_recording(static_program)
}

/// One suite job: characterize `program` from a single instrumented
/// execution and, if it has a load-transformed variant, produce its
/// Table 8 cells by replaying the captured traces. Every phase runs
/// under a wall-clock span (`<program>/trace`, `/characterize`,
/// `/replay`); with `events` set the simulators also collect raw event
/// metrics, namespaced `events/<program>/…`.
fn run_program(program: ProgramId, scale: Scale, seed: u64, events: bool) -> ProgramResult {
    let name = program.name();
    let mut timings = Timings::new();
    let mut metrics = MetricSet::new();
    let characterizer =
        if events { Characterizer::with_metrics() } else { Characterizer::new() };

    if !program.is_transformable() {
        let mut tape = Tape::new(characterizer);
        timings.time(&format!("{name}/trace"), || {
            registry::run(&mut tape, program, Variant::Original, scale, seed);
        });
        let (static_program, characterizer) = tape.finish();
        let report = timings
            .time(&format!("{name}/characterize"), || characterizer.into_report(static_program, 10));
        metrics.merge_prefixed(&format!("events/{name}/cache/"), &report.events);
        return ProgramResult { report, cells: Vec::new(), events: metrics, timings };
    }

    // Single original-variant execution: the tuple consumer fans the op
    // stream out to the characterizer and the replay recorder at once.
    let mut tape = Tape::new((characterizer, Recorder::new()));
    timings.time(&format!("{name}/trace"), || {
        registry::run(&mut tape, program, Variant::Original, scale, seed);
    });
    let (static_program, (characterizer, rec)) = tape.finish();
    assert!(!rec.overflowed(), "{program}: trace exceeded the recorder capacity");
    let original = rec.into_recording(static_program.clone());
    let report = timings
        .time(&format!("{name}/characterize"), || characterizer.into_report(static_program, 10));
    metrics.merge_prefixed(&format!("events/{name}/cache/"), &report.events);

    let transformed = timings.time(&format!("{name}/trace"), || {
        record_variant(program, Variant::LoadTransformed, scale, seed)
    });

    let (orig_sims, trans_sims) = timings.time(&format!("{name}/replay"), || {
        (
            simulate_platforms(program, &original, events),
            simulate_platforms(program, &transformed, events),
        )
    });
    let cells = orig_sims
        .into_iter()
        .zip(trans_sims)
        .map(|((platform, original, ev_o), (platform_t, transformed, ev_t))| {
            debug_assert_eq!(platform, platform_t);
            metrics.merge_prefixed(&format!("events/{name}/{platform}/original/"), &ev_o);
            metrics.merge_prefixed(&format!("events/{name}/{platform}/transformed/"), &ev_t);
            EvalCell { program, platform, original, transformed }
        })
        .collect();
    ProgramResult { report, cells, events: metrics, timings }
}

/// Runs the nine-program characterization suite and the six-program ×
/// four-platform runtime evaluation as one parallel job set.
pub fn run_suite(cfg: SuiteConfig) -> SuiteResult {
    let threads = if cfg.jobs == 0 { default_jobs() } else { cfg.jobs };
    let jobs: Vec<_> = ProgramId::ALL
        .into_iter()
        .map(|program| move || run_program(program, cfg.scale, cfg.seed, cfg.metrics))
        .collect();
    let results = run_jobs(jobs, threads);

    // Merge per-job outputs in job order, so the merged metric set is the
    // same whatever order the workers finished in.
    let mut reports = Vec::with_capacity(ProgramId::ALL.len());
    let mut per_program: Vec<(ProgramId, Vec<EvalCell>)> = Vec::new();
    let mut metrics = MetricSet::new();
    let mut timings = Timings::new();
    for (program, result) in ProgramId::ALL.into_iter().zip(results) {
        metrics.merge(&result.events);
        timings.merge(&result.timings);
        reports.push((program, result.report));
        per_program.push((program, result.cells));
    }
    // Emit Table 8 cells program-major in the paper's (TRANSFORMED)
    // order, independent of ALL's ordering.
    let mut cells = Vec::new();
    for program in ProgramId::TRANSFORMED {
        if let Some((_, c)) = per_program.iter_mut().find(|(p, _)| *p == program) {
            cells.append(c);
        }
    }
    let eval = EvalMatrix { cells };
    // The paper-metric series are always exported, events switch or not.
    for (program, report) in &reports {
        report.export_metrics(&mut metrics, &format!("char/{}/", program.name()));
    }
    eval.export_metrics(&mut metrics, "eval/");
    SuiteResult { scale: cfg.scale, seed: cfg.seed, workers: threads, reports, eval, metrics, timings }
}

/// Characterizes every program in parallel; results in
/// [`ProgramId::ALL`] order. The parallel backend behind the
/// table/figure binaries that loop over all nine programs.
pub fn characterize_all(
    scale: Scale,
    seed: u64,
    jobs: usize,
) -> Vec<(ProgramId, CharacterizationReport)> {
    let threads = if jobs == 0 { default_jobs() } else { jobs };
    let work: Vec<_> = ProgramId::ALL
        .into_iter()
        .map(|program| move || crate::characterize::characterize_program(program, scale, seed))
        .collect();
    ProgramId::ALL.into_iter().zip(run_jobs(work, threads)).collect()
}

/// Runs the Table 8 evaluation in parallel: per program, each variant is
/// executed once and its recording replayed through the platform models.
/// Cell order matches [`EvalMatrix::run`].
pub fn evaluate_all(scale: Scale, seed: u64, jobs: usize) -> EvalMatrix {
    let threads = if jobs == 0 { default_jobs() } else { jobs };
    let work: Vec<_> = ProgramId::TRANSFORMED
        .into_iter()
        .map(|program| {
            move || {
                let original = record_variant(program, Variant::Original, scale, seed);
                let transformed = record_variant(program, Variant::LoadTransformed, scale, seed);
                let orig_sims = simulate_platforms(program, &original, false);
                let trans_sims = simulate_platforms(program, &transformed, false);
                orig_sims
                    .into_iter()
                    .zip(trans_sims)
                    .map(|((platform, original, _), (_, transformed, _))| EvalCell {
                        program,
                        platform,
                        original,
                        transformed,
                    })
                    .collect::<Vec<_>>()
            }
        })
        .collect();
    let cells = run_jobs(work, threads).into_iter().flatten().collect();
    EvalMatrix { cells }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_jobs_preserves_job_order() {
        let jobs: Vec<_> = (0..32).map(|i| move || i * 10).collect();
        let seq = run_jobs(jobs, 1);
        let jobs: Vec<_> = (0..32).map(|i| move || i * 10).collect();
        let par = run_jobs(jobs, 8);
        assert_eq!(seq, par);
        assert_eq!(seq, (0..32).map(|i| i * 10).collect::<Vec<_>>());
    }

    #[test]
    fn run_jobs_handles_more_threads_than_jobs() {
        let jobs: Vec<_> = (0..3).map(|i| move || i).collect();
        assert_eq!(run_jobs(jobs, 64), vec![0, 1, 2]);
        let none: Vec<Box<dyn FnOnce() -> i32 + Send>> = Vec::new();
        assert!(run_jobs(none, 4).is_empty());
    }

    #[test]
    fn single_trace_job_matches_direct_characterization() {
        // The tuple fan-out execution inside a suite job must produce the
        // same characterization as a dedicated characterization run.
        let direct =
            crate::characterize::characterize_program(ProgramId::Hmmsearch, Scale::Test, 7);
        let job = run_program(ProgramId::Hmmsearch, Scale::Test, 7, false);
        assert_eq!(direct.mix, job.report.mix);
        assert_eq!(direct.cache, job.report.cache);
        assert_eq!(direct.sequences.loads_to_branch, job.report.sequences.loads_to_branch);
        assert!(!job.cells.is_empty());
    }

    #[test]
    fn replayed_platform_sims_match_direct_execution() {
        // Record-once + FanOut replay must equal running the kernel
        // directly into each platform model.
        let direct = crate::evaluate::evaluate_program(
            ProgramId::Predator,
            PlatformConfig::alpha21264(),
            Scale::Test,
            5,
        );
        let recording = record_variant(ProgramId::Predator, Variant::Original, Scale::Test, 5);
        let sims = simulate_platforms(ProgramId::Predator, &recording, false);
        let (_, alpha, _) = sims
            .iter()
            .find(|(name, _, _)| *name == PlatformConfig::alpha21264().name)
            .expect("alpha cell");
        assert_eq!(alpha.cycles, direct.original.cycles);
        assert_eq!(alpha.instructions, direct.original.instructions);
    }

    #[test]
    fn parallel_suite_equals_sequential_suite() {
        let seq = run_suite(SuiteConfig { scale: Scale::Test, seed: 11, jobs: 1, metrics: true });
        let par = run_suite(SuiteConfig { scale: Scale::Test, seed: 11, jobs: 4, metrics: true });
        assert_eq!(seq.reports.len(), par.reports.len());
        for ((pa, a), (pb, b)) in seq.reports.iter().zip(&par.reports) {
            assert_eq!(pa, pb);
            assert_eq!(a.mix, b.mix, "{pa}");
            assert_eq!(a.cache, b.cache, "{pa}: cache stats must not depend on worker count");
            assert_eq!(a.amat, b.amat, "{pa}");
        }
        assert_eq!(seq.eval.cells.len(), par.eval.cells.len());
        // 6 programs x 4 platforms - 1 n.a. cell, like EvalMatrix::run.
        assert_eq!(seq.eval.cells.len(), 23);
        for (a, b) in seq.eval.cells.iter().zip(&par.eval.cells) {
            assert_eq!(a.program, b.program);
            assert_eq!(a.platform, b.platform);
            assert_eq!(a.original.cycles, b.original.cycles);
            assert_eq!(a.transformed.cycles, b.transformed.cycles);
        }
        // The whole deterministic JSON section — config, paper metrics,
        // raw simulator events — must be byte-identical across worker
        // counts. Timings live in the `run` section and are excluded.
        assert_eq!(seq.deterministic_json().render(), par.deterministic_json().render());
    }

    #[test]
    fn suite_json_has_expected_shape() {
        let suite = run_suite(SuiteConfig { scale: Scale::Test, seed: 3, jobs: 2, metrics: false });
        let doc = suite.to_json();
        assert_eq!(doc.get("schema").and_then(Json::as_str), Some(SUITE_SCHEMA));
        assert_eq!(doc.keys(), vec!["schema", "run", "deterministic"]);
        let det = doc.get("deterministic").expect("deterministic section");
        assert_eq!(det.keys(), vec!["config", "counters", "gauges", "histograms"]);
        let config = det.get("config").expect("config");
        assert_eq!(config.get("scale").and_then(Json::as_str), Some("test"));
        assert_eq!(config.get("seed").and_then(Json::as_u64), Some(3));
        assert_eq!(config.get("programs").and_then(Json::as_u64), Some(9));
        assert_eq!(config.get("eval_cells").and_then(Json::as_u64), Some(23));
        // Paper series are exported even with event metrics off.
        let counters = det.get("counters").expect("counters");
        assert!(counters.get("char/hmmsearch/instructions").is_some());
        let gauges = det.get("gauges").expect("gauges");
        assert!(gauges.get("eval/harmonic_mean/Alpha 21264").is_some());
        // Raw simulator events only appear when asked for.
        assert!(counters.keys().iter().all(|k| !k.starts_with("events/")));
        let with_events =
            run_suite(SuiteConfig { scale: Scale::Test, seed: 3, jobs: 2, metrics: true });
        let doc = with_events.to_json();
        let counters = doc.get("deterministic").and_then(|d| d.get("counters")).expect("counters");
        assert!(counters.get("events/hmmsearch/cache/serviced_l1").is_some());
        // Round-trips through the in-crate parser.
        let text = doc.render_pretty();
        let parsed = bioperf_metrics::json::parse(&text).expect("suite JSON parses");
        assert_eq!(parsed.render(), doc.render());
    }

    #[test]
    fn evaluate_all_matches_eval_matrix_run() {
        let a = EvalMatrix::run(Scale::Test, 2);
        let b = evaluate_all(Scale::Test, 2, 3);
        assert_eq!(a.cells.len(), b.cells.len());
        for (x, y) in a.cells.iter().zip(&b.cells) {
            assert_eq!(x.program, y.program);
            assert_eq!(x.platform, y.platform);
            assert_eq!(x.original.cycles, y.original.cycles);
            assert_eq!(x.transformed.cycles, y.transformed.cycles);
        }
    }
}
