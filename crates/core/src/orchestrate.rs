//! Parallel single-trace experiment orchestration.
//!
//! The paper's experiments decompose into independent jobs, scheduled in
//! two waves on a [`std::thread::scope`] worker pool ([`run_jobs`]):
//!
//! * **Prepare** (one job per program): the instrumented kernel runs
//!   *once* with a tuple fan-out `(Characterizer, Recorder)`, so a single
//!   execution feeds the instruction-mix/coverage/cache/sequence passes
//!   **and** captures the packed trace; transformable programs also
//!   record their load-transformed variant.
//! * **Replay** (one job per program × variant): each [`Arc`]-shared
//!   recording is decoded exactly once and the single decoded op stream
//!   drives a *bank* of platform simulators
//!   (`Recording::replay_bank`), so the 23-cell evaluation pays one
//!   packed-decode per recording instead of one per platform pass.
//!
//! Result vectors are indexed by job, not by completion order, and the
//! bank→cell merge walks a fixed enumeration, so the orchestrated
//! output is identical for any worker count. Combined with address
//! normalization (see `bioperf_trace::normalize`) this makes the whole
//! suite deterministic: `--jobs 1` and `--jobs N` produce byte-identical
//! reports.
//!
//! Trace-capacity overflow surfaces as a typed [`SuiteError`] (the
//! `suite` CLI reports it and exits 1) rather than a panic.
//!
//! The same pool also drives the conformance harness ([`run_conform`]):
//! seeded differential fuzz cases (optimized implementations vs. the
//! `bioperf_conform` reference models) fan out one job per case, the
//! nine real program traces are cross-checked end-to-end, and mutation
//! mode arms one catalogued [`FaultId`] before spawning workers so the
//! fuzzer can prove it would catch that bug class.

use std::fmt;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use bioperf_conform::fuzz::{self, CaseOutcome};
use bioperf_conform::{RefPipeline, RefTape};
use bioperf_kernels::{registry, ProgramId, Scale, Variant};
use bioperf_metrics::{Json, MetricSet, Timings};
use bioperf_pipe::{CycleSim, PlatformConfig, SimResult};
use bioperf_isa::MicroOp;
use bioperf_trace::{
    replay::DEFAULT_CAPACITY, Recorder, Recording, SegmentError, SegmentedRecording,
    SpillRecorder, Tape, TraceConsumer,
};

pub use bioperf_conform::{fault, FaultId};

use crate::characterize::{CharacterizationReport, Characterizer};
use crate::evaluate::{EvalCell, EvalMatrix};

/// Schema tag of the suite's emitted JSON documents (`suite --metrics`,
/// `BENCH_suite.json`); bump on breaking shape changes.
pub const SUITE_SCHEMA: &str = "bioperf-suite/v1";

/// A typed orchestration failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SuiteError {
    /// A kernel emitted more ops than the recorder could hold, so the
    /// captured trace is a prefix and every replay-derived number would
    /// be wrong.
    TraceOverflow {
        /// Program whose trace overflowed.
        program: ProgramId,
        /// Variant being recorded.
        variant: Variant,
        /// Ops captured before the recorder hit its capacity.
        captured: usize,
    },
    /// Spilling or streaming a segmented trace failed; the inner error
    /// names the offending segment path.
    Segment {
        /// Program whose trace was being spilled or streamed.
        program: ProgramId,
        /// Variant the trace belongs to.
        variant: Variant,
        /// The segment-level failure (I/O, truncation, corruption, …).
        error: SegmentError,
    },
}

impl fmt::Display for SuiteError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SuiteError::TraceOverflow { program, variant, captured } => write!(
                f,
                "{program} ({}): trace exceeded the recorder capacity after {captured} ops; \
                 rerun at a smaller scale",
                variant.label()
            ),
            SuiteError::Segment { program, variant, error } => {
                write!(f, "{program} ({}): {error}", variant.label())
            }
        }
    }
}

impl std::error::Error for SuiteError {}

/// Runs `jobs` closures on up to `threads` workers and returns their
/// results *in job order* (result `i` is job `i`'s output, regardless of
/// which worker finished when).
///
/// `threads == 1` degenerates to a plain sequential map with no thread
/// machinery at all, so a single-job run is bit-for-bit the reference
/// execution that parallel runs are compared against.
///
/// # Panics
///
/// Propagates a panic from any job once all workers have stopped.
pub fn run_jobs<T, F>(jobs: Vec<F>, threads: usize) -> Vec<T>
where
    T: Send,
    F: FnOnce() -> T + Send,
{
    let n = jobs.len();
    let threads = threads.clamp(1, n.max(1));
    if threads <= 1 {
        return jobs.into_iter().map(|f| f()).collect();
    }
    let next = AtomicUsize::new(0);
    let jobs: Vec<Mutex<Option<F>>> = jobs.into_iter().map(|f| Mutex::new(Some(f))).collect();
    let slots: Vec<Mutex<Option<T>>> = (0..n).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|s| {
        for _ in 0..threads {
            s.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let job = jobs[i].lock().unwrap().take().expect("each job index is claimed once");
                let out = job();
                *slots[i].lock().unwrap() = Some(out);
            });
        }
    });
    slots
        .into_iter()
        .map(|m| m.into_inner().unwrap().expect("scope joined every worker"))
        .collect()
}

/// Worker count to use when the caller passes `0` ("auto").
pub fn default_jobs() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// Spill-to-disk configuration: record each (program, variant) trace as
/// fixed-size segment files under a per-trace subdirectory of `dir` and
/// stream the replay wave from disk, bounding peak memory by O(segment
/// size) instead of O(trace size).
#[derive(Debug, Clone)]
pub struct SpillConfig {
    /// Root directory for segment files (one `<program>-<variant>/`
    /// subdirectory per captured trace; created as needed).
    pub dir: PathBuf,
    /// Ops per segment file; `0` means
    /// [`bioperf_trace::DEFAULT_SEGMENT_OPS`].
    pub segment_ops: usize,
}

impl SpillConfig {
    /// The effective segment size.
    pub fn segment_ops(&self) -> usize {
        if self.segment_ops == 0 {
            bioperf_trace::DEFAULT_SEGMENT_OPS
        } else {
            self.segment_ops
        }
    }

    /// The segment directory of one (program, variant) trace.
    fn trace_dir(&self, program: ProgramId, variant: Variant) -> PathBuf {
        self.dir.join(format!("{}-{}", program.name(), variant.label()))
    }
}

/// Configuration for [`run_suite`].
#[derive(Debug, Clone)]
pub struct SuiteConfig {
    /// Workload scale for every job.
    pub scale: Scale,
    /// Seed for every job (the suite is deterministic in it).
    pub seed: u64,
    /// Worker threads; `0` means [`default_jobs`].
    pub jobs: usize,
    /// Collect raw event metrics inside the cache/pipeline simulators.
    /// The paper-metric series and the phase timings are always
    /// collected; this switch only controls the per-access event sinks,
    /// which are the part with a (small) hot-loop cost.
    pub metrics: bool,
    /// Recorder capacity (in ops) for every captured trace; `0` means
    /// [`DEFAULT_CAPACITY`]. Small caps force the
    /// [`SuiteError::TraceOverflow`] path deterministically. In spill
    /// mode the cap bounds the *total* ops of a trace across all its
    /// segments, exactly as it bounds the one in-memory recording
    /// otherwise.
    pub trace_cap: usize,
    /// Spill captured traces to disk segments and stream the replay
    /// wave ([`None`] keeps recordings in memory). The replay output is
    /// byte-identical either way.
    pub spill: Option<SpillConfig>,
}

impl SuiteConfig {
    /// The effective recorder capacity ([`DEFAULT_CAPACITY`] when
    /// [`Self::trace_cap`] is `0`).
    pub fn capacity(&self) -> usize {
        if self.trace_cap == 0 {
            DEFAULT_CAPACITY
        } else {
            self.trace_cap
        }
    }
}

/// Wall-clock replay throughput, aggregated over the suite's replay
/// wave. Non-deterministic by nature: reported in the JSON `run`
/// section (`run/ops_per_sec/…`), never in the deterministic section.
#[derive(Debug, Clone, Default)]
pub struct ReplayThroughput {
    /// Ops decoded and simulated across all platform passes (each
    /// platform consumes its recording's ops once, even though one bank
    /// decode feeds every platform in the bank).
    pub replayed_ops: u64,
    /// Elapsed wall-clock of the whole replay wave, pool start to pool
    /// join. The `total` gauge divides by *this* — not by summed per-job
    /// CPU-seconds, which overlap on the pool and would under-report
    /// true aggregate throughput whenever jobs run in parallel.
    pub seconds: f64,
    /// Per-platform `(name, ops, seconds)` in [`PlatformConfig::all`]
    /// order. A bank job's elapsed time is split evenly across the
    /// platforms it drove, so the per-platform rates stay comparable
    /// CPU-time rates after the (program × variant) resharding; only
    /// `total` is a wall-clock rate.
    pub per_platform: Vec<(&'static str, u64, f64)>,
}

impl ReplayThroughput {
    /// Accumulates one platform's share of a replay job (its recording's
    /// ops and its even split of the job's elapsed time).
    fn add(&mut self, platform: &'static str, ops: u64, elapsed: Duration) {
        let secs = elapsed.as_secs_f64();
        self.replayed_ops += ops;
        if let Some(slot) = self.per_platform.iter_mut().find(|(name, _, _)| *name == platform) {
            slot.1 += ops;
            slot.2 += secs;
        } else {
            self.per_platform.push((platform, ops, secs));
        }
    }

    /// Aggregate replay throughput in ops per second, measured against
    /// the wave's elapsed wall-clock (0 if nothing ran).
    pub fn ops_per_sec(&self) -> f64 {
        if self.seconds > 0.0 {
            self.replayed_ops as f64 / self.seconds
        } else {
            0.0
        }
    }

    /// The `run/ops_per_sec` gauge object: one entry per platform plus
    /// the `total` aggregate.
    fn to_json(&self) -> Json {
        let mut entries: Vec<(String, Json)> = self
            .per_platform
            .iter()
            .map(|(name, ops, secs)| {
                let rate = if *secs > 0.0 { *ops as f64 / secs } else { 0.0 };
                (name.to_string(), Json::F64(rate))
            })
            .collect();
        entries.push(("total".to_string(), Json::F64(self.ops_per_sec())));
        Json::Object(entries)
    }
}

/// Everything the full suite produces: the nine characterization
/// reports (in [`ProgramId::ALL`] order) and the Table 8 evaluation
/// matrix (program-major in [`ProgramId::TRANSFORMED`] order).
#[derive(Debug)]
pub struct SuiteResult {
    /// Scale the suite ran at.
    pub scale: Scale,
    /// Seed the suite ran with.
    pub seed: u64,
    /// Worker threads actually used.
    pub workers: usize,
    /// Jobs scheduled on the pool across both waves: one prepare job per
    /// program plus one replay bank job per (program, variant).
    pub jobs: usize,
    /// One characterization report per program, in `ProgramId::ALL` order.
    pub reports: Vec<(ProgramId, CharacterizationReport)>,
    /// The runtime-evaluation matrix (Tables 7–8, Figure 9).
    pub eval: EvalMatrix,
    /// Every deterministic metric series: the paper metrics exported from
    /// the reports and the evaluation matrix, plus (when
    /// [`SuiteConfig::metrics`] was set) the simulators' raw event
    /// counters and histograms. Identical for every worker count.
    pub metrics: MetricSet,
    /// Wall-clock span timings per program × phase — non-deterministic by
    /// nature and therefore kept out of [`Self::deterministic_json`].
    pub timings: Timings,
    /// Replay-shard throughput (wall-clock; `run` section only).
    pub replay: ReplayThroughput,
}

impl SuiteResult {
    /// The deterministic section of the suite document: run
    /// configuration (scale, seed — but *not* worker count) plus every
    /// metric series, names sorted. Byte-identical across worker counts;
    /// the `suite_determinism` integration test compares exactly these
    /// bytes for `--jobs 1` vs `--jobs 4`.
    pub fn deterministic_json(&self) -> Json {
        let mut entries = vec![(
            "config".to_string(),
            Json::object(vec![
                ("scale", Json::str(self.scale.name())),
                ("seed", Json::U64(self.seed)),
                ("programs", Json::U64(self.reports.len() as u64)),
                ("eval_cells", Json::U64(self.eval.cells.len() as u64)),
            ]),
        )];
        entries.extend(self.metrics.to_json_entries());
        Json::Object(entries)
    }

    /// The full suite document: `schema`, a non-deterministic `run`
    /// section (worker count, pool utilization, replay throughput,
    /// wall-clock timings), and the
    /// [`deterministic`](Self::deterministic_json) section.
    pub fn to_json(&self) -> Json {
        let run = Json::object(vec![
            ("jobs", Json::U64(self.jobs as u64)),
            ("workers", Json::U64(self.workers as u64)),
            ("jobs_per_worker", Json::F64(jobs_per_worker(self.jobs, self.workers))),
            ("replayed_ops", Json::U64(self.replay.replayed_ops)),
            ("ops_per_sec", self.replay.to_json()),
            ("timings", self.timings.to_json()),
        ]);
        Json::object(vec![
            ("schema", Json::str(SUITE_SCHEMA)),
            ("run", run),
            ("deterministic", self.deterministic_json()),
        ])
    }
}

/// The `run/jobs_per_worker` gauge: jobs divided by workers, clamped to
/// `0` when no worker ran and rounded to two decimals so the rendering
/// is always a stable, short, finite decimal (the JSON layer cannot
/// represent NaN or infinity).
fn jobs_per_worker(jobs: usize, workers: usize) -> f64 {
    if workers == 0 {
        return 0.0;
    }
    let ratio = jobs as f64 / workers as f64;
    if !ratio.is_finite() {
        return 0.0;
    }
    (ratio * 100.0).round() / 100.0
}

/// One captured trace, either resident in memory or spilled to disk
/// segments. Replay banks treat both identically; only the streaming
/// mechanics (and peak memory) differ.
#[derive(Clone)]
enum TraceStore {
    Memory(Arc<Recording>),
    Segmented(Arc<SegmentedRecording>),
}

impl TraceStore {
    fn len(&self) -> usize {
        match self {
            TraceStore::Memory(r) => r.len(),
            TraceStore::Segmented(s) => s.len(),
        }
    }

    /// Single-decode fan-out over a bank of consumers (segmented stores
    /// stream with the next segment prefetched in the background).
    fn replay_bank<C: TraceConsumer>(&self, bank: &mut [C]) -> Result<(), SegmentError> {
        match self {
            TraceStore::Memory(r) => {
                r.replay_bank(bank);
                Ok(())
            }
            TraceStore::Segmented(s) => s.replay_bank(bank),
        }
    }
}

/// Both captured traces of one transformable program, shared with the
/// replay bank jobs.
struct ProgramRecordings {
    original: TraceStore,
    transformed: TraceStore,
}

/// Output of one per-program prepare job.
struct PreparedProgram {
    report: CharacterizationReport,
    /// Characterization events, already namespaced `events/<name>/cache/…`
    /// (empty unless event collection was requested).
    events: MetricSet,
    /// This job's wall-clock phase spans.
    timings: Timings,
    /// Captured traces; `None` for the three programs the paper
    /// characterized but did not transform.
    recordings: Option<ProgramRecordings>,
}

/// Output of one replay bank job: every applicable platform's pass over
/// one recording, produced by a single decode of the packed stream.
struct BankOutput {
    /// `(platform result, raw events)` aligned with the job's platform
    /// list (events are un-namespaced and empty unless requested).
    results: Vec<(SimResult, MetricSet)>,
    /// Ops in the recording (what *each* platform consumed).
    ops: u64,
    /// Wall-clock of the whole bank pass (shared decode included).
    elapsed: Duration,
}

/// The platform models applicable to `program`, in
/// [`PlatformConfig::all`] order (dnapenny has no Itanium cell).
fn applicable_platforms(program: ProgramId) -> Vec<PlatformConfig> {
    PlatformConfig::all()
        .into_iter()
        .filter(|p| EvalMatrix::cell_applicable(program, p.name))
        .collect()
}

/// Executes one variant once and captures its trace.
pub(crate) fn record_variant(
    program: ProgramId,
    variant: Variant,
    scale: Scale,
    seed: u64,
    capacity: usize,
) -> Result<Recording, SuiteError> {
    let mut tape = Tape::new(Recorder::with_capacity(capacity));
    registry::run(&mut tape, program, variant, scale, seed);
    let (static_program, rec) = tape.finish();
    if rec.overflowed() {
        return Err(SuiteError::TraceOverflow { program, variant, captured: rec.len() });
    }
    Ok(rec.into_recording(static_program))
}

/// Executes one variant once, spilling its trace to disk segments.
fn record_variant_spilled(
    program: ProgramId,
    variant: Variant,
    scale: Scale,
    seed: u64,
    capacity: usize,
    spill: &SpillConfig,
) -> Result<SegmentedRecording, SuiteError> {
    let seg_err = |error| SuiteError::Segment { program, variant, error };
    let recorder = SpillRecorder::to_dir(spill.trace_dir(program, variant), spill.segment_ops(), capacity)
        .map_err(seg_err)?;
    let mut tape = Tape::new(recorder);
    registry::run(&mut tape, program, variant, scale, seed);
    let (static_program, rec) = tape.finish();
    if rec.overflowed() {
        return Err(SuiteError::TraceOverflow { program, variant, captured: rec.len() });
    }
    rec.into_segmented(static_program).map_err(seg_err)
}

/// One prepare job: characterize `program` from a single instrumented
/// execution and, if it has a load-transformed variant, capture both
/// variants' traces for the replay wave. Every phase runs under a
/// wall-clock span (`<program>/trace`, `/characterize`); with `events`
/// set the characterizer also collects raw cache events, namespaced
/// `events/<program>/cache/…`.
fn prepare_program(
    program: ProgramId,
    scale: Scale,
    seed: u64,
    events: bool,
    capacity: usize,
    spill: Option<SpillConfig>,
) -> Result<PreparedProgram, SuiteError> {
    let name = program.name();
    let mut timings = Timings::new();
    let mut metrics = MetricSet::new();
    let characterizer = if events { Characterizer::with_metrics() } else { Characterizer::new() };

    if !program.is_transformable() {
        let mut tape = Tape::new(characterizer);
        timings.time(&format!("{name}/trace"), || {
            registry::run(&mut tape, program, Variant::Original, scale, seed);
        });
        let (static_program, characterizer) = tape.finish();
        let report = timings
            .time(&format!("{name}/characterize"), || characterizer.into_report(static_program, 10));
        metrics.merge_prefixed(&format!("events/{name}/cache/"), &report.events);
        return Ok(PreparedProgram { report, events: metrics, timings, recordings: None });
    }

    // Single original-variant execution: the tuple consumer fans the op
    // stream out to the characterizer and the replay recorder — in-memory
    // or spilling, per the config — at once.
    let (original, report) = match &spill {
        None => {
            let mut tape = Tape::new((characterizer, Recorder::with_capacity(capacity)));
            timings.time(&format!("{name}/trace"), || {
                registry::run(&mut tape, program, Variant::Original, scale, seed);
            });
            let (static_program, (characterizer, rec)) = tape.finish();
            if rec.overflowed() {
                return Err(SuiteError::TraceOverflow {
                    program,
                    variant: Variant::Original,
                    captured: rec.len(),
                });
            }
            let original = TraceStore::Memory(Arc::new(rec.into_recording(static_program.clone())));
            let report = timings.time(&format!("{name}/characterize"), || {
                characterizer.into_report(static_program, 10)
            });
            (original, report)
        }
        Some(spill) => {
            let seg_err =
                |error| SuiteError::Segment { program, variant: Variant::Original, error };
            let recorder = SpillRecorder::to_dir(
                spill.trace_dir(program, Variant::Original),
                spill.segment_ops(),
                capacity,
            )
            .map_err(seg_err)?;
            let mut tape = Tape::new((characterizer, recorder));
            timings.time(&format!("{name}/trace"), || {
                registry::run(&mut tape, program, Variant::Original, scale, seed);
            });
            let (static_program, (characterizer, rec)) = tape.finish();
            if rec.overflowed() {
                return Err(SuiteError::TraceOverflow {
                    program,
                    variant: Variant::Original,
                    captured: rec.len(),
                });
            }
            let segmented = rec.into_segmented(static_program.clone()).map_err(seg_err)?;
            let original = TraceStore::Segmented(Arc::new(segmented));
            let report = timings.time(&format!("{name}/characterize"), || {
                characterizer.into_report(static_program, 10)
            });
            (original, report)
        }
    };
    metrics.merge_prefixed(&format!("events/{name}/cache/"), &report.events);

    let transformed = timings.time(&format!("{name}/trace"), || match &spill {
        None => record_variant(program, Variant::LoadTransformed, scale, seed, capacity)
            .map(|rec| TraceStore::Memory(Arc::new(rec))),
        Some(spill) => {
            record_variant_spilled(program, Variant::LoadTransformed, scale, seed, capacity, spill)
                .map(|seg| TraceStore::Segmented(Arc::new(seg)))
        }
    })?;
    Ok(PreparedProgram {
        report,
        events: metrics,
        timings,
        recordings: Some(ProgramRecordings { original, transformed }),
    })
}

/// Replays one trace store through a bank of platform models with a
/// single decode pass, timing the whole pass. Segmented stores stream
/// from disk and can fail with a typed segment error.
fn replay_bank_job(
    store: &TraceStore,
    platforms: &[PlatformConfig],
    events: bool,
) -> Result<BankOutput, SegmentError> {
    let mut sims: Vec<CycleSim> = platforms
        .iter()
        .map(|&p| if events { CycleSim::new(p).with_metrics() } else { CycleSim::new(p) })
        .collect();
    let start = Instant::now();
    store.replay_bank(&mut sims)?;
    let elapsed = start.elapsed();
    let results = sims
        .into_iter()
        .map(|mut sim| {
            let events = sim.take_metrics();
            (sim.into_result(), events)
        })
        .collect();
    Ok(BankOutput { results, ops: store.len() as u64, elapsed })
}

/// One program's shard-merged replay output.
#[derive(Default)]
struct ProgramReplay {
    /// Table 8 cells, platform-major in [`PlatformConfig::all`] order.
    cells: Vec<EvalCell>,
    /// Simulator events, namespaced
    /// `events/<name>/<platform>/{original|transformed}/…`.
    events: MetricSet,
}

/// Bank-merged output of the replay wave.
struct BankedReplay {
    /// Aligned with the `recorded` input (one entry per program).
    per_program: Vec<ProgramReplay>,
    /// `<name>/replay` spans, one per bank job.
    timings: Timings,
    throughput: ReplayThroughput,
    /// Bank jobs scheduled.
    jobs: usize,
}

/// The replay wave: one bank job per (program, variant), scheduled
/// together on the pool so recordings of different programs
/// load-balance. Each job decodes its recording exactly once and drives
/// every applicable platform model off the shared stream. The job
/// enumeration — program (input order) × variant (original first) — is
/// fixed, and outputs are merged by walking the same enumeration, so
/// results are identical for any worker count.
fn replay_banked(
    recorded: &[(ProgramId, ProgramRecordings)],
    threads: usize,
    events: bool,
) -> Result<BankedReplay, SuiteError> {
    let mut jobs = Vec::new();
    for (program, recs) in recorded {
        let platforms: Arc<Vec<PlatformConfig>> = Arc::new(applicable_platforms(*program));
        for store in [&recs.original, &recs.transformed] {
            let store = store.clone();
            let platforms = Arc::clone(&platforms);
            jobs.push(move || replay_bank_job(&store, &platforms, events));
        }
    }
    let bank_jobs = jobs.len();
    let wave = Instant::now();
    let outputs = run_jobs(jobs, threads);
    let wall = wave.elapsed();

    let mut per_program = Vec::with_capacity(recorded.len());
    let mut timings = Timings::new();
    let mut throughput = ReplayThroughput::default();
    let mut out = outputs.into_iter();
    for (program, _) in recorded {
        let name = program.name();
        let mut merged = ProgramReplay::default();
        let platforms = applicable_platforms(*program);
        // The fixed enumeration pairs job outputs back to (program,
        // variant), so a streamed-replay failure names its trace.
        let seg_err = |variant, error| SuiteError::Segment { program: *program, variant, error };
        let original = out
            .next()
            .expect("one bank per enumeration slot")
            .map_err(|e| seg_err(Variant::Original, e))?;
        let transformed = out
            .next()
            .expect("one bank per enumeration slot")
            .map_err(|e| seg_err(Variant::LoadTransformed, e))?;
        for bank in [&original, &transformed] {
            timings.record(&format!("{name}/replay"), bank.elapsed);
        }
        for (i, platform) in platforms.iter().enumerate() {
            for (bank, variant) in [(&original, "original"), (&transformed, "transformed")] {
                throughput.add(platform.name, bank.ops, bank.elapsed / platforms.len() as u32);
                merged.events.merge_prefixed(
                    &format!("events/{name}/{}/{variant}/", platform.name),
                    &bank.results[i].1,
                );
            }
            merged.cells.push(EvalCell {
                program: *program,
                platform: platform.name,
                original: original.results[i].0,
                transformed: transformed.results[i].0,
            });
        }
        per_program.push(merged);
    }
    throughput.seconds = wall.as_secs_f64();
    Ok(BankedReplay { per_program, timings, throughput, jobs: bank_jobs })
}

/// Runs the nine-program characterization suite and the six-program ×
/// four-platform runtime evaluation as two parallel job waves: per-
/// program prepare jobs, then per-(program, variant) replay bank jobs —
/// each decoding its shared recording once for all platform models.
pub fn run_suite(cfg: SuiteConfig) -> Result<SuiteResult, SuiteError> {
    let threads = if cfg.jobs == 0 { default_jobs() } else { cfg.jobs };

    // Wave 1: trace + characterize + record, one job per program.
    let capacity = cfg.capacity();
    let jobs: Vec<_> = ProgramId::ALL
        .into_iter()
        .map(|program| {
            let spill = cfg.spill.clone();
            move || prepare_program(program, cfg.scale, cfg.seed, cfg.metrics, capacity, spill)
        })
        .collect();
    let results = run_jobs(jobs, threads);

    // Merge per-job outputs in job order, so the merged metric set is the
    // same whatever order the workers finished in.
    let mut reports = Vec::with_capacity(ProgramId::ALL.len());
    let mut recorded: Vec<(ProgramId, ProgramRecordings)> = Vec::new();
    let mut metrics = MetricSet::new();
    let mut timings = Timings::new();
    for (program, result) in ProgramId::ALL.into_iter().zip(results) {
        let prepared = result?;
        metrics.merge(&prepared.events);
        timings.merge(&prepared.timings);
        reports.push((program, prepared.report));
        if let Some(recordings) = prepared.recordings {
            recorded.push((program, recordings));
        }
    }

    // Wave 2: replay banks across all programs at once.
    let replay = replay_banked(&recorded, threads, cfg.metrics)?;
    timings.merge(&replay.timings);
    for merged in &replay.per_program {
        metrics.merge(&merged.events);
    }
    // Emit Table 8 cells program-major in the paper's (TRANSFORMED)
    // order, independent of ALL's ordering.
    let mut cells = Vec::new();
    for program in ProgramId::TRANSFORMED {
        if let Some(i) = recorded.iter().position(|(p, _)| *p == program) {
            cells.extend(replay.per_program[i].cells.iter().copied());
        }
    }
    let eval = EvalMatrix { cells };
    // The paper-metric series are always exported, events switch or not.
    for (program, report) in &reports {
        report.export_metrics(&mut metrics, &format!("char/{}/", program.name()));
    }
    eval.export_metrics(&mut metrics, "eval/");
    Ok(SuiteResult {
        scale: cfg.scale,
        seed: cfg.seed,
        workers: threads,
        jobs: reports.len() + replay.jobs,
        reports,
        eval,
        metrics,
        timings,
        replay: replay.throughput,
    })
}

/// Characterizes every program in parallel; results in
/// [`ProgramId::ALL`] order. The parallel backend behind the
/// table/figure binaries that loop over all nine programs.
pub fn characterize_all(
    scale: Scale,
    seed: u64,
    jobs: usize,
) -> Vec<(ProgramId, CharacterizationReport)> {
    let threads = if jobs == 0 { default_jobs() } else { jobs };
    let work: Vec<_> = ProgramId::ALL
        .into_iter()
        .map(|program| move || crate::characterize::characterize_program(program, scale, seed))
        .collect();
    ProgramId::ALL.into_iter().zip(run_jobs(work, threads)).collect()
}

/// Runs the Table 8 evaluation in parallel: per program, each variant is
/// executed once (wave 1), then each recording is decoded once by a
/// replay bank job that drives every platform model (wave 2). Cell
/// order matches [`EvalMatrix::run`].
pub fn evaluate_all(scale: Scale, seed: u64, jobs: usize) -> Result<EvalMatrix, SuiteError> {
    let threads = if jobs == 0 { default_jobs() } else { jobs };
    let work: Vec<_> = ProgramId::TRANSFORMED
        .into_iter()
        .map(|program| {
            move || -> Result<ProgramRecordings, SuiteError> {
                Ok(ProgramRecordings {
                    original: TraceStore::Memory(Arc::new(record_variant(
                        program,
                        Variant::Original,
                        scale,
                        seed,
                        DEFAULT_CAPACITY,
                    )?)),
                    transformed: TraceStore::Memory(Arc::new(record_variant(
                        program,
                        Variant::LoadTransformed,
                        scale,
                        seed,
                        DEFAULT_CAPACITY,
                    )?)),
                })
            }
        })
        .collect();
    let mut recorded = Vec::with_capacity(ProgramId::TRANSFORMED.len());
    for (program, result) in ProgramId::TRANSFORMED.into_iter().zip(run_jobs(work, threads)) {
        recorded.push((program, result?));
    }
    let replay = replay_banked(&recorded, threads, false)?;
    Ok(EvalMatrix { cells: replay.per_program.into_iter().flat_map(|p| p.cells).collect() })
}

/// Schema tag of the conformance report (`conform --metrics`); bump on
/// breaking shape changes.
pub const CONFORM_SCHEMA: &str = "bioperf-conform/v1";

/// Configuration for [`run_conform`].
#[derive(Debug, Clone)]
pub struct ConformConfig {
    /// Seeded fuzz cases to run.
    pub cases: u64,
    /// Base seed; case `i`'s stream seed is derived from it.
    pub seed: u64,
    /// Worker threads; `0` means [`default_jobs`].
    pub jobs: usize,
    /// Arm this catalogued fault for the fuzz run (mutation mode).
    pub inject: Option<FaultId>,
    /// Also cross-check the nine real program traces end-to-end
    /// (ignored in mutation mode, where only the fuzzer runs).
    pub check_programs: bool,
    /// Directory for shrunk counterexample artifacts (written only when
    /// a *clean* run diverges — in mutation mode divergence is the
    /// expected outcome).
    pub out_dir: Option<PathBuf>,
}

/// End-to-end differential check of one real program's captured trace.
#[derive(Debug, Clone)]
pub struct ProgramCrossCheck {
    /// Program that was traced.
    pub program: ProgramId,
    /// Ops in the recorded trace.
    pub ops: u64,
    /// Platform models replayed (optimized and reference each).
    pub platforms: usize,
    /// First mismatch found, if any.
    pub divergence: Option<String>,
}

/// Everything [`run_conform`] produces.
#[derive(Debug)]
pub struct ConformResult {
    /// Fuzz cases run.
    pub cases: u64,
    /// Base seed.
    pub seed: u64,
    /// Worker threads actually used.
    pub workers: usize,
    /// The fault armed during the run, if any.
    pub injected: Option<FaultId>,
    /// Total generated stream ops across all cases.
    pub fuzz_ops: u64,
    /// The divergent cases, in case order, each carrying its shrunk
    /// counterexample.
    pub divergent: Vec<CaseOutcome>,
    /// Per-program end-to-end cross-checks (empty unless requested).
    pub programs: Vec<ProgramCrossCheck>,
    /// Counterexample files written to [`ConformConfig::out_dir`].
    pub artifacts: Vec<PathBuf>,
    /// Wall-clock duration of the whole run.
    pub elapsed: Duration,
}

impl ConformResult {
    /// Index of the first divergent case (the detection latency that
    /// mutation mode compares against [`FaultId::budget`]).
    pub fn first_detection(&self) -> Option<u64> {
        self.divergent.first().map(|o| o.index)
    }

    /// Whether every check passed.
    pub fn is_clean(&self) -> bool {
        self.divergent.is_empty() && self.programs.iter().all(|p| p.divergence.is_none())
    }

    /// The deterministic conformance report. Case outcomes are in case
    /// order and shrinking is deterministic, so this is byte-identical
    /// for every worker count (`conform --jobs 1` vs `--jobs 4`).
    pub fn deterministic_json(&self) -> Json {
        let divergent: Vec<Json> = self
            .divergent
            .iter()
            .map(|o| {
                let ce = o.divergence.as_ref().expect("divergent cases carry a counterexample");
                Json::object(vec![
                    ("case", Json::U64(o.index)),
                    ("stream_seed", Json::U64(o.seed)),
                    ("platform", Json::str(o.platform)),
                    ("component", Json::str(ce.component)),
                    ("witness_ops", Json::U64(ce.ops.len() as u64)),
                    ("detail", Json::str(ce.detail.clone())),
                ])
            })
            .collect();
        let programs: Vec<Json> = self
            .programs
            .iter()
            .map(|p| {
                Json::object(vec![
                    ("program", Json::str(p.program.name())),
                    ("ops", Json::U64(p.ops)),
                    ("platforms", Json::U64(p.platforms as u64)),
                    ("divergence", p.divergence.clone().map_or(Json::Null, Json::Str)),
                ])
            })
            .collect();
        Json::object(vec![
            (
                "config",
                Json::object(vec![
                    ("cases", Json::U64(self.cases)),
                    ("seed", Json::U64(self.seed)),
                    (
                        "fault",
                        Json::str(self.injected.map_or("none", FaultId::name)),
                    ),
                ]),
            ),
            (
                "fuzz",
                Json::object(vec![
                    ("ops", Json::U64(self.fuzz_ops)),
                    ("divergences", Json::U64(self.divergent.len() as u64)),
                    ("first_detection", self.first_detection().map_or(Json::Null, Json::U64)),
                ]),
            ),
            ("divergent", Json::Array(divergent)),
            ("programs", Json::Array(programs)),
        ])
    }

    /// The full conformance document: `schema` plus the
    /// [`deterministic`](Self::deterministic_json) report. Unlike the
    /// suite document there is no `run` section — worker count and
    /// throughput go to stderr — so the whole file is byte-identical
    /// across worker counts.
    pub fn to_json(&self) -> Json {
        Json::object(vec![
            ("schema", Json::str(CONFORM_SCHEMA)),
            ("deterministic", self.deterministic_json()),
        ])
    }
}

/// Streams a recording through the segment codec (spill → standalone
/// per-segment decode) and diffs each replayed op against the reference
/// tape. Small segments force many header-state handoffs per trace.
fn segment_cross_check(recording: &Recording, reference: &[MicroOp]) -> Option<String> {
    struct Diff<'a> {
        expected: &'a [MicroOp],
        at: usize,
        mismatch: Option<String>,
    }
    impl TraceConsumer for Diff<'_> {
        fn consume(&mut self, op: &bioperf_isa::MicroOp, _p: &bioperf_isa::Program) {
            if self.mismatch.is_none() {
                match self.expected.get(self.at) {
                    Some(want) if want == op => {}
                    want => {
                        self.mismatch = Some(format!(
                            "segment: op {}: streamed {op:?}, reference {want:?}",
                            self.at
                        ))
                    }
                }
            }
            self.at += 1;
        }
    }

    let mut spill = SpillRecorder::in_memory(4096, usize::MAX);
    recording.replay(&mut spill);
    let segmented = match spill.into_segmented(recording.program().clone()) {
        Ok(s) => s,
        Err(e) => return Some(format!("segment: spill failed: {e}")),
    };
    let mut diff = Diff { expected: reference, at: 0, mismatch: None };
    if let Err(e) = segmented.replay(&mut diff) {
        return Some(format!("segment: streamed replay failed: {e}"));
    }
    if diff.mismatch.is_none() && diff.at != reference.len() {
        return Some(format!("segment: streamed {} ops, reference {}", diff.at, reference.len()));
    }
    diff.mismatch
}

/// Traces `program` once with a `(RefTape, Recorder)` fan-out and diffs
/// the packed trace against the unpacked reference tape — both the
/// in-memory decode and the spill-to-segments streamed decode — then
/// replays the recording once through a *bank* of optimized platform
/// simulators — the exact single-decode fan-out the suite's replay wave
/// uses — and diffs each bank member against a standalone
/// reference-pipeline replay of the same platform.
fn cross_check_program(program: ProgramId, seed: u64) -> ProgramCrossCheck {
    let mut tape = Tape::new((RefTape::new(), Recorder::new()));
    registry::run(&mut tape, program, Variant::Original, Scale::Test, seed);
    let (static_program, (reference, recorder)) = tape.finish();
    let ops = recorder.len() as u64;
    let fail = |divergence: String| ProgramCrossCheck {
        program,
        ops,
        platforms: 0,
        divergence: Some(divergence),
    };
    if recorder.overflowed() {
        return fail(format!("trace overflowed the recorder after {ops} ops"));
    }
    let recording = recorder.into_recording(static_program);

    // Codec: the packed recording must decode to the unpacked tape.
    if recording.len() != reference.len() {
        return fail(format!("codec: packed {} ops, reference {}", recording.len(), reference.len()));
    }
    for (i, decoded) in recording.iter().enumerate() {
        if decoded != reference.ops[i] {
            return fail(format!(
                "codec: op {i}: packed {decoded:?}, reference {:?}",
                reference.ops[i]
            ));
        }
    }

    // Block decoder: replaying through the blocked path (the production
    // replay loop) into a fresh reference tape must also reproduce the
    // per-op decode. An odd non-default block size forces several
    // interior block edges on Test-scale traces, pinning the cross-block
    // cursor carry.
    for block_ops in [257usize, bioperf_trace::BLOCK_OPS] {
        let mut replayed = RefTape::new();
        recording.replay_bank_blocks(std::slice::from_mut(&mut replayed), block_ops);
        if replayed.len() != reference.len() {
            return fail(format!(
                "block: {block_ops}-op blocks replayed {} ops, reference {}",
                replayed.len(),
                reference.len()
            ));
        }
        for (i, (blocked, per_op)) in replayed.ops.iter().zip(&reference.ops).enumerate() {
            if blocked != per_op {
                return fail(format!(
                    "block: {block_ops}-op blocks op {i}: blocked {blocked:?}, reference {per_op:?}"
                ));
            }
        }
    }

    // Segment codec: spilling to standalone segments and streaming them
    // back must also reproduce the reference tape exactly.
    if let Some(divergence) = segment_cross_check(&recording, &reference.ops) {
        return fail(divergence);
    }

    // Pipelines: one bank replay drives every optimized simulator off a
    // single decode (the suite's production path); each result is then
    // diffed against an independent reference-pipeline replay, so a bug
    // in the shared-decode fan-out itself cannot hide.
    let platforms = applicable_platforms(program);
    let replayed = platforms.len();
    let mut bank: Vec<CycleSim> = platforms.iter().map(|&p| CycleSim::new(p)).collect();
    recording.replay_bank(&mut bank);
    for (platform, sim) in platforms.into_iter().zip(&bank) {
        let mut reference = RefPipeline::new(platform);
        recording.replay(&mut reference);
        let fast = sim.result();
        let slow = reference.result();
        if fast != slow {
            return fail(format!("{}: optimized {fast:?}, reference {slow:?}", platform.name));
        }
    }
    ProgramCrossCheck { program, ops, platforms: replayed, divergence: None }
}

/// Writes one shrunk counterexample as a self-contained text artifact.
fn write_counterexample(dir: &Path, base_seed: u64, outcome: &CaseOutcome) -> io::Result<PathBuf> {
    use std::fmt::Write as _;
    let ce = outcome.divergence.as_ref().expect("only divergent cases are written");
    let mut text = String::new();
    let _ = writeln!(text, "conformance counterexample");
    let _ = writeln!(text, "base seed:   {base_seed}");
    let _ = writeln!(text, "case index:  {}", outcome.index);
    let _ = writeln!(text, "stream seed: {:#x}", outcome.seed);
    let _ = writeln!(text, "platform:    {}", outcome.platform);
    let _ = writeln!(text, "component:   {}", ce.component);
    let _ = writeln!(text, "detail:      {}", ce.detail);
    let _ = writeln!(text);
    let _ = writeln!(
        text,
        "reproduce: bioperf-loadchar conform --cases {} --seed {base_seed} --jobs 1",
        outcome.index + 1
    );
    let _ = writeln!(
        text,
        "(the full {}-op stream is generate_stream({:#x}); the {} ops below are the",
        outcome.ops,
        outcome.seed,
        ce.ops.len()
    );
    let _ = writeln!(text, "removal-shrunk witness — see DESIGN.md section 6)");
    let _ = writeln!(text);
    for (i, op) in ce.ops.iter().enumerate() {
        let _ = writeln!(text, "[{i:3}] {op:?}");
    }
    let path = dir.join(format!("case-{:05}.txt", outcome.index));
    std::fs::write(&path, text)?;
    Ok(path)
}

/// Runs the conformance harness: seeded differential fuzzing of every
/// simulator against its reference model (one pool job per case), plus
/// — in clean mode — the nine real program trace cross-checks.
///
/// Mutation mode ([`ConformConfig::inject`]) arms the fault *before*
/// spawning workers (the `SeqCst` store happens-before every job) and
/// disarms it before returning, whatever the outcome.
pub fn run_conform(cfg: &ConformConfig) -> io::Result<ConformResult> {
    let start = Instant::now();
    let threads = if cfg.jobs == 0 { default_jobs() } else { cfg.jobs };

    match cfg.inject {
        Some(f) => fault::arm(f),
        None => fault::disarm(),
    }
    let seed = cfg.seed;
    let jobs: Vec<_> = (0..cfg.cases).map(|index| move || fuzz::run_case(seed, index)).collect();
    let outcomes = run_jobs(jobs, threads);

    // The sweep's cell merge runs above the op-level fuzzer's horizon, so
    // it gets its own differential check: a tiny sweep through the
    // production merge path diffed against direct per-cell replays. Runs
    // while the fault is still armed — it is the detector for
    // `sweep-merge-order` — and in clean full-check mode.
    let sweep_divergence = if cfg.inject == Some(FaultId::SweepMergeOrder)
        || (cfg.inject.is_none() && cfg.check_programs)
    {
        crate::sweep::sweep_merge_self_check(seed)
    } else {
        None
    };
    // The factored sweep's annotation pipeline sits above the fuzzer's
    // horizon too (fuzz replays own live hierarchies): its detector is
    // a factored-vs-unfactored diff of a tiny sweep plus an analytic
    // stack-distance cross-check of the cache pass — the detector for
    // `factored-annotation-skew`, also run in clean full-check mode.
    let factor_divergence = if cfg.inject == Some(FaultId::FactoredAnnotationSkew)
        || (cfg.inject.is_none() && cfg.check_programs)
    {
        crate::sweep::sweep_factor_self_check(seed)
    } else {
        None
    };
    fault::disarm();

    let fuzz_ops = outcomes.iter().map(|o| o.ops as u64).sum();
    let mut divergent: Vec<CaseOutcome> =
        outcomes.into_iter().filter(|o| o.divergence.is_some()).collect();
    if let Some(detail) = sweep_divergence {
        divergent.push(CaseOutcome {
            index: cfg.cases,
            seed,
            platform: "sweep",
            ops: 0,
            divergence: Some(fuzz::CounterExample {
                component: "sweep-merge",
                detail,
                ops: Vec::new(),
            }),
        });
    }
    if let Some(detail) = factor_divergence {
        divergent.push(CaseOutcome {
            index: cfg.cases + 1,
            seed,
            platform: "sweep",
            ops: 0,
            divergence: Some(fuzz::CounterExample {
                component: "sweep-factor",
                detail,
                ops: Vec::new(),
            }),
        });
    }

    let programs = if cfg.inject.is_none() && cfg.check_programs {
        let jobs: Vec<_> = ProgramId::ALL
            .into_iter()
            .map(|program| move || cross_check_program(program, seed))
            .collect();
        run_jobs(jobs, threads)
    } else {
        Vec::new()
    };

    let mut artifacts = Vec::new();
    if cfg.inject.is_none() && !divergent.is_empty() {
        if let Some(dir) = &cfg.out_dir {
            std::fs::create_dir_all(dir)?;
            for outcome in &divergent {
                artifacts.push(write_counterexample(dir, cfg.seed, outcome)?);
            }
        }
    }

    Ok(ConformResult {
        cases: cfg.cases,
        seed: cfg.seed,
        workers: threads,
        injected: cfg.inject,
        fuzz_ops,
        divergent,
        programs,
        artifacts,
        elapsed: start.elapsed(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_jobs_preserves_job_order() {
        let jobs: Vec<_> = (0..32).map(|i| move || i * 10).collect();
        let seq = run_jobs(jobs, 1);
        let jobs: Vec<_> = (0..32).map(|i| move || i * 10).collect();
        let par = run_jobs(jobs, 8);
        assert_eq!(seq, par);
        assert_eq!(seq, (0..32).map(|i| i * 10).collect::<Vec<_>>());
    }

    #[test]
    fn run_jobs_handles_more_threads_than_jobs() {
        let jobs: Vec<_> = (0..3).map(|i| move || i).collect();
        assert_eq!(run_jobs(jobs, 64), vec![0, 1, 2]);
        let none: Vec<Box<dyn FnOnce() -> i32 + Send>> = Vec::new();
        assert!(run_jobs(none, 4).is_empty());
    }

    #[test]
    fn single_trace_job_matches_direct_characterization() {
        // The tuple fan-out execution inside a prepare job must produce
        // the same characterization as a dedicated characterization run,
        // and capture both variants' traces for the replay wave.
        let direct =
            crate::characterize::characterize_program(ProgramId::Hmmsearch, Scale::Test, 7);
        let job =
            prepare_program(ProgramId::Hmmsearch, Scale::Test, 7, false, DEFAULT_CAPACITY, None)
                .expect("prepare");
        assert_eq!(direct.mix, job.report.mix);
        assert_eq!(direct.cache, job.report.cache);
        assert_eq!(direct.sequences.loads_to_branch, job.report.sequences.loads_to_branch);
        let recordings = job.recordings.expect("hmmsearch is transformable");
        assert!(recordings.original.len() > 0);
        assert!(recordings.transformed.len() > 0);
    }

    #[test]
    fn replayed_platform_sims_match_direct_execution() {
        // Record-once + bank replay must equal running the kernel
        // directly into each platform model.
        let direct = crate::evaluate::evaluate_program(
            ProgramId::Predator,
            PlatformConfig::alpha21264(),
            Scale::Test,
            5,
        );
        let recording =
            record_variant(ProgramId::Predator, Variant::Original, Scale::Test, 5, DEFAULT_CAPACITY)
                .expect("record");
        let store = TraceStore::Memory(Arc::new(recording));
        let platforms = applicable_platforms(ProgramId::Predator);
        let bank = replay_bank_job(&store, &platforms, false).expect("bank");
        assert_eq!(bank.results.len(), platforms.len());
        let alpha = platforms
            .iter()
            .position(|p| p.name == PlatformConfig::alpha21264().name)
            .expect("alpha is applicable");
        assert_eq!(bank.results[alpha].0.cycles, direct.original.cycles);
        assert_eq!(bank.results[alpha].0.instructions, direct.original.instructions);
        assert_eq!(bank.ops, store.len() as u64);
    }

    #[test]
    fn jobs_per_worker_gauge_is_clamped_and_rounded() {
        // Zero-worker edge: clamp to 0.0 instead of emitting inf/NaN,
        // which the JSON layer cannot represent.
        assert_eq!(jobs_per_worker(7, 0), 0.0);
        assert_eq!(jobs_per_worker(0, 0), 0.0);
        // One-worker edge: exact integer ratio survives the rounding.
        assert_eq!(jobs_per_worker(21, 1), 21.0);
        assert_eq!(jobs_per_worker(0, 1), 0.0);
        // Non-terminating ratios render as a stable two-decimal value.
        assert_eq!(jobs_per_worker(1, 3), 0.33);
        assert_eq!(jobs_per_worker(2, 3), 0.67);
        assert_eq!(jobs_per_worker(21, 2), 10.5);
    }

    #[test]
    fn replay_throughput_total_uses_wave_wall_clock() {
        // Per-platform seconds accumulate (CPU-time style), but the
        // aggregate divides by the wave's elapsed wall-clock, set once —
        // summed shard seconds would under-report parallel throughput.
        let mut t = ReplayThroughput::default();
        t.add("A", 1_000, Duration::from_secs(2));
        t.add("B", 1_000, Duration::from_secs(2));
        t.seconds = 2.0; // both platform passes overlapped on the pool
        assert_eq!(t.ops_per_sec(), 1_000.0, "2k ops in 2s of wall-clock");
        let a = &t.per_platform[0];
        assert_eq!((a.0, a.1, a.2), ("A", 1_000, 2.0));

        let empty = ReplayThroughput::default();
        assert_eq!(empty.ops_per_sec(), 0.0, "no replay ran");
    }

    #[test]
    fn trace_overflow_is_a_typed_error_not_a_panic() {
        let err = record_variant(ProgramId::Hmmsearch, Variant::Original, Scale::Test, 42, 10)
            .expect_err("10-op capacity must overflow");
        match &err {
            SuiteError::TraceOverflow { program, variant, captured } => {
                assert_eq!(*program, ProgramId::Hmmsearch);
                assert_eq!(*variant, Variant::Original);
                assert_eq!(*captured, 10);
            }
            other => panic!("expected TraceOverflow, got {other:?}"),
        }
        let msg = err.to_string();
        assert!(msg.contains("hmmsearch"), "{msg}");
        assert!(msg.contains("capacity"), "{msg}");
    }

    #[test]
    fn parallel_suite_equals_sequential_suite() {
        let seq =
            run_suite(SuiteConfig { scale: Scale::Test, seed: 11, jobs: 1, metrics: true, trace_cap: 0, spill: None })
                .expect("suite");
        let par =
            run_suite(SuiteConfig { scale: Scale::Test, seed: 11, jobs: 4, metrics: true, trace_cap: 0, spill: None })
                .expect("suite");
        assert_eq!(seq.reports.len(), par.reports.len());
        for ((pa, a), (pb, b)) in seq.reports.iter().zip(&par.reports) {
            assert_eq!(pa, pb);
            assert_eq!(a.mix, b.mix, "{pa}");
            assert_eq!(a.cache, b.cache, "{pa}: cache stats must not depend on worker count");
            assert_eq!(a.amat, b.amat, "{pa}");
        }
        assert_eq!(seq.eval.cells.len(), par.eval.cells.len());
        // 6 programs x 4 platforms - 1 n.a. cell, like EvalMatrix::run.
        assert_eq!(seq.eval.cells.len(), 23);
        for (a, b) in seq.eval.cells.iter().zip(&par.eval.cells) {
            assert_eq!(a.program, b.program);
            assert_eq!(a.platform, b.platform);
            assert_eq!(a.original.cycles, b.original.cycles);
            assert_eq!(a.transformed.cycles, b.transformed.cycles);
        }
        // The whole deterministic JSON section — config, paper metrics,
        // raw simulator events — must be byte-identical across worker
        // counts. Timings and throughput live in the `run` section and
        // are excluded.
        assert_eq!(seq.deterministic_json().render(), par.deterministic_json().render());
        // Both runs scheduled the same job set: 9 prepare jobs + 12
        // replay banks (6 transformable programs × 2 variants).
        assert_eq!(seq.jobs, par.jobs);
        assert_eq!(seq.jobs, 9 + 12);
        assert_eq!(seq.replay.replayed_ops, par.replay.replayed_ops);
    }

    #[test]
    fn suite_json_has_expected_shape() {
        let suite =
            run_suite(SuiteConfig { scale: Scale::Test, seed: 3, jobs: 2, metrics: false, trace_cap: 0, spill: None })
                .expect("suite");
        let doc = suite.to_json();
        assert_eq!(doc.get("schema").and_then(Json::as_str), Some(SUITE_SCHEMA));
        assert_eq!(doc.keys(), vec!["schema", "run", "deterministic"]);
        let run = doc.get("run").expect("run section");
        assert_eq!(
            run.keys(),
            vec!["jobs", "workers", "jobs_per_worker", "replayed_ops", "ops_per_sec", "timings"]
        );
        let rates = run.get("ops_per_sec").expect("throughput gauges");
        assert!(rates.get("total").and_then(Json::as_f64).unwrap_or(0.0) > 0.0);
        assert!(rates.get("Alpha 21264").is_some());
        assert!(run.get("replayed_ops").and_then(Json::as_u64).unwrap_or(0) > 0);
        let det = doc.get("deterministic").expect("deterministic section");
        assert_eq!(det.keys(), vec!["config", "counters", "gauges", "histograms"]);
        let config = det.get("config").expect("config");
        assert_eq!(config.get("scale").and_then(Json::as_str), Some("test"));
        assert_eq!(config.get("seed").and_then(Json::as_u64), Some(3));
        assert_eq!(config.get("programs").and_then(Json::as_u64), Some(9));
        assert_eq!(config.get("eval_cells").and_then(Json::as_u64), Some(23));
        // Paper series are exported even with event metrics off.
        let counters = det.get("counters").expect("counters");
        assert!(counters.get("char/hmmsearch/instructions").is_some());
        let gauges = det.get("gauges").expect("gauges");
        assert!(gauges.get("eval/harmonic_mean/Alpha 21264").is_some());
        // Raw simulator events only appear when asked for.
        assert!(counters.keys().iter().all(|k| !k.starts_with("events/")));
        let with_events =
            run_suite(SuiteConfig { scale: Scale::Test, seed: 3, jobs: 2, metrics: true, trace_cap: 0, spill: None })
                .expect("suite");
        let doc = with_events.to_json();
        let counters = doc.get("deterministic").and_then(|d| d.get("counters")).expect("counters");
        assert!(counters.get("events/hmmsearch/cache/serviced_l1").is_some());
        // Round-trips through the in-crate parser.
        let text = doc.render_pretty();
        let parsed = bioperf_metrics::json::parse(&text).expect("suite JSON parses");
        assert_eq!(parsed.render(), doc.render());
    }

    #[test]
    fn suite_respects_a_small_trace_cap() {
        let err =
            run_suite(SuiteConfig { scale: Scale::Test, seed: 42, jobs: 1, metrics: false, trace_cap: 16, spill: None })
                .expect_err("16-op capacity must overflow");
        match err {
            SuiteError::TraceOverflow { captured, .. } => assert_eq!(captured, 16),
            other => panic!("expected TraceOverflow, got {other:?}"),
        }
    }

    /// A unique scratch directory under the target-adjacent temp dir.
    fn scratch(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("bioperf-orch-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn spilled_suite_is_byte_identical_to_in_memory_suite() {
        let memory = run_suite(SuiteConfig {
            scale: Scale::Test,
            seed: 11,
            jobs: 2,
            metrics: true,
            trace_cap: 0,
            spill: None,
        })
        .expect("suite");
        // Tiny segments force many per-trace segment files, and jobs=4
        // overlaps loader threads with pool workers.
        let dir = scratch("spill-eq");
        let spilled = run_suite(SuiteConfig {
            scale: Scale::Test,
            seed: 11,
            jobs: 4,
            metrics: true,
            trace_cap: 0,
            spill: Some(SpillConfig { dir: dir.clone(), segment_ops: 1 << 12 }),
        })
        .expect("spilled suite");
        assert_eq!(
            memory.deterministic_json().render(),
            spilled.deterministic_json().render(),
            "streamed replay must not change a single deterministic byte"
        );
        assert_eq!(memory.jobs, spilled.jobs);
        assert_eq!(memory.replay.replayed_ops, spilled.replay.replayed_ops);
        // The traces really were spilled: every transformable program
        // left segment files behind.
        let traces = std::fs::read_dir(&dir).expect("spill dir").count();
        assert_eq!(traces, 2 * ProgramId::TRANSFORMED.len());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn trace_cap_bounds_total_ops_across_segments() {
        // segment_ops far below the cap: a per-segment misreading would
        // never overflow, the whole-trace cap must still trip at 16 ops.
        let dir = scratch("spill-cap");
        let err = run_suite(SuiteConfig {
            scale: Scale::Test,
            seed: 42,
            jobs: 1,
            metrics: false,
            trace_cap: 16,
            spill: Some(SpillConfig { dir: dir.clone(), segment_ops: 4 }),
        })
        .expect_err("16-op total capacity must overflow even with 4-op segments");
        match err {
            SuiteError::TraceOverflow { captured, .. } => assert_eq!(captured, 16),
            other => panic!("expected TraceOverflow, got {other:?}"),
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_middle_segment_is_a_typed_suite_error() {
        let dir = scratch("spill-missing");
        let spill = SpillConfig { dir: dir.clone(), segment_ops: 1 << 10 };
        let prepared =
            prepare_program(ProgramId::Predator, Scale::Test, 5, false, DEFAULT_CAPACITY, Some(spill))
                .expect("prepare");
        let recordings = prepared.recordings.expect("predator is transformable");
        let TraceStore::Segmented(segmented) = &recordings.original else {
            panic!("spill mode must produce segmented stores");
        };
        let paths = segmented.segment_paths();
        assert!(paths.len() >= 2, "need a middle segment to delete");
        let victim = paths[paths.len() / 2].to_path_buf();
        std::fs::remove_file(&victim).expect("delete middle segment");

        let recorded = vec![(ProgramId::Predator, recordings)];
        let err = match replay_banked(&recorded, 2, false) {
            Ok(_) => panic!("replay with a missing segment must fail"),
            Err(e) => e,
        };
        match &err {
            SuiteError::Segment { program, variant, error } => {
                assert_eq!(*program, ProgramId::Predator);
                assert_eq!(*variant, Variant::Original);
                assert_eq!(error.path(), victim.as_path());
                assert!(matches!(error, SegmentError::Missing { .. }), "{error:?}");
            }
            other => panic!("expected Segment error, got {other:?}"),
        }
        assert!(err.to_string().contains(victim.to_str().unwrap()), "{err}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    // No test here arms a fault: the injection atomics are process-global
    // and this binary's tests run concurrently. Mutation coverage lives
    // in the conform crate's serial `tests/inject.rs`.
    #[test]
    fn conform_fuzz_report_is_identical_across_worker_counts() {
        let cfg = |jobs| ConformConfig {
            cases: 12,
            seed: 7,
            jobs,
            inject: None,
            check_programs: false,
            out_dir: None,
        };
        let seq = run_conform(&cfg(1)).expect("conform");
        let par = run_conform(&cfg(4)).expect("conform");
        assert!(seq.is_clean(), "clean build diverged: {:?}", seq.divergent.first());
        assert_eq!(seq.workers, 1);
        assert_eq!(par.workers, 4);
        assert_eq!(seq.fuzz_ops, par.fuzz_ops);
        // The whole JSON document, not just a section, is byte-stable.
        assert_eq!(seq.to_json().render_pretty(), par.to_json().render_pretty());
        let doc = seq.to_json();
        assert_eq!(doc.get("schema").and_then(Json::as_str), Some(CONFORM_SCHEMA));
        let det = doc.get("deterministic").expect("deterministic section");
        assert_eq!(det.keys(), vec!["config", "fuzz", "divergent", "programs"]);
        assert_eq!(det.get("config").and_then(|c| c.get("fault")).and_then(Json::as_str), Some("none"));
        assert!(det.get("fuzz").and_then(|f| f.get("ops")).and_then(Json::as_u64).unwrap_or(0) > 0);
    }

    #[test]
    fn program_cross_check_passes_on_a_real_trace() {
        let check = cross_check_program(ProgramId::Predator, 5);
        assert_eq!(check.divergence, None, "predator trace diverged");
        assert!(check.ops > 0);
        assert_eq!(check.platforms, applicable_platforms(ProgramId::Predator).len());
    }

    #[test]
    fn evaluate_all_matches_eval_matrix_run() {
        let a = EvalMatrix::run(Scale::Test, 2);
        let b = evaluate_all(Scale::Test, 2, 3).expect("evaluate");
        assert_eq!(a.cells.len(), b.cells.len());
        for (x, y) in a.cells.iter().zip(&b.cells) {
            assert_eq!(x.program, y.program);
            assert_eq!(x.platform, y.platform);
            assert_eq!(x.original.cycles, y.original.cycles);
            assert_eq!(x.transformed.cycles, y.transformed.cycles);
        }
    }
}
