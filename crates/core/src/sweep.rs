//! Design-space exploration: grid sweeps with resumable checkpoints and
//! Pareto-front reports.
//!
//! The paper's Table 8 evaluates four hand-picked platforms; the question
//! it raises — which cache geometry / pipeline shape / predictor family
//! closes the load-latency gap per program — is a sweep over a
//! configuration grid. [`run_sweep`] enumerates the grid ([`SweepGrid`]),
//! validates every cell's cache geometry (degenerate points become
//! skipped-cell diagnostics, not panics), and fans the surviving cells
//! out over the [`run_jobs`] worker pool: each program's two variant
//! traces are recorded once, `Arc`-shared, and every job decodes its
//! recording once while driving a bank of per-cell simulators. The job
//! enumeration — program (input order) × cell chunk (grid order) — is
//! fixed and the merge walks the same enumeration, so output is
//! byte-identical at any `--jobs`.
//!
//! By default the evaluation is **factored** along the grid's two
//! independent axis groups. The hierarchy-access sequence a cell's
//! simulator generates depends only on the trace and the register-file
//! geometry — which every cell shares — never on latencies, pipeline
//! shape, or predictor. So a *cache pass* ([`bioperf_pipe::CachePassSim`])
//! replays each recording once per distinct cache-axis configuration
//! (L1 × L2 × line × prefetcher), banking several hierarchies per
//! decode, and emits a 2-bit-per-access miss-level annotation stream
//! plus final hierarchy stats. A *timing pass* then replays each cell
//! with [`CycleSim::with_annotations`], converting levels back to
//! latencies through the cell's own latency axis instead of simulating
//! a hierarchy. On the standard grid this collapses 1152 hierarchy
//! simulations to 64 while producing bit-identical measurements; the
//! unfactored path survives behind `--no-factor` as the oracle the
//! `sweep-factor` conformance self-check diffs against. Annotation
//! streams larger than the [`ANN_SPILL_ENV`] budget spill to disk in
//! the checksummed `bioperf-ann/v1` format rather than accumulating in
//! RAM.
//!
//! Completed `(program, cell)` measurements append to a
//! **`bioperf-sweep/v1` checkpoint** (binary, FNV-1a-checksummed records,
//! content-addressed by a hash of seed/scale/programs/grid — the same
//! header discipline as the `bioperf-seg/v1` trace segments). An
//! interrupted sweep resumes from the checkpoint; re-running a finished
//! sweep replays nothing. Corruption (truncation, bit flips, a grid-hash
//! mismatch) surfaces as a typed [`CheckpointError`] naming the path.
//!
//! The report reduces each program's cells to the Pareto frontier over
//! (AMAT, speedup of the load transformation, hardware-cost proxy) — see
//! [`crate::pareto`].

use std::fmt;
use std::io::{self, Read as _, Write as _};
use std::path::{Path, PathBuf};
use std::sync::Arc;

use bioperf_branch::PredictorKind;
use bioperf_cache::{
    AnnotationStream, CacheConfig, CacheConfigError, Hierarchy, HierarchyStats, LatencyConfig,
    Prefetcher, StackDistProfiler,
};
use bioperf_kernels::{ProgramId, Scale, Variant};
use bioperf_metrics::Json;
use bioperf_pipe::{CachePassSim, CycleSim, OpLatencies, PlatformConfig, TimingBank};
use bioperf_trace::{replay::DEFAULT_CAPACITY, Recording};

use crate::orchestrate::{default_jobs, record_variant, run_jobs, SuiteError};
use crate::pareto::{pareto_frontier, ParetoPoint};
use crate::report::TextTable;

/// Schema tag of the sweep's JSON report *and* the checkpoint file
/// format; bump on breaking shape changes.
pub const SWEEP_SCHEMA: &str = "bioperf-sweep/v1";

/// Magic bytes opening every checkpoint file.
pub const CHECKPOINT_MAGIC: [u8; 8] = *b"BPSWEEP1";

/// Current checkpoint format version.
pub const CHECKPOINT_VERSION: u32 = 1;

/// Fixed checkpoint header size in bytes.
pub const CHECKPOINT_HEADER_LEN: usize = 32;

/// Size of one checkpoint record in bytes.
pub const CHECKPOINT_RECORD_LEN: usize = 40;

/// Cells measured per bank-replay job: each job decodes its recording
/// once and drives this many per-cell simulators off the shared stream,
/// amortizing the decode without making one job dominate the pool.
const BANK_CELLS: usize = 8;

/// Cache-axis configurations simulated per cache-pass job in the
/// factored sweep — the same decode-amortization tradeoff as
/// [`BANK_CELLS`], applied to hierarchies instead of timing cells.
const ANN_BANK: usize = 8;

/// Environment variable overriding the in-memory byte budget for the
/// factored sweep's annotation store. When the (estimated) total size
/// of all annotation streams exceeds the budget, the cache pass spills
/// each stream to a `bioperf-ann/v1` file under a per-run temporary
/// directory and the timing pass reloads it on demand.
pub const ANN_SPILL_ENV: &str = "BIOPERF_SWEEP_ANN_BYTES";

/// Default annotation-store budget: 1 GiB.
const ANN_SPILL_DEFAULT: u64 = 1 << 30;

fn ann_spill_budget() -> u64 {
    std::env::var(ANN_SPILL_ENV)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(ANN_SPILL_DEFAULT)
}

/// FNV-1a 64 — the same dependency-free checksum the trace segments use.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// A typed failure of the checkpoint reader or writer. Every variant
/// names the checkpoint path, mirroring the segment-error discipline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CheckpointError {
    /// Filesystem error reading or writing the checkpoint.
    Io {
        /// The checkpoint being accessed.
        path: PathBuf,
        /// The underlying I/O error kind.
        kind: io::ErrorKind,
    },
    /// The file does not start with [`CHECKPOINT_MAGIC`].
    BadMagic {
        /// The rejected file.
        path: PathBuf,
    },
    /// The format version is not [`CHECKPOINT_VERSION`].
    BadVersion {
        /// The rejected file.
        path: PathBuf,
        /// Version the header claims.
        found: u32,
    },
    /// The header bytes fail their own checksum (bit rot in the header).
    HeaderCorrupt {
        /// The corrupted file.
        path: PathBuf,
    },
    /// The file length is not a whole header plus whole records (a
    /// partial trailing record from an interrupted write, or a chopped
    /// file).
    Truncated {
        /// The truncated file.
        path: PathBuf,
        /// Bytes a whole-record file would hold.
        expected: u64,
        /// Bytes actually present.
        actual: u64,
    },
    /// Record `index` fails its checksum or names a program/cell outside
    /// this sweep's enumeration.
    RecordCorrupt {
        /// The corrupted file.
        path: PathBuf,
        /// Zero-based index of the bad record.
        index: usize,
    },
    /// The checkpoint was written by a different sweep (seed, scale,
    /// program set, or grid differ): its content hash does not match.
    GridMismatch {
        /// The mismatched file.
        path: PathBuf,
        /// Hash of the sweep being run.
        expected: u64,
        /// Hash the checkpoint carries.
        found: u64,
    },
}

impl CheckpointError {
    /// The checkpoint path the error concerns.
    pub fn path(&self) -> &Path {
        match self {
            CheckpointError::Io { path, .. }
            | CheckpointError::BadMagic { path }
            | CheckpointError::BadVersion { path, .. }
            | CheckpointError::HeaderCorrupt { path }
            | CheckpointError::Truncated { path, .. }
            | CheckpointError::RecordCorrupt { path, .. }
            | CheckpointError::GridMismatch { path, .. } => path,
        }
    }

    fn io(path: &Path, err: &io::Error) -> CheckpointError {
        CheckpointError::Io { path: path.to_path_buf(), kind: err.kind() }
    }
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::Io { path, kind } => {
                write!(f, "{}: checkpoint I/O error: {kind}", path.display())
            }
            CheckpointError::BadMagic { path } => {
                write!(f, "{}: not a bioperf sweep checkpoint (bad magic)", path.display())
            }
            CheckpointError::BadVersion { path, found } => write!(
                f,
                "{}: unsupported checkpoint version {found} (expected {CHECKPOINT_VERSION})",
                path.display()
            ),
            CheckpointError::HeaderCorrupt { path } => {
                write!(f, "{}: checkpoint header failed its checksum", path.display())
            }
            CheckpointError::Truncated { path, expected, actual } => write!(
                f,
                "{}: truncated checkpoint ({actual} bytes; whole records imply {expected})",
                path.display()
            ),
            CheckpointError::RecordCorrupt { path, index } => {
                write!(f, "{}: checkpoint record {index} is corrupt", path.display())
            }
            CheckpointError::GridMismatch { path, expected, found } => write!(
                f,
                "{}: checkpoint belongs to a different sweep \
                 (content hash {found:#018x}, this sweep is {expected:#018x})",
                path.display()
            ),
        }
    }
}

impl std::error::Error for CheckpointError {}

/// A typed sweep failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SweepError {
    /// Recording a program trace failed (overflow, segment I/O).
    Suite(SuiteError),
    /// The checkpoint file is unusable.
    Checkpoint(CheckpointError),
    /// A selected program has no load-transformed variant, so the
    /// speedup objective is undefined for it.
    Untransformable(ProgramId),
    /// The grid enumerates no cells (some axis is empty).
    EmptyGrid,
    /// Spilling or reloading a factored-sweep annotation stream failed
    /// (the message names the stream file and the underlying error).
    AnnotationSpill(String),
}

impl fmt::Display for SweepError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SweepError::Suite(e) => write!(f, "{e}"),
            SweepError::Checkpoint(e) => write!(f, "{e}"),
            SweepError::Untransformable(p) => {
                write!(f, "{p} has no load-transformed variant; sweep needs both variants")
            }
            SweepError::EmptyGrid => write!(f, "sweep grid has an empty axis (no cells)"),
            SweepError::AnnotationSpill(msg) => {
                write!(f, "factored sweep annotation spill failed: {msg}")
            }
        }
    }
}

impl std::error::Error for SweepError {}

impl From<SuiteError> for SweepError {
    fn from(e: SuiteError) -> Self {
        SweepError::Suite(e)
    }
}

impl From<CheckpointError> for SweepError {
    fn from(e: CheckpointError) -> Self {
        SweepError::Checkpoint(e)
    }
}

/// The configuration grid: one `Vec` per axis, a cell per element of the
/// cross product. Enumeration order is fixed — L1 geometry outermost,
/// then L2, line size, latencies, pipeline shape, predictor family, and
/// prefetcher innermost — and cell indices are stable for a given grid.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepGrid {
    /// L1 data cache (capacity KB, ways).
    pub l1: Vec<(u64, u32)>,
    /// Unified L2 (capacity KB, ways).
    pub l2: Vec<(u64, u32)>,
    /// Line size in bytes, shared by both levels.
    pub line: Vec<u64>,
    /// (L1 hit, L2 extra, memory extra) latencies in cycles.
    pub lat: Vec<(u64, u64, u64)>,
    /// Pipeline shape (fetch/issue width, ROB entries).
    pub pipe: Vec<(u32, usize)>,
    /// Branch predictor family.
    pub pred: Vec<PredictorKind>,
    /// Hardware prefetcher policy.
    pub prefetch: Vec<Prefetcher>,
}

/// One enumerated grid cell, before validation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CellSpec {
    /// L1 (KB, ways).
    pub l1: (u64, u32),
    /// L2 (KB, ways).
    pub l2: (u64, u32),
    /// Line bytes.
    pub line: u64,
    /// (L1, L2, memory) latencies.
    pub lat: (u64, u64, u64),
    /// (width, ROB).
    pub pipe: (u32, usize),
    /// Predictor family.
    pub pred: PredictorKind,
    /// Prefetcher policy.
    pub prefetch: Prefetcher,
}

/// A validated cell: the platform model to simulate plus the report
/// metadata derived from the spec.
#[derive(Debug, Clone, Copy)]
pub struct ResolvedCell {
    /// Platform configuration fed to [`CycleSim`].
    pub platform: PlatformConfig,
    /// Predictor family for [`CycleSim::with_predictor`].
    pub pred: PredictorKind,
    /// Prefetcher for [`CycleSim::with_prefetcher`].
    pub prefetch: Prefetcher,
    /// Latencies, for the AMAT computation.
    pub lat: LatencyConfig,
    /// Hardware-cost proxy: total cache bytes + window depth.
    pub cost: u64,
}

fn prefetcher_name(p: Prefetcher) -> &'static str {
    match p {
        Prefetcher::None => "none",
        Prefetcher::NextLine => "nextline",
        Prefetcher::Stride => "stride",
    }
}

/// Inverse of [`prefetcher_name`], for the CLI axis flags.
pub fn parse_prefetcher(name: &str) -> Option<Prefetcher> {
    [Prefetcher::None, Prefetcher::NextLine, Prefetcher::Stride]
        .into_iter()
        .find(|&p| prefetcher_name(p) == name)
}

impl CellSpec {
    /// Validates the geometry and builds the platform model. Degenerate
    /// geometries come back as the typed cache-config error the report
    /// surfaces as a skipped cell.
    pub fn resolve(&self) -> Result<ResolvedCell, CacheConfigError> {
        let l1 = CacheConfig::try_new(self.l1.0 * 1024, self.l1.1, self.line)?;
        let l2 = CacheConfig::try_new(self.l2.0 * 1024, self.l2.1, self.line)?;
        // The sweep requires power-of-two L2 indexing (the shipped
        // presets and the address-normalization staggering assume it);
        // odd L1 set counts are allowed and take the general index path.
        l2.require_pow2_sets()?;
        let (width, rob) = self.pipe;
        let (lat1, lat2, mem) = self.lat;
        let base = PlatformConfig::alpha21264();
        let platform = PlatformConfig {
            name: "sweep",
            in_order: false,
            fetch_width: width,
            issue_width: width,
            rob_size: rob,
            int_load_latency: lat1,
            fp_load_latency: lat1 + 1,
            l2_latency: lat2,
            memory_latency: mem,
            mispredict_penalty: base.mispredict_penalty,
            spill_forward_extra: 0,
            if_conversion: true,
            logical_regs: base.logical_regs,
            l1,
            l2,
            ops: OpLatencies::classic(),
        };
        Ok(ResolvedCell {
            platform,
            pred: self.pred,
            prefetch: self.prefetch,
            lat: LatencyConfig { l1: lat1, l2: lat2, memory: mem },
            cost: l1.size_bytes + l2.size_bytes + rob as u64,
        })
    }

    /// Compact one-line description for tables and the JSON report.
    pub fn describe(&self) -> String {
        format!(
            "l1 {}Kx{} l2 {}Kx{} line {} lat {}/{}/{} pipe {}w{} pred {} pf {}",
            self.l1.0,
            self.l1.1,
            self.l2.0,
            self.l2.1,
            self.line,
            self.lat.0,
            self.lat.1,
            self.lat.2,
            self.pipe.0,
            self.pipe.1,
            self.pred.name(),
            prefetcher_name(self.prefetch),
        )
    }
}

impl SweepGrid {
    /// The ~64-cell CI smoke grid (2·2·2·1·2·2·2 = 64 cells).
    pub fn smoke() -> Self {
        Self {
            l1: vec![(32, 2), (64, 2)],
            l2: vec![(2048, 1), (4096, 1)],
            line: vec![32, 64],
            lat: vec![(3, 5, 72)],
            pipe: vec![(2, 32), (4, 80)],
            pred: vec![PredictorKind::Hybrid, PredictorKind::Bimodal],
            prefetch: vec![Prefetcher::None, Prefetcher::NextLine],
        }
    }

    /// The standard exploration grid (4·2·2·2·3·3·2 = 576 cells),
    /// spanning the paper's Table 7 range of cache sizes and core widths.
    pub fn standard() -> Self {
        Self {
            l1: vec![(32, 2), (64, 2), (64, 4), (128, 4)],
            l2: vec![(2048, 1), (4096, 1)],
            line: vec![32, 64],
            lat: vec![(3, 5, 72), (2, 4, 60)],
            pipe: vec![(2, 32), (4, 80), (8, 192)],
            pred: PredictorKind::ALL.to_vec(),
            prefetch: vec![Prefetcher::None, Prefetcher::NextLine],
        }
    }

    /// Total enumerated cells (the cross product of every axis).
    pub fn cells(&self) -> usize {
        self.l1.len()
            * self.l2.len()
            * self.line.len()
            * self.lat.len()
            * self.pipe.len()
            * self.pred.len()
            * self.prefetch.len()
    }

    /// The spec of cell `index` under the fixed enumeration order.
    ///
    /// # Panics
    ///
    /// Panics if `index >= self.cells()`.
    pub fn spec(&self, index: usize) -> CellSpec {
        assert!(index < self.cells(), "cell index {index} out of range");
        let mut i = index;
        let mut take = |len: usize| {
            let at = i % len;
            i /= len;
            at
        };
        // Innermost axis first when decomposing (prefetch varies fastest).
        let prefetch = self.prefetch[take(self.prefetch.len())];
        let pred = self.pred[take(self.pred.len())];
        let pipe = self.pipe[take(self.pipe.len())];
        let lat = self.lat[take(self.lat.len())];
        let line = self.line[take(self.line.len())];
        let l2 = self.l2[take(self.l2.len())];
        let l1 = self.l1[take(self.l1.len())];
        CellSpec { l1, l2, line, lat, pipe, pred, prefetch }
    }

    /// Canonical description of the grid, hashed (with seed, scale, and
    /// program set) into the checkpoint's content address.
    pub fn canonical(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        let _ = write!(s, "l1=");
        for (kb, w) in &self.l1 {
            let _ = write!(s, "{kb}x{w},");
        }
        let _ = write!(s, ";l2=");
        for (kb, w) in &self.l2 {
            let _ = write!(s, "{kb}x{w},");
        }
        let _ = write!(s, ";line=");
        for b in &self.line {
            let _ = write!(s, "{b},");
        }
        let _ = write!(s, ";lat=");
        for (a, b, c) in &self.lat {
            let _ = write!(s, "{a}:{b}:{c},");
        }
        let _ = write!(s, ";pipe=");
        for (w, r) in &self.pipe {
            let _ = write!(s, "{w}x{r},");
        }
        let _ = write!(s, ";pred=");
        for p in &self.pred {
            let _ = write!(s, "{},", p.name());
        }
        let _ = write!(s, ";prefetch=");
        for p in &self.prefetch {
            let _ = write!(s, "{},", prefetcher_name(*p));
        }
        s
    }
}

/// Configuration for [`run_sweep`].
#[derive(Debug, Clone)]
pub struct SweepConfig {
    /// Workload scale for every recorded trace.
    pub scale: Scale,
    /// Seed for every recorded trace.
    pub seed: u64,
    /// Worker threads; `0` means all cores.
    pub jobs: usize,
    /// Programs to sweep (must be transformable; empty means every
    /// transformable program).
    pub programs: Vec<ProgramId>,
    /// The configuration grid.
    pub grid: SweepGrid,
    /// Checkpoint file: completed measurements append here and later
    /// runs resume from it. `None` disables checkpointing.
    pub checkpoint: Option<PathBuf>,
    /// Cell budget: at most this many *new* `(program, cell)`
    /// measurements this invocation (`0` = unlimited). A budget-stopped
    /// run checkpoints what it measured and reports `complete: false`.
    pub max_cells: usize,
    /// Evaluate via the factored two-pass pipeline (cache pass +
    /// annotated timing replay). `false` selects the unfactored oracle:
    /// one live hierarchy per cell. Both produce bit-identical
    /// measurements; the factored path is the production default.
    pub factor: bool,
}

/// One cell's measurements for one program.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CellMeasure {
    /// Simulated cycles of the original variant.
    pub cycles_original: u64,
    /// Simulated cycles of the load-transformed variant.
    pub cycles_transformed: u64,
    /// AMAT of the original variant under the cell's latencies.
    pub amat: f64,
}

impl CellMeasure {
    /// Speedup of the load transformation on this configuration.
    pub fn speedup(&self) -> f64 {
        if self.cycles_transformed == 0 {
            1.0
        } else {
            self.cycles_original as f64 / self.cycles_transformed as f64
        }
    }
}

/// Everything [`run_sweep`] produces.
#[derive(Debug)]
pub struct SweepResult {
    /// Scale the sweep ran at.
    pub scale: Scale,
    /// Seed the sweep ran with.
    pub seed: u64,
    /// Worker threads actually used.
    pub workers: usize,
    /// Content hash (seed/scale/programs/grid) — the checkpoint address.
    pub run_hash: u64,
    /// The grid that was enumerated.
    pub grid: SweepGrid,
    /// Programs swept, in input order.
    pub programs: Vec<ProgramId>,
    /// Cells whose geometry was rejected: `(cell index, reason)` in cell
    /// order — the skipped-cell diagnostics.
    pub skipped: Vec<(u32, String)>,
    /// `measures[p][c]`: program `p` × cell `c`; `None` for skipped
    /// cells and for cells an interrupted run never reached.
    pub measures: Vec<Vec<Option<CellMeasure>>>,
    /// Measurements replayed by this invocation.
    pub computed: usize,
    /// Measurements restored from the checkpoint.
    pub cached: usize,
    /// Variant traces recorded by this invocation — zero when every
    /// scheduled cell came out of the checkpoint (a resumed sweep with
    /// no remaining work does no recording at all).
    pub recorded: usize,
    /// Whether every valid `(program, cell)` pair is measured.
    pub complete: bool,
}

impl SweepResult {
    /// The Pareto frontier of program `p` (index into
    /// [`Self::programs`]) over its measured cells.
    pub fn frontier(&self, p: usize) -> Vec<ParetoPoint> {
        let points: Vec<ParetoPoint> = self.measures[p]
            .iter()
            .enumerate()
            .filter_map(|(cell, m)| {
                let m = m.as_ref()?;
                let cost = self.grid.spec(cell).resolve().ok()?.cost;
                Some(ParetoPoint {
                    id: cell as u32,
                    amat: m.amat,
                    speedup: m.speedup(),
                    cost,
                })
            })
            .collect();
        pareto_frontier(&points)
    }

    /// The deterministic sweep report: configuration, skipped-cell
    /// diagnostics, and each program's Pareto frontier. Byte-identical
    /// for every worker count, and identical between an uninterrupted
    /// run and an interrupt+resume of the same sweep.
    pub fn deterministic_json(&self) -> Json {
        let config = Json::object(vec![
            ("scale", Json::str(self.scale.name())),
            ("seed", Json::U64(self.seed)),
            ("grid_hash", Json::Str(format!("{:#018x}", self.run_hash))),
            ("cells", Json::U64(self.grid.cells() as u64)),
            (
                "programs",
                Json::Array(
                    self.programs.iter().map(|p| Json::str(p.name())).collect(),
                ),
            ),
            ("complete", if self.complete { Json::U64(1) } else { Json::U64(0) }),
        ]);
        let skipped: Vec<Json> = self
            .skipped
            .iter()
            .map(|(cell, reason)| {
                Json::object(vec![
                    ("cell", Json::U64(*cell as u64)),
                    ("config", Json::Str(self.grid.spec(*cell as usize).describe())),
                    ("reason", Json::Str(reason.clone())),
                ])
            })
            .collect();
        let frontiers: Vec<(String, Json)> = self
            .programs
            .iter()
            .enumerate()
            .map(|(p, program)| {
                let points: Vec<Json> = self
                    .frontier(p)
                    .into_iter()
                    .map(|pt| {
                        let m = self.measures[p][pt.id as usize]
                            .expect("frontier points are measured");
                        Json::object(vec![
                            ("cell", Json::U64(pt.id as u64)),
                            ("config", Json::Str(self.grid.spec(pt.id as usize).describe())),
                            ("amat", Json::F64(pt.amat)),
                            ("speedup", Json::F64(pt.speedup)),
                            ("cost", Json::U64(pt.cost)),
                            ("cycles_original", Json::U64(m.cycles_original)),
                            ("cycles_transformed", Json::U64(m.cycles_transformed)),
                        ])
                    })
                    .collect();
                (program.name().to_string(), Json::Array(points))
            })
            .collect();
        Json::object(vec![
            ("config", config),
            ("skipped", Json::Array(skipped)),
            ("frontier", Json::Object(frontiers)),
        ])
    }

    /// The full sweep document: `schema` plus the deterministic report.
    /// Like the conformance document there is no `run` section — worker
    /// count and cache-hit statistics go to stderr — so the whole file
    /// is byte-identical across worker counts *and* across
    /// interrupt/resume splits.
    pub fn to_json(&self) -> Json {
        Json::object(vec![
            ("schema", Json::str(SWEEP_SCHEMA)),
            ("deterministic", self.deterministic_json()),
        ])
    }

    /// Renders the per-program frontier tables (and skipped-cell
    /// diagnostics) as text. Deterministic.
    pub fn render_table(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for (p, program) in self.programs.iter().enumerate() {
            let _ = writeln!(out, "{} Pareto frontier:", program.name());
            let mut table = TextTable::new(&["cell", "config", "AMAT", "speedup", "cost"]);
            for pt in self.frontier(p) {
                table.row_owned(vec![
                    pt.id.to_string(),
                    self.grid.spec(pt.id as usize).describe(),
                    format!("{:.3}", pt.amat),
                    format!("{:+.2}%", (pt.speedup - 1.0) * 100.0),
                    pt.cost.to_string(),
                ]);
            }
            let _ = write!(out, "{}", table.render());
        }
        if !self.skipped.is_empty() {
            let _ = writeln!(out, "skipped cells:");
            for (cell, reason) in &self.skipped {
                let _ = writeln!(
                    out,
                    "  cell {cell} ({}): {reason}",
                    self.grid.spec(*cell as usize).describe()
                );
            }
        }
        out
    }
}

/// Content hash of one sweep: seed, scale, program set, and grid. Two
/// sweeps share a checkpoint exactly when these all match.
fn run_hash(scale: Scale, seed: u64, programs: &[ProgramId], grid: &SweepGrid) -> u64 {
    let mut desc = format!("{SWEEP_SCHEMA};scale={};seed={seed};programs=", scale.name());
    for p in programs {
        desc.push_str(p.name());
        desc.push(',');
    }
    desc.push_str(";grid=");
    desc.push_str(&grid.canonical());
    fnv1a(desc.as_bytes())
}

fn encode_header(hash: u64) -> [u8; CHECKPOINT_HEADER_LEN] {
    let mut h = [0u8; CHECKPOINT_HEADER_LEN];
    h[..8].copy_from_slice(&CHECKPOINT_MAGIC);
    h[8..12].copy_from_slice(&CHECKPOINT_VERSION.to_le_bytes());
    h[12..16].copy_from_slice(&(CHECKPOINT_RECORD_LEN as u32).to_le_bytes());
    h[16..24].copy_from_slice(&hash.to_le_bytes());
    let checksum = fnv1a(&h[..24]);
    h[24..32].copy_from_slice(&checksum.to_le_bytes());
    h
}

fn encode_record(prog: u32, cell: u32, m: &CellMeasure) -> [u8; CHECKPOINT_RECORD_LEN] {
    let mut r = [0u8; CHECKPOINT_RECORD_LEN];
    r[..4].copy_from_slice(&prog.to_le_bytes());
    r[4..8].copy_from_slice(&cell.to_le_bytes());
    r[8..16].copy_from_slice(&m.cycles_original.to_le_bytes());
    r[16..24].copy_from_slice(&m.cycles_transformed.to_le_bytes());
    r[24..32].copy_from_slice(&m.amat.to_bits().to_le_bytes());
    let checksum = fnv1a(&r[..32]);
    r[32..40].copy_from_slice(&checksum.to_le_bytes());
    r
}

/// Loads a checkpoint, validating the header, the content hash, and
/// every record. A missing (or zero-byte) file is an empty checkpoint.
/// Records are `(program index, cell, measure)` in file order.
fn load_checkpoint(
    path: &Path,
    hash: u64,
    programs: usize,
    cells: usize,
) -> Result<Vec<(u32, u32, CellMeasure)>, CheckpointError> {
    let mut bytes = Vec::new();
    match std::fs::File::open(path) {
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(Vec::new()),
        Err(e) => return Err(CheckpointError::io(path, &e)),
        Ok(mut f) => {
            f.read_to_end(&mut bytes).map_err(|e| CheckpointError::io(path, &e))?;
        }
    }
    if bytes.is_empty() {
        return Ok(Vec::new());
    }
    if bytes.len() < CHECKPOINT_HEADER_LEN {
        return Err(CheckpointError::Truncated {
            path: path.to_path_buf(),
            expected: CHECKPOINT_HEADER_LEN as u64,
            actual: bytes.len() as u64,
        });
    }
    if bytes[..8] != CHECKPOINT_MAGIC {
        return Err(CheckpointError::BadMagic { path: path.to_path_buf() });
    }
    let u32_at = |at: usize| u32::from_le_bytes(bytes[at..at + 4].try_into().expect("4 bytes"));
    let u64_at = |at: usize| u64::from_le_bytes(bytes[at..at + 8].try_into().expect("8 bytes"));
    let version = u32_at(8);
    if version != CHECKPOINT_VERSION {
        return Err(CheckpointError::BadVersion { path: path.to_path_buf(), found: version });
    }
    if fnv1a(&bytes[..24]) != u64_at(24) || u32_at(12) as usize != CHECKPOINT_RECORD_LEN {
        return Err(CheckpointError::HeaderCorrupt { path: path.to_path_buf() });
    }
    let found = u64_at(16);
    if found != hash {
        return Err(CheckpointError::GridMismatch {
            path: path.to_path_buf(),
            expected: hash,
            found,
        });
    }
    let body = bytes.len() - CHECKPOINT_HEADER_LEN;
    if !body.is_multiple_of(CHECKPOINT_RECORD_LEN) {
        let whole = body / CHECKPOINT_RECORD_LEN;
        return Err(CheckpointError::Truncated {
            path: path.to_path_buf(),
            expected: (CHECKPOINT_HEADER_LEN + (whole + 1) * CHECKPOINT_RECORD_LEN) as u64,
            actual: bytes.len() as u64,
        });
    }
    let mut records = Vec::with_capacity(body / CHECKPOINT_RECORD_LEN);
    for (index, r) in bytes[CHECKPOINT_HEADER_LEN..].chunks_exact(CHECKPOINT_RECORD_LEN).enumerate()
    {
        let checksum = u64::from_le_bytes(r[32..40].try_into().expect("8 bytes"));
        if fnv1a(&r[..32]) != checksum {
            return Err(CheckpointError::RecordCorrupt { path: path.to_path_buf(), index });
        }
        let prog = u32::from_le_bytes(r[..4].try_into().expect("4 bytes"));
        let cell = u32::from_le_bytes(r[4..8].try_into().expect("4 bytes"));
        if prog as usize >= programs || cell as usize >= cells {
            return Err(CheckpointError::RecordCorrupt { path: path.to_path_buf(), index });
        }
        let measure = CellMeasure {
            cycles_original: u64::from_le_bytes(r[8..16].try_into().expect("8 bytes")),
            cycles_transformed: u64::from_le_bytes(r[16..24].try_into().expect("8 bytes")),
            amat: f64::from_bits(u64::from_le_bytes(r[24..32].try_into().expect("8 bytes"))),
        };
        records.push((prog, cell, measure));
    }
    Ok(records)
}

/// Appends `records` to the checkpoint, writing the header first if the
/// file is new or empty.
fn append_checkpoint(
    path: &Path,
    hash: u64,
    records: &[(u32, u32, CellMeasure)],
) -> Result<(), CheckpointError> {
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent).map_err(|e| CheckpointError::io(path, &e))?;
        }
    }
    let mut f = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)
        .map_err(|e| CheckpointError::io(path, &e))?;
    let len = f.metadata().map_err(|e| CheckpointError::io(path, &e))?.len();
    let mut buf = Vec::with_capacity(
        if len == 0 { CHECKPOINT_HEADER_LEN } else { 0 } + records.len() * CHECKPOINT_RECORD_LEN,
    );
    if len == 0 {
        buf.extend_from_slice(&encode_header(hash));
    }
    for (prog, cell, m) in records {
        buf.extend_from_slice(&encode_record(*prog, *cell, m));
    }
    f.write_all(&buf).map_err(|e| CheckpointError::io(path, &e))?;
    Ok(())
}

/// Runs the design-space sweep: enumerate, validate, resume from the
/// checkpoint, fan the missing `(program, cell)` measurements out as
/// bank-replay jobs, merge in enumeration order, and append the new
/// measurements to the checkpoint.
pub fn run_sweep(cfg: &SweepConfig) -> Result<SweepResult, SweepError> {
    let threads = if cfg.jobs == 0 { default_jobs() } else { cfg.jobs };
    let programs: Vec<ProgramId> = if cfg.programs.is_empty() {
        ProgramId::TRANSFORMED.to_vec()
    } else {
        cfg.programs.clone()
    };
    for &p in &programs {
        if !p.is_transformable() {
            return Err(SweepError::Untransformable(p));
        }
    }
    let cells = cfg.grid.cells();
    if cells == 0 {
        return Err(SweepError::EmptyGrid);
    }
    let hash = run_hash(cfg.scale, cfg.seed, &programs, &cfg.grid);

    // Validate every cell once; invalid geometries become skipped-cell
    // diagnostics and are excluded from scheduling and checkpointing.
    let mut resolved: Vec<Option<ResolvedCell>> = Vec::with_capacity(cells);
    let mut skipped: Vec<(u32, String)> = Vec::new();
    for c in 0..cells {
        match cfg.grid.spec(c).resolve() {
            Ok(rc) => resolved.push(Some(rc)),
            Err(e) => {
                skipped.push((c as u32, e.to_string()));
                resolved.push(None);
            }
        }
    }

    // Resume: measurements already in the checkpoint are never replayed.
    let mut measures: Vec<Vec<Option<CellMeasure>>> = vec![vec![None; cells]; programs.len()];
    let mut cached = 0usize;
    if let Some(path) = &cfg.checkpoint {
        for (prog, cell, m) in load_checkpoint(path, hash, programs.len(), cells)? {
            if measures[prog as usize][cell as usize].is_none() {
                cached += 1;
            }
            measures[prog as usize][cell as usize] = Some(m);
        }
    }

    // The missing work, program-major in enumeration order, truncated to
    // the cell budget.
    let mut missing: Vec<(usize, usize)> = Vec::new();
    for (p, per_cell) in measures.iter().enumerate() {
        for c in 0..cells {
            if resolved[c].is_some() && per_cell[c].is_none() {
                missing.push((p, c));
            }
        }
    }
    let budget_hit = cfg.max_cells != 0 && missing.len() > cfg.max_cells;
    if budget_hit {
        missing.truncate(cfg.max_cells);
    }
    let computed = missing.len();

    // Wave 1: record both variants of every program that still has work,
    // one job per (program, variant); recordings are Arc-shared with
    // every bank job of that program. Fully-checkpointed programs never
    // reach `active`, so a resumed sweep with no remaining cells records
    // nothing (`SweepResult::recorded` pins this).
    let mut active: Vec<usize> = Vec::new();
    for p in 0..programs.len() {
        if missing.iter().any(|&(mp, _)| mp == p) {
            active.push(p);
        }
    }
    let recorded = active.len() * 2;
    let record_jobs: Vec<_> = active
        .iter()
        .flat_map(|&p| {
            let program = programs[p];
            [Variant::Original, Variant::LoadTransformed].into_iter().map(move |variant| {
                move || record_variant(program, variant, cfg.scale, cfg.seed, DEFAULT_CAPACITY)
            })
        })
        .collect();
    let mut recordings: Vec<Option<(Arc<Recording>, Arc<Recording>)>> =
        (0..programs.len()).map(|_| None).collect();
    let mut rec_out = run_jobs(record_jobs, threads).into_iter();
    for &p in &active {
        let original = Arc::new(rec_out.next().expect("two recordings per active program")?);
        let transformed = Arc::new(rec_out.next().expect("two recordings per active program")?);
        recordings[p] = Some((original, transformed));
    }

    // Wave 2: evaluate the missing cells, chunked program (input order) ×
    // ≤BANK_CELLS cells (grid order). The chunking — and therefore the
    // merge below — is shared by both evaluation strategies, so factored
    // and unfactored runs produce identical checkpoint bytes.
    let chunks: Vec<(usize, Vec<usize>)> = {
        let mut out: Vec<(usize, Vec<usize>)> = Vec::new();
        for &(p, c) in &missing {
            match out.last_mut() {
                Some((lp, cs)) if *lp == p && cs.len() < BANK_CELLS => cs.push(c),
                _ => out.push((p, vec![c])),
            }
        }
        out
    };
    let outputs: Vec<Vec<CellMeasure>> = if cfg.factor {
        factored_outputs(threads, &cfg.grid, &resolved, &chunks, &recordings, hash)?
    } else {
        // Unfactored oracle: each job decodes the recordings once and
        // drives one live simulator (with its own hierarchy) per cell.
        let bank_jobs: Vec<_> = chunks
            .iter()
            .map(|(p, cell_ids)| {
                let (original, transformed) =
                    recordings[*p].as_ref().expect("active programs have recordings");
                let original = Arc::clone(original);
                let transformed = Arc::clone(transformed);
                let cells: Vec<ResolvedCell> = cell_ids
                    .iter()
                    .map(|&c| resolved[c].expect("scheduled cells are valid"))
                    .collect();
                move || -> Vec<CellMeasure> {
                    let build = |rc: &ResolvedCell| {
                        CycleSim::new(rc.platform)
                            .with_predictor(rc.pred)
                            .with_prefetcher(rc.prefetch)
                    };
                    let mut orig_bank: Vec<CycleSim> = cells.iter().map(build).collect();
                    original.replay_bank(&mut orig_bank);
                    let mut trans_bank: Vec<CycleSim> = cells.iter().map(build).collect();
                    transformed.replay_bank(&mut trans_bank);
                    cells
                        .iter()
                        .zip(orig_bank.into_iter().zip(trans_bank))
                        .map(|(rc, (o, t))| {
                            let o = o.into_result();
                            let t = t.into_result();
                            CellMeasure {
                                cycles_original: o.cycles,
                                cycles_transformed: t.cycles,
                                amat: rc.lat.amat(
                                    o.cache.l1.load_miss_ratio(),
                                    o.cache.l2.load_miss_ratio(),
                                ),
                            }
                        })
                        .collect()
                }
            })
            .collect();
        run_jobs(bank_jobs, threads)
    };

    // Merge in the fixed (program, chunk, cell) enumeration — identical
    // for every worker count — and collect the checkpoint append batch
    // in the same order.
    let mut new_records: Vec<(u32, u32, CellMeasure)> = Vec::with_capacity(missing.len());
    for ((p, cell_ids), mut out) in chunks.into_iter().zip(outputs) {
        if bioperf_trace::inject::active(bioperf_trace::inject::SWEEP_MERGE) && out.len() > 1 {
            // Seeded fault: credit each cell with its neighbor's
            // measurements (see `FaultId::SweepMergeOrder`).
            out.rotate_left(1);
        }
        for (&c, m) in cell_ids.iter().zip(out) {
            measures[p][c] = Some(m);
            new_records.push((p as u32, c as u32, m));
        }
    }
    if let Some(path) = &cfg.checkpoint {
        if !new_records.is_empty() {
            append_checkpoint(path, hash, &new_records)?;
        }
    }

    let complete = !budget_hit;
    Ok(SweepResult {
        scale: cfg.scale,
        seed: cfg.seed,
        workers: threads,
        run_hash: hash,
        grid: cfg.grid.clone(),
        programs,
        skipped,
        measures,
        computed,
        cached,
        recorded,
        complete,
    })
}

/// The cache-axis coordinates of a cell: everything that shapes the
/// hierarchy's behavior (geometry, line size, prefetcher) and nothing
/// that only shapes timing. Cells sharing a key share one cache pass.
#[derive(Debug, Clone, Copy, PartialEq)]
struct CacheAxisKey {
    l1: (u64, u32),
    l2: (u64, u32),
    line: u64,
    prefetch: Prefetcher,
}

impl CacheAxisKey {
    fn of(spec: &CellSpec) -> Self {
        Self { l1: spec.l1, l2: spec.l2, line: spec.line, prefetch: spec.prefetch }
    }
}

/// Where one (program, variant, cache-config) annotation stream lives
/// between the cache pass and the timing pass.
#[derive(Debug, Clone)]
enum AnnHandle {
    /// Shared in memory.
    Mem(Arc<AnnotationStream>),
    /// Spilled to a `bioperf-ann/v1` file; reloaded per timing job.
    Disk(PathBuf),
}

/// One cache-pass output per geometry: hierarchy stats (AMAT inputs),
/// the stream's content key (timing-memo grouping), and where the
/// stream lives.
type CachePassOutput = (HierarchyStats, (u64, u64), AnnHandle);

impl AnnHandle {
    fn fetch(&self) -> Result<Arc<AnnotationStream>, String> {
        match self {
            AnnHandle::Mem(s) => Ok(Arc::clone(s)),
            AnnHandle::Disk(p) => {
                AnnotationStream::load(p).map(Arc::new).map_err(|e| e.to_string())
            }
        }
    }
}

/// The factored wave 2: a cache pass produces per-cache-config miss
/// annotations and hierarchy stats (one trace decode per ≤[`ANN_BANK`]
/// configs), then a timing pass replays every chunk's cells in
/// annotated mode — no live hierarchies. Chunk outputs are returned in
/// `chunks` order, exactly like the unfactored bank jobs.
fn factored_outputs(
    threads: usize,
    grid: &SweepGrid,
    resolved: &[Option<ResolvedCell>],
    chunks: &[(usize, Vec<usize>)],
    recordings: &[Option<(Arc<Recording>, Arc<Recording>)>],
    hash: u64,
) -> Result<Vec<Vec<CellMeasure>>, SweepError> {
    // Distinct cache-axis keys in first-seen (missing-order) sequence,
    // one representative resolved cell per key, and each scheduled
    // cell's key index.
    let mut keys: Vec<CacheAxisKey> = Vec::new();
    let mut reps: Vec<ResolvedCell> = Vec::new();
    let mut cell_key: Vec<Option<usize>> = vec![None; resolved.len()];
    // Per program, the key indices it needs, ascending.
    let mut prog_keys: Vec<Vec<usize>> = vec![Vec::new(); recordings.len()];
    for (p, cell_ids) in chunks {
        for &c in cell_ids {
            let k = match cell_key[c] {
                Some(k) => k,
                None => {
                    let key = CacheAxisKey::of(&grid.spec(c));
                    let k = keys.iter().position(|&x| x == key).unwrap_or_else(|| {
                        keys.push(key);
                        reps.push(resolved[c].expect("scheduled cells are valid"));
                        keys.len() - 1
                    });
                    cell_key[c] = Some(k);
                    k
                }
            };
            if !prog_keys[*p].contains(&k) {
                prog_keys[*p].push(k);
            }
        }
    }
    for ks in &mut prog_keys {
        ks.sort_unstable();
    }

    // Spill decision, up front and for the whole store: the estimate
    // assumes about one hierarchy access per recorded op (2 bits each),
    // which is the right order of magnitude for every shipped kernel.
    let mut est_bytes = 0u64;
    for (p, ks) in prog_keys.iter().enumerate() {
        if ks.is_empty() {
            continue;
        }
        let (orig, trans) = recordings[p].as_ref().expect("active programs have recordings");
        est_bytes += ((orig.len() + trans.len()) as u64).div_ceil(4) * ks.len() as u64;
    }
    let spill_dir: Option<Arc<PathBuf>> = if est_bytes > ann_spill_budget() {
        let dir = std::env::temp_dir()
            .join(format!("bioperf-sweep-ann-{hash:016x}-{}", std::process::id()));
        std::fs::create_dir_all(&dir)
            .map_err(|e| SweepError::AnnotationSpill(format!("{}: {e}", dir.display())))?;
        Some(Arc::new(dir))
    } else {
        None
    };

    // Cache pass: one job per (program, variant, ≤ANN_BANK keys).
    let mut descriptors: Vec<(usize, usize, Vec<usize>)> = Vec::new();
    for (p, ks) in prog_keys.iter().enumerate() {
        for variant in 0..2usize {
            for chunk in ks.chunks(ANN_BANK) {
                descriptors.push((p, variant, chunk.to_vec()));
            }
        }
    }
    let cache_jobs: Vec<_> = descriptors
        .iter()
        .map(|(p, variant, key_ids)| {
            let (orig, trans) = recordings[*p].as_ref().expect("active programs have recordings");
            let rec = Arc::clone(if *variant == 0 { orig } else { trans });
            let members: Vec<ResolvedCell> = key_ids.iter().map(|&k| reps[k]).collect();
            let key_ids = key_ids.clone();
            let dir = spill_dir.clone();
            let (p, variant) = (*p, *variant);
            move || -> Result<Vec<CachePassOutput>, String> {
                let hierarchies: Vec<Hierarchy> = members
                    .iter()
                    .map(|rc| {
                        Hierarchy::new(rc.platform.l1, rc.platform.l2, rc.lat)
                            .with_prefetcher(rc.prefetch)
                    })
                    .collect();
                let mut pass = CachePassSim::new(members[0].platform.logical_regs, hierarchies);
                rec.replay_bank(std::slice::from_mut(&mut pass));
                pass.finish_bank()
                    .into_iter()
                    .zip(&key_ids)
                    .map(|((stats, stream), &k)| {
                        let content = stream.content_key();
                        let handle = match &dir {
                            Some(d) => {
                                let path = d.join(format!("p{p}-v{variant}-k{k}.ann"));
                                stream.save(&path).map_err(|e| e.to_string())?;
                                AnnHandle::Disk(path)
                            }
                            None => AnnHandle::Mem(Arc::new(stream)),
                        };
                        Ok((stats, content, handle))
                    })
                    .collect()
            }
        })
        .collect();
    let mut store: Vec<Vec<Option<CachePassOutput>>> =
        vec![vec![None; keys.len()]; 2 * recordings.len()];
    for ((p, variant, key_ids), out) in
        descriptors.iter().zip(run_jobs(cache_jobs, threads))
    {
        let out = out.map_err(SweepError::AnnotationSpill)?;
        for ((stats, content, handle), &k) in out.into_iter().zip(key_ids) {
            store[2 * p + variant][k] = Some((stats, content, handle));
        }
    }

    // Timing pass, memoized: a cell's cycle counts depend only on its
    // timing axis (latency triple, pipe shape, predictor) and the
    // *contents* of its two annotation streams — never on which cache
    // geometry produced them. Distinct geometries frequently produce
    // identical miss sequences (every L2 that stops missing after
    // warmup, every line size the access pattern strides past), so
    // cells are grouped by (timing axis, stream content keys) and each
    // group is simulated once. The groups run through shared-pass
    // [`TimingBank`]s — every grid cell keeps the base platform's
    // register file and if-conversion mode (see `CellSpec::resolve`),
    // so within a job the register/spill plan runs once, each
    // predictor family once, and only the serial timing core per lane.
    // AMATs stay per cell: they come from the cache pass's
    // original-variant stats, the same counts a live hierarchy ends
    // with, so the measurement is bit-identical.
    #[derive(PartialEq, Clone, Copy)]
    struct TimingKey {
        lat: (u64, u64, u64),
        pipe: (u32, usize),
        pred: PredictorKind,
        streams: ((u64, u64), (u64, u64)),
    }
    let mut group_keys: Vec<Vec<TimingKey>> = vec![Vec::new(); recordings.len()];
    let mut group_lane: Vec<Vec<(ResolvedCell, AnnHandle, AnnHandle)>> =
        vec![Vec::new(); recordings.len()];
    // Per chunk, each cell's group index within its program.
    let mut cell_group: Vec<Vec<usize>> = Vec::with_capacity(chunks.len());
    for (p, cell_ids) in chunks {
        let mut per_chunk = Vec::with_capacity(cell_ids.len());
        for &c in cell_ids {
            let spec = grid.spec(c);
            let k = cell_key[c].expect("scheduled cells have keys");
            let (_, okey, oh) =
                store[2 * p][k].as_ref().expect("cache pass covered every key");
            let (_, tkey, th) =
                store[2 * p + 1][k].as_ref().expect("cache pass covered every key");
            let key = TimingKey {
                lat: spec.lat,
                pipe: spec.pipe,
                pred: spec.pred,
                streams: (*okey, *tkey),
            };
            let g = group_keys[*p].iter().position(|&x| x == key).unwrap_or_else(|| {
                group_keys[*p].push(key);
                group_lane[*p].push((
                    resolved[c].expect("scheduled cells are valid"),
                    oh.clone(),
                    th.clone(),
                ));
                group_keys[*p].len() - 1
            });
            per_chunk.push(g);
        }
        cell_group.push(per_chunk);
    }

    // One job per ≤BANK_CELLS groups of one program, in group order.
    let mut lane_descr: Vec<(usize, usize)> = Vec::new();
    for (p, lanes) in group_lane.iter().enumerate() {
        for start in (0..lanes.len()).step_by(BANK_CELLS) {
            lane_descr.push((p, start));
        }
    }
    let timing_jobs: Vec<_> = lane_descr
        .iter()
        .map(|&(p, start)| {
            let (original, transformed) =
                recordings[p].as_ref().expect("active programs have recordings");
            let original = Arc::clone(original);
            let transformed = Arc::clone(transformed);
            let end = (start + BANK_CELLS).min(group_lane[p].len());
            let lanes = group_lane[p][start..end].to_vec();
            move || -> Result<Vec<(u64, u64)>, String> {
                let base = lanes[0].0.platform;
                let mut orig_bank = TimingBank::new(base.logical_regs, base.if_conversion);
                let mut trans_bank = TimingBank::new(base.logical_regs, base.if_conversion);
                for (rc, oh, th) in &lanes {
                    orig_bank.push_lane(&rc.platform, rc.pred, oh.fetch()?);
                    trans_bank.push_lane(&rc.platform, rc.pred, th.fetch()?);
                }
                original.replay_bank(std::slice::from_mut(&mut orig_bank));
                transformed.replay_bank(std::slice::from_mut(&mut trans_bank));
                Ok(orig_bank
                    .into_results()
                    .into_iter()
                    .zip(trans_bank.into_results())
                    .map(|(o, t)| (o.cycles, t.cycles))
                    .collect())
            }
        })
        .collect();
    let timing_results = run_jobs(timing_jobs, threads);
    if let Some(dir) = &spill_dir {
        let _ = std::fs::remove_dir_all(dir.as_path());
    }
    let mut group_cycles: Vec<Vec<(u64, u64)>> = vec![Vec::new(); recordings.len()];
    for (&(p, _), out) in lane_descr.iter().zip(timing_results) {
        group_cycles[p].extend(out.map_err(SweepError::AnnotationSpill)?);
    }

    let mut outputs = Vec::with_capacity(chunks.len());
    for ((p, cell_ids), groups) in chunks.iter().zip(&cell_group) {
        outputs.push(
            cell_ids
                .iter()
                .zip(groups)
                .map(|(&c, &g)| {
                    let k = cell_key[c].expect("scheduled cells have keys");
                    let rc = resolved[c].expect("scheduled cells are valid");
                    let (ostats, _, _) =
                        store[2 * p][k].as_ref().expect("cache pass covered every key");
                    let (cycles_original, cycles_transformed) = group_cycles[*p][g];
                    CellMeasure {
                        cycles_original,
                        cycles_transformed,
                        amat: rc
                            .lat
                            .amat(ostats.l1.load_miss_ratio(), ostats.l2.load_miss_ratio()),
                    }
                })
                .collect(),
        );
    }
    Ok(outputs)
}

/// Differential self-check of the sweep's cell merge, run by the
/// conformance harness: a tiny single-program sweep goes through the
/// production merge path, then every cell is re-measured directly (one
/// simulator at a time, no banking, no merge) and compared. Returns the
/// first divergence, if any — under the `sweep-merge-order` fault this
/// is how the mutation is detected.
pub fn sweep_merge_self_check(seed: u64) -> Option<String> {
    let grid = SweepGrid {
        l1: vec![(32, 2), (64, 2)],
        l2: vec![(4096, 1)],
        line: vec![64],
        lat: vec![(3, 5, 72)],
        pipe: vec![(4, 80)],
        pred: vec![PredictorKind::Hybrid, PredictorKind::Bimodal],
        prefetch: vec![Prefetcher::None],
    };
    let program = ProgramId::Predator;
    let cfg = SweepConfig {
        scale: Scale::Test,
        seed,
        jobs: 1,
        programs: vec![program],
        grid: grid.clone(),
        checkpoint: None,
        max_cells: 0,
        factor: true,
    };
    let result = match run_sweep(&cfg) {
        Ok(r) => r,
        Err(e) => return Some(format!("sweep failed: {e}")),
    };

    let original = match record_variant(program, Variant::Original, Scale::Test, seed, DEFAULT_CAPACITY)
    {
        Ok(r) => r,
        Err(e) => return Some(format!("sweep reference recording failed: {e}")),
    };
    let transformed =
        match record_variant(program, Variant::LoadTransformed, Scale::Test, seed, DEFAULT_CAPACITY)
        {
            Ok(r) => r,
            Err(e) => return Some(format!("sweep reference recording failed: {e}")),
        };
    for cell in 0..grid.cells() {
        let rc = grid.spec(cell).resolve().expect("self-check grid is valid");
        let replay = |rec: &Recording| {
            let mut sim = CycleSim::new(rc.platform)
                .with_predictor(rc.pred)
                .with_prefetcher(rc.prefetch);
            rec.replay_bank(std::slice::from_mut(&mut sim));
            sim.into_result()
        };
        let o = replay(&original);
        let t = replay(&transformed);
        let want = CellMeasure {
            cycles_original: o.cycles,
            cycles_transformed: t.cycles,
            amat: rc.lat.amat(o.cache.l1.load_miss_ratio(), o.cache.l2.load_miss_ratio()),
        };
        let got = match result.measures[0][cell] {
            Some(m) => m,
            None => return Some(format!("sweep cell {cell}: no measurement produced")),
        };
        if got != want {
            return Some(format!(
                "sweep cell {cell} ({}): merged {got:?}, direct replay {want:?}",
                grid.spec(cell).describe()
            ));
        }
    }
    None
}

/// Differential self-check of the factored two-pass sweep, run by the
/// conformance harness: a tiny sweep is evaluated through the factored
/// pipeline (cache pass + annotated timing replay) and through the
/// unfactored oracle (one live hierarchy per cell), and every
/// measurement is compared bitwise. A stack-distance cross-check then
/// validates the cache pass analytically: for the prefetcher-free
/// cells, L1 miss counts derived from one LRU stack-distance profile of
/// the shared access stream must equal the banked hierarchies' counts.
/// Under the `factored-annotation-skew` fault the annotated replay
/// reads every miss level off by one and the first comparison fires.
pub fn sweep_factor_self_check(seed: u64) -> Option<String> {
    let grid = SweepGrid {
        l1: vec![(32, 2), (64, 2)],
        l2: vec![(4096, 1)],
        line: vec![64],
        lat: vec![(3, 5, 72), (2, 4, 60)],
        pipe: vec![(4, 80)],
        pred: vec![PredictorKind::Hybrid],
        prefetch: vec![Prefetcher::None, Prefetcher::NextLine],
    };
    let program = ProgramId::Predator;
    let factored_cfg = SweepConfig {
        scale: Scale::Test,
        seed,
        jobs: 1,
        programs: vec![program],
        grid: grid.clone(),
        checkpoint: None,
        max_cells: 0,
        factor: true,
    };
    let oracle_cfg = SweepConfig { factor: false, ..factored_cfg.clone() };
    let factored = match run_sweep(&factored_cfg) {
        Ok(r) => r,
        Err(e) => return Some(format!("factored sweep failed: {e}")),
    };
    let oracle = match run_sweep(&oracle_cfg) {
        Ok(r) => r,
        Err(e) => return Some(format!("unfactored sweep failed: {e}")),
    };
    for cell in 0..grid.cells() {
        let got = factored.measures[0][cell];
        let want = oracle.measures[0][cell];
        if got != want {
            return Some(format!(
                "sweep cell {cell} ({}): factored {got:?}, unfactored oracle {want:?}",
                grid.spec(cell).describe()
            ));
        }
    }

    // Analytic cross-check: one all-associativity LRU profile of the
    // access stream predicts each prefetcher-free L1's miss count.
    let original = match record_variant(program, Variant::Original, Scale::Test, seed, DEFAULT_CAPACITY)
    {
        Ok(r) => r,
        Err(e) => return Some(format!("sweep reference recording failed: {e}")),
    };
    let mut members: Vec<(CellSpec, ResolvedCell)> = Vec::new();
    for cell in 0..grid.cells() {
        let spec = grid.spec(cell);
        if spec.prefetch != Prefetcher::None {
            continue;
        }
        if members.iter().any(|(s, _)| s.l1 == spec.l1) {
            continue;
        }
        members.push((spec, spec.resolve().expect("self-check grid is valid")));
    }
    let hierarchies: Vec<Hierarchy> = members
        .iter()
        .map(|(_, rc)| Hierarchy::new(rc.platform.l1, rc.platform.l2, rc.lat))
        .collect();
    let mut pass =
        CachePassSim::new(members[0].1.platform.logical_regs, hierarchies).with_address_log();
    original.replay_bank(std::slice::from_mut(&mut pass));
    let log: Vec<u64> = pass.address_log().expect("log enabled").to_vec();
    let banked = pass.finish_bank();
    let set_counts: Vec<u64> = members.iter().map(|(_, rc)| rc.platform.l1.num_sets()).collect();
    let mut prof = StackDistProfiler::new(grid.line[0], &set_counts);
    for addr in log {
        prof.access(addr);
    }
    for ((spec, rc), (stats, _)) in members.iter().zip(&banked) {
        let want = stats.l1.load_misses + stats.l1.store_misses;
        let got = prof.misses(rc.platform.l1.num_sets(), rc.platform.l1.ways);
        if got != want {
            return Some(format!(
                "stack-distance cross-check: l1 {}Kx{} simulates {want} L1 misses, \
                 profile derives {got}",
                spec.l1.0, spec.l1.1
            ));
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_enumeration_round_trips() {
        let grid = SweepGrid::smoke();
        assert_eq!(grid.cells(), 64);
        // Every index yields a distinct spec drawn from the axes.
        let mut seen = Vec::new();
        for i in 0..grid.cells() {
            let s = grid.spec(i);
            assert!(grid.l1.contains(&s.l1));
            assert!(grid.prefetch.contains(&s.prefetch));
            assert!(!seen.contains(&s), "cell {i} duplicates an earlier spec");
            seen.push(s);
        }
        assert_eq!(SweepGrid::standard().cells(), 576);
    }

    #[test]
    fn prefetch_is_innermost_axis() {
        let grid = SweepGrid::smoke();
        let a = grid.spec(0);
        let b = grid.spec(1);
        assert_eq!(a.l1, b.l1);
        assert_ne!(a.prefetch, b.prefetch);
    }

    #[test]
    fn degenerate_cells_resolve_to_typed_errors() {
        let mut grid = SweepGrid::smoke();
        grid.l1 = vec![(64, 0)]; // zero ways
        let err = grid.spec(0).resolve().unwrap_err();
        assert!(matches!(err, CacheConfigError::ZeroGeometry { ways: 0, .. }));

        let mut grid = SweepGrid::smoke();
        grid.line = vec![8192]; // line > 4 KB
        assert!(matches!(
            grid.spec(0).resolve().unwrap_err(),
            CacheConfigError::BlockTooLarge { block_bytes: 8192 }
        ));

        let mut grid = SweepGrid::smoke();
        grid.l2 = vec![(3000, 1)]; // 48000 sets: not a power of two
        assert!(matches!(
            grid.spec(0).resolve().unwrap_err(),
            CacheConfigError::SetsNotPowerOfTwo { .. }
        ));
    }

    #[test]
    fn run_hash_depends_on_every_input() {
        let grid = SweepGrid::smoke();
        let base = run_hash(Scale::Test, 42, &[ProgramId::Predator], &grid);
        assert_ne!(base, run_hash(Scale::Small, 42, &[ProgramId::Predator], &grid));
        assert_ne!(base, run_hash(Scale::Test, 43, &[ProgramId::Predator], &grid));
        assert_ne!(base, run_hash(Scale::Test, 42, &[ProgramId::Hmmsearch], &grid));
        let mut other = grid.clone();
        other.line = vec![64, 32];
        assert_ne!(base, run_hash(Scale::Test, 42, &[ProgramId::Predator], &other));
    }

    #[test]
    fn checkpoint_header_and_record_round_trip() {
        let h = encode_header(0xdead_beef_0123_4567);
        assert_eq!(&h[..8], &CHECKPOINT_MAGIC);
        let m = CellMeasure { cycles_original: 100, cycles_transformed: 90, amat: 3.25 };
        let r = encode_record(2, 55, &m);
        assert_eq!(r.len(), CHECKPOINT_RECORD_LEN);
        // Decode by hand and compare.
        assert_eq!(u32::from_le_bytes(r[..4].try_into().unwrap()), 2);
        assert_eq!(u32::from_le_bytes(r[4..8].try_into().unwrap()), 55);
        assert_eq!(f64::from_bits(u64::from_le_bytes(r[24..32].try_into().unwrap())), 3.25);
        assert_eq!(fnv1a(&r[..32]), u64::from_le_bytes(r[32..40].try_into().unwrap()));
    }
}

