//! Plain-text table formatting for the experiment binaries.

use std::fmt::Write as _;

use bioperf_metrics::Json;

/// A simple fixed-width text table with a header row.
///
/// # Example
///
/// ```
/// use bioperf_core::report::TextTable;
///
/// let mut t = TextTable::new(&["program", "loads"]);
/// t.row(&["blast", "30.1%"]);
/// let s = t.render();
/// assert!(s.contains("program"));
/// assert!(s.contains("blast"));
/// ```
#[derive(Debug, Clone)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    pub fn new(header: &[&str]) -> Self {
        Self { header: header.iter().map(|s| s.to_string()).collect(), rows: Vec::new() }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn row(&mut self, cells: &[&str]) {
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells.iter().map(|s| s.to_string()).collect());
    }

    /// Appends a row of owned strings.
    pub fn row_owned(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Renders the table: left-aligned first column, right-aligned rest.
    pub fn render(&self) -> String {
        let ncols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let write_row = |cells: &[String], out: &mut String| {
            for (i, (cell, w)) in cells.iter().zip(&widths).enumerate() {
                if i == 0 {
                    let _ = write!(out, "{cell:<w$}");
                } else {
                    let _ = write!(out, "  {cell:>w$}");
                }
            }
            out.push('\n');
        };
        write_row(&self.header, &mut out);
        let total: usize = widths.iter().sum::<usize>() + 2 * (ncols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            write_row(row, &mut out);
        }
        out
    }

    /// The table as JSON: `{"columns": […], "rows": [[…], …]}`, every
    /// cell the exact string the text rendering shows — the
    /// machine-readable twin of [`render`](Self::render).
    pub fn to_json(&self) -> Json {
        let strs = |cells: &[String]| {
            Json::Array(cells.iter().map(|c| Json::str(c.clone())).collect())
        };
        Json::object(vec![
            ("columns", strs(&self.header)),
            ("rows", Json::Array(self.rows.iter().map(|r| strs(r)).collect())),
        ])
    }
}

/// Formats a ratio as a percentage with one decimal (`0.254` → `25.4%`).
pub fn pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

/// Formats a ratio as a percentage with two decimals (paper Table 2
/// style).
pub fn pct2(x: f64) -> String {
    format!("{:.2}%", x * 100.0)
}

/// Formats a ratio as a percentage with three decimals (paper's
/// "overall" column).
pub fn pct3(x: f64) -> String {
    format!("{:.3}%", x * 100.0)
}

/// Harmonic mean of a slice of ratios.
///
/// # Panics
///
/// Panics if `xs` is empty or contains non-positive values.
pub fn harmonic_mean(xs: &[f64]) -> f64 {
    assert!(!xs.is_empty(), "harmonic mean of nothing");
    assert!(xs.iter().all(|&x| x > 0.0), "harmonic mean needs positive values");
    xs.len() as f64 / xs.iter().map(|x| 1.0 / x).sum::<f64>()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_alignment() {
        let mut t = TextTable::new(&["name", "value"]);
        t.row(&["a", "1"]);
        t.row(&["longer", "12345"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[2].starts_with("a     "));
        assert!(lines[3].starts_with("longer"));
        // Right alignment of the value column.
        assert!(lines[2].ends_with("    1"));
        assert!(lines[3].ends_with("12345"));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_panics() {
        let mut t = TextTable::new(&["a", "b"]);
        t.row(&["only one"]);
    }

    #[test]
    fn table_json_mirrors_text_cells() {
        let mut t = TextTable::new(&["name", "value"]);
        t.row(&["a", "25.4%"]);
        let j = t.to_json();
        assert_eq!(j.render(), "{\"columns\":[\"name\",\"value\"],\"rows\":[[\"a\",\"25.4%\"]]}");
    }

    #[test]
    fn percent_formatting() {
        assert_eq!(pct(0.254), "25.4%");
        assert_eq!(pct2(0.0178), "1.78%");
        assert_eq!(pct3(0.00072), "0.072%");
    }

    #[test]
    fn harmonic_mean_matches_hand_calc() {
        let hm = harmonic_mean(&[1.0, 2.0]);
        assert!((hm - 4.0 / 3.0).abs() < 1e-12);
        assert_eq!(harmonic_mean(&[3.0]), 3.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn harmonic_mean_rejects_zero() {
        harmonic_mean(&[1.0, 0.0]);
    }
}
