//! Checkpoint tests for the design-space sweep: an interrupted sweep
//! resumed to completion must produce output byte-identical to an
//! uninterrupted run (checkpoint file included), and every class of
//! damaged checkpoint must surface as the matching typed
//! [`CheckpointError`] naming the offending path — never a panic, never
//! a silently wrong frontier. Mirrors the segment reader's
//! `segment_corrupt.rs` discipline one layer up.

use std::fs;
use std::path::PathBuf;

use bioperf_branch::PredictorKind;
use bioperf_cache::Prefetcher;
use bioperf_core::sweep::{run_sweep, CheckpointError, SweepConfig, SweepError, SweepGrid};
use bioperf_kernels::{ProgramId, Scale};

/// A fresh scratch directory under the system temp dir.
fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("bioperf-sweepck-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

/// A 4-cell grid small enough for the test profile but with more than
/// one bank chunk's worth of structure once budgeted.
fn tiny_grid() -> SweepGrid {
    SweepGrid {
        l1: vec![(32, 2), (64, 2)],
        l2: vec![(4096, 1)],
        line: vec![64],
        lat: vec![(3, 5, 72)],
        pipe: vec![(4, 80)],
        pred: vec![PredictorKind::Hybrid, PredictorKind::Bimodal],
        prefetch: vec![Prefetcher::None],
    }
}

fn cfg(checkpoint: Option<PathBuf>, max_cells: usize) -> SweepConfig {
    SweepConfig {
        scale: Scale::Test,
        seed: 42,
        jobs: 2,
        programs: vec![ProgramId::Predator],
        grid: tiny_grid(),
        checkpoint,
        max_cells,
        factor: true,
    }
}

#[test]
fn interrupted_and_resumed_sweep_matches_uninterrupted_byte_for_byte() {
    let dir = scratch("resume");
    let baseline_ck = dir.join("baseline.ck");
    let resumed_ck = dir.join("resumed.ck");

    let baseline = run_sweep(&cfg(Some(baseline_ck.clone()), 0)).expect("baseline sweep");
    assert!(baseline.complete);
    assert_eq!(baseline.computed, 4);
    assert_eq!(baseline.cached, 0);
    let baseline_json = baseline.to_json().render_pretty();
    let baseline_table = baseline.render_table();

    // Interrupt after every single cell: four budgeted invocations, each
    // resuming from the previous one's checkpoint.
    let mut last = None;
    for step in 0..4 {
        let r = run_sweep(&cfg(Some(resumed_ck.clone()), 1)).expect("budgeted sweep");
        assert_eq!(r.computed, 1, "step {step} must measure exactly one new cell");
        assert_eq!(r.cached, step, "step {step} must resume {step} cells");
        assert_eq!(r.complete, step == 3, "complete only once every cell is measured");
        last = Some(r);
    }
    let resumed = last.expect("four steps ran");
    assert_eq!(resumed.to_json().render_pretty(), baseline_json);
    assert_eq!(resumed.render_table(), baseline_table);

    // The resumed checkpoint file itself is byte-identical to the one an
    // uninterrupted run writes (same records, same enumeration order).
    assert_eq!(
        fs::read(&resumed_ck).expect("resumed checkpoint"),
        fs::read(&baseline_ck).expect("baseline checkpoint"),
    );

    // A repeat invocation is a full cache hit: nothing is replayed and
    // the report is still byte-identical. Crucially it also records no
    // traces at all — a fully-checkpointed program never reaches the
    // recording wave.
    assert_eq!(baseline.recorded, 2, "fresh sweep records both variants");
    let cached = run_sweep(&cfg(Some(baseline_ck), 0)).expect("cached sweep");
    assert_eq!(cached.computed, 0);
    assert_eq!(cached.cached, 4);
    assert_eq!(cached.recorded, 0, "a full cache hit must skip trace recording entirely");
    assert_eq!(cached.to_json().render_pretty(), baseline_json);

    let _ = fs::remove_dir_all(&dir);
}

/// The factored pipeline and the unfactored oracle must leave
/// byte-identical checkpoints and reports behind — the `--no-factor`
/// contract the CI byte-identity gate also checks at the CLI level.
#[test]
fn factored_and_unfactored_checkpoints_are_byte_identical() {
    let dir = scratch("factor");
    let factored_ck = dir.join("factored.ck");
    let oracle_ck = dir.join("oracle.ck");

    let factored = run_sweep(&cfg(Some(factored_ck.clone()), 0)).expect("factored sweep");
    let mut oracle_cfg = cfg(Some(oracle_ck.clone()), 0);
    oracle_cfg.factor = false;
    let oracle = run_sweep(&oracle_cfg).expect("unfactored sweep");

    assert_eq!(factored.to_json().render_pretty(), oracle.to_json().render_pretty());
    assert_eq!(
        fs::read(&factored_ck).expect("factored checkpoint"),
        fs::read(&oracle_ck).expect("oracle checkpoint"),
    );

    let _ = fs::remove_dir_all(&dir);
}

/// Runs a sweep against `path` and returns the checkpoint error it must
/// produce.
fn checkpoint_err(path: &PathBuf) -> CheckpointError {
    match run_sweep(&cfg(Some(path.clone()), 0)) {
        Ok(_) => panic!("sweep over a damaged checkpoint must fail"),
        Err(SweepError::Checkpoint(e)) => e,
        Err(e) => panic!("expected a checkpoint error, got {e}"),
    }
}

/// Every error must name the file it concerns, both structurally and in
/// its rendered message (that is what the sweep CLI prints).
fn assert_names(err: &CheckpointError, victim: &PathBuf) {
    assert_eq!(err.path(), victim.as_path(), "error must carry the offending path");
    assert!(
        err.to_string().contains(&victim.display().to_string()),
        "display must name the path: {err}"
    );
}

#[test]
fn damaged_checkpoints_fail_with_typed_errors_naming_the_path() {
    let dir = scratch("corrupt");
    let good = dir.join("good.ck");
    run_sweep(&cfg(Some(good.clone()), 0)).expect("seed checkpoint");
    let bytes = fs::read(&good).expect("checkpoint bytes");
    assert!(bytes.len() > 40, "test needs a header plus records");

    // Truncation: a partial trailing record (interrupted write).
    let victim = dir.join("truncated.ck");
    fs::write(&victim, &bytes[..bytes.len() - 3]).expect("write");
    let err = checkpoint_err(&victim);
    assert!(matches!(err, CheckpointError::Truncated { .. }), "got {err:?}");
    assert_names(&err, &victim);

    // A file shorter than the header is also truncation.
    let victim = dir.join("stub.ck");
    fs::write(&victim, &bytes[..10]).expect("write");
    assert!(matches!(checkpoint_err(&victim), CheckpointError::Truncated { .. }));

    // Bit flip inside a record payload: record checksum mismatch, with
    // the record's index.
    let victim = dir.join("bitflip.ck");
    let mut flipped = bytes.clone();
    flipped[32 + 8] ^= 0x10; // first record, cycles field
    fs::write(&victim, &flipped).expect("write");
    let err = checkpoint_err(&victim);
    assert!(
        matches!(err, CheckpointError::RecordCorrupt { index: 0, .. }),
        "got {err:?}"
    );
    assert_names(&err, &victim);

    // Bit flip inside the header's hash field: header checksum mismatch.
    let victim = dir.join("header.ck");
    let mut flipped = bytes.clone();
    flipped[17] ^= 0x01;
    fs::write(&victim, &flipped).expect("write");
    let err = checkpoint_err(&victim);
    assert!(matches!(err, CheckpointError::HeaderCorrupt { .. }), "got {err:?}");
    assert_names(&err, &victim);

    // Wrong magic: not a sweep checkpoint at all.
    let victim = dir.join("magic.ck");
    let mut flipped = bytes.clone();
    flipped[0] ^= 0xff;
    fs::write(&victim, &flipped).expect("write");
    let err = checkpoint_err(&victim);
    assert!(matches!(err, CheckpointError::BadMagic { .. }), "got {err:?}");
    assert_names(&err, &victim);

    // Unsupported version (checked before the header checksum, so the
    // error is specific rather than a generic corruption).
    let victim = dir.join("version.ck");
    let mut flipped = bytes.clone();
    flipped[8..12].copy_from_slice(&2u32.to_le_bytes());
    fs::write(&victim, &flipped).expect("write");
    let err = checkpoint_err(&victim);
    assert!(matches!(err, CheckpointError::BadVersion { found: 2, .. }), "got {err:?}");
    assert_names(&err, &victim);

    // A checkpoint from a different sweep (other seed → other content
    // hash) must be refused, not silently reused.
    let victim = dir.join("othersweep.ck");
    fs::write(&victim, &bytes).expect("write");
    let mut other = cfg(Some(victim.clone()), 0);
    other.seed = 43;
    match run_sweep(&other) {
        Err(SweepError::Checkpoint(e @ CheckpointError::GridMismatch { .. })) => {
            assert_names(&e, &victim);
        }
        other => panic!("expected GridMismatch, got {other:?}"),
    }

    // Control: the undamaged copy still loads cleanly.
    let fine = run_sweep(&cfg(Some(good), 0)).expect("clean reload");
    assert_eq!(fine.cached, 4);

    let _ = fs::remove_dir_all(&dir);
}
