//! Mutation tests for the sweep-level faults: `sweep-merge-order`
//! rotates each bank job's per-cell results before the merge, and
//! `factored-annotation-skew` starts the factored sweep's miss-level
//! annotation cursor off by one. Neither is visible to any micro-op
//! fuzz case (the perturbations sit above the op-level differential
//! checks). The conformance harness detects them through its sweep
//! self-checks — tiny sweeps through the production paths diffed
//! against oracles — so these tests live here, next to the sweep,
//! rather than in `conform/tests/inject.rs`.
//!
//! Both arming tests share one `#[test]` body because the injection
//! hooks are process-global atomics (the same reasoning as the conform
//! crate's serial mutation test).

use bioperf_core::{
    run_conform, sweep_factor_self_check, sweep_merge_self_check, ConformConfig, FaultId,
};

#[test]
fn sweep_faults_are_detected_and_clean_build_passes() {
    assert!(
        bioperf_core::orchestrate::fault::injection_compiled(),
        "test requires the conform crate's default `inject` feature"
    );

    // Armed: the merge self-check alone (no fuzz cases needed) must
    // flag the rotated merge.
    let armed = run_conform(&ConformConfig {
        cases: 4,
        seed: 42,
        jobs: 1,
        inject: Some(FaultId::SweepMergeOrder),
        check_programs: false,
        out_dir: None,
    })
    .expect("conform run");
    assert!(
        armed.first_detection().is_some(),
        "sweep-merge-order fault escaped the sweep self-check"
    );
    let ce = armed.divergent.last().and_then(|o| o.divergence.as_ref()).expect("counterexample");
    assert_eq!(ce.component, "sweep-merge");

    // Armed: the skewed annotation cursor must be flagged by the
    // factored-vs-unfactored diff (the oracle path reads no annotations,
    // so only the factored measurements move).
    let armed = run_conform(&ConformConfig {
        cases: 4,
        seed: 42,
        jobs: 1,
        inject: Some(FaultId::FactoredAnnotationSkew),
        check_programs: false,
        out_dir: None,
    })
    .expect("conform run");
    assert!(
        armed.first_detection().is_some(),
        "factored-annotation-skew fault escaped the sweep-factor self-check"
    );
    let ce = armed.divergent.last().and_then(|o| o.divergence.as_ref()).expect("counterexample");
    assert_eq!(ce.component, "sweep-factor");

    // Disarmed, the same self-checks are clean.
    assert_eq!(sweep_merge_self_check(42), None);
    assert_eq!(sweep_factor_self_check(42), None);
}
