//! Mutation test for the sweep's cell merge: the `sweep-merge-order`
//! fault rotates each bank job's per-cell results before the merge,
//! which no micro-op fuzz case can see (the perturbation sits above the
//! op-level differential checks). The conformance harness detects it
//! through its sweep self-check — a tiny sweep through the production
//! merge path diffed against direct per-cell replays — so this test
//! lives here, next to the sweep, rather than in `conform/tests/inject.rs`.

use bioperf_core::{run_conform, sweep_merge_self_check, ConformConfig, FaultId};

#[test]
fn sweep_merge_fault_is_detected_and_clean_build_passes() {
    assert!(
        bioperf_core::orchestrate::fault::injection_compiled(),
        "test requires the conform crate's default `inject` feature"
    );

    // Armed: the self-check alone (no fuzz cases needed) must flag the
    // rotated merge.
    let armed = run_conform(&ConformConfig {
        cases: 4,
        seed: 42,
        jobs: 1,
        inject: Some(FaultId::SweepMergeOrder),
        check_programs: false,
        out_dir: None,
    })
    .expect("conform run");
    assert!(
        armed.first_detection().is_some(),
        "sweep-merge-order fault escaped the sweep self-check"
    );
    let ce = armed.divergent.last().and_then(|o| o.divergence.as_ref()).expect("counterexample");
    assert_eq!(ce.component, "sweep-merge");

    // Disarmed, the same self-check is clean.
    assert_eq!(sweep_merge_self_check(42), None);
}
