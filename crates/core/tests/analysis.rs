//! Cross-consumer consistency: the characterizer's sub-analyses must
//! agree with each other on real program traces.

use bioperf_core::candidates::{find_candidates, CandidateCriteria};
use bioperf_core::characterize::characterize_program;
use bioperf_kernels::{ProgramId, Scale};

#[test]
fn load_accounting_agrees_across_consumers() {
    for program in [ProgramId::Hmmsearch, ProgramId::Predator, ProgramId::Fasta] {
        let r = characterize_program(program, Scale::Test, 42);
        // The mix counter, the coverage counter, the cache simulator, and
        // the sequence analysis all count the same load stream.
        assert_eq!(r.mix.loads(), r.coverage.total_loads(), "{program}");
        assert_eq!(r.mix.loads(), r.cache.l1.load_accesses, "{program}");
        assert_eq!(r.mix.loads(), r.sequences.total_loads, "{program}");
        assert_eq!(r.mix.stores(), r.cache.l1.store_accesses, "{program}");
        // Per-load stats sum back to the total.
        let per_load: u64 = r.load_stats.iter().map(|s| s.executions).sum();
        assert_eq!(per_load, r.mix.loads(), "{program}");
    }
}

#[test]
fn sequence_counts_are_bounded_by_totals() {
    for program in ProgramId::ALL {
        let r = characterize_program(program, Scale::Test, 42);
        let s = r.sequences;
        assert!(s.loads_to_branch <= s.total_loads, "{program}");
        assert!(s.loads_after_hard_branch <= s.total_loads, "{program}");
        assert!(s.sequence_branch_mispredictions <= s.sequence_branch_executions, "{program}");
        assert!(s.sequence_branch_executions <= r.mix.cond_branches(), "{program}");
    }
}

#[test]
fn hot_loads_are_a_prefix_of_the_coverage_ranking() {
    let r = characterize_program(ProgramId::Hmmsearch, Scale::Test, 42);
    // The hottest load's frequency equals the first point of the curve.
    let first = r.coverage.coverage_at(1);
    assert!((r.hot_loads[0].frequency - first).abs() < 1e-9);
    // The sum of the top-k hot-load frequencies equals coverage_at(k).
    let k = r.hot_loads.len().min(5);
    let sum: f64 = r.hot_loads.iter().take(k).map(|h| h.frequency).sum();
    assert!((sum - r.coverage.coverage_at(k)).abs() < 1e-9);
}

#[test]
fn candidates_are_a_subset_of_traced_loads() {
    let r = characterize_program(ProgramId::Clustalw, Scale::Test, 42);
    let cands = find_candidates(&r, CandidateCriteria::default());
    for c in &cands {
        let stats = r.analysis_load_stats(c.sid);
        assert!(stats.executions > 0, "candidate {} never executed", c.loc);
        assert!(c.frequency > 0.0 && c.frequency <= 1.0);
        assert!(c.score > 0.0);
        // The reported location is a real traced static instruction.
        assert_eq!(r.program.get(c.sid).loc, c.loc);
    }
}

#[test]
fn per_load_l1_misses_do_not_exceed_hierarchy_misses() {
    let r = characterize_program(ProgramId::Blast, Scale::Test, 42);
    let per_load_misses: u64 = r.load_stats.iter().map(|s| s.l1_misses).sum();
    // The analysis runs its own identical hierarchy; totals must match
    // the cache consumer's within the tiny allocator-layout jitter.
    let delta = per_load_misses.abs_diff(r.cache.l1.load_misses);
    assert!(
        delta * 100 <= r.cache.l1.load_misses.max(100),
        "per-load misses {} vs hierarchy {}",
        per_load_misses,
        r.cache.l1.load_misses
    );
}
