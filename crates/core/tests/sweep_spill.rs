//! Disk-spill test for the factored sweep's annotation store. Setting
//! `BIOPERF_SWEEP_ANN_BYTES` below the estimated annotation footprint
//! forces every cache-pass stream onto disk; the timing pass must load
//! the spilled streams back and produce output byte-identical to the
//! all-in-memory run, and the spill directory must be gone afterwards.
//!
//! This lives in its own integration-test binary because the budget is
//! read from a process-global environment variable: any other test
//! sharing the process would race with `set_var`.

use bioperf_branch::PredictorKind;
use bioperf_cache::Prefetcher;
use bioperf_core::sweep::{run_sweep, SweepConfig, SweepGrid, ANN_SPILL_ENV};
use bioperf_kernels::{ProgramId, Scale};

fn cfg() -> SweepConfig {
    SweepConfig {
        scale: Scale::Test,
        seed: 42,
        jobs: 2,
        programs: vec![ProgramId::Predator],
        grid: SweepGrid {
            l1: vec![(32, 2), (64, 2)],
            l2: vec![(4096, 1)],
            line: vec![64],
            lat: vec![(3, 5, 72)],
            pipe: vec![(4, 80)],
            pred: vec![PredictorKind::Hybrid],
            prefetch: vec![Prefetcher::None, Prefetcher::NextLine],
        },
        checkpoint: None,
        max_cells: 0,
        factor: true,
    }
}

#[test]
fn spilled_annotations_reproduce_the_in_memory_sweep() {
    let in_memory = run_sweep(&cfg()).expect("in-memory factored sweep");
    assert!(in_memory.complete);

    // A 1-byte budget is below any real annotation footprint, so every
    // stream spills. `set_var` is safe here: this binary's only test.
    std::env::set_var(ANN_SPILL_ENV, "1");
    let spilled = run_sweep(&cfg()).expect("spilled factored sweep");
    std::env::remove_var(ANN_SPILL_ENV);

    assert_eq!(spilled.measures, in_memory.measures);
    assert_eq!(
        spilled.to_json().render_pretty(),
        in_memory.to_json().render_pretty()
    );

    // The spill directory is temporary: nothing under the temp dir may
    // survive the sweep that created it.
    let pid = std::process::id();
    let leftovers: Vec<_> = std::fs::read_dir(std::env::temp_dir())
        .expect("temp dir")
        .filter_map(|e| e.ok())
        .map(|e| e.file_name().to_string_lossy().into_owned())
        .filter(|n| n.starts_with("bioperf-sweep-ann-") && n.ends_with(&format!("-{pid}")))
        .collect();
    assert!(leftovers.is_empty(), "spill dirs left behind: {leftovers:?}");
}
