//! Property tests for the Pareto-front reducer: the frontier must be
//! mutually non-dominated, every dropped point must be dominated by a
//! surviving one, and the result must depend only on the *set* of input
//! points, not their order.

use bioperf_core::pareto::{pareto_frontier, ParetoPoint};
use proptest::prelude::*;

/// Builds points from small integer grids so ties on individual
/// objectives (and on all three at once) are common — the interesting
/// cases for dominance logic. Ids are the input indices, so duplicates
/// of the same scores still have distinct identities.
fn build_points(specs: &[(u32, u32, u64)]) -> Vec<ParetoPoint> {
    specs
        .iter()
        .enumerate()
        .map(|(id, &(amat_q, speedup_q, cost))| ParetoPoint {
            id: id as u32,
            amat: amat_q as f64 / 4.0,
            speedup: 1.0 + speedup_q as f64 / 8.0,
            cost,
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn frontier_is_mutually_non_dominated(
        specs in prop::collection::vec((0u32..8, 0u32..8, 0u64..6), 0..60),
    ) {
        let points = build_points(&specs);
        let frontier = pareto_frontier(&points);
        for a in &frontier {
            for b in &frontier {
                prop_assert!(
                    !a.dominates(b),
                    "frontier point {:?} dominates frontier point {:?}", a, b
                );
            }
        }
    }

    #[test]
    fn every_dropped_point_is_dominated_by_a_frontier_point(
        specs in prop::collection::vec((0u32..8, 0u32..8, 0u64..6), 0..60),
    ) {
        let points = build_points(&specs);
        let frontier = pareto_frontier(&points);
        for p in &points {
            let kept = frontier.iter().any(|f| f.id == p.id);
            if kept {
                continue;
            }
            prop_assert!(
                frontier.iter().any(|f| f.dominates(p)),
                "dropped point {:?} is not dominated by any frontier point", p
            );
        }
        // And the other direction: kept points are exactly the
        // non-dominated ones.
        for p in &points {
            let dominated = points.iter().any(|q| q.dominates(p));
            let kept = frontier.iter().any(|f| f.id == p.id);
            prop_assert_eq!(kept, !dominated);
        }
    }

    #[test]
    fn frontier_is_invariant_under_input_permutation(
        specs in prop::collection::vec((0u32..8, 0u32..8, 0u64..6), 0..60),
        rot in 0usize..64,
    ) {
        let points = build_points(&specs);
        let baseline = pareto_frontier(&points);

        // Rotation, reversal, and their composition cover arbitrary
        // cyclic + order-reversing reshuffles of the input.
        let mut rotated = points.clone();
        if !rotated.is_empty() {
            let k = rot % rotated.len();
            rotated.rotate_left(k);
        }
        prop_assert_eq!(&pareto_frontier(&rotated), &baseline);

        let mut reversed = points.clone();
        reversed.reverse();
        prop_assert_eq!(&pareto_frontier(&reversed), &baseline);

        let k = rot % reversed.len().max(1);
        reversed.rotate_right(k);
        prop_assert_eq!(&pareto_frontier(&reversed), &baseline);
    }
}
